// Operator catalog and kernel-time model (MegaScale §3.3 "Efficient
// Operators").
//
// Three classes of kernels matter for iteration time:
//  * large GEMMs — compute-bound, run at a fraction of tensor-core peak;
//  * attention — compute-bound but with much worse arithmetic intensity in
//    the naive implementation; FlashAttention-2 improves work partitioning
//    across thread blocks and warps;
//  * LayerNorm / GeLU / residual — memory-bound elementwise chains that in
//    stock implementations are split into many fine-grained kernels; fusing
//    them removes both extra HBM passes and kernel-launch overhead.
#pragma once

#include "collective/comm.h"
#include "core/time.h"
#include "core/units.h"
#include "model/transformer.h"

namespace ms::model {

struct OperatorProfile {
  /// Fraction of tensor-core peak attained by the large transformer GEMMs.
  double gemm_efficiency = 0.70;
  /// Attention kernel efficiency: naive implementations lose most of the
  /// peak to poor work partitioning.
  double attention_efficiency = 0.30;
  bool flash_attention2 = false;  ///< raises attention efficiency
  double flash_attention2_efficiency = 0.55;
  /// Unfused LayerNorm runs as several elementwise kernels (extra HBM
  /// round-trips); same for GeLU outside the GEMM epilogue.
  bool fused_layernorm = false;
  bool fused_gelu = false;
  /// Per-kernel launch overhead on the GPU front-end.
  TimeNs kernel_launch = microseconds(3.0);

  double effective_attention_efficiency() const {
    return flash_attention2 ? flash_attention2_efficiency
                            : attention_efficiency;
  }

  /// Megatron-LM at the paper's baseline commit: efficient GEMMs, naive
  /// attention/LayerNorm/GeLU kernels.
  static OperatorProfile megatron_baseline();
  /// MegaScale: FlashAttention-2 + fused LayerNorm/GeLU.
  static OperatorProfile megascale();
};

/// Kernel-duration model for one GPU.
class OpCostModel {
 public:
  OpCostModel(const ModelConfig& cfg, const OperatorProfile& profile,
              const collective::GpuSpec& gpu);

  const ModelConfig& config() const { return cfg_; }
  const OperatorProfile& profile() const { return profile_; }

  /// Forward time of the dense GEMMs of one layer over `tokens` tokens,
  /// with weights split `tp` ways.
  TimeNs fwd_dense(std::int64_t tokens, int tp) const;

  /// Forward attention time (heads split `tp` ways). Uses the model's
  /// actual attention span (SWA shortens it).
  TimeNs fwd_attention(std::int64_t tokens, int tp) const;

  /// Forward elementwise time of one layer: LayerNorms (1 with the parallel
  /// block, 2 serial), GeLU, residual adds; `tokens` are the tokens this
  /// GPU owns for these ops (sequence parallelism divides them).
  TimeNs fwd_elementwise(std::int64_t tokens) const;

  /// Full forward / backward time of one layer (backward GEMMs are 2x
  /// forward; elementwise backward ~= forward).
  TimeNs fwd_layer(std::int64_t gemm_tokens, std::int64_t elementwise_tokens,
                   int tp) const;
  TimeNs bwd_layer(std::int64_t gemm_tokens, std::int64_t elementwise_tokens,
                   int tp) const;

  /// Final vocabulary projection (vocab split `tp` ways).
  TimeNs fwd_logits(std::int64_t tokens, int tp) const;

  /// Optimizer step (memory-bound pass over the local parameter shard).
  TimeNs optimizer_step(double local_params) const;

 private:
  TimeNs gemm_time(Flops flops) const;
  TimeNs memory_time(double bytes, int passes, int launches) const;

  ModelConfig cfg_;
  OperatorProfile profile_;
  collective::GpuSpec gpu_;
};

}  // namespace ms::model
