#include "model/ops.h"

#include <cassert>
#include <cmath>

namespace ms::model {

OperatorProfile OperatorProfile::megatron_baseline() {
  OperatorProfile p;
  p.flash_attention2 = false;
  p.fused_layernorm = false;
  p.fused_gelu = false;
  return p;
}

OperatorProfile OperatorProfile::megascale() {
  OperatorProfile p;
  p.flash_attention2 = true;
  p.fused_layernorm = true;
  p.fused_gelu = true;
  return p;
}

OpCostModel::OpCostModel(const ModelConfig& cfg, const OperatorProfile& profile,
                         const collective::GpuSpec& gpu)
    : cfg_(cfg), profile_(profile), gpu_(gpu) {}

TimeNs OpCostModel::gemm_time(Flops flops) const {
  return seconds(flops / (gpu_.peak_flops * profile_.gemm_efficiency));
}

TimeNs OpCostModel::memory_time(double bytes, int passes, int launches) const {
  return seconds(bytes * passes / gpu_.hbm_bw) +
         launches * profile_.kernel_launch;
}

TimeNs OpCostModel::fwd_dense(std::int64_t tokens, int tp) const {
  assert(tp >= 1);
  const double h = cfg_.hidden;
  const double f = cfg_.ffn_hidden;
  const Flops flops =
      2.0 * (4.0 * h * h + 2.0 * h * f) * static_cast<double>(tokens) / tp;
  // Four GEMM launches per layer (QKV, proj, MLP up, MLP down).
  return gemm_time(flops) + 4 * profile_.kernel_launch;
}

TimeNs OpCostModel::fwd_attention(std::int64_t tokens, int tp) const {
  assert(tp >= 1);
  const double h = cfg_.hidden;
  const Flops flops =
      2.0 * 2.0 * h * cfg_.attention_span() * static_cast<double>(tokens) / tp;
  const double eff = profile_.effective_attention_efficiency();
  // Naive attention additionally materializes the [s, s] score matrix in
  // HBM (two extra passes over s*span floats per head group); FlashAttention
  // keeps it in SRAM.
  TimeNs extra = 0;
  int launches = profile_.flash_attention2 ? 1 : 4;
  if (!profile_.flash_attention2) {
    const double score_bytes = static_cast<double>(tokens) *
                               cfg_.attention_span() *
                               (static_cast<double>(cfg_.heads) / tp) * 2.0;
    extra = memory_time(score_bytes, 2, 0);
  }
  return seconds(flops / (gpu_.peak_flops * eff)) + extra +
         launches * profile_.kernel_launch;
}

TimeNs OpCostModel::fwd_elementwise(std::int64_t tokens) const {
  const double act_bytes =
      static_cast<double>(tokens) * static_cast<double>(cfg_.hidden) * 2.0;
  const double ffn_bytes =
      static_cast<double>(tokens) * static_cast<double>(cfg_.ffn_hidden) * 2.0;

  const int layernorms = cfg_.parallel_block ? 1 : 2;
  const int ln_passes = profile_.fused_layernorm ? 2 : 6;   // read+write vs 3 kernels
  const int ln_launches = profile_.fused_layernorm ? 1 : 3;

  const int gelu_passes = profile_.fused_gelu ? 0 : 2;  // fused into epilogue
  const int gelu_launches = profile_.fused_gelu ? 0 : 1;

  // Residual adds: serial block has 2 (after attn, after MLP); parallel
  // block sums both branches in one pass.
  const int residual_passes = cfg_.parallel_block ? 3 : 4;
  const int residual_launches = cfg_.parallel_block ? 1 : 2;

  TimeNs total = 0;
  total += layernorms * memory_time(act_bytes, ln_passes, ln_launches);
  total += memory_time(ffn_bytes, gelu_passes, gelu_launches);
  total += memory_time(act_bytes, residual_passes, residual_launches);
  return total;
}

TimeNs OpCostModel::fwd_layer(std::int64_t gemm_tokens,
                              std::int64_t elementwise_tokens, int tp) const {
  return fwd_dense(gemm_tokens, tp) + fwd_attention(gemm_tokens, tp) +
         fwd_elementwise(elementwise_tokens);
}

TimeNs OpCostModel::bwd_layer(std::int64_t gemm_tokens,
                              std::int64_t elementwise_tokens, int tp) const {
  // Backward GEMMs: dgrad + wgrad = 2x forward; attention backward ~2x;
  // elementwise backward is another pass of the same kernels.
  return 2 * (fwd_dense(gemm_tokens, tp) + fwd_attention(gemm_tokens, tp)) +
         fwd_elementwise(elementwise_tokens);
}

TimeNs OpCostModel::fwd_logits(std::int64_t tokens, int tp) const {
  const Flops flops = 2.0 * static_cast<double>(cfg_.hidden) * cfg_.vocab *
                      static_cast<double>(tokens) / tp;
  return gemm_time(flops) + profile_.kernel_launch;
}

TimeNs OpCostModel::optimizer_step(double local_params) const {
  // Mixed-precision Adam/LAMB: touch fp32 master weights, two moments and
  // the bf16 gradient/param copies — ~20 bytes per parameter, read+write.
  const double bytes = local_params * 20.0;
  return memory_time(bytes, 2, 4);
}

}  // namespace ms::model
