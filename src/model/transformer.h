// Transformer architecture description and FLOPs/parameter accounting
// (MegaScale §3.1, Table 1).
//
// The model module is purely arithmetic: given an architecture it answers
// "how many parameters", "how many FLOPs per token", "how many bytes of
// activations cross a tensor-parallel boundary". The execution engine
// combines these with the operator catalog (ops.h) and the collective cost
// model to produce iteration times.
#pragma once

#include <string>

#include "core/units.h"

namespace ms::model {

enum class AttentionKind {
  kFull,           // dense causal attention, O(s^2)
  kSlidingWindow,  // Longformer-style fixed window, O(s*w)  (§3.1 SWA)
};

struct ModelConfig {
  std::string name = "gpt";
  int layers = 96;
  int hidden = 12288;
  int heads = 128;
  int ffn_hidden = 4 * 12288;
  int vocab = 64000;
  int seq_len = 2048;
  /// Parallel transformer block (§3.1, PTB): y = x + MLP(LN(x)) + Attn(LN(x)).
  bool parallel_block = false;
  AttentionKind attention = AttentionKind::kFull;
  int window = 1024;  // sliding-window size when attention == kSlidingWindow

  /// Effective attention span per token, averaged over positions under the
  /// causal mask. Full attention: position t attends t tokens -> mean s/2.
  /// Sliding window w: position t attends min(w, t) tokens ->
  /// mean w - w^2/(2s) for w <= s.
  double attention_span() const {
    const double s = static_cast<double>(seq_len);
    if (attention == AttentionKind::kSlidingWindow && window < seq_len) {
      const double w = static_cast<double>(window);
      return w - w * w / (2.0 * s);
    }
    return s / 2.0;
  }
};

/// Table 1 presets. Parallelism defaults (TP=8, PP) live with the presets
/// that use them (parallel module); these are pure architecture.
ModelConfig config_175b();
ModelConfig config_530b();
/// The 13B model used for the convergence microbenchmarks (§6.2).
ModelConfig config_13b();

/// Preset lookup for CLIs ("175b", "530b", "13b"; case-insensitive).
/// Returns false and leaves `out` untouched for unknown names.
bool config_by_name(const std::string& name, ModelConfig& out);

/// Total trainable parameters.
double params_count(const ModelConfig& cfg);

/// Forward-pass FLOPs for one token, decomposed.
struct FlopsPerToken {
  Flops dense = 0;      // QKV + output projection + MLP GEMMs
  Flops attention = 0;  // QK^T and attention-weighted sum
  Flops logits = 0;     // final vocabulary projection
  Flops total() const { return dense + attention + logits; }
};
FlopsPerToken forward_flops_per_token(const ModelConfig& cfg);

/// Training FLOPs per token = forward + backward (2x forward).
Flops train_flops_per_token(const ModelConfig& cfg);

/// Reference FLOPs used for MFU accounting. Following the paper's Table 3
/// (MFU *increases* when sliding-window attention is enabled), MFU is
/// computed against the full-attention reference model: SWA reduces
/// execution time but not the FLOPs credited to the job.
Flops reference_train_flops_per_token(const ModelConfig& cfg);

/// Bytes of one token's activation vector (bf16).
Bytes activation_bytes_per_token(const ModelConfig& cfg);

/// Model-FLOPs utilization: credited FLOPs per second per GPU over peak.
double mfu(const ModelConfig& cfg, double tokens_per_second, int gpus,
           Flops peak_flops_per_gpu);

}  // namespace ms::model
