#include "model/memory.h"

#include <cassert>

namespace ms::model {

MemoryBreakdown peak_memory(const ModelConfig& model,
                            const parallel::ParallelConfig& par,
                            int inflight_microbatches,
                            const MemoryConfig& mem) {
  assert(inflight_microbatches >= 0);
  MemoryBreakdown out;

  const double params_per_gpu =
      params_count(model) / (static_cast<double>(par.tp) * par.pp);
  // ZeRO-3 shards the bf16 weights themselves across DP (gathered
  // transiently per layer); stages 0-2 keep a full replica.
  out.weights = params_per_gpu * 2.0 / (par.zero_stage >= 3 ? par.dp : 1);

  // Gradients: bf16 buffer; ZeRO-2+ shards it across DP.
  out.gradients =
      params_per_gpu * 2.0 / (par.zero_stage >= 2 ? par.dp : 1);

  // Optimizer: fp32 master + 2 moments = 12 bytes/param; ZeRO-1+ shards.
  out.optimizer =
      params_per_gpu * 12.0 / (par.zero_stage >= 1 ? par.dp : 1);

  // Activations: layers on this GPU x in-flight microbatches x per-layer
  // working set (sequence dimension divided by TP under SP; hidden divided
  // by TP otherwise — both appear as one /tp factor here).
  const double layers_per_gpu =
      static_cast<double>(model.layers) / par.pp;
  const double tokens_per_microbatch = model.seq_len;  // microbatch = 1 seq
  out.activations =
      layers_per_gpu * inflight_microbatches * tokens_per_microbatch *
      mem.activation_bytes_per_token_per_layer(model.hidden) / par.tp;
  return out;
}

bool fits_memory(const ModelConfig& model, const parallel::ParallelConfig& par,
                 int inflight_microbatches, const MemoryConfig& mem) {
  return peak_memory(model, par, inflight_microbatches, mem).total() <=
         mem.gpu_hbm_bytes;
}

}  // namespace ms::model
