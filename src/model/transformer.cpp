#include "model/transformer.h"

#include <cassert>

namespace ms::model {

ModelConfig config_175b() {
  ModelConfig cfg;
  cfg.name = "175B";
  cfg.layers = 96;
  cfg.hidden = 12288;
  cfg.heads = 128;
  cfg.ffn_hidden = 4 * 12288;
  cfg.vocab = 64000;
  cfg.seq_len = 2048;
  return cfg;
}

ModelConfig config_530b() {
  ModelConfig cfg;
  cfg.name = "530B";
  cfg.layers = 105;
  cfg.hidden = 20480;
  cfg.heads = 160;
  cfg.ffn_hidden = 4 * 20480;
  cfg.vocab = 64000;
  cfg.seq_len = 2048;
  return cfg;
}

ModelConfig config_13b() {
  ModelConfig cfg;
  cfg.name = "13B";
  cfg.layers = 40;
  cfg.hidden = 5120;
  cfg.heads = 40;
  cfg.ffn_hidden = 4 * 5120;
  cfg.vocab = 64000;
  cfg.seq_len = 2048;
  return cfg;
}

bool config_by_name(const std::string& name, ModelConfig& out) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) {
    key += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  if (key == "175b") {
    out = config_175b();
  } else if (key == "530b") {
    out = config_530b();
  } else if (key == "13b") {
    out = config_13b();
  } else {
    return false;
  }
  return true;
}

double params_count(const ModelConfig& cfg) {
  const double h = cfg.hidden;
  const double f = cfg.ffn_hidden;
  // Per layer: QKV (3h^2) + output proj (h^2) + MLP (2*h*f) + LN/bias terms.
  const double per_layer = 4.0 * h * h + 2.0 * h * f + 9.0 * h;
  const double embeddings = static_cast<double>(cfg.vocab) * h;
  const double final_ln = 2.0 * h;
  return cfg.layers * per_layer + embeddings + final_ln;
}

FlopsPerToken forward_flops_per_token(const ModelConfig& cfg) {
  const double h = cfg.hidden;
  const double f = cfg.ffn_hidden;
  FlopsPerToken flops;
  // GEMMs: 2 FLOPs per MAC. QKV: 3h^2, proj: h^2, MLP: 2hf.
  flops.dense = cfg.layers * 2.0 * (4.0 * h * h + 2.0 * h * f);
  // Attention: QK^T (h MACs per attended position) + AV (same).
  flops.attention = cfg.layers * 2.0 * 2.0 * h * cfg.attention_span();
  flops.logits = 2.0 * h * cfg.vocab;
  return flops;
}

Flops train_flops_per_token(const ModelConfig& cfg) {
  // Backward is 2x forward (grad w.r.t. inputs + grad w.r.t. weights).
  return 3.0 * forward_flops_per_token(cfg).total();
}

Flops reference_train_flops_per_token(const ModelConfig& cfg) {
  ModelConfig reference = cfg;
  reference.attention = AttentionKind::kFull;
  return train_flops_per_token(reference);
}

Bytes activation_bytes_per_token(const ModelConfig& cfg) {
  return static_cast<Bytes>(cfg.hidden) * 2;  // bf16
}

double mfu(const ModelConfig& cfg, double tokens_per_second, int gpus,
           Flops peak_flops_per_gpu) {
  assert(gpus > 0 && peak_flops_per_gpu > 0);
  const double credited =
      reference_train_flops_per_token(cfg) * tokens_per_second;
  return credited / (static_cast<double>(gpus) * peak_flops_per_gpu);
}

}  // namespace ms::model
