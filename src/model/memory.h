// Per-GPU memory accounting (§2's motivation for 1F1B and sequence
// parallelism; Table 2's "batch size constrained by GPU memory").
//
// Four components occupy HBM during training:
//   * bf16 weights of the GPU's pipeline/TP shard (replicated across DP);
//   * gradient buffer (bf16; ZeRO >= 2 shards it across DP);
//   * optimizer states (fp32 master + two Adam moments; ZeRO >= 1 shards);
//   * activations: per-layer, per-microbatch working set times the number
//     of microbatches simultaneously in flight under the pipeline schedule.
//
// Activation bytes per token per layer follow the standard accounting for
// a transformer with selective recomputation (Korthikanti et al.'22):
// roughly 34*h bytes at bf16, divided by TP with sequence parallelism.
#pragma once

#include "core/units.h"
#include "model/transformer.h"
#include "parallel/mapping.h"

namespace ms::model {

struct MemoryBreakdown {
  double weights = 0;
  double gradients = 0;
  double optimizer = 0;
  double activations = 0;
  double total() const {
    return weights + gradients + optimizer + activations;
  }
};

struct MemoryConfig {
  /// Activation bytes per token per layer before TP division (~34*h with
  /// selective recomputation; set higher for full activation stashing).
  double activation_bytes_per_token_per_layer(int hidden) const {
    return activation_factor * hidden;
  }
  double activation_factor = 34.0;
  double gpu_hbm_bytes = 80e9;  // A100-80GB

  /// Standard presets for the activation factor:
  /// full stashing ~ 34*h/layer/token (everything kept),
  /// full recomputation ~ 2*h (only the layer-boundary activation kept).
  static constexpr double kSelectiveRecompute = 34.0;
  static constexpr double kFullRecompute = 2.0;
};

/// Peak memory of one GPU given the parallel layout and the schedule's peak
/// in-flight microbatch count (see parallel::peak_inflight_microbatches).
MemoryBreakdown peak_memory(const ModelConfig& model,
                            const parallel::ParallelConfig& par,
                            int inflight_microbatches,
                            const MemoryConfig& mem = {});

/// Convenience: does the layout fit the device?
bool fits_memory(const ModelConfig& model, const parallel::ParallelConfig& par,
                 int inflight_microbatches, const MemoryConfig& mem = {});

}  // namespace ms::model
