#include "calib/replay.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "check/digest.h"
#include "core/table.h"
#include "diag/blame.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ms::calib {

namespace {

/// All segment kinds, in enum order (deterministic share table).
constexpr diag::SegmentKind kAllCauses[] = {
    diag::SegmentKind::kCompute,       diag::SegmentKind::kStragglerWait,
    diag::SegmentKind::kPpComm,        diag::SegmentKind::kSlowLink,
    diag::SegmentKind::kDpComm,        diag::SegmentKind::kData,
    diag::SegmentKind::kOptimizer,     diag::SegmentKind::kBubble,
};

double share_of(const diag::StepDiagnosis& d, diag::SegmentKind kind) {
  const auto it = d.breakdown.find(kind);
  if (it == d.breakdown.end() || d.makespan <= 0) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(d.makespan);
}

std::int64_t quant(double v) {
  const double scaled = v * giga(1.0);
  if (!std::isfinite(scaled)) return -1;
  return std::llround(std::min(std::max(scaled, -9.0e18), 9.0e18));
}

std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

ReplayResult replay_fit(const std::vector<diag::TraceSpan>& spans,
                        const CalibrationReport& report,
                        const engine::JobConfig& base, double tolerance) {
  ReplayResult out;
  out.tolerance = tolerance;
  if (spans.empty()) {
    out.error = "empty trace: nothing to replay against";
    return out;
  }
  if (!report.ok) {
    out.error = "fit failed (" + report.error + "); replay skipped";
    return out;
  }
  const std::string cfg_err = engine::validate(base);
  if (!cfg_err.empty()) {
    out.error = "invalid base config: " + cfg_err;
    return out;
  }

  // Re-simulate with the fitted parameters plugged in.
  engine::JobConfig cfg = base;
  apply_fit(report, cfg);
  telemetry::Tracer tracer;
  cfg.tracer = &tracer;
  cfg.metrics = nullptr;
  const engine::IterationResult sim = engine::simulate_iteration(cfg);
  out.sim_step = sim.iteration_time;

  TimeNs t_min = spans.front().start, t_max = spans.front().end;
  for (const auto& s : spans) {
    t_min = std::min(t_min, s.start);
    t_max = std::max(t_max, s.end);
  }
  out.trace_step = t_max - t_min;
  if (out.trace_step <= 0) {
    out.error = "trace has zero makespan";
    return out;
  }

  out.rel_error =
      std::fabs(static_cast<double>(out.sim_step - out.trace_step)) /
      static_cast<double>(out.trace_step);
  out.within_tolerance = out.rel_error <= tolerance;

  // Blame tiling on both sides: a fit that cancels a compute overestimate
  // against a communication underestimate matches the total but not the
  // per-cause shares.
  const diag::StepDiagnosis trace_diag = diag::analyze_spans(spans);
  const diag::StepDiagnosis sim_diag = diag::analyze_spans(tracer.spans());
  for (diag::SegmentKind kind : kAllCauses) {
    CauseShare cs;
    cs.cause = diag::segment_kind_name(kind);
    cs.trace_share = share_of(trace_diag, kind);
    cs.sim_share = share_of(sim_diag, kind);
    if (cs.trace_share == 0.0 && cs.sim_share == 0.0) continue;
    out.max_share_delta = std::max(out.max_share_delta,
                                   std::fabs(cs.delta()));
    out.shares.push_back(std::move(cs));
  }
  out.ok = true;

  check::Digest d;
  d.fold(std::string_view("calib-replay"));
  d.fold(out.trace_step);
  d.fold(out.sim_step);
  d.fold(quant(out.rel_error));
  d.fold(static_cast<std::uint64_t>(out.within_tolerance ? 1 : 0));
  for (const auto& cs : out.shares) {
    d.fold(std::string_view(cs.cause));
    d.fold(quant(cs.trace_share));
    d.fold(quant(cs.sim_share));
  }
  out.digest = d.value();
  return out;
}

std::string replay_table(const ReplayResult& r) {
  if (!r.ok) return "replay failed: " + r.error + "\n";
  std::string out = "Replay validation\n";
  out += "  trace step " + format_duration(r.trace_step) + "  sim step " +
         format_duration(r.sim_step) + "  error " +
         Table::fmt_pct(r.rel_error, 3) + " (tolerance " +
         Table::fmt_pct(r.tolerance, 1) + ") -> " +
         (r.within_tolerance ? "OK" : "OUT OF TOLERANCE") + "\n";
  Table t({"cause", "trace share", "sim share", "delta"});
  for (const auto& cs : r.shares) {
    t.add_row({cs.cause, Table::fmt_pct(cs.trace_share, 1),
               Table::fmt_pct(cs.sim_share, 1),
               Table::fmt_pct(cs.delta(), 1)});
  }
  out += t.to_string();
  out += "max share delta " + Table::fmt_pct(r.max_share_delta, 2) + "\n";
  return out;
}

std::string replay_jsonl(const ReplayResult& r) {
  std::string out = "{\"record\":\"calib_replay\",\"ok\":";
  out += r.ok ? "true" : "false";
  if (!r.error.empty()) {
    std::string esc;
    for (char c : r.error) {
      if (c == '"' || c == '\\') esc += '\\';
      esc += c;
    }
    out += ",\"error\":\"" + esc + "\"";
  }
  out += ",\"trace_step_ns\":" + std::to_string(r.trace_step);
  out += ",\"sim_step_ns\":" + std::to_string(r.sim_step);
  out += ",\"rel_error\":" + fmt_g(r.rel_error);
  out += ",\"tolerance\":" + fmt_g(r.tolerance);
  out += ",\"within_tolerance\":";
  out += r.within_tolerance ? "true" : "false";
  out += ",\"max_share_delta\":" + fmt_g(r.max_share_delta);
  out += ",\"shares\":[";
  for (std::size_t i = 0; i < r.shares.size(); ++i) {
    const auto& cs = r.shares[i];
    if (i > 0) out += ',';
    out += "{\"cause\":\"" + cs.cause + "\",\"trace\":" +
           fmt_g(cs.trace_share) + ",\"sim\":" + fmt_g(cs.sim_share) + "}";
  }
  out += "],\"digest\":\"" + std::to_string(r.digest) + "\"}\n";
  return out;
}

void export_metrics(const ReplayResult& r,
                    telemetry::MetricsRegistry& metrics) {
  metrics.gauge("calib_replay_ok").set(r.ok ? 1.0 : 0.0);
  metrics.gauge("calib_replay_error").set(r.rel_error);
  metrics.gauge("calib_replay_within_tolerance")
      .set(r.within_tolerance ? 1.0 : 0.0);
  metrics.gauge("calib_replay_max_share_delta").set(r.max_share_delta);
  for (const auto& cs : r.shares) {
    metrics.gauge("calib_replay_share_delta", {{"cause", cs.cause}})
        .set(cs.delta());
  }
}

}  // namespace ms::calib
