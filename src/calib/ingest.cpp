#include "calib/ingest.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "core/json.h"
#include "diag/artifact.h"

namespace ms::calib {

namespace {

constexpr std::size_t kMaxWarnings = 8;

void warn(IngestResult& out, const std::string& msg) {
  if (out.warnings.size() < kMaxWarnings) out.warnings.push_back(msg);
}

/// Kineto pids/tids come as numbers or strings ("python 4021", "rank3",
/// "stream 7"). Numeric content (possibly with a textual prefix) resolves
/// to that number; anything else gets a dense id per distinct label.
class IdMapper {
 public:
  int resolve(const json::Value& v) {
    if (v.kind == json::Value::Kind::kNumber && std::isfinite(v.number)) {
      return static_cast<int>(v.number);
    }
    if (v.kind == json::Value::Kind::kString) {
      const std::string& s = v.str;
      // Trailing digit run: "python 4021" -> 4021, "rank3" -> 3.
      std::size_t end = s.size();
      while (end > 0 && std::isdigit(static_cast<unsigned char>(s[end - 1]))) {
        --end;
      }
      if (end < s.size() && s.size() - end <= 9) {
        return std::atoi(s.c_str() + end);
      }
      auto it = labels_.find(s);
      if (it != labels_.end()) return it->second;
      const int id = next_++;
      labels_.emplace(s, id);
      return id;
    }
    return 0;
  }

 private:
  std::map<std::string, int> labels_;
  int next_ = 0;
};

std::string fmt_number_token(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Flattens a Kineto `args` object into the repo's `k=v` detail grammar.
/// A verbatim "detail" string arg (our own Chrome exporter round-trip) is
/// spliced in as-is; other keys have spaces sanitized to '_' so the token
/// stream stays parseable by diag::SpanAttrs.
std::string args_to_detail(const json::Value& args) {
  std::string detail;
  auto append = [&](const std::string& token) {
    if (!detail.empty()) detail += ' ';
    detail += token;
  };
  for (const auto& [key, value] : *args.object) {
    if (key == "detail" && value.kind == json::Value::Kind::kString) {
      append(value.str);
      continue;
    }
    std::string k = key;
    std::replace(k.begin(), k.end(), ' ', '_');
    std::replace(k.begin(), k.end(), '=', '_');
    switch (value.kind) {
      case json::Value::Kind::kString: {
        std::string v = value.str;
        std::replace(v.begin(), v.end(), ' ', '_');
        append(k + '=' + v);
        break;
      }
      case json::Value::Kind::kNumber:
        append(k + '=' + fmt_number_token(value.number));
        break;
      case json::Value::Kind::kBool:
        append(k + '=' + (value.boolean ? "1" : "0"));
        break;
      default:
        break;  // nested arrays/objects carry no calibration signal
    }
  }
  return detail;
}

TimeNs us_to_ns(double us) {
  // Round, don't truncate: integral-ns spans exported as fractional µs
  // (ns / 1000) must round-trip bit-exactly for the determinism digests.
  return static_cast<TimeNs>(
      std::llround(us * static_cast<double>(kNsPerUs)));
}

bool ingest_chrome_events(const json::Value& events, IngestResult& out,
                          std::string& error) {
  if (!events.is_array()) {
    error = "traceEvents is not an array";
    return false;
  }
  IdMapper pids;
  // Open "B" events per (pid, tid) — "E" pops the innermost (Kineto nests
  // begin/end per thread like a call stack).
  std::map<std::pair<int, int>, std::vector<diag::TraceSpan>> open;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& ev = events[i];
    if (!ev.is_object()) {
      ++out.skipped_events;
      warn(out, "event " + std::to_string(i) + ": not an object, skipped");
      continue;
    }
    const std::string ph = ev.text("ph", "X");
    const int pid = ev.has("pid") ? pids.resolve(ev.at("pid")) : 0;
    const int tid = ev.has("tid") ? pids.resolve(ev.at("tid")) : 0;

    if (ph == "M" || ph == "i" || ph == "I" || ph == "C" || ph == "s" ||
        ph == "t" || ph == "f" || ph == "N" || ph == "D" || ph == "O") {
      // Metadata / instants / counters / flows / object lifecycles: no
      // duration to calibrate against.
      ++out.skipped_events;
      continue;
    }

    diag::TraceSpan span;
    span.rank = pid;
    span.name = ev.text("name", "unnamed");
    span.tag = ev.text("cat");
    if (ev.has("args") && ev.at("args").is_object()) {
      span.detail = args_to_detail(ev.at("args"));
    }

    if (ph == "B") {
      span.start = us_to_ns(ev.num("ts"));
      open[{pid, tid}].push_back(std::move(span));
      continue;
    }
    if (ph == "E") {
      auto& stack = open[{pid, tid}];
      if (stack.empty()) {
        ++out.skipped_events;
        warn(out, "event " + std::to_string(i) + ": E without matching B");
        continue;
      }
      diag::TraceSpan done = std::move(stack.back());
      stack.pop_back();
      done.end = us_to_ns(ev.num("ts"));
      if (done.end < done.start) done.end = done.start;
      out.spans.push_back(std::move(done));
      continue;
    }
    if (ph == "X") {
      if (!ev.has("ts")) {
        ++out.skipped_events;
        warn(out, "event " + std::to_string(i) + ": X without ts");
        continue;
      }
      span.start = us_to_ns(ev.num("ts"));
      if (ev.has("dur")) {
        span.end = span.start + us_to_ns(ev.num("dur"));
      } else {
        // Kineto occasionally drops dur on truncated captures; keep the
        // span as zero-length so DAG ordering survives.
        span.end = span.start;
        warn(out, "event " + std::to_string(i) + " (" + span.name +
                      "): missing dur, kept as zero-length span");
      }
      out.spans.push_back(std::move(span));
      continue;
    }
    ++out.skipped_events;
    warn(out, "event " + std::to_string(i) + ": unknown ph \"" + ph +
                  "\", skipped");
  }
  for (const auto& [key, stack] : open) {
    out.skipped_events += stack.size();
    if (!stack.empty()) {
      warn(out, std::to_string(stack.size()) +
                    " unterminated B event(s) on pid " +
                    std::to_string(key.first));
    }
  }
  return true;
}

}  // namespace

TraceFormat detect_trace_format(const std::string& text) {
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '[') return TraceFormat::kChromeTrace;
    if (c != '{') return TraceFormat::kUnknown;
    // A '{' opens either one big Chrome-trace object or the first line of
    // span JSONL; the cheap discriminator is whether the first line parses
    // as a standalone object.
    const std::size_t eol = text.find('\n');
    const std::string first =
        eol == std::string::npos ? text : text.substr(0, eol);
    json::Value v;
    if (json::parse(first, v) && v.is_object()) return TraceFormat::kSpanJsonl;
    return TraceFormat::kChromeTrace;
  }
  return TraceFormat::kUnknown;
}

bool ingest_trace(const std::string& text, IngestResult& out,
                  std::string& error) {
  out = IngestResult{};
  error.clear();
  const TraceFormat format = detect_trace_format(text);
  if (format == TraceFormat::kUnknown) {
    error = "unrecognized trace format (expected span JSONL or Chrome trace)";
    return false;
  }
  if (format == TraceFormat::kSpanJsonl) {
    if (!diag::parse_trace_jsonl(text, out.spans)) {
      error = "malformed span JSONL";
      return false;
    }
    return true;
  }
  json::Value root;
  if (!json::parse(text, root)) {
    error = "malformed Chrome-trace JSON";
    return false;
  }
  if (root.is_array()) return ingest_chrome_events(root, out, error);
  if (root.is_object()) {
    if (!root.has("traceEvents")) {
      error = "Chrome-trace object has no traceEvents array";
      return false;
    }
    return ingest_chrome_events(root.at("traceEvents"), out, error);
  }
  error = "Chrome-trace root is neither array nor object";
  return false;
}

bool ingest_trace_file(const std::string& path, IngestResult& out,
                       std::string& error) {
  std::string text;
  if (!diag::read_text_file(path, text)) {
    error = "cannot read " + path;
    return false;
  }
  return ingest_trace(text, out, error);
}

}  // namespace ms::calib
