#include "calib/classify.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace ms::calib {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

/// 64-bit numeric attribute (byte counts overflow SpanAttrs::num's int).
std::int64_t attr_i64(const diag::SpanAttrs& attrs, const std::string& key,
                      std::int64_t fallback) {
  const std::string text = attrs.text(key);
  if (text.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

/// Kineto nccl kernels publish sizes under assorted arg names; the ingest
/// layer sanitizes spaces to '_'.
Bytes bytes_attr(const diag::SpanAttrs& attrs) {
  for (const char* key : {"B", "bytes", "In_msg_size", "msg_size", "size"}) {
    const std::int64_t v = attr_i64(attrs, key, -1);
    if (v >= 0) return static_cast<Bytes>(v);
  }
  return -1;
}

int ranks_attr(const diag::SpanAttrs& attrs) {
  for (const char* key : {"n", "ranks", "Group_size", "group_size", "nranks"}) {
    const std::int64_t v = attr_i64(attrs, key, -1);
    if (v >= 1) return static_cast<int>(v);
  }
  return -1;
}

collective::Domain domain_attr(const diag::SpanAttrs& attrs) {
  const std::string dom = attrs.text("dom");
  if (dom == "intra" || dom == "nvlink") return collective::Domain::kIntraNode;
  return collective::Domain::kInterNode;
}

std::string domain_suffix(collective::Domain d) {
  return d == collective::Domain::kIntraNode ? "intra" : "inter";
}

bool classify_collective_name(const std::string& name, CollOp& op) {
  const std::string n = lower(name);
  if (contains(n, "allreduce") || contains(n, "all_reduce") ||
      contains(n, "all-reduce")) {
    op = CollOp::kAllReduce;
    return true;
  }
  if (contains(n, "allgather") || contains(n, "all_gather") ||
      contains(n, "all-gather")) {
    op = CollOp::kAllGather;
    return true;
  }
  if (contains(n, "reducescatter") || contains(n, "reduce_scatter") ||
      contains(n, "reduce-scatter")) {
    op = CollOp::kReduceScatter;
    return true;
  }
  if (contains(n, "alltoall") || contains(n, "all_to_all") ||
      contains(n, "all-to-all")) {
    op = CollOp::kAllToAll;
    return true;
  }
  if (contains(n, "broadcast") || contains(n, "bcast")) {
    op = CollOp::kBroadcast;
    return true;
  }
  if (contains(n, "sendrecv") || contains(n, "send_recv") || n == "send" ||
      n == "recv" || contains(n, "p2p")) {
    op = CollOp::kP2p;
    return true;
  }
  return false;
}

/// Coverage-only keyword classes for external per-kernel traces: these do
/// not feed the fitter (no per-kernel FLOP features), but their time share
/// appears in the residual report so the operator can see what the model
/// left out.
std::string kernel_coverage_label(const std::string& name) {
  const std::string n = lower(name);
  if (contains(n, "flash") || contains(n, "attention") ||
      contains(n, "softmax")) {
    return "kernel:attention";
  }
  if (contains(n, "gemm") || contains(n, "matmul") || contains(n, "::mm") ||
      contains(n, "linear") || contains(n, "cutlass")) {
    return "kernel:gemm";
  }
  if (contains(n, "norm") || contains(n, "gelu") || contains(n, "relu") ||
      contains(n, "residual") || contains(n, "elementwise") ||
      contains(n, "dropout")) {
    return "kernel:elementwise";
  }
  if (contains(n, "adam") || contains(n, "lamb") || contains(n, "optimizer")) {
    return "kernel:optimizer";
  }
  if (contains(n, "memcpy") || contains(n, "memset")) {
    return "kernel:memcpy";
  }
  return "";
}

ClassifiedSpan classify_one(std::size_t index, const diag::TraceSpan& span) {
  ClassifiedSpan out;
  out.span = index;
  const diag::SpanAttrs attrs(span.detail);

  // --- engine-structured compute spans ---
  if (span.tag == "fwd" || span.tag == "bwd") {
    const bool head = attrs.num("head", 0) == 1;
    const bool bwd = span.tag == "bwd";
    out.kind = ClassifiedSpan::Kind::kOperator;
    out.op = bwd ? (head ? OpClass::kBwdHead : OpClass::kBwd)
                 : (head ? OpClass::kFwdHead : OpClass::kFwd);
    out.label = op_class_name(out.op);
    return out;
  }
  if (span.tag == "optimizer" ||
      lower(span.name).find("optimizer") != std::string::npos) {
    out.kind = ClassifiedSpan::Kind::kOperator;
    out.op = OpClass::kOptimizer;
    out.label = op_class_name(out.op);
    return out;
  }

  // --- communication spans ---
  // An explicit `op=` attribute names the wire collective and wins over the
  // span name (ZeRO stage <= 1 all-reduces under a "dp-reducescatter" op).
  CollOp coll_op;
  const std::string op_attr = attrs.text("op");
  const bool name_is_collective =
      (!op_attr.empty() && classify_collective_name(op_attr, coll_op)) ||
      classify_collective_name(span.name, coll_op);
  if (span.tag == "pp-comm" || span.tag == "dp-comm" || name_is_collective) {
    const std::string n = lower(span.name);
    // The wire time of one p2p transfer appears on the send side; recv /
    // recv-wait spans mirror it and would double-count the link.
    if (span.tag == "pp-comm" && (n == "recv" || n == "recv-wait")) {
      out.label = "recv";
      return out;
    }
    if (!name_is_collective) {
      out.label = "comm:" + span.name;
      return out;
    }
    out.coll = coll_op;
    out.ranks = coll_op == CollOp::kP2p ? 2 : ranks_attr(attrs);
    out.bytes = bytes_attr(attrs);
    out.domain = domain_attr(attrs);
    out.calls = std::max(1, attrs.num("calls", 1));
    if (out.bytes < 0 || out.ranks < 1) {
      // Collective without usable size attributes: visible as coverage
      // loss, not a fit sample.
      out.label = "comm:" + std::string(coll_op_name(coll_op)) + "/unsized";
      return out;
    }
    out.kind = ClassifiedSpan::Kind::kCollective;
    out.label = std::string(coll_op_name(coll_op));
    if (coll_op != CollOp::kP2p) {
      out.label += "/n=" + std::to_string(out.ranks);
    }
    out.label += "/" + domain_suffix(out.domain);
    return out;
  }

  if (span.tag == "data" || span.name == "data-load") {
    out.label = "data";
    return out;
  }

  const std::string kernel = kernel_coverage_label(span.name);
  out.label = kernel.empty() ? "other" : kernel;
  return out;
}

}  // namespace

const char* op_class_name(OpClass cls) {
  switch (cls) {
    case OpClass::kFwd: return "fwd";
    case OpClass::kBwd: return "bwd";
    case OpClass::kFwdHead: return "fwd+head";
    case OpClass::kBwdHead: return "bwd+head";
    case OpClass::kOptimizer: return "optimizer";
  }
  return "?";
}

const char* coll_op_name(CollOp op) {
  switch (op) {
    case CollOp::kAllReduce: return "allreduce";
    case CollOp::kAllGather: return "allgather";
    case CollOp::kReduceScatter: return "reducescatter";
    case CollOp::kAllToAll: return "alltoall";
    case CollOp::kBroadcast: return "broadcast";
    case CollOp::kP2p: return "p2p";
  }
  return "?";
}

Classification classify_spans(const std::vector<diag::TraceSpan>& spans) {
  Classification out;
  out.spans.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    ClassifiedSpan c = classify_one(i, spans[i]);
    switch (c.kind) {
      case ClassifiedSpan::Kind::kOperator: ++out.operators; break;
      case ClassifiedSpan::Kind::kCollective: ++out.collectives; break;
      case ClassifiedSpan::Kind::kOther:
        ++out.other;
        if (c.label.size() > 5 && c.label.compare(0, 5, "comm:") == 0 &&
            c.label.find("/unsized") != std::string::npos) {
          ++out.unusable_collectives;
        }
        break;
    }
    out.spans.push_back(std::move(c));
  }
  return out;
}

CollDesignRow coll_design_row(const ClassifiedSpan& s) {
  CollDesignRow row;
  if (s.kind != ClassifiedSpan::Kind::kCollective) return row;
  const double n = static_cast<double>(std::max(2, s.ranks));
  const double bytes = static_cast<double>(s.bytes);
  switch (s.coll) {
    case CollOp::kAllReduce:
      row.lat_coeff = 2.0 * (n - 1.0);
      row.byte_coeff = 2.0 * (n - 1.0) / n * bytes;
      break;
    case CollOp::kAllGather:
    case CollOp::kReduceScatter:
    case CollOp::kAllToAll:
      row.lat_coeff = n - 1.0;
      row.byte_coeff = (n - 1.0) / n * bytes;
      break;
    case CollOp::kBroadcast:
      row.lat_coeff = n - 1.0;
      row.byte_coeff = bytes;
      break;
    case CollOp::kP2p:
      row.lat_coeff = 1.0;
      row.byte_coeff = bytes;
      break;
  }
  const double calls = static_cast<double>(std::max(1, s.calls));
  row.lat_coeff *= calls;
  row.byte_coeff *= calls;
  return row;
}

}  // namespace ms::calib
