// External-trace ingestion for the calibration frontend (ROADMAP item 5).
//
// `msdiag calibrate` accepts two artifact families and normalizes both into
// the repo's span model (diag::TraceSpan):
//  * the repo's own span JSONL (telemetry::jsonl_spans / diag::trace_jsonl);
//  * Chrome-trace / Kineto-style JSON ("trace event format"): either a bare
//    event array or an object with a "traceEvents" array.
//
// Kineto emits a long tail of quirks the strict repo formats never produce,
// and ingestion tolerates all of them instead of failing the load:
//  * string pids/tids ("python 4021", "stream 7") next to numeric ones;
//  * complete ("X") events with fractional-µs timestamps or a missing dur;
//  * metadata ("M"), instant ("i"/"I"), counter ("C") and flow events mixed
//    into the stream — skipped, but counted;
//  * begin/end ("B"/"E") pairs instead of complete events;
//  * per-event `args` objects — flattened into the span's `k=v` detail
//    string so diag::SpanAttrs and the calibration classifier see them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "diag/timeline.h"

namespace ms::calib {

struct IngestResult {
  std::vector<diag::TraceSpan> spans;
  /// Events tolerated but not converted into spans (metadata, counters,
  /// instants, unmatched begin/end halves, X events the span model cannot
  /// represent).
  std::size_t skipped_events = 0;
  /// Human-readable notes about tolerated quirks (first few occurrences).
  std::vector<std::string> warnings;
};

/// Detected on content, not file extension: a leading '{' with a "type"
/// line per row is span JSONL; '[' or an object with "traceEvents" is a
/// Chrome/Kineto trace.
enum class TraceFormat { kSpanJsonl, kChromeTrace, kUnknown };
TraceFormat detect_trace_format(const std::string& text);

/// Parses `text` in either format. Returns false (with `error` set) only
/// when the artifact is structurally unreadable; per-event quirks are
/// tolerated and reported through IngestResult.
bool ingest_trace(const std::string& text, IngestResult& out,
                  std::string& error);

/// Convenience: read + ingest a file.
bool ingest_trace_file(const std::string& path, IngestResult& out,
                       std::string& error);

}  // namespace ms::calib
