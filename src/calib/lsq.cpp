#include "calib/lsq.h"

#include <cmath>
#include <cstddef>

namespace ms::calib {

namespace {

/// Gaussian elimination with partial pivoting on the (symmetric) normal
/// matrix. Returns the numerical rank; when a pivot falls below
/// `pivot_tol` relative to the largest diagonal entry, the corresponding
/// unknown is left at zero and counted out of the rank.
int eliminate(std::vector<std::vector<double>>& m, std::vector<double>& rhs,
              std::vector<double>& x, double pivot_tol) {
  const std::size_t n = rhs.size();
  double scale = 0;
  for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, std::fabs(m[i][i]));
  if (scale <= 0) scale = 1.0;
  const double threshold = pivot_tol * scale;

  std::vector<std::size_t> pivot_row(n);
  std::vector<bool> used(n, false);
  int rank = 0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t best = n;
    double best_abs = threshold;
    for (std::size_t r = 0; r < n; ++r) {
      if (used[r]) continue;
      const double a = std::fabs(m[r][col]);
      if (a > best_abs) {
        best_abs = a;
        best = r;
      }
    }
    pivot_row[col] = best;
    if (best == n) continue;  // deficient direction
    used[best] = true;
    ++rank;
    const double inv = 1.0 / m[best][col];
    for (std::size_t r = 0; r < n; ++r) {
      if (r == best) continue;
      const double f = m[r][col] * inv;
      if (f == 0) continue;
      for (std::size_t c = 0; c < n; ++c) m[r][c] -= f * m[best][c];
      rhs[r] -= f * rhs[best];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) {
    const std::size_t r = pivot_row[col];
    if (r == n) continue;
    x[col] = rhs[r] / m[r][col];
  }
  return rank;
}

bool all_finite(const std::vector<double>& v) {
  for (double d : v) {
    if (!std::isfinite(d)) return false;
  }
  return true;
}

}  // namespace

LsqResult solve_least_squares(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& y) {
  LsqResult out;
  if (rows.empty()) {
    out.error = "no samples";
    return out;
  }
  if (rows.size() != y.size()) {
    out.error = "rows/targets size mismatch";
    return out;
  }
  const std::size_t n = rows.front().size();
  if (n == 0) {
    out.error = "no unknowns";
    return out;
  }
  for (const auto& row : rows) {
    if (row.size() != n) {
      out.error = "ragged design matrix";
      return out;
    }
  }

  // Normal equations.
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
  std::vector<double> atb(n, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    for (std::size_t i = 0; i < n; ++i) {
      if (row[i] == 0) continue;
      atb[i] += row[i] * y[r];
      for (std::size_t j = i; j < n; ++j) ata[i][j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(ata[i][i]) || !std::isfinite(atb[i])) {
      out.error = "non-finite design matrix";
      return out;
    }
  }

  constexpr double kPivotTol = 1e-10;
  auto m = ata;
  auto rhs = atb;
  out.rank = eliminate(m, rhs, out.x, kPivotTol);
  out.degenerate = out.rank < static_cast<int>(n);

  if (out.degenerate || !all_finite(out.x)) {
    // Ridge fallback: λ proportional to the mean diagonal keeps the solve
    // scale-invariant and the solution finite; degeneracy stays flagged so
    // callers report it instead of trusting the underdetermined directions.
    double trace = 0;
    for (std::size_t i = 0; i < n; ++i) trace += ata[i][i];
    const double lambda =
        (trace > 0 ? trace / static_cast<double>(n) : 1.0) * 1e-8;
    m = ata;
    rhs = atb;
    for (std::size_t i = 0; i < n; ++i) m[i][i] += lambda;
    std::vector<double> ridge_x;
    const int ridge_rank = eliminate(m, rhs, ridge_x, kPivotTol);
    if (ridge_rank == static_cast<int>(n) && all_finite(ridge_x)) {
      out.x = std::move(ridge_x);
      out.ridge_used = true;
    } else if (!all_finite(out.x)) {
      out.error = "singular system (ridge fallback failed)";
      return out;
    }
  }
  out.ok = true;
  return out;
}

}  // namespace ms::calib
