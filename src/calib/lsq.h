// Dense linear least squares for the calibration fitter.
//
// The fitting problems here are tiny (2–4 unknowns, tens-to-thousands of
// rows), so the solver forms the normal equations AᵀA x = Aᵀb explicitly
// and runs Gaussian elimination with partial pivoting. What it guarantees,
// because the satellite tests demand it, is *diagnosability*: a singular or
// rank-deficient system is reported as `degenerate` (with the rank found),
// never as NaN parameters — a ridge term (λ scaled to the matrix trace)
// regularizes the solve so the returned vector is always finite.
#pragma once

#include <string>
#include <vector>

namespace ms::calib {

struct LsqResult {
  /// Fitted coefficients; always finite when `ok`.
  std::vector<double> x;
  bool ok = false;
  /// Numerical rank of AᵀA found during elimination.
  int rank = 0;
  /// True when the system was rank-deficient (collinear or missing rows)
  /// and the ridge fallback produced `x`. The parameters are stable and
  /// finite but underdetermined — callers must surface this.
  bool degenerate = false;
  /// True when ridge regularization was applied (degenerate systems, or a
  /// well-posed solve that still produced non-finite values).
  bool ridge_used = false;
  std::string error;  ///< set when !ok (empty system, dimension mismatch)
};

/// Solves min ‖A x − b‖² for A given as `rows` (each of equal width).
/// Weighted rows are expressed by pre-scaling a row and its target.
LsqResult solve_least_squares(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& y);

}  // namespace ms::calib
