// Span classification for calibration: operator classes and collective
// classes (MegaScale §5 diagnosis meets the model/ops + collective/plan
// taxonomies).
//
// Engine-emitted spans are classified from their structured attributes
// (tag, `head=`, `grp=`, `n=`, `B=`); spans from external profilers fall
// back to kernel-name keywords (aten::mm, ncclKernel_AllReduce_..., flash
// attention, fused layernorm, Adam). Operator classes bind to the linear
// feature model in fit.h; collective classes carry the α–β design-row
// coefficients of the ring algorithms in collective/comm.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collective/comm.h"
#include "core/units.h"
#include "diag/depgraph.h"
#include "diag/timeline.h"

namespace ms::calib {

/// Operator classes with distinct linear-feature rows (fit.h). The head
/// variants include the vocabulary projection, which is what makes the
/// GEMM direction separable from attention in the normal equations.
enum class OpClass {
  kFwd,
  kBwd,
  kFwdHead,
  kBwdHead,
  kOptimizer,
};
const char* op_class_name(OpClass cls);

enum class CollOp {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kAllToAll,
  kBroadcast,
  kP2p,
};
const char* coll_op_name(CollOp op);

struct ClassifiedSpan {
  enum class Kind {
    kOperator,    ///< compute span bound to an OpClass feature row
    kCollective,  ///< communication span with α–β design coefficients
    kOther,       ///< recognized but not fitted (data, recv side, bubbles)
  };
  Kind kind = Kind::kOther;
  std::size_t span = 0;  ///< index into the ingested span vector

  // kOperator:
  OpClass op = OpClass::kFwd;

  // kCollective:
  CollOp coll = CollOp::kP2p;
  int ranks = 2;
  Bytes bytes = 0;
  collective::Domain domain = collective::Domain::kInterNode;
  /// Back-to-back invocations folded into one span (bucketed DP
  /// collectives carry `calls=<vpp>`); design coefficients scale by it.
  int calls = 1;

  /// Residual-report bucket, e.g. "bwd+head", "allgather/n=4/inter",
  /// "kernel:gemm" (unfitted coverage classes).
  std::string label;
};

struct Classification {
  std::vector<ClassifiedSpan> spans;  // one entry per input span, same order
  std::size_t operators = 0;
  std::size_t collectives = 0;
  std::size_t other = 0;
  /// Spans that looked like collectives but lacked usable size attributes
  /// (`B=`/bytes and `n=`); counted so coverage loss is visible.
  std::size_t unusable_collectives = 0;
};

/// Classifies every span. Never fails: unrecognized spans land in kOther
/// with a best-effort label.
Classification classify_spans(const std::vector<diag::TraceSpan>& spans);

/// α–β design row of one collective span: duration ≈ lat_coeff * alpha +
/// byte_coeff * (1/bandwidth), per the ring formulas in collective/comm.h.
struct CollDesignRow {
  double lat_coeff = 0;   // multiples of the per-hop latency alpha
  double byte_coeff = 0;  // effective bytes moved through the bottleneck
};
CollDesignRow coll_design_row(const ClassifiedSpan& s);

}  // namespace ms::calib
