#include "calib/calibrate_cli.h"

#include <cstdlib>
#include <ostream>

#include "calib/fit.h"
#include "calib/ingest.h"
#include "calib/replay.h"
#include "diag/artifact.h"
#include "telemetry/exporters.h"
#include "telemetry/trace.h"

namespace ms::calib {

namespace {

constexpr double kDefaultTolerance = 0.02;

struct Options {
  std::string trace_path;
  std::string emit_path;
  std::string fitted_out;
  std::string preset = "fixture";
  bool as_json = false;
  bool no_replay = false;
  double tolerance = kDefaultTolerance;
  // --emit generating parameters (defaults deliberately off the profile
  // nominals so a fixture round-trip proves real recovery).
  double gemm_eff = 0.65;
  double attn_eff = 0.50;
  double mem_eff = 0.95;
  double net_eff = 0.85;
};

bool parse_args(const std::vector<std::string>& args, Options& opt,
                std::ostream& err) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const char* {
      return (i + 1 < args.size()) ? args[++i].c_str() : nullptr;
    };
    auto num_value = [&](double& slot) {
      const char* v = value();
      if (v == nullptr) return false;
      slot = std::atof(v);
      return true;
    };
    if (arg == "--emit") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.emit_path = v;
    } else if (arg == "--preset") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.preset = v;
    } else if (arg == "--fitted-out") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.fitted_out = v;
    } else if (arg == "--json") {
      opt.as_json = true;
    } else if (arg == "--no-replay") {
      opt.no_replay = true;
    } else if (arg == "--tolerance") {
      if (!num_value(opt.tolerance)) return false;
    } else if (arg == "--gemm-eff") {
      if (!num_value(opt.gemm_eff)) return false;
    } else if (arg == "--attn-eff") {
      if (!num_value(opt.attn_eff)) return false;
    } else if (arg == "--mem-eff") {
      if (!num_value(opt.mem_eff)) return false;
    } else if (arg == "--net-eff") {
      if (!num_value(opt.net_eff)) return false;
    } else if (opt.trace_path.empty() && !arg.empty() && arg[0] != '-') {
      opt.trace_path = arg;
    } else {
      err << "msdiag calibrate: unknown argument \"" << arg << "\"\n";
      return false;
    }
  }
  if (opt.preset != "fixture" && opt.preset != "demo") {
    err << "msdiag calibrate: unknown preset \"" << opt.preset
        << "\" (expected fixture|demo)\n";
    return false;
  }
  return true;
}

int emit_main(const Options& opt, std::ostream& out, std::ostream& err) {
  engine::JobConfig cfg =
      opt.preset == "demo" ? demo_config() : fixture_config();
  cfg.ops.gemm_efficiency = opt.gemm_eff;
  cfg.ops.attention_efficiency = opt.attn_eff;
  cfg.ops.flash_attention2_efficiency = opt.attn_eff;
  cfg.cluster.gpu.hbm_bw *= opt.mem_eff;
  cfg.network_efficiency = opt.net_eff;
  if (const std::string problem = engine::validate(cfg); !problem.empty()) {
    err << "msdiag calibrate: invalid emit config: " << problem << "\n";
    return 1;
  }
  telemetry::Tracer tracer;
  cfg.tracer = &tracer;
  const engine::IterationResult result = engine::simulate_iteration(cfg);
  if (!diag::write_text_file(opt.emit_path,
                             telemetry::jsonl_spans(tracer.spans()))) {
    err << "msdiag calibrate: cannot write " << opt.emit_path << "\n";
    return 1;
  }
  out << "wrote " << opt.emit_path << " (" << tracer.size()
      << " spans, step " << format_duration(result.iteration_time)
      << ", gemm " << opt.gemm_eff << " attn " << opt.attn_eff << " mem "
      << opt.mem_eff << " net " << opt.net_eff << ")\n";
  return 0;
}

}  // namespace

engine::JobConfig fixture_config() {
  engine::JobConfig cfg;
  cfg.model = model::config_13b();
  cfg.par.tp = 1;
  cfg.par.pp = 4;
  cfg.par.vpp = 2;
  cfg.par.dp = 4;
  cfg.global_batch = 64;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

engine::JobConfig demo_config() {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par.tp = 8;
  cfg.par.pp = 8;
  cfg.par.vpp = 6;
  cfg.par.dp = 4;
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

std::string calibrate_usage() {
  return "  msdiag calibrate <trace> [--preset fixture|demo] [--json]\n"
         "                   [--fitted-out FILE] [--no-replay] [--tolerance "
         "T]\n"
         "      fit operator/collective parameters to a trace (span JSONL or\n"
         "      Chrome/Kineto JSON) and validate by re-simulation\n"
         "  msdiag calibrate --emit <out.jsonl> [--preset fixture|demo]\n"
         "                   [--gemm-eff X] [--attn-eff X] [--mem-eff X] "
         "[--net-eff X]\n"
         "      simulate one step with known parameters and write the trace\n";
}

int calibrate_main(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  Options opt;
  if (!parse_args(args, opt, err)) {
    err << calibrate_usage();
    return 1;
  }
  if (!opt.emit_path.empty()) return emit_main(opt, out, err);
  if (opt.trace_path.empty()) {
    err << calibrate_usage();
    return 1;
  }

  IngestResult ingest;
  std::string error;
  if (!ingest_trace_file(opt.trace_path, ingest, error)) {
    err << "msdiag calibrate: " << error << "\n";
    return 1;
  }
  for (const auto& w : ingest.warnings) {
    err << "msdiag calibrate: warning: " << w << "\n";
  }

  const engine::JobConfig base =
      opt.preset == "demo" ? demo_config() : fixture_config();
  const CalibrationReport report = fit_trace(ingest.spans, base);

  ReplayResult replay;
  const bool run_replay = !opt.no_replay && report.ok;
  if (run_replay) {
    replay = replay_fit(ingest.spans, report, base, opt.tolerance);
  }

  std::string artifact = report_jsonl(report);
  if (run_replay) artifact += replay_jsonl(replay);
  if (!opt.fitted_out.empty() &&
      !diag::write_text_file(opt.fitted_out, artifact)) {
    err << "msdiag calibrate: cannot write " << opt.fitted_out << "\n";
    return 1;
  }

  if (opt.as_json) {
    out << artifact;
  } else {
    if (ingest.skipped_events > 0) {
      out << "ingested " << ingest.spans.size() << " spans ("
          << ingest.skipped_events << " events skipped)\n";
    }
    out << report_table(report);
    if (run_replay) out << "\n" << replay_table(replay);
  }

  if (!report.ok) {
    err << "msdiag calibrate: " << report.error << "\n";
    return 1;
  }
  if (run_replay && (!replay.ok || !replay.within_tolerance)) {
    err << "msdiag calibrate: replay "
        << (replay.ok ? "out of tolerance" : "failed: " + replay.error)
        << "\n";
    return 1;
  }
  return 0;
}

}  // namespace ms::calib
