// Parameter fitting against an ingested trace (the calibration half of
// ROADMAP item 5; PrismLLM/RAPID-LLM-style model calibration).
//
// The insight that makes this a *linear* least-squares problem: every
// duration the analytic model produces is linear in the inverse unknowns —
//   compute span  ≈ G·(1/gemm_eff) + A·(1/attn_eff) + M·(1/mem_eff) + F
//   collective    ≈ L·alpha + S_eff·(1/bandwidth)
// where (G, A, M, F) are per-class features extracted by probing the
// repo's own OpCostModel (so features cannot drift from the cost model),
// and (L, S_eff) are the ring-collective design coefficients from
// classify.h. Fitting recovers operator efficiencies and per-domain α–β
// parameters; residuals are reported per class with worst offenders, and
// degenerate systems (one collective class, collinear sizes, empty traces)
// are flagged — never NaN (lsq.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "calib/classify.h"
#include "collective/comm.h"
#include "core/time.h"
#include "diag/timeline.h"
#include "engine/job.h"

namespace ms::telemetry {
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::calib {

struct OperatorFit {
  bool fitted = false;
  bool degenerate = false;  ///< rank-deficient system; values are ridge'd
  bool ridge_used = false;
  int samples = 0;
  double gemm_efficiency = 0;
  double attention_efficiency = 0;
  /// Attained fraction of nominal HBM bandwidth (elementwise/optimizer
  /// kernels); multiplies GpuSpec::hbm_bw on apply.
  double memory_efficiency = 0;
  std::string note;  ///< why not fitted / what was degenerate
};

struct CollectiveFit {
  collective::Domain domain = collective::Domain::kInterNode;
  bool fitted = false;
  bool degenerate = false;
  bool ridge_used = false;
  int samples = 0;
  TimeNs alpha = 0;        ///< per-hop latency
  Bandwidth bandwidth = 0; ///< effective bus/fabric bandwidth per rank
  std::string note;
};

struct ClassResidual {
  std::string cls;
  int samples = 0;
  TimeNs observed_total = 0;
  TimeNs modeled_total = 0;
  /// RMS of per-span relative errors (|model − observed| / observed).
  double rel_rms = 0;
  double worst_rel = 0;
  std::string worst_span;  ///< "name@rank start=..." of the worst offender
  bool fitted = false;     ///< false for coverage-only classes (kernel:*)
};

struct CalibrationReport {
  bool ok = false;
  std::string error;  ///< set when !ok (empty trace, nothing fittable)

  OperatorFit ops;
  std::vector<CollectiveFit> coll;  ///< one entry per domain with samples
  std::vector<ClassResidual> residuals;

  /// Pooled relative-RMS residual over every fitted span.
  double fit_rel_rms = 0;
  std::size_t spans_total = 0;
  std::size_t spans_fitted = 0;
  std::size_t spans_other = 0;
  TimeNs trace_makespan = 0;

  /// Order-sensitive FNV-1a over classes, counts and fitted parameters —
  /// equal traces must produce equal digests (determinism gate).
  std::uint64_t digest = 0;
};

/// Fits operator and collective parameters to `spans`, using `base` for
/// the workload shape (model, parallelism, nominal cluster) the features
/// are derived from.
CalibrationReport fit_trace(const std::vector<diag::TraceSpan>& spans,
                            const engine::JobConfig& base);

/// Writes the fitted parameters back into a JobConfig: operator
/// efficiencies into OperatorProfile, α–β into the cluster spec
/// (network_efficiency / nic_bw for inter-node, nvlink for intra-node).
/// Unfitted or degenerate parameter groups are left untouched.
void apply_fit(const CalibrationReport& report, engine::JobConfig& cfg);

/// Human-readable report: fitted parameters + per-class residual table.
std::string report_table(const CalibrationReport& report);

/// Machine-readable JSONL: one `calib_params` line, one `calib_residual`
/// line per class (the artifact CI uploads).
std::string report_jsonl(const CalibrationReport& report);

/// Exports `calib_residual{class=...}` gauges and fit summary gauges into
/// a metrics registry.
void export_metrics(const CalibrationReport& report,
                    telemetry::MetricsRegistry& metrics);

}  // namespace ms::calib
