#include "calib/fit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "calib/lsq.h"
#include "check/digest.h"
#include "core/table.h"
#include "parallel/overlap.h"
#include "parallel/zero.h"
#include "telemetry/metrics.h"

namespace ms::calib {

namespace {

constexpr std::size_t kNumOpClasses = 5;

/// Per-op-class durations of the engine's chunk assembly (replicates
/// engine/job.cpp's composition: layers_per_chunk x fold_tp(layer, tp_comm),
/// logits head on the last chunk, ZeRO-2 optimizer shard).
struct ClassTimes {
  TimeNs t[kNumOpClasses] = {0, 0, 0, 0, 0};
};

/// Evaluates the chunk durations with the base profile's inverse
/// efficiencies scaled by (xg, xa, xm): gemm_efficiency /= xg, attention
/// efficiencies /= xa, hbm_bw /= xm. With tp == 1 (or tp_overlap off) the
/// result is exactly linear in (xg, xa, xm); chunked TP overlap folds a
/// max(), for which the probe yields a secant linearization around the
/// base operating point.
ClassTimes eval_classes(const engine::JobConfig& cfg, double xg, double xa,
                        double xm) {
  model::OperatorProfile prof = cfg.ops;
  prof.gemm_efficiency /= xg;
  prof.attention_efficiency /= xa;
  prof.flash_attention2_efficiency /= xa;
  collective::GpuSpec gpu = cfg.cluster.gpu;
  gpu.hbm_bw /= xm;

  const auto& par = cfg.par;
  const int layers_per_chunk = cfg.model.layers / (par.pp * par.vpp);
  const std::int64_t micro_tokens = cfg.model.seq_len;
  const std::int64_t elem_tokens =
      par.sequence_parallel ? micro_tokens / par.tp : micro_tokens;

  const model::OpCostModel cost(cfg.model, prof, gpu);
  const parallel::Zero2Sharding zero(model::params_count(cfg.model), par);

  // Per-layer TP/SP communication is paid to the *base* cluster — it is a
  // fixed additive term here (the intra-node alpha-beta parameters are
  // fitted from collective spans, not folded compute).
  TimeNs tp_comm_layer = 0;
  if (par.tp > 1) {
    const collective::CollectiveModel coll(cfg.cluster,
                                           cfg.network_efficiency);
    const Bytes act_bytes = micro_tokens * cfg.model.hidden * 2;
    const int tp_comms = cfg.model.parallel_block ? 1 : 2;
    tp_comm_layer =
        tp_comms *
        (coll.all_gather(act_bytes, par.tp, collective::Domain::kIntraNode) +
         coll.reduce_scatter(act_bytes, par.tp,
                             collective::Domain::kIntraNode));
  }
  auto fold_tp = [&](TimeNs compute) -> TimeNs {
    if (tp_comm_layer == 0) return compute;
    if (cfg.overlap.tp_overlap) {
      return parallel::chunked_overlap(compute, tp_comm_layer,
                                       cfg.overlap.tp_overlap_chunks)
          .total;
    }
    return compute + tp_comm_layer;
  };

  TimeNs fwd = layers_per_chunk *
               fold_tp(cost.fwd_layer(micro_tokens, elem_tokens, par.tp));
  TimeNs bwd = layers_per_chunk *
               fold_tp(cost.bwd_layer(micro_tokens, elem_tokens, par.tp));
  if (cfg.full_recompute) bwd += fwd;
  const TimeNs logits = cost.fwd_logits(micro_tokens, par.tp);

  ClassTimes out;
  out.t[static_cast<int>(OpClass::kFwd)] = fwd;
  out.t[static_cast<int>(OpClass::kBwd)] = bwd;
  out.t[static_cast<int>(OpClass::kFwdHead)] = fwd + logits;
  out.t[static_cast<int>(OpClass::kBwdHead)] = bwd + 2 * logits;
  out.t[static_cast<int>(OpClass::kOptimizer)] =
      cost.optimizer_step(zero.optimizer_shard_params());
  return out;
}

/// Linear features of one op class: duration ~= g*xg + a*xa + m*xm + f,
/// where x* are inverse-efficiency multipliers relative to the base
/// profile. Extracted by probing at doubled multipliers — the features can
/// never drift from OpCostModel because they *are* OpCostModel.
struct OpFeatures {
  double g = 0, a = 0, m = 0, f = 0;
};

void extract_features(const engine::JobConfig& cfg,
                      OpFeatures (&feat)[kNumOpClasses]) {
  const ClassTimes t0 = eval_classes(cfg, 1.0, 1.0, 1.0);
  const ClassTimes tg = eval_classes(cfg, 2.0, 1.0, 1.0);
  const ClassTimes ta = eval_classes(cfg, 1.0, 2.0, 1.0);
  const ClassTimes tm = eval_classes(cfg, 1.0, 1.0, 2.0);
  for (std::size_t k = 0; k < kNumOpClasses; ++k) {
    const double base = static_cast<double>(t0.t[k]);
    feat[k].g = static_cast<double>(tg.t[k]) - base;
    feat[k].a = static_cast<double>(ta.t[k]) - base;
    feat[k].m = static_cast<double>(tm.t[k]) - base;
    feat[k].f = base - feat[k].g - feat[k].a - feat[k].m;
  }
}

double span_duration(const diag::TraceSpan& s) {
  return static_cast<double>(s.end - s.start);
}

/// Relative weight: rows scaled by 1/observed turn the solve into relative
/// least squares, so microsecond optimizer spans are not drowned out by
/// millisecond chunk spans.
double row_weight(double observed) { return 1.0 / std::max(observed, 1.0); }

std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

const char* domain_name(collective::Domain d) {
  return d == collective::Domain::kIntraNode ? "intra" : "inter";
}

/// Quantize a double for digest folding (fixed point, ppb resolution).
std::int64_t quant(double v) {
  const double scaled = v * giga(1.0);
  if (!std::isfinite(scaled)) return -1;
  return std::llround(std::min(std::max(scaled, -9.0e18), 9.0e18));
}

}  // namespace

CalibrationReport fit_trace(const std::vector<diag::TraceSpan>& spans,
                            const engine::JobConfig& base) {
  CalibrationReport report;
  report.spans_total = spans.size();
  if (spans.empty()) {
    report.error = "empty trace: no spans to fit";
    return report;
  }
  const std::string cfg_err = engine::validate(base);
  if (!cfg_err.empty()) {
    report.error = "invalid base config: " + cfg_err;
    return report;
  }

  TimeNs t_min = spans.front().start, t_max = spans.front().end;
  for (const auto& s : spans) {
    t_min = std::min(t_min, s.start);
    t_max = std::max(t_max, s.end);
  }
  report.trace_makespan = t_max - t_min;

  const Classification cls = classify_spans(spans);
  OpFeatures feat[kNumOpClasses];
  extract_features(base, feat);

  // ---- operator fit: solve for (xg, xa, xm) ----
  std::vector<std::vector<double>> op_rows;
  std::vector<double> op_y;
  for (const auto& c : cls.spans) {
    if (c.kind != ClassifiedSpan::Kind::kOperator) continue;
    const OpFeatures& fk = feat[static_cast<int>(c.op)];
    const double obs = span_duration(spans[c.span]);
    const double w = row_weight(obs);
    op_rows.push_back({fk.g * w, fk.a * w, fk.m * w});
    op_y.push_back((obs - fk.f) * w);
  }
  report.ops.samples = static_cast<int>(op_rows.size());
  if (op_rows.empty()) {
    report.ops.note = "no operator spans";
  } else {
    const LsqResult sol = solve_least_squares(op_rows, op_y);
    if (!sol.ok) {
      report.ops.note = sol.error;
    } else {
      report.ops.fitted = true;
      report.ops.degenerate = sol.degenerate;
      report.ops.ridge_used = sol.ridge_used;
      // x* are inverse-efficiency multipliers; convert back to absolute
      // efficiencies relative to the base profile. Non-positive multipliers
      // (heavily degenerate systems) are clamped away from zero so the
      // report never divides by zero.
      const double xg = std::max(sol.x[0], 1.0e-6);
      const double xa = std::max(sol.x[1], 1.0e-6);
      const double xm = std::max(sol.x[2], 1.0e-6);
      report.ops.gemm_efficiency = base.ops.gemm_efficiency / xg;
      report.ops.attention_efficiency =
          base.ops.effective_attention_efficiency() / xa;
      report.ops.memory_efficiency = 1.0 / xm;
      if (sol.degenerate) {
        report.ops.note =
            "rank " + std::to_string(sol.rank) +
            "/3 system (too few distinct op classes); ridge-stabilized";
      }
    }
  }

  // ---- collective fit: per-domain (alpha, 1/bandwidth) ----
  std::map<collective::Domain, std::pair<std::vector<std::vector<double>>,
                                         std::vector<double>>>
      coll_rows;
  for (const auto& c : cls.spans) {
    if (c.kind != ClassifiedSpan::Kind::kCollective) continue;
    const CollDesignRow row = coll_design_row(c);
    const double obs = span_duration(spans[c.span]);
    const double w = row_weight(obs);
    auto& bucket = coll_rows[c.domain];
    bucket.first.push_back({row.lat_coeff * w, row.byte_coeff * w});
    bucket.second.push_back(obs * w);
  }
  for (auto& [domain, rows] : coll_rows) {
    CollectiveFit fit;
    fit.domain = domain;
    fit.samples = static_cast<int>(rows.first.size());
    const LsqResult sol = solve_least_squares(rows.first, rows.second);
    if (!sol.ok) {
      fit.note = sol.error;
    } else {
      fit.degenerate = sol.degenerate;
      fit.ridge_used = sol.ridge_used;
      const double alpha_ns = std::max(sol.x[0], 0.0);
      const double inv_bw = sol.x[1];  // ns per byte
      if (inv_bw <= 0) {
        fit.note = "non-physical bandwidth (collinear sizes?)";
      } else {
        fit.fitted = true;
        fit.alpha = static_cast<TimeNs>(std::llround(alpha_ns));
        fit.bandwidth = static_cast<double>(kNsPerSec) / inv_bw;
        if (sol.degenerate) {
          fit.note = "rank " + std::to_string(sol.rank) +
                     "/2 system (one collective shape); ridge-stabilized";
        }
      }
    }
    report.coll.push_back(fit);
  }

  // ---- residuals per class ----
  auto modeled_duration = [&](const ClassifiedSpan& c) -> double {
    if (c.kind == ClassifiedSpan::Kind::kOperator && report.ops.fitted) {
      const OpFeatures& fk = feat[static_cast<int>(c.op)];
      const double xg = base.ops.gemm_efficiency /
                        std::max(report.ops.gemm_efficiency, 1.0e-9);
      const double xa = base.ops.effective_attention_efficiency() /
                        std::max(report.ops.attention_efficiency, 1.0e-9);
      const double xm = 1.0 / std::max(report.ops.memory_efficiency, 1.0e-9);
      return fk.g * xg + fk.a * xa + fk.m * xm + fk.f;
    }
    if (c.kind == ClassifiedSpan::Kind::kCollective) {
      for (const auto& fit : report.coll) {
        if (fit.domain != c.domain || !fit.fitted) continue;
        const CollDesignRow row = coll_design_row(c);
        return row.lat_coeff * static_cast<double>(fit.alpha) +
               row.byte_coeff * static_cast<double>(kNsPerSec) /
                   fit.bandwidth;
      }
    }
    return -1.0;  // not modeled
  };

  struct Acc {
    int samples = 0;
    double observed = 0, modeled = 0, sum_sq = 0;
    double worst = -1.0;
    std::string worst_span;
    bool fitted = false;
  };
  std::map<std::string, Acc> by_class;
  double pooled_sq = 0;
  std::size_t pooled_n = 0;
  for (const auto& c : cls.spans) {
    const diag::TraceSpan& s = spans[c.span];
    Acc& acc = by_class[c.label];
    ++acc.samples;
    const double obs = span_duration(s);
    acc.observed += obs;
    const double model = modeled_duration(c);
    if (model < 0) continue;
    acc.fitted = true;
    acc.modeled += model;
    const double rel = std::fabs(model - obs) / std::max(obs, 1.0);
    acc.sum_sq += rel * rel;
    pooled_sq += rel * rel;
    ++pooled_n;
    ++report.spans_fitted;
    if (rel > acc.worst) {
      acc.worst = rel;
      acc.worst_span = s.name + "@" + std::to_string(s.rank) +
                       " start=" + format_duration(s.start - t_min);
    }
  }
  for (const auto& [label, acc] : by_class) {
    ClassResidual r;
    r.cls = label;
    r.samples = acc.samples;
    r.observed_total = static_cast<TimeNs>(std::llround(acc.observed));
    r.modeled_total = static_cast<TimeNs>(std::llround(acc.modeled));
    r.fitted = acc.fitted;
    if (acc.fitted && acc.samples > 0) {
      r.rel_rms = std::sqrt(acc.sum_sq / acc.samples);
      r.worst_rel = std::max(acc.worst, 0.0);
      r.worst_span = acc.worst_span;
    }
    report.residuals.push_back(std::move(r));
  }
  report.spans_other = report.spans_total - report.spans_fitted;
  if (pooled_n > 0) {
    report.fit_rel_rms = std::sqrt(pooled_sq / static_cast<double>(pooled_n));
  }

  bool any_coll = false;
  for (const auto& f : report.coll) any_coll |= f.fitted;
  report.ok = report.ops.fitted || any_coll;
  if (!report.ok) {
    report.error = "no fittable spans in trace (operators: " +
                   std::string(report.ops.note.empty() ? "none"
                                                       : report.ops.note) +
                   ")";
  }

  // ---- determinism digest ----
  // Folds only *fitted* content (parameters + fitted-class residuals), so
  // cosmetic trace differences — profiler metadata, counters, wrapper
  // spans — do not perturb it: a Kineto re-export of the same step must
  // digest identically to the span JSONL it came from.
  check::Digest d;
  d.fold(std::string_view("calib-fit"));
  d.fold(static_cast<std::uint64_t>(report.spans_fitted));
  d.fold(static_cast<std::uint64_t>(report.ops.fitted ? 1 : 0));
  d.fold(quant(report.ops.gemm_efficiency));
  d.fold(quant(report.ops.attention_efficiency));
  d.fold(quant(report.ops.memory_efficiency));
  for (const auto& f : report.coll) {
    d.fold(std::string_view(domain_name(f.domain)));
    d.fold(static_cast<std::uint64_t>(f.fitted ? 1 : 0));
    d.fold(f.alpha);
    d.fold(static_cast<std::int64_t>(std::llround(f.bandwidth)));
  }
  for (const auto& r : report.residuals) {
    if (!r.fitted) continue;
    d.fold(std::string_view(r.cls));
    d.fold(static_cast<std::int64_t>(r.samples));
    d.fold(quant(r.rel_rms));
  }
  report.digest = d.value();
  return report;
}

void apply_fit(const CalibrationReport& report, engine::JobConfig& cfg) {
  if (report.ops.fitted && !report.ops.degenerate) {
    cfg.ops.gemm_efficiency = report.ops.gemm_efficiency;
    // Set both attention fields so the fitted value wins regardless of the
    // flash_attention2 flag.
    cfg.ops.attention_efficiency = report.ops.attention_efficiency;
    cfg.ops.flash_attention2_efficiency = report.ops.attention_efficiency;
    cfg.cluster.gpu.hbm_bw *= report.ops.memory_efficiency;
  }
  for (const auto& f : report.coll) {
    if (!f.fitted || f.degenerate) continue;
    if (f.domain == collective::Domain::kInterNode) {
      cfg.cluster.net_latency = f.alpha;
      const double eff = f.bandwidth / cfg.cluster.nic_bw;
      if (eff <= 1.0) {
        cfg.network_efficiency = std::max(eff, 1.0e-3);
      } else {
        // Fitted fabric outruns the nominal NIC: raise the nominal and run
        // at full efficiency rather than clamping information away.
        cfg.cluster.nic_bw = f.bandwidth;
        cfg.network_efficiency = 1.0;
      }
    } else {
      cfg.cluster.nvlink_latency = f.alpha;
      cfg.cluster.nvlink_bw = f.bandwidth;
    }
  }
}

std::string report_table(const CalibrationReport& report) {
  std::string out;
  if (!report.ok) {
    out += "calibration failed: " + report.error + "\n";
    if (report.spans_total > 0) {
      out += "  spans: " + std::to_string(report.spans_total) + " total\n";
    }
    return out;
  }

  Table params({"parameter", "value", "samples", "note"});
  const auto& ops = report.ops;
  if (ops.fitted) {
    const std::string note =
        ops.note.empty() ? (ops.ridge_used ? "ridge" : "") : ops.note;
    params.add_row({"gemm_efficiency", Table::fmt(ops.gemm_efficiency, 4),
                    Table::fmt_int(ops.samples), note});
    params.add_row({"attention_efficiency",
                    Table::fmt(ops.attention_efficiency, 4), "", ""});
    params.add_row({"memory_efficiency",
                    Table::fmt(ops.memory_efficiency, 4), "", ""});
  } else {
    params.add_row({"operators", "unfitted", Table::fmt_int(ops.samples),
                    ops.note});
  }
  for (const auto& f : report.coll) {
    const std::string dom = domain_name(f.domain);
    if (f.fitted) {
      params.add_row({"alpha/" + dom, format_duration(f.alpha),
                      Table::fmt_int(f.samples), f.note});
      params.add_row({"bandwidth/" + dom,
                      Table::fmt(to_gBps(f.bandwidth), 2) + " GB/s", "", ""});
    } else {
      params.add_row({"collectives/" + dom, "unfitted",
                      Table::fmt_int(f.samples), f.note});
    }
  }
  out += "Fitted parameters\n" + params.to_string();

  Table res({"class", "samples", "observed", "modeled", "rel RMS", "worst"});
  for (const auto& r : report.residuals) {
    res.add_row({r.cls, Table::fmt_int(r.samples),
                 format_duration(r.observed_total),
                 r.fitted ? format_duration(r.modeled_total) : "-",
                 r.fitted ? Table::fmt_pct(r.rel_rms, 2) : "-",
                 r.fitted ? Table::fmt_pct(r.worst_rel, 2) + " " + r.worst_span
                          : "(not fitted)"});
  }
  out += "\nPer-class residuals\n" + res.to_string();
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(report.digest));
  out += "\nfit rel-RMS " + Table::fmt_pct(report.fit_rel_rms, 3) + " over " +
         std::to_string(report.spans_fitted) + "/" +
         std::to_string(report.spans_total) + " spans; digest " + digest_hex +
         "\n";
  return out;
}

std::string report_jsonl(const CalibrationReport& report) {
  std::string out = "{\"record\":\"calib_params\",\"ok\":";
  out += report.ok ? "true" : "false";
  if (!report.error.empty()) out += ",\"error\":" + json_str(report.error);
  out += ",\"spans_total\":" + std::to_string(report.spans_total);
  out += ",\"spans_fitted\":" + std::to_string(report.spans_fitted);
  out += ",\"fit_rel_rms\":" + fmt_g(report.fit_rel_rms);
  out += ",\"trace_makespan_ns\":" + std::to_string(report.trace_makespan);
  out += ",\"ops\":{\"fitted\":";
  out += report.ops.fitted ? "true" : "false";
  out += ",\"degenerate\":";
  out += report.ops.degenerate ? "true" : "false";
  out += ",\"samples\":" + std::to_string(report.ops.samples);
  out += ",\"gemm_efficiency\":" + fmt_g(report.ops.gemm_efficiency);
  out += ",\"attention_efficiency\":" + fmt_g(report.ops.attention_efficiency);
  out += ",\"memory_efficiency\":" + fmt_g(report.ops.memory_efficiency);
  if (!report.ops.note.empty()) out += ",\"note\":" + json_str(report.ops.note);
  out += "},\"collectives\":[";
  for (std::size_t i = 0; i < report.coll.size(); ++i) {
    const auto& f = report.coll[i];
    if (i > 0) out += ',';
    out += "{\"domain\":" + json_str(domain_name(f.domain));
    out += ",\"fitted\":";
    out += f.fitted ? "true" : "false";
    out += ",\"degenerate\":";
    out += f.degenerate ? "true" : "false";
    out += ",\"samples\":" + std::to_string(f.samples);
    out += ",\"alpha_ns\":" + std::to_string(f.alpha);
    out += ",\"bandwidth_Bps\":" + fmt_g(f.bandwidth);
    if (!f.note.empty()) out += ",\"note\":" + json_str(f.note);
    out += '}';
  }
  out += "],\"digest\":\"" + std::to_string(report.digest) + "\"}\n";
  for (const auto& r : report.residuals) {
    out += "{\"record\":\"calib_residual\",\"class\":" + json_str(r.cls);
    out += ",\"samples\":" + std::to_string(r.samples);
    out += ",\"observed_ns\":" + std::to_string(r.observed_total);
    out += ",\"modeled_ns\":" + std::to_string(r.modeled_total);
    out += ",\"fitted\":";
    out += r.fitted ? "true" : "false";
    out += ",\"rel_rms\":" + fmt_g(r.rel_rms);
    out += ",\"worst_rel\":" + fmt_g(r.worst_rel);
    if (!r.worst_span.empty()) {
      out += ",\"worst_span\":" + json_str(r.worst_span);
    }
    out += "}\n";
  }
  return out;
}

void export_metrics(const CalibrationReport& report,
                    telemetry::MetricsRegistry& metrics) {
  metrics.gauge("calib_fit_ok").set(report.ok ? 1.0 : 0.0);
  metrics.gauge("calib_fit_rel_rms").set(report.fit_rel_rms);
  metrics.gauge("calib_spans_fitted")
      .set(static_cast<double>(report.spans_fitted));
  metrics.gauge("calib_spans_total")
      .set(static_cast<double>(report.spans_total));
  if (report.ops.fitted) {
    metrics.gauge("calib_gemm_efficiency").set(report.ops.gemm_efficiency);
    metrics.gauge("calib_attention_efficiency")
        .set(report.ops.attention_efficiency);
    metrics.gauge("calib_memory_efficiency").set(report.ops.memory_efficiency);
  }
  for (const auto& f : report.coll) {
    if (!f.fitted) continue;
    const telemetry::Labels labels{{"domain", domain_name(f.domain)}};
    metrics.gauge("calib_alpha_seconds", labels).set(to_seconds(f.alpha));
    metrics.gauge("calib_bandwidth_gbps", labels).set(to_gbps(f.bandwidth));
  }
  for (const auto& r : report.residuals) {
    metrics.gauge("calib_residual", {{"class", r.cls}})
        .set(r.fitted ? r.rel_rms : -1.0);
  }
}

}  // namespace ms::calib
