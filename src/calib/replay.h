// Replay validation: the loop-closing half of `msdiag calibrate`.
//
// A fit is only trustworthy if the simulator, re-run with the fitted
// parameters, reproduces the trace it was fitted to. Replay applies the
// fit to the base JobConfig, re-simulates one iteration, and compares
//  * the end-to-end step time (relative error against a tolerance), and
//  * the §5.2 blame tiling — per-cause shares of the critical path from
//    diag::analyze_spans on both sides — so a fit that nails the total by
//    cancelling errors between compute and communication still fails.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "calib/fit.h"
#include "core/time.h"
#include "diag/timeline.h"
#include "engine/job.h"

namespace ms::telemetry {
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::calib {

/// Per-cause share of the critical path on both sides of the replay.
struct CauseShare {
  std::string cause;      ///< diag::segment_kind_name
  double trace_share = 0;  ///< fraction of the traced step's makespan
  double sim_share = 0;    ///< fraction of the replayed step's makespan
  double delta() const { return sim_share - trace_share; }
};

struct ReplayResult {
  bool ok = false;
  std::string error;  ///< set when replay could not run

  TimeNs trace_step = 0;  ///< makespan of the ingested trace
  TimeNs sim_step = 0;    ///< makespan of the re-simulated iteration
  double rel_error = 0;   ///< |sim - trace| / trace
  double tolerance = 0;
  bool within_tolerance = false;

  std::vector<CauseShare> shares;  ///< sorted by cause name (deterministic)
  double max_share_delta = 0;      ///< worst per-cause tiling disagreement

  std::uint64_t digest = 0;  ///< FNV-1a over the comparison (determinism)
};

/// Applies `report` to a copy of `base`, re-simulates, and compares against
/// the trace `spans` were ingested from. `tolerance` is the relative step-
/// time error the replay must beat to count as validated.
ReplayResult replay_fit(const std::vector<diag::TraceSpan>& spans,
                        const CalibrationReport& report,
                        const engine::JobConfig& base, double tolerance);

/// Human-readable comparison: step times + per-cause share table.
std::string replay_table(const ReplayResult& r);

/// One `calib_replay` JSONL record.
std::string replay_jsonl(const ReplayResult& r);

/// Exports `calib_replay_error` and per-cause share deltas as gauges.
void export_metrics(const ReplayResult& r, telemetry::MetricsRegistry& metrics);

}  // namespace ms::calib
