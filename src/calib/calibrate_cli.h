// `msdiag calibrate` — the calibration & trace-replay frontend (CLI half).
//
//   msdiag calibrate <trace> [--preset fixture|demo] [--json]
//                    [--fitted-out FILE] [--no-replay] [--tolerance T]
//       ingest a trace (span JSONL or Chrome/Kineto JSON), fit operator
//       efficiencies and alpha-beta collective parameters, report per-class
//       residuals, then replay the fit through the simulator and check the
//       step time against the tolerance (exit 1 when out of tolerance)
//   msdiag calibrate --emit <out.jsonl> [--preset fixture|demo]
//                    [--gemm-eff X] [--attn-eff X] [--mem-eff X]
//                    [--net-eff X]
//       simulate one step with the given "true" parameters and write the
//       span-JSONL trace — the generator behind tests/golden/calib and the
//       round-trip acceptance gate.
//
// Like msdiag_main, the entry point takes argv-style strings and writes to
// caller-supplied streams so tests drive it exactly like the shell does.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/job.h"

namespace ms::calib {

/// The fixture workload: 13B model, tp=1 (keeps every fitted duration
/// exactly linear in the unknowns — no chunked TP-overlap folding), pp=4,
/// vpp=2, dp=4, MegaScale overlap + operators. Small enough for tier-1
/// tests, rich enough to make all three operator directions and the
/// inter-node alpha-beta pair identifiable.
engine::JobConfig fixture_config();

/// The `msdiag demo` workload (175B, tp=8 pp=8 vpp=6 dp=4): what a user
/// calibrating a demo-generated trace should pass as --preset.
engine::JobConfig demo_config();

/// Runs one calibrate invocation. Returns a process exit code: 0 on
/// success, 1 on usage/load/fit errors or an out-of-tolerance replay.
int calibrate_main(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

std::string calibrate_usage();

}  // namespace ms::calib
