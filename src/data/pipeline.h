// Data-pipeline cost model (MegaScale §3.4).
//
// Two production optimizations are modeled:
//  * Redundant-dataloader elimination: stock training gives every GPU
//    worker its own dataloader, so 8 workers per machine compete for disk
//    bandwidth reading IDENTICAL bytes (workers in one machine form a TP
//    group and consume the same input). MegaScale reads once per machine
//    into shared memory and lets workers memcpy their slice.
//  * Asynchronous preprocessing: preprocessing for step k+1 runs while the
//    GPUs synchronize gradients of step k, so it leaves the critical path.
#pragma once

#include "core/time.h"
#include "core/units.h"

namespace ms::telemetry {
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::data {

struct DataPipelineConfig {
  int gpus_per_node = 8;
  /// Token-id payload of one sample (sequence) on disk: 2048 tokens x 4 B.
  Bytes sample_bytes = 2048 * 4;
  /// Samples a machine must supply per step (its GPUs' microbatches).
  int samples_per_step = 64;
  Bandwidth disk_read_bw = gBps(2.0);  ///< shared per machine
  TimeNs per_read_overhead = microseconds(50.0);
  Bandwidth shm_copy_bw = gBps(20.0);
  /// CPU tokenization/augmentation per sample.
  TimeNs preprocess_per_sample = microseconds(400.0);
  int cpu_workers = 16;

  bool redundant_loaders = true;     ///< stock: one loader per GPU
  bool async_preprocessing = false;  ///< MegaScale: overlap with grad sync
};

struct DataStepCost {
  TimeNs disk_read = 0;    ///< wall time to get bytes off the disk
  TimeNs shm_copy = 0;     ///< worker copy out of shared memory
  TimeNs preprocess = 0;   ///< CPU preprocessing wall time
  /// GPU idle time charged to the step head: reads + copies + (preprocess
  /// unless asynchronous).
  TimeNs exposed = 0;
};

DataStepCost data_step_cost(const DataPipelineConfig& cfg);

/// Same, recording each component into `metrics` (histograms of
/// disk/shm/preprocess/exposed seconds + a step counter, labeled
/// {mode=redundant|shared}). `metrics` may be nullptr.
DataStepCost data_step_cost(const DataPipelineConfig& cfg,
                            telemetry::MetricsRegistry* metrics);

}  // namespace ms::data
