#include "data/shm.h"

#include <cassert>

namespace ms::data {

ShmBroadcastBuffer::ShmBroadcastBuffer(int consumers, std::size_t slots)
    : slots_(slots), consumers_(consumers) {
  assert(consumers >= 1 && slots >= 1);
}

bool ShmBroadcastBuffer::publish(std::vector<std::uint8_t> batch) {
  std::unique_lock<std::mutex> lock(mu_);
  Slot* slot = nullptr;
  cv_.wait(lock, [&] {
    if (closed_) return true;
    for (auto& s : slots_) {
      if (s.remaining_readers == 0) {
        slot = &s;
        return true;
      }
    }
    return false;
  });
  if (closed_) return false;
  slot->generation = next_generation_++;
  slot->remaining_readers = consumers_;
  slot->data = std::move(batch);
  cv_.notify_all();
  return true;
}

std::vector<std::uint8_t> ShmBroadcastBuffer::fetch(std::int64_t generation) {
  std::unique_lock<std::mutex> lock(mu_);
  Slot* slot = nullptr;
  cv_.wait(lock, [&] {
    if (closed_ && next_generation_ <= generation) return true;
    for (auto& s : slots_) {
      if (s.generation == generation && s.remaining_readers > 0) {
        slot = &s;
        return true;
      }
    }
    return false;
  });
  if (slot == nullptr) return {};  // closed before this generation
  std::vector<std::uint8_t> copy = slot->data;
  if (--slot->remaining_readers == 0) {
    // Slot is free for the producer again (keep data until overwritten).
    cv_.notify_all();
  }
  return copy;
}

void ShmBroadcastBuffer::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::int64_t ShmBroadcastBuffer::published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_generation_;
}

}  // namespace ms::data
