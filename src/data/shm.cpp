#include "data/shm.h"

#include <cassert>

namespace ms::data {

ShmBroadcastBuffer::ShmBroadcastBuffer(int consumers, std::size_t slots)
    : slots_(slots), consumers_(consumers) {
  assert(consumers >= 1 && slots >= 1);
}

ShmBroadcastBuffer::Slot* ShmBroadcastBuffer::free_slot() {
  for (auto& s : slots_) {
    if (s.remaining_readers == 0) return &s;
  }
  return nullptr;
}

ShmBroadcastBuffer::Slot* ShmBroadcastBuffer::slot_of(std::int64_t generation) {
  for (auto& s : slots_) {
    if (s.generation == generation && s.remaining_readers > 0) return &s;
  }
  return nullptr;
}

bool ShmBroadcastBuffer::publish(std::vector<std::uint8_t> batch) {
  MutexLock lock(mu_);
  Slot* slot = free_slot();
  while (!closed_ && slot == nullptr) {
    cv_.wait(mu_);
    slot = free_slot();
  }
  if (closed_) return false;
  slot->generation = next_generation_++;
  slot->remaining_readers = consumers_;
  slot->data = std::move(batch);
  cv_.notify_all();
  return true;
}

std::vector<std::uint8_t> ShmBroadcastBuffer::fetch(std::int64_t generation) {
  MutexLock lock(mu_);
  Slot* slot = slot_of(generation);
  while (slot == nullptr && !(closed_ && next_generation_ <= generation)) {
    cv_.wait(mu_);
    slot = slot_of(generation);
  }
  if (slot == nullptr) return {};  // closed before this generation
  std::vector<std::uint8_t> copy = slot->data;
  if (--slot->remaining_readers == 0) {
    // Slot is free for the producer again (keep data until overwritten).
    cv_.notify_all();
  }
  return copy;
}

void ShmBroadcastBuffer::close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::int64_t ShmBroadcastBuffer::published() const {
  MutexLock lock(mu_);
  return next_generation_;
}

}  // namespace ms::data
