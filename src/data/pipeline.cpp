#include "data/pipeline.h"

#include <cassert>

#include "telemetry/metrics.h"

namespace ms::data {

DataStepCost data_step_cost(const DataPipelineConfig& cfg) {
  assert(cfg.gpus_per_node >= 1 && cfg.samples_per_step >= 1);
  DataStepCost cost;

  const double step_bytes =
      static_cast<double>(cfg.sample_bytes) * cfg.samples_per_step;

  if (cfg.redundant_loaders) {
    // Every GPU worker reads the full step's data itself: the shared disk
    // serves gpus_per_node copies, plus per-worker read overheads.
    const double total_bytes = step_bytes * cfg.gpus_per_node;
    cost.disk_read = seconds(total_bytes / cfg.disk_read_bw) +
                     cfg.gpus_per_node * cfg.per_read_overhead;
    cost.shm_copy = 0;  // data lands directly in each worker's memory
  } else {
    // Tree-based loading: one dedicated loader reads once into shared
    // memory; workers copy their (identical) batch out concurrently.
    cost.disk_read =
        seconds(step_bytes / cfg.disk_read_bw) + cfg.per_read_overhead;
    cost.shm_copy = seconds(step_bytes / cfg.shm_copy_bw);
  }

  // Preprocessing parallelized over CPU workers.
  const double batches = static_cast<double>(cfg.samples_per_step) /
                         static_cast<double>(cfg.cpu_workers);
  cost.preprocess = static_cast<TimeNs>(
      static_cast<double>(cfg.preprocess_per_sample) * (batches < 1 ? 1 : batches));

  cost.exposed = cost.disk_read + cost.shm_copy +
                 (cfg.async_preprocessing ? 0 : cost.preprocess);
  return cost;
}

DataStepCost data_step_cost(const DataPipelineConfig& cfg,
                            telemetry::MetricsRegistry* metrics) {
  const DataStepCost cost = data_step_cost(cfg);
  if (metrics != nullptr) {
    const telemetry::Labels labels{
        {"mode", cfg.redundant_loaders ? "redundant" : "shared"}};
    metrics->counter("data_steps_total", labels).add();
    metrics->histogram("data_disk_read_seconds", labels)
        .observe(to_seconds(cost.disk_read));
    metrics->histogram("data_shm_copy_seconds", labels)
        .observe(to_seconds(cost.shm_copy));
    metrics->histogram("data_preprocess_seconds", labels)
        .observe(to_seconds(cost.preprocess));
    metrics->histogram("data_exposed_seconds", labels)
        .observe(to_seconds(cost.exposed));
  }
  return cost;
}

}  // namespace ms::data
