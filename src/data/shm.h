// Shared-memory broadcast buffer: the real mechanism behind MegaScale's
// two-layer tree-based data loading (§3.4).
//
// One producer (the machine's single dedicated dataloader) publishes each
// step's batch into a generation-stamped buffer; every consumer (GPU
// worker) fetches exactly one copy of every generation. The producer may
// run one generation ahead (double buffering), which is what lets disk
// reads overlap with the consumers of the previous step.
//
// This is real concurrent code (threads + condition variables), exercised
// by integration tests and a microbenchmark — not a simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace ms::data {

class ShmBroadcastBuffer {
 public:
  /// `consumers`: number of GPU workers that must read each batch.
  explicit ShmBroadcastBuffer(int consumers, std::size_t slots = 2);

  /// Publishes the next batch. Blocks while all slots are still occupied by
  /// unconsumed generations. Returns false after close().
  bool publish(std::vector<std::uint8_t> batch);

  /// Fetches generation `generation` (consumers must fetch 0, 1, 2, ... in
  /// order). Blocks until available. Returns empty after close() if the
  /// generation was never published.
  std::vector<std::uint8_t> fetch(std::int64_t generation);

  /// Wakes all waiters; subsequent publishes fail and unpublished fetches
  /// return empty.
  void close();

  std::int64_t published() const;

 private:
  struct Slot {
    std::int64_t generation = -1;
    int remaining_readers = 0;
    std::vector<std::uint8_t> data;
  };

  /// Finds a free / matching slot; nullptr when none. Callers hold mu_.
  Slot* free_slot() MS_REQUIRES(mu_);
  Slot* slot_of(std::int64_t generation) MS_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<Slot> slots_ MS_GUARDED_BY(mu_);
  int consumers_;
  std::int64_t next_generation_ MS_GUARDED_BY(mu_) = 0;
  bool closed_ MS_GUARDED_BY(mu_) = false;
};

}  // namespace ms::data
