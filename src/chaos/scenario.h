// Named chaos scenarios (the campaign's vocabulary).
//
// Each scenario is a seeded generator: (config, rng) -> FaultSchedule. The
// six canonical ones freeze the failure stories MegaScale §3.6/§4/§5 tells
// from production; `mixed` draws from every class at once and is the
// campaign/shrinker workhorse. Generators are pure functions of the rng
// stream, so one root seed reproduces the exact schedule.
#pragma once

#include <string>
#include <vector>

#include "chaos/config.h"
#include "chaos/schedule.h"
#include "core/rng.h"

namespace ms::chaos {

struct Scenario {
  const char* name;
  const char* summary;
  FaultSchedule (*generate)(const ChaosConfig& cfg, Rng& rng);
};

/// The registry, in documentation order: clean, failstop-midstep,
/// allgather-flap, straggler-ckpt-stall, ecmp-cascade, pfc-storm, mixed.
const std::vector<Scenario>& scenarios();

/// nullptr when unknown.
const Scenario* find_scenario(const std::string& name);

/// The canonical entry point: derives the scenario's schedule stream from
/// `seed` (core derive_seed, domain "chaos.schedule.<name>") and returns
/// the sorted schedule.
FaultSchedule generate_schedule(const ChaosConfig& cfg,
                                const Scenario& scenario, std::uint64_t seed);

}  // namespace ms::chaos
