// Campaign driver: seed fan-out, oracle, shrinker, repro artifacts.
//
// A campaign runs one scenario across N derived seeds and judges every
// outcome with the resilience oracle. Each failing seed is shrunk by
// delta-debugging (ddmin) over the injected fault schedule to a minimal
// schedule that still fails, and packaged as a repro: the exact command
// line that replays it plus a JSON artifact with the outcome record and
// the minimized schedule. This is what turns MegaScale §4's ">90%
// effective time despite faults" from a narrative into a regression gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/config.h"
#include "chaos/outcome.h"
#include "chaos/runner.h"

namespace ms::chaos {

struct OracleVerdict {
  bool pass = true;
  std::string reason;  ///< first failed expectation, empty on pass
};

/// The resilience oracle: every judged fail-stop must have been detected
/// (no detection holes), recovery must have kept the effective-time ratio
/// above the configured floor, and flap aborts must map to restarts.
OracleVerdict evaluate_outcome(const ChaosConfig& cfg,
                               const OutcomeRecord& record);

struct CampaignFailure {
  std::uint64_t seed = 0;
  OutcomeRecord record;
  std::string reason;
  /// ddmin-minimal schedule that still fails the oracle.
  FaultSchedule minimized;
  OutcomeRecord minimized_record;
  /// Command line replaying the failing seed exactly.
  std::string repro;
};

struct CampaignResult {
  std::string scenario;
  std::uint64_t base_seed = 0;
  int seeds = 0;
  int passed = 0;
  std::vector<OutcomeRecord> records;
  std::vector<CampaignFailure> failures;
};

/// Runs `scenario` across seeds derive_seed(base_seed, "chaos.campaign", i)
/// for i in [0, n_seeds); shrinks every failure. Exports
/// chaos_runs_total{scenario,outcome} when cfg.metrics is set.
CampaignResult run_campaign(const ChaosConfig& cfg, const Scenario& scenario,
                            std::uint64_t base_seed, int n_seeds);

/// Delta-debugging (ddmin): returns a subset of `failing` that still fails
/// the oracle and cannot lose any single remaining fault without passing
/// (1-minimality). `failing` must itself fail.
FaultSchedule shrink_schedule(const ChaosConfig& cfg,
                              const std::string& scenario_name,
                              std::uint64_t seed,
                              const FaultSchedule& failing);

/// "chaos_campaign --scenario <name> --seed <seed>[ --canary]".
std::string repro_command(const std::string& scenario_name, std::uint64_t seed,
                          bool canary);

/// Writes <dir>/chaos-<scenario>-seed<seed>.json: the failing record, the
/// oracle reason, the minimized schedule and the repro command. Returns
/// the path written, or "" on I/O failure.
std::string write_failure_artifact(const std::string& dir,
                                   const CampaignFailure& failure);

}  // namespace ms::chaos
