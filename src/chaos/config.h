// Shared configuration for chaos runs (scenario generators + runner).
#pragma once

#include <cstdint>

#include "core/time.h"
#include "core/units.h"
#include "ft/diagnostics.h"
#include "ft/monitor.h"
#include "net/flap.h"

namespace ms::telemetry {
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::diag {
class FlightRecorder;
}  // namespace ms::diag

namespace ms::chaos {

struct ChaosConfig {
  // ---- cluster under test ---------------------------------------------
  int nodes = 16;
  int spares = 2;
  /// Wall-clock window the campaign simulates.
  TimeNs duration = hours(2.0);
  TimeNs checkpoint_interval = minutes(30.0);

  // ---- recovery machinery (feeds ft::DriverSimConfig) -----------------
  ft::DetectorConfig detector;
  ft::SuiteConfig suite;
  TimeNs evict_replenish_time = minutes(3.0);
  TimeNs restore_time = minutes(2.0);
  TimeNs manual_analysis_time = minutes(10.0);
  TimeNs node_repair_time = hours(6.0);

  // ---- network under test ---------------------------------------------
  /// Retransmit behaviour during link flaps (§3.6; adaptive retransmission
  /// is the paper's fix — default here is the untuned NIC, so flap
  /// scenarios exercise the NCCL-timeout failure path).
  net::RetransConfig retrans;
  /// The transfer a flap interrupts: one all-gather shard per pipeline
  /// stage at NIC line rate.
  Bytes flap_transfer_bytes = 256_MiB;
  Bandwidth link_bw = gbps(200);
  /// Fraction of a healthy step spent on the fabric; scales how hard PFC
  /// storms and ECMP conflicts stretch the critical path.
  double comm_fraction = 0.3;

  // ---- scoring / oracle ------------------------------------------------
  /// Oracle floor: a run whose effective-time ratio lands below this is a
  /// campaign failure. Disabled (0) by default: the compressed 2 h window
  /// with minutes-scale MTBF sits far below the paper's >0.9 production
  /// figure, and a dense Poisson schedule can legitimately drain the spare
  /// pool and pin the fleet for the rest of the window. Golden-scenario
  /// tests bound the per-scenario ratios instead; set a floor explicitly
  /// when a scenario has a meaningful one.
  double min_effective_ratio = 0.0;
  /// A fail-stop counts as undetected only if the fleet spent at least
  /// this much time back in training after the injection with no incident
  /// ever raised for the node. Less than that and the window simply ended
  /// (or earlier recoveries monopolized it) before detection could fire.
  /// A live detector needs well under a minute (heartbeat timeout 35 s +
  /// one sweep), so five minutes convicts only a dead path.
  TimeNs detection_grace = minutes(5.0);

  /// Grade pfc_storm / ecmp_rehash faults on congestion localization: each
  /// such fault additionally runs under a fabric observatory and the
  /// detector report must name the injected hot link top-1 (counted in
  /// OutcomeRecord::fabric_*; a storm that raises no fabric alarm counts as
  /// an undetected fault — a detection hole, same as a dead heartbeat
  /// path).
  bool fabric_localization = true;

  /// Deliberately weakened recovery path (the seeded canary regression):
  /// heartbeat-timeout detection is disabled, so hung hosts are never
  /// found. Campaigns against the canary must fail and must shrink to the
  /// hang fault. Wired to the MS_CHAOS_CANARY environment variable in the
  /// CLI; tests set it directly.
  bool canary = false;

  /// Seed fan-out width for run_campaign. 0 = auto (hardware concurrency),
  /// 1 = serial. Parallel fan-out only engages when `metrics` and `flight`
  /// are both null: those sinks record in run order, and keeping them on a
  /// single thread is what keeps metric registration order and flight-dump
  /// interleaving deterministic. Results are slot-indexed by seed, so the
  /// campaign output is bit-identical at any width.
  int parallel_seeds = 0;

  /// Optional telemetry (not owned): chaos_runs_total{scenario,outcome},
  /// per-scenario recovery-latency histograms, effective-ratio gauges.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Optional flight recorder (not owned): fault injections and the driver
  /// sim's heartbeat/alarm/recovery stream are ring-buffered, and every
  /// detected anomaly freezes a post-mortem dump for msdiag.
  diag::FlightRecorder* flight = nullptr;
};

}  // namespace ms::chaos
