#include "chaos/schedule.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "check/digest.h"

namespace ms::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop: return "fail-stop";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kCkptStall: return "ckpt-stall";
    case FaultKind::kPfcStorm: return "pfc-storm";
    case FaultKind::kEcmpRehash: return "ecmp-rehash";
  }
  return "?";
}

void sort_schedule(FaultSchedule& schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const InjectedFault& a, const InjectedFault& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.node < b.node;
                   });
}

std::string describe(const InjectedFault& fault) {
  char buf[160];
  switch (fault.kind) {
    case FaultKind::kFailStop:
      std::snprintf(buf, sizeof buf, "t=%s fail-stop node=%d type=%s",
                    format_duration(fault.at).c_str(), fault.node,
                    ft::fault_name(fault.fail_type));
      break;
    case FaultKind::kStraggler:
      std::snprintf(buf, sizeof buf, "t=%s straggler node=%d slow=%.1f%%",
                    format_duration(fault.at).c_str(), fault.node,
                    100.0 * fault.magnitude);
      break;
    case FaultKind::kLinkFlap:
      std::snprintf(buf, sizeof buf, "t=%s link-flap link=%d down=%s",
                    format_duration(fault.at).c_str(), fault.node,
                    format_duration(fault.duration).c_str());
      break;
    case FaultKind::kCkptStall:
      std::snprintf(buf, sizeof buf, "t=%s ckpt-stall stall=%s",
                    format_duration(fault.at).c_str(),
                    format_duration(fault.duration).c_str());
      break;
    case FaultKind::kPfcStorm:
      std::snprintf(buf, sizeof buf, "t=%s pfc-storm intensity=%.2f",
                    format_duration(fault.at).c_str(), fault.magnitude);
      break;
    case FaultKind::kEcmpRehash:
      std::snprintf(buf, sizeof buf, "t=%s ecmp-rehash round=%d",
                    format_duration(fault.at).c_str(), fault.node);
      break;
  }
  return buf;
}

std::uint64_t schedule_digest(const FaultSchedule& schedule) {
  check::Digest digest;
  for (const auto& fault : schedule) {
    digest.fold(fault.at);
    digest.fold(static_cast<std::uint64_t>(fault.kind));
    digest.fold(static_cast<std::int64_t>(fault.node));
    digest.fold(static_cast<std::uint64_t>(fault.fail_type));
    digest.fold(fault.duration);
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof fault.magnitude);
    std::memcpy(&bits, &fault.magnitude, sizeof bits);
    digest.fold(bits);
  }
  return digest.value();
}

}  // namespace ms::chaos
