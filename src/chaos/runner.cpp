#include "chaos/runner.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include <map>

#include "core/stats.h"
#include "diag/flight_recorder.h"
#include "engine/job.h"
#include "ft/driver_sim.h"
#include "net/ccsim.h"
#include "net/ccsim_multi.h"
#include "net/ecmp.h"
#include "net/fabric/detectors.h"
#include "net/fabric/observatory.h"
#include "net/flap.h"
#include "net/topology.h"
#include "telemetry/metrics.h"

namespace ms::chaos {

namespace {

/// Reference job: the 13B preset on 16 GPUs (TP 4 x PP 2 x DP 2) — small
/// enough to simulate in milliseconds, big enough that the step time is a
/// meaningful unit for "steps lost since last checkpoint".
engine::JobConfig reference_job() {
  engine::JobConfig job;
  job.model = model::config_13b();
  job.par = parallel::ParallelConfig{.tp = 4, .pp = 2, .dp = 2, .vpp = 1};
  job.ops = model::OperatorProfile::megascale();
  job.overlap = engine::OverlapOptions::megascale();
  job.global_batch = 32;
  return job;
}

/// Quantile summary; the caller fills `mean` from its running sum.
LatencyStats summarize(const Percentiles& samples) {
  LatencyStats stats;
  stats.count = static_cast<int>(samples.count());
  if (samples.empty()) return stats;
  stats.p50 = static_cast<TimeNs>(samples.quantile(0.5));
  stats.p95 = static_cast<TimeNs>(samples.quantile(0.95));
  stats.max = static_cast<TimeNs>(samples.quantile(1.0));
  return stats;
}

/// The small Clos fabric the ECMP rehash rounds route over.
net::ClosParams chaos_fabric() {
  net::ClosParams p;
  p.hosts = 32;
  p.nics_per_host = 2;
  p.hosts_per_tor = 8;
  p.pods = 2;
  p.aggs_per_pod = 2;
  p.spines_per_plane = 2;
  return p;
}

/// PFC storm: incast pressure scaled by intensity in (0, 1]. Runs DCQCN —
/// the controller the paper shows letting queues reach the PFC threshold.
net::CcSimResult run_storm(double intensity) {
  net::CcSimParams params;
  params.senders = 8 + static_cast<int>(24.0 * intensity);
  params.duration_s = 0.02;
  // Harder storms get shallower PFC headroom (the §3.6 observation: deep
  // queues under incast push right up against the pause threshold).
  params.pfc_pause *= (1.0 - 0.5 * intensity);
  params.pfc_resume = params.pfc_pause * 0.8;
  return net::run_cc_sim(params,
                         [] { return std::make_unique<net::Dcqcn>(); });
}

struct DriverFaultPlan {
  std::vector<ft::FaultEvent> faults;
};

/// One graded localization run (see ChaosConfig::fabric_localization).
struct FabricVerdict {
  bool scored = false;       ///< there was a hot link to name
  bool top1_correct = false; ///< the detectors named it first
  int alarms = 0;
  TimeNs first_alarm = -1;
};

/// Replays a PFC storm through the multi-hop victim chain under a fabric
/// observatory and asks the detectors to name the bottleneck hop. Ground
/// truth is the chain's last hop — the only queue that congests from its
/// own service deficit; everything upstream is paused collateral.
FabricVerdict localize_storm(double intensity, diag::FlightRecorder* flight) {
  net::MultiCcParams params =
      net::victim_params(4 + static_cast<int>(12.0 * intensity));
  net::fabric::FabricObservatoryConfig obs_cfg;
  obs_cfg.flight = flight;
  net::fabric::FabricObservatory obs(obs_cfg);
  params.observatory = &obs;
  net::run_multi_cc_sim(params, [] { return std::make_unique<net::Dcqcn>(); });

  net::fabric::FabricDetectorConfig det;
  det.queue_hot_bytes = params.pfc_pause;
  const auto report = net::fabric::detect_anomalies(obs, det);

  FabricVerdict verdict;
  verdict.scored = true;
  verdict.alarms = static_cast<int>(report.alarms.size());
  verdict.first_alarm = report.first_alarm;
  const int truth = obs.find_link(params.observatory_link_prefix +
                                  std::to_string(params.hops - 1));
  verdict.top1_correct = truth >= 0 && report.hottest_link == truth;
  return verdict;
}

/// Grades an ECMP rehash round: the observatory records every routed flow,
/// and the detectors must rank a maximally-loaded inter-switch uplink
/// first. Rounds whose worst uplink carries a single flow have nothing to
/// localize and are not scored.
FabricVerdict localize_rehash(const net::ClosTopology& topo,
                              const std::vector<net::FlowSpec>& flows,
                              diag::FlightRecorder* flight) {
  net::fabric::FabricObservatoryConfig obs_cfg;
  obs_cfg.flight = flight;
  net::fabric::FabricObservatory obs(obs_cfg);
  net::analyze_ecmp(topo, flows, &obs);

  // Independent ground truth: per-link loads from the same deterministic
  // router, ordered so ties resolve to the lowest LinkId.
  net::EcmpRouter router(topo);
  std::map<net::LinkId, int> load;
  for (const auto& flow : flows) {
    for (net::LinkId l : router.route(flow)) ++load[l];
  }
  int max_inter_load = 0;
  for (const auto& [l, n_flows] : load) {
    const auto& link = topo.link(l);
    const bool inter_switch =
        topo.node(link.src).kind != net::NodeKind::kHost &&
        topo.node(link.dst).kind != net::NodeKind::kHost;
    if (inter_switch) max_inter_load = std::max(max_inter_load, n_flows);
  }

  FabricVerdict verdict;
  if (max_inter_load < 2) return verdict;  // no conflict: nothing to name
  verdict.scored = true;

  net::fabric::FabricDetectorConfig det;
  det.incast_fan_in = 2;  // two elephants on one uplink IS the conflict
  const auto report = net::fabric::detect_anomalies(obs, det);
  verdict.alarms = static_cast<int>(report.alarms.size());
  verdict.first_alarm = report.first_alarm;
  // Every maximally-loaded uplink is an equally correct answer (ECMP ties
  // are physical: the same flow count hashes onto each).
  if (report.hottest_link >= 0) {
    const auto it = load.find(static_cast<net::LinkId>(report.hottest_link));
    verdict.top1_correct = it != load.end() && it->second == max_inter_load;
  }
  return verdict;
}

}  // namespace

TimeNs reference_step_time() {
  static const TimeNs kStep = [] {
    const auto job = reference_job();
    assert(engine::validate(job).empty());
    return engine::simulate_iteration(job).iteration_time;
  }();
  return kStep;
}

OutcomeRecord run_schedule(const ChaosConfig& cfg,
                           const std::string& scenario_name,
                           std::uint64_t seed, const FaultSchedule& schedule) {
  OutcomeRecord record;
  record.scenario = scenario_name;
  record.seed = seed;
  record.faults_injected = static_cast<int>(schedule.size());
  record.schedule_digest = schedule_digest(schedule);

  // ---- pass 1: non-fail-stop fault classes ----------------------------
  double straggler_factor = 1.0;
  double comm_factor = 1.0;
  DriverFaultPlan plan;

  for (const auto& fault : schedule) {
    if (cfg.flight != nullptr) {
      cfg.flight->record(fault.node % cfg.nodes, fault.at, "inject",
                         describe(fault));
    }
    switch (fault.kind) {
      case FaultKind::kFailStop: {
        ft::FaultEvent event;
        event.at = fault.at;
        event.node = fault.node % cfg.nodes;
        event.type = fault.fail_type;
        plan.faults.push_back(event);
        break;
      }
      case FaultKind::kStraggler:
        straggler_factor =
            std::max(straggler_factor, 1.0 + std::max(0.0, fault.magnitude));
        break;
      case FaultKind::kLinkFlap: {
        // The flap interrupts an in-flight all-gather shard shortly after
        // the transfer begins.
        net::FlapEvent flap;
        flap.down_at = milliseconds(5.0);
        flap.down_duration = fault.duration;
        const auto outcome = net::simulate_transfer_with_flaps(
            cfg.flap_transfer_bytes, cfg.link_bw, {flap}, cfg.retrans);
        record.flap_stall_total += outcome.total_stall;
        if (outcome.nccl_error) {
          ++record.nccl_errors;
          // The abort surfaces as a NIC-flap fault: the process survives
          // but collective traffic collapses until recovery replaces it.
          ft::FaultEvent event;
          event.at = fault.at + outcome.finish_time;
          event.node = fault.node % cfg.nodes;
          event.type = ft::FaultType::kNicFlap;
          plan.faults.push_back(event);
        }
        break;
      }
      case FaultKind::kCkptStall:
        record.ckpt_stall_total += std::max<TimeNs>(0, fault.duration);
        break;
      case FaultKind::kPfcStorm: {
        const double intensity = std::clamp(fault.magnitude, 0.05, 1.0);
        const auto storm = run_storm(intensity);
        record.pfc_pause_fraction =
            std::max(record.pfc_pause_fraction, storm.pfc_pause_fraction);
        const double pause = std::min(storm.pfc_pause_fraction, 0.9);
        comm_factor = std::max(comm_factor, 1.0 / (1.0 - pause));
        if (cfg.fabric_localization) {
          const auto verdict = localize_storm(intensity, cfg.flight);
          ++record.fabric_localizations;
          record.fabric_alarms += verdict.alarms;
          if (verdict.top1_correct) ++record.fabric_top1_correct;
          if (verdict.first_alarm >= 0) {
            record.fabric_detect_latency =
                std::max(record.fabric_detect_latency, verdict.first_alarm);
          } else {
            // A storm that congested the fabric without one fabric alarm is
            // a detection hole, same class as a dead heartbeat path.
            ++record.undetected_faults;
          }
        }
        break;
      }
      case FaultKind::kEcmpRehash: {
        // Re-roll every flow's path luck: ring traffic over the fabric
        // with labels derived from this rehash round.
        static const net::ClosTopology topo(chaos_fabric());
        Rng rng(derive_seed(seed, "chaos.ecmp",
                            static_cast<std::uint64_t>(fault.node)));
        auto flows = net::ring_traffic(topo, 16, /*pack_under_tor=*/false, rng);
        const auto report = net::analyze_ecmp(topo, flows);
        record.ecmp_conflict_fraction =
            std::max(record.ecmp_conflict_fraction, report.conflict_fraction);
        const double tput = std::max(report.mean_throughput_frac, 0.1);
        comm_factor = std::max(comm_factor, 1.0 / tput);
        if (cfg.fabric_localization) {
          const auto verdict = localize_rehash(topo, flows, cfg.flight);
          if (verdict.scored) {
            ++record.fabric_localizations;
            record.fabric_alarms += verdict.alarms;
            if (verdict.top1_correct) ++record.fabric_top1_correct;
            if (verdict.first_alarm >= 0) {
              record.fabric_detect_latency =
                  std::max(record.fabric_detect_latency, verdict.first_alarm);
            } else {
              ++record.undetected_faults;
            }
          }
        }
        break;
      }
    }
  }

  // ---- pass 2: the event-driven recovery protocol ---------------------
  std::sort(plan.faults.begin(), plan.faults.end(),
            [](const ft::FaultEvent& a, const ft::FaultEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.node != b.node) return a.node < b.node;
              return a.type < b.type;
            });
  ft::DriverSimConfig driver;
  driver.nodes = cfg.nodes;
  driver.spares = cfg.spares;
  driver.detector = cfg.detector;
  driver.suite = cfg.suite;
  driver.evict_replenish_time = cfg.evict_replenish_time;
  driver.restore_time = cfg.restore_time;
  driver.manual_analysis_time = cfg.manual_analysis_time;
  driver.node_repair_time = cfg.node_repair_time;
  driver.flight = cfg.flight;
  if (cfg.canary) {
    // The seeded regression: heartbeat-timeout detection is disabled, so
    // hung hosts (kGpuHang stops heartbeating) are never found. Campaigns
    // must catch this and shrink failing schedules down to the hang.
    driver.detector.heartbeat_timeout = cfg.duration * 2;
  }

  Rng driver_rng(derive_seed(seed, "chaos.driver"));
  const auto report =
      ft::run_driver_sim(driver, cfg.duration, plan.faults, driver_rng);
  record.restarts = static_cast<int>(report.incidents.size());
  record.spare_pool_exhausted = report.spare_pool_exhausted_events;
  record.engine_digest = report.engine_digest;

  // Detection coverage: a fault is covered when some incident (finished
  // or still in flight) accounts for it — exactly it, or an incident
  // window on the same node spanning the injection (the node was already
  // broken and got replaced anyway).
  auto covered = [&](const ft::FaultEvent& fault) {
    const auto matches = [&](const ft::DriverIncident& incident) {
      if (incident.node != fault.node) return false;
      if (incident.fault_at == fault.at) return true;
      return incident.fault_at <= fault.at &&
             (incident.resumed_at < 0 || incident.resumed_at >= fault.at);
    };
    for (const auto& incident : report.incidents) {
      if (matches(incident)) return true;
    }
    for (const auto& incident : report.in_flight) {
      if (matches(incident)) return true;
    }
    return false;
  };

  // The driver handles one incident at a time, so a fault that lands while
  // earlier recoveries monopolize the window is queued, not missed. Only
  // flag a fault as undetected when the fleet still spent at least
  // cfg.detection_grace back in training after the injection with nothing
  // ever raised for that node — a dead detection path, not backpressure.
  std::vector<std::pair<TimeNs, TimeNs>> busy;
  auto note_busy = [&](const ft::DriverIncident& incident) {
    if (incident.alarm_at < 0) return;
    busy.emplace_back(incident.alarm_at, incident.resumed_at < 0
                                             ? cfg.duration
                                             : incident.resumed_at);
  };
  for (const auto& incident : report.incidents) note_busy(incident);
  for (const auto& incident : report.in_flight) note_busy(incident);
  auto idle_after = [&](TimeNs t) {
    TimeNs idle = cfg.duration - t;
    for (const auto& [start, end] : busy) {
      idle -= std::max<TimeNs>(
          0, std::min(end, cfg.duration) - std::max(start, t));
    }
    return idle;
  };
  for (const auto& event : plan.faults) {
    if (!covered(event) && idle_after(event.at) >= cfg.detection_grace) {
      ++record.undetected_faults;
    }
  }

  // ---- pass 3: score ---------------------------------------------------
  Percentiles detect, recover;
  TimeNs detect_sum = 0, recover_sum = 0;
  TimeNs lost_time = 0;
  auto note_incident = [&](const ft::DriverIncident& incident) {
    if (incident.alarm_at >= 0) {
      const TimeNs latency = incident.alarm_at - incident.fault_at;
      detect.add(static_cast<double>(latency));
      detect_sum += latency;
    }
    if (incident.resumed_at >= 0) {
      const TimeNs latency = incident.resumed_at - incident.fault_at;
      recover.add(static_cast<double>(latency));
      recover_sum += latency;
      // Progress since the last on-schedule checkpoint is redone (§4.4).
      lost_time += incident.fault_at % cfg.checkpoint_interval;
    }
  };
  for (const auto& incident : report.incidents) note_incident(incident);
  for (const auto& incident : report.in_flight) note_incident(incident);

  record.detect_latency = summarize(detect);
  if (!detect.empty()) {
    record.detect_latency.mean = detect_sum / static_cast<TimeNs>(detect.count());
  }
  record.recovery_latency = summarize(recover);
  if (!recover.empty()) {
    record.recovery_latency.mean =
        recover_sum / static_cast<TimeNs>(recover.count());
  }

  record.slowdown_factor =
      straggler_factor * (1.0 + cfg.comm_fraction * (comm_factor - 1.0));

  const TimeNs step = reference_step_time();
  const double step_scaled =
      static_cast<double>(step) * record.slowdown_factor;
  record.steps_lost =
      static_cast<std::int64_t>(static_cast<double>(lost_time) / step_scaled);

  const double stall_fraction = std::min(
      1.0, static_cast<double>(record.ckpt_stall_total +
                               record.flap_stall_total + lost_time) /
               static_cast<double>(cfg.duration));
  record.effective_time_ratio = report.effective_fraction /
                                record.slowdown_factor *
                                (1.0 - stall_fraction);

  record.record_digest = compute_record_digest(record);

  // ---- telemetry -------------------------------------------------------
  if (cfg.metrics != nullptr) {
    auto* m = cfg.metrics;
    const telemetry::Labels by_scenario = {{"scenario", scenario_name}};
    m->counter("chaos_faults_injected_total", by_scenario)
        .add(static_cast<double>(record.faults_injected));
    m->gauge("chaos_effective_time_ratio", by_scenario)
        .set(record.effective_time_ratio);
    auto& recovery_hist =
        m->histogram("chaos_recovery_latency_seconds", by_scenario);
    for (const auto& incident : report.incidents) {
      if (incident.resumed_at >= 0) {
        recovery_hist.observe(
            to_seconds(incident.resumed_at - incident.fault_at));
      }
    }
    auto& detect_hist =
        m->histogram("chaos_detect_latency_seconds", by_scenario);
    for (const auto& incident : report.incidents) {
      if (incident.alarm_at >= 0) {
        detect_hist.observe(to_seconds(incident.alarm_at - incident.fault_at));
      }
    }
  }

  return record;
}

OutcomeRecord run_scenario(const ChaosConfig& cfg, const Scenario& scenario,
                           std::uint64_t seed) {
  return run_schedule(cfg, scenario.name, seed,
                      generate_schedule(cfg, scenario, seed));
}

}  // namespace ms::chaos
