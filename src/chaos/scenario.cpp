#include "chaos/scenario.h"

#include <algorithm>

#include "ft/faults.h"
#include "net/flap.h"

namespace ms::chaos {

namespace {

InjectedFault fail_stop(TimeNs at, int node, ft::FaultType type) {
  InjectedFault f;
  f.at = at;
  f.kind = FaultKind::kFailStop;
  f.node = node;
  f.fail_type = type;
  return f;
}

/// Draws a fail-stop type from the paper's production mix. Silent
/// stragglers (kSlowGpu) are excluded — the chaos schedule models them as
/// FaultKind::kStraggler, since they degrade throughput rather than
/// fail-stop the process.
ft::FaultType draw_fail_type(Rng& rng) {
  const auto mix = ft::default_fault_mix();
  double total = 0;
  for (const auto& entry : mix) {
    if (entry.type != ft::FaultType::kSlowGpu) total += entry.weight;
  }
  double x = rng.uniform(0, total);
  for (const auto& entry : mix) {
    if (entry.type == ft::FaultType::kSlowGpu) continue;
    if ((x -= entry.weight) <= 0) return entry.type;
  }
  return ft::FaultType::kCudaError;
}

/// Jitters `t` by +/- `spread` while staying inside [0, cfg.duration).
TimeNs jitter(const ChaosConfig& cfg, TimeNs t, TimeNs spread, Rng& rng) {
  const TimeNs lo = std::max<TimeNs>(0, t - spread);
  const TimeNs hi = std::min(cfg.duration - 1, t + spread);
  return rng.uniform_int(lo, hi);
}

// ------------------------------------------------------ the six canonical

FaultSchedule gen_clean(const ChaosConfig&, Rng&) { return {}; }

/// §4.1: one explicit fail-stop in the middle of a healthy stretch.
FaultSchedule gen_failstop_midstep(const ChaosConfig& cfg, Rng& rng) {
  FaultSchedule schedule;
  const TimeNs mid = cfg.duration / 2;
  schedule.push_back(fail_stop(
      jitter(cfg, mid, cfg.duration / 10, rng),
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(cfg.nodes))),
      draw_fail_type(rng)));
  return schedule;
}

/// §3.6: a NIC flaps repeatedly while an all-gather is in flight.
FaultSchedule gen_allgather_flap(const ChaosConfig& cfg, Rng& rng) {
  FaultSchedule schedule;
  const auto flaps = net::draw_flap_schedule(
      cfg.duration, /*mean_gap=*/cfg.duration / 4, /*mean_down=*/seconds(5.0),
      rng);
  const int link =
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(cfg.nodes)));
  for (const auto& flap : flaps) {
    InjectedFault f;
    f.at = flap.down_at;
    f.kind = FaultKind::kLinkFlap;
    f.node = link;
    f.duration = flap.down_duration;
    schedule.push_back(f);
  }
  return schedule;
}

/// §5.1 + §4.4: a silently slow machine while the checkpoint writer stalls.
FaultSchedule gen_straggler_ckpt_stall(const ChaosConfig& cfg, Rng& rng) {
  FaultSchedule schedule;
  InjectedFault straggler;
  straggler.at = jitter(cfg, cfg.duration / 5, cfg.duration / 20, rng);
  straggler.kind = FaultKind::kStraggler;
  straggler.node =
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(cfg.nodes)));
  straggler.magnitude = rng.uniform(0.08, 0.15);  // the paper's ~10% hosts
  schedule.push_back(straggler);
  for (int i = 1; i <= 2; ++i) {
    InjectedFault stall;
    stall.at = jitter(cfg, cfg.duration * i / 3, cfg.duration / 20, rng);
    stall.kind = FaultKind::kCkptStall;
    stall.duration = seconds(rng.uniform(90.0, 300.0));
    schedule.push_back(stall);
  }
  return schedule;
}

/// §3.6: successive path rehashes, each re-rolling every flow's ECMP luck.
FaultSchedule gen_ecmp_cascade(const ChaosConfig& cfg, Rng& rng) {
  FaultSchedule schedule;
  for (int round = 1; round <= 3; ++round) {
    InjectedFault f;
    f.at = jitter(cfg, cfg.duration * (round + 2) / 8, cfg.duration / 30, rng);
    f.kind = FaultKind::kEcmpRehash;
    f.node = static_cast<int>(rng.next_u64() >> 40);  // rehash entropy
    schedule.push_back(f);
  }
  return schedule;
}

/// §3.6: incast pressure ramps until PFC pauses the whole port group.
FaultSchedule gen_pfc_storm(const ChaosConfig& cfg, Rng& rng) {
  FaultSchedule schedule;
  for (int i = 0; i < 2; ++i) {
    InjectedFault f;
    f.at = jitter(cfg, cfg.duration * (2 * i + 1) / 4, cfg.duration / 16, rng);
    f.kind = FaultKind::kPfcStorm;
    f.magnitude = rng.uniform(0.4, 1.0);
    schedule.push_back(f);
  }
  return schedule;
}

/// Everything at once: Poisson arrivals over every failure class. The
/// campaign workhorse — wide enough that shrinking a failure inside it is
/// a real exercise.
FaultSchedule gen_mixed(const ChaosConfig& cfg, Rng& rng) {
  FaultSchedule schedule;
  TimeNs t = 0;
  while (true) {
    t += seconds(rng.exponential(to_seconds(cfg.duration / 8)));
    if (t >= cfg.duration) break;
    const double x = rng.uniform();
    InjectedFault f;
    f.at = t;
    if (x < 0.45) {
      f = fail_stop(t,
                    static_cast<int>(rng.uniform_index(
                        static_cast<std::uint64_t>(cfg.nodes))),
                    draw_fail_type(rng));
    } else if (x < 0.60) {
      f.kind = FaultKind::kStraggler;
      f.node = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(cfg.nodes)));
      f.magnitude = rng.uniform(0.05, 0.20);
    } else if (x < 0.75) {
      f.kind = FaultKind::kLinkFlap;
      f.node = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(cfg.nodes)));
      f.duration = seconds(rng.lognormal(1.0, 0.8));
    } else if (x < 0.85) {
      f.kind = FaultKind::kCkptStall;
      f.duration = seconds(rng.uniform(60.0, 240.0));
    } else if (x < 0.93) {
      f.kind = FaultKind::kPfcStorm;
      f.magnitude = rng.uniform(0.3, 1.0);
    } else {
      f.kind = FaultKind::kEcmpRehash;
      f.node = static_cast<int>(rng.next_u64() >> 40);
    }
    schedule.push_back(f);
  }
  return schedule;
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"clean", "no faults: the effective-time baseline", gen_clean},
      {"failstop-midstep", "single fail-stop mid-window (§4.1 figure 5 path)",
       gen_failstop_midstep},
      {"allgather-flap", "NIC flaps during an all-gather (§3.6 adap_retrans)",
       gen_allgather_flap},
      {"straggler-ckpt-stall",
       "silent straggler + checkpoint-write stalls (§5.1 + §4.4)",
       gen_straggler_ckpt_stall},
      {"ecmp-cascade", "cascading ECMP rehash rounds (§3.6 hashing conflicts)",
       gen_ecmp_cascade},
      {"pfc-storm", "incast ECN/PFC storms (§3.6 congestion control)",
       gen_pfc_storm},
      {"mixed", "every failure class, Poisson arrivals (campaign workhorse)",
       gen_mixed},
  };
  return kScenarios;
}

const Scenario* find_scenario(const std::string& name) {
  for (const auto& scenario : scenarios()) {
    if (name == scenario.name) return &scenario;
  }
  return nullptr;
}

FaultSchedule generate_schedule(const ChaosConfig& cfg,
                                const Scenario& scenario, std::uint64_t seed) {
  Rng rng(derive_seed(seed, std::string("chaos.schedule.") + scenario.name));
  FaultSchedule schedule = scenario.generate(cfg, rng);
  sort_schedule(schedule);
  return schedule;
}

}  // namespace ms::chaos
