// The chaos runner: one seeded schedule driven through the whole stack.
//
// A run composes every layer the paper's §4 story spans:
//   * fail-stops (and flap-induced NCCL aborts) become ft::FaultEvents and
//     execute as a real event program on the discrete-event Engine via
//     ft::run_driver_sim — heartbeats, AnomalyDetector, diagnostic suite,
//     evict/replenish/restore, finite spare pool;
//   * link flaps run through net::simulate_transfer_with_flaps against the
//     configured retransmission policy (stall, or NCCL abort -> restart);
//   * PFC storms run the ccsim fluid model; ECMP rehashes run the real
//     router over a Clos fabric; stragglers use the §5.1 population model;
//   * the healthy step time comes from engine::simulate_iteration on a
//     reference training job (parallel + collective + model cost stack).
//
// Everything stochastic derives from ONE seed via core derive_seed, and
// every run folds into deterministic digests: same (config, scenario,
// seed) => bit-identical OutcomeRecord. Degradation composes monotonically
// — each injected fault can only lower the effective-time ratio — which is
// the property the campaign's property tests pin down.
#pragma once

#include <cstdint>

#include "chaos/config.h"
#include "chaos/outcome.h"
#include "chaos/scenario.h"
#include "chaos/schedule.h"

namespace ms::chaos {

/// Runs an explicit schedule (the shrinker's entry point). `scenario_name`
/// only labels the record; the schedule is executed as given.
OutcomeRecord run_schedule(const ChaosConfig& cfg,
                           const std::string& scenario_name,
                           std::uint64_t seed, const FaultSchedule& schedule);

/// Generates the scenario's schedule from `seed` and runs it.
OutcomeRecord run_scenario(const ChaosConfig& cfg, const Scenario& scenario,
                           std::uint64_t seed);

/// Healthy per-step time of the reference training job (computed once per
/// process via engine::simulate_iteration; deterministic).
TimeNs reference_step_time();

}  // namespace ms::chaos
