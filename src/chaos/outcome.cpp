#include "chaos/outcome.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "check/digest.h"

namespace ms::chaos {

namespace {

void fold_double(check::Digest& digest, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  digest.fold(bits);
}

void fold_latency(check::Digest& digest, const LatencyStats& stats) {
  digest.fold(static_cast<std::int64_t>(stats.count));
  digest.fold(stats.mean);
  digest.fold(stats.p50);
  digest.fold(stats.p95);
  digest.fold(stats.max);
}

}  // namespace

std::uint64_t compute_record_digest(const OutcomeRecord& record) {
  check::Digest digest;
  digest.fold(std::string_view(record.scenario));
  digest.fold(record.seed);
  fold_double(digest, record.effective_time_ratio);
  fold_double(digest, record.slowdown_factor);
  digest.fold(static_cast<std::int64_t>(record.faults_injected));
  digest.fold(static_cast<std::int64_t>(record.restarts));
  digest.fold(static_cast<std::int64_t>(record.undetected_faults));
  digest.fold(record.steps_lost);
  fold_latency(digest, record.detect_latency);
  fold_latency(digest, record.recovery_latency);
  digest.fold(record.ckpt_stall_total);
  digest.fold(record.flap_stall_total);
  digest.fold(static_cast<std::int64_t>(record.nccl_errors));
  fold_double(digest, record.pfc_pause_fraction);
  fold_double(digest, record.ecmp_conflict_fraction);
  digest.fold(static_cast<std::int64_t>(record.spare_pool_exhausted));
  digest.fold(static_cast<std::int64_t>(record.fabric_localizations));
  digest.fold(static_cast<std::int64_t>(record.fabric_top1_correct));
  digest.fold(static_cast<std::int64_t>(record.fabric_alarms));
  digest.fold(record.fabric_detect_latency);
  digest.fold(record.schedule_digest);
  digest.fold(record.engine_digest);
  return digest.value();
}

bool identical(const OutcomeRecord& a, const OutcomeRecord& b) {
  return a.scenario == b.scenario && a.seed == b.seed &&
         compute_record_digest(a) == compute_record_digest(b) &&
         a.record_digest == b.record_digest;
}

namespace {

void diff_close(std::vector<std::string>& out, const char* field, double got,
                double want, double tol) {
  if (std::fabs(got - want) > tol) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s: got %.6g, want %.6g (tol %.3g)", field,
                  got, want, tol);
    out.push_back(buf);
  }
}

void diff_exact(std::vector<std::string>& out, const char* field,
                std::int64_t got, std::int64_t want) {
  if (got != want) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s: got %" PRId64 ", want %" PRId64, field,
                  got, want);
    out.push_back(buf);
  }
}

void diff_latency(std::vector<std::string>& out, const char* prefix,
                  const LatencyStats& got, const LatencyStats& want,
                  double frac) {
  std::string name = std::string(prefix) + ".count";
  diff_exact(out, name.c_str(), got.count, want.count);
  const auto close = [&](const char* leaf, TimeNs g, TimeNs w) {
    // Relative slack plus 1 ms absolute so near-zero latencies don't flap.
    const double tol = frac * static_cast<double>(w < 0 ? -w : w) +
                       static_cast<double>(milliseconds(1.0));
    name = std::string(prefix) + "." + leaf;
    diff_close(out, name.c_str(), static_cast<double>(g), static_cast<double>(w),
               tol);
  };
  close("mean", got.mean, want.mean);
  close("p50", got.p50, want.p50);
  close("p95", got.p95, want.p95);
  close("max", got.max, want.max);
}

}  // namespace

std::vector<std::string> diff_outcomes(const OutcomeRecord& got,
                                       const OutcomeRecord& want,
                                       const Tolerance& tol) {
  std::vector<std::string> out;
  if (got.scenario != want.scenario) {
    out.push_back("scenario: got " + got.scenario + ", want " + want.scenario);
  }
  diff_exact(out, "seed", static_cast<std::int64_t>(got.seed),
             static_cast<std::int64_t>(want.seed));
  diff_close(out, "effective_time_ratio", got.effective_time_ratio,
             want.effective_time_ratio, tol.ratio);
  diff_close(out, "slowdown_factor", got.slowdown_factor, want.slowdown_factor,
             tol.ratio);
  diff_exact(out, "faults_injected", got.faults_injected, want.faults_injected);
  diff_exact(out, "restarts", got.restarts, want.restarts);
  diff_exact(out, "undetected_faults", got.undetected_faults,
             want.undetected_faults);
  diff_exact(out, "steps_lost", got.steps_lost, want.steps_lost);
  diff_latency(out, "detect_latency", got.detect_latency, want.detect_latency,
               tol.latency_frac);
  diff_latency(out, "recovery_latency", got.recovery_latency,
               want.recovery_latency, tol.latency_frac);
  diff_exact(out, "nccl_errors", got.nccl_errors, want.nccl_errors);
  diff_close(out, "pfc_pause_fraction", got.pfc_pause_fraction,
             want.pfc_pause_fraction, tol.ratio);
  diff_close(out, "ecmp_conflict_fraction", got.ecmp_conflict_fraction,
             want.ecmp_conflict_fraction, tol.ratio);
  diff_exact(out, "spare_pool_exhausted", got.spare_pool_exhausted,
             want.spare_pool_exhausted);
  diff_exact(out, "fabric_localizations", got.fabric_localizations,
             want.fabric_localizations);
  diff_exact(out, "fabric_top1_correct", got.fabric_top1_correct,
             want.fabric_top1_correct);
  diff_exact(out, "fabric_alarms", got.fabric_alarms, want.fabric_alarms);
  // Same slack scheme as the latency leaves: relative plus 1 ms absolute.
  diff_close(out, "fabric_detect_latency",
             static_cast<double>(got.fabric_detect_latency),
             static_cast<double>(want.fabric_detect_latency),
             tol.latency_frac *
                     std::fabs(static_cast<double>(want.fabric_detect_latency)) +
                 static_cast<double>(milliseconds(1.0)));
  return out;
}

// ------------------------------------------------------------------ JSON

namespace {

void emit(std::string& out, const char* key, double v, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":%.17g%s", key, v, last ? "" : ",");
  out += buf;
}

void emit_i(std::string& out, const char* key, std::int64_t v,
            bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRId64 "%s", key, v,
                last ? "" : ",");
  out += buf;
}

void emit_hex(std::string& out, const char* key, std::uint64_t v,
              bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":\"0x%016" PRIx64 "\"%s", key, v,
                last ? "" : ",");
  out += buf;
}

void emit_latency(std::string& out, const char* key, const LatencyStats& s) {
  out += '"';
  out += key;
  out += "\":{";
  emit_i(out, "count", s.count);
  emit_i(out, "mean_ns", s.mean);
  emit_i(out, "p50_ns", s.p50);
  emit_i(out, "p95_ns", s.p95);
  emit_i(out, "max_ns", s.max, /*last=*/true);
  out += "},";
}

/// Scans for `"key":` and returns the raw token after it (number or quoted
/// string without quotes). Only good for the flat objects we emit.
bool scan_token(const std::string& text, const std::string& key,
                std::string& token) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + needle.size();
  while (i < text.size() && (text[i] == ' ' || text[i] == '\n')) ++i;
  if (i >= text.size()) return false;
  if (text[i] == '"') {
    const auto end = text.find('"', i + 1);
    if (end == std::string::npos) return false;
    token = text.substr(i + 1, end - i - 1);
    return true;
  }
  std::size_t end = i;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) ||
          text[end] == '-' || text[end] == '+' || text[end] == '.' ||
          text[end] == 'e' || text[end] == 'E')) {
    ++end;
  }
  if (end == i) return false;
  token = text.substr(i, end - i);
  return true;
}

bool scan_d(const std::string& text, const std::string& key, double& v) {
  std::string token;
  if (!scan_token(text, key, token)) return false;
  v = std::strtod(token.c_str(), nullptr);
  return true;
}

bool scan_i(const std::string& text, const std::string& key, std::int64_t& v) {
  std::string token;
  if (!scan_token(text, key, token)) return false;
  v = std::strtoll(token.c_str(), nullptr, 10);
  return true;
}

bool scan_u(const std::string& text, const std::string& key, std::uint64_t& v) {
  std::string token;
  if (!scan_token(text, key, token)) return false;
  v = std::strtoull(token.c_str(), nullptr, 0);  // handles 0x... and decimal
  return true;
}

bool scan_latency(const std::string& text, const std::string& key,
                  LatencyStats& s) {
  const std::string needle = "\"" + key + "\":{";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const auto end = text.find('}', pos);
  if (end == std::string::npos) return false;
  const std::string body = text.substr(pos, end - pos + 1);
  std::int64_t count = 0;
  if (!scan_i(body, "count", count)) return false;
  s.count = static_cast<int>(count);
  return scan_i(body, "mean_ns", s.mean) && scan_i(body, "p50_ns", s.p50) &&
         scan_i(body, "p95_ns", s.p95) && scan_i(body, "max_ns", s.max);
}

}  // namespace

std::string to_json(const OutcomeRecord& r) {
  std::string out = "{";
  out += "\"scenario\":\"" + r.scenario + "\",";
  emit_i(out, "seed", static_cast<std::int64_t>(r.seed));
  emit(out, "effective_time_ratio", r.effective_time_ratio);
  emit(out, "slowdown_factor", r.slowdown_factor);
  emit_i(out, "faults_injected", r.faults_injected);
  emit_i(out, "restarts", r.restarts);
  emit_i(out, "undetected_faults", r.undetected_faults);
  emit_i(out, "steps_lost", r.steps_lost);
  emit_latency(out, "detect_latency", r.detect_latency);
  emit_latency(out, "recovery_latency", r.recovery_latency);
  emit_i(out, "ckpt_stall_total_ns", r.ckpt_stall_total);
  emit_i(out, "flap_stall_total_ns", r.flap_stall_total);
  emit_i(out, "nccl_errors", r.nccl_errors);
  emit(out, "pfc_pause_fraction", r.pfc_pause_fraction);
  emit(out, "ecmp_conflict_fraction", r.ecmp_conflict_fraction);
  emit_i(out, "spare_pool_exhausted", r.spare_pool_exhausted);
  emit_i(out, "fabric_localizations", r.fabric_localizations);
  emit_i(out, "fabric_top1_correct", r.fabric_top1_correct);
  emit_i(out, "fabric_alarms", r.fabric_alarms);
  emit_i(out, "fabric_detect_latency_ns", r.fabric_detect_latency);
  emit_hex(out, "schedule_digest", r.schedule_digest);
  emit_hex(out, "engine_digest", r.engine_digest);
  emit_hex(out, "record_digest", r.record_digest, /*last=*/true);
  out += "}";
  return out;
}

bool from_json(const std::string& text, OutcomeRecord& out) {
  OutcomeRecord r;
  std::int64_t seed = 0, faults = 0, restarts = 0, undetected = 0, nccl = 0,
               spares = 0, fab_loc = 0, fab_top1 = 0, fab_alarms = 0;
  if (!scan_token(text, "scenario", r.scenario)) return false;
  if (!scan_i(text, "seed", seed)) return false;
  r.seed = static_cast<std::uint64_t>(seed);
  if (!scan_d(text, "effective_time_ratio", r.effective_time_ratio) ||
      !scan_d(text, "slowdown_factor", r.slowdown_factor) ||
      !scan_i(text, "faults_injected", faults) ||
      !scan_i(text, "restarts", restarts) ||
      !scan_i(text, "undetected_faults", undetected) ||
      !scan_i(text, "steps_lost", r.steps_lost) ||
      !scan_latency(text, "detect_latency", r.detect_latency) ||
      !scan_latency(text, "recovery_latency", r.recovery_latency) ||
      !scan_i(text, "ckpt_stall_total_ns", r.ckpt_stall_total) ||
      !scan_i(text, "flap_stall_total_ns", r.flap_stall_total) ||
      !scan_i(text, "nccl_errors", nccl) ||
      !scan_d(text, "pfc_pause_fraction", r.pfc_pause_fraction) ||
      !scan_d(text, "ecmp_conflict_fraction", r.ecmp_conflict_fraction) ||
      !scan_i(text, "spare_pool_exhausted", spares) ||
      !scan_i(text, "fabric_localizations", fab_loc) ||
      !scan_i(text, "fabric_top1_correct", fab_top1) ||
      !scan_i(text, "fabric_alarms", fab_alarms) ||
      !scan_i(text, "fabric_detect_latency_ns", r.fabric_detect_latency) ||
      !scan_u(text, "schedule_digest", r.schedule_digest) ||
      !scan_u(text, "engine_digest", r.engine_digest) ||
      !scan_u(text, "record_digest", r.record_digest)) {
    return false;
  }
  r.faults_injected = static_cast<int>(faults);
  r.restarts = static_cast<int>(restarts);
  r.undetected_faults = static_cast<int>(undetected);
  r.nccl_errors = static_cast<int>(nccl);
  r.spare_pool_exhausted = static_cast<int>(spares);
  r.fabric_localizations = static_cast<int>(fab_loc);
  r.fabric_top1_correct = static_cast<int>(fab_top1);
  r.fabric_alarms = static_cast<int>(fab_alarms);
  out = r;
  return true;
}

}  // namespace ms::chaos
