// chaos_campaign: the command-line front end for the chaos harness.
//
//   chaos_campaign --list
//   chaos_campaign --scenario mixed --seeds 32
//   chaos_campaign --scenario mixed --seed 1234567   # replay one seed
//   chaos_campaign --scenario mixed --seeds 32 --canary --artifact-dir out/
//
// Exit status 0 when every seed passes the resilience oracle, 1 otherwise
// (and 2 on usage errors). MS_CHAOS_CANARY=1 is equivalent to --canary.
//
// ms-lint: allow-file(test-coverage): CLI entry point; the campaign logic
// it drives is covered by tests/chaos_test.cpp and chaos_campaign_test.cpp.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/campaign.h"
#include "diag/artifact.h"
#include "diag/flight_recorder.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

namespace {

using namespace ms;
using namespace ms::chaos;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario <name> [--seeds N | --seed S]\n"
               "          [--base-seed B] [--canary] [--json]\n"
               "          [--artifact-dir DIR] [--flight-dir DIR] [--metrics]\n"
               "       %s --list\n",
               argv0, argv0);
  return 2;
}

void print_record(const OutcomeRecord& r) {
  std::printf(
      "  seed=%" PRIu64 " faults=%d restarts=%d undetected=%d"
      " eff=%.3f slowdown=%.3f steps_lost=%" PRId64
      " digest=0x%016" PRIx64 "\n",
      r.seed, r.faults_injected, r.restarts, r.undetected_faults,
      r.effective_time_ratio, r.slowdown_factor, r.steps_lost,
      r.record_digest);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string artifact_dir;
  std::string flight_dir;
  std::uint64_t base_seed = 0xC405;  // "chaos"
  std::uint64_t single_seed = 0;
  bool have_single_seed = false;
  int n_seeds = 8;
  bool canary = false;
  bool as_json = false;
  bool dump_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& s : scenarios()) {
        std::printf("%-22s %s\n", s.name, s.summary);
      }
      return 0;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      scenario_name = v;
    } else if (arg == "--seeds") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      n_seeds = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      single_seed = std::strtoull(v, nullptr, 0);
      have_single_seed = true;
    } else if (arg == "--base-seed") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      base_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--artifact-dir") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      artifact_dir = v;
    } else if (arg == "--flight-dir") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      flight_dir = v;
    } else if (arg == "--canary") {
      canary = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (scenario_name.empty()) return usage(argv[0]);
  const Scenario* scenario = find_scenario(scenario_name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                 scenario_name.c_str());
    return 2;
  }

  const char* env = std::getenv("MS_CHAOS_CANARY");
  if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    canary = true;
  }

  telemetry::MetricsRegistry metrics;
  ms::diag::FlightRecorder flight;
  ChaosConfig cfg;
  cfg.canary = canary;
  cfg.metrics = &metrics;
  if (!flight_dir.empty()) cfg.flight = &flight;

  // Post-mortem dumps (frozen by the AnomalyDetector at alarm time) become
  // msdiag-loadable JSONL artifacts; cap the count so a dense campaign
  // doesn't flood the artifact store.
  auto write_flight_dumps = [&] {
    if (flight_dir.empty()) return;
    constexpr std::size_t kMaxDumps = 16;
    const auto dumps = flight.dumps();
    for (std::size_t i = 0; i < dumps.size() && i < kMaxDumps; ++i) {
      char name[48];
      std::snprintf(name, sizeof(name), "flight-%03zu.jsonl", i);
      const std::string path = flight_dir + "/" + name;
      if (ms::diag::write_text_file(path,
                                    ms::diag::flight_dump_jsonl(dumps[i]))) {
        std::printf("flight dump: %s (%s)\n", path.c_str(),
                    dumps[i].reason.c_str());
      } else {
        std::fprintf(stderr, "flight dump write failed: %s\n", path.c_str());
      }
    }
  };

  // --seed S: replay exactly one seed (the repro path).
  if (have_single_seed) {
    const auto schedule = generate_schedule(cfg, *scenario, single_seed);
    const auto record = run_schedule(cfg, scenario->name, single_seed, schedule);
    const auto verdict = evaluate_outcome(cfg, record);
    if (as_json) {
      std::printf("%s\n", to_json(record).c_str());
    } else {
      std::printf("%s seed %" PRIu64 ": %s\n", scenario->name, single_seed,
                  verdict.pass ? "PASS" : "FAIL");
      print_record(record);
      if (!verdict.pass) {
        std::printf("  reason: %s\n", verdict.reason.c_str());
        const auto minimized =
            shrink_schedule(cfg, scenario->name, single_seed, schedule);
        std::printf("  minimized to %zu fault(s):\n", minimized.size());
        for (const auto& fault : minimized) {
          std::printf("    %s\n", describe(fault).c_str());
        }
      }
    }
    if (dump_metrics) {
      std::printf("%s", telemetry::prometheus_text(metrics.snapshot()).c_str());
    }
    write_flight_dumps();
    return verdict.pass ? 0 : 1;
  }

  const auto result = run_campaign(cfg, *scenario, base_seed, n_seeds);
  if (as_json) {
    std::printf("[");
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      std::printf("%s%s", i ? ",\n " : "",
                  to_json(result.records[i]).c_str());
    }
    std::printf("]\n");
  } else {
    std::printf("scenario %s: %d/%d seeds passed (base seed %" PRIu64 "%s)\n",
                result.scenario.c_str(), result.passed, result.seeds,
                result.base_seed, canary ? ", canary ON" : "");
    for (const auto& record : result.records) print_record(record);
  }
  for (const auto& failure : result.failures) {
    std::printf("FAIL seed=%" PRIu64 ": %s\n", failure.seed,
                failure.reason.c_str());
    std::printf("  minimized to %zu fault(s):\n", failure.minimized.size());
    for (const auto& fault : failure.minimized) {
      std::printf("    %s\n", describe(fault).c_str());
    }
    std::printf("  repro: %s\n", failure.repro.c_str());
    if (!artifact_dir.empty()) {
      const auto path = write_failure_artifact(artifact_dir, failure);
      if (!path.empty()) {
        std::printf("  artifact: %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "  artifact write failed under %s\n",
                     artifact_dir.c_str());
      }
    }
  }
  if (dump_metrics) {
    std::printf("%s", telemetry::prometheus_text(metrics.snapshot()).c_str());
  }
  write_flight_dumps();
  return result.failures.empty() ? 0 : 1;
}
