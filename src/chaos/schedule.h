// Typed fault-injection schedules (the chaos campaign's event language).
//
// A chaos scenario compiles to a FaultSchedule: a time-ordered list of
// injected faults spanning every failure class the MegaScale paper reports
// from production — fail-stop process/GPU deaths (§4.1), silent compute
// stragglers (§5.1), NIC link flaps (§3.6), checkpoint-write stalls (§4.4)
// and fabric-level ECN/PFC storms and ECMP rehashes (§3.6). The schedule is
// plain data: it can be digested, serialized into a repro artifact, and —
// crucially for the shrinker — re-run as an arbitrary subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.h"
#include "ft/faults.h"

namespace ms::chaos {

enum class FaultKind {
  kFailStop,    ///< process/GPU death; payload is the ft::FaultType
  kStraggler,   ///< silent compute slowdown on one machine (engine/perturb)
  kLinkFlap,    ///< NIC link down/up episode (net/flap)
  kCkptStall,   ///< checkpoint writer falls behind; training blocks (§4.4)
  kPfcStorm,    ///< incast pressure driving ECN marks / PFC pauses (ccsim)
  kEcmpRehash,  ///< path rehash: every flow label re-drawn (net/ecmp)
};

/// Stable short name ("fail-stop", "link-flap", ...), used in outcome
/// records and repro artifacts.
const char* fault_kind_name(FaultKind kind);

/// One injected fault. Field meaning depends on kind:
///   kFailStop:   node = victim, fail_type = how it dies
///   kStraggler:  node = victim machine, magnitude = slowdown - 1 (0.1 = 10%)
///   kLinkFlap:   node = link index, duration = down-time
///   kCkptStall:  duration = extra stall charged to the next checkpoint
///   kPfcStorm:   magnitude in (0, 1] = storm intensity (incast pressure)
///   kEcmpRehash: node = rehash round (entropy source for the new labels)
struct InjectedFault {
  TimeNs at = 0;
  FaultKind kind = FaultKind::kFailStop;
  int node = 0;
  ft::FaultType fail_type = ft::FaultType::kCudaError;
  TimeNs duration = 0;
  double magnitude = 0.0;
};

using FaultSchedule = std::vector<InjectedFault>;

/// Canonical order: by time, then kind, then node. Scenario generators and
/// the shrinker both emit canonical schedules so that "the same schedule"
/// is a meaningful equality.
void sort_schedule(FaultSchedule& schedule);

/// One-line human rendering, e.g. "t=12.0m link-flap link=3 down=2.5s".
std::string describe(const InjectedFault& fault);

/// Order-sensitive FNV-1a digest over every field of every fault. Two
/// schedules digest equal iff they are field-for-field identical.
std::uint64_t schedule_digest(const FaultSchedule& schedule);

}  // namespace ms::chaos
