#include "chaos/campaign.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "telemetry/metrics.h"

namespace ms::chaos {

namespace {

/// Per-seed result slot: written by exactly one worker, read only after
/// the join barrier, so the slots themselves need no lock.
struct SeedOutcome {
  std::uint64_t seed = 0;
  FaultSchedule schedule;
  OutcomeRecord record;
  OracleVerdict verdict;
};

/// Work-stealing cursor over seed indices. Workers pull the next index so
/// skewed per-seed cost (a failing seed simulates far more than a passing
/// one) never idles a thread.
class SeedFanOut {
 public:
  explicit SeedFanOut(int n) : n_(n) {}

  /// Next unclaimed seed index, or -1 when the campaign is exhausted.
  int next() {
    MutexLock lock(mu_);
    return next_ < n_ ? next_++ : -1;
  }

 private:
  const int n_;
  Mutex mu_;
  int next_ MS_GUARDED_BY(mu_) = 0;
};

}  // namespace

OracleVerdict evaluate_outcome(const ChaosConfig& cfg,
                               const OutcomeRecord& record) {
  OracleVerdict verdict;
  char buf[160];
  if (record.undetected_faults > 0) {
    std::snprintf(buf, sizeof buf,
                  "%d injected fail-stop(s) were never detected "
                  "(detection hole in the recovery path)",
                  record.undetected_faults);
    verdict.pass = false;
    verdict.reason = buf;
    return verdict;
  }
  if (record.effective_time_ratio < cfg.min_effective_ratio) {
    std::snprintf(buf, sizeof buf,
                  "effective-time ratio %.3f below the %.3f floor",
                  record.effective_time_ratio, cfg.min_effective_ratio);
    verdict.pass = false;
    verdict.reason = buf;
    return verdict;
  }
  if (record.nccl_errors > 0 && record.restarts == 0 &&
      record.undetected_faults == 0) {
    // A flap aborted NCCL but no recovery ever ran — the abort was lost.
    verdict.pass = false;
    verdict.reason = "NCCL abort produced no restart";
    return verdict;
  }
  return verdict;
}

FaultSchedule shrink_schedule(const ChaosConfig& cfg,
                              const std::string& scenario_name,
                              std::uint64_t seed,
                              const FaultSchedule& failing) {
  auto fails = [&](const FaultSchedule& candidate) {
    const auto record = run_schedule(cfg, scenario_name, seed, candidate);
    return !evaluate_outcome(cfg, record).pass;
  };
  FaultSchedule current = failing;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t n = current.size();
    granularity = std::min(granularity, n);
    const std::size_t chunk = (n + granularity - 1) / granularity;
    bool reduced = false;
    // Try each complement (drop one chunk at a time).
    for (std::size_t start = 0; start < n; start += chunk) {
      FaultSchedule complement;
      complement.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (i < start || i >= start + chunk) complement.push_back(current[i]);
      }
      if (!complement.empty() && fails(complement)) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= n) break;  // 1-minimal
      granularity = std::min(n, granularity * 2);
    }
  }
  return current;
}

std::string repro_command(const std::string& scenario_name, std::uint64_t seed,
                          bool canary) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "chaos_campaign --scenario %s --seed %" PRIu64
                                 "%s",
                scenario_name.c_str(), seed, canary ? " --canary" : "");
  return buf;
}

CampaignResult run_campaign(const ChaosConfig& cfg, const Scenario& scenario,
                            std::uint64_t base_seed, int n_seeds) {
  CampaignResult result;
  result.scenario = scenario.name;
  result.base_seed = base_seed;
  result.seeds = n_seeds;
  if (n_seeds <= 0) return result;

  std::vector<SeedOutcome> slots(static_cast<std::size_t>(n_seeds));
  auto run_one = [&](int i) {
    SeedOutcome& slot = slots[static_cast<std::size_t>(i)];
    slot.seed =
        derive_seed(base_seed, "chaos.campaign", static_cast<std::uint64_t>(i));
    slot.schedule = generate_schedule(cfg, scenario, slot.seed);
    slot.record = run_schedule(cfg, scenario.name, slot.seed, slot.schedule);
    slot.verdict = evaluate_outcome(cfg, slot.record);
  };

  int workers = cfg.parallel_seeds;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (cfg.metrics != nullptr || cfg.flight != nullptr) {
    // Attached sinks record in run order; one thread keeps metric
    // registration order and flight-dump interleaving deterministic.
    workers = 1;
  }
  workers = std::clamp(workers, 1, n_seeds);

  if (workers > 1) {
    SeedFanOut cursor(n_seeds);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (int i = cursor.next(); i >= 0; i = cursor.next()) run_one(i);
      });
    }
    for (auto& t : pool) t.join();
  } else {
    for (int i = 0; i < n_seeds; ++i) run_one(i);
  }

  // Sequential post-pass in seed order: telemetry export and ddmin
  // shrinking, so failure artifacts and counters come out identically at
  // any fan-out width.
  for (auto& slot : slots) {
    if (cfg.metrics != nullptr) {
      cfg.metrics
          ->counter("chaos_runs_total",
                    {{"scenario", scenario.name},
                     {"outcome", slot.verdict.pass ? "pass" : "fail"}})
          .add();
    }
    if (slot.verdict.pass) {
      ++result.passed;
    } else {
      CampaignFailure failure;
      failure.seed = slot.seed;
      failure.record = slot.record;
      failure.reason = slot.verdict.reason;
      failure.minimized =
          shrink_schedule(cfg, scenario.name, slot.seed, slot.schedule);
      failure.minimized_record =
          run_schedule(cfg, scenario.name, slot.seed, failure.minimized);
      failure.repro = repro_command(scenario.name, slot.seed, cfg.canary);
      result.failures.push_back(std::move(failure));
    }
    result.records.push_back(std::move(slot.record));
  }
  return result;
}

std::string write_failure_artifact(const std::string& dir,
                                   const CampaignFailure& failure) {
  char name[128];
  std::snprintf(name, sizeof name, "chaos-%s-seed%" PRIu64 ".json",
                failure.record.scenario.c_str(), failure.seed);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream out(path);
  if (!out) return "";
  out << "{\n  \"reason\": \"" << failure.reason << "\",\n";
  out << "  \"repro\": \"" << failure.repro << "\",\n";
  out << "  \"record\": " << to_json(failure.record) << ",\n";
  out << "  \"minimized_record\": " << to_json(failure.minimized_record)
      << ",\n";
  out << "  \"minimized_schedule\": [\n";
  for (std::size_t i = 0; i < failure.minimized.size(); ++i) {
    out << "    \"" << describe(failure.minimized[i]) << "\""
        << (i + 1 < failure.minimized.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good() ? path : "";
}

}  // namespace ms::chaos
