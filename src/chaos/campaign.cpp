#include "chaos/campaign.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "telemetry/metrics.h"

namespace ms::chaos {

OracleVerdict evaluate_outcome(const ChaosConfig& cfg,
                               const OutcomeRecord& record) {
  OracleVerdict verdict;
  char buf[160];
  if (record.undetected_faults > 0) {
    std::snprintf(buf, sizeof buf,
                  "%d injected fail-stop(s) were never detected "
                  "(detection hole in the recovery path)",
                  record.undetected_faults);
    verdict.pass = false;
    verdict.reason = buf;
    return verdict;
  }
  if (record.effective_time_ratio < cfg.min_effective_ratio) {
    std::snprintf(buf, sizeof buf,
                  "effective-time ratio %.3f below the %.3f floor",
                  record.effective_time_ratio, cfg.min_effective_ratio);
    verdict.pass = false;
    verdict.reason = buf;
    return verdict;
  }
  if (record.nccl_errors > 0 && record.restarts == 0 &&
      record.undetected_faults == 0) {
    // A flap aborted NCCL but no recovery ever ran — the abort was lost.
    verdict.pass = false;
    verdict.reason = "NCCL abort produced no restart";
    return verdict;
  }
  return verdict;
}

FaultSchedule shrink_schedule(const ChaosConfig& cfg,
                              const std::string& scenario_name,
                              std::uint64_t seed,
                              const FaultSchedule& failing) {
  auto fails = [&](const FaultSchedule& candidate) {
    const auto record = run_schedule(cfg, scenario_name, seed, candidate);
    return !evaluate_outcome(cfg, record).pass;
  };
  FaultSchedule current = failing;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t n = current.size();
    granularity = std::min(granularity, n);
    const std::size_t chunk = (n + granularity - 1) / granularity;
    bool reduced = false;
    // Try each complement (drop one chunk at a time).
    for (std::size_t start = 0; start < n; start += chunk) {
      FaultSchedule complement;
      complement.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (i < start || i >= start + chunk) complement.push_back(current[i]);
      }
      if (!complement.empty() && fails(complement)) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= n) break;  // 1-minimal
      granularity = std::min(n, granularity * 2);
    }
  }
  return current;
}

std::string repro_command(const std::string& scenario_name, std::uint64_t seed,
                          bool canary) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "chaos_campaign --scenario %s --seed %" PRIu64
                                 "%s",
                scenario_name.c_str(), seed, canary ? " --canary" : "");
  return buf;
}

CampaignResult run_campaign(const ChaosConfig& cfg, const Scenario& scenario,
                            std::uint64_t base_seed, int n_seeds) {
  CampaignResult result;
  result.scenario = scenario.name;
  result.base_seed = base_seed;
  result.seeds = n_seeds;
  for (int i = 0; i < n_seeds; ++i) {
    const std::uint64_t seed =
        derive_seed(base_seed, "chaos.campaign", static_cast<std::uint64_t>(i));
    const auto schedule = generate_schedule(cfg, scenario, seed);
    auto record = run_schedule(cfg, scenario.name, seed, schedule);
    const auto verdict = evaluate_outcome(cfg, record);
    if (cfg.metrics != nullptr) {
      cfg.metrics
          ->counter("chaos_runs_total",
                    {{"scenario", scenario.name},
                     {"outcome", verdict.pass ? "pass" : "fail"}})
          .add();
    }
    if (verdict.pass) {
      ++result.passed;
    } else {
      CampaignFailure failure;
      failure.seed = seed;
      failure.record = record;
      failure.reason = verdict.reason;
      failure.minimized = shrink_schedule(cfg, scenario.name, seed, schedule);
      failure.minimized_record =
          run_schedule(cfg, scenario.name, seed, failure.minimized);
      failure.repro = repro_command(scenario.name, seed, cfg.canary);
      result.failures.push_back(std::move(failure));
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

std::string write_failure_artifact(const std::string& dir,
                                   const CampaignFailure& failure) {
  char name[128];
  std::snprintf(name, sizeof name, "chaos-%s-seed%" PRIu64 ".json",
                failure.record.scenario.c_str(), failure.seed);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream out(path);
  if (!out) return "";
  out << "{\n  \"reason\": \"" << failure.reason << "\",\n";
  out << "  \"repro\": \"" << failure.repro << "\",\n";
  out << "  \"record\": " << to_json(failure.record) << ",\n";
  out << "  \"minimized_record\": " << to_json(failure.minimized_record)
      << ",\n";
  out << "  \"minimized_schedule\": [\n";
  for (std::size_t i = 0; i < failure.minimized.size(); ++i) {
    out << "    \"" << describe(failure.minimized[i]) << "\""
        << (i + 1 < failure.minimized.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good() ? path : "";
}

}  // namespace ms::chaos
