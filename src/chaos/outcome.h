// Outcome records: the scored result of one chaos run.
//
// A record is the falsifiable unit of the §4 resilience claim: it carries
// the effective-time ratio (paper: > 90% over weeks in production), the
// detection/recovery latency distributions, the progress lost to restarts,
// and the determinism digests that make a reported failing seed exactly
// reproducible. Records serialize to JSON for golden-scenario regression
// tests and failing-seed repro artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.h"

namespace ms::chaos {

/// Summary of a latency sample set (detection or recovery).
struct LatencyStats {
  int count = 0;
  TimeNs mean = 0;
  TimeNs p50 = 0;
  TimeNs p95 = 0;
  TimeNs max = 0;
};

struct OutcomeRecord {
  std::string scenario;
  std::uint64_t seed = 0;

  // ---- the headline §4 number and its decomposition -------------------
  /// Fraction of wall-clock the job spent making forward progress at full
  /// speed: driver training fraction x 1/slowdown x (1 - stall/lost
  /// fraction). The paper reports > 90% in production.
  double effective_time_ratio = 1.0;
  /// Critical-path stretch from stragglers + fabric degradation (>= 1).
  double slowdown_factor = 1.0;

  // ---- incident accounting --------------------------------------------
  int faults_injected = 0;
  int restarts = 0;          ///< incidents that went through full recovery
  int undetected_faults = 0; ///< fail-stops never alarmed (detection hole)
  std::int64_t steps_lost = 0;  ///< redone since last checkpoint, in steps
  LatencyStats detect_latency;
  LatencyStats recovery_latency;

  // ---- per-failure-class observables ----------------------------------
  TimeNs ckpt_stall_total = 0;
  TimeNs flap_stall_total = 0;
  int nccl_errors = 0;               ///< flap episodes that aborted NCCL
  double pfc_pause_fraction = 0;     ///< worst storm's measured pause time
  double ecmp_conflict_fraction = 0; ///< worst rehash's conflicted flows
  int spare_pool_exhausted = 0;

  // ---- fabric observatory (congestion localization) -------------------
  /// Storm/rehash faults graded on localization (observatory enabled and
  /// something to localize).
  int fabric_localizations = 0;
  /// Of those, runs where the top-1 ranked link was the injected hot link.
  int fabric_top1_correct = 0;
  /// Detector alarms raised across the localization runs.
  int fabric_alarms = 0;
  /// Worst first-alarm time within a localization window (detection
  /// latency in simulated time; 0 when no run alarmed).
  TimeNs fabric_detect_latency = 0;

  // ---- determinism ----------------------------------------------------
  std::uint64_t schedule_digest = 0;  ///< digest of the injected schedule
  std::uint64_t engine_digest = 0;    ///< driver-sim Engine::digest()
  std::uint64_t record_digest = 0;    ///< digest over every field above
};

/// Recomputes record_digest from every other field (order-sensitive).
std::uint64_t compute_record_digest(const OutcomeRecord& record);

/// Bit-exact equality over every field — the reproducibility bar for
/// re-running a reported failing seed.
bool identical(const OutcomeRecord& a, const OutcomeRecord& b);

/// Tolerances for golden-scenario diffs: ratios compare within `ratio`,
/// latencies within `latency_frac` relative error (plus 1 ms absolute
/// slack); counts and digests compare exactly.
struct Tolerance {
  double ratio = 0.02;
  double latency_frac = 0.05;
};

/// Every mismatch as "field: got X, want Y"; empty means within tolerance.
std::vector<std::string> diff_outcomes(const OutcomeRecord& got,
                                       const OutcomeRecord& want,
                                       const Tolerance& tol);

/// One JSON object (stable key order, whole-record round-trippable).
std::string to_json(const OutcomeRecord& record);

/// Parses what to_json emitted. Returns false on malformed input.
bool from_json(const std::string& text, OutcomeRecord& out);

}  // namespace ms::chaos
