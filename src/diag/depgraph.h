// Cross-rank dependency DAG reconstruction (MegaScale §5.2).
//
// The engine emits structured `k=v` attributes on every span (see
// sim::OpSpec::detail): compute ops carry their (stage, chunk, microbatch,
// pass) coordinates, transfers carry both endpoints, collectives carry
// their group. DepGraph rebuilds the step's dependency structure purely
// from those attributes — no access to the original GraphExecutor — which
// is exactly the situation of a post-mortem: all you have is the trace.
//
// Edge inventory:
//   * program order within one hardware queue (`stream=` attr, or the rank
//     when a span predates structured details);
//   * send -> recv pairing per transfer (from, to, chunk, microbatch, pass);
//   * compute -> its outbound send, recv -> the compute it feeds;
//   * fwd -> bwd on the last stage (the loss is local, no transfer);
//   * data pipeline -> forwards with no inbound transfer;
//   * DP all-gather -> first forward per chunk, last backward -> reduce-
//     scatter, reduce-scatter -> optimizer.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/time.h"
#include "diag/timeline.h"

namespace ms::diag {

/// Parsed view of a span's `k=v` detail string. Unknown tokens are kept
/// verbatim; lookups are by key.
class SpanAttrs {
 public:
  SpanAttrs() = default;
  explicit SpanAttrs(const std::string& detail);

  bool has(const std::string& key) const { return kv_.count(key) > 0; }
  /// Integer attribute, or `fallback` when absent/non-numeric.
  int num(const std::string& key, int fallback = -1) const;
  std::string text(const std::string& key,
                   const std::string& fallback = "") const;

 private:
  std::map<std::string, std::string> kv_;
};

enum class EdgeKind {
  kProgramOrder,  ///< same hardware queue, serialized issue
  kTransfer,      ///< send -> recv of one p2p transfer
  kProduce,       ///< compute -> its outbound send
  kConsume,       ///< recv -> the compute it feeds
  kLocalGrad,     ///< last-stage fwd -> bwd (loss computed locally)
  kData,          ///< data pipeline -> first consumers
  kCollective,    ///< DP collective ordering (ag -> fwd, bwd -> rs, rs -> opt)
};

const char* edge_kind_name(EdgeKind kind);

struct DepEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  EdgeKind kind = EdgeKind::kProgramOrder;
};

class DepGraph {
 public:
  /// Reconstructs the DAG from the spans of one simulated step.
  static DepGraph build(std::vector<TraceSpan> spans);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const SpanAttrs& attrs(std::size_t i) const { return attrs_[i]; }
  const std::vector<DepEdge>& edges() const { return edges_; }
  /// Incoming edges of node i.
  const std::vector<DepEdge>& preds(std::size_t i) const { return preds_[i]; }
  std::size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }

  /// Node with the latest end time; ties break to the smallest index so
  /// the walk (and everything derived from it) is deterministic.
  std::size_t sink() const;
  TimeNs makespan() const;

 private:
  void add_edge(std::size_t from, std::size_t to, EdgeKind kind);

  std::vector<TraceSpan> spans_;
  std::vector<SpanAttrs> attrs_;
  std::vector<DepEdge> edges_;
  std::vector<std::vector<DepEdge>> preds_;
};

}  // namespace ms::diag
