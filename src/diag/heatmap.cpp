#include "diag/heatmap.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ms::diag {

void PerformanceHeatmap::add_sample(int machine, const std::string& phase,
                                    double seconds) {
  if (std::find(phase_order_.begin(), phase_order_.end(), phase) ==
      phase_order_.end()) {
    phase_order_.push_back(phase);
  }
  cells_[machine][phase].add(seconds);
}

int PerformanceHeatmap::machine_count() const {
  return static_cast<int>(cells_.size());
}

std::vector<std::string> PerformanceHeatmap::phases() const {
  return phase_order_;
}

double PerformanceHeatmap::mean(int machine, const std::string& phase) const {
  auto mit = cells_.find(machine);
  if (mit == cells_.end()) return 0.0;
  auto pit = mit->second.find(phase);
  if (pit == mit->second.end()) return 0.0;
  return pit->second.mean();
}

double PerformanceHeatmap::machine_score(int machine) const {
  // Mean over phases of (machine latency / phase median latency).
  double score = 0.0;
  int counted = 0;
  for (const auto& phase : phase_order_) {
    Percentiles all;
    for (const auto& [m, row] : cells_) {
      auto it = row.find(phase);
      if (it != row.end()) all.add(it->second.mean());
    }
    if (all.empty()) continue;
    const double median = all.median();
    const double mine = mean(machine, phase);
    if (median > 0 && mine > 0) {
      score += mine / median;
      ++counted;
    }
  }
  return counted > 0 ? score / counted : 1.0;
}

std::vector<int> PerformanceHeatmap::outliers(double threshold) const {
  std::vector<int> result;
  for (const auto& [machine, _] : cells_) {  // ordered map: ascending
    if (machine_score(machine) > 1.0 + threshold) result.push_back(machine);
  }
  return result;
}

std::string PerformanceHeatmap::ascii(double outlier_threshold) const {
  static const char kShades[] = " .:-=+*#%@";
  std::vector<int> machines;
  for (const auto& [m, _] : cells_) machines.push_back(m);  // ascending

  // Per-phase min/max for shading.
  std::ostringstream out;
  out << "machine |";
  for (const auto& p : phase_order_) out << ' ' << p << " |";
  out << '\n';
  const auto outlier_list = outliers(outlier_threshold);
  for (int m : machines) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%7d |", m);
    out << buf;
    for (const auto& phase : phase_order_) {
      double lo = 1e300, hi = -1e300;
      for (int other : machines) {
        const double v = mean(other, phase);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      const double v = mean(m, phase);
      int shade = 0;
      if (hi > lo) {
        shade = static_cast<int>((v - lo) / (hi - lo) * 9.0);
        shade = std::clamp(shade, 0, 9);
      }
      const std::string glyphs(phase.size(), kShades[shade]);
      out << ' ' << glyphs << " |";
    }
    if (std::binary_search(outlier_list.begin(), outlier_list.end(), m)) {
      out << "  << STRAGGLER";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ms::diag
