// msdiag — the §5 diagnosis workflow as a CLI (library half).
//
// Commands operate on artifacts on disk, so the same binary analyzes a
// bench run, a chaos campaign, or a trace attached to a CI failure:
//
//   msdiag analyze <trace.jsonl> [--json] [--top K]
//       critical-path breakdown + blame table for one step trace
//   msdiag diff <base.jsonl> <cand.jsonl>
//       localize a regression between two runs
//   msdiag flight <dump.jsonl> [--perfetto <out.json>]
//       summarize a flight-recorder dump; optionally export it as a
//       Perfetto/Chrome trace
//   msdiag export <trace.jsonl> <out.json>
//       annotated Perfetto/Chrome trace (critical-path spans marked)
//
// The entry point takes argv-style strings and writes to caller-supplied
// streams — tests drive it exactly like the shell does.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ms::diag {

/// Runs one msdiag command. Returns a process exit code (0 = success,
/// 1 = bad usage / failed load).
int msdiag_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

/// Usage text (also printed on bad invocations).
std::string msdiag_usage();

}  // namespace ms::diag
