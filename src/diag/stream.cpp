#include "diag/stream.h"

namespace ms::diag {

void EventStore::ingest(const EventRecord& record) {
  MutexLock lock(mu_);
  records_.push_back(record);
  agg_[{record.rank, record.segment}].add(to_seconds(record.duration));
}

std::size_t EventStore::total_events() const {
  MutexLock lock(mu_);
  return records_.size();
}

TimeNs EventStore::mean_duration(int rank, const std::string& segment) const {
  MutexLock lock(mu_);
  auto it = agg_.find({rank, segment});
  return it == agg_.end() ? 0 : seconds(it->second.mean());
}

std::vector<EventRecord> EventStore::step_records(std::int64_t step) const {
  MutexLock lock(mu_);
  std::vector<EventRecord> result;
  for (const auto& r : records_) {
    if (r.step == step) result.push_back(r);
  }
  return result;
}

EventStreamer::EventStreamer(EventStore& store, std::size_t queue_capacity)
    : store_(store),
      capacity_(queue_capacity),
      consumer_([this] { consumer_loop(); }) {}

EventStreamer::~EventStreamer() { close(); }

bool EventStreamer::publish(EventRecord record) {
  MutexLock lock(mu_);
  while (!closed_ && queue_.size() >= capacity_) cv_.wait(mu_);
  if (closed_) return false;
  queue_.push_back(std::move(record));
  cv_.notify_all();
  return true;
}

void EventStreamer::close() {
  {
    MutexLock lock(mu_);
    if (closed_) {
      return;
    }
    closed_ = true;
  }
  cv_.notify_all();
  if (consumer_.joinable()) consumer_.join();
}

void EventStreamer::consumer_loop() {
  for (;;) {
    EventRecord record;
    {
      MutexLock lock(mu_);
      while (!closed_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) {
        if (closed_) return;
        continue;
      }
      record = std::move(queue_.front());
      queue_.pop_front();
      cv_.notify_all();  // unblock producers waiting on capacity
    }
    store_.ingest(record);
  }
}

}  // namespace ms::diag
