// Trace-artifact IO for the diagnosis toolchain.
//
// Runs persist their evidence as JSONL: one span per line (the same
// format telemetry::jsonl_spans emits) or a flight-recorder dump. msdiag
// and the tests load artifacts through these helpers, so a trace captured
// by a bench, a chaos campaign, or the nightly CI job all round-trip into
// the analyzer without conversion.
#pragma once

#include <string>
#include <vector>

#include "diag/timeline.h"

namespace ms::diag {

/// Writes `content` to `path`, creating parent directories. Returns false
/// on IO failure.
bool write_text_file(const std::string& path, const std::string& content);

/// Reads the whole file. Returns false when unreadable.
bool read_text_file(const std::string& path, std::string& out);

/// One span per line, schema-compatible with telemetry::jsonl_spans
/// (`{"type":"span","rank":..,"name":..,"tag":..,"start_ns":..,"end_ns":..,
/// "detail":..}`).
std::string trace_jsonl(const std::vector<TraceSpan>& spans);

/// Parses a span JSONL artifact. Lines of other types (metrics mixed into
/// the same export) are skipped; malformed JSON fails the load.
bool parse_trace_jsonl(const std::string& text, std::vector<TraceSpan>& out);

}  // namespace ms::diag
