#include "diag/flight_recorder.h"

#include <algorithm>
#include <sstream>

#include "core/json.h"

namespace ms::diag {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  if (config_.capacity_per_node == 0) config_.capacity_per_node = 1;
}

void FlightRecorder::record(int node, TimeNs time, std::string kind,
                            std::string detail) {
  if (node < 0) return;
  MutexLock lock(mu_);
  const auto idx = static_cast<std::size_t>(node);
  if (idx >= rings_.size()) rings_.resize(idx + 1);
  Ring& ring = rings_[idx];
  FlightEvent ev{time, node, std::move(kind), std::move(detail), seq_++};
  if (ring.slots.size() < config_.capacity_per_node) {
    ring.slots.push_back(std::move(ev));
  } else {
    ring.slots[ring.next] = std::move(ev);
    ring.next = (ring.next + 1) % ring.slots.size();
  }
  ++ring.written;
}

FlightDump FlightRecorder::trigger(std::string reason, TimeNs now) {
  MutexLock lock(mu_);
  FlightDump dump;
  dump.reason = std::move(reason);
  dump.time = now;
  for (const Ring& ring : rings_) {
    dump.events.insert(dump.events.end(), ring.slots.begin(),
                       ring.slots.end());
  }
  std::sort(dump.events.begin(), dump.events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
            });
  dumps_.push_back(dump);
  return dump;
}

std::vector<FlightDump> FlightRecorder::dumps() const {
  MutexLock lock(mu_);
  return dumps_;
}

std::uint64_t FlightRecorder::total_recorded() const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) total += ring.written;
  return total;
}

std::uint64_t FlightRecorder::total_dropped() const {
  MutexLock lock(mu_);
  std::uint64_t dropped = 0;
  for (const Ring& ring : rings_) dropped += ring.written - ring.slots.size();
  return dropped;
}

void FlightRecorder::clear() {
  MutexLock lock(mu_);
  rings_.clear();
  dumps_.clear();
  seq_ = 0;
}

std::string flight_dump_jsonl(const FlightDump& dump) {
  std::ostringstream out;
  out << "{\"type\":\"flight-dump\",\"reason\":\"" << json::escape(dump.reason)
      << "\",\"time_ns\":" << dump.time
      << ",\"events\":" << dump.events.size() << "}\n";
  for (const auto& ev : dump.events) {
    out << "{\"type\":\"flight-event\",\"time_ns\":" << ev.time
        << ",\"node\":" << ev.node << ",\"kind\":\"" << json::escape(ev.kind)
        << "\",\"detail\":\"" << json::escape(ev.detail)
        << "\",\"seq\":" << ev.seq << "}\n";
  }
  return out.str();
}

bool parse_flight_dump_jsonl(const std::string& text, FlightDump& out) {
  FlightDump dump;
  bool saw_header = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value v;
    if (!json::parse(line, v) || !v.is_object()) return false;
    const std::string type = v.text("type");
    if (type == "flight-dump") {
      if (saw_header) return false;
      saw_header = true;
      dump.reason = v.text("reason");
      dump.time = static_cast<TimeNs>(v.num("time_ns"));
    } else if (type == "flight-event") {
      FlightEvent ev;
      ev.time = static_cast<TimeNs>(v.num("time_ns"));
      ev.node = static_cast<int>(v.num("node"));
      ev.kind = v.text("kind");
      ev.detail = v.text("detail");
      ev.seq = static_cast<std::uint64_t>(v.num("seq"));
      dump.events.push_back(std::move(ev));
    } else {
      return false;
    }
  }
  if (!saw_header) return false;
  out = std::move(dump);
  return true;
}

TimelineTrace flight_dump_timeline(const FlightDump& dump) {
  TimelineTrace trace;
  for (const auto& ev : dump.events) {
    // Events are instants; give each a 1 µs body so trace viewers render
    // them (the exporter keeps sub-µs durations since the %.3f fix).
    trace.add(TraceSpan{ev.node, ev.kind, "flight", ev.time,
                        ev.time + microseconds(1.0), ev.detail});
  }
  return trace;
}

}  // namespace ms::diag
