// Collective launch-skew analysis (MegaScale §6.3, "MFU decreasing").
//
// The production investigation: per-step time was creeping up although
// forward/backward/optimizer compute stayed flat; the culprit was the
// LAUNCH TIME of the data-parallel reduce-scatter drifting apart across
// ranks ("not consistently staggered but rather fluctuating reciprocally",
// with the stagger growing over steps), so every rank waited on the
// slowest. This analyzer ingests per-step, per-rank launch timestamps and
// answers the two diagnostic questions:
//   * is the stagger growing? (linear trend of the per-step skew)
//   * which ranks drift?     (per-rank offset trend against the per-step
//     median)
#pragma once

#include <map>
#include <vector>

#include "core/time.h"

namespace ms::diag {

class LaunchSkewAnalyzer {
 public:
  /// Records that `rank` launched the tracked collective of `step` at
  /// simulated/wall time `launch_time`.
  void record(std::int64_t step, int rank, TimeNs launch_time);

  std::size_t steps_observed() const { return steps_.size(); }

  /// Stagger of one step: latest minus earliest launch (0 if <2 ranks).
  TimeNs skew_at(std::int64_t step) const;

  /// Least-squares slope of skew vs step, in seconds per step. Positive
  /// and significant => the §6.3 pathology.
  double skew_growth_per_step() const;

  /// Ranks whose |offset from the per-step median| grows faster than
  /// `threshold_s_per_step` (the drifting ranks worth inspecting).
  std::vector<int> drifting_ranks(double threshold_s_per_step) const;

 private:
  // step -> rank -> launch time.
  std::map<std::int64_t, std::map<int, TimeNs>> steps_;
};

}  // namespace ms::diag
