#include "diag/timeline.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "core/json.h"

namespace ms::diag {

void TimelineTrace::add(TraceSpan span) { spans_.push_back(std::move(span)); }

std::vector<TraceSpan> TimelineTrace::rank_spans(int rank) const {
  std::vector<TraceSpan> result;
  for (const auto& s : spans_) {
    if (s.rank == rank) result.push_back(s);
  }
  std::sort(result.begin(), result.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.start < b.start;
            });
  return result;
}

std::vector<TraceSpan> TimelineTrace::active_at(TimeNs t) const {
  std::vector<TraceSpan> result;
  for (const auto& s : spans_) {
    if (s.start <= t && t < s.end) result.push_back(s);
  }
  return result;
}

TimeNs TimelineTrace::idle_time(int rank, TimeNs from, TimeNs to) const {
  auto spans = rank_spans(rank);
  TimeNs busy = 0;
  TimeNs cursor = from;
  for (const auto& s : spans) {
    const TimeNs start = std::max(s.start, cursor);
    const TimeNs end = std::min(s.end, to);
    if (end > start) {
      busy += end - start;
      cursor = std::max(cursor, end);
    }
  }
  return (to - from) - busy;
}

std::string TimelineTrace::chrome_trace_json() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (const auto& s : spans_) {
    if (!first) out << ',';
    first = false;
    // Fractional microseconds ("%.3f" = nanosecond resolution) so sub-µs
    // spans keep a nonzero duration in the viewer.
    out << "{\"name\":\"" << json::escape(s.name) << "\",\"cat\":\""
        << json::escape(s.tag) << "\",\"ph\":\"X\",\"pid\":" << s.rank
        << ",\"tid\":0";
    std::snprintf(num, sizeof(num), "%.3f", to_microseconds(s.start));
    out << ",\"ts\":" << num;
    std::snprintf(num, sizeof(num), "%.3f", to_microseconds(s.end - s.start));
    out << ",\"dur\":" << num;
    if (!s.detail.empty()) {
      out << ",\"args\":{\"detail\":\"" << json::escape(s.detail) << "\"}";
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::string TimelineTrace::render(TimeNs from, TimeNs to,
                                  std::size_t width) const {
  if (to <= from || width == 0) return "";
  std::map<int, std::string> lanes;
  for (const auto& s : spans_) {
    auto& lane = lanes[s.rank];
    if (lane.empty()) lane.assign(width, ' ');
  }
  auto glyph_of = [](const TraceSpan& s) {
    if (s.name == "fwd" || s.tag == "fwd") return 'F';
    if (s.name == "bwd" || s.tag == "bwd") return 'B';
    if (s.tag == "dp-comm") return 'd';
    if (s.tag == "pp-comm") return '-';
    if (s.tag == "optimizer") return 'O';
    return '#';
  };
  const double span_ns = static_cast<double>(to - from);
  for (const auto& s : spans_) {
    if (s.end <= from || s.start >= to) continue;
    auto& lane = lanes[s.rank];
    const auto lo = static_cast<std::size_t>(
        static_cast<double>(std::max(s.start, from) - from) / span_ns *
        static_cast<double>(width));
    auto hi = static_cast<std::size_t>(
        static_cast<double>(std::min(s.end, to) - from) / span_ns *
        static_cast<double>(width));
    hi = std::min(hi, width - 1);
    for (std::size_t i = lo; i <= hi; ++i) lane[i] = glyph_of(s);
  }

  std::ostringstream out;
  out << "time: " << format_duration(from) << " .. " << format_duration(to)
      << "   (F=fwd B=bwd -=pp-comm d=dp-comm O=optimizer)\n";
  for (const auto& [rank, lane] : lanes) {
    char head[24];
    std::snprintf(head, sizeof(head), "rank %3d |", rank);
    out << head << lane << "|\n";
  }
  return out.str();
}

}  // namespace ms::diag
