#include "diag/viz3d.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace ms::diag {

using parallel::coord_of;
using parallel::dp_group;
using parallel::pp_group;
using parallel::rank_of;
using parallel::tp_group;

std::string Parallel3DVisualizer::describe(int rank) const {
  const auto c = coord_of(rank, cfg_);
  std::ostringstream out;
  out << "rank " << rank << " @ (tp=" << c.tp << ", dp=" << c.dp
      << ", pp=" << c.pp << ")\n";
  out << "  tensor group   :";
  for (int r : tp_group(rank, cfg_)) out << ' ' << r;
  out << "  (all-gather / reduce-scatter per layer)\n";
  out << "  data group     :";
  for (int r : dp_group(rank, cfg_)) out << ' ' << r;
  out << "  (param all-gather fwd, grad reduce-scatter bwd)\n";
  out << "  pipeline group :";
  for (int r : pp_group(rank, cfg_)) out << ' ' << r;
  out << "\n";
  if (c.pp > 0) {
    auto prev = c;
    prev.pp = c.pp - 1;
    out << "  recv activations from rank " << rank_of(prev, cfg_) << "\n";
  }
  if (c.pp < cfg_.pp - 1) {
    auto next = c;
    next.pp = c.pp + 1;
    out << "  send activations to rank " << rank_of(next, cfg_) << "\n";
  }
  return out.str();
}

std::string Parallel3DVisualizer::dot_graph(int rank) const {
  std::ostringstream out;
  out << "digraph rank" << rank << " {\n";
  out << "  n" << rank << " [style=filled, fillcolor=lightblue];\n";
  for (int peer : tp_group(rank, cfg_)) {
    if (peer != rank) {
      out << "  n" << rank << " -> n" << peer << " [label=\"tp\", dir=both];\n";
    }
  }
  for (int peer : dp_group(rank, cfg_)) {
    if (peer != rank) {
      out << "  n" << rank << " -> n" << peer << " [label=\"dp\", dir=both];\n";
    }
  }
  const auto c = coord_of(rank, cfg_);
  if (c.pp < cfg_.pp - 1) {
    auto next = c;
    next.pp = c.pp + 1;
    out << "  n" << rank << " -> n" << rank_of(next, cfg_)
        << " [label=\"pp\"];\n";
  }
  if (c.pp > 0) {
    auto prev = c;
    prev.pp = c.pp - 1;
    out << "  n" << rank_of(prev, cfg_) << " -> n" << rank
        << " [label=\"pp\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::vector<int> Parallel3DVisualizer::locate_hung_ranks(
    const std::map<int, std::string>& last_logged_op) const {
  std::set<int> silent;
  for (int r = 0; r < cfg_.world(); ++r) {
    if (!last_logged_op.count(r)) silent.insert(r);
  }
  if (silent.empty()) return {};

  // A silent rank is a suspect if some complaining rank shares a
  // communication group with it — the complainer was waiting on that group.
  std::set<int> suspects;
  for (const auto& [victim, op] : last_logged_op) {
    (void)op;
    for (const auto& group :
         {tp_group(victim, cfg_), dp_group(victim, cfg_),
          pp_group(victim, cfg_)}) {
      for (int member : group) {
        if (silent.count(member)) suspects.insert(member);
      }
    }
  }
  if (suspects.empty()) {
    // No overlap information: every silent rank stays a suspect.
    suspects = silent;
  }
  return {suspects.begin(), suspects.end()};
}

}  // namespace ms::diag
