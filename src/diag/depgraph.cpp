#include "diag/depgraph.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>

namespace ms::diag {

SpanAttrs::SpanAttrs(const std::string& detail) {
  std::size_t pos = 0;
  while (pos < detail.size()) {
    const std::size_t end = detail.find(' ', pos);
    const std::string token = detail.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos && eq > 0) {
      kv_[token.substr(0, eq)] = token.substr(eq + 1);
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
}

int SpanAttrs::num(const std::string& key, int fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) return fallback;
  return static_cast<int>(v);
}

std::string SpanAttrs::text(const std::string& key,
                            const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

const char* edge_kind_name(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kProgramOrder: return "program-order";
    case EdgeKind::kTransfer: return "transfer";
    case EdgeKind::kProduce: return "produce";
    case EdgeKind::kConsume: return "consume";
    case EdgeKind::kLocalGrad: return "local-grad";
    case EdgeKind::kData: return "data";
    case EdgeKind::kCollective: return "collective";
  }
  return "?";
}

void DepGraph::add_edge(std::size_t from, std::size_t to, EdgeKind kind) {
  if (from == to) return;
  edges_.push_back({from, to, kind});
  preds_[to].push_back({from, to, kind});
}

DepGraph DepGraph::build(std::vector<TraceSpan> spans) {
  DepGraph g;
  g.spans_ = std::move(spans);
  g.attrs_.reserve(g.spans_.size());
  for (const auto& s : g.spans_) g.attrs_.emplace_back(s.detail);
  g.preds_.resize(g.spans_.size());

  const std::size_t n = g.spans_.size();

  // ---- program order within each hardware queue -------------------------
  // Lane key: the `stream=` attribute when present (the engine's per-stage
  // compute/send/recv/dp queues), otherwise the rank — spans recorded
  // without structured details still serialize per rank.
  std::map<std::string, std::vector<std::size_t>> lanes;
  for (std::size_t i = 0; i < n; ++i) {
    std::string lane = g.attrs_[i].text("stream");
    if (lane.empty()) lane = "rank:" + std::to_string(g.spans_[i].rank);
    lanes[lane].push_back(i);
  }
  for (auto& [lane, members] : lanes) {
    std::stable_sort(members.begin(), members.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (g.spans_[a].start != g.spans_[b].start)
                         return g.spans_[a].start < g.spans_[b].start;
                       if (g.spans_[a].end != g.spans_[b].end)
                         return g.spans_[a].end < g.spans_[b].end;
                       return a < b;
                     });
    for (std::size_t k = 1; k < members.size(); ++k) {
      g.add_edge(members[k - 1], members[k], EdgeKind::kProgramOrder);
    }
  }

  // ---- attribute indices ------------------------------------------------
  // Compute ops by (stage, chunk, microbatch, pass).
  using Key4 = std::tuple<int, int, int, std::string>;
  std::map<Key4, std::size_t> compute;
  // Transfers by (from, to, consumer chunk, microbatch, pass).
  using KeyT = std::tuple<int, int, int, int, std::string>;
  std::map<KeyT, std::size_t> sends, recvs;
  std::map<int, std::size_t> optimizers;  // stage -> node
  std::vector<std::size_t> data_nodes, ag_nodes, rs_nodes;

  for (std::size_t i = 0; i < n; ++i) {
    const auto& sp = g.spans_[i];
    const auto& at = g.attrs_[i];
    if (sp.name == "fwd" || sp.name == "bwd") {
      compute[{at.num("s"), at.num("c"), at.num("mb"), at.text("p")}] = i;
    } else if (sp.name == "send") {
      sends[{at.num("from"), at.num("to"), at.num("c"), at.num("mb"),
             at.text("p")}] = i;
    } else if (sp.name == "recv" || sp.name == "recv-wait") {
      recvs[{at.num("from"), at.num("to"), at.num("c"), at.num("mb"),
             at.text("p")}] = i;
    } else if (sp.name == "optimizer") {
      optimizers[at.num("s", sp.rank)] = i;
    } else if (sp.name == "data-load") {
      data_nodes.push_back(i);
    } else if (sp.name == "dp-allgather") {
      ag_nodes.push_back(i);
    } else if (sp.name == "dp-reducescatter") {
      rs_nodes.push_back(i);
    }
  }

  // ---- transfer edges ---------------------------------------------------
  std::map<Key4, std::size_t> recv_of_consumer;
  for (const auto& [key, snd] : sends) {
    const auto& [from, to, c, mb, p] = key;
    (void)to;
    // send -> recv of the same transfer.
    const auto rit = recvs.find(key);
    if (rit != recvs.end()) g.add_edge(snd, rit->second, EdgeKind::kTransfer);
    // producing compute -> send (producer chunk rides in `pc`).
    const int pc = g.attrs_[snd].num("pc", c);
    const auto cit = compute.find({from, pc, mb, p});
    if (cit != compute.end()) g.add_edge(cit->second, snd, EdgeKind::kProduce);
  }
  for (const auto& [key, rcv] : recvs) {
    const auto& [from, to, c, mb, p] = key;
    (void)from;
    recv_of_consumer[{to, c, mb, p}] = rcv;
    const auto cit = compute.find({to, c, mb, p});
    if (cit != compute.end()) g.add_edge(rcv, cit->second, EdgeKind::kConsume);
  }

  // ---- local edges for computes with no inbound transfer ----------------
  for (const auto& [key, node] : compute) {
    const auto& [s, c, mb, p] = key;
    if (recv_of_consumer.count({s, c, mb, p}) > 0) continue;
    if (p == "b") {
      // Last-stage backward starts from the locally computed loss.
      const auto fit = compute.find({s, c, mb, "f"});
      if (fit != compute.end()) {
        g.add_edge(fit->second, node, EdgeKind::kLocalGrad);
      }
    } else {
      // First-stage forward consumes the data pipeline.
      for (std::size_t d : data_nodes) g.add_edge(d, node, EdgeKind::kData);
    }
  }

  // ---- DP collective edges ----------------------------------------------
  // ag(stage, chunk) gates the first forward of that chunk on that stage;
  // a bucketed ag (no chunk attr) gates every chunk and itself waits on the
  // data pipeline (mirrors the engine's bucketed barrier).
  auto first_fwd = [&](int s, int c) -> std::size_t {
    std::size_t best = n;
    for (const auto& [key, node] : compute) {
      if (std::get<0>(key) != s || std::get<3>(key) != "f") continue;
      if (c >= 0 && std::get<1>(key) != c) continue;
      if (best == n || g.spans_[node].start < g.spans_[best].start ||
          (g.spans_[node].start == g.spans_[best].start && node < best)) {
        best = node;
      }
    }
    return best;
  };
  auto last_bwd = [&](int s, int c) -> std::size_t {
    std::size_t best = n;
    for (const auto& [key, node] : compute) {
      if (std::get<0>(key) != s || std::get<3>(key) != "b") continue;
      if (c >= 0 && std::get<1>(key) != c) continue;
      if (best == n || g.spans_[node].end > g.spans_[best].end ||
          (g.spans_[node].end == g.spans_[best].end && node < best)) {
        best = node;
      }
    }
    return best;
  };
  for (std::size_t ag : ag_nodes) {
    const int s = g.attrs_[ag].num("s", g.spans_[ag].rank);
    const int c = g.attrs_[ag].num("c");
    const std::size_t f = first_fwd(s, c);
    if (f != n) g.add_edge(ag, f, EdgeKind::kCollective);
    if (c < 0) {
      for (std::size_t d : data_nodes) g.add_edge(d, ag, EdgeKind::kData);
    }
  }
  for (std::size_t rs : rs_nodes) {
    const int s = g.attrs_[rs].num("s", g.spans_[rs].rank);
    const int c = g.attrs_[rs].num("c");
    const std::size_t b = last_bwd(s, c);
    if (b != n) g.add_edge(b, rs, EdgeKind::kCollective);
    const auto oit = optimizers.find(s);
    if (oit != optimizers.end()) {
      g.add_edge(rs, oit->second, EdgeKind::kCollective);
    }
  }

  return g;
}

std::size_t DepGraph::sink() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < spans_.size(); ++i) {
    if (spans_[i].end > spans_[best].end) best = i;
  }
  return best;
}

TimeNs DepGraph::makespan() const {
  TimeNs m = 0;
  for (const auto& s : spans_) m = std::max(m, s.end);
  return m;
}

}  // namespace ms::diag
