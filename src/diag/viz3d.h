// 3D-parallel training visualization and hang localization (MegaScale §5.2).
//
// The cluster splits logically into tensor/pipeline/data dimensions; when a
// defective GPU blocks an NCCL operation, every dependent rank times out
// and logs its ongoing operation on exit, while the faulty rank hangs
// silently. Overlaying "who logged what" on the logical topology pinpoints
// the culprit: the suspects are exactly the ranks that (a) logged nothing
// and (b) appear in a communication group some victim was waiting on.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "parallel/mapping.h"

namespace ms::diag {

class Parallel3DVisualizer {
 public:
  explicit Parallel3DVisualizer(const parallel::ParallelConfig& cfg)
      : cfg_(cfg) {}

  /// Human-readable position + data-flow description of one rank
  /// (Figure 7's selection panel).
  std::string describe(int rank) const;

  /// Graphviz DOT of the rank's communication edges across all three
  /// dimensions.
  std::string dot_graph(int rank) const;

  /// Hang localization. `last_logged_op` holds, for every rank that exited
  /// on communication timeout, the operation it was blocked in (e.g.
  /// "dp-allgather", "pp-recv"). Hung ranks log nothing. Returns the
  /// suspect ranks: silent ranks sharing a communication group with at
  /// least one complaining rank (or all silent ranks if no complaints).
  std::vector<int> locate_hung_ranks(
      const std::map<int, std::string>& last_logged_op) const;

 private:
  parallel::ParallelConfig cfg_;
};

}  // namespace ms::diag
