#include "diag/artifact.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/json.h"

namespace ms::diag {

bool write_text_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

bool read_text_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

std::string trace_jsonl(const std::vector<TraceSpan>& spans) {
  std::ostringstream out;
  for (const auto& s : spans) {
    out << "{\"type\":\"span\",\"rank\":" << s.rank << ",\"name\":\""
        << json::escape(s.name) << "\",\"tag\":\"" << json::escape(s.tag)
        << "\",\"start_ns\":" << s.start << ",\"end_ns\":" << s.end;
    if (!s.detail.empty()) {
      out << ",\"detail\":\"" << json::escape(s.detail) << '"';
    }
    out << "}\n";
  }
  return out.str();
}

bool parse_trace_jsonl(const std::string& text, std::vector<TraceSpan>& out) {
  std::vector<TraceSpan> spans;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value v;
    if (!json::parse(line, v) || !v.is_object()) return false;
    if (v.text("type") != "span") continue;  // metrics mixed into the export
    TraceSpan s;
    s.rank = static_cast<int>(v.num("rank"));
    s.name = v.text("name");
    s.tag = v.text("tag");
    s.start = static_cast<TimeNs>(v.num("start_ns"));
    s.end = static_cast<TimeNs>(v.num("end_ns"));
    s.detail = v.text("detail");
    spans.push_back(std::move(s));
  }
  out = std::move(spans);
  return true;
}

}  // namespace ms::diag
