#include "diag/blame.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "check/digest.h"
#include "core/json.h"
#include "core/table.h"

namespace ms::diag {

namespace {

constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

/// Ops of the same group should take the same time on healthy hardware;
/// the minimum over the step is the nominal, the rest is excess.
std::string nominal_group(const TraceSpan& sp, const SpanAttrs& at) {
  if (sp.name == "fwd" || sp.name == "bwd") {
    return at.has("head") ? sp.name + "+head" : sp.name;
  }
  if (sp.tag == "pp-comm") return sp.name;  // send / recv / recv-wait
  if (sp.name == "optimizer") return "optimizer";
  return "";
}

/// Lower value = stronger explanation when two predecessors finish at the
/// same instant: a real data dependency beats queue serialization.
int edge_preference(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kTransfer: return 0;
    case EdgeKind::kConsume: return 1;
    case EdgeKind::kProduce: return 2;
    case EdgeKind::kLocalGrad: return 3;
    case EdgeKind::kCollective: return 4;
    case EdgeKind::kData: return 5;
    case EdgeKind::kProgramOrder: return 6;
  }
  return 7;
}

struct BlameKey {
  SegmentKind cause;
  int rank;
  std::string link;
  bool operator<(const BlameKey& o) const {
    if (cause != o.cause) return cause < o.cause;
    if (rank != o.rank) return rank < o.rank;
    return link < o.link;
  }
};

bool is_blame_cause(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kStragglerWait:
    case SegmentKind::kSlowLink:
    case SegmentKind::kPpComm:
    case SegmentKind::kDpComm:
    case SegmentKind::kData:
    case SegmentKind::kBubble:
      return true;
    case SegmentKind::kCompute:
    case SegmentKind::kOptimizer:
      return false;
  }
  return false;
}

std::string hex_digest(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string blame_who(const BlameEntry& e) {
  if (!e.link.empty()) return "link " + e.link;
  if (e.rank >= 0) return "rank " + std::to_string(e.rank);
  return "-";
}

}  // namespace

const char* segment_kind_name(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kCompute: return "compute";
    case SegmentKind::kStragglerWait: return "straggler-wait";
    case SegmentKind::kPpComm: return "pp-comm";
    case SegmentKind::kSlowLink: return "slow-link";
    case SegmentKind::kDpComm: return "dp-comm";
    case SegmentKind::kData: return "data-pipeline";
    case SegmentKind::kOptimizer: return "optimizer";
    case SegmentKind::kBubble: return "bubble";
  }
  return "?";
}

StepDiagnosis analyze(const DepGraph& g) {
  StepDiagnosis d;
  if (g.empty()) return d;
  d.makespan = g.makespan();

  // ---- nominal duration per op group ------------------------------------
  std::map<std::string, TimeNs> nominal;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const std::string grp = nominal_group(g.spans()[i], g.attrs(i));
    if (grp.empty()) continue;
    const TimeNs dur = g.spans()[i].end - g.spans()[i].start;
    const auto it = nominal.find(grp);
    if (it == nominal.end() || dur < it->second) nominal[grp] = dur;
  }

  // ---- backward walk along binding dependencies -------------------------
  std::vector<std::size_t> nodes;
  std::vector<char> visited(g.size(), 0);
  std::size_t cur = g.sink();
  while (visited[cur] == 0) {
    visited[cur] = 1;
    nodes.push_back(cur);
    const auto& preds = g.preds(cur);
    if (preds.empty()) break;
    std::size_t best = kNoNode;
    EdgeKind best_kind = EdgeKind::kProgramOrder;
    for (const auto& e : preds) {
      if (best == kNoNode) {
        best = e.from;
        best_kind = e.kind;
        continue;
      }
      const TimeNs be = g.spans()[best].end;
      const TimeNs ce = g.spans()[e.from].end;
      if (ce != be) {
        if (ce > be) {
          best = e.from;
          best_kind = e.kind;
        }
        continue;
      }
      const int bp = edge_preference(best_kind), cp = edge_preference(e.kind);
      if (cp < bp || (cp == bp && e.from < best)) {
        best = e.from;
        best_kind = e.kind;
      }
    }
    cur = best;
  }
  std::reverse(nodes.begin(), nodes.end());

  // ---- cut the path into attributed segments ----------------------------
  auto emit = [&](SegmentKind kind, TimeNs b, TimeNs e, int rank,
                  std::string link, std::size_t node) {
    if (e <= b) return;
    d.path.push_back({kind, b, e, rank, std::move(link), node});
    d.breakdown[kind] += e - b;
  };
  TimeNs cursor = 0;
  for (std::size_t node : nodes) {
    const auto& sp = g.spans()[node];
    const auto& at = g.attrs(node);
    if (sp.start > cursor) {
      emit(SegmentKind::kBubble, cursor, sp.start, -1, "", kNoNode);
    }
    const TimeNs b = std::max(sp.start, cursor);
    if (sp.end <= b) {
      cursor = std::max(cursor, sp.end);
      continue;
    }
    const std::string grp = nominal_group(sp, at);
    const TimeNs dur = sp.end - b;
    TimeNs base = dur;
    if (!grp.empty()) base = std::min(dur, nominal[grp]);
    const TimeNs split = b + base;

    if (sp.name == "fwd" || sp.name == "bwd") {
      emit(SegmentKind::kCompute, b, split, sp.rank, "", node);
      emit(SegmentKind::kStragglerWait, split, sp.end, sp.rank, "", node);
    } else if (sp.name == "optimizer") {
      emit(SegmentKind::kOptimizer, b, split, sp.rank, "", node);
      emit(SegmentKind::kStragglerWait, split, sp.end, sp.rank, "", node);
    } else if (sp.tag == "pp-comm") {
      const int from = at.num("from", sp.rank);
      const std::string link =
          std::to_string(from) + "->" + std::to_string(at.num("to", sp.rank));
      emit(SegmentKind::kPpComm, b, split, from, link, node);
      emit(SegmentKind::kSlowLink, split, sp.end, from, link, node);
    } else if (sp.tag == "dp-comm") {
      emit(SegmentKind::kDpComm, b, sp.end, sp.rank, "", node);
    } else if (sp.tag == "data") {
      emit(SegmentKind::kData, b, sp.end, -1, "", node);
    } else {
      emit(SegmentKind::kCompute, b, sp.end, sp.rank, "", node);
    }
    cursor = sp.end;
  }
  if (cursor < d.makespan) {
    emit(SegmentKind::kBubble, cursor, d.makespan, -1, "", kNoNode);
  }

  // ---- blame aggregation ------------------------------------------------
  std::map<BlameKey, TimeNs> totals;
  for (const auto& seg : d.path) {
    if (!is_blame_cause(seg.kind)) continue;
    totals[{seg.kind, seg.rank, seg.link}] += seg.duration();
  }
  for (const auto& [key, total] : totals) {
    BlameEntry e;
    e.cause = key.cause;
    e.rank = key.rank;
    e.link = key.link;
    e.total = total;
    e.share = d.makespan > 0
                  ? static_cast<double>(total) / static_cast<double>(d.makespan)
                  : 0;
    d.blame.push_back(std::move(e));
  }
  std::sort(d.blame.begin(), d.blame.end(),
            [](const BlameEntry& a, const BlameEntry& b) {
              if (a.total != b.total) return a.total > b.total;
              if (a.cause != b.cause) return a.cause < b.cause;
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.link < b.link;
            });

  // ---- determinism digest -----------------------------------------------
  check::Digest dg;
  dg.fold(d.makespan);
  for (const auto& seg : d.path) {
    dg.fold(std::string_view(segment_kind_name(seg.kind)));
    dg.fold(seg.begin);
    dg.fold(seg.end);
    dg.fold(static_cast<std::int64_t>(seg.rank));
    dg.fold(std::string_view(seg.link));
  }
  for (const auto& e : d.blame) {
    dg.fold(std::string_view(segment_kind_name(e.cause)));
    dg.fold(static_cast<std::int64_t>(e.rank));
    dg.fold(std::string_view(e.link));
    dg.fold(e.total);
  }
  d.digest = dg.value();
  return d;
}

StepDiagnosis analyze_spans(std::vector<TraceSpan> spans) {
  return analyze(DepGraph::build(std::move(spans)));
}

std::string render(const StepDiagnosis& d, std::size_t top_k) {
  std::ostringstream out;
  out << "step makespan " << format_duration(d.makespan) << ", "
      << d.path.size() << " critical-path segments, digest "
      << hex_digest(d.digest) << "\n\n";

  Table breakdown({"cause", "time", "share"});
  for (const auto& [kind, total] : d.breakdown) {
    breakdown.add_row(
        {segment_kind_name(kind), format_duration(total),
         Table::fmt_pct(d.makespan > 0 ? static_cast<double>(total) /
                                             static_cast<double>(d.makespan)
                                       : 0)});
  }
  out << breakdown.to_string() << '\n';

  Table blame({"#", "blamed", "cause", "lost", "share of step"});
  std::size_t shown = 0;
  for (const auto& e : d.blame) {
    if (shown >= top_k) break;
    ++shown;
    blame.add_row({Table::fmt_int(static_cast<long long>(shown)),
                   blame_who(e), segment_kind_name(e.cause),
                   format_duration(e.total), Table::fmt_pct(e.share)});
  }
  if (shown == 0) out << "no blame: the step is fully explained by work\n";
  else out << blame.to_string();
  return out.str();
}

std::string diagnosis_json(const StepDiagnosis& d) {
  std::ostringstream out;
  out << "{\"makespan_ns\":" << d.makespan << ",\"digest\":\""
      << hex_digest(d.digest) << "\",\"breakdown\":{";
  bool first = true;
  for (const auto& [kind, total] : d.breakdown) {
    if (!first) out << ',';
    first = false;
    out << '"' << segment_kind_name(kind) << "\":" << total;
  }
  out << "},\"blame\":[";
  first = true;
  for (const auto& e : d.blame) {
    if (!first) out << ',';
    first = false;
    out << "{\"cause\":\"" << segment_kind_name(e.cause)
        << "\",\"rank\":" << e.rank << ",\"link\":\"" << json::escape(e.link)
        << "\",\"total_ns\":" << e.total << ",\"share\":" << e.share << '}';
  }
  out << "],\"path\":[";
  first = true;
  for (const auto& seg : d.path) {
    if (!first) out << ',';
    first = false;
    out << "{\"kind\":\"" << segment_kind_name(seg.kind)
        << "\",\"begin_ns\":" << seg.begin << ",\"end_ns\":" << seg.end
        << ",\"rank\":" << seg.rank << ",\"link\":\""
        << json::escape(seg.link) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string diff_report(const StepDiagnosis& base, const StepDiagnosis& cand) {
  std::ostringstream out;
  const TimeNs delta = cand.makespan - base.makespan;
  out << "makespan: " << format_duration(base.makespan) << " -> "
      << format_duration(cand.makespan) << " (" << (delta >= 0 ? "+" : "-")
      << format_duration(delta >= 0 ? delta : -delta);
  if (base.makespan > 0) {
    out << ", "
        << Table::fmt_pct(static_cast<double>(delta) /
                          static_cast<double>(base.makespan));
  }
  out << ")\n\n";

  // Per-(cause, rank, link) deltas, biggest regression first.
  std::map<BlameKey, std::pair<TimeNs, TimeNs>> merged;
  for (const auto& e : base.blame) {
    merged[{e.cause, e.rank, e.link}].first = e.total;
  }
  for (const auto& e : cand.blame) {
    merged[{e.cause, e.rank, e.link}].second = e.total;
  }
  std::vector<std::pair<BlameKey, std::pair<TimeNs, TimeNs>>> rows(
      merged.begin(), merged.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    const TimeNs da = a.second.second - a.second.first;
    const TimeNs db = b.second.second - b.second.first;
    if (da != db) return da > db;
    return a.first < b.first;
  });

  Table table({"blamed", "cause", "base", "cand", "delta"});
  for (const auto& [key, totals] : rows) {
    BlameEntry who;
    who.cause = key.cause;
    who.rank = key.rank;
    who.link = key.link;
    const TimeNs row_delta = totals.second - totals.first;
    table.add_row({blame_who(who), segment_kind_name(key.cause),
                   format_duration(totals.first),
                   format_duration(totals.second),
                   std::string(row_delta >= 0 ? "+" : "-") +
                       format_duration(row_delta >= 0 ? row_delta
                                                      : -row_delta)});
  }
  out << table.to_string();
  return out.str();
}

}  // namespace ms::diag
