// Unified multi-rank timeline trace (MegaScale §5.1, Figure 8).
//
// Aggregates per-rank spans onto one timeline so pipeline execution order,
// bubbles and cross-rank dependencies become visible — the capability that
// single-node profilers lack in distributed training.
#pragma once

#include <string>
#include <vector>

#include "core/time.h"

namespace ms::diag {

struct TraceSpan {
  int rank = 0;
  std::string name;  // e.g. "fwd", "bwd", "send"
  std::string tag;
  TimeNs start = 0;
  TimeNs end = 0;
  /// Structured attributes (`k=v` tokens, see sim::OpSpec::detail). Carried
  /// into chrome-trace `args` and consumed by diag::DepGraph.
  std::string detail;
};

class TimelineTrace {
 public:
  void add(TraceSpan span);
  std::size_t size() const { return spans_.size(); }

  /// Spans of one rank, sorted by start.
  std::vector<TraceSpan> rank_spans(int rank) const;

  /// Spans from any rank active at time t (dependency inspection: "what was
  /// everyone doing when rank r stalled?").
  std::vector<TraceSpan> active_at(TimeNs t) const;

  /// Total idle (bubble) time of a rank within [from, to]: the gaps where
  /// no span of that rank is running.
  TimeNs idle_time(int rank, TimeNs from, TimeNs to) const;

  /// Figure-8-style ASCII rendering: one lane per rank, glyph per span kind
  /// (F = fwd, B = bwd, - = comm, space = bubble).
  std::string render(TimeNs from, TimeNs to, std::size_t width = 100) const;

  /// Chrome-trace JSON ("trace event format"): loadable in
  /// chrome://tracing or Perfetto; one process per rank, complete ("X")
  /// events with microsecond timestamps.
  std::string chrome_trace_json() const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace ms::diag
