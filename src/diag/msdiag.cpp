#include "diag/msdiag.h"

#include <cstdlib>
#include <map>
#include <ostream>

#include "core/table.h"
#include "core/time.h"
#include "diag/artifact.h"
#include "diag/blame.h"
#include "diag/depgraph.h"
#include "diag/flight_recorder.h"

namespace ms::diag {

namespace {

bool load_spans(const std::string& path, std::vector<TraceSpan>& spans,
                std::ostream& err) {
  std::string text;
  if (!read_text_file(path, text)) {
    err << "msdiag: cannot read " << path << '\n';
    return false;
  }
  if (!parse_trace_jsonl(text, spans)) {
    err << "msdiag: malformed trace artifact " << path << '\n';
    return false;
  }
  if (spans.empty()) {
    err << "msdiag: no spans in " << path << '\n';
    return false;
  }
  return true;
}

int cmd_analyze(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  std::string path;
  bool as_json = false;
  std::size_t top_k = 5;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--top" && i + 1 < args.size()) {
      top_k = static_cast<std::size_t>(std::strtoul(args[++i].c_str(),
                                                    nullptr, 10));
    } else if (path.empty()) {
      path = args[i];
    } else {
      err << msdiag_usage();
      return 1;
    }
  }
  if (path.empty()) {
    err << msdiag_usage();
    return 1;
  }
  std::vector<TraceSpan> spans;
  if (!load_spans(path, spans, err)) return 1;
  const StepDiagnosis d = analyze_spans(std::move(spans));
  out << (as_json ? diagnosis_json(d) + "\n" : render(d, top_k));
  return 0;
}

int cmd_diff(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.size() != 2) {
    err << msdiag_usage();
    return 1;
  }
  std::vector<TraceSpan> base_spans, cand_spans;
  if (!load_spans(args[0], base_spans, err)) return 1;
  if (!load_spans(args[1], cand_spans, err)) return 1;
  out << diff_report(analyze_spans(std::move(base_spans)),
                     analyze_spans(std::move(cand_spans)));
  return 0;
}

int cmd_flight(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  std::string path, perfetto;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--perfetto" && i + 1 < args.size()) {
      perfetto = args[++i];
    } else if (path.empty()) {
      path = args[i];
    } else {
      err << msdiag_usage();
      return 1;
    }
  }
  if (path.empty()) {
    err << msdiag_usage();
    return 1;
  }
  std::string text;
  if (!read_text_file(path, text)) {
    err << "msdiag: cannot read " << path << '\n';
    return 1;
  }
  FlightDump dump;
  if (!parse_flight_dump_jsonl(text, dump)) {
    err << "msdiag: malformed flight dump " << path << '\n';
    return 1;
  }
  out << "flight dump: reason \"" << dump.reason << "\" at "
      << format_duration(dump.time) << ", " << dump.events.size()
      << " events\n\n";
  std::map<int, std::size_t> per_node;
  std::map<std::string, std::size_t> per_kind;
  for (const auto& ev : dump.events) {
    ++per_node[ev.node];
    ++per_kind[ev.kind];
  }
  Table kinds({"kind", "events"});
  for (const auto& [kind, count] : per_kind) {
    kinds.add_row({kind, Table::fmt_int(static_cast<long long>(count))});
  }
  out << kinds.to_string() << '\n';
  constexpr std::size_t kTail = 10;
  Table tail({"time", "node", "kind", "detail"});
  const std::size_t begin =
      dump.events.size() > kTail ? dump.events.size() - kTail : 0;
  for (std::size_t i = begin; i < dump.events.size(); ++i) {
    const auto& ev = dump.events[i];
    tail.add_row({format_duration(ev.time), Table::fmt_int(ev.node), ev.kind,
                  ev.detail});
  }
  out << "last " << (dump.events.size() - begin) << " events before the dump ("
      << per_node.size() << " nodes):\n"
      << tail.to_string();
  if (!perfetto.empty()) {
    const std::string trace = flight_dump_timeline(dump).chrome_trace_json();
    if (!write_text_file(perfetto, trace)) {
      err << "msdiag: cannot write " << perfetto << '\n';
      return 1;
    }
    out << "wrote Perfetto trace: " << perfetto << '\n';
  }
  return 0;
}

int cmd_export(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  if (args.size() != 2) {
    err << msdiag_usage();
    return 1;
  }
  std::vector<TraceSpan> spans;
  if (!load_spans(args[0], spans, err)) return 1;
  const DepGraph graph = DepGraph::build(spans);
  const StepDiagnosis d = analyze(graph);
  // Mark critical-path spans so the viewer can highlight them.
  std::vector<char> on_path(spans.size(), 0);
  for (const auto& seg : d.path) {
    if (seg.node < spans.size()) on_path[seg.node] = 1;
  }
  TimelineTrace trace;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    TraceSpan s = spans[i];
    if (on_path[i]) {
      if (!s.detail.empty()) s.detail += ' ';
      s.detail += "critical=1";
    }
    trace.add(std::move(s));
  }
  if (!write_text_file(args[1], trace.chrome_trace_json())) {
    err << "msdiag: cannot write " << args[1] << '\n';
    return 1;
  }
  out << "wrote annotated Perfetto trace: " << args[1] << " ("
      << spans.size() << " spans, " << d.path.size()
      << " critical-path segments)\n";
  return 0;
}

}  // namespace

std::string msdiag_usage() {
  return "usage: msdiag <command> ...\n"
         "  analyze <trace.jsonl> [--json] [--top K]   critical path + blame\n"
         "  diff <base.jsonl> <cand.jsonl>             localize a regression\n"
         "  flight <dump.jsonl> [--perfetto <out>]     inspect a flight dump\n"
         "  export <trace.jsonl> <out.json>            annotated Perfetto "
         "trace\n";
}

int msdiag_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty()) {
    err << msdiag_usage();
    return 1;
  }
  const std::string& cmd = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "analyze") return cmd_analyze(rest, out, err);
  if (cmd == "diff") return cmd_diff(rest, out, err);
  if (cmd == "flight") return cmd_flight(rest, out, err);
  if (cmd == "export") return cmd_export(rest, out, err);
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    out << msdiag_usage();
    return 0;
  }
  err << "msdiag: unknown command \"" << cmd << "\"\n" << msdiag_usage();
  return 1;
}

}  // namespace ms::diag
