// Critical-path decomposition and blame attribution (MegaScale §5.2).
//
// Walks the DepGraph backwards from the last-finishing op, always following
// the binding dependency (the predecessor that finished last), to recover
// the chain of ops that actually set the step time. Each path node is split
// into a nominal part and an excess over the fastest op of its kind — the
// excess is the straggler/slow-link signal — and every segment is charged
// to the rank or link that originated it. The result answers the paper's
// §5 question directly: "which rank/link made this step slow".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/time.h"
#include "diag/depgraph.h"

namespace ms::diag {

enum class SegmentKind {
  kCompute,        ///< nominal fwd/bwd kernel time
  kStragglerWait,  ///< compute excess over the fastest peer (blames a rank)
  kPpComm,         ///< nominal exposed pipeline p2p time (blames a link)
  kSlowLink,       ///< p2p excess over the fastest transfer (blames a link)
  kDpComm,         ///< exposed data-parallel collective time
  kData,           ///< exposed data-pipeline time at the step head
  kOptimizer,      ///< nominal optimizer time
  kBubble,         ///< scheduling gap on the path (no op running)
};

const char* segment_kind_name(SegmentKind kind);

/// One contiguous slice of the critical path, in step time.
struct PathSegment {
  SegmentKind kind = SegmentKind::kCompute;
  TimeNs begin = 0;
  TimeNs end = 0;
  /// Rank the time is charged to (-1 for bubbles / the data pipeline).
  int rank = -1;
  /// "from->to" for p2p segments, empty otherwise.
  std::string link;
  /// Index into DepGraph::spans, or npos for gap segments.
  std::size_t node = static_cast<std::size_t>(-1);

  TimeNs duration() const { return end - begin; }
};

/// Aggregated blame: total path time charged to one (cause, rank, link).
/// Only causes that represent *lost* time appear (nominal compute and
/// optimizer time is the work itself, not blame).
struct BlameEntry {
  SegmentKind cause = SegmentKind::kBubble;
  int rank = -1;
  std::string link;
  TimeNs total = 0;
  double share = 0;  // of the step makespan
};

struct StepDiagnosis {
  TimeNs makespan = 0;
  std::vector<PathSegment> path;            // in time order
  std::map<SegmentKind, TimeNs> breakdown;  // path time per cause
  std::vector<BlameEntry> blame;            // sorted: biggest loss first
  /// Order-sensitive FNV-1a over the whole report; equal seeds must yield
  /// equal digests (the determinism acceptance gate).
  std::uint64_t digest = 0;
};

/// Runs the critical-path walk + blame aggregation over a built DepGraph.
StepDiagnosis analyze(const DepGraph& graph);
/// Convenience: build the graph from raw spans, then analyze.
StepDiagnosis analyze_spans(std::vector<TraceSpan> spans);

/// Human-readable report: breakdown table + top-k blame table.
std::string render(const StepDiagnosis& d, std::size_t top_k = 5);

/// Machine-readable report (one JSON object).
std::string diagnosis_json(const StepDiagnosis& d);

/// Localizes a regression: per-cause and per-blame deltas of `cand`
/// against `base`, biggest regression first.
std::string diff_report(const StepDiagnosis& base, const StepDiagnosis& cand);

}  // namespace ms::diag
