// Event streaming pipeline (MegaScale §5.1, last paragraph).
//
// In production, the CUDA-event timer appends records to a local file; a
// separate streamer process ships the file to a Kafka queue, and an
// analytical database consumes the queue so any step's events can be
// queried on the fly without touching the training job.
//
// Reproduced here with real threads: producers push records into a bounded
// queue (the "Kafka topic"); a consumer thread drains it into an in-memory
// analytical store with per-rank/per-step aggregation queries.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/stats.h"
#include "core/thread_annotations.h"
#include "core/time.h"

namespace ms::diag {

struct EventRecord {
  int rank = 0;
  std::int64_t step = 0;
  std::string segment;  // "fwd", "bwd", ...
  TimeNs duration = 0;
};

/// The "analytical database": aggregated event storage with queries.
class EventStore {
 public:
  void ingest(const EventRecord& record);

  std::size_t total_events() const;
  /// Mean duration of a segment on a rank across steps.
  TimeNs mean_duration(int rank, const std::string& segment) const;
  /// All records of one step (for drill-down).
  std::vector<EventRecord> step_records(std::int64_t step) const;

 private:
  mutable Mutex mu_;
  std::vector<EventRecord> records_ MS_GUARDED_BY(mu_);
  std::map<std::pair<int, std::string>, RunningStat> agg_ MS_GUARDED_BY(mu_);
};

/// Bounded queue + consumer thread shipping records into the store.
class EventStreamer {
 public:
  EventStreamer(EventStore& store, std::size_t queue_capacity = 4096);
  ~EventStreamer();

  /// Producer side; blocks when the queue is full (backpressure). Returns
  /// false after close().
  bool publish(EventRecord record);

  /// Flushes the queue and stops the consumer.
  void close();

  std::size_t dropped() const { return 0; }  // bounded+blocking: no drops

 private:
  void consumer_loop();

  EventStore& store_;
  std::size_t capacity_;
  Mutex mu_;
  CondVar cv_;
  std::deque<EventRecord> queue_ MS_GUARDED_BY(mu_);
  bool closed_ MS_GUARDED_BY(mu_) = false;
  std::thread consumer_;
};

}  // namespace ms::diag
