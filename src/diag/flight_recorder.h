// RDMA flight recorder (MegaScale §5.3-style post-mortem capture).
//
// Aggregate metrics tell you *that* a step was slow; the flight recorder
// tells you what the fabric and the fault-tolerance layer were doing right
// before it happened. Each node owns a fixed-size ring of recent events
// (heartbeats, collective launches, retransmits, fault injections) —
// recording is O(1) with no allocation past warm-up, so it can stay on in
// production. When an anomaly fires (AnomalyDetector alarm, chaos oracle
// failure), trigger() freezes the rings into a Dump: the last N events per
// node, merged in time order, serializable to JSONL and loadable back by
// `msdiag flight` for timeline export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "core/time.h"
#include "diag/timeline.h"

namespace ms::diag {

struct FlightEvent {
  TimeNs time = 0;
  int node = 0;
  std::string kind;    // "heartbeat", "alarm", "fault:linkflap", ...
  std::string detail;  // free-form `k=v` attributes
  std::uint64_t seq = 0;  // global record order (tie-break within one time)
};

/// One frozen capture: everything the rings held at trigger time.
struct FlightDump {
  std::string reason;
  TimeNs time = 0;
  std::vector<FlightEvent> events;  // sorted by (time, seq)
};

struct FlightRecorderConfig {
  /// Events retained per node; older entries are overwritten.
  std::size_t capacity_per_node = 256;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  /// O(1) append to the node's ring. Thread-safe.
  void record(int node, TimeNs time, std::string kind,
              std::string detail = "");

  /// Freezes the current ring contents into a Dump (also kept internally —
  /// see dumps()). The rings keep recording afterwards.
  FlightDump trigger(std::string reason, TimeNs now);

  /// Copy of every dump frozen so far. (Copies under the lock: returning a
  /// reference to mutex-guarded state would hand out unsynchronized access
  /// — the thread-safety analysis rejects it.)
  std::vector<FlightDump> dumps() const;
  std::uint64_t total_recorded() const;
  /// Events discarded because a ring wrapped.
  std::uint64_t total_dropped() const;

  void clear();

 private:
  struct Ring {
    std::vector<FlightEvent> slots;  // capacity_per_node once warm
    std::size_t next = 0;            // overwrite position
    std::uint64_t written = 0;
  };

  FlightRecorderConfig config_;
  mutable Mutex mu_;
  // index = node id (grown on demand)
  std::vector<Ring> rings_ MS_GUARDED_BY(mu_);
  std::vector<FlightDump> dumps_ MS_GUARDED_BY(mu_);
  std::uint64_t seq_ MS_GUARDED_BY(mu_) = 0;
};

/// JSONL serialization: a `flight-dump` header line, then one `flight-event`
/// line per event.
std::string flight_dump_jsonl(const FlightDump& dump);

/// Parses what flight_dump_jsonl produced. Returns false on malformed
/// input.
bool parse_flight_dump_jsonl(const std::string& text, FlightDump& out);

/// Folds a dump onto the unified timeline (one lane per node, one short
/// span per event) so it exports through chrome_trace_json() to Perfetto.
TimelineTrace flight_dump_timeline(const FlightDump& dump);

}  // namespace ms::diag
