// Performance heat-map and straggler detection (MegaScale §5.1, Figure 7).
//
// The CUDA-event timer records the latency of critical code segments
// (forward, backward) per machine per step; averaging across steps and
// rendering machines x phases as a heat map exposes the ~0.5% of machines
// that run ~10% slower and gate the whole job.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/stats.h"

namespace ms::diag {

class PerformanceHeatmap {
 public:
  /// Adds one latency sample (seconds) for a machine and phase
  /// ("fwd"/"bwd"/...).
  void add_sample(int machine, const std::string& phase, double seconds);

  int machine_count() const;
  std::vector<std::string> phases() const;

  /// Mean latency of a machine in a phase (0 if no samples).
  double mean(int machine, const std::string& phase) const;

  /// Machines whose mean latency (averaged over phases, normalized per
  /// phase) exceeds the median machine by more than `threshold` fraction.
  std::vector<int> outliers(double threshold = 0.05) const;

  /// Figure-7-style ASCII rendering: one row per machine, one column block
  /// per phase; intensity glyphs scale with latency; outliers are marked.
  std::string ascii(double outlier_threshold = 0.05) const;

 private:
  double machine_score(int machine) const;  // mean of per-phase normalized

  // Ordered: outliers() and ascii() iterate these and feed reports; keyed
  // iteration order must not depend on hash layout.
  std::map<int, std::map<std::string, RunningStat>> cells_;
  std::vector<std::string> phase_order_;
};

}  // namespace ms::diag
