#include "diag/skew.h"

#include <algorithm>
#include <cmath>

namespace ms::diag {

void LaunchSkewAnalyzer::record(std::int64_t step, int rank,
                                TimeNs launch_time) {
  steps_[step][rank] = launch_time;
}

TimeNs LaunchSkewAnalyzer::skew_at(std::int64_t step) const {
  auto it = steps_.find(step);
  if (it == steps_.end() || it->second.size() < 2) return 0;
  TimeNs lo = it->second.begin()->second, hi = lo;
  for (const auto& [rank, t] : it->second) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  return hi - lo;
}

namespace {
/// Least-squares slope of y against x.
double slope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den > 0 ? num / den : 0.0;
}
}  // namespace

double LaunchSkewAnalyzer::skew_growth_per_step() const {
  std::vector<double> xs, ys;
  for (const auto& [step, ranks] : steps_) {
    (void)ranks;
    xs.push_back(static_cast<double>(step));
    ys.push_back(to_seconds(skew_at(step)));
  }
  return slope(xs, ys);
}

std::vector<int> LaunchSkewAnalyzer::drifting_ranks(
    double threshold_s_per_step) const {
  // Per-step median launch, then per-rank |offset| series.
  std::map<int, std::vector<double>> offsets;  // rank -> |offset| per step
  std::map<int, std::vector<double>> step_index;
  for (const auto& [step, ranks] : steps_) {
    if (ranks.size() < 2) continue;
    std::vector<double> launches;
    for (const auto& [rank, t] : ranks) launches.push_back(to_seconds(t));
    std::nth_element(launches.begin(),
                     launches.begin() + static_cast<long>(launches.size() / 2),
                     launches.end());
    const double median = launches[launches.size() / 2];
    for (const auto& [rank, t] : ranks) {
      offsets[rank].push_back(std::fabs(to_seconds(t) - median));
      step_index[rank].push_back(static_cast<double>(step));
    }
  }
  std::vector<int> drifting;
  for (const auto& [rank, series] : offsets) {
    if (slope(step_index[rank], series) > threshold_s_per_step) {
      drifting.push_back(rank);
    }
  }
  return drifting;
}

}  // namespace ms::diag
