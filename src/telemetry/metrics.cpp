#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdlib>

#include "core/log.h"

namespace ms::telemetry {

namespace {
Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}
}  // namespace

std::string encode_labels(const Labels& labels) {
  if (labels.empty()) return "";
  const Labels canon = canonical(labels);
  std::string out = "{";
  for (std::size_t i = 0; i < canon.size(); ++i) {
    if (i) out += ',';
    out += canon[i].first;
    out += "=\"";
    out += canon[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

const MetricSample* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const Labels& labels) const {
  const Labels want = canonical(labels);
  for (const auto& s : samples) {
    if (s.name == name && s.labels == want) return &s;
  }
  return nullptr;
}

MetricsRegistry::Cell& MetricsRegistry::cell(const std::string& name,
                                             const Labels& labels,
                                             MetricKind kind) {
  Labels canon = canonical(labels);
  const std::string key = name + '|' + encode_labels(canon);
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->kind != kind) {
      MS_LOG_ERROR << "metric '" << name << "' re-registered as a different kind";
      std::abort();
    }
    return *it->second;
  }
  // Cell holds atomics and a mutex, so it is built in place, not moved.
  Cell& c = cells_.emplace_back();
  c.name = name;
  c.labels = std::move(canon);
  c.kind = kind;
  index_.emplace(key, &c);
  return c;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return cell(name, labels, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return cell(name, labels, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  return cell(name, labels, MetricKind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(cells_.size());
  for (const auto& c : cells_) {
    MetricSample s;
    s.name = c.name;
    s.labels = c.labels;
    s.kind = c.kind;
    switch (c.kind) {
      case MetricKind::kCounter: s.value = c.counter.value(); break;
      case MetricKind::kGauge: s.value = c.gauge.value(); break;
      case MetricKind::kHistogram: s.hist = c.histogram.snapshot(); break;
    }
    snap.samples.push_back(std::move(s));
  }
  // Surface histogram range overflow as a first-class counter: a sample
  // past kRangeHi still counts toward total() but lands in no sized
  // bucket, so tail quantiles clamp silently. One synthetic series per
  // overflowing histogram cell makes that loss observable downstream
  // (Prometheus, dashboard) instead of a quiet lie.
  for (const auto& c : cells_) {
    if (c.kind != MetricKind::kHistogram) continue;
    const HdrHistogram h = c.histogram.snapshot();
    if (h.overflow_count() == 0) continue;
    MetricSample o;
    o.name = "telemetry_sketch_overflow_total";
    o.labels = c.labels;
    o.labels.emplace_back("metric", c.name);
    std::sort(o.labels.begin(), o.labels.end());
    o.kind = MetricKind::kCounter;
    o.value = static_cast<double>(h.overflow_count());
    snap.samples.push_back(std::move(o));
  }
  return snap;
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& c : cells_) {
    c.counter.reset();
    c.gauge.reset();
    c.histogram.reset();
  }
}

std::size_t MetricsRegistry::series_count() const {
  MutexLock lock(mu_);
  return cells_.size();
}

}  // namespace ms::telemetry
