#include "telemetry/aggregator.h"

#include "prof/profiler.h"

#include <algorithm>
#include <cassert>

namespace ms::telemetry {

namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

AggregationTree::AggregationTree(const AggTreeConfig& cfg)
    : cfg_(cfg), model_(cfg.cluster, cfg.network_efficiency) {
  assert(cfg_.ranks > 0 && cfg_.ranks_per_host > 0 && cfg_.hosts_per_pod > 0);
  hosts_ = ceil_div(cfg_.ranks, cfg_.ranks_per_host);
  pods_ = ceil_div(hosts_, cfg_.hosts_per_pod);
  leaves_.resize(static_cast<std::size_t>(cfg_.ranks));
}

void AggregationTree::submit(int rank, SketchSnapshot snapshot) {
  assert(rank >= 0 && rank < cfg_.ranks);
  leaves_[static_cast<std::size_t>(rank)] = std::move(snapshot);
}

SketchSnapshot AggregationTree::flat_merge() const {
  SketchSnapshot out;
  for (const auto& leaf : leaves_) out.merge(leaf);
  return out;
}

FlushReport AggregationTree::flush() {
  MS_PROF_SCOPE("telemetry.agg_flush");
  FlushReport report;

  // ---- level 0: rank -> host (NVLink / shared memory) -------------------
  std::vector<SketchSnapshot> host_snaps(static_cast<std::size_t>(hosts_));
  LevelReport l0;
  l0.level = "rank->host";
  l0.senders = cfg_.ranks;
  l0.receivers = hosts_;
  l0.fan_in = cfg_.ranks_per_host;
  for (int host = 0; host < hosts_; ++host) {
    TimeNs ingest = 0;
    const int lo = host * cfg_.ranks_per_host;
    const int hi = std::min(cfg_.ranks, lo + cfg_.ranks_per_host);
    auto& merged = host_snaps[static_cast<std::size_t>(host)];
    for (int rank = lo; rank < hi; ++rank) {
      const auto& leaf = leaves_[static_cast<std::size_t>(rank)];
      const Bytes bytes = leaf.encoded_bytes();
      l0.bytes += bytes;
      ingest += model_.send_recv(bytes, collective::Domain::kIntraNode);
      merged.merge(leaf);
      ingest += cfg_.merge_cost_per_series *
                static_cast<TimeNs>(leaf.size());
    }
    l0.stage_latency = std::max(l0.stage_latency, ingest);
  }
  report.intra_bytes = l0.bytes;
  report.levels.push_back(l0);

  // ---- level 1: host -> pod (RDMA fabric) -------------------------------
  std::vector<SketchSnapshot> pod_snaps(static_cast<std::size_t>(pods_));
  LevelReport l1;
  l1.level = "host->pod";
  l1.senders = hosts_;
  l1.receivers = pods_;
  l1.fan_in = cfg_.hosts_per_pod;
  Bytes max_host_uplink = 0;
  for (int pod = 0; pod < pods_; ++pod) {
    TimeNs ingest = 0;
    const int lo = pod * cfg_.hosts_per_pod;
    const int hi = std::min(hosts_, lo + cfg_.hosts_per_pod);
    auto& merged = pod_snaps[static_cast<std::size_t>(pod)];
    for (int host = lo; host < hi; ++host) {
      const auto& snap = host_snaps[static_cast<std::size_t>(host)];
      const Bytes bytes = snap.encoded_bytes();
      l1.bytes += bytes;
      max_host_uplink = std::max(max_host_uplink, bytes);
      ingest += model_.send_recv(bytes, collective::Domain::kInterNode);
      merged.merge(snap);
      ingest += cfg_.merge_cost_per_series *
                static_cast<TimeNs>(snap.size());
    }
    l1.stage_latency = std::max(l1.stage_latency, ingest);
  }
  report.levels.push_back(l1);

  // ---- level 2: pod -> cluster root (RDMA fabric) -----------------------
  LevelReport l2;
  l2.level = "pod->cluster";
  l2.senders = pods_;
  l2.receivers = 1;
  l2.fan_in = pods_;
  root_ = SketchSnapshot();
  for (int pod = 0; pod < pods_; ++pod) {
    const auto& snap = pod_snaps[static_cast<std::size_t>(pod)];
    const Bytes bytes = snap.encoded_bytes();
    l2.bytes += bytes;
    l2.stage_latency +=
        model_.send_recv(bytes, collective::Domain::kInterNode) +
        cfg_.merge_cost_per_series * static_cast<TimeNs>(snap.size());
    root_.merge(snap);
  }
  report.levels.push_back(l2);

  report.network_bytes = l1.bytes + l2.bytes;
  network_bytes_total_ += report.network_bytes;
  report.propagation_latency =
      l0.stage_latency + l1.stage_latency + l2.stage_latency;

  // The contended resource is a host's uplink NIC: it carries the merged
  // host sketch once per flush interval, next to the job's training
  // traffic on the same rails.
  const double interval_s = to_seconds(cfg_.flush_interval);
  report.per_host_uplink =
      interval_s > 0
          ? static_cast<double>(max_host_uplink) / interval_s
          : 0.0;
  const Bandwidth training_bw = cfg_.cluster.nic_bw *
                                cfg_.cluster.gpus_per_node *
                                cfg_.network_efficiency;
  report.overhead_fraction =
      training_bw > 0 ? report.per_host_uplink / training_bw : 0.0;

  if (cfg_.metrics != nullptr) {
    auto& m = *cfg_.metrics;
    m.counter("telemetry_agg_flushes_total").add();
    for (const auto& level : report.levels) {
      m.counter("telemetry_agg_bytes_total", {{"level", level.level}})
          .add(static_cast<double>(level.bytes));
    }
    m.gauge("telemetry_agg_overhead_fraction").set(report.overhead_fraction);
    m.gauge("telemetry_agg_propagation_seconds")
        .set(to_seconds(report.propagation_latency));
  }
  return report;
}

}  // namespace ms::telemetry
