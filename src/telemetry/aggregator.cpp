#include "telemetry/aggregator.h"

#include "prof/profiler.h"

#include <algorithm>
#include <cassert>

namespace ms::telemetry {

namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

AggregationTree::AggregationTree(const AggTreeConfig& cfg)
    : cfg_(cfg), model_(cfg.cluster, cfg.network_efficiency) {
  assert(cfg_.ranks > 0 && cfg_.ranks_per_host > 0 && cfg_.hosts_per_pod > 0);
  hosts_ = ceil_div(cfg_.ranks, cfg_.ranks_per_host);
  pods_ = ceil_div(hosts_, cfg_.hosts_per_pod);
  leaves_.resize(static_cast<std::size_t>(cfg_.ranks));
  rank_dirty_.assign(static_cast<std::size_t>(cfg_.ranks), 0);
  host_cache_.resize(static_cast<std::size_t>(hosts_));
  pod_cache_.resize(static_cast<std::size_t>(pods_));
}

void AggregationTree::submit(int rank, SketchSnapshot snapshot) {
  assert(rank >= 0 && rank < cfg_.ranks);
  leaves_[static_cast<std::size_t>(rank)] = std::move(snapshot);
  rank_dirty_[static_cast<std::size_t>(rank)] = 1;
}

SketchSnapshot AggregationTree::flat_merge() const {
  SketchSnapshot out;
  for (const auto& leaf : leaves_) out.merge(leaf);
  return out;
}

FlushReport AggregationTree::flush() {
  MS_PROF_SCOPE("telemetry.agg_flush");
  FlushReport report;

  // A subtree is dirty when any leaf under it re-submitted since the last
  // flush. Clean subtrees neither ship nor merge: their parent reuses the
  // retained aggregate from host_cache_ / pod_cache_.
  std::vector<char> host_dirty(static_cast<std::size_t>(hosts_), 0);
  std::vector<char> pod_dirty(static_cast<std::size_t>(pods_), 0);
  for (int rank = 0; rank < cfg_.ranks; ++rank) {
    if (rank_dirty_[static_cast<std::size_t>(rank)]) {
      host_dirty[static_cast<std::size_t>(rank / cfg_.ranks_per_host)] = 1;
    }
  }
  for (int host = 0; host < hosts_; ++host) {
    if (host_dirty[static_cast<std::size_t>(host)]) {
      pod_dirty[static_cast<std::size_t>(host / cfg_.hosts_per_pod)] = 1;
    }
  }

  // ---- level 0: rank -> host (NVLink / shared memory) -------------------
  // Sender/byte/latency accounting covers only the dirty ranks — a rank
  // with no fresh snapshot ships nothing, and an all-clean host skips its
  // rebuild entirely.
  LevelReport l0;
  l0.level = "rank->host";
  l0.receivers = hosts_;
  l0.fan_in = cfg_.ranks_per_host;
  for (int host = 0; host < hosts_; ++host) {
    if (!host_dirty[static_cast<std::size_t>(host)]) continue;
    TimeNs ingest = 0;
    const int lo = host * cfg_.ranks_per_host;
    const int hi = std::min(cfg_.ranks, lo + cfg_.ranks_per_host);
    auto& merged = host_cache_[static_cast<std::size_t>(host)];
    merged = SketchSnapshot();
    for (int rank = lo; rank < hi; ++rank) {
      const auto& leaf = leaves_[static_cast<std::size_t>(rank)];
      merged.merge(leaf);
      if (!rank_dirty_[static_cast<std::size_t>(rank)]) continue;
      const Bytes bytes = leaf.encoded_bytes();
      ++l0.senders;
      l0.bytes += bytes;
      ingest += model_.send_recv(bytes, collective::Domain::kIntraNode);
      ingest += cfg_.merge_cost_per_series *
                static_cast<TimeNs>(leaf.size());
    }
    l0.stage_latency = std::max(l0.stage_latency, ingest);
  }
  report.intra_bytes = l0.bytes;
  report.levels.push_back(l0);

  // ---- level 1: host -> pod (RDMA fabric) -------------------------------
  LevelReport l1;
  l1.level = "host->pod";
  l1.receivers = pods_;
  l1.fan_in = cfg_.hosts_per_pod;
  Bytes max_host_uplink = 0;
  for (int pod = 0; pod < pods_; ++pod) {
    if (!pod_dirty[static_cast<std::size_t>(pod)]) continue;
    TimeNs ingest = 0;
    const int lo = pod * cfg_.hosts_per_pod;
    const int hi = std::min(hosts_, lo + cfg_.hosts_per_pod);
    auto& merged = pod_cache_[static_cast<std::size_t>(pod)];
    merged = SketchSnapshot();
    for (int host = lo; host < hi; ++host) {
      const auto& snap = host_cache_[static_cast<std::size_t>(host)];
      merged.merge(snap);
      if (!host_dirty[static_cast<std::size_t>(host)]) continue;
      const Bytes bytes = snap.encoded_bytes();
      ++l1.senders;
      l1.bytes += bytes;
      max_host_uplink = std::max(max_host_uplink, bytes);
      ingest += model_.send_recv(bytes, collective::Domain::kInterNode);
      ingest += cfg_.merge_cost_per_series *
                static_cast<TimeNs>(snap.size());
    }
    l1.stage_latency = std::max(l1.stage_latency, ingest);
  }
  report.levels.push_back(l1);

  // ---- level 2: pod -> cluster root (RDMA fabric) -----------------------
  LevelReport l2;
  l2.level = "pod->cluster";
  l2.receivers = 1;
  l2.fan_in = pods_;
  bool any_dirty = false;
  for (int pod = 0; pod < pods_; ++pod) {
    if (pod_dirty[static_cast<std::size_t>(pod)]) any_dirty = true;
  }
  if (any_dirty) {
    root_ = SketchSnapshot();
    for (int pod = 0; pod < pods_; ++pod) {
      const auto& snap = pod_cache_[static_cast<std::size_t>(pod)];
      root_.merge(snap);
      if (!pod_dirty[static_cast<std::size_t>(pod)]) continue;
      const Bytes bytes = snap.encoded_bytes();
      ++l2.senders;
      l2.bytes += bytes;
      l2.stage_latency +=
          model_.send_recv(bytes, collective::Domain::kInterNode) +
          cfg_.merge_cost_per_series * static_cast<TimeNs>(snap.size());
    }
  }
  report.levels.push_back(l2);
  std::fill(rank_dirty_.begin(), rank_dirty_.end(), 0);

  report.network_bytes = l1.bytes + l2.bytes;
  network_bytes_total_ += report.network_bytes;
  report.propagation_latency =
      l0.stage_latency + l1.stage_latency + l2.stage_latency;

  // The contended resource is a host's uplink NIC: it carries the merged
  // host sketch once per flush interval, next to the job's training
  // traffic on the same rails.
  const double interval_s = to_seconds(cfg_.flush_interval);
  report.per_host_uplink =
      interval_s > 0
          ? static_cast<double>(max_host_uplink) / interval_s
          : 0.0;
  const Bandwidth training_bw = cfg_.cluster.nic_bw *
                                cfg_.cluster.gpus_per_node *
                                cfg_.network_efficiency;
  report.overhead_fraction =
      training_bw > 0 ? report.per_host_uplink / training_bw : 0.0;

  if (cfg_.metrics != nullptr) {
    auto& m = *cfg_.metrics;
    m.counter("telemetry_agg_flushes_total").add();
    for (const auto& level : report.levels) {
      m.counter("telemetry_agg_bytes_total", {{"level", level.level}})
          .add(static_cast<double>(level.bytes));
    }
    m.gauge("telemetry_agg_overhead_fraction").set(report.overhead_fraction);
    m.gauge("telemetry_agg_propagation_seconds")
        .set(to_seconds(report.propagation_latency));
  }
  return report;
}

}  // namespace ms::telemetry
