#include "telemetry/exporters.h"

#include <cctype>
#include <limits>
#include <sstream>

#include "core/json.h"

namespace ms::telemetry {

namespace {

std::string sanitize_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// {a="1"} -> `a="1"` body, optionally with an extra le="..." pair.
std::string prom_labels(const Labels& labels, const std::string& le = "") {
  if (labels.empty() && le.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_name(k) + "=\"" + prom_escape(v) + '"';
  }
  if (!le.empty()) {
    if (!first) out += ',';
    out += "le=\"" + le + '"';
  }
  out += '}';
  return out;
}

std::string fmt_double(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void json_labels(std::ostringstream& out, const Labels& labels) {
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
  }
  out << '}';
}

}  // namespace

std::string json_escape(const std::string& s) { return ms::json::escape(s); }

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  std::string last_typed;
  for (const auto& s : snapshot.samples) {
    const std::string name = sanitize_name(s.name);
    if (name != last_typed) {
      out << "# TYPE " << name << ' ' << kind_name(s.kind) << '\n';
      last_typed = name;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out << name << prom_labels(s.labels) << ' ' << fmt_double(s.value)
            << '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        bool saw_inf = false;
        for (const auto& b : s.hist.nonzero_buckets()) {
          cumulative += b.count;
          const bool inf = b.hi == std::numeric_limits<double>::infinity();
          saw_inf |= inf;
          out << name << "_bucket"
              << prom_labels(s.labels, inf ? "+Inf" : fmt_double(b.hi)) << ' '
              << cumulative << '\n';
        }
        // The spec requires a +Inf bucket equal to _count even when no
        // sample overflowed the sketch range. (Samples that *did* overflow
        // land in the [kRangeHi, inf) bucket above and are additionally
        // counted by the synthetic telemetry_sketch_overflow_total series
        // the registry snapshot emits — overflow is never silent.)
        if (!saw_inf) {
          out << name << "_bucket" << prom_labels(s.labels, "+Inf") << ' '
              << s.hist.total() << '\n';
        }
        out << name << "_sum" << prom_labels(s.labels) << ' '
            << fmt_double(s.hist.sum()) << '\n';
        out << name << "_count" << prom_labels(s.labels) << ' '
            << s.hist.total() << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::string jsonl_metrics(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& s : snapshot.samples) {
    out << "{\"type\":\"" << kind_name(s.kind) << "\",\"name\":\""
        << json_escape(s.name) << "\",\"labels\":";
    json_labels(out, s.labels);
    if (s.kind == MetricKind::kHistogram) {
      out << ",\"count\":" << s.hist.total() << ",\"sum\":"
          << fmt_double(s.hist.sum()) << ",\"min\":" << fmt_double(s.hist.min())
          << ",\"max\":" << fmt_double(s.hist.max())
          << ",\"p50\":" << fmt_double(s.hist.p50())
          << ",\"p99\":" << fmt_double(s.hist.p99());
    } else {
      out << ",\"value\":" << fmt_double(s.value);
    }
    out << "}\n";
  }
  return out.str();
}

std::string jsonl_spans(const std::vector<diag::TraceSpan>& spans) {
  std::ostringstream out;
  for (const auto& s : spans) {
    out << "{\"type\":\"span\",\"rank\":" << s.rank << ",\"name\":\""
        << json_escape(s.name) << "\",\"tag\":\"" << json_escape(s.tag)
        << "\",\"start_ns\":" << s.start << ",\"end_ns\":" << s.end;
    if (!s.detail.empty()) {
      out << ",\"detail\":\"" << json_escape(s.detail) << '"';
    }
    out << "}\n";
  }
  return out.str();
}

std::string chrome_trace(const Tracer& tracer) {
  return tracer.timeline().chrome_trace_json();
}

}  // namespace ms::telemetry
