// RunLedger — long-horizon goodput/ETTR accounting (MegaScale Figure 11).
//
// The paper's headline operability number is not per-step MFU but what a
// multi-week production run *kept*: effective-training-time ratio above
// 90% across 100+ restarts, with checkpoint overhead and fault recovery
// accounted against the clock. The ledger is that accountant: it consumes
// engine step records (the steady-state rate), ft workflow/driver-sim
// incidents (detection + recovery windows, lost progress), checkpoint
// stalls, fabric stalls and straggler slowdown windows, and decomposes a
// simulated run into a per-interval time series of goodput, MFU, ETTR,
// restart count and lost-time-by-cause.
//
// Accounting contract (pinned by tests/ledger_test.cpp): ingesting an
// ft::RunReport reproduces the workflow's own effective-time arithmetic —
// the ledger's ETTR equals report.effective_time_ratio, interval rows are
// a partition of the window, and the whole series digests deterministically
// (same seed + schedule => identical ledger).
//
// Series serialize to JSONL (ms::json-parseable, diffable between runs)
// and render through the `msdiag ledger` subcommand.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/time.h"
#include "diag/blame.h"
#include "engine/job.h"
#include "ft/workflow.h"

namespace ms::telemetry {

/// Where lost time went. "Hard" causes (everything except kStraggler)
/// subtract wall-clock from effective training time — they drive ETTR.
/// kStraggler is a rate loss: the clock keeps counting as effective but
/// tokens arrive slower, so it shows up in goodput only (matching the
/// paper, whose ETTR counts downtime/restarts, not silent slowness).
enum class LostCause {
  kDetection,     ///< fault struck -> alarm raised
  kRecovery,      ///< diagnose + evict/replenish + restore + re-init
  kLostProgress,  ///< redone work since the last checkpoint
  kCkptStall,     ///< training blocked on the checkpoint writer
  kFabricStall,   ///< link flap / PFC episode stalling the job
  kStraggler,     ///< slowdown window: goodput lost, clock still effective
};
constexpr int kLostCauseCount = 6;
const char* lost_cause_name(LostCause cause);

/// Healthy-run reference rate, from one simulated iteration.
struct SteadyState {
  TimeNs step_time = 0;
  double mfu = 0;
  double tokens_per_second = 0;
};

struct LedgerConfig {
  /// Simulated run length.
  TimeNs duration = hours(24.0);
  /// Reporting interval (one ledger row per interval).
  TimeNs interval = hours(1.0);
};

struct LedgerInterval {
  int index = 0;
  TimeNs begin = 0;
  TimeNs end = 0;
  /// In-window time not lost to any hard cause.
  TimeNs effective = 0;
  /// In-window lost time per cause (kStraggler entry holds the goodput-
  /// equivalent loss from slowdown windows).
  std::array<TimeNs, kLostCauseCount> lost{};
  int restarts = 0;
  double goodput_tokens_per_second = 0;
  double mfu = 0;
  /// Cumulative ETTR from t=0 through this interval's end.
  double ettr_cum = 1.0;
};

struct LedgerTotals {
  /// 1 - (hard lost time, unclipped) / duration. Matches the ft workflow's
  /// effective_time_ratio bit-for-bit when the ledger ingested its report.
  double ettr = 1.0;
  /// Unclipped lost time per cause (incidents near the window edge charge
  /// their full cost, exactly like the ft accounting).
  std::array<TimeNs, kLostCauseCount> lost{};
  int restarts = 0;
  double tokens_total = 0;
  /// Mean goodput over the run as a fraction of the steady-state rate.
  double goodput_fraction = 0;
  double mfu_mean = 0;
};

struct LedgerSeries {
  TimeNs duration = 0;
  TimeNs interval = 0;
  SteadyState steady;
  /// Within-step loss decomposition from diag::analyze (share of step
  /// makespan per segment kind) — the §5.2 view of where healthy time
  /// itself leaks.
  std::map<std::string, double> step_loss_shares;
  std::vector<LedgerInterval> intervals;
  LedgerTotals totals;
  /// Order-sensitive FNV-1a over every row; equal seeds => equal digests.
  std::uint64_t digest = 0;
};

class RunLedger {
 public:
  explicit RunLedger(const LedgerConfig& cfg);

  void set_steady_state(const SteadyState& steady);
  /// Convenience: derive the steady rate from one simulated iteration.
  void set_steady_state(const engine::JobConfig& cfg,
                        const engine::IterationResult& result);

  /// Replays an ft run report onto the timeline: per incident a detection
  /// window, a recovery window, a redo (lost-progress) window and a
  /// restart mark; checkpoint stalls at the same wall-clock points the
  /// workflow charged them. `checkpoint_interval` must match the
  /// WorkflowConfig the report came from.
  void ingest(const ft::RunReport& report, TimeNs checkpoint_interval);

  /// Hard lost-time window starting at `at` (clock stops being effective).
  void add_lost(TimeNs at, TimeNs duration, LostCause cause);
  /// Restart mark (counted per interval).
  void add_restart(TimeNs at);
  /// Slowdown window: job runs at 1/factor rate in [begin, end). Charged
  /// to kStraggler (or kFabricStall for fabric-degradation windows, which
  /// then reduces goodput rather than the clock).
  void add_slowdown(TimeNs begin, TimeNs end, double factor, LostCause cause);
  /// Within-step blame decomposition (share of makespan per cause).
  void record_step_diagnosis(const diag::StepDiagnosis& diagnosis);

  /// Tiles [0, duration) into intervals and computes the series. Pure:
  /// callable repeatedly as events accumulate.
  LedgerSeries finalize() const;

 private:
  struct LostEvent {
    TimeNs at = 0;
    TimeNs duration = 0;
    LostCause cause = LostCause::kDetection;
  };
  struct SlowdownWindow {
    TimeNs begin = 0;
    TimeNs end = 0;
    double factor = 1.0;
    LostCause cause = LostCause::kStraggler;
  };

  LedgerConfig cfg_;
  SteadyState steady_;
  std::map<std::string, double> step_loss_shares_;
  std::vector<LostEvent> lost_;
  std::vector<SlowdownWindow> slowdowns_;
  std::vector<TimeNs> restarts_;
};

/// Recomputes the series digest from its rows (what finalize() stored).
std::uint64_t ledger_digest(const LedgerSeries& series);

/// Serialization: one header line, one line per interval, one summary
/// line. Parse accepts exactly what to_jsonl emits.
std::string to_jsonl(const LedgerSeries& series);
bool parse_ledger_jsonl(const std::string& text, LedgerSeries& out);

/// Human rendering: summary + lost-by-cause tables and (optionally) the
/// Figure 11-style goodput/MFU/ETTR chart.
std::string render(const LedgerSeries& series, bool chart = true);

/// Run-over-run comparison, biggest regression first.
std::string ledger_diff(const LedgerSeries& base, const LedgerSeries& cand);

/// The `msdiag ledger` subcommand:
///   ledger <run.jsonl> [--json] [--no-chart]
///   ledger --diff <base.jsonl> <cand.jsonl>
int ledger_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
std::string ledger_usage();

}  // namespace ms::telemetry
