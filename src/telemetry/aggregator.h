// Simulated hierarchical metric aggregation tree (MegaScale §5).
//
// The paper collects per-machine metrics at millisecond granularity from
// 10,000+ GPUs. A flat collector would melt: 10k ranks posting sketches
// straight to one endpoint is an incast. Production systems aggregate
// along the physical hierarchy instead — rank -> host -> pod -> cluster —
// merging mergeable sketches (telemetry/sketch.h) at each hop so fan-in
// stays bounded and the root sees one merged snapshot per flush.
//
// This module simulates that tree with real cost accounting: every flush
// charges its serialized sketch bytes through the collective α-β network
// model (NVLink for the on-host hop, the RDMA fabric for host->pod and
// pod->cluster), plus a per-series merge cost at each aggregator. The
// outputs are the two numbers the paper's claim turns on:
//   * propagation latency per flush — can the tree actually sustain
//     millisecond-granularity collection end to end?
//   * telemetry traffic as a fraction of training bandwidth — what does
//     observability cost the job? (fig11 gates this below 1%.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collective/comm.h"
#include "core/time.h"
#include "core/units.h"
#include "telemetry/sketch.h"

namespace ms::telemetry {

struct AggTreeConfig {
  /// Leaves of the tree (one metric-exporting rank per GPU).
  int ranks = 128;
  /// Fan-in of the on-host aggregator (rank -> host hop, NVLink/shm).
  int ranks_per_host = 8;
  /// Fan-in of the pod aggregator (host -> pod hop, RDMA fabric).
  int hosts_per_pod = 32;
  /// Collection period: every leaf ships its sketch once per interval.
  /// 100 ms is the paper's "millisecond granularity" working point.
  TimeNs flush_interval = milliseconds(100.0);
  /// CPU cost to merge one series into an aggregator's accumulator.
  TimeNs merge_cost_per_series = nanoseconds(150);
  /// Fabric the telemetry traffic shares with training.
  collective::ClusterSpec cluster;
  double network_efficiency = 0.9;
  /// Optional self-telemetry (not owned): the tree counts its own flushes
  /// and bytes per level — observability observing itself.
  MetricsRegistry* metrics = nullptr;
};

/// Per-level traffic/latency accounting for one flush.
struct LevelReport {
  std::string level;  // "rank->host", "host->pod", "pod->cluster"
  int senders = 0;
  int receivers = 0;
  int fan_in = 0;
  /// Serialized sketch bytes crossing this level, summed over senders.
  Bytes bytes = 0;
  /// Slowest receiver: serialized ingest of fan_in sketches + merge CPU.
  TimeNs stage_latency = 0;
};

struct FlushReport {
  std::vector<LevelReport> levels;
  /// Bytes that touched the RDMA fabric (host->pod + pod->cluster).
  Bytes network_bytes = 0;
  /// Bytes that stayed on-host (rank->host).
  Bytes intra_bytes = 0;
  /// End-to-end leaf-to-root latency (levels are pipelined per flush but
  /// a fresh sample traverses all of them).
  TimeNs propagation_latency = 0;
  /// Sustained inter-host telemetry bandwidth implied by the flush
  /// interval, per host uplink (the contended resource).
  Bandwidth per_host_uplink = 0;
  /// per_host_uplink as a fraction of the host's training-usable NIC
  /// bandwidth — the observability-overhead knob the bench reports.
  double overhead_fraction = 0;
};

class AggregationTree {
 public:
  explicit AggregationTree(const AggTreeConfig& cfg);

  int hosts() const { return hosts_; }
  int pods() const { return pods_; }

  /// Replaces rank's pending sketch (ranks re-snapshot every interval) and
  /// marks the rank's host/pod subtree dirty for the next flush.
  void submit(int rank, SketchSnapshot snapshot);

  /// Merges every level bottom-up, charges traffic and latency, and
  /// returns the accounting. The merged cluster snapshot is in root().
  ///
  /// Dirty-subtree short-circuit: every aggregator retains its children's
  /// last sketches, so a rank with no submit() since the previous flush
  /// ships nothing and costs no merge CPU — and a host/pod subtree with no
  /// dirty rank at all is skipped outright, its cached aggregate reused.
  /// A flush with nothing dirty charges zero bytes and leaves root()
  /// unchanged. The tree starts all-clean.
  FlushReport flush();

  /// Cluster-wide merged snapshot of the last flush.
  const SketchSnapshot& root() const { return root_; }

  /// Oracle: single-level merge of every leaf in rank order. flush() must
  /// agree with this (approx_same) — the tree must not lose or double-
  /// count any series.
  SketchSnapshot flat_merge() const;

  /// Cumulative network bytes across all flushes so far.
  Bytes network_bytes_total() const { return network_bytes_total_; }

 private:
  AggTreeConfig cfg_;
  collective::CollectiveModel model_;
  int hosts_ = 0;
  int pods_ = 0;
  std::vector<SketchSnapshot> leaves_;
  /// Dirty flags since the last flush (see flush() doc).
  std::vector<char> rank_dirty_;
  /// Retained per-host / per-pod aggregates, rebuilt only when dirty.
  std::vector<SketchSnapshot> host_cache_;
  std::vector<SketchSnapshot> pod_cache_;
  SketchSnapshot root_;
  Bytes network_bytes_total_ = 0;
};

}  // namespace ms::telemetry
