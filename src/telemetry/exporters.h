// Exporters: one telemetry substrate, three wire formats.
//
//  * Prometheus text exposition — counters/gauges as single samples,
//    histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`
//    (scrapeable by any Prometheus-compatible collector);
//  * JSONL event log — one self-describing JSON object per line, for both
//    metric samples and trace spans (the §4.2-style analytics feed);
//  * Chrome-trace JSON — spans routed through diag::TimelineTrace, so the
//    tracer and the standalone diagnosis tools emit the exact same format
//    (loadable in chrome://tracing / Perfetto).
#pragma once

#include <string>
#include <vector>

#include "diag/timeline.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ms::telemetry {

/// Prometheus text exposition format. Metric names are sanitized to
/// [a-zA-Z0-9_:]; label values are escaped per the spec.
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// One JSON object per line:
///   {"type":"counter","name":...,"labels":{...},"value":...}
///   {"type":"histogram","name":...,"count":...,"sum":...,"p50":...,...}
std::string jsonl_metrics(const MetricsSnapshot& snapshot);

/// One JSON object per span:
///   {"type":"span","rank":...,"name":...,"tag":...,"start_ns":...,"end_ns":...}
std::string jsonl_spans(const std::vector<diag::TraceSpan>& spans);

/// Chrome "trace event format" via diag::TimelineTrace::chrome_trace_json.
std::string chrome_trace(const Tracer& tracer);

/// JSON string escaping (exposed for tests and other emitters).
std::string json_escape(const std::string& s);

}  // namespace ms::telemetry
