#include "telemetry/sketch.h"

#include <bit>
#include <cmath>
#include <cstdlib>

#include "check/digest.h"

namespace ms::telemetry {

void GaugeStat::add(double v) {
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  ++count;
}

void GaugeStat::merge(const GaugeStat& other) {
  if (other.count == 0) return;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
}

void SketchValue::merge(const SketchValue& other) {
  if (kind != other.kind) std::abort();  // one kind per name (registry law)
  switch (kind) {
    case MetricKind::kCounter: counter += other.counter; break;
    case MetricKind::kGauge: gauge.merge(other.gauge); break;
    case MetricKind::kHistogram: hist.merge(other.hist); break;
  }
}

SketchValue& SketchSnapshot::slot(const std::string& key, MetricKind kind) {
  encoded_bytes_cache_ = -1;  // handing out a mutable slot stales the memo
  auto [it, inserted] = series_.try_emplace(key);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    std::abort();  // kind clash: same series key registered twice
  }
  return it->second;
}

void SketchSnapshot::add_counter(const std::string& key, double value) {
  slot(key, MetricKind::kCounter).counter += value;
}

void SketchSnapshot::add_gauge(const std::string& key, double value) {
  slot(key, MetricKind::kGauge).gauge.add(value);
}

void SketchSnapshot::add_histogram(const std::string& key,
                                   const HdrHistogram& hist) {
  slot(key, MetricKind::kHistogram).hist.merge(hist);
}

void SketchSnapshot::merge(const SketchSnapshot& other) {
  if (other.series_.empty()) return;
  encoded_bytes_cache_ = -1;
  // Both maps iterate in key order, so one synchronized walk suffices:
  // amortized O(1) per series instead of an O(log n) string-keyed lookup
  // for every merged key. This is the hot loop of the aggregation tree
  // (12k leaves x hundreds of series per fig11 flush).
  auto it = series_.begin();
  for (const auto& [key, value] : other.series_) {
    while (it != series_.end() && it->first < key) ++it;
    if (it != series_.end() && it->first == key) {
      it->second.merge(value);  // aborts on kind clash (registry law)
      ++it;
    } else {
      it = series_.emplace_hint(it, key, value);
      ++it;
    }
  }
}

Bytes SketchSnapshot::encoded_bytes() const {
  if (encoded_bytes_cache_ >= 0) return encoded_bytes_cache_;
  // Wire model: 16-byte frame header; per series the key string plus a
  // 1-byte kind tag and 2-byte length; counters are one f64, gauges the
  // 4-field statistic, histograms a 24-byte header plus a sparse
  // (varint bucket index ~ 2 bytes, count ~ 8 bytes) pair per non-empty
  // bucket plus under/overflow/total/sum/min/max in the header.
  Bytes total = 16;
  for (const auto& [key, value] : series_) {
    total += static_cast<Bytes>(key.size()) + 3;
    switch (value.kind) {
      case MetricKind::kCounter: total += 8; break;
      case MetricKind::kGauge: total += 32; break;
      case MetricKind::kHistogram:
        total += 24 + 10 * static_cast<Bytes>(
                          value.hist.nonzero_buckets().size());
        break;
    }
  }
  encoded_bytes_cache_ = total;
  return total;
}

namespace {

void fold_double(check::Digest& d, double v) {
  d.fold(std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t SketchSnapshot::digest() const {
  check::Digest d;
  for (const auto& [key, value] : series_) {
    d.fold(std::string_view(key));
    d.fold(static_cast<std::uint64_t>(value.kind));
    switch (value.kind) {
      case MetricKind::kCounter:
        fold_double(d, value.counter);
        break;
      case MetricKind::kGauge:
        fold_double(d, value.gauge.sum);
        fold_double(d, value.gauge.min);
        fold_double(d, value.gauge.max);
        d.fold(value.gauge.count);
        break;
      case MetricKind::kHistogram:
        d.fold(value.hist.total());
        fold_double(d, value.hist.sum());
        for (const auto& b : value.hist.nonzero_buckets()) {
          fold_double(d, b.lo);
          d.fold(b.count);
        }
        break;
    }
  }
  return d.value();
}

SketchSnapshot SketchSnapshot::from(const MetricsSnapshot& snapshot) {
  SketchSnapshot out;
  for (const auto& s : snapshot.samples) {
    const std::string key = s.name + encode_labels(s.labels);
    switch (s.kind) {
      case MetricKind::kCounter: out.add_counter(key, s.value); break;
      case MetricKind::kGauge: out.add_gauge(key, s.value); break;
      case MetricKind::kHistogram: out.add_histogram(key, s.hist); break;
    }
  }
  return out;
}

namespace {

bool close(double a, double b, double rel_tol) {
  if (a == b) return true;  // covers +/-inf sentinels in empty gauges
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rel_tol * scale;
}

bool hist_same(const HdrHistogram& a, const HdrHistogram& b, double rel_tol) {
  if (a.total() != b.total()) return false;
  if (!close(a.sum(), b.sum(), rel_tol)) return false;
  if (a.total() > 0 && (a.min() != b.min() || a.max() != b.max())) {
    return false;
  }
  const auto ba = a.nonzero_buckets();
  const auto bb = b.nonzero_buckets();
  if (ba.size() != bb.size()) return false;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    if (ba[i].lo != bb[i].lo || ba[i].count != bb[i].count) return false;
  }
  return true;
}

}  // namespace

bool approx_same(const SketchSnapshot& a, const SketchSnapshot& b,
                 double rel_tol) {
  if (a.series().size() != b.series().size()) return false;
  auto ia = a.series().begin();
  auto ib = b.series().begin();
  for (; ia != a.series().end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    const SketchValue& va = ia->second;
    const SketchValue& vb = ib->second;
    if (va.kind != vb.kind) return false;
    switch (va.kind) {
      case MetricKind::kCounter:
        if (!close(va.counter, vb.counter, rel_tol)) return false;
        break;
      case MetricKind::kGauge:
        if (va.gauge.count != vb.gauge.count ||
            !close(va.gauge.sum, vb.gauge.sum, rel_tol) ||
            !close(va.gauge.min, vb.gauge.min, rel_tol) ||
            !close(va.gauge.max, vb.gauge.max, rel_tol)) {
          return false;
        }
        break;
      case MetricKind::kHistogram:
        if (!hist_same(va.hist, vb.hist, rel_tol)) return false;
        break;
    }
  }
  return true;
}

}  // namespace ms::telemetry
