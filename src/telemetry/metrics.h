// Runtime metrics registry (MegaScale §5 "in-depth observability").
//
// The production system aggregates per-machine metrics at millisecond
// granularity into dashboards and the §4.2 anomaly pipeline. This is the
// repository's equivalent substrate: named counters, gauges and mergeable
// HDR-sketch histograms, each keyed by a label set ({rank=3, op=allgather}),
// registered once and updated lock-free (counters/gauges) or under a
// per-cell mutex (histograms). A snapshot copies every series out as plain
// data for the exporters (Prometheus text, JSONL, dashboards); reset()
// zeroes values while keeping the registrations, giving per-step windows.
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime (cells live in a std::deque), so hot paths resolve
// the (name, labels) pair once and keep the pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/stats.h"
#include "core/thread_annotations.h"
#include "core/time.h"

namespace ms::telemetry {

/// Label set; canonicalized (sorted by key) on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical rendering used as the series key: {a="1",b="x"} ("" if empty).
std::string encode_labels(const Labels& labels);

/// Monotonically increasing value (events, bytes, seconds of downtime).
class Counter {
 public:
  void add(double delta = 1.0) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time value (queue depth, MFU, pause fraction).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Distribution series backed by the fixed-layout HdrHistogram, so
/// per-rank instances merge cheaply in aggregators.
class Histogram {
 public:
  void observe(double v) {
    MutexLock lock(mu_);
    hist_.add(v);
  }
  HdrHistogram snapshot() const {
    MutexLock lock(mu_);
    return hist_;
  }
  void reset() {
    MutexLock lock(mu_);
    hist_ = HdrHistogram();
  }

 private:
  mutable Mutex mu_;
  HdrHistogram hist_ MS_GUARDED_BY(mu_);
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported series: plain data, safe to hold across registry mutation.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;   // counter / gauge
  HdrHistogram hist;    // histogram
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// First sample matching name (+ labels, when given); nullptr if absent.
  const MetricSample* find(const std::string& name) const;
  const MetricSample* find(const std::string& name, const Labels& labels) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers on first use, returns the existing cell afterwards. A name
  /// must keep one kind: re-registering it as a different kind aborts.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Copies every series in registration order.
  MetricsSnapshot snapshot() const;

  /// Zeroes all values; registrations (and handles) survive.
  void reset();

  std::size_t series_count() const;

 private:
  struct Cell {
    std::string name;
    Labels labels;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  Cell& cell(const std::string& name, const Labels& labels, MetricKind kind)
      MS_EXCLUDES(mu_);

  mutable Mutex mu_;
  // Stable addresses: handles outlive rehashing. The deque (not the cells
  // it holds — they are atomics / self-locked) is guarded by mu_.
  std::deque<Cell> cells_ MS_GUARDED_BY(mu_);
  std::unordered_map<std::string, Cell*> index_
      MS_GUARDED_BY(mu_);  // "name|labels" -> cell
};

}  // namespace ms::telemetry
