#include "telemetry/trace.h"

#include "core/log.h"

namespace ms::telemetry {

void Tracer::set_clock(std::function<TimeNs()> clock) {
  MutexLock lock(mu_);
  clock_ = std::move(clock);
}

void Tracer::attach(const sim::Engine& engine) {
  set_clock([&engine] { return engine.now(); });
}

TimeNs Tracer::now() const {
  MutexLock lock(mu_);
  return clock_ ? clock_() : 0;
}

void Tracer::record(diag::TraceSpan span) {
  MutexLock lock(mu_);
  spans_.push_back(std::move(span));
}

void Tracer::record_clocked(diag::TraceSpan span) {
  MutexLock lock(mu_);
  if (!clock_ && !warned_frozen_clock_) {
    warned_frozen_clock_ = true;
    MS_LOG_WARN << "Tracer: span \"" << span.name
                << "\" recorded against the default frozen-at-0 clock — did "
                   "you forget Tracer::attach(engine)/set_clock()?";
  }
  spans_.push_back(std::move(span));
}

void Tracer::record(int rank, const std::string& name, const std::string& tag,
                    TimeNs start, TimeNs end) {
  record(diag::TraceSpan{rank, name, tag, start, end});
}

void Tracer::record(int rank, const std::string& name, const std::string& tag,
                    TimeNs start, TimeNs end, std::string detail) {
  record(diag::TraceSpan{rank, name, tag, start, end, std::move(detail)});
}

std::size_t Tracer::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

std::vector<diag::TraceSpan> Tracer::spans() const {
  MutexLock lock(mu_);
  return spans_;
}

diag::TimelineTrace Tracer::timeline() const {
  return timeline([](const diag::TraceSpan&) { return true; });
}

diag::TimelineTrace Tracer::timeline(
    const std::function<bool(const diag::TraceSpan&)>& keep) const {
  diag::TimelineTrace trace;
  MutexLock lock(mu_);
  for (const auto& s : spans_) {
    if (keep(s)) trace.add(s);
  }
  return trace;
}

void Tracer::clear() {
  MutexLock lock(mu_);
  spans_.clear();
}

ScopedSpan::ScopedSpan(Tracer& tracer, int rank, std::string name,
                       std::string tag)
    : tracer_(tracer) {
  span_.rank = rank;
  span_.name = std::move(name);
  span_.tag = std::move(tag);
  span_.start = tracer_.now();
}

ScopedSpan::~ScopedSpan() { close(); }

void ScopedSpan::close() {
  if (!open_) return;
  open_ = false;
  span_.end = tracer_.now();
  tracer_.record_clocked(std::move(span_));
}

}  // namespace ms::telemetry
