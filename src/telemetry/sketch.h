// Mergeable metric sketches (MegaScale §5: cluster-wide aggregation).
//
// The production system rolls per-machine metrics up to cluster dashboards
// at millisecond granularity. That only works because every metric the
// ranks export is a *mergeable sketch*: counters merge by addition, gauges
// by a (sum, min, max, count) statistic, and distributions by the
// fixed-layout HdrHistogram whose buckets add element-wise. This header is
// the wire model for that property: a SketchSnapshot is one node's (or one
// subtree's) metric state as plain mergeable data, with a deterministic
// encoded-size model so the aggregation tree (telemetry/aggregator.h) can
// charge its own traffic through the network cost models.
//
// Merge laws (pinned by tests/sketch_test.cpp): merge is commutative and
// associative on all integral state (counts, buckets, totals); floating
// sums are commutative but associative only to rounding, which is why the
// tree-vs-flat-merge oracle compares with approx_same() rather than
// digest equality.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "core/stats.h"
#include "core/units.h"
#include "telemetry/metrics.h"

namespace ms::telemetry {

/// Mergeable gauge aggregate: last-value gauges do not merge, so the tree
/// carries the (sum, min, max, count) statistic instead and reports the
/// mean/extremes at the root — what a cluster dashboard actually shows.
struct GaugeStat {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::uint64_t count = 0;

  void add(double v);
  void merge(const GaugeStat& other);
  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

/// One mergeable series value, tagged by kind.
struct SketchValue {
  MetricKind kind = MetricKind::kCounter;
  double counter = 0;  // kCounter
  GaugeStat gauge;     // kGauge
  HdrHistogram hist;   // kHistogram

  /// Merges same-kind values; aborts on a kind clash (the registry
  /// guarantees one kind per name, so a clash is a wiring bug).
  void merge(const SketchValue& other);
};

/// One node's (or subtree's) metric state: series key -> mergeable value.
/// Keys are "name{labels}" via encode_labels, so two ranks exporting the
/// same series merge onto one entry.
class SketchSnapshot {
 public:
  void add_counter(const std::string& key, double value);
  void add_gauge(const std::string& key, double value);
  void add_histogram(const std::string& key, const HdrHistogram& hist);

  /// Element-wise merge of every series in `other`.
  void merge(const SketchSnapshot& other);

  const std::map<std::string, SketchValue>& series() const { return series_; }
  std::size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }

  /// Deterministic wire-size model (bytes) of this snapshot: per-series key
  /// + tag overhead, fixed-size counter/gauge payloads, and a sparse
  /// (bucket index, count) encoding for histograms. This is the number the
  /// aggregation tree charges through the network cost model. Memoized:
  /// recomputed only after a mutation (the aggregation tree sizes the same
  /// unchanged snapshot at every level of every flush).
  Bytes encoded_bytes() const;

  /// Order-insensitive digest (series iterate in key order). Two snapshots
  /// built by the *same* merge topology digest equal; see approx_same()
  /// for comparing across topologies.
  std::uint64_t digest() const;

  /// Converts a registry snapshot into mergeable form.
  static SketchSnapshot from(const MetricsSnapshot& snapshot);

 private:
  SketchValue& slot(const std::string& key, MetricKind kind);

  std::map<std::string, SketchValue> series_;
  /// encoded_bytes() memo; -1 = stale (any mutation invalidates).
  mutable Bytes encoded_bytes_cache_ = -1;
};

/// True when the two snapshots agree: exactly on every integral field
/// (kinds, counts, bucket vectors) and within `rel_tol` relative error on
/// floating sums. This is the flat-merge oracle's comparison: different
/// merge orders may differ in the last ulp of a double sum.
bool approx_same(const SketchSnapshot& a, const SketchSnapshot& b,
                 double rel_tol = 1e-9);

}  // namespace ms::telemetry
