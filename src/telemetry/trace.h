// Engine-integrated scoped tracing (MegaScale §5.1).
//
// A Tracer is a thread-safe span sink bound to a clock — usually the
// discrete-event engine's simulated time — plus RAII spans for scoped
// instrumentation. Spans reuse diag::TraceSpan, so everything recorded
// here feeds directly into the §5 diagnosis tools (timeline rendering,
// bubble accounting, Chrome-trace export) without a conversion layer.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "core/time.h"
#include "diag/timeline.h"
#include "sim/engine.h"

namespace ms::telemetry {

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Clock the spans read their timestamps from. Defaults to a clock
  /// frozen at 0; attach the simulation engine (or any TimeNs source)
  /// before opening spans.
  void set_clock(std::function<TimeNs()> clock);
  void attach(const sim::Engine& engine);
  TimeNs now() const;

  /// Appends one finished span (caller-provided timestamps). Thread-safe.
  void record(diag::TraceSpan span);
  void record(int rank, const std::string& name, const std::string& tag,
              TimeNs start, TimeNs end);
  void record(int rank, const std::string& name, const std::string& tag,
              TimeNs start, TimeNs end, std::string detail);

  std::size_t size() const;
  std::vector<diag::TraceSpan> spans() const;  // copy, in record order

  /// Spans folded onto the unified multi-rank timeline (optionally only
  /// those whose tag passes `keep`).
  diag::TimelineTrace timeline() const;
  diag::TimelineTrace timeline(
      const std::function<bool(const diag::TraceSpan&)>& keep) const;

  void clear();

 private:
  friend class ScopedSpan;
  /// ScopedSpan's sink: same as record(), but warns once (per tracer, via
  /// the log hook) when spans are timestamped by the default frozen-at-0
  /// clock — the signature of a forgotten attach(engine)/set_clock().
  void record_clocked(diag::TraceSpan span);

  mutable Mutex mu_;
  std::function<TimeNs()> clock_ MS_GUARDED_BY(mu_);
  std::vector<diag::TraceSpan> spans_ MS_GUARDED_BY(mu_);
  bool warned_frozen_clock_ MS_GUARDED_BY(mu_) = false;
};

/// RAII span: opens at construction time (tracer clock), records on
/// destruction or on close(). Advance the clock in between — in simulation
/// that means running engine events — and the span brackets the activity.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, int rank, std::string name, std::string tag = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early; the destructor becomes a no-op.
  void close();

 private:
  Tracer& tracer_;
  diag::TraceSpan span_;
  bool open_ = true;
};

}  // namespace ms::telemetry
