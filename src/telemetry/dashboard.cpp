#include "telemetry/dashboard.h"

#include <algorithm>
#include <sstream>

#include "core/table.h"
#include "core/units.h"

namespace ms::telemetry {

namespace {

using Interval = std::pair<TimeNs, TimeNs>;

/// Sorts + merges overlapping intervals in place; returns total length.
TimeNs merge_intervals(std::vector<Interval>& iv) {
  if (iv.empty()) return 0;
  std::sort(iv.begin(), iv.end());
  std::vector<Interval> merged;
  merged.push_back(iv.front());
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv[i].second);
    } else {
      merged.push_back(iv[i]);
    }
  }
  iv = std::move(merged);
  TimeNs total = 0;
  for (const auto& [a, b] : iv) total += b - a;
  return total;
}

/// Length of the part of (sorted, disjoint) `a` covered by (sorted,
/// disjoint) `b`.
TimeNs covered_length(const std::vector<Interval>& a,
                      const std::vector<Interval>& b) {
  TimeNs total = 0;
  std::size_t j = 0;
  for (const auto& [lo, hi] : a) {
    while (j < b.size() && b[j].second <= lo) ++j;
    for (std::size_t k = j; k < b.size() && b[k].first < hi; ++k) {
      total += std::max<TimeNs>(
          0, std::min(hi, b[k].second) - std::max(lo, b[k].first));
    }
  }
  return total;
}

bool is_compute_tag(const std::string& tag) {
  return tag == "fwd" || tag == "bwd" || tag == "optimizer";
}

bool is_comm_tag(const std::string& tag) {
  return tag == "pp-comm" || tag == "dp-comm";
}

}  // namespace

const StepReport& TrainingDashboard::record_step(
    const engine::JobConfig& cfg, const engine::IterationResult& result) {
  StepReport step;
  step.step = static_cast<int>(steps_.size());
  step.iteration_time = result.iteration_time;
  step.mfu = result.mfu;
  step.tokens_per_second = result.tokens_per_second;
  step.data_exposed = result.breakdown.data_pipeline;
  step.optimizer = result.breakdown.optimizer;

  // Exposed vs. overlapped comm: wall-clock occupied by comm spans, split
  // by whether any compute stream was busy at the same instant.
  std::vector<Interval> compute, comm;
  TimeNs pipeline_start = result.iteration_time, pipeline_end = 0;
  for (const auto& rec : result.spans) {
    if (rec.end <= rec.start) continue;
    if (is_compute_tag(rec.tag)) {
      compute.push_back({rec.start, rec.end});
      if (rec.tag != "optimizer") {
        pipeline_start = std::min(pipeline_start, rec.start);
        pipeline_end = std::max(pipeline_end, rec.end);
      }
    } else if (is_comm_tag(rec.tag)) {
      comm.push_back({rec.start, rec.end});
    }
  }
  merge_intervals(compute);
  step.comm_total = merge_intervals(comm);
  step.comm_overlapped = covered_length(comm, compute);
  step.comm_exposed = step.comm_total - step.comm_overlapped;

  // Pipeline bubble: fraction of the 1F1B window each stage's compute
  // stream spends idle, averaged over stages.
  if (pipeline_end > pipeline_start && cfg.par.pp > 0) {
    const double window = static_cast<double>(pipeline_end - pipeline_start);
    std::vector<TimeNs> busy(static_cast<std::size_t>(cfg.par.pp), 0);
    for (const auto& rec : result.spans) {
      if (!engine::is_compute_stream(rec.stream)) continue;
      if (rec.tag != "fwd" && rec.tag != "bwd") continue;
      const int stage = engine::stage_of_stream(rec.stream);
      if (stage >= cfg.par.pp) continue;  // data-pipeline stream
      busy[static_cast<std::size_t>(stage)] +=
          std::min(rec.end, pipeline_end) - std::max(rec.start, pipeline_start);
    }
    double bubble_sum = 0;
    for (TimeNs b : busy) bubble_sum += 1.0 - static_cast<double>(b) / window;
    step.bubble_fraction = bubble_sum / static_cast<double>(cfg.par.pp);
  }

  steps_.push_back(step);

  if (registry_ != nullptr) {
    auto& m = *registry_;
    m.gauge("dashboard_mfu").set(step.mfu);
    m.gauge("dashboard_bubble_fraction").set(step.bubble_fraction);
    m.gauge("dashboard_comm_exposed_seconds")
        .set(to_seconds(step.comm_exposed));
    m.gauge("dashboard_comm_overlapped_seconds")
        .set(to_seconds(step.comm_overlapped));
    m.histogram("dashboard_step_seconds")
        .observe(to_seconds(step.iteration_time));
  }
  return steps_.back();
}

void TrainingDashboard::add_machine_sample(int machine,
                                           const std::string& phase,
                                           double seconds) {
  heatmap_.add_sample(machine, phase, seconds);
  machines_.insert(machine);
}

void TrainingDashboard::record_health(const ft::RunReport& report) {
  health_ = report;
  has_health_ = true;
  if (registry_ != nullptr) {
    auto& m = *registry_;
    m.gauge("dashboard_effective_time_ratio")
        .set(report.effective_time_ratio);
    m.gauge("dashboard_auto_detected_fraction")
        .set(report.auto_detected_fraction);
  }
}

void TrainingDashboard::record_diagnosis(const diag::StepDiagnosis& diagnosis) {
  diag_ = diagnosis;
  has_diag_ = true;
  if (registry_ != nullptr) {
    auto& m = *registry_;
    m.gauge("diag_critical_path_seconds").set(to_seconds(diagnosis.makespan));
    for (const auto& entry : diagnosis.blame) {
      Labels labels{{"cause", diag::segment_kind_name(entry.cause)},
                    {"rank", std::to_string(entry.rank)}};
      if (!entry.link.empty()) labels.push_back({"link", entry.link});
      m.counter("diag_blame_total", labels).add(to_seconds(entry.total));
    }
  }
}

void TrainingDashboard::record_calibration(const CalibrationSummary& summary) {
  calib_ = summary;
  has_calib_ = true;
  if (registry_ != nullptr) {
    auto& m = *registry_;
    m.gauge("dashboard_calib_fit_ok").set(summary.fit_ok ? 1.0 : 0.0);
    m.gauge("dashboard_calib_fit_rel_rms").set(summary.fit_rel_rms);
    m.gauge("dashboard_calib_replay_error").set(summary.replay_rel_error);
    m.gauge("dashboard_calib_replay_within_tolerance")
        .set(summary.replay_within_tolerance ? 1.0 : 0.0);
  }
}

double TrainingDashboard::mean_mfu() const {
  if (steps_.empty()) return 0;
  double sum = 0;
  for (const auto& s : steps_) sum += s.mfu;
  return sum / static_cast<double>(steps_.size());
}

std::vector<int> TrainingDashboard::straggler_machines(
    double threshold) const {
  return heatmap_.outliers(threshold);
}

double TrainingDashboard::worst_straggler_delta() const {
  if (machines_.size() < 2) return 0;
  // Normalize each machine by the per-phase median, average over phases
  // (the heatmap's scoring, reconstructed from its public means).
  const auto phases = heatmap_.phases();
  if (phases.empty()) return 0;
  std::vector<double> scores;
  for (int machine : machines_) {
    double score = 0;
    int counted = 0;
    for (const auto& phase : phases) {
      std::vector<double> col;
      for (int m : machines_) col.push_back(heatmap_.mean(m, phase));
      std::nth_element(col.begin(), col.begin() + col.size() / 2, col.end());
      const double median = col[col.size() / 2];
      if (median <= 0) continue;
      score += heatmap_.mean(machine, phase) / median;
      ++counted;
    }
    if (counted > 0) scores.push_back(score / counted);
  }
  if (scores.size() < 2) return 0;
  std::vector<double> sorted = scores;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double worst = *std::max_element(scores.begin(), scores.end());
  return median > 0 ? worst / median - 1.0 : 0;
}

std::string TrainingDashboard::report() const {
  std::ostringstream out;
  out << "=== training dashboard (" << steps_.size() << " step"
      << (steps_.size() == 1 ? "" : "s") << ") ===\n";

  Table t({"metric", "value"});
  if (!steps_.empty()) {
    const StepReport& last = steps_.back();
    TimeNs iter_sum = 0, exposed_sum = 0, overlapped_sum = 0;
    double bubble_sum = 0;
    for (const auto& s : steps_) {
      iter_sum += s.iteration_time;
      exposed_sum += s.comm_exposed;
      overlapped_sum += s.comm_overlapped;
      bubble_sum += s.bubble_fraction;
    }
    const double n = static_cast<double>(steps_.size());
    const TimeNs comm_sum = exposed_sum + overlapped_sum;
    t.add_row({"MFU (mean / last)", Table::fmt_pct(mean_mfu()) + " / " +
                                        Table::fmt_pct(last.mfu)});
    t.add_row({"iteration time (mean)",
               format_duration(static_cast<TimeNs>(
                   static_cast<double>(iter_sum) / n))});
    t.add_row({"tokens/s (last)",
               Table::fmt(last.tokens_per_second / mega(1.0), 2) + "M"});
    t.add_row({"comm time exposed (mean)",
               format_duration(static_cast<TimeNs>(
                   static_cast<double>(exposed_sum) / n))});
    t.add_row({"comm time overlapped (mean)",
               format_duration(static_cast<TimeNs>(
                   static_cast<double>(overlapped_sum) / n))});
    t.add_row({"comm overlap ratio",
               comm_sum > 0 ? Table::fmt_pct(
                                  static_cast<double>(overlapped_sum) /
                                  static_cast<double>(comm_sum))
                            : "-"});
    t.add_row({"pipeline bubble fraction (mean)",
               Table::fmt_pct(bubble_sum / n)});
    t.add_row({"exposed data time (last)", format_duration(last.data_exposed)});
  }
  if (!machines_.empty()) {
    t.add_separator();
    t.add_row({"machines observed",
               Table::fmt_int(static_cast<long long>(machines_.size()))});
    const auto stragglers = straggler_machines();
    std::string list;
    for (int m : stragglers) {
      if (!list.empty()) list += ' ';
      list += std::to_string(m);
    }
    t.add_row({"straggler machines", stragglers.empty() ? "none" : list});
    t.add_row({"worst straggler delta",
               Table::fmt_pct(worst_straggler_delta())});
  }
  if (has_diag_) {
    t.add_separator();
    t.add_row({"critical path", format_duration(diag_.makespan)});
    if (!diag_.blame.empty()) {
      const auto& top = diag_.blame.front();
      std::string who = diag_.blame.front().link.empty()
                            ? "rank " + std::to_string(top.rank)
                            : "link " + top.link;
      t.add_row({"top blame",
                 std::string(diag::segment_kind_name(top.cause)) + " (" + who +
                     "): " + format_duration(top.total) + " / " +
                     Table::fmt_pct(top.share)});
    }
  }
  if (has_calib_) {
    t.add_separator();
    t.add_row({"calibration fit", calib_.fit_ok
                                      ? "ok, rel-RMS " +
                                            Table::fmt_pct(calib_.fit_rel_rms, 2)
                                      : "FAILED"});
    if (calib_.fit_ok) {
      t.add_row({"calibration replay",
                 Table::fmt_pct(calib_.replay_rel_error, 2) + " vs tolerance " +
                     Table::fmt_pct(calib_.replay_tolerance, 1) +
                     (calib_.replay_within_tolerance ? " (ok)"
                                                     : " (OUT OF TOLERANCE)")});
      if (calib_.gemm_efficiency > 0) {
        t.add_row({"fitted efficiencies (gemm/attn/mem)",
                   Table::fmt(calib_.gemm_efficiency, 3) + " / " +
                       Table::fmt(calib_.attention_efficiency, 3) + " / " +
                       Table::fmt(calib_.memory_efficiency, 3)});
      }
    }
  }
  if (registry_ != nullptr) {
    // Sketch-range overflow is a data-quality alarm: any nonzero count
    // means some histogram is clamping its tail quantiles.
    double overflow_total = 0;
    for (const auto& s : registry_->snapshot().samples) {
      if (s.name == "telemetry_sketch_overflow_total") overflow_total += s.value;
    }
    if (overflow_total > 0) {
      t.add_separator();
      t.add_row({"sketch overflow samples (!)",
                 Table::fmt_int(static_cast<long long>(overflow_total))});
    }
  }
  if (has_health_) {
    t.add_separator();
    t.add_row({"restarts", Table::fmt_int(health_.restarts)});
    t.add_row({"auto detected", Table::fmt_pct(health_.auto_detected_fraction)});
    t.add_row({"auto diagnosed",
               Table::fmt_pct(health_.auto_diagnosed_fraction)});
    t.add_row({"mean detect latency",
               format_duration(health_.mean_detect_latency)});
    t.add_row({"checkpoints taken", Table::fmt_int(health_.checkpoints_taken)});
    t.add_row({"effective training time",
               Table::fmt_pct(health_.effective_time_ratio)});
  }
  out << t.to_string();
  return out.str();
}

}  // namespace ms::telemetry
