#include "telemetry/ledger.h"

#include "prof/profiler.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "check/digest.h"
#include "core/json.h"
#include "core/stats.h"
#include "core/table.h"
#include "diag/artifact.h"

namespace ms::telemetry {

const char* lost_cause_name(LostCause cause) {
  switch (cause) {
    case LostCause::kDetection: return "detection";
    case LostCause::kRecovery: return "recovery";
    case LostCause::kLostProgress: return "lost-progress";
    case LostCause::kCkptStall: return "ckpt-stall";
    case LostCause::kFabricStall: return "fabric-stall";
    case LostCause::kStraggler: return "straggler";
  }
  return "?";
}

RunLedger::RunLedger(const LedgerConfig& cfg) : cfg_(cfg) {
  assert(cfg_.duration > 0 && cfg_.interval > 0);
}

void RunLedger::set_steady_state(const SteadyState& steady) {
  steady_ = steady;
}

void RunLedger::set_steady_state(const engine::JobConfig& cfg,
                                 const engine::IterationResult& result) {
  SteadyState s;
  s.step_time = result.iteration_time;
  s.mfu = result.mfu;
  s.tokens_per_second = result.tokens_per_second;
  (void)cfg;
  steady_ = s;
}

void RunLedger::add_lost(TimeNs at, TimeNs duration, LostCause cause) {
  if (duration <= 0) return;
  lost_.push_back({at, duration, cause});
}

void RunLedger::add_restart(TimeNs at) { restarts_.push_back(at); }

void RunLedger::add_slowdown(TimeNs begin, TimeNs end, double factor,
                             LostCause cause) {
  if (end <= begin || factor <= 1.0) return;
  slowdowns_.push_back({begin, end, factor, cause});
}

void RunLedger::record_step_diagnosis(const diag::StepDiagnosis& diagnosis) {
  step_loss_shares_.clear();
  if (diagnosis.makespan <= 0) return;
  for (const auto& [kind, total] : diagnosis.breakdown) {
    step_loss_shares_[diag::segment_kind_name(kind)] =
        static_cast<double>(total) / static_cast<double>(diagnosis.makespan);
  }
}

void RunLedger::ingest(const ft::RunReport& report,
                       TimeNs checkpoint_interval) {
  // Replay the workflow's own clock so every charged nanosecond lands at
  // the wall time the workflow accounted it (the closure law the tests
  // pin: ledger ETTR == report.effective_time_ratio).
  const TimeNs duration = report.duration;
  const TimeNs ckpt_stall_each =
      report.checkpoints_taken > 0
          ? report.checkpoint_stall_total / report.checkpoints_taken
          : 0;
  TimeNs now = 0;
  TimeNs progress = 0;
  auto advance_healthy = [&](TimeNs until) {
    TimeNs up = until - now;
    if (up <= 0) return;
    TimeNs at = now;
    TimeNs to_next = checkpoint_interval - progress;
    while (up >= to_next) {
      up -= to_next;
      at += to_next;
      add_lost(at, ckpt_stall_each, LostCause::kCkptStall);
      progress = 0;
      to_next = checkpoint_interval;
    }
    progress += up;
    now = until;
  };

  for (const auto& inc : report.incidents) {
    const TimeNs strike = std::max(inc.fault.at, now);
    advance_healthy(strike);
    add_restart(strike);
    add_lost(strike, inc.detect_latency, LostCause::kDetection);
    add_lost(strike + inc.detect_latency, inc.downtime - inc.detect_latency,
             LostCause::kRecovery);
    // The redo of work since the last checkpoint happens right after
    // resume: wall clock says "training", the ledger says "lost".
    add_lost(strike + inc.downtime, inc.lost_progress,
             LostCause::kLostProgress);
    now = strike + inc.downtime;
    progress = 0;
    if (now >= duration) break;
  }
  if (now < duration) advance_healthy(duration);
}

namespace {

TimeNs overlap(TimeNs a_lo, TimeNs a_hi, TimeNs b_lo, TimeNs b_hi) {
  return std::max<TimeNs>(0, std::min(a_hi, b_hi) - std::max(a_lo, b_lo));
}

void fold_double(check::Digest& d, double v) {
  d.fold(std::bit_cast<std::uint64_t>(v));
}

}  // namespace

LedgerSeries RunLedger::finalize() const {
  MS_PROF_SCOPE("telemetry.ledger_finalize");
  LedgerSeries series;
  series.duration = cfg_.duration;
  series.interval = cfg_.interval;
  series.steady = steady_;
  series.step_loss_shares = step_loss_shares_;

  const int n = static_cast<int>((cfg_.duration + cfg_.interval - 1) /
                                 cfg_.interval);
  std::vector<TimeNs> restart_times = restarts_;
  std::sort(restart_times.begin(), restart_times.end());

  TimeNs cum_hard = 0;
  double tokens_total = 0;
  double goodput_scale_sum = 0;
  for (int i = 0; i < n; ++i) {
    LedgerInterval row;
    row.index = i;
    row.begin = i * cfg_.interval;
    row.end = std::min(cfg_.duration, row.begin + cfg_.interval);
    const TimeNs len = row.end - row.begin;

    TimeNs hard = 0;
    for (const auto& ev : lost_) {
      const TimeNs ov = overlap(ev.at, ev.at + ev.duration, row.begin, row.end);
      if (ov <= 0) continue;
      row.lost[static_cast<std::size_t>(ev.cause)] += ov;
      hard += ov;
    }
    hard = std::min(hard, len);  // overlapping windows can't lose > wall time
    row.effective = len - hard;
    cum_hard += hard;

    // Slowdown windows: rate losses against the effective part of the
    // interval. The (effective / len) discount approximates the share of
    // each window overlapping actual training time.
    double slow_loss = 0;
    const double eff_frac =
        len > 0 ? static_cast<double>(row.effective) / static_cast<double>(len)
                : 0.0;
    for (const auto& w : slowdowns_) {
      const TimeNs ov = overlap(w.begin, w.end, row.begin, row.end);
      if (ov <= 0) continue;
      const double loss =
          static_cast<double>(ov) * (1.0 - 1.0 / w.factor) * eff_frac;
      row.lost[static_cast<std::size_t>(w.cause)] +=
          static_cast<TimeNs>(loss);
      slow_loss += loss;
    }
    const double eff_weighted = std::max(
        0.0, static_cast<double>(row.effective) - slow_loss);

    const auto lo = std::lower_bound(restart_times.begin(),
                                     restart_times.end(), row.begin);
    const auto hi = std::lower_bound(restart_times.begin(),
                                     restart_times.end(), row.end);
    row.restarts = static_cast<int>(hi - lo);

    const double scale =
        len > 0 ? eff_weighted / static_cast<double>(len) : 0.0;
    row.goodput_tokens_per_second = steady_.tokens_per_second * scale;
    row.mfu = steady_.mfu * scale;
    row.ettr_cum =
        row.end > 0
            ? 1.0 - static_cast<double>(cum_hard) / static_cast<double>(row.end)
            : 1.0;
    tokens_total +=
        steady_.tokens_per_second * to_seconds(static_cast<TimeNs>(eff_weighted));
    goodput_scale_sum += scale * static_cast<double>(len);

    series.intervals.push_back(row);
  }

  // Totals use *unclipped* charges, mirroring the ft workflow: an incident
  // near the window edge costs its full downtime.
  TimeNs hard_total = 0;
  for (const auto& ev : lost_) {
    series.totals.lost[static_cast<std::size_t>(ev.cause)] += ev.duration;
    hard_total += ev.duration;
  }
  for (const auto& w : slowdowns_) {
    series.totals.lost[static_cast<std::size_t>(w.cause)] +=
        static_cast<TimeNs>(static_cast<double>(w.end - w.begin) *
                            (1.0 - 1.0 / w.factor));
  }
  series.totals.ettr =
      1.0 - static_cast<double>(hard_total) /
                static_cast<double>(cfg_.duration);
  series.totals.restarts = static_cast<int>(restart_times.size());
  series.totals.tokens_total = tokens_total;
  series.totals.goodput_fraction =
      goodput_scale_sum / static_cast<double>(cfg_.duration);
  double mfu_sum = 0;
  for (const auto& row : series.intervals) mfu_sum += row.mfu;
  series.totals.mfu_mean =
      series.intervals.empty()
          ? 0.0
          : mfu_sum / static_cast<double>(series.intervals.size());

  series.digest = ledger_digest(series);
  return series;
}

std::uint64_t ledger_digest(const LedgerSeries& series) {
  check::Digest d;
  d.fold(series.duration);
  d.fold(series.interval);
  d.fold(series.steady.step_time);
  fold_double(d, series.steady.mfu);
  fold_double(d, series.steady.tokens_per_second);
  for (const auto& [name, share] : series.step_loss_shares) {
    d.fold(std::string_view(name));
    fold_double(d, share);
  }
  for (const auto& row : series.intervals) {
    d.fold(static_cast<std::uint64_t>(row.index));
    d.fold(row.begin);
    d.fold(row.end);
    d.fold(row.effective);
    for (TimeNs l : row.lost) d.fold(l);
    d.fold(static_cast<std::uint64_t>(row.restarts));
    fold_double(d, row.goodput_tokens_per_second);
    fold_double(d, row.mfu);
    fold_double(d, row.ettr_cum);
  }
  fold_double(d, series.totals.ettr);
  for (TimeNs l : series.totals.lost) d.fold(l);
  d.fold(static_cast<std::uint64_t>(series.totals.restarts));
  fold_double(d, series.totals.tokens_total);
  fold_double(d, series.totals.goodput_fraction);
  fold_double(d, series.totals.mfu_mean);
  return d.value();
}

// ------------------------------------------------------------- JSONL I/O

namespace {

std::string fmt_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void emit_lost(std::ostringstream& out,
               const std::array<TimeNs, kLostCauseCount>& lost) {
  out << "{";
  for (int c = 0; c < kLostCauseCount; ++c) {
    if (c) out << ',';
    out << '"' << lost_cause_name(static_cast<LostCause>(c)) << "\":"
        << lost[static_cast<std::size_t>(c)];
  }
  out << "}";
}

bool parse_lost(const json::Value& v,
                std::array<TimeNs, kLostCauseCount>& lost) {
  if (!v.is_object()) return false;
  for (int c = 0; c < kLostCauseCount; ++c) {
    lost[static_cast<std::size_t>(c)] = static_cast<TimeNs>(
        v.num(lost_cause_name(static_cast<LostCause>(c)), 0));
  }
  return true;
}

}  // namespace

std::string to_jsonl(const LedgerSeries& series) {
  std::ostringstream out;
  out << "{\"type\":\"ledger\",\"version\":1,\"duration_ns\":"
      << series.duration << ",\"interval_ns\":" << series.interval
      << ",\"step_ns\":" << series.steady.step_time << ",\"steady_mfu\":"
      << fmt_g17(series.steady.mfu) << ",\"steady_tokens_per_second\":"
      << fmt_g17(series.steady.tokens_per_second)
      << ",\"step_loss_shares\":{";
  bool first = true;
  for (const auto& [name, share] : series.step_loss_shares) {
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(name) << "\":" << fmt_g17(share);
  }
  out << "}}\n";
  for (const auto& row : series.intervals) {
    out << "{\"type\":\"interval\",\"i\":" << row.index << ",\"begin_ns\":"
        << row.begin << ",\"end_ns\":" << row.end << ",\"effective_ns\":"
        << row.effective << ",\"restarts\":" << row.restarts
        << ",\"goodput_tokens_per_second\":"
        << fmt_g17(row.goodput_tokens_per_second) << ",\"mfu\":"
        << fmt_g17(row.mfu) << ",\"ettr_cum\":" << fmt_g17(row.ettr_cum)
        << ",\"lost_ns\":";
    emit_lost(out, row.lost);
    out << "}\n";
  }
  char digest[24];
  std::snprintf(digest, sizeof(digest), "0x%016" PRIx64, series.digest);
  out << "{\"type\":\"summary\",\"ettr\":" << fmt_g17(series.totals.ettr)
      << ",\"goodput_fraction\":" << fmt_g17(series.totals.goodput_fraction)
      << ",\"mfu_mean\":" << fmt_g17(series.totals.mfu_mean)
      << ",\"restarts\":" << series.totals.restarts << ",\"tokens_total\":"
      << fmt_g17(series.totals.tokens_total) << ",\"lost_ns\":";
  emit_lost(out, series.totals.lost);
  out << ",\"digest\":\"" << digest << "\"}\n";
  return out.str();
}

bool parse_ledger_jsonl(const std::string& text, LedgerSeries& out) {
  LedgerSeries series;
  bool saw_header = false, saw_summary = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    json::Value v;
    if (!json::parse(line, v) || !v.is_object()) return false;
    const std::string type = v.text("type");
    if (type == "ledger") {
      saw_header = true;
      series.duration = static_cast<TimeNs>(v.num("duration_ns"));
      series.interval = static_cast<TimeNs>(v.num("interval_ns"));
      series.steady.step_time = static_cast<TimeNs>(v.num("step_ns"));
      series.steady.mfu = v.num("steady_mfu");
      series.steady.tokens_per_second = v.num("steady_tokens_per_second");
      if (v.has("step_loss_shares") && v.at("step_loss_shares").is_object()) {
        for (const auto& [name, share] : *v.at("step_loss_shares").object) {
          if (share.kind == json::Value::Kind::kNumber) {
            series.step_loss_shares[name] = share.number;
          }
        }
      }
    } else if (type == "interval") {
      LedgerInterval row;
      row.index = static_cast<int>(v.num("i"));
      row.begin = static_cast<TimeNs>(v.num("begin_ns"));
      row.end = static_cast<TimeNs>(v.num("end_ns"));
      row.effective = static_cast<TimeNs>(v.num("effective_ns"));
      row.restarts = static_cast<int>(v.num("restarts"));
      row.goodput_tokens_per_second = v.num("goodput_tokens_per_second");
      row.mfu = v.num("mfu");
      row.ettr_cum = v.num("ettr_cum");
      if (!v.has("lost_ns") || !parse_lost(v.at("lost_ns"), row.lost)) {
        return false;
      }
      series.intervals.push_back(row);
    } else if (type == "summary") {
      saw_summary = true;
      series.totals.ettr = v.num("ettr");
      series.totals.goodput_fraction = v.num("goodput_fraction");
      series.totals.mfu_mean = v.num("mfu_mean");
      series.totals.restarts = static_cast<int>(v.num("restarts"));
      series.totals.tokens_total = v.num("tokens_total");
      if (!v.has("lost_ns") || !parse_lost(v.at("lost_ns"), series.totals.lost)) {
        return false;
      }
      const std::string digest = v.text("digest");
      series.digest = std::strtoull(digest.c_str(), nullptr, 16);
    } else {
      return false;  // unknown record type
    }
  }
  if (!saw_header || !saw_summary) return false;
  out = std::move(series);
  return true;
}

// ------------------------------------------------------------- rendering

std::string render(const LedgerSeries& series, bool chart) {
  std::ostringstream out;
  out << "=== run ledger: " << Table::fmt(to_days(series.duration), 1)
      << " days in " << series.intervals.size() << " intervals of "
      << format_duration(series.interval) << " ===\n";

  Table t({"metric", "value"});
  t.add_row({"effective training time (ETTR)",
             Table::fmt_pct(series.totals.ettr)});
  t.add_row({"goodput (vs steady state)",
             Table::fmt_pct(series.totals.goodput_fraction)});
  t.add_row({"MFU (run mean)", Table::fmt_pct(series.totals.mfu_mean)});
  t.add_row({"restarts", Table::fmt_int(series.totals.restarts)});
  t.add_row({"tokens trained",
             Table::fmt(series.totals.tokens_total / giga(1000.0), 2) + "T"});
  t.add_row({"steady step time", format_duration(series.steady.step_time)});
  out << t.to_string();

  TimeNs lost_total = 0;
  for (TimeNs l : series.totals.lost) lost_total += l;
  if (lost_total > 0) {
    out << "\nlost time by cause:\n";
    Table lt({"cause", "lost", "share of run"});
    for (int c = 0; c < kLostCauseCount; ++c) {
      const TimeNs l = series.totals.lost[static_cast<std::size_t>(c)];
      if (l == 0) continue;
      lt.add_row({lost_cause_name(static_cast<LostCause>(c)),
                  format_duration(l),
                  Table::fmt_pct(static_cast<double>(l) /
                                 static_cast<double>(series.duration))});
    }
    out << lt.to_string();
  }
  if (!series.step_loss_shares.empty()) {
    out << "\nwithin-step decomposition (diag critical path, share of step):\n";
    Table st({"segment", "share"});
    for (const auto& [name, share] : series.step_loss_shares) {
      st.add_row({name, Table::fmt_pct(share)});
    }
    out << st.to_string();
  }

  if (chart && !series.intervals.empty()) {
    Series goodput, mfu, ettr;
    goodput.name = "goodput frac";
    mfu.name = "MFU";
    ettr.name = "ETTR (cum)";
    const double steady_rate = series.steady.tokens_per_second;
    for (const auto& row : series.intervals) {
      const double hours_at = to_hours(row.end);
      goodput.add(hours_at, steady_rate > 0
                                ? row.goodput_tokens_per_second / steady_rate
                                : 0.0);
      mfu.add(hours_at, row.mfu);
      ettr.add(hours_at, row.ettr_cum);
    }
    out << "\ngoodput / MFU / ETTR over time (x = hours):\n"
        << ascii_chart({goodput, mfu, ettr}, 76, 16);
  }
  return out.str();
}

std::string ledger_diff(const LedgerSeries& base, const LedgerSeries& cand) {
  std::ostringstream out;
  out << "=== ledger diff (cand - base) ===\n";
  Table t({"metric", "base", "cand", "delta"});
  auto row = [&](const std::string& name, double b, double c,
                 const std::string& bs, const std::string& cs,
                 const std::string& ds) {
    (void)b;
    (void)c;
    t.add_row({name, bs, cs, ds});
  };
  row("ETTR", base.totals.ettr, cand.totals.ettr,
      Table::fmt_pct(base.totals.ettr), Table::fmt_pct(cand.totals.ettr),
      Table::fmt((cand.totals.ettr - base.totals.ettr) * 100.0, 2) + " pp");
  row("goodput fraction", base.totals.goodput_fraction,
      cand.totals.goodput_fraction,
      Table::fmt_pct(base.totals.goodput_fraction),
      Table::fmt_pct(cand.totals.goodput_fraction),
      Table::fmt(
          (cand.totals.goodput_fraction - base.totals.goodput_fraction) *
              100.0,
          2) +
          " pp");
  row("MFU mean", base.totals.mfu_mean, cand.totals.mfu_mean,
      Table::fmt_pct(base.totals.mfu_mean),
      Table::fmt_pct(cand.totals.mfu_mean),
      Table::fmt((cand.totals.mfu_mean - base.totals.mfu_mean) * 100.0, 2) +
          " pp");
  t.add_row({"restarts", Table::fmt_int(base.totals.restarts),
             Table::fmt_int(cand.totals.restarts),
             Table::fmt_int(cand.totals.restarts - base.totals.restarts)});
  for (int c = 0; c < kLostCauseCount; ++c) {
    const TimeNs b = base.totals.lost[static_cast<std::size_t>(c)];
    const TimeNs cd = cand.totals.lost[static_cast<std::size_t>(c)];
    if (b == 0 && cd == 0) continue;
    t.add_row({std::string("lost: ") +
                   lost_cause_name(static_cast<LostCause>(c)),
               format_duration(b), format_duration(cd),
               (cd >= b ? "+" : "-") + format_duration(std::abs(cd - b))});
  }
  out << t.to_string();

  // Worst-regressing interval by goodput (when shapes line up).
  if (base.intervals.size() == cand.intervals.size() &&
      !base.intervals.empty()) {
    std::size_t worst = 0;
    double worst_delta = 0;
    for (std::size_t i = 0; i < base.intervals.size(); ++i) {
      const double delta = cand.intervals[i].goodput_tokens_per_second -
                           base.intervals[i].goodput_tokens_per_second;
      if (delta < worst_delta) {
        worst_delta = delta;
        worst = i;
      }
    }
    if (worst_delta < 0) {
      out << "worst interval: #" << worst << " ("
          << format_duration(base.intervals[worst].begin) << " - "
          << format_duration(base.intervals[worst].end) << "), goodput "
          << Table::fmt(worst_delta / mega(1.0), 2) << "M tokens/s vs base\n";
    }
  } else if (base.intervals.size() != cand.intervals.size()) {
    out << "interval shapes differ: base " << base.intervals.size()
        << ", cand " << cand.intervals.size() << "\n";
  }
  return out.str();
}

// ------------------------------------------------------------------ CLI

std::string ledger_usage() {
  return "  ledger <run.jsonl> [--json] [--no-chart]   render a run ledger\n"
         "  ledger --diff <base.jsonl> <cand.jsonl>    compare two runs\n";
}

namespace {

bool load_ledger(const std::string& path, LedgerSeries& series,
                 std::ostream& err) {
  std::string text;
  if (!diag::read_text_file(path, text)) {
    err << "msdiag: cannot read " << path << '\n';
    return false;
  }
  if (!parse_ledger_jsonl(text, series)) {
    err << "msdiag: malformed ledger artifact " << path << '\n';
    return false;
  }
  if (series.digest != ledger_digest(series)) {
    err << "msdiag: warning: " << path
        << " digest mismatch (artifact edited or truncated?)\n";
  }
  return true;
}

}  // namespace

int ledger_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (!args.empty() && args[0] == "--diff") {
    if (args.size() != 3) {
      err << "usage:\n" << ledger_usage();
      return 1;
    }
    LedgerSeries base, cand;
    if (!load_ledger(args[1], base, err)) return 1;
    if (!load_ledger(args[2], cand, err)) return 1;
    out << ledger_diff(base, cand);
    return 0;
  }
  std::string path;
  bool as_json = false;
  bool chart = true;
  for (const auto& arg : args) {
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--no-chart") {
      chart = false;
    } else if (path.empty() && !arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      err << "usage:\n" << ledger_usage();
      return 1;
    }
  }
  if (path.empty()) {
    err << "usage:\n" << ledger_usage();
    return 1;
  }
  LedgerSeries series;
  if (!load_ledger(path, series, err)) return 1;
  out << (as_json ? to_jsonl(series) : render(series, chart));
  return 0;
}

}  // namespace ms::telemetry
