// Per-step training dashboard (MegaScale §5: the report the production
// dashboards roll per-machine metrics into).
//
// Feed it iteration results (with telemetry-instrumented spans), per-machine
// latency samples, and fault-tolerance run reports; it derives the §5-style
// health view: MFU, exposed vs. overlapped communication time, pipeline
// bubble fraction, per-machine straggler deltas, and heartbeat-derived
// availability — then renders everything as one report table.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/time.h"
#include "diag/blame.h"
#include "diag/heatmap.h"
#include "engine/job.h"
#include "ft/workflow.h"
#include "telemetry/metrics.h"

namespace ms::telemetry {

/// Derived summary of one recorded training step.
struct StepReport {
  int step = 0;
  TimeNs iteration_time = 0;
  double mfu = 0;
  double tokens_per_second = 0;
  /// Wall-clock occupied by communication spans (union across streams)...
  TimeNs comm_total = 0;
  /// ...split into the part hidden under compute and the exposed rest.
  TimeNs comm_overlapped = 0;
  TimeNs comm_exposed = 0;
  /// Mean fraction of the 1F1B window each stage's compute stream idles.
  double bubble_fraction = 0;
  TimeNs data_exposed = 0;
  TimeNs optimizer = 0;
};

/// Outcome of a `msdiag calibrate` run (plain data — the calibration
/// subsystem depends on telemetry, not the other way around). Feed it via
/// record_calibration so the fidelity loop shows up next to throughput.
struct CalibrationSummary {
  bool fit_ok = false;
  double fit_rel_rms = 0;       ///< pooled residual of the parameter fit
  double replay_rel_error = 0;  ///< |sim - trace| / trace after replay
  double replay_tolerance = 0;
  bool replay_within_tolerance = false;
  double gemm_efficiency = 0;       ///< 0 = unfitted
  double attention_efficiency = 0;  ///< 0 = unfitted
  double memory_efficiency = 0;     ///< 0 = unfitted
};

class TrainingDashboard {
 public:
  /// `registry` (optional, not owned): step summaries are mirrored into it
  /// as gauges/histograms so the exporters serve the dashboard's view too.
  explicit TrainingDashboard(MetricsRegistry* registry = nullptr)
      : registry_(registry) {}

  /// Digests one simulated iteration into a StepReport (also returned).
  const StepReport& record_step(const engine::JobConfig& cfg,
                                const engine::IterationResult& result);

  /// Per-machine critical-segment latency (the §5.1 CUDA-event stream).
  void add_machine_sample(int machine, const std::string& phase,
                          double seconds);

  /// Fault-tolerance outcome of the run (heartbeat-derived health).
  void record_health(const ft::RunReport& report);

  /// Critical-path diagnosis of a step (diag::analyze_spans). Blame totals
  /// are mirrored as diag_blame_total{cause,rank[,link]} counters and the
  /// top culprit joins the report table (§5.2).
  void record_diagnosis(const diag::StepDiagnosis& diagnosis);

  /// Calibration outcome (fit residual + replay error). Mirrored as
  /// dashboard_calib_* gauges and rendered as a report section, so a drifting
  /// simulator shows up on the same page as a drifting MFU.
  void record_calibration(const CalibrationSummary& summary);

  const std::vector<StepReport>& steps() const { return steps_; }
  double mean_mfu() const;

  /// Machines whose normalized latency exceeds the median by `threshold`.
  std::vector<int> straggler_machines(double threshold = 0.05) const;
  /// Worst machine's latency delta vs. the fleet median (0 if < 2 machines).
  double worst_straggler_delta() const;

  /// The §5-style report table (throughput, overlap, bubbles, stragglers,
  /// health), ready to print.
  std::string report() const;

 private:
  MetricsRegistry* registry_;
  std::vector<StepReport> steps_;
  diag::PerformanceHeatmap heatmap_;
  std::set<int> machines_;
  bool has_health_ = false;
  ft::RunReport health_;
  bool has_diag_ = false;
  diag::StepDiagnosis diag_;
  bool has_calib_ = false;
  CalibrationSummary calib_;
};

}  // namespace ms::telemetry
