#include "dist/tensor_parallel.h"

#include <cassert>

namespace ms::dist {

namespace {

/// Copies columns [begin, begin+count) of a full [rows, cols] leaf tensor
/// into a fresh leaf tensor (a weight shard owned by one simulated GPU).
Tensor copy_cols(const Tensor& full, int begin, int count) {
  const int rows = full.dim(0), cols = full.dim(1);
  std::vector<float> data(static_cast<std::size_t>(rows) * count);
  for (int i = 0; i < rows; ++i) {
    std::copy_n(full.data() + static_cast<std::size_t>(i) * cols + begin, count,
                &data[static_cast<std::size_t>(i) * count]);
  }
  return Tensor::from(std::move(data), {rows, count}, /*requires_grad=*/true);
}

Tensor copy_rows(const Tensor& full, int begin, int count) {
  const int cols = full.dim(1);
  std::vector<float> data(static_cast<std::size_t>(count) * cols);
  std::copy_n(full.data() + static_cast<std::size_t>(begin) * cols,
              static_cast<std::size_t>(count) * cols, data.data());
  return Tensor::from(std::move(data), {count, cols}, /*requires_grad=*/true);
}

Tensor copy_slice_1d(const Tensor& full, int begin, int count) {
  std::vector<float> data(full.data() + begin, full.data() + begin + count);
  return Tensor::from(std::move(data), {count}, /*requires_grad=*/true);
}

}  // namespace

ColumnParallelLinear::ColumnParallelLinear(const Tensor& full_weight,
                                           const Tensor& full_bias,
                                           int shards) {
  assert(shards >= 1);
  const int out = full_weight.dim(1);
  assert(out % shards == 0);
  const int per = out / shards;
  for (int s = 0; s < shards; ++s) {
    weights_.push_back(copy_cols(full_weight, s * per, per));
    biases_.push_back(copy_slice_1d(full_bias, s * per, per));
  }
}

std::vector<Tensor> ColumnParallelLinear::forward_sharded(const Tensor& x) const {
  std::vector<Tensor> outs;
  outs.reserve(weights_.size());
  for (std::size_t s = 0; s < weights_.size(); ++s) {
    outs.push_back(optim::add(optim::matmul(x, weights_[s]), biases_[s]));
  }
  return outs;
}

Tensor ColumnParallelLinear::forward(const Tensor& x) const {
  return optim::concat_cols(forward_sharded(x));
}

RowParallelLinear::RowParallelLinear(const Tensor& full_weight,
                                     const Tensor& full_bias, int shards)
    : bias_(Tensor::from(
          std::vector<float>(full_bias.data(),
                             full_bias.data() + full_bias.numel()),
          {full_weight.dim(1)}, /*requires_grad=*/true)) {
  assert(shards >= 1);
  const int in = full_weight.dim(0);
  assert(in % shards == 0);
  const int per = in / shards;
  for (int s = 0; s < shards; ++s) {
    weights_.push_back(copy_rows(full_weight, s * per, per));
  }
}

Tensor RowParallelLinear::forward(const Tensor& x) const {
  const int per = weights_.front().dim(0);
  std::vector<Tensor> slices;
  slices.reserve(weights_.size());
  for (std::size_t s = 0; s < weights_.size(); ++s) {
    slices.push_back(
        optim::slice_cols(x, static_cast<int>(s) * per, per));
  }
  return forward_sharded(slices);
}

Tensor RowParallelLinear::forward_sharded(
    const std::vector<Tensor>& x_shards) const {
  assert(x_shards.size() == weights_.size());
  std::vector<Tensor> partials;
  partials.reserve(weights_.size());
  for (std::size_t s = 0; s < weights_.size(); ++s) {
    partials.push_back(optim::matmul(x_shards[s], weights_[s]));
  }
  // The all-reduce of the partial sums, then the (replicated) bias once.
  return optim::add(optim::add_n(partials), bias_);
}

TensorParallelMlp::TensorParallelMlp(const Tensor& fc1_weight,
                                     const Tensor& fc1_bias,
                                     const Tensor& fc2_weight,
                                     const Tensor& fc2_bias, int shards)
    : fc1_(fc1_weight, fc1_bias, shards),
      fc2_(fc2_weight, fc2_bias, shards) {}

Tensor TensorParallelMlp::forward(const Tensor& x) const {
  // Column-parallel up-projection; GeLU applies per shard (no comm);
  // row-parallel down-projection merges with one all-reduce.
  std::vector<Tensor> hidden = fc1_.forward_sharded(x);
  for (auto& h : hidden) h = optim::gelu(h);
  return fc2_.forward_sharded(hidden);
}

}  // namespace ms::dist
