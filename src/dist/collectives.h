// Functional collectives: NCCL semantics over in-memory buffers.
//
// Where ms::collective models the *time* of a collective, this module
// executes its *data movement* for real: the ring all-reduce runs the exact
// per-round plan from collective/plan.h over float buffers, so the plan's
// correctness (and the reduce-then-gather composition) is validated on
// actual data — and the functional parallelism in this directory has true
// NCCL-equivalent building blocks.
#pragma once

#include <vector>

namespace ms::dist {

using Buffer = std::vector<float>;

/// Ring all-reduce (sum): executes collective::ring_all_reduce_plan round
/// by round. All buffers must have equal size divisible by the rank count.
/// Afterwards every buffer holds the elementwise sum.
void ring_all_reduce_sum(std::vector<Buffer*> ranks);

/// Elementwise sum into every buffer (the reference the ring is checked
/// against; also used where the movement order is irrelevant).
void all_reduce_sum(std::vector<Buffer*> ranks);

/// Concatenation all-gather: shards (equal size) -> full buffer.
Buffer all_gather_concat(const std::vector<const Buffer*>& shards);

/// Reduce-scatter (sum): k equal-size inputs -> k shards; shard i holds the
/// i-th slice of the elementwise sum.
std::vector<Buffer> reduce_scatter_sum(const std::vector<const Buffer*>& inputs,
                                       int ranks);

/// Copies rank `root`'s buffer into everyone's.
void broadcast_from(std::vector<Buffer*> ranks, int root);

}  // namespace ms::dist
