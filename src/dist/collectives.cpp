#include "dist/collectives.h"

#include <cassert>

#include "collective/plan.h"

namespace ms::dist {

void ring_all_reduce_sum(std::vector<Buffer*> ranks) {
  const int n = static_cast<int>(ranks.size());
  assert(n >= 1);
  if (n == 1) return;
  const std::size_t size = ranks[0]->size();
  for ([[maybe_unused]] auto* b : ranks) {
    assert(b->size() == size);
  }
  assert(size % static_cast<std::size_t>(n) == 0);
  const std::size_t chunk = size / static_cast<std::size_t>(n);

  const auto plan = collective::ring_all_reduce_plan(
      n, static_cast<Bytes>(size) * static_cast<Bytes>(sizeof(float)));
  const std::size_t reduce_rounds = static_cast<std::size_t>(n - 1);
  for (std::size_t round = 0; round < plan.size(); ++round) {
    const bool reducing = round < reduce_rounds;
    // Steps within a round are concurrent: snapshot the outgoing chunks
    // first so a rank's send is not polluted by what it receives this
    // round.
    std::vector<Buffer> outgoing;
    outgoing.reserve(plan[round].size());
    for (const auto& step : plan[round]) {
      const float* src = ranks[static_cast<std::size_t>(step.src)]->data() +
                         static_cast<std::size_t>(step.chunk) * chunk;
      outgoing.emplace_back(src, src + chunk);
    }
    for (std::size_t i = 0; i < plan[round].size(); ++i) {
      const auto& step = plan[round][i];
      float* dst = ranks[static_cast<std::size_t>(step.dst)]->data() +
                   static_cast<std::size_t>(step.chunk) * chunk;
      const Buffer& payload = outgoing[i];
      if (reducing) {
        for (std::size_t j = 0; j < chunk; ++j) dst[j] += payload[j];
      } else {
        for (std::size_t j = 0; j < chunk; ++j) dst[j] = payload[j];
      }
    }
  }
}

void all_reduce_sum(std::vector<Buffer*> ranks) {
  assert(!ranks.empty());
  const std::size_t size = ranks[0]->size();
  Buffer total(size, 0.0f);
  for (auto* b : ranks) {
    assert(b->size() == size);
    for (std::size_t i = 0; i < size; ++i) total[i] += (*b)[i];
  }
  for (auto* b : ranks) *b = total;
}

Buffer all_gather_concat(const std::vector<const Buffer*>& shards) {
  Buffer out;
  for (const auto* s : shards) {
    out.insert(out.end(), s->begin(), s->end());
  }
  return out;
}

std::vector<Buffer> reduce_scatter_sum(const std::vector<const Buffer*>& inputs,
                                       int ranks) {
  assert(!inputs.empty() && ranks >= 1);
  const std::size_t size = inputs[0]->size();
  assert(size % static_cast<std::size_t>(ranks) == 0);
  const std::size_t chunk = size / static_cast<std::size_t>(ranks);
  std::vector<Buffer> shards(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    Buffer& shard = shards[static_cast<std::size_t>(r)];
    shard.assign(chunk, 0.0f);
    for (const auto* in : inputs) {
      assert(in->size() == size);
      const float* src = in->data() + static_cast<std::size_t>(r) * chunk;
      for (std::size_t j = 0; j < chunk; ++j) shard[j] += src[j];
    }
  }
  return shards;
}

void broadcast_from(std::vector<Buffer*> ranks, int root) {
  assert(root >= 0 && root < static_cast<int>(ranks.size()));
  const Buffer& src = *ranks[static_cast<std::size_t>(root)];
  for (auto* b : ranks) {
    if (b != ranks[static_cast<std::size_t>(root)]) *b = src;
  }
}

}  // namespace ms::dist
