// ZeRO-2 data parallelism, executed functionally (§2, Figure 1).
//
// k model replicas each compute gradients on their slice of the batch; the
// gradients are merged with a REAL reduce-scatter, each replica runs Adam
// on only ITS shard of the optimizer state, and the updated parameters are
// re-assembled with a REAL all-gather. dist_test.cpp proves the result
// identical (to fp32 tolerance) to single-process full-batch training —
// the "no additional communication overhead, same math" property ZeRO-2 is
// chosen for.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/collectives.h"
#include "optim/nn.h"
#include "optim/optimizers.h"

namespace ms::dist {

/// Flattens every parameter (in order) into one buffer; pads with zeros to
/// a multiple of `multiple`.
Buffer flatten_params(const std::vector<optim::Param>& params, int multiple);
Buffer flatten_grads(const std::vector<optim::Param>& params, int multiple);
/// Writes `flat` back into the parameters (ignoring the padding tail).
void unflatten_into_params(const Buffer& flat,
                           std::vector<optim::Param>& params);

class Zero2DataParallel {
 public:
  /// All replicas share the same init seed, so they start bit-identical —
  /// exactly how a DP job is launched.
  Zero2DataParallel(const optim::TinyGptConfig& cfg, int replicas,
                    std::uint64_t init_seed, optim::AdamHyper hyper = {});

  int replicas() const { return static_cast<int>(models_.size()); }
  const optim::TinyGpt& replica(int r) const {
    return models_[static_cast<std::size_t>(r)];
  }

  /// One training step. `batch` must split evenly across replicas; each
  /// replica backpropagates its microbatches with the 1/|batch| global
  /// scale, gradients reduce-scatter, shards update, params all-gather.
  /// Returns the global mean loss.
  double step(const std::vector<std::vector<int>>& batch, float lr);

  /// Flattened parameters of replica r (for equivalence checks).
  Buffer flat_params(int r) const;

  /// Max absolute parameter difference across replicas (must stay ~0: DP
  /// replicas may never diverge).
  double max_replica_divergence() const;

 private:
  std::vector<optim::TinyGpt> models_;
  std::vector<std::vector<optim::Param>> params_;  // per replica
  // Per-replica optimizer shard state (each holds only its 1/k slice).
  std::vector<Buffer> m_, v_;
  std::size_t shard_size_ = 0;
  std::int64_t t_ = 0;
  optim::AdamHyper hyper_;
};

}  // namespace ms::dist
