// Megatron-style tensor parallelism, executed functionally (§2).
//
// The classic sharding: the first GEMM of a block is COLUMN-parallel (each
// shard owns a slice of output features, so the nonlinearity can be applied
// locally), the second is ROW-parallel (each shard owns a slice of input
// features and produces a partial sum, merged by an all-reduce). These
// layers run on the real autograd substrate with one weight shard per
// simulated GPU, and are verified numerically equivalent — values AND
// gradients — to the unsharded computation (dist_test.cpp).
#pragma once

#include <vector>

#include "optim/autograd.h"

namespace ms::dist {

using optim::Tensor;

/// y = concat_cols_i(x @ W_i + b_i): output features sharded.
class ColumnParallelLinear {
 public:
  /// Splits a full [in, out] weight / [out] bias into `shards` leaf tensors
  /// (out % shards == 0).
  ColumnParallelLinear(const Tensor& full_weight, const Tensor& full_bias,
                       int shards);

  Tensor forward(const Tensor& x) const;

  /// Per-shard forward WITHOUT the merging all-gather — for the
  /// shard-local nonlinearity pattern (apply GeLU to this, then feed the
  /// row-parallel layer shard-wise).
  std::vector<Tensor> forward_sharded(const Tensor& x) const;

  const std::vector<Tensor>& weight_shards() const { return weights_; }
  const std::vector<Tensor>& bias_shards() const { return biases_; }
  int shards() const { return static_cast<int>(weights_.size()); }

 private:
  std::vector<Tensor> weights_;  // each [in, out/k]
  std::vector<Tensor> biases_;   // each [out/k]
};

/// y = sum_i(x_i @ W_i) + b: input features sharded; partial outputs merged
/// by an all-reduce (add_n here).
class RowParallelLinear {
 public:
  /// Splits a full [in, out] weight along rows (in % shards == 0); the bias
  /// stays whole (added once after the reduction).
  RowParallelLinear(const Tensor& full_weight, const Tensor& full_bias,
                    int shards);

  /// x is the full [m, in] activation; it is sliced internally (the
  /// "scatter" end of sequence/tensor parallelism).
  Tensor forward(const Tensor& x) const;

  /// Pre-sharded inputs (outputs of a column-parallel layer, one per GPU).
  Tensor forward_sharded(const std::vector<Tensor>& x_shards) const;

  const std::vector<Tensor>& weight_shards() const { return weights_; }
  int shards() const { return static_cast<int>(weights_.size()); }

 private:
  std::vector<Tensor> weights_;  // each [in/k, out]
  Tensor bias_;                  // [out]
};

/// The Megatron MLP: column-parallel up-projection, shard-local GeLU,
/// row-parallel down-projection — one all-reduce per forward, zero
/// communication inside the nonlinearity.
class TensorParallelMlp {
 public:
  TensorParallelMlp(const Tensor& fc1_weight, const Tensor& fc1_bias,
                    const Tensor& fc2_weight, const Tensor& fc2_bias,
                    int shards);
  Tensor forward(const Tensor& x) const;

  const ColumnParallelLinear& fc1() const { return fc1_; }
  const RowParallelLinear& fc2() const { return fc2_; }

 private:
  ColumnParallelLinear fc1_;
  RowParallelLinear fc2_;
};

}  // namespace ms::dist
