#include "dist/data_parallel.h"

#include <cassert>
#include <cmath>

namespace ms::dist {

Buffer flatten_params(const std::vector<optim::Param>& params, int multiple) {
  Buffer flat;
  for (const auto& p : params) {
    flat.insert(flat.end(), p.tensor.data(), p.tensor.data() + p.tensor.numel());
  }
  while (flat.size() % static_cast<std::size_t>(multiple) != 0) {
    flat.push_back(0.0f);
  }
  return flat;
}

Buffer flatten_grads(const std::vector<optim::Param>& params, int multiple) {
  Buffer flat;
  for (const auto& p : params) {
    // grad() materializes zeros if the buffer is missing.
    auto& tensor = const_cast<optim::Tensor&>(p.tensor);
    flat.insert(flat.end(), tensor.grad(), tensor.grad() + tensor.numel());
  }
  while (flat.size() % static_cast<std::size_t>(multiple) != 0) {
    flat.push_back(0.0f);
  }
  return flat;
}

void unflatten_into_params(const Buffer& flat,
                           std::vector<optim::Param>& params) {
  std::size_t offset = 0;
  for (auto& p : params) {
    const auto n = static_cast<std::size_t>(p.tensor.numel());
    assert(offset + n <= flat.size());
    std::copy_n(flat.data() + offset, n, p.tensor.data());
    offset += n;
  }
}

Zero2DataParallel::Zero2DataParallel(const optim::TinyGptConfig& cfg,
                                     int replicas, std::uint64_t init_seed,
                                     optim::AdamHyper hyper)
    : hyper_(hyper) {
  assert(replicas >= 1);
  for (int r = 0; r < replicas; ++r) {
    Rng rng(init_seed);  // identical init across replicas
    models_.emplace_back(cfg, rng);
  }
  for (auto& model : models_) params_.push_back(model.parameters());

  const Buffer flat = flatten_params(params_.front(), replicas);
  shard_size_ = flat.size() / static_cast<std::size_t>(replicas);
  m_.assign(static_cast<std::size_t>(replicas), Buffer(shard_size_, 0.0f));
  v_.assign(static_cast<std::size_t>(replicas), Buffer(shard_size_, 0.0f));
}

double Zero2DataParallel::step(const std::vector<std::vector<int>>& batch,
                               float lr) {
  const int k = replicas();
  assert(batch.size() % static_cast<std::size_t>(k) == 0);
  const std::size_t per_replica = batch.size() / static_cast<std::size_t>(k);
  const float inv_batch = 1.0f / static_cast<float>(batch.size());

  // --- local forward/backward on each replica's slice ---
  double total_loss = 0.0;
  std::vector<Buffer> grads;
  grads.reserve(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    for (auto& p : params_[static_cast<std::size_t>(r)]) p.tensor.zero_grad();
    for (std::size_t i = 0; i < per_replica; ++i) {
      const auto& seq = batch[static_cast<std::size_t>(r) * per_replica + i];
      optim::Tensor loss =
          optim::scale(models_[static_cast<std::size_t>(r)].loss(seq), inv_batch);
      loss.backward();
      total_loss += static_cast<double>(loss.item()) / inv_batch;
    }
    grads.push_back(flatten_grads(params_[static_cast<std::size_t>(r)], k));
  }

  // --- ZeRO-2: gradient reduce-scatter (each replica owns one shard) ---
  std::vector<const Buffer*> grad_ptrs;
  for (const auto& g : grads) grad_ptrs.push_back(&g);
  std::vector<Buffer> grad_shards = reduce_scatter_sum(grad_ptrs, k);

  // --- sharded Adam update ---
  ++t_;
  const float bc1 = 1.0f - std::pow(hyper_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(hyper_.beta2, static_cast<float>(t_));
  Buffer reference = flatten_params(params_.front(), k);
  std::vector<Buffer> param_shards(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    Buffer& shard = param_shards[static_cast<std::size_t>(r)];
    shard.assign(reference.begin() + static_cast<long>(r) * static_cast<long>(shard_size_),
                 reference.begin() + (static_cast<long>(r) + 1) * static_cast<long>(shard_size_));
    Buffer& m = m_[static_cast<std::size_t>(r)];
    Buffer& v = v_[static_cast<std::size_t>(r)];
    const Buffer& g = grad_shards[static_cast<std::size_t>(r)];
    for (std::size_t j = 0; j < shard_size_; ++j) {
      m[j] = hyper_.beta1 * m[j] + (1.0f - hyper_.beta1) * g[j];
      v[j] = hyper_.beta2 * v[j] + (1.0f - hyper_.beta2) * g[j] * g[j];
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      shard[j] -= lr * (m_hat / (std::sqrt(v_hat) + hyper_.eps) +
                        hyper_.weight_decay * shard[j]);
    }
  }

  // --- parameter all-gather, installed on every replica ---
  std::vector<const Buffer*> shard_ptrs;
  for (const auto& s : param_shards) shard_ptrs.push_back(&s);
  const Buffer updated = all_gather_concat(shard_ptrs);
  for (auto& params : params_) {
    unflatten_into_params(updated, params);
  }
  return total_loss / static_cast<double>(batch.size());
}

Buffer Zero2DataParallel::flat_params(int r) const {
  return flatten_params(params_[static_cast<std::size_t>(r)], replicas());
}

double Zero2DataParallel::max_replica_divergence() const {
  double worst = 0.0;
  const Buffer reference = flat_params(0);
  for (int r = 1; r < replicas(); ++r) {
    const Buffer other = flat_params(r);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      worst = std::max(worst,
                       std::fabs(static_cast<double>(reference[i]) - other[i]));
    }
  }
  return worst;
}

}  // namespace ms::dist
