#include "check/audit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace ms::check {

struct Auditor::Impl {
  std::atomic<std::uint64_t> checks{0};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<bool> abort_on_violation{false};

  mutable Mutex mu;
  // Keys are "domain\x1finvariant"; order preserved for snapshot() so the
  // first drift stays at the top of any report.
  std::unordered_map<std::string, std::size_t> index MS_GUARDED_BY(mu);
  std::vector<Violation> tallies MS_GUARDED_BY(mu);
  ViolationSink sink MS_GUARDED_BY(mu);
};

Auditor& Auditor::instance() {
  static Auditor auditor;
  return auditor;
}

Auditor::Impl& Auditor::impl() const {
  static Impl impl;
  return impl;
}

void Auditor::count_check() noexcept {
  impl().checks.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Auditor::report(const char* domain, const char* invariant,
                              std::string message) {
  Impl& im = impl();
  im.violations.fetch_add(1, std::memory_order_relaxed);

  Violation delivered;
  ViolationSink sink;
  {
    MutexLock lock(im.mu);
    std::string key = std::string(domain) + '\x1f' + invariant;
    auto [it, inserted] = im.index.emplace(std::move(key), im.tallies.size());
    if (inserted) {
      im.tallies.push_back(Violation{domain, invariant, "", 0});
    }
    Violation& v = im.tallies[it->second];
    v.message = std::move(message);
    ++v.count;
    delivered = v;
    sink = im.sink;
  }
  if (sink) sink(delivered);
  if (im.abort_on_violation.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "MS_AUDIT violation [%s/%s]: %s\n",
                 delivered.domain.c_str(), delivered.invariant.c_str(),
                 delivered.message.c_str());
    std::abort();
  }
  return delivered.count;
}

std::uint64_t Auditor::checks() const noexcept {
  return impl().checks.load(std::memory_order_relaxed);
}

std::uint64_t Auditor::violations() const noexcept {
  return impl().violations.load(std::memory_order_relaxed);
}

std::uint64_t Auditor::violations(const std::string& domain,
                                  const std::string& invariant) const {
  Impl& im = impl();
  MutexLock lock(im.mu);
  auto it = im.index.find(domain + '\x1f' + invariant);
  return it == im.index.end() ? 0 : im.tallies[it->second].count;
}

std::vector<Violation> Auditor::snapshot() const {
  Impl& im = impl();
  MutexLock lock(im.mu);
  return im.tallies;
}

void Auditor::set_sink(ViolationSink sink) {
  Impl& im = impl();
  MutexLock lock(im.mu);
  im.sink = std::move(sink);
}

void Auditor::set_abort_on_violation(bool abort_on_violation) {
  impl().abort_on_violation.store(abort_on_violation,
                                  std::memory_order_relaxed);
}

void Auditor::reset() {
  Impl& im = impl();
  im.checks.store(0, std::memory_order_relaxed);
  im.violations.store(0, std::memory_order_relaxed);
  MutexLock lock(im.mu);
  im.index.clear();
  im.tallies.clear();
}

}  // namespace ms::check
