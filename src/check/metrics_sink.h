// Bridge from the invariant auditor to the telemetry registry.
//
// Header-only so ms_check itself stays dependency-light (core only) and
// linkable from the sim engine without a cycle through ms_telemetry;
// anything that wants violations exported as metrics already links
// telemetry and can include this.
#pragma once

#include "check/audit.h"
#include "telemetry/metrics.h"

namespace ms::check {

/// Sink that mirrors every violation into
/// `audit_violations_total{domain=..., invariant=...}`. The registry must
/// outlive the sink's installation (detach with set_sink(nullptr) first).
inline ViolationSink metrics_sink(telemetry::MetricsRegistry& registry) {
  return [&registry](const Violation& v) {
    registry
        .counter("audit_violations_total",
                 {{"domain", v.domain}, {"invariant", v.invariant}})
        .add();
  };
}

}  // namespace ms::check
