// Order-sensitive execution digests (determinism made testable).
//
// The engine claims determinism by design: integral time plus FIFO-within-
// timestamp ordering. This folds the claim into a single u64 that CI can
// compare — every executed event contributes (id, timestamp, kind) to an
// FNV-1a accumulator, so two runs of the same scenario produce bit-equal
// digests iff they executed the same events in the same order at the same
// times. Any nondeterminism (hash-map iteration leaking into scheduling,
// uninitialized reads, float drift in a time computation) shows up as a
// digest mismatch long before it shows up as a wrong MFU number.
#pragma once

#include <cstdint>
#include <string_view>

namespace ms::check {

/// Incremental FNV-1a (64-bit). Order-sensitive by construction:
/// fold(a) then fold(b) differs from fold(b) then fold(a).
class Digest {
 public:
  void fold(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      fold_byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }

  void fold(std::int64_t v) noexcept { fold(static_cast<std::uint64_t>(v)); }

  void fold(std::string_view s) noexcept {
    for (char c : s) fold_byte(static_cast<unsigned char>(c));
    fold_byte(0);  // delimit so {"ab","c"} != {"a","bc"}
  }

  std::uint64_t value() const noexcept { return h_; }

  void reset() noexcept { h_ = kOffsetBasis; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  void fold_byte(unsigned char b) noexcept {
    h_ ^= b;
    h_ *= kPrime;
  }

  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace ms::check
