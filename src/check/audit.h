// Runtime invariant auditing (the correctness layer under every number).
//
// The simulation substrate promises properties that no unit test can pin
// down for every workload: the event engine never moves time backwards,
// the flow simulator conserves bytes, switch queues never go negative,
// collective costs are monotone in payload. MS_AUDIT() turns each promise
// into a machine-checked invariant evaluated *during* real runs:
//
//   MS_AUDIT("sim.engine", "time_monotonic", e.t >= now_,
//            "event scheduled into the past");
//
// Violations never abort by default — they are tallied per
// (domain, invariant) in a process-wide Auditor and surfaced through a
// pluggable sink (see metrics_sink.h for the telemetry bridge), so a CI
// job or a test can assert `Auditor::instance().violations() == 0` after
// any scenario, and a production-style run exports them as labeled
// counters next to MFU and comm time.
//
// The whole layer compiles out: configure with -DMS_AUDIT=OFF and every
// MS_AUDIT expands to a dead cast — no branches, no message formatting,
// no Auditor symbols on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ms::check {

/// One failed invariant, as delivered to sinks and snapshots.
struct Violation {
  std::string domain;     // subsystem, e.g. "net.flowsim"
  std::string invariant;  // invariant name, e.g. "byte_conservation"
  std::string message;    // last failure's rendered detail
  std::uint64_t count = 0;  // failures of this (domain, invariant) so far
};

/// Called on every violation (after tallying). May run on any thread.
using ViolationSink = std::function<void(const Violation&)>;

/// Process-wide tally of audit evaluations and failures. Thread-safe:
/// the threaded components (kvstore, shm, ckpt_writer, telemetry) audit
/// from worker threads.
class Auditor {
 public:
  static Auditor& instance();

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Records a failed invariant. Returns the updated per-invariant count.
  std::uint64_t report(const char* domain, const char* invariant,
                       std::string message);

  /// Tallies one evaluated (passing or failing) MS_AUDIT.
  void count_check() noexcept;

  /// Total MS_AUDIT evaluations since construction / reset().
  std::uint64_t checks() const noexcept;
  /// Total failures since construction / reset().
  std::uint64_t violations() const noexcept;
  /// Failures of one specific invariant (0 if never seen).
  std::uint64_t violations(const std::string& domain,
                           const std::string& invariant) const;

  /// Every (domain, invariant) that has failed, with counts and the most
  /// recent message, in first-failure order.
  std::vector<Violation> snapshot() const;

  /// Installs the sink invoked on each violation (e.g. metrics_sink()).
  /// Pass nullptr to detach.
  void set_sink(ViolationSink sink);

  /// When true, a violation aborts the process after reporting — the
  /// debugging mode that turns the first drift into a stack trace.
  void set_abort_on_violation(bool abort_on_violation);

  /// Clears tallies (sink and abort mode survive). Tests isolate with this.
  void reset();

 private:
  Auditor() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace ms::check

// MS_AUDIT_ENABLED is defined (to 1) by the build system unless the
// MS_AUDIT CMake option is OFF.
#if defined(MS_AUDIT_ENABLED) && MS_AUDIT_ENABLED
// `message` is any expression convertible to std::string; it is evaluated
// only on failure, so call sites may format freely.
#define MS_AUDIT(domain, invariant, condition, message)                   \
  do {                                                                    \
    ::ms::check::Auditor::instance().count_check();                       \
    if (!(condition)) {                                                   \
      ::ms::check::Auditor::instance().report((domain), (invariant),      \
                                              (message));                 \
    }                                                                     \
  } while (0)
#else
#define MS_AUDIT(domain, invariant, condition, message) \
  do {                                                  \
    (void)sizeof((condition));                          \
  } while (0)
#endif
