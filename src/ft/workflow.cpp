#include "ft/workflow.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "check/audit.h"
#include "prof/profiler.h"
#include "telemetry/metrics.h"

namespace ms::ft {

DetectionResult detect_fault(const WorkflowConfig& cfg, FaultType type,
                             Rng& rng) {
  const FaultSignature sig = fault_signature(type);
  const TimeNs interval = cfg.detector.heartbeat_interval;
  AnomalyDetector detector(cfg.detector);
  detector.set_metrics(cfg.metrics);

  constexpr int kNode = 0;
  detector.track(kNode, 0);
  // Two healthy beats to establish the RDMA baseline.
  TimeNs t = 0;
  for (int i = 0; i < 2; ++i) {
    t += interval;
    Heartbeat hb;
    hb.node = kNode;
    hb.at = t;
    hb.rdma_gbps = cfg.healthy_rdma_gbps;
    auto alarm = detector.feed(hb);
    assert(!alarm);
    (void)alarm;
  }

  // Fault strikes at a uniform phase inside the heartbeat period.
  const TimeNs fault_at =
      t + static_cast<TimeNs>(rng.uniform() * static_cast<double>(interval));

  if (!sig.explicit_error && !sig.stops_heartbeat && !sig.drops_rdma_traffic) {
    // Fully silent: only the §5.1 performance analysis finds it.
    return {cfg.silent_fault_detect_time, false, "perf-monitor"};
  }

  // Play heartbeats until an alarm fires.
  for (int beat = 1; beat <= 1000; ++beat) {
    const TimeNs beat_at = t + beat * interval;
    if (sig.stops_heartbeat) {
      auto alarms = detector.check_timeouts(beat_at);
      if (!alarms.empty()) {
        return {beat_at - fault_at, true, "heartbeat-timeout"};
      }
      continue;
    }
    Heartbeat hb;
    hb.node = kNode;
    hb.at = beat_at;
    hb.error_status = sig.explicit_error;
    hb.rdma_gbps =
        sig.drops_rdma_traffic ? 0.0 : cfg.healthy_rdma_gbps;
    if (sig.log_keyword[0] != '\0') hb.log_lines.push_back(sig.log_keyword);
    auto alarm = detector.feed(hb);
    if (alarm && !alarm->warning_only) {
      const char* path = "error-status";
      switch (alarm->kind) {
        case AlarmKind::kErrorStatus: path = "error-status"; break;
        case AlarmKind::kLogKeyword: path = "log-keyword"; break;
        case AlarmKind::kRdmaSilence: path = "rdma-monitor"; break;
        case AlarmKind::kHeartbeatTimeout: path = "heartbeat-timeout"; break;
      }
      return {beat_at - fault_at, true, path};
    }
  }
  return {cfg.silent_fault_detect_time, false, "perf-monitor"};
}

RunReport run_robust_training(const WorkflowConfig& cfg, TimeNs duration,
                              const std::vector<FaultEvent>& faults,
                              Rng& rng) {
  MS_PROF_SCOPE("ft.run_robust_training");
  RunReport report;
  report.duration = duration;

  const TimeNs ckpt_stall =
      checkpoint_stall(cfg.checkpoint, cfg.two_stage_checkpoint);
  const TimeNs recovery_read =
      recovery_read_time(cfg.checkpoint, cfg.group_leader_recovery);

  TimeNs now = 0;
  TimeNs progress_since_ckpt = 0;
  // Effective-time accounting closure (audited below): every nanosecond of
  // [0, duration] is either healthy training or in-window incident
  // downtime.
  TimeNs healthy_total = 0;
  TimeNs downtime_in_window = 0;

  auto advance_healthy = [&](TimeNs until) {
    // Healthy training from `now` to `until`, checkpointing on schedule.
    TimeNs up = until - now;
    if (up <= 0) return;
    healthy_total += up;
    TimeNs to_next_ckpt = cfg.checkpoint_interval - progress_since_ckpt;
    while (up >= to_next_ckpt) {
      up -= to_next_ckpt;
      ++report.checkpoints_taken;
      report.checkpoint_stall_total += ckpt_stall;
      progress_since_ckpt = 0;
      to_next_ckpt = cfg.checkpoint_interval;
    }
    progress_since_ckpt += up;
    now = until;
  };

  for (const auto& fault : faults) {
    if (fault.at >= duration) break;
    // Faults landing during a recovery window strike right after resume.
    const TimeNs strike = std::max(fault.at, now);
    if (strike >= duration) break;
    advance_healthy(strike);

    Incident incident;
    incident.fault = fault;

    const DetectionResult detection = detect_fault(cfg, fault.type, rng);
    incident.detect_latency = detection.latency;
    incident.auto_detected = detection.automatic;
    incident.detection_path = detection.path;

    // Diagnostics across the fleet (parallel on all nodes, one suite long).
    const SuiteResult victim_suite = run_diagnostic_suite(
        NodeCondition{true, fault.type}, cfg.suite, rng);
    incident.auto_diagnosed = victim_suite.node_flagged;
    TimeNs diagnose_time = victim_suite.total_duration;
    if (!incident.auto_diagnosed) diagnose_time += cfg.manual_analysis_time;

    // Healthy nodes occasionally fail a test and get evicted too.
    const double fp_suite =
        1.0 - std::pow(1.0 - cfg.suite.false_positive_rate, 4.0);
    for (int n = 0; n < cfg.nodes - 1; ++n) {
      if (rng.chance(fp_suite)) ++incident.false_positive_evictions;
    }

    incident.lost_progress = progress_since_ckpt;
    incident.downtime = incident.detect_latency + diagnose_time +
                        cfg.evict_replenish_time + recovery_read +
                        cfg.reinit_time;

    MS_AUDIT("ft.workflow", "detect_latency_nonnegative",
             incident.detect_latency >= 0,
             "negative detect latency " +
                 std::to_string(incident.detect_latency) + "ns");
    MS_AUDIT("ft.workflow", "lost_progress_bounded_by_interval",
             incident.lost_progress <= cfg.checkpoint_interval,
             "lost " + std::to_string(incident.lost_progress) +
                 "ns of progress with a checkpoint every " +
                 std::to_string(cfg.checkpoint_interval) + "ns");

    now = strike + incident.downtime;
    downtime_in_window += std::min(incident.downtime, duration - strike);
    progress_since_ckpt = 0;  // resumed from the last checkpoint

    report.downtime_total += incident.downtime;
    report.lost_progress_total += incident.lost_progress;
    ++report.restarts;
    if (cfg.metrics != nullptr) {
      auto& m = *cfg.metrics;
      m.counter("ft_incidents_total", {{"path", incident.detection_path}})
          .add();
      m.counter("ft_restarts_total").add();
      m.counter("ft_downtime_seconds_total")
          .add(to_seconds(incident.downtime));
      m.counter("ft_lost_progress_seconds_total")
          .add(to_seconds(incident.lost_progress));
      m.histogram("ft_detect_latency_seconds")
          .observe(to_seconds(incident.detect_latency));
    }
    report.incidents.push_back(incident);
    if (now >= duration) break;
  }
  if (now < duration) advance_healthy(duration);

  if (!report.incidents.empty()) {
    double auto_det = 0, auto_diag = 0;
    TimeNs det_sum = 0, down_sum = 0;
    for (const auto& i : report.incidents) {
      auto_det += i.auto_detected ? 1 : 0;
      auto_diag += i.auto_diagnosed ? 1 : 0;
      det_sum += i.detect_latency;
      down_sum += i.downtime;
    }
    const double n = static_cast<double>(report.incidents.size());
    report.auto_detected_fraction = auto_det / n;
    report.auto_diagnosed_fraction = auto_diag / n;
    report.mean_detect_latency = static_cast<TimeNs>(
        static_cast<double>(det_sum) / n);
    report.mean_downtime =
        static_cast<TimeNs>(static_cast<double>(down_sum) / n);
  }

  // Accounting closure: healthy time plus in-window downtime partitions
  // the run exactly — any gap means the clock advanced unaccounted (the
  // silent-drift failure mode the auditor exists to catch).
  MS_AUDIT("ft.workflow", "effective_time_closure",
           healthy_total + downtime_in_window == duration,
           "healthy " + std::to_string(healthy_total) + "ns + downtime " +
               std::to_string(downtime_in_window) + "ns != duration " +
               std::to_string(duration) + "ns");
  MS_AUDIT("ft.workflow", "checkpoint_stall_closure",
           report.checkpoint_stall_total ==
               static_cast<TimeNs>(report.checkpoints_taken) * ckpt_stall,
           std::to_string(report.checkpoints_taken) + " checkpoints at " +
               std::to_string(ckpt_stall) + "ns each, but stall total is " +
               std::to_string(report.checkpoint_stall_total) + "ns");

  const double wasted =
      static_cast<double>(report.downtime_total + report.lost_progress_total +
                          report.checkpoint_stall_total);
  report.effective_time_ratio =
      1.0 - wasted / static_cast<double>(duration);
  MS_AUDIT("ft.workflow", "effective_time_ratio_bounded",
           report.effective_time_ratio <= 1.0,
           "effective time ratio " +
               std::to_string(report.effective_time_ratio) + " above 1");

  if (cfg.metrics != nullptr) {
    auto& m = *cfg.metrics;
    m.counter("ft_checkpoints_total")
        .add(static_cast<double>(report.checkpoints_taken));
    m.counter("ft_checkpoint_stall_seconds_total")
        .add(to_seconds(report.checkpoint_stall_total));
    m.gauge("ft_effective_time_ratio").set(report.effective_time_ratio);
    m.gauge("ft_auto_detected_fraction").set(report.auto_detected_fraction);
  }
  return report;
}

}  // namespace ms::ft
