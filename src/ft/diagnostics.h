// Self-check diagnostic suite (MegaScale §4.3). See also driver_sim.h for
// the event-driven protocol that invokes it.
//
// Four lightweight tests, run on every node during fault recovery:
//   * Loopback       — RNIC -> {memory, GPU} full-mesh bandwidth: catches
//                      PCIe misconfiguration and degraded intra-host links;
//   * RNIC-to-RNIC   — inter-NIC connectivity/bandwidth on the host:
//                      catches NIC and routing configuration faults;
//   * NCCL all-to-all (intra-node) — GPU communication: catches defective
//                      GPUs, CUDA-level faults and hangs;
//   * NCCL all-reduce (neighbor)   — with machines under the same ToR:
//                      catches inter-node network faults.
// The suite trades execution time against accuracy: each test has a
// per-fault detection probability and a small false-positive rate.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "ft/faults.h"

namespace ms::ft {

struct NodeCondition {
  bool faulty = false;
  FaultType type = FaultType::kCudaError;
};

struct DiagnosticOutcome {
  std::string test;
  TimeNs duration = 0;
  bool passed = true;
};

struct SuiteResult {
  bool node_flagged = false;     // any test failed
  TimeNs total_duration = 0;
  std::vector<DiagnosticOutcome> outcomes;
};

struct SuiteConfig {
  double false_positive_rate = 0.002;  // per test
  TimeNs loopback_duration = seconds(30.0);
  TimeNs rnic_duration = seconds(30.0);
  TimeNs nccl_intra_duration = seconds(60.0);
  TimeNs nccl_neighbor_duration = seconds(60.0);

  TimeNs total_duration() const {
    return loopback_duration + rnic_duration + nccl_intra_duration +
           nccl_neighbor_duration;
  }
};

/// Runs the four tests against a node. Detection probabilities are derived
/// from each test's sensitivity to the fault class; the combined suite
/// sensitivity matches fault_signature(type).diagnostic_detection.
SuiteResult run_diagnostic_suite(const NodeCondition& node,
                                 const SuiteConfig& cfg, Rng& rng);

/// Per-test probability of failing given the fault. Exposed for tests.
double test_sensitivity(const std::string& test, FaultType type);

}  // namespace ms::ft
