#include "ft/driver_sim.h"

#include <cassert>
#include <memory>

#include "diag/flight_recorder.h"

namespace ms::ft {

namespace {

struct NodeState {
  bool faulty = false;
  FaultType type = FaultType::kCudaError;
  TimeNs fault_since = -1;
};

struct SimState {
  const DriverSimConfig* cfg = nullptr;
  sim::Engine* engine = nullptr;
  Rng* rng = nullptr;

  std::vector<NodeState> nodes;
  int spares_available = 0;
  DriverState state = DriverState::kTraining;
  std::unique_ptr<AnomalyDetector> detector;

  DriverSimReport report;
  TimeNs training_entered_at = 0;
  DriverIncident current;  // the incident being handled
  int pending_faulty_node = -1;

  void enter_training() {
    state = DriverState::kTraining;
    training_entered_at = engine->now();
    // Fresh detector view after recovery (§4.1: executors re-register).
    detector = std::make_unique<AnomalyDetector>(cfg->detector);
    detector->set_flight_recorder(cfg->flight);
    for (int n = 0; n < cfg->nodes; ++n) detector->track(n, engine->now());
  }

  void flight_note(int node, const char* kind, std::string detail) {
    if (cfg->flight != nullptr) {
      cfg->flight->record(node, engine->now(), kind, std::move(detail));
    }
  }

  void leave_training() {
    if (state == DriverState::kTraining) {
      report.training_time += engine->now() - training_entered_at;
    }
  }

  void on_alarm(const Alarm& alarm);
  void finish_diagnostics();
  void finish_replacement();
  void finish_restore();
};

void SimState::on_alarm(const Alarm& alarm) {
  if (state != DriverState::kTraining) return;  // already handling one
  leave_training();
  state = DriverState::kSuspended;
  current.alarm_at = engine->now();
  current.alarm_kind = alarm.kind;
  current.node = alarm.node;
  const auto& node = nodes[static_cast<std::size_t>(alarm.node)];
  if (node.faulty) {
    pending_faulty_node = alarm.node;
    current.type = node.type;
    current.fault_at = node.fault_since;
  }
  flight_note(alarm.node, "recovery", "phase=suspend");
  // Begin the diagnostic suite immediately across the fleet.
  state = DriverState::kDiagnosing;
  engine->after(cfg->suite.total_duration(), [this] { finish_diagnostics(); });
}

void SimState::finish_diagnostics() {
  assert(state == DriverState::kDiagnosing);
  // Run the suite against the faulty node's real condition.
  const int victim = pending_faulty_node;
  bool flagged = false;
  if (victim >= 0) {
    const auto result = run_diagnostic_suite(
        NodeCondition{true, nodes[static_cast<std::size_t>(victim)].type},
        cfg->suite, *rng);
    flagged = result.node_flagged;
  }
  current.diagnosed_automatically = flagged;
  flight_note(current.node, "recovery",
              flagged ? "phase=diagnose auto=1" : "phase=diagnose auto=0");
  const TimeNs extra = flagged ? 0 : cfg->manual_analysis_time;
  state = DriverState::kReplacing;
  engine->after(extra + cfg->evict_replenish_time,
                [this] { finish_replacement(); });
}

void SimState::finish_replacement() {
  assert(state == DriverState::kReplacing);
  if (spares_available <= 0) {
    // Spare pool dry: wait for a repaired node (poll each minute).
    if (!current.waited_for_spare) {
      ++report.spare_pool_exhausted_events;
      current.waited_for_spare = true;
    }
    engine->after(minutes(1.0), [this] { finish_replacement(); });
    return;
  }
  --spares_available;
  // The faulty node leaves for repair and returns later.
  if (pending_faulty_node >= 0) {
    nodes[static_cast<std::size_t>(pending_faulty_node)] = NodeState{};
    engine->after(cfg->node_repair_time, [this] { ++spares_available; });
    pending_faulty_node = -1;
  }
  state = DriverState::kRestoring;
  engine->after(cfg->restore_time, [this] { finish_restore(); });
}

void SimState::finish_restore() {
  assert(state == DriverState::kRestoring);
  flight_note(current.node, "recovery", "phase=resume");
  current.resumed_at = engine->now();
  report.incidents.push_back(current);
  current = DriverIncident{};
  enter_training();
}

}  // namespace

DriverSimReport run_driver_sim(const DriverSimConfig& cfg, TimeNs duration,
                               const std::vector<FaultEvent>& faults,
                               Rng& rng) {
  sim::Engine engine;
  SimState sim;
  sim.cfg = &cfg;
  sim.engine = &engine;
  sim.rng = &rng;
  sim.nodes.resize(static_cast<std::size_t>(cfg.nodes));
  sim.spares_available = cfg.spares;
  sim.enter_training();

  // --- fault injection events ---
  for (const auto& fault : faults) {
    if (fault.at >= duration) continue;
    engine.at(fault.at, [&sim, fault] {
      auto& node = sim.nodes[static_cast<std::size_t>(fault.node)];
      if (node.faulty) return;  // node already broken
      node.faulty = true;
      node.type = fault.type;
      node.fault_since = sim.engine->now();
      sim.flight_note(fault.node, "fault",
                      std::string("type=") + fault_name(fault.type));
    });
  }

  // --- executor heartbeats (one chain of events per node) ---
  const TimeNs interval = cfg.detector.heartbeat_interval;
  std::function<void(int, TimeNs)> schedule_beat = [&](int node, TimeNs at) {
    if (at >= duration) return;
    engine.at(at, [&, node, at] {
      const auto& n = sim.nodes[static_cast<std::size_t>(node)];
      const FaultSignature sig =
          n.faulty ? fault_signature(n.type) : FaultSignature{};
      if (!(n.faulty && sig.stops_heartbeat)) {
        Heartbeat hb;
        hb.node = node;
        hb.at = at;
        hb.error_status = n.faulty && sig.explicit_error;
        hb.rdma_gbps = (n.faulty && sig.drops_rdma_traffic)
                           ? 0.0
                           : cfg.healthy_rdma_gbps;
        if (n.faulty && sig.log_keyword && sig.log_keyword[0] != '\0') {
          hb.log_lines.push_back(sig.log_keyword);
        }
        ++sim.report.heartbeats_processed;
        if (sim.state == DriverState::kTraining) {
          if (auto alarm = sim.detector->feed(hb);
              alarm && !alarm->warning_only) {
            sim.on_alarm(*alarm);
          }
        }
      }
      schedule_beat(node, at + interval);
    });
  };
  for (int node = 0; node < cfg.nodes; ++node) {
    schedule_beat(node, interval);
  }

  // --- driver timeout sweeps ---
  std::function<void(TimeNs)> schedule_sweep = [&](TimeNs at) {
    if (at >= duration) return;
    engine.at(at, [&, at] {
      if (sim.state == DriverState::kTraining) {
        for (const auto& alarm : sim.detector->check_timeouts(at)) {
          sim.on_alarm(alarm);
          break;  // handle one incident at a time
        }
      }
      schedule_sweep(at + interval);
    });
  };
  schedule_sweep(interval);

  engine.run_until(duration);
  sim.leave_training();
  if (sim.state != DriverState::kTraining) {
    sim.report.in_flight.push_back(sim.current);
  }

  sim.report.total_time = duration;
  sim.report.engine_digest = engine.digest();
  sim.report.events_executed = engine.executed();
  sim.report.effective_fraction =
      static_cast<double>(sim.report.training_time) /
      static_cast<double>(duration);
  return sim.report;
}

}  // namespace ms::ft
