#include "ft/ckpt_writer.h"

namespace ms::ft {

TwoStageCheckpointWriter::TwoStageCheckpointWriter(
    SnapshotSink sink, std::size_t max_staged,
    std::chrono::microseconds sink_delay_per_mb)
    : sink_(std::move(sink)),
      max_staged_(max_staged),
      sink_delay_per_mb_(sink_delay_per_mb),
      flusher_([this] { flusher_loop(); }) {}

TwoStageCheckpointWriter::~TwoStageCheckpointWriter() { close(); }

bool TwoStageCheckpointWriter::snapshot(std::int64_t step,
                                        const std::vector<float>& state) {
  MutexLock lock(mu_);
  while (!closed_ && staged_.size() >= max_staged_) cv_.wait(mu_);
  if (closed_) return false;
  Snapshot snap;
  snap.step = step;
  snap.state = state;  // the D2H copy (stage 1)
  staged_.push_back(std::move(snap));
  ++taken_;
  cv_.notify_all();
  return true;
}

void TwoStageCheckpointWriter::flush() {
  MutexLock lock(mu_);
  const std::int64_t target = taken_;
  while (persisted_ < target) cv_.wait(mu_);
}

void TwoStageCheckpointWriter::close() {
  {
    MutexLock lock(mu_);
    if (closed_ && !flusher_.joinable()) return;
    closed_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

std::int64_t TwoStageCheckpointWriter::snapshots_taken() const {
  MutexLock lock(mu_);
  return taken_;
}

std::int64_t TwoStageCheckpointWriter::snapshots_persisted() const {
  MutexLock lock(mu_);
  return persisted_;
}

void TwoStageCheckpointWriter::flusher_loop() {
  for (;;) {
    Snapshot snap;
    {
      MutexLock lock(mu_);
      while (!closed_ && staged_.empty()) cv_.wait(mu_);
      if (staged_.empty()) {
        if (closed_) return;
        continue;
      }
      // The staging slot stays OCCUPIED until the write completes — host
      // memory is only reusable after the flush, which is what makes
      // `max_staged` the real back-pressure bound.
      snap = staged_.front();
    }
    // Stage 2: the slow persistent write, off the training thread.
    if (sink_delay_per_mb_.count() > 0) {
      const auto mb = static_cast<std::int64_t>(
          snap.state.size() * sizeof(float) / (1024 * 1024) + 1);
      std::this_thread::sleep_for(sink_delay_per_mb_ * mb);
    }
    sink_(snap);
    {
      MutexLock lock(mu_);
      staged_.pop_front();
      ++persisted_;
    }
    cv_.notify_all();
  }
}

}  // namespace ms::ft
