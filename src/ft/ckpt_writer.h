// Two-stage checkpoint writer — the §4.4 mechanism with real threads.
//
// Stage 1 (blocking, fast): snapshot() copies the training state into a
// host-memory staging buffer and returns immediately; training resumes.
// Stage 2 (background): a flusher thread drains staged snapshots to the
// (slow) persistent sink. Back-pressure: at most `max_staged` snapshots may
// be in flight; snapshot() blocks if the flusher falls behind — exactly the
// failure mode that bounds checkpoint frequency in production.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace ms::ft {

struct Snapshot {
  std::int64_t step = 0;
  std::vector<float> state;
};

/// The persistent sink ("HDFS"): receives completed snapshots in order.
/// Must be thread-safe or externally synchronized; the writer calls it from
/// the flusher thread only.
using SnapshotSink = std::function<void(const Snapshot&)>;

class TwoStageCheckpointWriter {
 public:
  /// `sink_delay_per_mb` emulates the slow distributed-FS write path.
  TwoStageCheckpointWriter(SnapshotSink sink, std::size_t max_staged = 2,
                           std::chrono::microseconds sink_delay_per_mb =
                               std::chrono::microseconds(0));
  ~TwoStageCheckpointWriter();

  TwoStageCheckpointWriter(const TwoStageCheckpointWriter&) = delete;
  TwoStageCheckpointWriter& operator=(const TwoStageCheckpointWriter&) = delete;

  /// Stage 1: copies `state` into the staging area. Blocks only while the
  /// staging area is full (flusher behind). Returns false after close().
  bool snapshot(std::int64_t step, const std::vector<float>& state);

  /// Blocks until everything staged so far has reached the sink.
  void flush();

  /// Flushes and stops the background thread.
  void close();

  std::int64_t snapshots_taken() const;
  std::int64_t snapshots_persisted() const;

 private:
  void flusher_loop();

  SnapshotSink sink_;
  std::size_t max_staged_;
  std::chrono::microseconds sink_delay_per_mb_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Snapshot> staged_ MS_GUARDED_BY(mu_);
  bool closed_ MS_GUARDED_BY(mu_) = false;
  std::int64_t taken_ MS_GUARDED_BY(mu_) = 0;
  std::int64_t persisted_ MS_GUARDED_BY(mu_) = 0;
  std::thread flusher_;
};

}  // namespace ms::ft
