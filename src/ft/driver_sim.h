// Event-driven robust-training simulation (MegaScale §4.1, Figure 5).
//
// Where workflow.h accounts for incidents arithmetically, this module runs
// the driver/executor protocol as an actual event program on the discrete-
// event engine: every executor posts heartbeats on its own period, the
// driver's AnomalyDetector consumes them and sweeps for timeouts, faults
// flip hidden node state mid-flight, and the recovery state machine
// (suspend -> diagnose -> evict -> replenish-from-spares -> restore ->
// resume) advances through scheduled events. A FINITE spare pool is
// modeled: evicted nodes go to repair and return hours later, and if the
// pool runs dry the job waits — the operational risk the arithmetic model
// hides.
#pragma once

#include <vector>

#include "core/rng.h"
#include "ft/diagnostics.h"
#include "ft/faults.h"
#include "ft/monitor.h"
#include "sim/engine.h"

namespace ms::ft {

struct DriverSimConfig {
  int nodes = 16;
  int spares = 2;
  DetectorConfig detector;
  SuiteConfig suite;
  TimeNs evict_replenish_time = minutes(3.0);
  TimeNs restore_time = minutes(2.0);          // checkpoint read + re-init
  TimeNs manual_analysis_time = minutes(30.0);
  /// An evicted node is repaired and returns to the spare pool after this.
  TimeNs node_repair_time = hours(6.0);
  double healthy_rdma_gbps = 150.0;
  /// Optional flight recorder (not owned): fault injections, heartbeats,
  /// alarms and recovery milestones are ring-buffered per node, and every
  /// non-warning alarm freezes a post-mortem dump (§5).
  diag::FlightRecorder* flight = nullptr;
};

enum class DriverState {
  kTraining,
  kSuspended,   // alarm received, waiting to start diagnostics
  kDiagnosing,
  kReplacing,   // evicting + waiting for a spare
  kRestoring,
};

struct DriverIncident {
  TimeNs fault_at = 0;
  FaultType type = FaultType::kCudaError;
  int node = 0;
  TimeNs alarm_at = -1;
  AlarmKind alarm_kind = AlarmKind::kErrorStatus;
  bool diagnosed_automatically = false;
  TimeNs resumed_at = -1;
  bool waited_for_spare = false;
};

struct DriverSimReport {
  std::vector<DriverIncident> incidents;
  /// The incident still being handled when the window closed (resumed_at
  /// stays -1); empty when the run ended in kTraining. Campaign oracles
  /// need it to tell "recovery in progress" from "fault never detected".
  std::vector<DriverIncident> in_flight;
  TimeNs total_time = 0;
  TimeNs training_time = 0;  // time spent in kTraining
  double effective_fraction = 0;
  int spare_pool_exhausted_events = 0;
  std::uint64_t heartbeats_processed = 0;
  /// Order-sensitive digest of the event program (Engine::digest()) plus
  /// the executed-event count: two runs of the same seeded scenario must
  /// agree bit-for-bit. The chaos harness folds this into its outcome
  /// records so replayed failing seeds can be compared exactly.
  std::uint64_t engine_digest = 0;
  std::uint64_t events_executed = 0;
};

/// Runs the protocol for `duration` with the given fault schedule.
DriverSimReport run_driver_sim(const DriverSimConfig& cfg, TimeNs duration,
                               const std::vector<FaultEvent>& faults, Rng& rng);

}  // namespace ms::ft
