// Fast checkpointing and recovery (MegaScale §4.4).
//
// Two-stage checkpointing: each GPU first dumps its on-chip state to host
// memory over PCIe (seconds — the only part that blocks training), then a
// background process flushes host memory to the distributed file system.
// Recovery optimization: all GPU workers in a data-parallel group share the
// same parameter partition, so a single designated reader fetches it from
// HDFS and broadcasts to its peers, cutting the read load by the DP degree.
#pragma once

#include "core/time.h"
#include "core/units.h"

namespace ms::ft {

struct CheckpointSpec {
  /// bf16 parameters resident on one GPU (its pipeline/TP shard).
  Bytes param_bytes_per_gpu = 5'500'000'000;
  /// ZeRO-2 optimizer shard per GPU (fp32 master + Adam moments / dp).
  Bytes optimizer_bytes_per_gpu = 250'000'000;
  int total_gpus = 12288;
  int dp = 192;  ///< data-parallel degree: replication factor of params
  Bandwidth pcie_d2h_per_gpu = gBps(12.5);
  Bandwidth hdfs_write_aggregate = gBps(50.0);
  Bandwidth hdfs_read_aggregate = gBps(50.0);
  /// Network bandwidth for the intra-group broadcast after a leader read.
  Bandwidth broadcast_bw = gBps(22.5);

  Bytes bytes_per_gpu() const {
    return param_bytes_per_gpu + optimizer_bytes_per_gpu;
  }
  /// Unique checkpoint payload: parameters once per DP group + every
  /// optimizer shard.
  Bytes unique_bytes() const {
    return param_bytes_per_gpu * (total_gpus / dp) +
           optimizer_bytes_per_gpu * total_gpus;
  }
};

/// Training stall per checkpoint. Two-stage: only the device-to-host copy
/// blocks. Synchronous baseline: the HDFS write is on the critical path too.
TimeNs checkpoint_stall(const CheckpointSpec& spec, bool two_stage);

/// Background flush duration (second stage) — bounds the max checkpoint
/// frequency.
TimeNs background_flush_time(const CheckpointSpec& spec);

/// Time to load the latest checkpoint on every GPU.
/// Naive: every GPU reads its own partition from HDFS (parameters are read
/// dp times redundantly). Optimized: one reader per DP group + broadcast.
TimeNs recovery_read_time(const CheckpointSpec& spec, bool group_leader_read);

/// Expected training progress lost per fault, given periodic checkpoints:
/// uniformly distributed fault time => half the interval on average.
TimeNs expected_lost_progress(TimeNs checkpoint_interval);

/// Young/Daly optimal checkpoint interval: sqrt(2 * stall * MTBF)
/// minimizes (stall overhead + expected redo) per unit time. With the
/// two-stage writer's sub-second stalls and an hours-scale cluster MTBF,
/// the optimum lands at minutes — the quantitative backing for the paper's
/// "increase the frequency of checkpointing" decision.
TimeNs optimal_checkpoint_interval(TimeNs stall, TimeNs cluster_mtbf);

/// Expected fraction of wall-clock lost to checkpoint stalls plus redo work
/// at a given interval and MTBF (the objective the optimum minimizes).
double checkpoint_overhead_fraction(TimeNs interval, TimeNs stall,
                                    TimeNs cluster_mtbf);

}  // namespace ms::ft
