// Heartbeat stream analysis (MegaScale §4.1-4.2).
//
// Executors send a heartbeat every ~10 s carrying the training-process
// status, recent stdout/stderr lines and RDMA traffic counters. The driver
// raises an alarm when it sees (in priority order):
//   * an explicit error status,
//   * an error keyword in the aggregated logs,
//   * a total collapse of RDMA traffic (the training is silently stuck),
//   * a missing heartbeat (timeout) — the node is hung.
// Significant-but-nonzero traffic fluctuation only produces a warning for
// manual investigation, exactly as §4.2 describes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/time.h"

namespace ms::telemetry {
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::diag {
class FlightRecorder;
}  // namespace ms::diag

namespace ms::ft {

struct Heartbeat {
  int node = 0;
  TimeNs at = 0;
  bool error_status = false;
  double rdma_gbps = 0;  // NIC counters since last beat
  std::vector<std::string> log_lines;
};

enum class AlarmKind {
  kErrorStatus,
  kLogKeyword,
  kRdmaSilence,
  kHeartbeatTimeout,
};

struct Alarm {
  AlarmKind kind = AlarmKind::kErrorStatus;
  int node = 0;
  TimeNs at = 0;
  std::string detail;
  /// Warnings request manual investigation; alarms trigger recovery.
  bool warning_only = false;
};

struct DetectorConfig {
  TimeNs heartbeat_interval = seconds(10.0);
  TimeNs heartbeat_timeout = seconds(35.0);
  /// Traffic below this fraction of the node's moving baseline is
  /// "ceased entirely" -> automatic recovery.
  double rdma_silence_fraction = 0.05;
  /// Traffic below this fraction is abnormal -> warning.
  double rdma_warning_fraction = 0.6;
  /// Cold-start: a node whose traffic is zero from its very first samples
  /// (e.g. its NIC died before the detector re-registered it after a
  /// recovery) never establishes a baseline for the relative checks above.
  /// After this many consecutive zero-traffic samples with no baseline,
  /// the node alarms as silent outright.
  int cold_start_dead_beats = 3;
  std::vector<std::string> error_keywords = {
      "CUDA error", "segmentation fault", "ECC error", "NCCL timeout"};
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(DetectorConfig cfg) : cfg_(std::move(cfg)) {}

  /// Optional telemetry (not owned): heartbeats are counted and every
  /// alarm/warning increments `ft_alarms_total{kind=...,severity=...}` —
  /// the §4.2 dashboard feed.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Optional flight recorder (not owned): every heartbeat and alarm is
  /// recorded, and any non-warning alarm triggers a dump — the §5
  /// post-mortem capture of the last events before the anomaly.
  void set_flight_recorder(diag::FlightRecorder* recorder) {
    flight_ = recorder;
  }

  /// Registers a node so missing heartbeats can be detected from t=0.
  void track(int node, TimeNs now);

  /// Ingests one heartbeat; returns an alarm/warning if it trips a rule.
  std::optional<Alarm> feed(const Heartbeat& hb);

  /// Periodic sweep: nodes whose last heartbeat is older than the timeout.
  std::vector<Alarm> check_timeouts(TimeNs now);

 private:
  struct NodeState {
    TimeNs last_beat = 0;
    double rdma_baseline = -1;  // EWMA of healthy traffic
    int dead_first_samples = 0;  // zero-traffic beats before any baseline
    bool alarmed = false;
  };
  void count_alarm(const Alarm& alarm);

  DetectorConfig cfg_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  diag::FlightRecorder* flight_ = nullptr;
  // Ordered: check_timeouts() iterates this map, and alarm order feeds
  // recovery scheduling, flight-recorder sequence numbers and the engine
  // determinism digests — hash order here was a real nondeterminism bug.
  std::map<int, NodeState> nodes_;
};

}  // namespace ms::ft
