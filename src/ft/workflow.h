// The robust training workflow (MegaScale §4.1, Figure 5).
//
// Driver-side incident handling, end to end:
//   fault -> detection (heartbeat status / log keyword / RDMA monitor /
//   heartbeat timeout, via the real AnomalyDetector) -> suspend ->
//   diagnostic suite on the fleet (§4.3) -> automatic or manual isolation
//   -> Kubernetes-style evict + replenish -> checkpoint recovery (§4.4,
//   group-leader read) -> re-init communicators (§3.5 fast init) -> resume
//   and redo the lost progress.
//
// The run is simulated at incident granularity: healthy stretches advance
// a progress clock and take periodic two-stage checkpoints; every fault
// plays its heartbeat sequence through the detector to obtain the real
// detection path and latency.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "ft/checkpoint.h"
#include "ft/diagnostics.h"
#include "ft/faults.h"
#include "ft/monitor.h"

namespace ms::ft {

struct WorkflowConfig {
  int nodes = 1536;
  /// Optional telemetry (not owned). The workflow counts incidents by
  /// detection path, restarts and checkpoints, accumulates downtime /
  /// lost-progress / stall seconds, records a detect-latency histogram and
  /// publishes the effective-time-ratio gauge; the per-fault detectors it
  /// spawns share the same registry.
  telemetry::MetricsRegistry* metrics = nullptr;
  DetectorConfig detector;
  SuiteConfig suite;
  CheckpointSpec checkpoint;
  TimeNs checkpoint_interval = minutes(30.0);
  bool two_stage_checkpoint = true;
  bool group_leader_recovery = true;
  TimeNs evict_replenish_time = minutes(3.0);
  /// Communicator re-initialization (§3.5: <30 s at 10k+ GPUs when
  /// optimized; ~1000 s naive).
  TimeNs reinit_time = seconds(30.0);
  /// Extra root-causing time when the diagnostic suite misses (§5 tools +
  /// human in the loop).
  TimeNs manual_analysis_time = minutes(30.0);
  /// Silent stragglers are only found by the §5.1 performance monitor
  /// after substantial observation time.
  TimeNs silent_fault_detect_time = hours(4.0);
  double healthy_rdma_gbps = 150.0;
};

struct Incident {
  FaultEvent fault;
  TimeNs detect_latency = 0;
  bool auto_detected = false;
  const char* detection_path = "";
  bool auto_diagnosed = false;
  TimeNs downtime = 0;       // fault -> training resumed
  TimeNs lost_progress = 0;  // work since last checkpoint, to be redone
  int false_positive_evictions = 0;
};

struct RunReport {
  TimeNs duration = 0;
  std::vector<Incident> incidents;
  int restarts = 0;
  int checkpoints_taken = 0;
  TimeNs checkpoint_stall_total = 0;
  TimeNs downtime_total = 0;
  TimeNs lost_progress_total = 0;
  double auto_detected_fraction = 0;
  double auto_diagnosed_fraction = 0;
  TimeNs mean_detect_latency = 0;
  TimeNs mean_downtime = 0;
  /// (duration - downtime - lost - checkpoint stalls) / duration; the
  /// paper reports > 90% in production.
  double effective_time_ratio = 0;
};

/// Plays one fault's heartbeat sequence through a fresh AnomalyDetector and
/// returns {latency after the fault, path, auto?}. Exposed for tests.
struct DetectionResult {
  TimeNs latency = 0;
  bool automatic = false;
  const char* path = "";
};
DetectionResult detect_fault(const WorkflowConfig& cfg, FaultType type,
                             Rng& rng);

RunReport run_robust_training(const WorkflowConfig& cfg, TimeNs duration,
                              const std::vector<FaultEvent>& faults, Rng& rng);

}  // namespace ms::ft
