#include "ft/checkpoint.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ms::ft {

TimeNs checkpoint_stall(const CheckpointSpec& spec, bool two_stage) {
  // Stage 1: every GPU copies its state to pinned host memory in parallel.
  const TimeNs d2h = seconds(static_cast<double>(spec.bytes_per_gpu()) /
                             spec.pcie_d2h_per_gpu);
  if (two_stage) return d2h;
  // Synchronous baseline: training also waits for the HDFS write.
  return d2h + background_flush_time(spec);
}

TimeNs background_flush_time(const CheckpointSpec& spec) {
  return seconds(static_cast<double>(spec.unique_bytes()) /
                 spec.hdfs_write_aggregate);
}

TimeNs recovery_read_time(const CheckpointSpec& spec, bool group_leader_read) {
  if (!group_leader_read) {
    // Every GPU reads its full partition; parameter partitions are fetched
    // dp times redundantly.
    const double total_read =
        static_cast<double>(spec.param_bytes_per_gpu) * spec.total_gpus +
        static_cast<double>(spec.optimizer_bytes_per_gpu) * spec.total_gpus;
    return seconds(total_read / spec.hdfs_read_aggregate);
  }
  // Designated reader per DP group; optimizer shards are unique per GPU and
  // must still be read individually.
  const double leader_read =
      static_cast<double>(spec.param_bytes_per_gpu) * (spec.total_gpus / spec.dp) +
      static_cast<double>(spec.optimizer_bytes_per_gpu) * spec.total_gpus;
  const TimeNs read = seconds(leader_read / spec.hdfs_read_aggregate);
  // Broadcast of the parameter partition within each DP group (pipelined
  // ring: ~payload / bw).
  const TimeNs bcast = seconds(static_cast<double>(spec.param_bytes_per_gpu) /
                               spec.broadcast_bw);
  return read + bcast;
}

TimeNs expected_lost_progress(TimeNs checkpoint_interval) {
  assert(checkpoint_interval >= 0);
  return checkpoint_interval / 2;
}

TimeNs optimal_checkpoint_interval(TimeNs stall, TimeNs cluster_mtbf) {
  assert(stall > 0 && cluster_mtbf > 0);
  const double interval_s =
      std::sqrt(2.0 * to_seconds(stall) * to_seconds(cluster_mtbf));
  return seconds(interval_s);
}

double checkpoint_overhead_fraction(TimeNs interval, TimeNs stall,
                                    TimeNs cluster_mtbf) {
  assert(interval > 0 && cluster_mtbf > 0);
  const double stall_frac = to_seconds(stall) / to_seconds(interval);
  const double redo_frac =
      to_seconds(expected_lost_progress(interval)) / to_seconds(cluster_mtbf);
  return stall_frac + redo_frac;
}

}  // namespace ms::ft
