#include "ft/monitor.h"

#include <cstdio>

#include "diag/flight_recorder.h"
#include "telemetry/metrics.h"

namespace ms::ft {

namespace {
const char* alarm_kind_name(AlarmKind kind) {
  switch (kind) {
    case AlarmKind::kErrorStatus: return "error-status";
    case AlarmKind::kLogKeyword: return "log-keyword";
    case AlarmKind::kRdmaSilence: return "rdma-silence";
    case AlarmKind::kHeartbeatTimeout: return "heartbeat-timeout";
  }
  return "?";
}
}  // namespace

void AnomalyDetector::count_alarm(const Alarm& alarm) {
  if (metrics_ != nullptr) {
    metrics_
        ->counter("ft_alarms_total",
                  {{"kind", alarm_kind_name(alarm.kind)},
                   {"severity", alarm.warning_only ? "warning" : "alarm"}})
        .add();
  }
  if (flight_ != nullptr) {
    flight_->record(alarm.node, alarm.at,
                    alarm.warning_only ? "warning" : "alarm",
                    std::string("kind=") + alarm_kind_name(alarm.kind));
    if (!alarm.warning_only) {
      // The post-mortem moment: freeze the last events of every node.
      flight_->trigger(std::string(alarm_kind_name(alarm.kind)) +
                           " node=" + std::to_string(alarm.node),
                       alarm.at);
    }
  }
}

void AnomalyDetector::track(int node, TimeNs now) {
  nodes_[node].last_beat = now;
}

std::optional<Alarm> AnomalyDetector::feed(const Heartbeat& hb) {
  if (metrics_ != nullptr) metrics_->counter("ft_heartbeats_total").add();
  if (flight_ != nullptr) {
    char detail[48];
    std::snprintf(detail, sizeof(detail), "rdma_gbps=%.2f err=%d",
                  hb.rdma_gbps, hb.error_status ? 1 : 0);
    flight_->record(hb.node, hb.at, "heartbeat", detail);
  }
  NodeState& state = nodes_[hb.node];
  state.last_beat = hb.at;
  if (state.alarmed) return std::nullopt;

  if (hb.error_status) {
    state.alarmed = true;
    Alarm alarm{AlarmKind::kErrorStatus, hb.node, hb.at,
                "training process reported error", false};
    count_alarm(alarm);
    return alarm;
  }
  for (const auto& line : hb.log_lines) {
    for (const auto& keyword : cfg_.error_keywords) {
      if (line.find(keyword) != std::string::npos) {
        state.alarmed = true;
        Alarm alarm{AlarmKind::kLogKeyword, hb.node, hb.at,
                    "log keyword: " + keyword, false};
        count_alarm(alarm);
        return alarm;
      }
    }
  }

  if (state.rdma_baseline < 0) {
    // Only healthy-looking traffic seeds the baseline; a node that is
    // already dark when the detector first sees it (NIC failed before
    // executors re-registered) must not lock in a zero baseline that
    // disables the silence check forever.
    if (hb.rdma_gbps > 0) {
      state.rdma_baseline = hb.rdma_gbps;
    } else if (++state.dead_first_samples >= cfg_.cold_start_dead_beats) {
      state.alarmed = true;
      Alarm alarm{AlarmKind::kRdmaSilence, hb.node, hb.at,
                  "RDMA traffic absent since registration", false};
      count_alarm(alarm);
      return alarm;
    }
    return std::nullopt;
  }
  const double baseline = state.rdma_baseline;
  if (baseline > 0) {
    if (hb.rdma_gbps < cfg_.rdma_silence_fraction * baseline) {
      state.alarmed = true;
      Alarm alarm{AlarmKind::kRdmaSilence, hb.node, hb.at,
                  "RDMA traffic ceased", false};
      count_alarm(alarm);
      return alarm;
    }
    if (hb.rdma_gbps < cfg_.rdma_warning_fraction * baseline) {
      // Significant decline: warn, keep training (§4.2 manual path).
      Alarm alarm{AlarmKind::kRdmaSilence, hb.node, hb.at,
                  "RDMA traffic decline", true};
      count_alarm(alarm);
      return alarm;
    }
  }
  // EWMA update only with healthy-looking samples.
  state.rdma_baseline = 0.8 * state.rdma_baseline + 0.2 * hb.rdma_gbps;
  return std::nullopt;
}

std::vector<Alarm> AnomalyDetector::check_timeouts(TimeNs now) {
  std::vector<Alarm> alarms;
  for (auto& [node, state] : nodes_) {
    if (state.alarmed) continue;
    if (now - state.last_beat > cfg_.heartbeat_timeout) {
      state.alarmed = true;
      alarms.push_back(Alarm{AlarmKind::kHeartbeatTimeout, node, now,
                             "missing heartbeat", false});
      count_alarm(alarms.back());
    }
  }
  return alarms;
}

}  // namespace ms::ft
