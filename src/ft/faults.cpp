#include "ft/faults.h"

#include <cassert>

namespace ms::ft {

const char* fault_name(FaultType type) {
  switch (type) {
    case FaultType::kCudaError: return "cuda-error";
    case FaultType::kSegFault: return "segfault";
    case FaultType::kEccError: return "ecc-error";
    case FaultType::kGpuHang: return "gpu-hang";
    case FaultType::kNicFlap: return "nic-flap";
    case FaultType::kSlowGpu: return "slow-gpu";
  }
  return "?";
}

FaultSignature fault_signature(FaultType type) {
  switch (type) {
    case FaultType::kCudaError:
      return {true, false, false, 0.97, "CUDA error"};
    case FaultType::kSegFault:
      return {true, false, false, 0.97, "segmentation fault"};
    case FaultType::kEccError:
      return {true, false, false, 0.95, "ECC error"};
    case FaultType::kGpuHang:
      return {false, true, true, 0.85, ""};
    case FaultType::kNicFlap:
      return {false, false, true, 0.80, "link down"};
    case FaultType::kSlowGpu:
      // Passes every self-check; needs the CUDA-event monitor (§5.1).
      return {false, false, false, 0.05, ""};
  }
  return {};
}

std::vector<FaultMixEntry> default_fault_mix() {
  return {
      {FaultType::kCudaError, 0.36}, {FaultType::kSegFault, 0.22},
      {FaultType::kEccError, 0.18},  {FaultType::kGpuHang, 0.10},
      {FaultType::kNicFlap, 0.09},   {FaultType::kSlowGpu, 0.05},
  };
}

std::vector<FaultEvent> draw_fault_schedule(TimeNs duration,
                                            TimeNs cluster_mtbf, int nodes,
                                            const std::vector<FaultMixEntry>& mix,
                                            Rng& rng) {
  assert(cluster_mtbf > 0 && nodes > 0 && !mix.empty());
  double total_weight = 0;
  for (const auto& m : mix) total_weight += m.weight;

  std::vector<FaultEvent> events;
  double t = 0;
  const double mtbf_s = to_seconds(cluster_mtbf);
  for (;;) {
    t += rng.exponential(mtbf_s);
    if (seconds(t) >= duration) break;
    FaultEvent ev;
    ev.at = seconds(t);
    ev.node = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(nodes)));
    double u = rng.uniform() * total_weight;
    ev.type = mix.back().type;
    for (const auto& m : mix) {
      if (u < m.weight) {
        ev.type = m.type;
        break;
      }
      u -= m.weight;
    }
    events.push_back(ev);
  }
  return events;
}

}  // namespace ms::ft
