#include "ft/diagnostics.h"

#include <cmath>

namespace ms::ft {

namespace {
const char* kTests[] = {"loopback", "rnic-to-rnic", "nccl-all-to-all",
                        "nccl-all-reduce"};
}

double test_sensitivity(const std::string& test, FaultType type) {
  // Sensitivities chosen so the suite's combined detection probability
  // 1 - prod(1 - s_i) reproduces fault_signature().diagnostic_detection.
  switch (type) {
    case FaultType::kCudaError:
    case FaultType::kSegFault:
      // GPU-side software faults reproduce under NCCL tests.
      if (test == "nccl-all-to-all") return 0.90;
      if (test == "nccl-all-reduce") return 0.70;
      return 0.0;
    case FaultType::kEccError:
      if (test == "nccl-all-to-all") return 0.80;
      if (test == "loopback") return 0.75;
      return 0.0;
    case FaultType::kGpuHang:
      if (test == "nccl-all-to-all") return 0.85;
      return 0.0;
    case FaultType::kNicFlap:
      if (test == "rnic-to-rnic") return 0.60;
      if (test == "nccl-all-reduce") return 0.40;
      if (test == "loopback") return 0.17;
      return 0.0;
    case FaultType::kSlowGpu:
      // Silent stragglers pass bandwidth checks almost always (§5.1: "no
      // evident variations ... under single GPU GEMM micro-benchmarks").
      if (test == "nccl-all-to-all") return 0.05;
      return 0.0;
  }
  return 0.0;
}

SuiteResult run_diagnostic_suite(const NodeCondition& node,
                                 const SuiteConfig& cfg, Rng& rng) {
  SuiteResult result;
  const TimeNs durations[] = {cfg.loopback_duration, cfg.rnic_duration,
                              cfg.nccl_intra_duration,
                              cfg.nccl_neighbor_duration};
  for (int i = 0; i < 4; ++i) {
    DiagnosticOutcome outcome;
    outcome.test = kTests[i];
    outcome.duration = durations[i];
    double fail_p = cfg.false_positive_rate;
    if (node.faulty) {
      fail_p = std::max(fail_p, test_sensitivity(outcome.test, node.type));
    }
    outcome.passed = !rng.chance(fail_p);
    result.node_flagged |= !outcome.passed;
    result.total_duration += outcome.duration;
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace ms::ft
