// Fault taxonomy and injection (MegaScale §4, §6.3).
//
// The fault mix mirrors the paper's production record: most incidents are
// explicit software/hardware errors (CUDA errors, segmentation faults, ECC
// errors) that the robust training framework detects and recovers
// automatically (>90%); the remainder are the nuanced cases — hung hosts,
// NIC flapping, silently slow GPUs — that need the heartbeat timeout, the
// RDMA traffic monitor, or the §5 observability tooling.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"

namespace ms::ft {

enum class FaultType {
  kCudaError,      // explicit error in training process
  kSegFault,       // explicit crash
  kEccError,       // GPU memory error, surfaces in logs
  kGpuHang,        // machine stops heartbeating
  kNicFlap,        // traffic collapses, process alive
  kSlowGpu,        // silent straggler: no error at all
};

const char* fault_name(FaultType type);

/// How the fault manifests to the monitoring plane.
struct FaultSignature {
  bool explicit_error;     ///< heartbeat carries an error status
  bool stops_heartbeat;    ///< detection only via timeout
  bool drops_rdma_traffic; ///< RDMA monitor fires
  /// Probability the §4.3 diagnostic suite pins the faulty node.
  double diagnostic_detection;
  /// Error-log keyword (for the log-filter detector), empty if silent.
  const char* log_keyword;
};
FaultSignature fault_signature(FaultType type);

struct FaultEvent {
  TimeNs at = 0;
  int node = 0;
  FaultType type = FaultType::kCudaError;
};

struct FaultMixEntry {
  FaultType type;
  double weight;
};

/// Production-like mix: mostly explicit errors.
std::vector<FaultMixEntry> default_fault_mix();

/// Draws fault events over [0, duration): exponential inter-arrival with
/// the given cluster-wide MTBF, uniform victim node, mix-weighted type.
std::vector<FaultEvent> draw_fault_schedule(TimeNs duration,
                                            TimeNs cluster_mtbf, int nodes,
                                            const std::vector<FaultMixEntry>& mix,
                                            Rng& rng);

}  // namespace ms::ft
