#include "prof/profiler.h"

#include <algorithm>
#include <bit>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace ms::prof {
namespace internal {
namespace {

// Bounded per-thread self-trace ring: enough for phase-level scopes plus a
// generous slice of per-event records; overflow counts as `dropped` so the
// exporter can say so instead of silently truncating.
constexpr std::size_t kMaxTraceEventsPerThread = 1u << 20;

// Duration -> histogram bucket. 0..3 ns map exactly; above that, 4
// sub-buckets per power of two: bucket = 4 + (msb-2)*4 + (2 bits below the
// msb). Max msb for u64 is 63 -> bucket 251 < kHistBuckets.
std::size_t hist_bucket(std::uint64_t ns) {
  if (ns < 4) return static_cast<std::size_t>(ns);
  const int msb = 63 - std::countl_zero(ns);
  const std::uint64_t sub = (ns >> (msb - 2)) & 3u;
  return 4 + static_cast<std::size_t>(msb - 2) * 4 +
         static_cast<std::size_t>(sub);
}

// Inverse: representative (midpoint) duration for a bucket, used when
// re-bucketing into the coarser fixed-layout HdrHistogram on snapshot.
double hist_bucket_mid(std::size_t b) {
  if (b < 4) return static_cast<double>(b);
  const std::size_t g = (b - 4) / 4;
  const std::size_t sub = (b - 4) % 4;
  const double lo = static_cast<double>((4 + sub) << g);  // (4+sub) * 2^g
  const double width = static_cast<double>(std::size_t{1} << g);
  return lo + width / 2.0;
}

}  // namespace

// Plain (non-atomic) mirror of a Cell, used for the retired-thread
// accumulator and for snapshot merging.
struct CellSums {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t child_ns = 0;
  std::uint64_t min_ns = ~0ull;
  std::uint64_t max_ns = 0;
  std::array<std::uint64_t, kHistBuckets> hist{};

  void accumulate(const Cell& cell) {
    count += cell.count.load(std::memory_order_relaxed);
    total_ns += cell.total_ns.load(std::memory_order_relaxed);
    child_ns += cell.child_ns.load(std::memory_order_relaxed);
    min_ns = std::min(min_ns, cell.min_ns.load(std::memory_order_relaxed));
    max_ns = std::max(max_ns, cell.max_ns.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      hist[b] += cell.hist[b].load(std::memory_order_relaxed);
    }
  }
};

void Cell::record(std::uint64_t dur_ns) {
  count.fetch_add(1, std::memory_order_relaxed);
  total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  std::uint64_t cur = min_ns.load(std::memory_order_relaxed);
  while (dur_ns < cur &&
         !min_ns.compare_exchange_weak(cur, dur_ns,
                                       std::memory_order_relaxed)) {
  }
  cur = max_ns.load(std::memory_order_relaxed);
  while (dur_ns > cur &&
         !max_ns.compare_exchange_weak(cur, dur_ns,
                                       std::memory_order_relaxed)) {
  }
  hist[hist_bucket(dur_ns)].fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread profiler state. Cells are lazily allocated (most threads
/// touch a handful of the kMaxScopes slots); the open-scope stack is
/// owner-thread-only; the trace ring is the one mutex-guarded piece
/// because the snapshot thread drains it.
struct ThreadState {
  std::array<std::atomic<Cell*>, kMaxScopes> cells{};
  std::vector<Cell*> open_stack;  // owner thread only (self-time tracking)
  std::uint32_t tid = 0;

  Mutex trace_mu;
  std::vector<TraceEvent> trace MS_GUARDED_BY(trace_mu);
  std::uint64_t trace_dropped MS_GUARDED_BY(trace_mu) = 0;

  ~ThreadState();
};

namespace {

/// Process-wide profiler registry. Deliberately leaked (never destroyed):
/// thread_local ThreadState destructors may run during shutdown after
/// static destructors would have fired, and a reachable singleton is not a
/// leak to LeakSanitizer.
class Profiler {
 public:
  static Profiler& instance() {
    static Profiler* p = new Profiler;  // leaked by design, see above
    return *p;
  }

  ScopeId register_scope(const char* name) {
    MutexLock lock(mu_);
    const std::string key(name);
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == key) return static_cast<ScopeId>(i + 1);
    }
    if (names_.size() >= kMaxScopes) return kInvalidScope;
    names_.push_back(key);
    return static_cast<ScopeId>(names_.size());
  }

  std::string scope_name(ScopeId id) {
    MutexLock lock(mu_);
    if (id == kInvalidScope || id > names_.size()) return "";
    return names_[id - 1];
  }

  void adopt(ThreadState* t) {
    MutexLock lock(mu_);
    t->tid = next_tid_++;
    threads_.push_back(t);
  }

  void retire(ThreadState* t) {
    MutexLock lock(mu_);
    fold_cells_locked(*t, retired_);
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      if (threads_[i] == t) {
        threads_.erase(threads_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    // Trace records from finished threads survive until drained.
    {
      MutexLock trace_lock(t->trace_mu);
      retired_trace_.insert(retired_trace_.end(), t->trace.begin(),
                            t->trace.end());
      retired_trace_dropped_ += t->trace_dropped;
    }
    for (auto& slot : t->cells) {
      delete slot.load(std::memory_order_relaxed);
    }
  }

  std::vector<ScopeSnapshot> snapshot() {
    MutexLock lock(mu_);
    std::vector<CellSums> sums(names_.size());
    for (std::size_t s = 0; s < names_.size(); ++s) {
      sums[s] = retired_.size() > s ? retired_[s] : CellSums{};
    }
    for (ThreadState* t : threads_) {
      for (std::size_t s = 0; s < names_.size(); ++s) {
        const Cell* cell = t->cells[s + 1].load(std::memory_order_acquire);
        if (cell != nullptr) sums[s].accumulate(*cell);
      }
    }
    std::vector<ScopeSnapshot> out;
    for (std::size_t s = 0; s < names_.size(); ++s) {
      const CellSums& c = sums[s];
      if (c.count == 0) continue;
      ScopeSnapshot snap;
      snap.name = names_[s];
      snap.count = c.count;
      snap.total_ns = c.total_ns;
      snap.self_ns = c.total_ns > c.child_ns ? c.total_ns - c.child_ns : 0;
      snap.min_ns = c.min_ns == ~0ull ? 0 : c.min_ns;
      snap.max_ns = c.max_ns;
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        if (c.hist[b] != 0) snap.hist_ns.add(hist_bucket_mid(b), c.hist[b]);
      }
      out.push_back(std::move(snap));
    }
    return out;
  }

  std::vector<TraceEvent> drain_trace(std::uint64_t* dropped) {
    MutexLock lock(mu_);
    std::vector<TraceEvent> out = std::move(retired_trace_);
    retired_trace_.clear();
    std::uint64_t lost = retired_trace_dropped_;
    retired_trace_dropped_ = 0;
    for (ThreadState* t : threads_) {
      MutexLock trace_lock(t->trace_mu);
      out.insert(out.end(), t->trace.begin(), t->trace.end());
      t->trace.clear();
      lost += t->trace_dropped;
      t->trace_dropped = 0;
    }
    if (dropped != nullptr) *dropped = lost;
    return out;
  }

  void reset() {
    MutexLock lock(mu_);
    retired_.clear();
    retired_trace_.clear();
    retired_trace_dropped_ = 0;
    for (ThreadState* t : threads_) {
      for (std::size_t s = 1; s <= names_.size(); ++s) {
        Cell* cell = t->cells[s].load(std::memory_order_relaxed);
        if (cell == nullptr) continue;
        cell->count.store(0, std::memory_order_relaxed);
        cell->total_ns.store(0, std::memory_order_relaxed);
        cell->child_ns.store(0, std::memory_order_relaxed);
        cell->min_ns.store(~0ull, std::memory_order_relaxed);
        cell->max_ns.store(0, std::memory_order_relaxed);
        for (auto& b : cell->hist) b.store(0, std::memory_order_relaxed);
      }
      MutexLock trace_lock(t->trace_mu);
      t->trace.clear();
      t->trace_dropped = 0;
    }
    internal::g_allocs.store(0, std::memory_order_relaxed);
  }

  void append_trace(ThreadState& t, const TraceEvent& ev) {
    MutexLock trace_lock(t.trace_mu);
    if (t.trace.size() >= kMaxTraceEventsPerThread) {
      ++t.trace_dropped;
      return;
    }
    t.trace.push_back(ev);
  }

 private:
  void fold_cells_locked(ThreadState& t, std::vector<CellSums>& into)
      MS_REQUIRES(mu_) {
    if (into.size() < names_.size()) into.resize(names_.size());
    for (std::size_t s = 0; s < names_.size(); ++s) {
      const Cell* cell = t.cells[s + 1].load(std::memory_order_acquire);
      if (cell != nullptr) into[s].accumulate(*cell);
    }
  }

  Mutex mu_;
  std::vector<std::string> names_ MS_GUARDED_BY(mu_);  // index = id - 1
  std::vector<ThreadState*> threads_ MS_GUARDED_BY(mu_);
  std::vector<CellSums> retired_ MS_GUARDED_BY(mu_);
  std::vector<TraceEvent> retired_trace_ MS_GUARDED_BY(mu_);
  std::uint64_t retired_trace_dropped_ MS_GUARDED_BY(mu_) = 0;
  std::uint32_t next_tid_ MS_GUARDED_BY(mu_) = 0;
};

}  // namespace

ThreadState::~ThreadState() { Profiler::instance().retire(this); }

ThreadState& tls() {
  thread_local ThreadState state;
  thread_local bool adopted = false;
  if (!adopted) {
    Profiler::instance().adopt(&state);
    adopted = true;
  }
  return state;
}

Cell* cell_for(ThreadState& t, ScopeId id) {
  if (id == kInvalidScope || id >= kMaxScopes) return nullptr;
  Cell* cell = t.cells[id].load(std::memory_order_acquire);
  if (cell == nullptr) {
    cell = new Cell;
    // Release so the snapshot thread's acquire load sees a constructed
    // Cell. Only the owner thread stores, so no CAS race to handle.
    t.cells[id].store(cell, std::memory_order_release);
  }
  return cell;
}

void scope_opened(ThreadState& t, Cell* cell) {
  t.open_stack.push_back(cell);
}

void scope_closed(ThreadState& t, Cell* cell, ScopeId id, WallNs start,
                  std::uint64_t dur_ns) {
  t.open_stack.pop_back();
  cell->record(dur_ns);
  if (!t.open_stack.empty()) {
    t.open_stack.back()->child_ns.fetch_add(dur_ns,
                                            std::memory_order_relaxed);
  }
  if (tracing()) {
    Profiler::instance().append_trace(
        t, TraceEvent{id, start, static_cast<WallNs>(dur_ns), t.tid});
  }
}

}  // namespace internal

void set_enabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

void set_tracing(bool on) {
  internal::g_tracing.store(on, std::memory_order_relaxed);
}

ScopeId register_scope(const char* name) {
  return internal::Profiler::instance().register_scope(name);
}

std::string scope_name(ScopeId id) {
  return internal::Profiler::instance().scope_name(id);
}

std::vector<ScopeSnapshot> snapshot() {
  return internal::Profiler::instance().snapshot();
}

std::vector<TraceEvent> drain_trace(std::uint64_t* dropped) {
  return internal::Profiler::instance().drain_trace(dropped);
}

void reset() { internal::Profiler::instance().reset(); }

}  // namespace ms::prof
