// msprof — the simulator self-profiling workflow as a CLI (library half).
//
//   msprof run <workload> [--top K] [--repeat N] [--json out.jsonl]
//                         [--trace out.json] [--prom out.prom]
//       profile a named workload; print the ranked hot-spot table and
//       optionally write the JSONL report, a Perfetto self-trace (track =
//       the simulator process) and a Prometheus exposition snapshot
//   msprof report <profile.jsonl> [--top K]
//       re-render a stored profile artifact
//   msprof diff <base.jsonl> <cand.jsonl> [--top K]
//       compare two profiles scope-by-scope (the before/after view for
//       ROADMAP item-2 hot-loop work)
//   msprof overhead [--workload W] [--repeat N] [--budget F]
//       measure the enabled-vs-dormant cost of MS_PROF on a workload;
//       exits nonzero when it exceeds the budget (default 3%)
//   msprof list
//       named workloads
//
// The entry point takes argv-style strings and writes to caller-supplied
// streams — tests drive it exactly like the shell does (msdiag pattern).
//
// The workload functions are public so bench/micro_engine.cpp runs the
// EXACT code `msprof run micro_engine` profiles — the gated baseline and
// the profiler agree on what "the engine hot loop" means.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ms::prof {

/// Deterministic outcome of one workload run (wall time excluded on
/// purpose: everything here must be bit-identical run to run).
struct WorkloadResult {
  std::uint64_t events = 0;          // engine events executed
  std::uint64_t scheduled = 0;       // event ids issued
  std::uint64_t cancelled = 0;       // events tombstoned before firing
  std::uint64_t tombstone_pops = 0;  // heap pops wasted on tombstones
  std::uint64_t peak_queue = 0;      // queue-depth high-water mark
  std::uint64_t engine_digest = 0;   // sim::Engine execution digest
};

/// The micro_engine workload: pure sim::Engine churn with three phases —
/// self-rescheduling chains (micro.churn), a deep pre-seeded queue
/// (micro.fanout) and a cancel-heavy pattern (micro.cancel). This is the
/// ROADMAP item-2 baseline workload: BENCH_micro_engine.json gates its
/// events/sec and allocations/event.
struct MicroEngineConfig {
  int chains = 8;            // concurrent self-rescheduling chains
  int chain_events = 150000;  // events per chain
  int fanout_events = 300000;  // pre-seeded queue depth
  int cancel_events = 200000;  // scheduled then half cancelled
};
WorkloadResult run_micro_engine(const MicroEngineConfig& cfg = {});

/// One steady-state MegaScale step at Figure-11 scale (12288 GPUs).
WorkloadResult run_fig11_step();

/// The Figure-11 production-run pipeline: steady step, fault-schedule
/// draw, robust-training replay, run ledger, aggregation-tree flush —
/// each phase under its own fig11.* profiler scope.
WorkloadResult run_fig11_production();

/// Names accepted by run_workload / `msprof run` / `msprof overhead`.
std::vector<std::string> workload_names();

/// Runs a workload by name. Returns false for an unknown name.
bool run_workload(const std::string& name, WorkloadResult& out);

/// Runs one msprof command. Returns a process exit code (0 = success,
/// 1 = bad usage / failed load / budget exceeded).
int msprof_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

/// Usage text (also printed on bad invocations).
std::string msprof_usage();

}  // namespace ms::prof
