#include "prof/msprof.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>

#include "bench/common.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/time.h"
#include "core/wallclock.h"
#include "engine/job.h"
#include "ft/workflow.h"
#include "net/ccsim_multi.h"
#include "net/fabric/observatory.h"
#include "prof/profiler.h"
#include "prof/report.h"
#include "prof/telemetry_bridge.h"
#include "sim/engine.h"
#include "telemetry/aggregator.h"
#include "telemetry/exporters.h"
#include "telemetry/ledger.h"
#include "telemetry/metrics.h"
#include "telemetry/sketch.h"

namespace ms::prof {

namespace {

// Figure-11 shape (mirrors bench/fig11_production_run.cpp).
constexpr int kFig11Gpus = 12288;
constexpr int kFig11Batch = 6144;

WorkloadResult result_from(const sim::Engine& eng) {
  WorkloadResult r;
  r.events = eng.executed();
  r.scheduled = eng.scheduled();
  r.cancelled = eng.cancelled();
  r.tombstone_pops = eng.tombstone_pops();
  r.peak_queue = eng.peak_queue_size();
  r.engine_digest = eng.digest();
  return r;
}

}  // namespace

WorkloadResult run_micro_engine(const MicroEngineConfig& cfg) {
  sim::Engine eng;

  // Phase 1: self-rescheduling chains — the steady-state DES pattern
  // (every handler schedules its successor; queue stays shallow).
  {
    MS_PROF_SCOPE("micro.churn");
    struct Chain {
      sim::Engine* eng = nullptr;
      int remaining = 0;
      std::function<void()> tick;
    };
    std::vector<std::unique_ptr<Chain>> chains;
    for (int c = 0; c < cfg.chains; ++c) {
      chains.push_back(std::make_unique<Chain>());
      Chain* ch = chains.back().get();
      ch->eng = &eng;
      ch->remaining = cfg.chain_events;
      ch->tick = [ch] {
        if (--ch->remaining > 0) ch->eng->after(1, ch->tick);
      };
      eng.after(1, ch->tick);
    }
    eng.run();
  }

  // Phase 2: fan-out — a deep pre-seeded queue (worst-case heap depth).
  {
    MS_PROF_SCOPE("micro.fanout");
    const TimeNs base = eng.now();
    for (int i = 0; i < cfg.fanout_events; ++i) {
      eng.at(base + 1 + i, [] {});
    }
    eng.run();
  }

  // Phase 3: cancel-heavy — every other event tombstoned, so the run
  // pays the pop-and-skip price of O(1) cancellation.
  {
    MS_PROF_SCOPE("micro.cancel");
    const TimeNs base = eng.now();
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(cfg.cancel_events));
    for (int i = 0; i < cfg.cancel_events; ++i) {
      ids.push_back(eng.at(base + 1 + i, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) eng.cancel(ids[i]);
    eng.run();
  }

  return result_from(eng);
}

WorkloadResult run_fig11_step() {
  MS_PROF_SCOPE("fig11.steady_step");
  auto job = bench::megascale_175b(kFig11Gpus, kFig11Batch);
  const auto fold = bench::run_with_cluster(job);
  (void)fold;
  return {};
}

WorkloadResult run_fig11_production() {
  const TimeNs duration = days(56.0);
  const TimeNs mtbf = hours(9.0);
  telemetry::MetricsRegistry registry;

  engine::JobConfig job;
  engine::StragglerFold fold;
  {
    MS_PROF_SCOPE("fig11.steady_step");
    job = bench::megascale_175b(kFig11Gpus, kFig11Batch);
    job.metrics = &registry;
    fold = bench::run_with_cluster(job);
  }

  ft::WorkflowConfig wf;
  std::vector<ft::FaultEvent> fails;
  {
    MS_PROF_SCOPE("fig11.fault_schedule");
    wf.nodes = kFig11Gpus / 8;
    wf.metrics = &registry;
    Rng fault_rng(0xF11);
    fails = ft::draw_fault_schedule(duration, mtbf, wf.nodes,
                                    ft::default_fault_mix(), fault_rng);
  }

  ft::RunReport report;
  {
    MS_PROF_SCOPE("fig11.ft_replay");
    Rng run_rng(0xF12);
    report = ft::run_robust_training(wf, duration, fails, run_rng);
  }

  {
    MS_PROF_SCOPE("fig11.ledger");
    telemetry::LedgerConfig lcfg;
    lcfg.duration = duration;
    lcfg.interval = hours(6.0);
    telemetry::RunLedger ledger(lcfg);
    telemetry::SteadyState steady;
    steady.step_time = fold.iteration_time;
    steady.mfu = fold.mfu;
    steady.tokens_per_second =
        job.tokens_per_iteration() / to_seconds(fold.iteration_time);
    ledger.set_steady_state(steady);
    ledger.ingest(report, wf.checkpoint_interval);
    const auto series = ledger.finalize();
    (void)series;
  }

  {
    MS_PROF_SCOPE("fig11.agg_tree");
    telemetry::AggTreeConfig acfg;
    acfg.ranks = kFig11Gpus;
    acfg.ranks_per_host = job.cluster.gpus_per_node;
    acfg.hosts_per_pod = 32;
    acfg.cluster = job.cluster;
    acfg.network_efficiency = job.network_efficiency;
    telemetry::AggregationTree tree(acfg);
    const auto rank_sketch =
        telemetry::SketchSnapshot::from(registry.snapshot());
    // Mirror the bench: the host leader rank ships the fabric observatory
    // sketch next to its rank metrics (see bench/fig11_production_run.cpp).
    net::fabric::FabricObservatory fabric_obs;
    net::MultiCcParams fparams = net::victim_params(8);
    fparams.observatory = &fabric_obs;
    net::run_multi_cc_sim(fparams,
                          [] { return std::make_unique<net::Dcqcn>(); });
    auto leader_sketch = rank_sketch;
    leader_sketch.merge(fabric_obs.sketch());
    for (int r = 0; r < acfg.ranks; ++r) {
      tree.submit(
          r, r % acfg.ranks_per_host == 0 ? leader_sketch : rank_sketch);
    }
    const auto flush = tree.flush();
    (void)flush;
    // Steady-state flush intervals after the cold full flush: a rank only
    // re-submits when its sketch content changed, so each interval sees a
    // sparse dirty set (1/32 of hosts here) and the tree's dirty-subtree
    // short-circuit skips the rest.
    for (int interval = 1; interval <= 4; ++interval) {
      for (int host = interval % 32; host < tree.hosts(); host += 32) {
        tree.submit(host * acfg.ranks_per_host, leader_sketch);
      }
      const auto inc = tree.flush();
      (void)inc;
    }
  }
  return {};
}

std::vector<std::string> workload_names() {
  return {"micro_engine", "fig11_step", "fig11_production_run"};
}

bool run_workload(const std::string& name, WorkloadResult& out) {
  if (name == "micro_engine") {
    out = run_micro_engine();
    return true;
  }
  if (name == "fig11_step") {
    out = run_fig11_step();
    return true;
  }
  if (name == "fig11_production_run") {
    out = run_fig11_production();
    return true;
  }
  return false;
}

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

bool load_report(const std::string& path, ProfileReport& report,
                 std::ostream& err) {
  std::string text;
  if (!read_file(path, text)) {
    err << "msprof: cannot read " << path << "\n";
    return false;
  }
  std::string problem;
  if (!parse_jsonl(text, report, &problem)) {
    err << "msprof: " << path << ": " << problem << "\n";
    return false;
  }
  return true;
}

/// Engine events fired during the profiled window, recovered from the
/// engine's own attribution scopes (workloads that drive sim::Engine
/// indirectly cannot reach the instance to ask it).
std::uint64_t events_from_scopes(const ProfileReport& report) {
  std::uint64_t events = 0;
  for (const ScopeStats& s : report.scopes) {
    if (s.name == "engine.event" || s.name.rfind("event.", 0) == 0) {
      events += s.count;
    }
  }
  return events;
}

int run_usage(std::ostream& err) {
  err << "usage: msprof run <workload> [--top K] [--repeat N]\n"
         "                  [--json out.jsonl] [--trace out.json] [--prom "
         "out.prom]\n";
  return 1;
}

int run_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  std::string workload;
  std::string json_path, trace_path, prom_path;
  std::size_t top_k = 20;
  int repeat = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const char* {
      return (i + 1 < args.size()) ? args[++i].c_str() : nullptr;
    };
    if (arg == "--top") {
      const char* v = value();
      if (!v) return run_usage(err);
      top_k = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--repeat") {
      const char* v = value();
      if (!v) return run_usage(err);
      repeat = std::atoi(v);
    } else if (arg == "--json") {
      const char* v = value();
      if (!v) return run_usage(err);
      json_path = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (!v) return run_usage(err);
      trace_path = v;
    } else if (arg == "--prom") {
      const char* v = value();
      if (!v) return run_usage(err);
      prom_path = v;
    } else if (workload.empty() && !arg.empty() && arg[0] != '-') {
      workload = arg;
    } else {
      return run_usage(err);
    }
  }
  if (workload.empty() || repeat < 1) return run_usage(err);

  reset();
  set_enabled(true);
  if (!trace_path.empty()) set_tracing(true);
  WorkloadResult result;
  const WallNs t0 = wallclock_ns();
  for (int r = 0; r < repeat; ++r) {
    if (!run_workload(workload, result)) {
      set_enabled(false);
      set_tracing(false);
      err << "msprof: unknown workload '" << workload
          << "' (try `msprof list`)\n";
      return 1;
    }
  }
  const WallNs wall = wallclock_ns() - t0;
  set_enabled(false);
  set_tracing(false);

  ProfileReport report = capture(workload, wall, 0);
  report.events = result.events != 0
                      ? result.events * static_cast<std::uint64_t>(repeat)
                      : events_from_scopes(report);
  out << report.render(top_k);
  char digest_hex[20];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(report.digest()));
  out << "profile digest: 0x" << digest_hex << " (structural: scope names + "
      << "counts only)\n";
  if (result.scheduled != 0) {
    out << "engine: scheduled "
        << Table::fmt_int(static_cast<long long>(result.scheduled))
        << " | executed "
        << Table::fmt_int(static_cast<long long>(result.events))
        << " | cancelled "
        << Table::fmt_int(static_cast<long long>(result.cancelled))
        << " | tombstone pops "
        << Table::fmt_int(static_cast<long long>(result.tombstone_pops))
        << " | peak queue "
        << Table::fmt_int(static_cast<long long>(result.peak_queue)) << "\n";
  }

  int failures = 0;
  if (!json_path.empty()) {
    if (write_file(json_path, report.to_jsonl())) {
      out << "wrote " << json_path << " (profile JSONL)\n";
    } else {
      err << "msprof: cannot write " << json_path << "\n";
      ++failures;
    }
  }
  if (!trace_path.empty()) {
    std::uint64_t dropped = 0;
    const auto events = drain_trace(&dropped);
    if (write_file(trace_path, to_chrome_trace(events, dropped))) {
      out << "wrote " << trace_path << " (" << events.size()
          << " self-trace spans";
      if (dropped != 0) out << ", " << dropped << " dropped";
      out << "; load in ui.perfetto.dev)\n";
    } else {
      err << "msprof: cannot write " << trace_path << "\n";
      ++failures;
    }
  }
  if (!prom_path.empty()) {
    telemetry::MetricsRegistry registry;
    export_profile(report, registry);
    if (write_file(prom_path, telemetry::prometheus_text(registry.snapshot()))) {
      out << "wrote " << prom_path << " (Prometheus exposition)\n";
    } else {
      err << "msprof: cannot write " << prom_path << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int report_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  std::string path;
  std::size_t top_k = 20;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top" && i + 1 < args.size()) {
      top_k = static_cast<std::size_t>(std::atoi(args[++i].c_str()));
    } else if (path.empty()) {
      path = args[i];
    } else {
      err << "usage: msprof report <profile.jsonl> [--top K]\n";
      return 1;
    }
  }
  if (path.empty()) {
    err << "usage: msprof report <profile.jsonl> [--top K]\n";
    return 1;
  }
  ProfileReport report;
  if (!load_report(path, report, err)) return 1;
  out << report.render(top_k);
  return 0;
}

int diff_main(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  std::vector<std::string> paths;
  std::size_t top_k = 20;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top" && i + 1 < args.size()) {
      top_k = static_cast<std::size_t>(std::atoi(args[++i].c_str()));
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 2) {
    err << "usage: msprof diff <base.jsonl> <cand.jsonl> [--top K]\n";
    return 1;
  }
  ProfileReport base, cand;
  if (!load_report(paths[0], base, err)) return 1;
  if (!load_report(paths[1], cand, err)) return 1;
  out << render_diff(base, cand, top_k);
  return 0;
}

int overhead_main(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  std::string workload = "fig11_production_run";
  int repeat = 3;
  double budget = 0.03;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const char* {
      return (i + 1 < args.size()) ? args[++i].c_str() : nullptr;
    };
    if (arg == "--workload") {
      const char* v = value();
      if (!v) return 1;
      workload = v;
    } else if (arg == "--repeat") {
      const char* v = value();
      if (!v) return 1;
      repeat = std::atoi(v);
    } else if (arg == "--budget") {
      const char* v = value();
      if (!v) return 1;
      budget = std::atof(v);
    } else {
      err << "usage: msprof overhead [--workload W] [--repeat N] [--budget "
             "F]\n";
      return 1;
    }
  }
  if (repeat < 1) repeat = 1;

  WorkloadResult result;
  if (!run_workload(workload, result)) {  // also serves as the warm-up run
    err << "msprof: unknown workload '" << workload
        << "' (try `msprof list`)\n";
    return 1;
  }

  // Alternate dormant/enabled rounds (instead of two blocks) so slow host
  // drift hits both sides equally; compare best-of-N, the standard way to
  // estimate the cost floor under scheduling noise.
  WallNs best_off = std::numeric_limits<WallNs>::max();
  WallNs best_on = std::numeric_limits<WallNs>::max();
  std::uint64_t digest_off = 0, digest_on = 0;
  for (int r = 0; r < repeat; ++r) {
    set_enabled(false);
    WallNs t0 = wallclock_ns();
    run_workload(workload, result);
    best_off = std::min(best_off, wallclock_ns() - t0);
    digest_off = result.engine_digest;

    set_enabled(true);
    reset();
    t0 = wallclock_ns();
    run_workload(workload, result);
    best_on = std::min(best_on, wallclock_ns() - t0);
    digest_on = result.engine_digest;
  }
  set_enabled(false);

  const double overhead =
      best_off > 0 ? static_cast<double>(best_on - best_off) /
                         static_cast<double>(best_off)
                   : 0.0;
  constexpr double kNsPerMs = 1'000'000.0;
  out << "profiler overhead on " << workload << " (best of " << repeat
      << "):\n"
      << "  dormant " << Table::fmt(static_cast<double>(best_off) / kNsPerMs, 2)
      << " ms | enabled "
      << Table::fmt(static_cast<double>(best_on) / kNsPerMs, 2) << " ms | "
      << "overhead " << Table::fmt_pct(overhead, 2) << " (budget "
      << Table::fmt_pct(budget, 2) << ")\n";
  if (digest_off != digest_on) {
    err << "msprof: FAIL — engine digest changed with profiling enabled "
           "(0x"
        << std::hex << digest_off << " vs 0x" << digest_on << std::dec
        << ")\n";
    return 1;
  }
  if (digest_off != 0) {
    out << "  engine digest identical with profiling on/off (0x" << std::hex
        << digest_off << std::dec << ")\n";
  }
  if (overhead > budget) {
    err << "msprof: FAIL — overhead " << Table::fmt_pct(overhead, 2)
        << " exceeds budget " << Table::fmt_pct(budget, 2) << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

std::string msprof_usage() {
  std::string names;
  for (const std::string& n : workload_names()) {
    if (!names.empty()) names += " | ";
    names += n;
  }
  return "msprof — simulator self-profiling (where do the simulator's own "
         "nanoseconds go?)\n"
         "  msprof run <workload> [--top K] [--repeat N] [--json out.jsonl]\n"
         "                        [--trace out.json] [--prom out.prom]\n"
         "  msprof report <profile.jsonl> [--top K]\n"
         "  msprof diff <base.jsonl> <cand.jsonl> [--top K]\n"
         "  msprof overhead [--workload W] [--repeat N] [--budget F]\n"
         "  msprof list\n"
         "  workloads: " +
         names + "\n";
}

int msprof_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty() || args.front() == "--help" || args.front() == "-h") {
    err << msprof_usage();
    return args.empty() ? 1 : 0;
  }
  const std::string& cmd = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "run") return run_main(rest, out, err);
  if (cmd == "report") return report_main(rest, out, err);
  if (cmd == "diff") return diff_main(rest, out, err);
  if (cmd == "overhead") return overhead_main(rest, out, err);
  if (cmd == "list") {
    for (const std::string& n : workload_names()) out << n << "\n";
    return 0;
  }
  err << "msprof: unknown command '" << cmd << "'\n" << msprof_usage();
  return 1;
}

}  // namespace ms::prof
