// Host-side self-profiling: where do the simulator's OWN nanoseconds go?
//
// Everything else in this repository measures the *simulated* cluster; this
// subsystem measures the simulator process so the ROADMAP item-2 hot-loop
// rebuild (≥10× engine) has a before-picture and a harness. Two layers,
// both compile-out-able in the MS_AUDIT style:
//
//   1. Scoped hot-path timers.  `MS_PROF_SCOPE("engine.pop")` registers the
//      scope once per call site (magic static) and times the enclosing
//      block with the sanctioned monotonic clock (core/wallclock.h).
//      Samples aggregate lock-free into per-thread cells — count / total /
//      min / max / child-time plus a 2-bit-mantissa log2 histogram — and
//      merge on snapshot() into the fixed-layout core HdrHistogram, the
//      same mergeable sketch the telemetry registry speaks.
//
//   2. Counters for the event-allocation path (prof::count_alloc) and an
//      optional self-trace ring: when tracing is on, every closed scope
//      appends an (id, start, dur, tid) record, exported by prof/report.h
//      as a Perfetto/Chrome trace whose track is the simulator process.
//
// Cost model (pinned by `msprof overhead` and tests/prof_test.cpp):
//   - MS_PROF=OFF      : macros expand to nothing; zero code, zero data.
//   - ON but disabled  : one relaxed atomic load + branch per scope. This
//                        is the default state — benches and tests run with
//                        the profiler dormant unless they opt in.
//   - ON and enabled   : two wallclock reads + a handful of relaxed
//                        atomic RMWs per scope (<3% on fig11, budgeted in
//                        DESIGN.md).
//
// Determinism: the profiler observes, never steers. No simulated timestamp
// may depend on a WallNs; the digest-invariance tests (prof on/off/absent
// produce bit-identical engine digests) enforce it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/wallclock.h"

namespace ms::prof {

/// Interned scope identifier. 0 is "invalid / not a scope"; real ids are
/// 1..kMaxScopes and index directly into the per-thread cell arrays.
using ScopeId = std::uint32_t;
inline constexpr ScopeId kInvalidScope = 0;

/// Hard cap on distinct scope names. Scope registration past the cap
/// returns kInvalidScope (timers become no-ops) rather than aborting —
/// a profiler must never take the process down.
inline constexpr std::size_t kMaxScopes = 512;

/// Log2-with-2-bit-mantissa duration histogram: 4 exact buckets for
/// 0..3 ns, then 4 sub-buckets per power of two (≤25% relative error per
/// bucket, re-bucketed into the ~7%-error HdrHistogram on snapshot).
inline constexpr std::size_t kHistBuckets = 256;

namespace internal {
// Master runtime switch. Starts false: a binary built with MS_PROF=ON but
// never opting in pays one relaxed load + branch per scope and nothing
// else. Relaxed is correct — the flag gates measurement, not data.
inline std::atomic<bool> g_enabled{false};
// Self-trace capture switch (independent of g_enabled so aggregate
// profiling does not pay the ring-append unless a trace was asked for).
inline std::atomic<bool> g_tracing{false};
// Allocation counter for the event-allocation path (sim::Engine::at).
inline std::atomic<std::uint64_t> g_allocs{0};
}  // namespace internal

/// Runtime master switch. Scopes sample only while enabled.
inline bool enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Self-trace capture (implies nothing about `enabled()`; both must be on
/// for trace records to be appended).
inline bool tracing() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}
void set_tracing(bool on);

/// Counting hook for the event-allocation path: the engine calls this once
/// per heap-backed event it schedules, so allocations/event is a gated
/// bench metric (exact — allocation behaviour is deterministic even though
/// durations are not).
inline void count_alloc(std::uint64_t n = 1) {
  if (enabled()) {
    internal::g_allocs.fetch_add(n, std::memory_order_relaxed);
  }
}
inline std::uint64_t alloc_count() {
  return internal::g_allocs.load(std::memory_order_relaxed);
}

/// Interns `name`, returning its stable id (same name -> same id for the
/// process lifetime). Thread-safe; kInvalidScope past kMaxScopes.
ScopeId register_scope(const char* name);

/// Name for an id previously returned by register_scope ("" for invalid).
std::string scope_name(ScopeId id);

/// Aggregated view of one scope, merged across every thread that ever
/// sampled it (live and retired).
struct ScopeSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;  // total minus time spent in nested scopes
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  HdrHistogram hist_ns;  // sample durations, in nanoseconds
};

/// One self-trace record: scope `id` ran [start, start+dur) on `tid`.
struct TraceEvent {
  ScopeId id = kInvalidScope;
  WallNs start = 0;
  WallNs dur = 0;
  std::uint32_t tid = 0;
};

/// Copies out every scope with at least one sample, in registration order
/// (deterministic for a fixed workload). Safe to call while other threads
/// keep sampling — cells are relaxed atomics, so the copy is a consistent
/// *approximation* during concurrent updates and exact once they stop.
std::vector<ScopeSnapshot> snapshot();

/// Drains captured self-trace events (appended while tracing() was on).
/// Per-thread rings are bounded; `dropped` (if non-null) receives the
/// number of records discarded after rings filled.
std::vector<TraceEvent> drain_trace(std::uint64_t* dropped = nullptr);

/// Zeroes every cell, the allocation counter and the trace rings.
/// Registrations (ids, names) survive — `msprof --repeat` depends on it.
void reset();

namespace internal {

struct ThreadState;

/// Per-(thread, scope) accumulator. All fields relaxed atomics: the owner
/// thread is the only writer, snapshot/reset read and zero them from other
/// threads, and TSan must stay silent for the MS_PROF=ON TSan CI leg.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> child_ns{0};
  std::atomic<std::uint64_t> min_ns{~0ull};
  std::atomic<std::uint64_t> max_ns{0};
  std::array<std::atomic<std::uint64_t>, kHistBuckets> hist{};

  void record(std::uint64_t dur_ns);
};

ThreadState& tls();
Cell* cell_for(ThreadState& t, ScopeId id);
void scope_opened(ThreadState& t, Cell* cell);
void scope_closed(ThreadState& t, Cell* cell, ScopeId id, WallNs start,
                  std::uint64_t dur_ns);

}  // namespace internal

/// RAII scope timer — the expansion of MS_PROF_SCOPE. Usable directly when
/// the scope id is dynamic (the engine's per-event-kind attribution).
class ScopeTimer {
 public:
  explicit ScopeTimer(ScopeId id) {
    if (id != kInvalidScope && enabled()) {
      id_ = id;
      thread_ = &internal::tls();
      cell_ = internal::cell_for(*thread_, id);
      internal::scope_opened(*thread_, cell_);
      start_ = wallclock_ns();
    }
  }
  ~ScopeTimer() {
    if (cell_ != nullptr) {
      const WallNs end = wallclock_ns();
      internal::scope_closed(*thread_, cell_, id_, start_,
                             static_cast<std::uint64_t>(end - start_));
    }
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  ScopeId id_ = kInvalidScope;
  internal::ThreadState* thread_ = nullptr;
  internal::Cell* cell_ = nullptr;
  WallNs start_ = 0;
};

}  // namespace ms::prof

// ------------------------------------------------------------------ macro

#if defined(MS_PROF_ENABLED) && MS_PROF_ENABLED
#define MS_PROF_CAT2(a, b) a##b
#define MS_PROF_CAT(a, b) MS_PROF_CAT2(a, b)
/// Times the enclosing block under `name`. One interning per call site
/// (thread-safe magic static); one relaxed load + branch when the profiler
/// is dormant. Compiles to nothing when MS_PROF is OFF.
#define MS_PROF_SCOPE(name)                                            \
  static const ::ms::prof::ScopeId MS_PROF_CAT(ms_prof_sid_,           \
                                               __LINE__) =             \
      ::ms::prof::register_scope(name);                                \
  ::ms::prof::ScopeTimer MS_PROF_CAT(ms_prof_timer_, __LINE__)(        \
      MS_PROF_CAT(ms_prof_sid_, __LINE__))
/// Statement form of prof::count_alloc for instrumented hot paths.
#define MS_PROF_COUNT_ALLOC(n) ::ms::prof::count_alloc(n)
#else
#define MS_PROF_SCOPE(name) ((void)0)
#define MS_PROF_COUNT_ALLOC(n) ((void)0)
#endif
