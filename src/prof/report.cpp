#include "prof/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "check/digest.h"
#include "core/json.h"
#include "core/table.h"

namespace ms::prof {

namespace {

constexpr double kNsPerMs = 1'000'000.0;
constexpr double kNsPerUs = 1'000.0;
constexpr double kKilo = 1'000.0;

std::string fmt_ms(double ns) { return Table::fmt(ns / kNsPerMs, 3); }
std::string fmt_us(double ns) { return Table::fmt(ns / kNsPerUs, 2); }

}  // namespace

double ProfileReport::attributed_fraction() const {
  if (wall_ns == 0) return 0.0;
  std::uint64_t self = 0;
  for (const ScopeStats& s : scopes) self += s.self_ns;
  return static_cast<double>(self) / static_cast<double>(wall_ns);
}

double ProfileReport::events_per_sec() const {
  const double secs = wall_to_seconds(static_cast<WallNs>(wall_ns));
  return secs > 0 ? static_cast<double>(events) / secs : 0.0;
}

std::uint64_t ProfileReport::digest() const {
  // Name order, not rank order: rank depends on wall-clock values, which
  // must never influence the digest.
  std::vector<const ScopeStats*> ordered;
  ordered.reserve(scopes.size());
  for (const ScopeStats& s : scopes) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const ScopeStats* a, const ScopeStats* b) {
              return a->name < b->name;
            });
  check::Digest d;
  d.fold(std::string_view("profile"));
  d.fold(std::string_view(workload));
  for (const ScopeStats* s : ordered) {
    d.fold(std::string_view(s->name));
    d.fold(s->count);
  }
  return d.value();
}

std::string ProfileReport::to_jsonl() const {
  std::ostringstream out;
  char digest_hex[20];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(digest()));
  out << "{\"kind\":\"profile\",\"workload\":\"" << json::escape(workload)
      << "\",\"wall_ns\":" << wall_ns << ",\"events\":" << events
      << ",\"allocs\":" << allocs << ",\"digest\":\"" << digest_hex
      << "\"}\n";
  for (const ScopeStats& s : scopes) {
    out << "{\"kind\":\"scope\",\"name\":\"" << json::escape(s.name)
        << "\",\"count\":" << s.count << ",\"total_ns\":" << s.total_ns
        << ",\"self_ns\":" << s.self_ns << ",\"min_ns\":" << s.min_ns
        << ",\"max_ns\":" << s.max_ns << ",\"p50_ns\":" << s.p50_ns
        << ",\"p99_ns\":" << s.p99_ns << "}\n";
  }
  return out.str();
}

std::string ProfileReport::render(std::size_t top_k) const {
  std::ostringstream out;
  out << "profile: " << workload << "\n"
      << "  wall " << fmt_ms(static_cast<double>(wall_ns)) << " ms | "
      << Table::fmt_int(static_cast<long long>(events)) << " events | "
      << Table::fmt(events_per_sec() / kKilo, 0) << "k events/s | "
      << Table::fmt_int(static_cast<long long>(allocs)) << " allocs | "
      << Table::fmt_pct(attributed_fraction()) << " attributed\n";
  Table table({"scope", "count", "self ms", "self %", "total ms", "mean us",
               "p50 us", "p99 us", "max us"});
  std::size_t shown = 0;
  for (const ScopeStats& s : scopes) {
    if (shown++ >= top_k) break;
    const double mean_ns =
        s.count ? static_cast<double>(s.total_ns) / static_cast<double>(s.count)
                : 0.0;
    const double self_frac =
        wall_ns ? static_cast<double>(s.self_ns) / static_cast<double>(wall_ns)
                : 0.0;
    table.add_row({s.name, Table::fmt_int(static_cast<long long>(s.count)),
                   fmt_ms(static_cast<double>(s.self_ns)),
                   Table::fmt_pct(self_frac),
                   fmt_ms(static_cast<double>(s.total_ns)), fmt_us(mean_ns),
                   fmt_us(s.p50_ns), fmt_us(s.p99_ns),
                   fmt_us(static_cast<double>(s.max_ns))});
  }
  out << table.to_string();
  if (scopes.size() > top_k) {
    out << "  (" << scopes.size() - top_k << " more scopes below the fold)\n";
  }
  return out.str();
}

ProfileReport capture(const std::string& workload, WallNs wall_ns,
                      std::uint64_t events) {
  ProfileReport report;
  report.workload = workload;
  report.wall_ns = wall_ns > 0 ? static_cast<std::uint64_t>(wall_ns) : 0;
  report.events = events;
  report.allocs = alloc_count();
  for (const ScopeSnapshot& snap : snapshot()) {
    ScopeStats s;
    s.name = snap.name;
    s.count = snap.count;
    s.total_ns = snap.total_ns;
    s.self_ns = snap.self_ns;
    s.min_ns = snap.min_ns;
    s.max_ns = snap.max_ns;
    s.p50_ns = snap.hist_ns.p50();
    s.p99_ns = snap.hist_ns.p99();
    report.scopes.push_back(std::move(s));
  }
  std::sort(report.scopes.begin(), report.scopes.end(),
            [](const ScopeStats& a, const ScopeStats& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;  // deterministic tie-break
            });
  return report;
}

bool parse_jsonl(const std::string& text, ProfileReport& out,
                 std::string* error) {
  ProfileReport report;
  bool saw_header = false;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    json::Value v;
    if (!json::parse(line, v) || !v.is_object()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": malformed JSON";
      }
      return false;
    }
    const std::string kind = v.text("kind");
    if (kind == "profile") {
      report.workload = v.text("workload");
      report.wall_ns = static_cast<std::uint64_t>(v.num("wall_ns"));
      report.events = static_cast<std::uint64_t>(v.num("events"));
      report.allocs = static_cast<std::uint64_t>(v.num("allocs"));
      saw_header = true;
    } else if (kind == "scope") {
      ScopeStats s;
      s.name = v.text("name");
      s.count = static_cast<std::uint64_t>(v.num("count"));
      s.total_ns = static_cast<std::uint64_t>(v.num("total_ns"));
      s.self_ns = static_cast<std::uint64_t>(v.num("self_ns"));
      s.min_ns = static_cast<std::uint64_t>(v.num("min_ns"));
      s.max_ns = static_cast<std::uint64_t>(v.num("max_ns"));
      s.p50_ns = v.num("p50_ns");
      s.p99_ns = v.num("p99_ns");
      report.scopes.push_back(std::move(s));
    } else {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": unknown kind '" +
                 kind + "'";
      }
      return false;
    }
  }
  if (!saw_header) {
    if (error != nullptr) *error = "missing profile header line";
    return false;
  }
  out = std::move(report);
  return true;
}

std::string render_diff(const ProfileReport& base, const ProfileReport& cand,
                        std::size_t top_k) {
  std::ostringstream out;
  out << "diff: " << base.workload << " -> " << cand.workload << "\n";
  const double base_wall = static_cast<double>(base.wall_ns);
  const double cand_wall = static_cast<double>(cand.wall_ns);
  const double wall_delta =
      base_wall > 0 ? (cand_wall - base_wall) / base_wall : 0.0;
  out << "  wall " << fmt_ms(base_wall) << " -> " << fmt_ms(cand_wall)
      << " ms (" << Table::fmt_pct(wall_delta) << ") | events/s "
      << Table::fmt(base.events_per_sec() / kKilo, 0) << "k -> "
      << Table::fmt(cand.events_per_sec() / kKilo, 0) << "k | allocs "
      << Table::fmt_int(static_cast<long long>(base.allocs)) << " -> "
      << Table::fmt_int(static_cast<long long>(cand.allocs)) << "\n";

  std::map<std::string, const ScopeStats*> base_by_name;
  for (const ScopeStats& s : base.scopes) base_by_name[s.name] = &s;
  std::map<std::string, const ScopeStats*> cand_by_name;
  for (const ScopeStats& s : cand.scopes) cand_by_name[s.name] = &s;

  Table table({"scope", "base self ms", "cand self ms", "delta", "base n",
               "cand n"});
  std::size_t shown = 0;
  for (const ScopeStats& s : cand.scopes) {
    if (shown++ >= top_k) break;
    const ScopeStats* b = nullptr;
    auto it = base_by_name.find(s.name);
    if (it != base_by_name.end()) b = it->second;
    const double b_self = b ? static_cast<double>(b->self_ns) : 0.0;
    const double c_self = static_cast<double>(s.self_ns);
    const std::string delta =
        b_self > 0 ? Table::fmt_pct((c_self - b_self) / b_self) : "new";
    table.add_row({s.name, b ? fmt_ms(b_self) : "-", fmt_ms(c_self), delta,
                   b ? Table::fmt_int(static_cast<long long>(b->count)) : "-",
                   Table::fmt_int(static_cast<long long>(s.count))});
  }
  // Scopes that vanished are regressions' best friends: show them too.
  for (const auto& [name, b] : base_by_name) {
    if (cand_by_name.count(name) != 0) continue;
    table.add_row({name, fmt_ms(static_cast<double>(b->self_ns)), "-", "gone",
                   Table::fmt_int(static_cast<long long>(b->count)), "-"});
  }
  out << table.to_string();
  return out.str();
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            std::uint64_t dropped) {
  // Normalize to the earliest start so ts starts near 0 (Perfetto keeps
  // full double precision near the origin).
  WallNs t0 = 0;
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (first || ev.start < t0) t0 = ev.start;
    first = false;
  }
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":"
      << dropped << "},\"traceEvents\":[";
  out << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{"
         "\"name\":\"megascale-sim (self)\"}}";
  // One thread-name metadata record per distinct tid, in tid order.
  std::map<std::uint32_t, bool> tids;
  for (const TraceEvent& ev : events) tids[ev.tid] = true;
  for (const auto& [tid, unused] : tids) {
    (void)unused;
    out << ",{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"sim-thread-"
        << tid << "\"}}";
  }
  for (const TraceEvent& ev : events) {
    const double ts_us = static_cast<double>(ev.start - t0) / kNsPerUs;
    const double dur_us = static_cast<double>(ev.dur) / kNsPerUs;
    out << ",{\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid << ",\"name\":\""
        << json::escape(scope_name(ev.id)) << "\",\"ts\":" << ts_us
        << ",\"dur\":" << dur_us << "}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace ms::prof
