// Bridge from the self-profiler into the telemetry substrate.
//
// Header-only on purpose (the metrics_sink.h pattern): ms_prof sits below
// ms_sim so it cannot link ms_telemetry, but anything that already links
// telemetry can include this and export profiler state as ordinary
// registry series — which buys the Prometheus/JSONL wire formats and the
// mergeable SketchSnapshot form for free.
//
// Series emitted (all prefixed `prof_` so dashboards can split "simulator
// self-measurement" from "simulated cluster"):
//   prof_scope_self_seconds{scope=...}   counter  self time per scope
//   prof_scope_total_seconds{scope=...}  counter  inclusive time per scope
//   prof_scope_samples{scope=...}        counter  times the scope closed
//   prof_scope_seconds{scope=...}        histogram  sample durations
//   prof_events_total / prof_allocs_total / prof_wall_seconds
// plus the engine introspection gauges (satellite of ISSUE 9):
//   engine_queue_depth / engine_tombstones / engine_events_executed
#pragma once

#include <string>

#include "core/units.h"
#include "prof/profiler.h"
#include "prof/report.h"
#include "sim/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/sketch.h"

namespace ms::prof {

/// Exports a captured report's scalar series into `registry`.
inline void export_profile(const ProfileReport& report,
                           telemetry::MetricsRegistry& registry) {
  registry.counter("prof_events_total").add(static_cast<double>(report.events));
  registry.counter("prof_allocs_total").add(static_cast<double>(report.allocs));
  registry.counter("prof_wall_seconds")
      .add(wall_to_seconds(static_cast<WallNs>(report.wall_ns)));
  for (const ScopeStats& s : report.scopes) {
    const telemetry::Labels labels = {{"scope", s.name}};
    registry.counter("prof_scope_samples", labels)
        .add(static_cast<double>(s.count));
    registry.counter("prof_scope_self_seconds", labels)
        .add(wall_to_seconds(static_cast<WallNs>(s.self_ns)));
    registry.counter("prof_scope_total_seconds", labels)
        .add(wall_to_seconds(static_cast<WallNs>(s.total_ns)));
  }
}

/// Exports the live per-scope duration histograms in mergeable sketch
/// form (the registry's own Histogram cell has no bulk-merge entry point,
/// and the sketch is what aggregation trees ship anyway). Durations are
/// recorded in seconds to match every other `_seconds` series.
inline telemetry::SketchSnapshot profile_sketch() {
  constexpr double kNsPerSec = 1'000'000'000.0;
  telemetry::SketchSnapshot sketch;
  for (const ScopeSnapshot& s : snapshot()) {
    HdrHistogram seconds;
    for (const HdrHistogram::Bucket& b : s.hist_ns.nonzero_buckets()) {
      seconds.add(((b.lo + b.hi) / 2.0) / kNsPerSec, b.count);
    }
    sketch.add_histogram(
        "prof_scope_seconds{scope=\"" + s.name + "\"}", seconds);
  }
  return sketch;
}

/// Engine event-loop introspection as gauges (ISSUE 9 satellite: the
/// `engine_queue_depth` series).
inline void export_engine_gauges(const sim::Engine& engine,
                                 telemetry::MetricsRegistry& registry) {
  registry.gauge("engine_queue_depth")
      .set(static_cast<double>(engine.queue_size()));
  registry.gauge("engine_queue_depth_peak")
      .set(static_cast<double>(engine.peak_queue_size()));
  registry.gauge("engine_tombstones")
      .set(static_cast<double>(engine.tombstone_count()));
  registry.gauge("engine_events_executed")
      .set(static_cast<double>(engine.executed()));
  registry.gauge("engine_events_cancelled")
      .set(static_cast<double>(engine.cancelled()));
}

}  // namespace ms::prof
