// Profile reports: aggregate capture -> ranked table / JSONL / diff /
// Perfetto self-trace.
//
// A ProfileReport is the plain-data result of one profiled workload run:
// wall time, engine event count, allocation count, and per-scope stats
// ranked by *self* time (total minus nested scopes), which is the column
// that answers "where do the nanoseconds actually go". The JSONL artifact
// round-trips through parse_jsonl so `msprof diff` can compare two runs
// recorded days (or branches) apart.
//
// Digest discipline: digest() folds ONLY structural content — workload
// name plus (scope name, sample count) in name order. Wall-clock values
// never enter the digest, so two runs of the same deterministic workload
// digest equal even though their nanoseconds differ; a digest mismatch
// means the *shape* of the run changed (different scopes or counts), which
// for a deterministic simulator is a real regression signal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/wallclock.h"
#include "prof/profiler.h"

namespace ms::prof {

/// Per-scope aggregate, flattened for artifacts (quantiles precomputed).
struct ScopeStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double p50_ns = 0;
  double p99_ns = 0;
};

struct ProfileReport {
  std::string workload;
  std::uint64_t wall_ns = 0;   // workload wall time (profiled run)
  std::uint64_t events = 0;    // engine events executed during the run
  std::uint64_t allocs = 0;    // prof::count_alloc total
  std::vector<ScopeStats> scopes;  // ranked by self_ns, descending

  /// Fraction of wall time attributed to named scopes (sum of self time /
  /// wall). The fig11 acceptance bar is >= 0.9.
  double attributed_fraction() const;

  double events_per_sec() const;

  /// Structural FNV-1a digest: workload + (name, count) in name order.
  /// Never folds a wall-clock value — see the header comment.
  std::uint64_t digest() const;

  /// One JSON object per line: a "profile" header line, then one "scope"
  /// line per scope. Parseable by parse_jsonl.
  std::string to_jsonl() const;

  /// Ranked hot-spot table (top_k scopes by self time).
  std::string render(std::size_t top_k = 20) const;
};

/// Builds a report from the profiler's current cells (prof::snapshot()).
ProfileReport capture(const std::string& workload, WallNs wall_ns,
                      std::uint64_t events);

/// Parses a to_jsonl() artifact. Returns false (with *error set when
/// non-null) on malformed input.
bool parse_jsonl(const std::string& text, ProfileReport& out,
                 std::string* error = nullptr);

/// Side-by-side comparison of two reports (scopes matched by name, ranked
/// by candidate self time): the `msprof diff` body.
std::string render_diff(const ProfileReport& base, const ProfileReport& cand,
                        std::size_t top_k = 20);

/// Chrome/Perfetto trace JSON of the self-trace ring: one complete ("X")
/// event per closed scope, pid = the simulator process, one track per
/// sampling thread. Load in ui.perfetto.dev.
std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            std::uint64_t dropped = 0);

}  // namespace ms::prof
