#include "engine/perturb.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ms::engine {

std::vector<double> sample_machine_speeds(int machines,
                                          const StragglerPopulation& pop,
                                          Rng& rng) {
  std::vector<double> speeds(static_cast<std::size_t>(machines));
  for (auto& s : speeds) {
    // Healthy machines: tight lognormal jitter around nominal.
    s = rng.lognormal(0.0, pop.jitter_sigma);
    if (rng.chance(pop.slow_fraction)) s *= pop.slow_factor;
  }
  return speeds;
}

namespace {

/// Fraction of the iteration that scales with compute speed.
double compute_fraction(const IterationResult& base) {
  if (base.iteration_time <= 0 || base.stage_compute_busy.empty()) return 1.0;
  double busy = 0;
  for (TimeNs t : base.stage_compute_busy) busy += static_cast<double>(t);
  busy /= static_cast<double>(base.stage_compute_busy.size());
  return std::clamp(busy / static_cast<double>(base.iteration_time), 0.0, 1.0);
}

}  // namespace

StragglerFold fold_stragglers(const IterationResult& base,
                              const JobConfig& cfg,
                              const std::vector<double>& machine_speed) {
  const int machines_per_replica =
      std::max(1, cfg.par.tp * cfg.par.pp / cfg.cluster.gpus_per_node);
  const int replicas = cfg.par.dp;
  assert(static_cast<int>(machine_speed.size()) >=
         machines_per_replica * replicas);

  StragglerFold fold;
  fold.worst_factor = 0.0;
  for (int r = 0; r < replicas; ++r) {
    double worst = 0.0;
    for (int k = 0; k < machines_per_replica; ++k) {
      worst = std::max(
          worst, machine_speed[static_cast<std::size_t>(r * machines_per_replica + k)]);
    }
    fold.worst_factor = std::max(fold.worst_factor, worst);
  }
  for (double s : machine_speed) {
    if (s > 1.05) ++fold.slow_machines;
  }

  const double cf = compute_fraction(base);
  const double scale = cf * fold.worst_factor + (1.0 - cf);
  fold.iteration_time =
      static_cast<TimeNs>(static_cast<double>(base.iteration_time) * scale);
  fold.mfu = base.mfu * static_cast<double>(base.iteration_time) /
             static_cast<double>(fold.iteration_time);
  return fold;
}

Series mfu_over_time(const IterationResult& base, const JobConfig& cfg,
                     const PerturbConfig& perturb, int steps,
                     bool problematic_code,
                     const std::vector<double>& machine_speed, Rng& rng) {
  // Straggler baseline for this cluster sample.
  TimeNs base_iter = base.iteration_time;
  double base_mfu = base.mfu;
  if (!machine_speed.empty()) {
    const auto fold = fold_stragglers(base, cfg, machine_speed);
    base_iter = fold.iteration_time;
    base_mfu = fold.mfu;
  }

  const int replicas = std::max(1, cfg.par.dp);
  std::vector<double> walk(static_cast<std::size_t>(replicas), 0.0);

  Series series;
  series.name = "mfu";
  const double base_s = to_seconds(base_iter);
  for (int step = 0; step < steps; ++step) {
    double delay_s = 0.0;
    if (problematic_code) {
      // Each replica's launch-time stagger drifts as a random walk; the
      // collective waits for the most-staggered rank (§6.3: "fluctuating
      // reciprocally ... the size of this time stagger increased as more
      // steps were executed").
      double envelope = 0.0;
      for (auto& w : walk) {
        w += rng.normal(0.0, perturb.stagger_walk_sigma * base_s);
        envelope = std::max(envelope, std::fabs(w));
      }
      delay_s += envelope;
      if (rng.chance(perturb.gc_probability_per_step)) {
        delay_s += to_seconds(perturb.gc_pause);
      }
    }
    // Bounded jitter persists even on healthy code.
    delay_s += std::fabs(rng.normal(0.0, perturb.residual_jitter * base_s));

    const double iter_s = base_s + delay_s;
    series.add(static_cast<double>(step), base_mfu * base_s / iter_s);
  }
  return series;
}

}  // namespace ms::engine
