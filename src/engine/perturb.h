// Straggler and perturbation models (MegaScale §5.1, §6.3, Figures 6/12).
//
// Two production pathologies are reproduced:
//  * Computational stragglers — ~0.5% of machines are ~10% slower on the
//    same forward/backward work. Machine scheduling is stochastic, so
//    different runs of the same job land on different machines and exhibit
//    different MFU (Figure 6); evicting the slow hosts restores consistency
//    (Figure 12, +0.7% MFU).
//  * MFU decay from "problematic code segments" — irregular garbage
//    collection and fluctuating PyTorch CPU paths stagger the collective
//    launch times of DP ranks; the stagger performs a random walk whose
//    envelope grows with step count, so every rank eventually waits on the
//    slowest and the per-step time creeps up. Removing those code paths
//    leaves only bounded jitter (Figure 12).
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/stats.h"
#include "engine/job.h"

namespace ms::engine {

// ------------------------------------------------------------- stragglers

struct StragglerPopulation {
  double slow_fraction = 0.005;  ///< fraction of machines that are slow
  double slow_factor = 1.10;     ///< their compute-time multiplier
  double jitter_sigma = 0.005;   ///< lognormal sigma of healthy machines
};

/// Samples a per-machine compute speed factor (>= ~1.0) for each machine.
std::vector<double> sample_machine_speeds(int machines,
                                          const StragglerPopulation& pop,
                                          Rng& rng);

struct StragglerFold {
  TimeNs iteration_time = 0;
  double mfu = 0;
  double worst_factor = 1.0;  ///< compute slowdown of the critical replica
  int slow_machines = 0;      ///< machines above 1.05x in this sample
};

/// Applies cluster-wide machine speeds to a baseline iteration. Machines
/// are assigned to DP replicas contiguously (TP groups fill nodes, DP is
/// the next dimension); each replica runs at its worst member's speed for
/// the compute fraction of the iteration; the job waits for the slowest
/// replica at the gradient synchronization point.
StragglerFold fold_stragglers(const IterationResult& base,
                              const JobConfig& cfg,
                              const std::vector<double>& machine_speed);

// --------------------------------------------------- MFU drift (Fig 6/12)

struct PerturbConfig {
  /// Per-step stagger random-walk sigma per DP replica, as a fraction of
  /// the base iteration time (problematic code segments).
  double stagger_walk_sigma = 0.0025;
  /// Bounded per-step jitter that remains after the fix.
  double residual_jitter = 0.002;
  /// Occasional garbage-collection pause.
  double gc_probability_per_step = 0.002;
  TimeNs gc_pause = milliseconds(400.0);
};

/// Simulates `steps` training steps and returns the MFU trajectory
/// (x = step, y = MFU). `problematic_code` enables the growing-stagger walk;
/// `machine_speed` (optional) adds the straggler slowdown of the sampled
/// cluster. Each DP replica carries an independent random walk; the job
/// time per step is the base time plus the walk envelope maximum.
Series mfu_over_time(const IterationResult& base, const JobConfig& cfg,
                     const PerturbConfig& perturb, int steps, bool problematic_code,
                     const std::vector<double>& machine_speed, Rng& rng);

}  // namespace ms::engine
