#include "engine/job.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>

#include "parallel/overlap.h"
#include "parallel/pipeline.h"
#include "parallel/zero.h"
#include "prof/profiler.h"
#include "sim/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ms::engine {

namespace {

using parallel::PassType;

// Stream layout: kStreamsPerStage (job.h) streams per stage + one
// data-pipeline stream.
sim::StreamId compute_stream(int s) { return s * kStreamsPerStage + 0; }
sim::StreamId send_stream(int s) { return s * kStreamsPerStage + 1; }
sim::StreamId recv_stream(int s) { return s * kStreamsPerStage + 2; }
sim::StreamId dp_stream(int s) { return s * kStreamsPerStage + 3; }

struct ChunkTimes {
  TimeNs fwd = 0;  // one microbatch through one model chunk, TP comm folded
  TimeNs bwd = 0;
  TimeNs fwd_last = 0;  // variant with logits head (last stage, last chunk)
  TimeNs bwd_last = 0;
};

}  // namespace

std::string validate(const JobConfig& cfg) {
  if (!cfg.par.valid()) return "invalid parallel config";
  if (cfg.global_batch % cfg.par.dp != 0) {
    return "global batch must divide evenly across DP replicas";
  }
  const int m = cfg.microbatches_per_replica();
  if (cfg.par.vpp > 1 && m % cfg.par.pp != 0) {
    return "interleaved schedule requires microbatches % pp == 0";
  }
  if (cfg.model.layers % (cfg.par.pp * cfg.par.vpp) != 0) {
    return "layers must divide evenly into pp*vpp chunks";
  }
  if (!cfg.stage_speed.empty() &&
      static_cast<int>(cfg.stage_speed.size()) != cfg.par.pp) {
    return "stage_speed must have pp entries";
  }
  if (!cfg.link_speed.empty() &&
      static_cast<int>(cfg.link_speed.size()) != cfg.par.pp) {
    return "link_speed must have pp entries";
  }
  if (cfg.par.pp == 1 && cfg.par.vpp != 1) {
    return "vpp > 1 requires pp > 1";
  }
  if (cfg.schedule == PipelineSchedule::kGpipe && cfg.par.vpp != 1) {
    return "GPipe schedule does not support interleaving (vpp must be 1)";
  }
  return "";
}

std::string describe(const JobConfig& cfg) {
  std::string out = cfg.model.name;
  out += " gpus=" + std::to_string(cfg.gpus());
  out += " tp=" + std::to_string(cfg.par.tp);
  out += " pp=" + std::to_string(cfg.par.pp);
  out += " dp=" + std::to_string(cfg.par.dp);
  out += " vpp=" + std::to_string(cfg.par.vpp);
  out += " batch=" + std::to_string(cfg.global_batch);
  out += " m=" + std::to_string(cfg.microbatches_per_replica());
  const bool megascale = cfg.overlap.tp_overlap && cfg.overlap.pp_decouple &&
                         cfg.overlap.dp_overlap &&
                         cfg.overlap.async_data_pipeline;
  const bool megatron = !cfg.overlap.tp_overlap && !cfg.overlap.pp_decouple &&
                        !cfg.overlap.dp_overlap &&
                        !cfg.overlap.async_data_pipeline;
  out += std::string(" overlap=") +
         (megascale ? "megascale" : (megatron ? "megatron-lm" : "custom"));
  if (cfg.schedule == PipelineSchedule::kGpipe) out += " schedule=gpipe";
  if (cfg.full_recompute) out += " recompute=full";
  return out;
}

IterationResult simulate_iteration(const JobConfig& cfg) {
  MS_PROF_SCOPE("engine.simulate_iteration");
  const std::string err = validate(cfg);
  assert(err.empty() && "invalid JobConfig");
  if (!err.empty()) return {};

  const auto& par = cfg.par;
  const int pp = par.pp;
  const int vpp = par.vpp;
  const int m = cfg.microbatches_per_replica();
  const int layers_per_chunk = cfg.model.layers / (pp * vpp);
  const std::int64_t micro_tokens = cfg.model.seq_len;  // 1 sequence/microbatch
  const std::int64_t elem_tokens =
      par.sequence_parallel ? micro_tokens / par.tp : micro_tokens;

  const model::OpCostModel cost(cfg.model, cfg.ops, cfg.cluster.gpu);
  collective::CollectiveModel coll(cfg.cluster, cfg.network_efficiency);
  coll.set_metrics(cfg.metrics);
  const parallel::Zero2Sharding zero(model::params_count(cfg.model), par);

  // ---- per-layer TP/SP communication (§3.2, Figure 3) ----
  const Bytes act_bytes = micro_tokens * cfg.model.hidden * 2;
  // Parallel transformer block: attention and MLP branch from the same
  // LN(x), so one all-gather feeds both and one reduce-scatter merges both.
  const int tp_comms_per_layer = cfg.model.parallel_block ? 1 : 2;
  TimeNs tp_comm_fwd_layer = 0;
  if (par.tp > 1) {
    const TimeNs ag =
        coll.all_gather(act_bytes, par.tp, collective::Domain::kIntraNode);
    const TimeNs rs =
        coll.reduce_scatter(act_bytes, par.tp, collective::Domain::kIntraNode);
    tp_comm_fwd_layer = tp_comms_per_layer * (ag + rs);
  }
  const TimeNs tp_comm_bwd_layer = tp_comm_fwd_layer;  // mirrored pattern

  // ---- chunk compute durations with TP comm folded in ----
  const TimeNs fwd_layer_compute =
      cost.fwd_layer(micro_tokens, elem_tokens, par.tp);
  const TimeNs bwd_layer_compute =
      cost.bwd_layer(micro_tokens, elem_tokens, par.tp);

  auto fold_tp = [&](TimeNs compute, TimeNs comm) -> TimeNs {
    if (comm == 0) return compute;
    if (cfg.overlap.tp_overlap) {
      return parallel::chunked_overlap(compute, comm,
                                       cfg.overlap.tp_overlap_chunks)
          .total;
    }
    return compute + comm;
  };

  ChunkTimes chunk;
  chunk.fwd = layers_per_chunk * fold_tp(fwd_layer_compute, tp_comm_fwd_layer);
  chunk.bwd = layers_per_chunk * fold_tp(bwd_layer_compute, tp_comm_bwd_layer);
  if (cfg.full_recompute) {
    // The backward pass first re-runs the chunk's forward (including its
    // TP communication) to rebuild activations from the stored boundary.
    chunk.bwd += chunk.fwd;
  }
  const TimeNs logits_fwd = cost.fwd_logits(micro_tokens, par.tp);
  chunk.fwd_last = chunk.fwd + logits_fwd;
  chunk.bwd_last = chunk.bwd + 2 * logits_fwd;

  // ---- pipeline p2p transfer ----
  const Bytes p2p_bytes =
      par.sequence_parallel ? act_bytes / par.tp : act_bytes;
  const TimeNs p2p_time =
      coll.send_recv(p2p_bytes, collective::Domain::kInterNode);

  // ---- DP collectives (ZeRO, §2 Figure 1) ----
  // Stage 2 (the paper's choice): param all-gather forward + gradient
  // reduce-scatter backward — together exactly one all-reduce's volume.
  // Stage 1: gradients are still all-reduced in full (2x the reduce-scatter
  // volume) and updated params all-gathered.
  // Stage 3: parameters are re-gathered for the backward pass as well
  // (second all-gather per chunk).
  TimeNs dp_ag_chunk = 0, dp_rs_chunk = 0;
  if (par.dp > 1) {
    dp_ag_chunk = coll.all_gather(zero.allgather_bytes_per_chunk(), par.dp,
                                  collective::Domain::kInterNode);
    dp_rs_chunk = coll.reduce_scatter(zero.reducescatter_bytes_per_chunk(),
                                      par.dp, collective::Domain::kInterNode);
    if (par.zero_stage <= 1) {
      dp_rs_chunk = coll.all_reduce(zero.reducescatter_bytes_per_chunk(),
                                    par.dp, collective::Domain::kInterNode);
    } else if (par.zero_stage >= 3) {
      dp_ag_chunk *= 2;  // forward + backward parameter gathers
    }
  }
  const TimeNs optimizer_time =
      cost.optimizer_step(zero.optimizer_shard_params());

  // ---- build the DAG ----
  sim::Engine sim_engine;
  sim::GraphExecutor graph(static_cast<std::size_t>(pp * kStreamsPerStage + 1));
  const sim::StreamId data_stream =
      static_cast<sim::StreamId>(pp * kStreamsPerStage);

  const TimeNs data_time =
      cfg.overlap.async_data_pipeline ? 0 : cfg.data_pipeline_time;
  const sim::OpId data_op = graph.add_op(
      {.name = "data-load", .stream = data_stream, .duration = data_time,
       .tag = "data"});

  auto stage_factor = [&](int s) -> double {
    return cfg.stage_speed.empty() ? 1.0
                                   : cfg.stage_speed[static_cast<std::size_t>(s)];
  };
  auto scaled = [&](TimeNs t, int s) -> TimeNs {
    return static_cast<TimeNs>(static_cast<double>(t) * stage_factor(s));
  };
  // p2p transfers are serialized by the *sender's* NIC; a degraded link is
  // modeled as a slowdown factor indexed by the producing stage.
  auto scaled_p2p = [&](int producer_stage) -> TimeNs {
    const double f = cfg.link_speed.empty()
                         ? 1.0
                         : cfg.link_speed[static_cast<std::size_t>(producer_stage)];
    return static_cast<TimeNs>(static_cast<double>(p2p_time) * f);
  };

  // Structured span attributes (parsed by diag::DepGraph; grammar in
  // sim::OpSpec::detail). Transfers carry both endpoints so the analyzer
  // can pair send/recv and walk back to the producing compute op.
  auto compute_detail = [](int s, int chunk, int mb, bool is_bwd, bool head) {
    std::string d = "s=" + std::to_string(s) + " c=" + std::to_string(chunk) +
                    " mb=" + std::to_string(mb) +
                    " p=" + (is_bwd ? std::string("b") : std::string("f"));
    if (head) d += " head=1";
    return d;
  };
  auto transfer_detail = [&](int from, int to, int cons_chunk, int prod_chunk,
                             int mb, bool is_bwd) {
    return "p=" + (is_bwd ? std::string("b") : std::string("f")) +
           " mb=" + std::to_string(mb) + " from=" + std::to_string(from) +
           " to=" + std::to_string(to) + " c=" + std::to_string(cons_chunk) +
           " pc=" + std::to_string(prod_chunk) +
           " B=" + std::to_string(p2p_bytes);
  };

  // Compute op per (stage, chunk, microbatch, pass).
  std::map<std::tuple<int, int, int, int>, sim::OpId> compute_ops;

  // Incoming-transfer topology. Producer of F(s,c,mb):
  //   s > 0            -> F(s-1, c,   mb)
  //   s == 0 && c > 0  -> F(pp-1, c-1, mb)   (interleaving wrap-around)
  //   s == 0 && c == 0 -> data pipeline
  // Producer of B(s,c,mb):
  //   s < pp-1               -> B(s+1, c,   mb)
  //   s == pp-1 && c < vpp-1 -> B(0,  c+1, mb)
  //   s == pp-1 && c == vpp-1 -> local F (no transfer)
  struct Endpoint {
    bool exists = false;
    int stage = 0, chunk = 0, microbatch = 0, is_bwd = 0;
  };
  auto producer_of = [&](int s, const parallel::ScheduleEntry& e) -> Endpoint {
    const bool is_bwd = e.pass == PassType::kBackward;
    if (!is_bwd) {
      if (s > 0) return {true, s - 1, e.chunk, e.microbatch, 0};
      if (e.chunk > 0) return {true, pp - 1, e.chunk - 1, e.microbatch, 0};
      return {};
    }
    if (s < pp - 1) return {true, s + 1, e.chunk, e.microbatch, 1};
    if (e.chunk < vpp - 1) return {true, 0, e.chunk + 1, e.microbatch, 1};
    return {};
  };
  auto consumer_of = [&](int s, const parallel::ScheduleEntry& e) -> Endpoint {
    const bool is_bwd = e.pass == PassType::kBackward;
    if (!is_bwd) {
      if (s < pp - 1) return {true, s + 1, e.chunk, e.microbatch, 0};
      if (e.chunk < vpp - 1) return {true, 0, e.chunk + 1, e.microbatch, 0};
      return {};
    }
    if (s > 0) return {true, s - 1, e.chunk, e.microbatch, 1};
    if (e.chunk > 0) return {true, pp - 1, e.chunk - 1, e.microbatch, 1};
    return {};
  };

  // First pass: create compute ops; in coupled (Megatron-LM) mode the
  // blocking recv/send ops join the stage's program chain right around the
  // compute op they serve ("send and recv are often implemented together
  // and can be blocked by the slower one", §3.2); in decoupled (MegaScale)
  // mode they live on dedicated streams and only the data dependency
  // remains.
  std::map<std::tuple<int, int, int, int>, sim::OpId> recv_ops;  // consumer key
  std::map<std::tuple<int, int, int, int>, sim::OpId> send_ops;  // producer key
  std::vector<std::vector<parallel::ScheduleEntry>> schedules(
      static_cast<std::size_t>(pp));
  for (int s = 0; s < pp; ++s) {
    schedules[static_cast<std::size_t>(s)] =
        cfg.schedule == PipelineSchedule::kGpipe
            ? parallel::gpipe_schedule_for_stage(pp, s, m)
            : parallel::schedule_for_stage(pp, s, vpp, m);
    sim::OpId prev = sim::kInvalidOp;
    auto chain = [&](sim::OpId op) {
      if (prev != sim::kInvalidOp) graph.add_dep(prev, op);
      prev = op;
    };
    for (const auto& e : schedules[static_cast<std::size_t>(s)]) {
      const bool is_bwd = e.pass == PassType::kBackward;
      const auto key = std::make_tuple(s, e.chunk, e.microbatch, is_bwd ? 1 : 0);

      const Endpoint prod = producer_of(s, e);
      if (!cfg.overlap.pp_decouple && prod.exists) {
        // Blocking receive: the coupled send/recv holds the receiving side
        // for the whole transfer too (no compute proceeds under it).
        sim::OpId rcv = graph.add_op(
            {.name = "recv-wait",
             .stream = compute_stream(s),
             .duration = scaled_p2p(prod.stage),
             .tag = "pp-comm",
             .detail = transfer_detail(prod.stage, s, e.chunk, prod.chunk,
                                       e.microbatch, is_bwd)});
        recv_ops[key] = rcv;
        chain(rcv);
      }

      const bool has_head = (s == pp - 1) && (e.chunk == vpp - 1);
      TimeNs dur = is_bwd ? (has_head ? chunk.bwd_last : chunk.bwd)
                          : (has_head ? chunk.fwd_last : chunk.fwd);
      dur = scaled(dur, s);
      sim::OpId op = graph.add_op(
          {.name = is_bwd ? "bwd" : "fwd",
           .stream = compute_stream(s),
           .duration = dur,
           .tag = is_bwd ? "bwd" : "fwd",
           .detail = compute_detail(s, e.chunk, e.microbatch, is_bwd, has_head)});
      compute_ops[key] = op;
      chain(op);

      const Endpoint cons = consumer_of(s, e);
      if (!cfg.overlap.pp_decouple && cons.exists) {
        // Blocking send occupies the compute stream for the wire time.
        sim::OpId snd = graph.add_op(
            {.name = "send",
             .stream = compute_stream(s),
             .duration = scaled_p2p(s),
             .tag = "pp-comm",
             .detail = transfer_detail(s, cons.stage, cons.chunk, e.chunk,
                                       e.microbatch, is_bwd)});
        send_ops[key] = snd;
        chain(snd);
      }
    }
  }

  // Second pass: cross-stage data dependencies.
  for (int s = 0; s < pp; ++s) {
    for (const auto& e : schedules[static_cast<std::size_t>(s)]) {
      const bool is_bwd = e.pass == PassType::kBackward;
      const auto key = std::make_tuple(s, e.chunk, e.microbatch, is_bwd ? 1 : 0);
      const sim::OpId consumer = compute_ops[key];
      const Endpoint prod = producer_of(s, e);
      if (!prod.exists) {
        if (!is_bwd) {
          graph.add_dep(data_op, consumer);  // F(0, 0, mb): needs input data
        } else {
          // B(pp-1, vpp-1, mb) starts from the local loss computation.
          graph.add_dep(compute_ops[{s, e.chunk, e.microbatch, 0}], consumer);
        }
        continue;
      }
      const auto prod_key = std::make_tuple(prod.stage, prod.chunk,
                                            prod.microbatch, prod.is_bwd);
      const sim::OpId producer = compute_ops[prod_key];
      if (cfg.overlap.pp_decouple) {
        const std::string td = transfer_detail(prod.stage, s, e.chunk,
                                               prod.chunk, e.microbatch, is_bwd);
        sim::OpId snd = graph.add_op({.name = "send",
                                      .stream = send_stream(prod.stage),
                                      .duration = scaled_p2p(prod.stage),
                                      .tag = "pp-comm",
                                      .detail = td});
        sim::OpId rcv = graph.add_op({.name = "recv",
                                      .stream = recv_stream(s),
                                      .duration = 0,
                                      .tag = "pp-comm",
                                      .detail = td});
        graph.add_dep(producer, snd);
        graph.add_dep(snd, rcv);
        graph.add_dep(rcv, consumer);
      } else {
        // snd (producer chain) -> rcv wait (consumer chain). The chains
        // already order rcv before consumer and snd after producer.
        graph.add_dep(send_ops[prod_key], recv_ops[key]);
      }
    }
  }

  // Third pass: DP collectives + optimizer per stage.
  std::vector<sim::OpId> optimizer_ops;
  for (int s = 0; s < pp; ++s) {
    const auto& sched = schedules[static_cast<std::size_t>(s)];
    // First forward / last backward per chunk on this stage.
    std::vector<sim::OpId> first_fwd(static_cast<std::size_t>(vpp),
                                     sim::kInvalidOp);
    std::vector<sim::OpId> last_bwd(static_cast<std::size_t>(vpp),
                                    sim::kInvalidOp);
    for (const auto& e : sched) {
      const bool is_bwd = e.pass == PassType::kBackward;
      const sim::OpId op = compute_ops[{s, e.chunk, e.microbatch, is_bwd ? 1 : 0}];
      if (!is_bwd && first_fwd[static_cast<std::size_t>(e.chunk)] ==
                         sim::kInvalidOp) {
        first_fwd[static_cast<std::size_t>(e.chunk)] = op;
      }
      if (is_bwd) last_bwd[static_cast<std::size_t>(e.chunk)] = op;
    }

    std::vector<sim::OpId> rs_ops;
    if (par.dp > 1) {
      // Collective-size attributes for the trace consumers (§5 diagnosis,
      // calibration): `op=` names the wire collective (ZeRO stage <= 1
      // all-reduces under the reduce-scatter op name), `B=` the per-call
      // payload, `calls=` how many back-to-back calls the span folds.
      const int ag_calls = par.zero_stage >= 3 ? 2 : 1;
      const char* rs_op = par.zero_stage <= 1 ? "allreduce" : "reducescatter";
      auto coll_detail = [&](const std::string& base, const char* op,
                             Bytes bytes, int calls) {
        std::string d = base + " op=" + op + " B=" + std::to_string(bytes);
        if (calls > 1) d += " calls=" + std::to_string(calls);
        return d;
      };
      const Bytes ag_bytes = zero.allgather_bytes_per_chunk();
      const Bytes rs_bytes = zero.reducescatter_bytes_per_chunk();
      if (cfg.overlap.dp_overlap) {
        // Chunk-wise, priority-ordered: the all-gather of the chunk needed
        // first carries the highest priority; the first one starts at t=0,
        // overlapping the data pipeline (the FSDP-inspired prefetch).
        for (int c = 0; c < vpp; ++c) {
          const std::string dd = "s=" + std::to_string(s) +
                                 " c=" + std::to_string(c) +
                                 " grp=dp n=" + std::to_string(par.dp);
          sim::OpId ag = graph.add_op(
              {.name = "dp-allgather",
               .stream = dp_stream(s),
               .duration = dp_ag_chunk,
               .priority = vpp - c,
               .tag = "dp-comm",
               .detail = coll_detail(dd, "allgather", ag_bytes, ag_calls)});
          graph.add_dep(ag, first_fwd[static_cast<std::size_t>(c)]);
          sim::OpId rs = graph.add_op(
              {.name = "dp-reducescatter",
               .stream = dp_stream(s),
               .duration = dp_rs_chunk,
               .priority = c,
               .tag = "dp-comm",
               .detail = coll_detail(dd, rs_op, rs_bytes, 1)});
          graph.add_dep(last_bwd[static_cast<std::size_t>(c)], rs);
          rs_ops.push_back(rs);
        }
      } else {
        // Bucketed at the iteration edges: one all-gather before any
        // compute, one reduce-scatter after all backwards (the exposed
        // pattern of stock data-parallel synchronization).
        const std::string dd =
            "s=" + std::to_string(s) + " grp=dp n=" + std::to_string(par.dp);
        sim::OpId ag = graph.add_op(
            {.name = "dp-allgather",
             .stream = dp_stream(s),
             .duration = vpp * dp_ag_chunk,
             .tag = "dp-comm",
             .detail =
                 coll_detail(dd, "allgather", ag_bytes, vpp * ag_calls)});
        graph.add_dep(data_op, ag);
        for (int c = 0; c < vpp; ++c) {
          graph.add_dep(ag, first_fwd[static_cast<std::size_t>(c)]);
        }
        sim::OpId rs = graph.add_op(
            {.name = "dp-reducescatter",
             .stream = dp_stream(s),
             .duration = vpp * dp_rs_chunk,
             .tag = "dp-comm",
             .detail = coll_detail(dd, rs_op, rs_bytes, vpp)});
        for (int c = 0; c < vpp; ++c) {
          graph.add_dep(last_bwd[static_cast<std::size_t>(c)], rs);
        }
        rs_ops.push_back(rs);
      }
    }

    sim::OpId opt = graph.add_op({.name = "optimizer",
                                  .stream = compute_stream(s),
                                  .duration = scaled(optimizer_time, s),
                                  .tag = "optimizer",
                                  .detail = "s=" + std::to_string(s)});
    if (rs_ops.empty()) {
      for (int c = 0; c < vpp; ++c) {
        graph.add_dep(last_bwd[static_cast<std::size_t>(c)], opt);
      }
    }
    for (sim::OpId rs : rs_ops) graph.add_dep(rs, opt);
    optimizer_ops.push_back(opt);
  }

  const TimeNs makespan = graph.run(sim_engine);

  // ---- metrics ----
  IterationResult result;
  result.iteration_time = makespan;
  const double iter_s = to_seconds(makespan);
  result.tokens_per_second = cfg.tokens_per_iteration() / iter_s;
  result.mfu = model::mfu(cfg.model, result.tokens_per_second, cfg.gpus(),
                          cfg.cluster.gpu.peak_flops);
  result.aggregate_pflops =
      model::reference_train_flops_per_token(cfg.model) *
      result.tokens_per_second / peta(1.0);

  // Breakdown from spans.
  TimeNs pipeline_start = makespan, pipeline_end = 0;
  TimeNs opt_start = makespan;
  for (const auto& rec : graph.records()) {
    if (rec.tag == "fwd" || rec.tag == "bwd") {
      pipeline_start = std::min(pipeline_start, rec.start);
      pipeline_end = std::max(pipeline_end, rec.end);
    } else if (rec.tag == "optimizer") {
      opt_start = std::min(opt_start, rec.start);
    }
  }
  result.breakdown.data_pipeline = graph.record(data_op).end;
  result.breakdown.pipeline_body = pipeline_end - pipeline_start;
  result.breakdown.dp_exposed =
      (pipeline_start - graph.record(data_op).end) +
      std::max<TimeNs>(0, opt_start - pipeline_end);
  result.breakdown.optimizer = makespan - opt_start;

  result.stage_compute_busy.resize(static_cast<std::size_t>(pp));
  for (int s = 0; s < pp; ++s) {
    result.stage_compute_busy[static_cast<std::size_t>(s)] =
        graph.stream_busy(compute_stream(s));
  }
  result.spans = graph.records();

  // ---- telemetry routing (§5: one substrate instead of ad-hoc copies) ----
  if (cfg.tracer != nullptr) {
    for (const auto& rec : result.spans) {
      // The stream id is appended so the analyzer can recover hardware-queue
      // program order even after spans are folded onto per-stage ranks.
      std::string detail = rec.detail;
      if (!detail.empty()) detail += ' ';
      detail += "stream=" + std::to_string(rec.stream);
      cfg.tracer->record(stage_of_stream(rec.stream), rec.name, rec.tag,
                         rec.start, rec.end, std::move(detail));
    }
  }
  if (cfg.metrics != nullptr) {
    auto& m = *cfg.metrics;
    for (const auto& rec : result.spans) {
      const telemetry::Labels op_labels{{"op", rec.tag}};
      m.counter("engine_ops_total", op_labels).add();
      m.histogram("engine_op_seconds", op_labels)
          .observe(to_seconds(rec.end - rec.start));
    }
    m.counter("engine_iterations_total").add();
    m.gauge("engine_iteration_seconds").set(iter_s);
    m.gauge("engine_mfu").set(result.mfu);
    m.gauge("engine_tokens_per_second").set(result.tokens_per_second);
    for (int s = 0; s < pp; ++s) {
      m.gauge("engine_stage_compute_busy_seconds",
              {{"stage", std::to_string(s)}})
          .set(to_seconds(result.stage_compute_busy[static_cast<std::size_t>(s)]));
    }
  }
  return result;
}

double training_days(double total_tokens, double tokens_per_second) {
  assert(tokens_per_second > 0);
  return total_tokens / tokens_per_second / 86400.0;
}

}  // namespace ms::engine
