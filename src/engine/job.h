// End-to-end training-iteration simulator (the heart of the reproduction).
//
// One data-parallel replica — a pipeline of `pp` stage-GPUs, tensor
// parallelism folded into per-operator durations — is executed on the
// discrete-event GraphExecutor:
//   * compute kernels (model::OpCostModel) on a per-stage compute stream;
//   * pipeline point-to-point transfers on send/recv streams (or, when the
//     MegaScale PP overlap is off, blocking the compute stream — §3.2);
//   * ZeRO-2 parameter all-gathers / gradient reduce-scatters on a DP
//     communication stream, bucketed (Megatron-LM) or chunk-wise with
//     prefetch (MegaScale) — §3.2;
//   * TP/SP all-gather + reduce-scatter per layer, either serial on the
//     critical path or fused with the GEMMs via chunked pipelining — §3.2.
//
// Identical DP replicas execute in lockstep, so the replica's makespan is
// the iteration time of the whole job; stragglers that break that symmetry
// are layered on by engine/perturb.h.
#pragma once

#include <vector>

#include "collective/comm.h"
#include "core/time.h"
#include "model/ops.h"
#include "model/transformer.h"
#include "parallel/mapping.h"
#include "sim/graph.h"

namespace ms::telemetry {
class Tracer;
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::engine {

/// Stream layout used by simulate_iteration: 4 streams per pipeline stage
/// (compute, send, recv, dp-comm) plus one trailing data-pipeline stream.
/// Consumers of IterationResult::spans (timelines, dashboards) use this to
/// fold streams back onto pipeline stages.
constexpr int kStreamsPerStage = 4;
constexpr int stage_of_stream(int stream) { return stream / kStreamsPerStage; }
constexpr bool is_compute_stream(int stream) {
  return stream % kStreamsPerStage == 0;
}

struct OverlapOptions {
  /// §3.2 TP/SP: fuse all-gather/reduce-scatter with FFN GEMM chunks.
  bool tp_overlap = false;
  int tp_overlap_chunks = 8;
  /// §3.2 PP: decouple send/recv, launch asynchronously on own streams.
  bool pp_decouple = false;
  /// §3.2 DP: chunk-wise all-gather prefetch / reduce-scatter issue with
  /// priority ordering, instead of bucketed barriers at iteration edges.
  bool dp_overlap = false;
  /// §3.4: asynchronous data preprocessing + tree-based loading (the
  /// exposed data-pipeline time at each step head shrinks).
  bool async_data_pipeline = false;

  static OverlapOptions megatron_lm() { return {}; }
  static OverlapOptions megascale() {
    OverlapOptions o;
    o.tp_overlap = true;
    o.pp_decouple = true;
    o.dp_overlap = true;
    o.async_data_pipeline = true;
    return o;
  }
};

enum class PipelineSchedule {
  kOneFOneB,  ///< classic or interleaved 1F1B, per par.vpp (the default)
  kGpipe,     ///< all-forward-then-all-backward (§2); requires vpp == 1
};

struct JobConfig {
  model::ModelConfig model;
  parallel::ParallelConfig par;
  model::OperatorProfile ops;
  collective::ClusterSpec cluster;
  OverlapOptions overlap;
  PipelineSchedule schedule = PipelineSchedule::kOneFOneB;
  /// Full activation recomputation: the backward pass re-runs the forward
  /// (≈+33% compute) but only layer-boundary activations are stored.
  /// The paper's setup uses selective recomputation (folded into operator
  /// efficiency) — this knob quantifies the alternative.
  bool full_recompute = false;
  /// Global batch in sequences; microbatch size is 1 sequence.
  int global_batch = 256;
  /// Effective fraction of nominal NIC bandwidth (ECMP conflicts, CC).
  double network_efficiency = 0.9;
  /// Data loading + preprocessing time per step when exposed (§3.4).
  TimeNs data_pipeline_time = milliseconds(250.0);
  /// Per-stage compute slowdown factors (straggler injection); empty means
  /// nominal speed. Size must equal par.pp when present.
  std::vector<double> stage_speed;
  /// Per-link p2p slowdown factors, indexed by the *sending* stage (the
  /// NIC that serializes the transfer). Models a degraded link / ECMP hash
  /// conflict on one pipeline hop (§3.6, §5.2); empty means nominal. Size
  /// must equal par.pp when present.
  std::vector<double> link_speed;
  /// Optional telemetry sinks (not owned). When `tracer` is set, every
  /// executed op is routed through it as a span (rank = pipeline stage);
  /// when `metrics` is set, per-op histograms, collective call/byte
  /// counters and iteration-level gauges are recorded.
  telemetry::Tracer* tracer = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;

  int gpus() const { return par.world(); }
  int microbatches_per_replica() const { return global_batch / par.dp; }
  double tokens_per_iteration() const {
    return static_cast<double>(global_batch) * model.seq_len;
  }
};

struct IterationBreakdown {
  TimeNs data_pipeline = 0;   // exposed data loading at step head
  TimeNs dp_exposed = 0;      // DP collectives not hidden by compute
  TimeNs optimizer = 0;
  TimeNs pipeline_body = 0;   // the 1F1B region (compute + exposed PP/TP)
};

struct IterationResult {
  TimeNs iteration_time = 0;
  double mfu = 0;
  double tokens_per_second = 0;
  double aggregate_pflops = 0;  // credited PFLOP/s across the job
  IterationBreakdown breakdown;
  /// Per-op spans of the representative replica (stage = stream grouping),
  /// raw material for the §5 diagnosis tools.
  std::vector<sim::OpRecord> spans;
  /// Stage index -> compute-stream busy time (straggler analysis).
  std::vector<TimeNs> stage_compute_busy;
};

/// Validates divisibility constraints; returns a human-readable error or
/// empty string.
std::string validate(const JobConfig& cfg);

/// One-line summary of a configuration ("175B gpus=3072 tp=8 pp=8 dp=48
/// vpp=6 batch=6144 m=128 overlap=megascale") — the planner and CLIs print
/// winning JobConfigs through this so descriptions stay uniform.
std::string describe(const JobConfig& cfg);

/// Simulates one steady-state training iteration.
IterationResult simulate_iteration(const JobConfig& cfg);

/// Days to push `total_tokens` through at the measured rate.
double training_days(double total_tokens, double tokens_per_second);

}  // namespace ms::engine
