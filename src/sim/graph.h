// Dependency-graph executor on top of the event engine.
//
// Models a set of hardware queues ("streams", in the CUDA sense): each
// stream executes at most one operation at a time; an operation starts when
// all of its dependencies have finished and its stream is free. This is the
// substrate on which training iterations are simulated — compute kernels go
// on a compute stream, collectives on communication streams, and the overlap
// techniques of MegaScale §3.2 manifest as graph/stream structure.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "core/time.h"
#include "sim/engine.h"

namespace ms::sim {

using OpId = std::int32_t;
using StreamId = std::int32_t;

constexpr OpId kInvalidOp = -1;

struct OpSpec {
  std::string name;
  StreamId stream = 0;
  TimeNs duration = 0;
  /// Higher priority ops are issued first when several are ready on the same
  /// stream (MegaScale launches high-priority communication first, §3.2).
  int priority = 0;
  /// Optional dynamic duration: called at start time; overrides `duration`.
  /// Used for perturbation injection (GC pauses, stragglers).
  std::function<TimeNs(TimeNs start)> duration_fn;
  /// Optional completion hook.
  std::function<void(TimeNs start, TimeNs end)> on_finish;
  /// Free-form tag for span analysis (e.g. "fwd", "bwd", "dp-comm").
  std::string tag;
  /// Structured attributes for dependency reconstruction, encoded as
  /// space-separated `k=v` tokens (e.g. "s=1 c=0 mb=2 p=f to=2"). Parsed by
  /// diag::DepGraph; opaque to the executor.
  std::string detail;
};

/// Execution record for one op — the raw material for the §5 diagnosis
/// tools (heat maps, timelines).
struct OpRecord {
  OpId id = kInvalidOp;
  std::string name;
  std::string tag;
  std::string detail;
  StreamId stream = 0;
  TimeNs start = -1;
  TimeNs end = -1;
  bool done() const { return end >= 0; }
};

class GraphExecutor {
 public:
  /// Streams are created lazily: any StreamId in [0, max_streams) is valid.
  explicit GraphExecutor(std::size_t max_streams = 64);

  StreamId add_stream();  // returns a fresh stream id
  std::size_t stream_count() const { return streams_.size(); }

  OpId add_op(OpSpec spec);

  /// Declares that `after` cannot start before `before` has finished.
  void add_dep(OpId before, OpId after);

  /// Runs the whole graph to completion on `engine`. May be called once.
  /// Returns the makespan (time from engine.now() at call to last finish).
  TimeNs run(Engine& engine);

  const std::vector<OpRecord>& records() const { return records_; }
  const OpRecord& record(OpId id) const { return records_[static_cast<std::size_t>(id)]; }

  /// Total busy time per stream (for utilization analysis).
  TimeNs stream_busy(StreamId s) const { return streams_[static_cast<std::size_t>(s)].busy; }

  std::size_t op_count() const { return specs_.size(); }

 private:
  struct ReadyEntry {
    int priority;
    OpId id;
    // max-heap on priority, FIFO (min id) within a priority level
    bool operator<(const ReadyEntry& o) const {
      return priority != o.priority ? priority < o.priority : id > o.id;
    }
  };
  struct StreamState {
    bool busy_now = false;
    TimeNs busy = 0;
    std::priority_queue<ReadyEntry> ready;
  };

  void on_ready(Engine& engine, OpId id);
  void try_issue(Engine& engine, StreamId s);
  void on_op_finished(Engine& engine, OpId id);

  std::vector<OpSpec> specs_;
  std::vector<OpRecord> records_;
  std::vector<std::vector<OpId>> dependents_;
  std::vector<int> indegree_;
  std::vector<StreamState> streams_;
  TimeNs start_time_ = 0;
  TimeNs finish_time_ = 0;
  std::size_t remaining_ = 0;
  bool ran_ = false;
};

}  // namespace ms::sim
