#include "sim/graph.h"

#include <cassert>
#include <stdexcept>

namespace ms::sim {

GraphExecutor::GraphExecutor(std::size_t max_streams) {
  streams_.resize(max_streams);
}

StreamId GraphExecutor::add_stream() {
  streams_.emplace_back();
  return static_cast<StreamId>(streams_.size() - 1);
}

OpId GraphExecutor::add_op(OpSpec spec) {
  assert(!ran_ && "graph already executed");
  assert(spec.stream >= 0 &&
         static_cast<std::size_t>(spec.stream) < streams_.size());
  const OpId id = static_cast<OpId>(specs_.size());
  OpRecord rec;
  rec.id = id;
  rec.name = spec.name;
  rec.tag = spec.tag;
  rec.detail = spec.detail;
  rec.stream = spec.stream;
  records_.push_back(std::move(rec));
  specs_.push_back(std::move(spec));
  dependents_.emplace_back();
  indegree_.push_back(0);
  return id;
}

void GraphExecutor::add_dep(OpId before, OpId after) {
  assert(before >= 0 && static_cast<std::size_t>(before) < specs_.size());
  assert(after >= 0 && static_cast<std::size_t>(after) < specs_.size());
  assert(before != after);
  dependents_[static_cast<std::size_t>(before)].push_back(after);
  ++indegree_[static_cast<std::size_t>(after)];
}

TimeNs GraphExecutor::run(Engine& engine) {
  if (ran_) throw std::logic_error("GraphExecutor::run called twice");
  ran_ = true;
  start_time_ = engine.now();
  finish_time_ = start_time_;
  remaining_ = specs_.size();
  if (remaining_ == 0) return 0;

  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (indegree_[i] == 0) on_ready(engine, static_cast<OpId>(i));
  }
  engine.run();
  if (remaining_ != 0) {
    throw std::logic_error(
        "GraphExecutor: deadlock — dependency cycle or ops never became "
        "ready");
  }
  return finish_time_ - start_time_;
}

void GraphExecutor::on_ready(Engine& engine, OpId id) {
  const auto& spec = specs_[static_cast<std::size_t>(id)];
  auto& stream = streams_[static_cast<std::size_t>(spec.stream)];
  stream.ready.push(ReadyEntry{spec.priority, id});
  // Defer the issue decision to the end of the current timestamp so that all
  // ops becoming ready "simultaneously" are in the queue before the stream
  // picks by priority.
  const StreamId sid = spec.stream;
  engine.after(0, [this, &engine, sid] { try_issue(engine, sid); });
}

void GraphExecutor::try_issue(Engine& engine, StreamId s) {
  auto& stream = streams_[static_cast<std::size_t>(s)];
  if (stream.busy_now || stream.ready.empty()) return;
  const OpId id = stream.ready.top().id;
  stream.ready.pop();
  stream.busy_now = true;

  auto& spec = specs_[static_cast<std::size_t>(id)];
  auto& rec = records_[static_cast<std::size_t>(id)];
  rec.start = engine.now();
  const TimeNs dur =
      spec.duration_fn ? spec.duration_fn(rec.start) : spec.duration;
  assert(dur >= 0);
  engine.after(dur, [this, &engine, id] { on_op_finished(engine, id); });
}

void GraphExecutor::on_op_finished(Engine& engine, OpId id) {
  auto& spec = specs_[static_cast<std::size_t>(id)];
  auto& rec = records_[static_cast<std::size_t>(id)];
  rec.end = engine.now();
  finish_time_ = std::max(finish_time_, rec.end);

  auto& stream = streams_[static_cast<std::size_t>(spec.stream)];
  stream.busy_now = false;
  stream.busy += rec.end - rec.start;

  if (spec.on_finish) spec.on_finish(rec.start, rec.end);

  for (OpId dep : dependents_[static_cast<std::size_t>(id)]) {
    if (--indegree_[static_cast<std::size_t>(dep)] == 0) {
      on_ready(engine, dep);
    }
  }
  --remaining_;
  try_issue(engine, spec.stream);
}

}  // namespace ms::sim
