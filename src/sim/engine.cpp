#include "sim/engine.h"

#include <string>
#include <utility>

#include "check/audit.h"

namespace ms::sim {

#if defined(MS_PROF_ENABLED) && MS_PROF_ENABLED
namespace {

// Attribution bucket for events scheduled without an explicit kind.
prof::ScopeId default_event_scope() {
  static const prof::ScopeId id = prof::register_scope("engine.event");
  return id;
}

}  // namespace
#endif

EventId Engine::at(TimeNs t, std::function<void()> fn, prof::ScopeId kind) {
  MS_AUDIT("sim.engine", "schedule_not_in_past", t >= now_,
           "at(" + std::to_string(t) + ") with now=" + std::to_string(now_));
  if (t < now_) t = now_;  // clamp: keeps time monotone even under misuse
  const EventId id = next_id_++;
  queue_.push(Entry{t, id});
  callbacks_.emplace(id, Callback{std::move(fn), kind});
  ++live_;
  if (queue_.size() > peak_queue_size_) peak_queue_size_ = queue_.size();
  // One heap-backed callback node per scheduled event: the allocation the
  // ROADMAP item-2 slab rebuild is meant to eliminate. Deterministic, so
  // the micro_engine bench gates allocs/event at exact tolerance.
  MS_PROF_COUNT_ALLOC(1);
  return id;
}

EventId Engine::after(TimeNs delay, std::function<void()> fn,
                      prof::ScopeId kind) {
  if (delay < 0) delay = 0;
  return at(now_ + delay, std::move(fn), kind);
}

bool Engine::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  ++cancelled_;
  return true;
}

bool Engine::pop_next(Entry& out) {
  MS_PROF_SCOPE("engine.pop");
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (callbacks_.count(e.id)) {
      out = e;
      return true;
    }
    ++tombstone_pops_;  // tombstoned (cancelled) — skip
  }
  return false;
}

void Engine::fire(const Entry& e) {
  MS_AUDIT("sim.engine", "time_monotonic", e.t >= now_,
           "event " + std::to_string(e.t) + "ns fired with clock at " +
               std::to_string(now_) + "ns");
  MS_AUDIT("sim.engine", "fifo_within_timestamp",
           e.t != last_fired_t_ || e.id > last_fired_id_,
           "event id " + std::to_string(e.id) + " fired after id " +
               std::to_string(last_fired_id_) + " at the same timestamp");
  now_ = e.t;
  last_fired_t_ = e.t;
  last_fired_id_ = e.id;
  digest_.fold(e.id);
  digest_.fold(e.t);
  auto it = callbacks_.find(e.id);
  // pop_next guaranteed presence; move the callback out before invoking so
  // the callback may freely schedule/cancel.
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  --live_;
  ++executed_;
  // Tombstone closure: every id ever issued is live, fired or cancelled.
  MS_AUDIT("sim.engine", "tombstone_closure",
           next_id_ - 1 == executed_ + cancelled_ + live_,
           "issued=" + std::to_string(next_id_ - 1) + " executed=" +
               std::to_string(executed_) + " cancelled=" +
               std::to_string(cancelled_) + " live=" + std::to_string(live_));
#if defined(MS_PROF_ENABLED) && MS_PROF_ENABLED
  {
    // Per-event handler-cost attribution: tagged events under their kind
    // scope, the rest under "engine.event". One relaxed load + branch
    // when the profiler is dormant.
    prof::ScopeTimer timer(cb.kind != prof::kInvalidScope
                               ? cb.kind
                               : default_event_scope());
    cb.fn();
  }
#else
  cb.fn();
#endif
}

bool Engine::step() {
  Entry e;
  if (!pop_next(e)) return false;
  fire(e);
  return true;
}

void Engine::run() {
  MS_PROF_SCOPE("engine.run");
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Engine::run_until(TimeNs t) {
  MS_PROF_SCOPE("engine.run_until");
  stopped_ = false;
  Entry e;
  while (!stopped_) {
    if (!pop_next(e)) break;
    if (e.t > t) {
      // Push it back; it stays pending.
      queue_.push(e);
      break;
    }
    fire(e);
  }
  // A stop() mid-window leaves the clock at the last executed event so
  // resuming does not skip the untouched remainder of the window.
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace ms::sim
