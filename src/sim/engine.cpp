#include "sim/engine.h"

#include <cassert>
#include <utility>

namespace ms::sim {

EventId Engine::at(TimeNs t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Entry{t, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

EventId Engine::after(TimeNs delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

bool Engine::pop_next(Entry& out) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (callbacks_.count(e.id)) {
      out = e;
      return true;
    }
    // tombstoned (cancelled) — skip
  }
  return false;
}

bool Engine::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.t;
  auto it = callbacks_.find(e.id);
  // pop_next guaranteed presence; move the callback out before invoking so
  // the callback may freely schedule/cancel.
  std::function<void()> fn = std::move(it->second);
  callbacks_.erase(it);
  --live_;
  ++executed_;
  fn();
  return true;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Engine::run_until(TimeNs t) {
  stopped_ = false;
  Entry e;
  while (!stopped_) {
    if (queue_.empty()) break;
    // Peek: find next live entry without consuming permanently.
    if (!pop_next(e)) break;
    if (e.t > t) {
      // Push it back; it stays pending.
      queue_.push(e);
      break;
    }
    now_ = e.t;
    auto it = callbacks_.find(e.id);
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    --live_;
    ++executed_;
    fn();
  }
  if (now_ < t) now_ = t;
}

}  // namespace ms::sim
