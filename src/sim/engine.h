// Discrete-event simulation engine.
//
// Deterministic: events at the same timestamp execute in schedule order
// (FIFO within a timestamp), so runs are reproducible regardless of the
// underlying priority-queue implementation. Determinism is audited, not
// just promised: every executed event is folded into digest(), and the
// MS_AUDIT hooks check time monotonicity, FIFO ordering and tombstone
// accounting as the run progresses (see check/audit.h).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "check/digest.h"
#include "core/time.h"
#include "prof/profiler.h"

namespace ms::sim {

/// Handle returned by schedule(); can cancel the event before it fires.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  TimeNs now() const { return now_; }

  /// Schedules fn at absolute time t. Scheduling into the past is an
  /// audited invariant violation; the event is clamped to fire at now().
  /// `kind` optionally tags the event with a profiler scope so the
  /// self-profiler attributes handler cost per event type; untagged
  /// events aggregate under "engine.event". Purely observational — kind
  /// never influences ordering, the digest, or any simulated result.
  EventId at(TimeNs t, std::function<void()> fn,
             prof::ScopeId kind = prof::kInvalidScope);

  /// Schedules fn after a relative delay (clamped to >= 0).
  EventId after(TimeNs delay, std::function<void()> fn,
                prof::ScopeId kind = prof::kInvalidScope);

  /// Cancels a pending event. Returns false if it already fired / was
  /// cancelled. Cancellation is O(1): the slot is tombstoned.
  bool cancel(EventId id);

  /// Runs until the queue is drained or stop() is called.
  void run();

  /// Runs events with time <= t, then sets now() = t. If stop() fires
  /// mid-run, the clock stays at the last executed event so a later
  /// run()/run_until() resumes without losing time.
  void run_until(TimeNs t);

  /// Executes the single next event. Returns false if queue empty.
  bool step();

  /// Requests run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (cancelled events excluded).
  std::uint64_t executed() const { return executed_; }

  /// Number of events cancelled before firing.
  std::uint64_t cancelled() const { return cancelled_; }

  /// Number of events currently pending (tombstones excluded).
  std::size_t pending() const { return live_; }

  // ------------------------------------------------- introspection (prof)
  // Event-loop observability for the self-profiler and telemetry gauges
  // (`engine_queue_depth`). All O(1) reads of existing counters.

  /// Heap entries currently in the priority queue, tombstones INCLUDED —
  /// this is the number the O(log n) heap operations actually see.
  std::size_t queue_size() const { return queue_.size(); }

  /// High-water mark of queue_size() since construction.
  std::size_t peak_queue_size() const { return peak_queue_size_; }

  /// Cancelled entries still occupying heap slots (queue_size() minus
  /// live events). They cost pop-and-skip work until their timestamp.
  std::size_t tombstone_count() const {
    return queue_.size() > live_ ? queue_.size() - live_ : 0;
  }

  /// Tombstoned entries popped and skipped so far — the cumulative price
  /// of O(1) cancellation.
  std::uint64_t tombstone_pops() const { return tombstone_pops_; }

  /// Total event ids ever issued (fired + cancelled + pending).
  std::uint64_t scheduled() const { return next_id_ - 1; }

  /// Order-sensitive digest over every executed (event id, timestamp)
  /// pair. Two runs of the same deterministic scenario produce identical
  /// digests; see check/digest.h.
  std::uint64_t digest() const { return digest_.value(); }

 private:
  struct Entry {
    TimeNs t;
    EventId id;  // also the FIFO tiebreaker
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  bool pop_next(Entry& out);
  /// Audits ordering invariants, folds the digest, runs the callback.
  void fire(const Entry& e);

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t tombstone_pops_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_queue_size_ = 0;
  bool stopped_ = false;
  TimeNs last_fired_t_ = -1;
  EventId last_fired_id_ = 0;
  check::Digest digest_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  struct Callback {
    std::function<void()> fn;
    prof::ScopeId kind = prof::kInvalidScope;
  };
  // id -> callback; erased on fire/cancel. Engine overhead is not the
  // bottleneck in our experiments, so std::unordered_map is fine here.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace ms::sim
