// Discrete-event simulation engine.
//
// Deterministic: events at the same timestamp execute in schedule order
// (FIFO within a timestamp), so runs are reproducible regardless of the
// underlying priority-queue implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/time.h"

namespace ms::sim {

/// Handle returned by schedule(); can cancel the event before it fires.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  TimeNs now() const { return now_; }

  /// Schedules fn at absolute time t (must be >= now()).
  EventId at(TimeNs t, std::function<void()> fn);

  /// Schedules fn after a relative delay (clamped to >= 0).
  EventId after(TimeNs delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already fired / was
  /// cancelled. Cancellation is O(1): the slot is tombstoned.
  bool cancel(EventId id);

  /// Runs until the queue is drained or stop() is called.
  void run();

  /// Runs events with time <= t, then sets now() = t.
  void run_until(TimeNs t);

  /// Executes the single next event. Returns false if queue empty.
  bool step();

  /// Requests run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (cancelled events excluded).
  std::uint64_t executed() const { return executed_; }

  /// Number of events currently pending (tombstones excluded).
  std::size_t pending() const { return live_; }

 private:
  struct Entry {
    TimeNs t;
    EventId id;  // also the FIFO tiebreaker
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  bool pop_next(Entry& out);

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  // id -> callback; erased on fire/cancel. Engine overhead is not the
  // bottleneck in our experiments, so std::unordered_map is fine here.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace ms::sim
