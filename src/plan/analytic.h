// Closed-form step-time model for plan ranking (Megatron-LM-style pruning).
//
// The planner cannot afford a discrete-event simulation per candidate — at
// 12,288 GPUs the divisibility-valid space runs to hundreds of layouts, and
// property tests sweep whole families of specs. This model prices one
// candidate with pure arithmetic, mirroring the engine's own construction
// term by term so the estimate tracks the simulator instead of a separate
// theory:
//
//   body   = m * T + (pp-1)/vpp * T + (pp-1) * t_p2p     (pipeline + bubble)
//   T      = slot time of the bottleneck stage: its vpp chunks of
//            fwd+bwd compute with per-layer TP all-gather/reduce-scatter
//            folded (chunked-overlap bound when TP fusion is on), plus the
//            logits head on the last stage, plus the blocking send/recv
//            wire time when PP overlap is off
//   step   = data + dp_head + body + dp_tail + optimizer
//
// where dp_head/dp_tail are the exposed halves of the ZeRO-2 parameter
// all-gather / gradient reduce-scatter (fully exposed when DP overlap is
// off; first-gather/last-scatter edges when it is on). The α–β collective
// model prices every term, so analytic and simulated rankings share one
// cost vocabulary. Cross-validated against the engine in crossval_test
// (tolerance band) and plan_property_test (pruner admissibility).
#pragma once

#include "core/time.h"
#include "plan/space.h"

namespace ms::plan {

struct AnalyticCost {
  TimeNs step = 0;        ///< estimated iteration time
  TimeNs body = 0;        ///< pipeline region incl. bubble and ramp
  TimeNs bubble = 0;      ///< (pp-1)/vpp slots of the bottleneck stage
  TimeNs tp_exposed = 0;  ///< per-step TP comm not hidden by GEMM chunks
  TimeNs pp_exposed = 0;  ///< p2p wire time on the critical path
  TimeNs dp_exposed = 0;  ///< ZeRO collectives outside the compute span
  TimeNs optimizer = 0;
  TimeNs data = 0;        ///< exposed data-pipeline time at the step head
  double bubble_fraction = 0;  ///< (pp-1)/(vpp*m)
  double mfu = 0;              ///< implied by `step`
  double memory_bytes = 0;     ///< peak per-GPU working set
};

AnalyticCost analytic_cost(const PlanSpec& spec, const PlanCandidate& cand);

}  // namespace ms::plan
