// `msplan` — the parallelism-plan auto-tuner CLI (answers "best plan for
// model M on cluster C").
//
//   msplan --model 175b --gpus 12288 --batch 6144
//       enumerate the (TP x PP x DP x vpp x recompute) space, rank with the
//       analytic model, DES-validate the top-K, print the ranked table and
//       the winning JobConfig
//   msplan --model 175b --gpus 3072 --batch 6144 --json plans.jsonl
//       additionally write the full ranked report (header + one candidate
//       per line, deterministic digest) for tooling/CI
//
// Flags: --top-k K        analytic finalists to simulate (default 8)
//        --top N          table rows to print (default 10; 0 = all)
//        --net-eff X|auto fabric efficiency (default auto: derived from the
//                         CLOS/ECMP analysis at the given GPU count)
//        --baseline       Megatron-LM operators + no MegaScale overlap
//        --schedule 1f1b|gpipe
//        --recompute-search  include full-recomputation variants
//        --no-sim         analytic ranking only (no DES validation)
//
// Like msdiag, the entry point takes argv-style strings and writes to
// caller-supplied streams so tests drive it exactly like the shell does.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ms::plan {

/// Runs one msplan invocation. Returns a process exit code: 0 on success,
/// 1 on usage errors or an infeasible search space.
int msplan_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

std::string msplan_usage();

}  // namespace ms::plan
