#include "plan/analytic.h"

#include <algorithm>

#include "collective/comm.h"
#include "model/ops.h"
#include "parallel/overlap.h"
#include "parallel/pipeline.h"
#include "parallel/zero.h"

namespace ms::plan {

AnalyticCost analytic_cost(const PlanSpec& spec, const PlanCandidate& cand) {
  const auto& par = cand.par;
  const int pp = par.pp;
  const int vpp = par.vpp;
  const int m = cand.microbatches(spec);
  const int layers_per_chunk = spec.model.layers / (pp * vpp);
  const std::int64_t micro_tokens = spec.model.seq_len;
  const std::int64_t elem_tokens =
      par.sequence_parallel ? micro_tokens / par.tp : micro_tokens;

  const model::OpCostModel cost(spec.model, spec.ops, spec.cluster.gpu);
  const collective::CollectiveModel coll(spec.cluster,
                                         spec.network_efficiency);
  const parallel::Zero2Sharding zero(model::params_count(spec.model), par);

  AnalyticCost out;

  // ---- per-layer TP/SP communication, folded exactly as the engine does.
  const Bytes act_bytes = micro_tokens * spec.model.hidden * 2;
  const int tp_comms_per_layer = spec.model.parallel_block ? 1 : 2;
  TimeNs tp_comm_layer = 0;
  if (par.tp > 1) {
    tp_comm_layer =
        tp_comms_per_layer *
        (coll.all_gather(act_bytes, par.tp, collective::Domain::kIntraNode) +
         coll.reduce_scatter(act_bytes, par.tp,
                             collective::Domain::kIntraNode));
  }
  const TimeNs fwd_layer = cost.fwd_layer(micro_tokens, elem_tokens, par.tp);
  const TimeNs bwd_layer = cost.bwd_layer(micro_tokens, elem_tokens, par.tp);

  TimeNs tp_exposed_layer = tp_comm_layer;
  auto fold_tp = [&](TimeNs compute) -> TimeNs {
    if (tp_comm_layer == 0) return compute;
    if (spec.overlap.tp_overlap) {
      const auto r = parallel::chunked_overlap(
          compute, tp_comm_layer, spec.overlap.tp_overlap_chunks);
      tp_exposed_layer = r.exposed_comm;
      return r.total;
    }
    return compute + tp_comm_layer;
  };
  TimeNs chunk_fwd = layers_per_chunk * fold_tp(fwd_layer);
  const TimeNs fwd_tp_exposed = layers_per_chunk * tp_exposed_layer;
  TimeNs chunk_bwd = layers_per_chunk * fold_tp(bwd_layer);
  const TimeNs bwd_tp_exposed = layers_per_chunk * tp_exposed_layer;
  if (cand.full_recompute) chunk_bwd += chunk_fwd;
  const TimeNs logits = cost.fwd_logits(micro_tokens, par.tp);

  // ---- p2p wire time between adjacent stages (inter-node; PP is the
  // outermost dimension of the rank mapping, so every hop crosses hosts).
  const Bytes p2p_bytes =
      par.sequence_parallel ? act_bytes / par.tp : act_bytes;
  const TimeNs p2p =
      pp > 1 ? coll.send_recv(p2p_bytes, collective::Domain::kInterNode) : 0;

  // ---- bottleneck slot time: the last stage carries the logits head; when
  // send/recv block the compute stream (no PP decoupling) every chunk pass
  // pays the wire time on its critical path too.
  TimeNs slot = vpp * (chunk_fwd + chunk_bwd) + 3 * logits;
  TimeNs pp_exposed = 0;
  if (pp > 1 && !spec.overlap.pp_decouple) {
    // Interior stages: recv + send per chunk pass, forward and backward.
    pp_exposed = static_cast<TimeNs>(4 * vpp) * p2p;
    slot += pp_exposed;
  }

  // ---- pipeline body: m slots + the (pp-1)/vpp warm-up/cool-down bubble
  // plus the transfer ramp (each warm-up hop pays one wire delay even when
  // transfers are decoupled onto their own streams).
  const double bubble_slots = static_cast<double>(pp - 1) / vpp;
  out.bubble = static_cast<TimeNs>(bubble_slots * static_cast<double>(slot));
  out.body = static_cast<TimeNs>(m) * slot + out.bubble +
             static_cast<TimeNs>(pp - 1) * p2p;
  out.bubble_fraction = parallel::analytic_bubble_fraction(pp, vpp, m);
  out.tp_exposed =
      static_cast<TimeNs>(m) *
      static_cast<TimeNs>(vpp) * (fwd_tp_exposed + bwd_tp_exposed);
  out.pp_exposed = static_cast<TimeNs>(m) * pp_exposed +
                   static_cast<TimeNs>(pp - 1) * p2p;

  // ---- ZeRO DP collectives (§2 Figure 1), mirrored from the engine.
  TimeNs dp_ag_chunk = 0, dp_rs_chunk = 0;
  if (par.dp > 1) {
    dp_ag_chunk = coll.all_gather(zero.allgather_bytes_per_chunk(), par.dp,
                                  collective::Domain::kInterNode);
    dp_rs_chunk = coll.reduce_scatter(zero.reducescatter_bytes_per_chunk(),
                                      par.dp, collective::Domain::kInterNode);
    if (par.zero_stage <= 1) {
      dp_rs_chunk = coll.all_reduce(zero.reducescatter_bytes_per_chunk(),
                                    par.dp, collective::Domain::kInterNode);
    } else if (par.zero_stage >= 3) {
      dp_ag_chunk *= 2;
    }
  }
  out.data = spec.overlap.async_data_pipeline ? 0 : spec.data_pipeline_time;
  if (par.dp > 1) {
    if (spec.overlap.dp_overlap) {
      // Chunk-wise prefetch: the highest-priority all-gather runs under the
      // data op; only its overhang delays the first forward. The last
      // chunk's reduce-scatter is exposed before the optimizer. Whatever
      // the compute span cannot absorb — the dp stream serializes all
      // vpp gathers and scatters — spills out as exposed time too.
      const TimeNs dp_total =
          static_cast<TimeNs>(vpp) * (dp_ag_chunk + dp_rs_chunk);
      out.dp_exposed = std::max<TimeNs>(0, dp_ag_chunk - out.data) +
                       dp_rs_chunk +
                       std::max<TimeNs>(0, dp_total - out.body);
    } else {
      // Bucketed at the iteration edges: fully exposed both ways.
      out.dp_exposed = static_cast<TimeNs>(vpp) * (dp_ag_chunk + dp_rs_chunk);
    }
  }

  out.optimizer = cost.optimizer_step(zero.optimizer_shard_params());
  out.step = out.data + out.body + out.dp_exposed + out.optimizer;

  const double step_s = to_seconds(out.step);
  const double tokens_per_second =
      static_cast<double>(spec.global_batch) * spec.model.seq_len / step_s;
  out.mfu = model::mfu(spec.model, tokens_per_second, spec.gpus,
                       spec.cluster.gpu.peak_flops);
  out.memory_bytes = candidate_memory(spec, cand).total();
  return out;
}

}  // namespace ms::plan
