#include "plan/plan_cli.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "engine/job.h"
#include "plan/planner.h"

namespace ms::plan {

std::string msplan_usage() {
  return
      "usage: msplan --model 175b|530b|13b --gpus N [--batch B]\n"
      "              [--top-k K] [--top N] [--net-eff X|auto] [--baseline]\n"
      "              [--schedule 1f1b|gpipe] [--recompute-search]\n"
      "              [--json FILE] [--no-sim]\n"
      "  searches the (TP x PP x DP x vpp x recompute) space for the given\n"
      "  model and cluster size: analytic pruning (bubble fraction, alpha-\n"
      "  beta communication volume, memory), then DES validation of the\n"
      "  top-K finalists; prints the ranked table and the winning JobConfig\n"
      "  and optionally writes the full JSONL report with its digest\n";
}

int msplan_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  PlanSpec spec;
  PlannerOptions opt;
  std::string model_name = "175b";
  std::string json_path;
  std::string net_eff = "auto";
  bool baseline = false;
  int top_rows = 10;
  spec.gpus = 0;
  spec.global_batch = 0;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const char* {
      return (i + 1 < args.size()) ? args[++i].c_str() : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--model" && (v = value())) {
      model_name = v;
    } else if (arg == "--gpus" && (v = value())) {
      spec.gpus = std::atoi(v);
    } else if (arg == "--batch" && (v = value())) {
      spec.global_batch = std::atoi(v);
    } else if (arg == "--top-k" && (v = value())) {
      opt.top_k = std::atoi(v);
    } else if (arg == "--top" && (v = value())) {
      top_rows = std::atoi(v);
    } else if (arg == "--net-eff" && (v = value())) {
      net_eff = v;
    } else if (arg == "--schedule" && (v = value())) {
      const std::string s = v;
      if (s == "gpipe") {
        spec.schedule = engine::PipelineSchedule::kGpipe;
      } else if (s != "1f1b") {
        err << "msplan: unknown schedule `" << s << "`\n" << msplan_usage();
        return 1;
      }
    } else if (arg == "--json" && (v = value())) {
      json_path = v;
    } else if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--recompute-search") {
      spec.search_recompute = true;
    } else if (arg == "--no-sim") {
      opt.simulate = false;
    } else {
      err << "msplan: unknown or incomplete argument `" << arg << "`\n"
          << msplan_usage();
      return 1;
    }
  }

  if (!model::config_by_name(model_name, spec.model)) {
    err << "msplan: unknown model `" << model_name << "`\n" << msplan_usage();
    return 1;
  }
  if (spec.gpus <= 0) {
    err << "msplan: --gpus is required and must be positive\n"
        << msplan_usage();
    return 1;
  }
  if (spec.global_batch <= 0) spec.global_batch = 6144;
  if (baseline) {
    spec.ops = model::OperatorProfile::megatron_baseline();
    spec.overlap = engine::OverlapOptions::megatron_lm();
  } else {
    // The MegaScale software generation also changes the model execution
    // (PTB + sliding-window attention), exactly as the Table 2 benches do.
    spec.model.parallel_block = true;
    spec.model.attention = model::AttentionKind::kSlidingWindow;
    spec.model.window = 512;
  }
  if (net_eff == "auto") {
    spec.network_efficiency = fabric_network_efficiency(spec.gpus);
  } else {
    spec.network_efficiency = std::atof(net_eff.c_str());
    if (spec.network_efficiency <= 0 || spec.network_efficiency > 1.0) {
      err << "msplan: --net-eff must be in (0,1] or `auto`\n";
      return 1;
    }
  }

  const PlanReport report = search(spec, opt);
  out << "msplan: " << spec.model.name << " on " << spec.gpus
      << " GPUs, batch " << spec.global_batch << ", net-eff "
      << spec.network_efficiency << "\n";
  out << "space: " << report.enumerated << " candidates, "
      << report.memory_rejected << " memory-rejected, " << report.feasible()
      << " feasible, " << report.simulated << " simulated\n\n";
  if (report.plans.empty()) {
    err << "msplan: no feasible plan (model does not fit this cluster)\n";
    return 1;
  }
  out << report.render_table(top_rows) << "\n";

  const engine::JobConfig winner = best_job_config(spec, report);
  out << "winner: " << engine::describe(winner) << "\n";
  char digest_hex[24];
  std::snprintf(digest_hex, sizeof(digest_hex), "0x%016llx",
                static_cast<unsigned long long>(report.digest()));
  out << "digest: " << digest_hex << "\n";

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      err << "msplan: cannot write " << json_path << "\n";
      return 1;
    }
    f << report.to_jsonl();
    out << "report: " << json_path << " (" << report.plans.size()
        << " plans)\n";
  }
  return 0;
}

}  // namespace ms::plan
