#include "plan/space.h"

#include <algorithm>

#include "parallel/pipeline.h"

namespace ms::plan {

namespace {

bool divisibility_valid(const PlanSpec& spec, int tp, int pp, int dp,
                        int vpp) {
  if (tp * pp * dp != spec.gpus) return false;
  if (spec.global_batch % dp != 0) return false;
  if (spec.model.layers % (pp * vpp) != 0) return false;
  if (pp == 1 && vpp != 1) return false;
  if (spec.schedule == engine::PipelineSchedule::kGpipe && vpp != 1) {
    return false;
  }
  const int m = spec.global_batch / dp;
  if (vpp > 1 && m % pp != 0) return false;
  return true;
}

}  // namespace

std::vector<PlanCandidate> enumerate_space(const PlanSpec& spec) {
  std::vector<PlanCandidate> out;
  const int node = spec.cluster.gpus_per_node;
  for (int tp = 1; tp <= node && tp <= spec.gpus; ++tp) {
    // TP stays inside one NVLink domain (the repo's topology mapping):
    // it must tile the node exactly so no TP group straddles machines.
    if (node % tp != 0 || spec.gpus % tp != 0) continue;
    const int rest = spec.gpus / tp;
    for (int pp = 1; pp <= rest && pp <= spec.model.layers; ++pp) {
      if (rest % pp != 0 || spec.model.layers % pp != 0) continue;
      const int dp = rest / pp;
      const int chunk_limit = spec.model.layers / pp;
      for (int vpp = 1; vpp <= std::min(spec.max_vpp, chunk_limit); ++vpp) {
        if (!divisibility_valid(spec, tp, pp, dp, vpp)) continue;
        parallel::ParallelConfig par;
        par.tp = tp;
        par.pp = pp;
        par.dp = dp;
        par.vpp = vpp;
        out.push_back({par, false});
        if (spec.search_recompute) out.push_back({par, true});
      }
    }
  }
  return out;
}

int peak_inflight(const PlanSpec& spec, const PlanCandidate& cand) {
  const int m = cand.microbatches(spec);
  if (spec.schedule == engine::PipelineSchedule::kGpipe) {
    // All-forward-then-all-backward keeps every microbatch's activations
    // alive through the forward phase.
    return m;
  }
  return parallel::peak_inflight_microbatches(cand.par.pp, /*stage=*/0,
                                              cand.par.vpp, m);
}

model::MemoryBreakdown candidate_memory(const PlanSpec& spec,
                                        const PlanCandidate& cand) {
  model::MemoryConfig mem = spec.memory;
  if (cand.full_recompute) {
    mem.activation_factor = model::MemoryConfig::kFullRecompute;
  }
  return model::peak_memory(spec.model, cand.par, peak_inflight(spec, cand),
                            mem);
}

bool feasible(const PlanSpec& spec, const PlanCandidate& cand) {
  return candidate_memory(spec, cand).total() <= spec.memory.gpu_hbm_bytes;
}

engine::JobConfig job_config(const PlanSpec& spec, const PlanCandidate& cand) {
  engine::JobConfig cfg;
  cfg.model = spec.model;
  cfg.par = cand.par;
  cfg.ops = spec.ops;
  cfg.cluster = spec.cluster;
  cfg.overlap = spec.overlap;
  cfg.schedule = spec.schedule;
  cfg.full_recompute = cand.full_recompute;
  cfg.global_batch = spec.global_batch;
  cfg.network_efficiency = spec.network_efficiency;
  cfg.data_pipeline_time = spec.data_pipeline_time;
  return cfg;
}

std::string candidate_name(const PlanCandidate& cand) {
  std::string name = "tp" + std::to_string(cand.par.tp) + " pp" +
                     std::to_string(cand.par.pp) + " dp" +
                     std::to_string(cand.par.dp) + " vpp" +
                     std::to_string(cand.par.vpp);
  if (cand.full_recompute) name += " rc";
  return name;
}

}  // namespace ms::plan
