#include "plan/planner.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

#include "check/digest.h"
#include "core/json.h"
#include "core/mutex.h"
#include "core/rng.h"
#include "core/table.h"
#include "net/ecmp.h"
#include "net/topology.h"

namespace ms::plan {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Deterministic total order on equal-cost plans: prefer fewer pipeline
/// stages, then smaller TP, then less interleaving — a fixed convention so
/// report order (and therefore the digest) never depends on sort internals.
std::tuple<TimeNs, int, int, int, int> tie_key(TimeNs step,
                                               const PlanCandidate& c) {
  return {step, c.par.pp, c.par.tp, c.par.vpp, c.full_recompute ? 1 : 0};
}

}  // namespace

PlanReport search(const PlanSpec& spec, const PlannerOptions& opt) {
  PlanReport report;
  report.model_name = spec.model.name;
  report.gpus = spec.gpus;
  report.global_batch = spec.global_batch;
  report.network_efficiency = spec.network_efficiency;
  report.top_k = opt.top_k;

  const auto space = enumerate_space(spec);
  report.enumerated = static_cast<int>(space.size());

  std::vector<RankedPlan> ranked;
  ranked.reserve(space.size());
  for (const auto& cand : space) {
    if (!feasible(spec, cand)) {
      ++report.memory_rejected;
      continue;
    }
    RankedPlan plan;
    plan.cand = cand;
    plan.analytic = analytic_cost(spec, cand);
    ranked.push_back(plan);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedPlan& a, const RankedPlan& b) {
              return tie_key(a.analytic.step, a.cand) <
                     tie_key(b.analytic.step, b.cand);
            });
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    ranked[i].analytic_rank = static_cast<int>(i) + 1;
  }

  // DES-validate the analytic finalists; the simulator, not the pruner,
  // picks the winner.
  const std::size_t finalists =
      opt.simulate
          ? std::min(ranked.size(), static_cast<std::size_t>(
                                        std::max(0, opt.top_k)))
          : 0;
  for (std::size_t i = 0; i < finalists; ++i) {
    const auto cfg = job_config(spec, ranked[i].cand);
    const auto r = engine::simulate_iteration(cfg);
    ranked[i].simulated = true;
    ranked[i].sim_step = r.iteration_time;
    ranked[i].sim_mfu = r.mfu;
    ++report.simulated;
  }
  std::sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(finalists),
            [](const RankedPlan& a, const RankedPlan& b) {
              return tie_key(a.sim_step, a.cand) < tie_key(b.sim_step, b.cand);
            });
  report.plans = std::move(ranked);
  return report;
}

engine::JobConfig best_job_config(const PlanSpec& spec,
                                  const PlanReport& report) {
  return job_config(spec, report.best().cand);
}

std::uint64_t PlanReport::digest() const {
  check::Digest d;
  d.fold(std::string_view("msplan"));
  d.fold(std::string_view(model_name));
  d.fold(static_cast<std::uint64_t>(gpus));
  d.fold(static_cast<std::uint64_t>(global_batch));
  d.fold(std::string_view(fmt_double(network_efficiency)));
  d.fold(static_cast<std::uint64_t>(enumerated));
  d.fold(static_cast<std::uint64_t>(memory_rejected));
  d.fold(static_cast<std::uint64_t>(simulated));
  for (const auto& plan : plans) {
    d.fold(static_cast<std::uint64_t>(plan.cand.par.tp));
    d.fold(static_cast<std::uint64_t>(plan.cand.par.pp));
    d.fold(static_cast<std::uint64_t>(plan.cand.par.dp));
    d.fold(static_cast<std::uint64_t>(plan.cand.par.vpp));
    d.fold(static_cast<std::uint64_t>(plan.cand.full_recompute ? 1 : 0));
    d.fold(plan.analytic.step);
    d.fold(plan.simulated ? plan.sim_step : TimeNs{0});
  }
  return d.value();
}

std::string PlanReport::to_jsonl() const {
  char digest_hex[24];
  std::snprintf(digest_hex, sizeof(digest_hex), "0x%016llx",
                static_cast<unsigned long long>(digest()));
  std::string out = "{\"plan_search\":{\"model\":\"" +
                    json::escape(model_name) + "\"";
  out += ",\"gpus\":" + std::to_string(gpus);
  out += ",\"global_batch\":" + std::to_string(global_batch);
  out += ",\"network_efficiency\":" + fmt_double(network_efficiency);
  out += ",\"top_k\":" + std::to_string(top_k);
  out += ",\"enumerated\":" + std::to_string(enumerated);
  out += ",\"memory_rejected\":" + std::to_string(memory_rejected);
  out += ",\"simulated\":" + std::to_string(simulated);
  out += std::string(",\"digest\":\"") + digest_hex + "\"}}\n";
  int rank = 0;
  for (const auto& plan : plans) {
    out += "{\"rank\":" + std::to_string(++rank);
    out += ",\"tp\":" + std::to_string(plan.cand.par.tp);
    out += ",\"pp\":" + std::to_string(plan.cand.par.pp);
    out += ",\"dp\":" + std::to_string(plan.cand.par.dp);
    out += ",\"vpp\":" + std::to_string(plan.cand.par.vpp);
    out += ",\"recompute\":" +
           std::to_string(plan.cand.full_recompute ? 1 : 0);
    out += ",\"analytic_rank\":" + std::to_string(plan.analytic_rank);
    out += ",\"analytic_step_ns\":" + std::to_string(plan.analytic.step);
    out += ",\"bubble_fraction\":" + fmt_double(plan.analytic.bubble_fraction);
    out += ",\"analytic_mfu\":" + fmt_double(plan.analytic.mfu);
    out += ",\"memory_bytes\":" + fmt_double(plan.analytic.memory_bytes);
    out += ",\"simulated\":" + std::to_string(plan.simulated ? 1 : 0);
    if (plan.simulated) {
      out += ",\"sim_step_ns\":" + std::to_string(plan.sim_step);
      out += ",\"sim_mfu\":" + fmt_double(plan.sim_mfu);
    }
    out += "}\n";
  }
  return out;
}

std::string PlanReport::render_table(int top_n) const {
  Table table({"#", "Plan", "m", "Analytic(s)", "Bubble", "Mem(GB)",
               "Sim(s)", "MFU", "ARank"});
  int shown = 0;
  for (const auto& plan : plans) {
    if (top_n > 0 && shown >= top_n) break;
    ++shown;
    const int m = global_batch / plan.cand.par.dp;
    table.add_row(
        {Table::fmt_int(shown), candidate_name(plan.cand), Table::fmt_int(m),
         Table::fmt(to_seconds(plan.analytic.step), 2),
         Table::fmt_pct(plan.analytic.bubble_fraction),
         Table::fmt(plan.analytic.memory_bytes / static_cast<double>(1_GiB),
                    1),
         plan.simulated ? Table::fmt(to_seconds(plan.sim_step), 2) : "-",
         plan.simulated ? Table::fmt_pct(plan.sim_mfu)
                        : Table::fmt_pct(plan.analytic.mfu),
         Table::fmt_int(plan.analytic_rank)});
  }
  return table.to_string();
}

double fabric_network_efficiency(int gpus) {
  // One derivation shared with the Table 2 benches (bench/common.h
  // delegates here): a CLOS fabric proportional to the job, permutation
  // traffic, mean attained-throughput fraction under ECMP.
  static Mutex mu;
  static std::map<int, double>* cache MS_GUARDED_BY(mu) =
      new std::map<int, double>();
  {
    MutexLock lock(mu);
    auto it = cache->find(gpus);
    if (it != cache->end()) return it->second;
  }

  net::ClosParams p;
  p.hosts = std::max(16, gpus / 8);
  p.nics_per_host = 8;
  p.hosts_per_tor = 64;
  p.pods = std::max(1, p.hosts / 256);
  p.aggs_per_pod = 8;
  p.spines_per_plane = 8;
  net::ClosTopology topo(p);

  double total = 0;
  constexpr int kTrials = 3;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(0xEC3Fu + static_cast<std::uint64_t>(t));
    auto flows = net::permutation_traffic(topo, rng);
    total += net::analyze_ecmp(topo, flows).mean_throughput_frac;
  }
  const double eff = total / kTrials;
  MutexLock lock(mu);
  (*cache)[gpus] = eff;
  return eff;
}

}  // namespace ms::plan
