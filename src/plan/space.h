// Parallelism-plan search space (ROADMAP item 1, MegaScale Table 2).
//
// A PlanSpec fixes what the planner may NOT change — the model architecture,
// the cluster (GPU count, per-node NVLink domain, fabric efficiency), the
// global batch and the software generation (operator profile + overlap
// techniques). Everything else is the search space: the (TP × PP × DP × vpp
// × recompute) factorization of the job, with the microbatch count per
// replica implied by DP (microbatch size is one sequence, as in the engine).
//
// enumerate_space() yields every divisibility-valid point in deterministic
// order; feasible() additionally applies the per-GPU memory capacity using
// the exact schedule-derived peak in-flight microbatch count (the Table 2
// footnote: "batch size constrained by GPU memory"). Every candidate that
// survives is guaranteed to pass engine::validate() — the planner can hand
// any of them to the discrete-event engine unchecked.
#pragma once

#include <string>
#include <vector>

#include "collective/comm.h"
#include "engine/job.h"
#include "model/memory.h"
#include "model/transformer.h"
#include "parallel/mapping.h"

namespace ms::plan {

/// The fixed side of the planning problem: model M on cluster C.
struct PlanSpec {
  model::ModelConfig model;
  collective::ClusterSpec cluster;
  int gpus = 256;
  int global_batch = 256;
  /// Fraction of nominal NIC bandwidth collectives attain across the fabric
  /// (ECMP conflicts, CC overhead). fabric_network_efficiency() derives it
  /// from the CLOS/ECMP analysis; 0.9 matches the engine default.
  double network_efficiency = 0.9;
  model::MemoryConfig memory;
  model::OperatorProfile ops = model::OperatorProfile::megascale();
  engine::OverlapOptions overlap = engine::OverlapOptions::megascale();
  engine::PipelineSchedule schedule = engine::PipelineSchedule::kOneFOneB;
  /// When set, the space also contains full-recomputation variants of every
  /// layout (≈ +33% compute for an activation footprint of ~2h instead of
  /// ~34h per token-layer — trades step time for memory feasibility).
  bool search_recompute = false;
  /// Interleaving depths to consider (vpp still must divide layers/pp and
  /// keep microbatches % pp == 0; caps the schedule-construction cost).
  int max_vpp = 12;
  /// Exposed data-pipeline time at each step head (engine default).
  TimeNs data_pipeline_time = milliseconds(250.0);
};

/// One point of the search space. The topology mapping is implied by the
/// repo's rank layout (parallel/mapping.h): TP fastest-varying and confined
/// to one NVLink domain — enumerate_space() never emits tp >
/// gpus_per_node — DP next, PP outermost across the fabric.
struct PlanCandidate {
  parallel::ParallelConfig par;
  bool full_recompute = false;

  int microbatches(const PlanSpec& spec) const {
    return spec.global_batch / par.dp;
  }
  bool operator==(const PlanCandidate&) const = default;
};

/// All divisibility-valid candidates, deterministically ordered by
/// (tp, pp, vpp, full_recompute). Divisibility-valid means: tp divides the
/// NVLink domain, tp*pp*dp == spec.gpus, dp divides the global batch,
/// layers divide into pp*vpp chunks, and the interleaved schedule's
/// microbatches % pp == 0 constraint holds — exactly engine::validate()'s
/// requirements.
std::vector<PlanCandidate> enumerate_space(const PlanSpec& spec);

/// Peak in-flight microbatches of the candidate's worst pipeline stage
/// (stage 0 carries the deepest 1F1B warm-up; GPipe keeps all alive).
int peak_inflight(const PlanSpec& spec, const PlanCandidate& cand);

/// Memory accounting for the candidate (recompute variants swap the
/// activation factor to the full-recomputation preset).
model::MemoryBreakdown candidate_memory(const PlanSpec& spec,
                                        const PlanCandidate& cand);

/// Divisibility-valid AND the peak working set fits the per-GPU capacity.
bool feasible(const PlanSpec& spec, const PlanCandidate& cand);

/// Programmatic JobConfig construction: the candidate materialized as a
/// ready-to-simulate engine configuration.
engine::JobConfig job_config(const PlanSpec& spec, const PlanCandidate& cand);

/// "tp8 pp8 dp48 vpp6" (+" rc" for recompute variants).
std::string candidate_name(const PlanCandidate& cand);

}  // namespace ms::plan
