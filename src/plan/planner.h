// Parallelism-plan auto-tuner (ROADMAP item 1): analytic pruning + DES
// validation in one pass.
//
// search() enumerates the divisibility-valid (TP × PP × DP × vpp ×
// recompute) space, drops candidates whose peak working set exceeds the
// GPU, ranks the survivors with the closed-form analytic model
// (plan/analytic.h), then replays the analytic top-K through the
// discrete-event engine — the ground truth this repository reproduces
// Table 2 with — and re-ranks the finalists by simulated step time. The
// result is a PlanReport: the winning engine::JobConfig, every candidate's
// analytic cost, the finalists' simulated cost, and a deterministic FNV-1a
// digest over the ranked content so two runs of the same spec are
// bit-comparable (golden fixtures, CI).
//
// The analytic stage is a *pruner*, not an oracle: plan_property_test
// asserts admissibility (on exhaustively enumerable spaces the analytic
// top-K contains the DES optimum) and table2 tests assert the planner
// rediscovers the paper's hand-tuned 3D configurations at 3,072 / 6,144 /
// 12,288 GPUs within a few percent of the modeled optimum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plan/analytic.h"
#include "plan/space.h"

namespace ms::plan {

struct PlannerOptions {
  /// Analytic finalists to validate through the discrete-event engine.
  int top_k = 8;
  /// Skip the DES stage entirely (pure analytic ranking).
  bool simulate = true;
};

struct RankedPlan {
  PlanCandidate cand;
  AnalyticCost analytic;
  int analytic_rank = 0;  ///< 1-based position in the analytic ranking
  bool simulated = false;
  TimeNs sim_step = 0;
  double sim_mfu = 0;

  /// Simulated step when available, analytic estimate otherwise.
  TimeNs ranking_step() const { return simulated ? sim_step : analytic.step; }
};

struct PlanReport {
  std::string model_name;
  int gpus = 0;
  int global_batch = 0;
  double network_efficiency = 0;
  int top_k = 0;
  int enumerated = 0;       ///< divisibility-valid candidates
  int memory_rejected = 0;  ///< dropped by the per-GPU capacity constraint
  int simulated = 0;        ///< finalists validated through the engine
  /// Finalists first (ascending simulated step), then the analytically
  /// pruned remainder (ascending analytic step). Deterministic total order.
  std::vector<RankedPlan> plans;

  int feasible() const { return enumerated - memory_rejected; }
  const RankedPlan& best() const { return plans.front(); }

  /// FNV-1a over the ranked content (spec echo, per-plan layout + costs).
  std::uint64_t digest() const;
  /// One JSON object per line: a header (spec, counts, digest), then every
  /// ranked plan in report order.
  std::string to_jsonl() const;
  /// Human table of the first `top_n` rows (0 = all).
  std::string render_table(int top_n = 0) const;
};

/// Runs the full pipeline: enumerate -> memory-filter -> analytic rank ->
/// DES-validate top-K -> final ranking. The spec must admit at least one
/// feasible candidate; `report.plans` is never empty on success and empty
/// when the space is infeasible.
PlanReport search(const PlanSpec& spec, const PlannerOptions& opt = {});

/// The winning configuration materialized for the engine.
engine::JobConfig best_job_config(const PlanSpec& spec,
                                  const PlanReport& report);

/// Fabric-derived network efficiency at a given cluster size: builds a
/// CLOS fabric proportional to the job, routes permutation traffic, and
/// returns the mean attained-throughput fraction of the ECMP analysis
/// (identical derivation to the Table 2 benches, so planner and bench
/// price the fabric the same way).
double fabric_network_efficiency(int gpus);

}  // namespace ms::plan
