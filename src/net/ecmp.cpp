#include "net/ecmp.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "net/fabric/observatory.h"

namespace ms::net {

std::uint64_t EcmpRouter::hash_tuple(const FlowSpec& flow) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  h = splitmix64(h ^ static_cast<std::uint64_t>(flow.src_host));
  h = splitmix64(h ^ static_cast<std::uint64_t>(flow.dst_host));
  h = splitmix64(h ^ static_cast<std::uint64_t>(flow.rail));
  h = splitmix64(h ^ flow.flow_label);
  return h;
}

Path EcmpRouter::route(const FlowSpec& flow) const {
  auto paths = topo_->ecmp_paths(flow.src_host, flow.dst_host, flow.rail);
  if (paths.empty()) return {};
  const std::uint64_t h = hash_tuple(flow);
  return paths[h % paths.size()];
}

EcmpReport analyze_ecmp(const ClosTopology& topo,
                        const std::vector<FlowSpec>& flows) {
  return analyze_ecmp(topo, flows, nullptr);
}

EcmpReport analyze_ecmp(const ClosTopology& topo,
                        const std::vector<FlowSpec>& flows,
                        fabric::FabricObservatory* observatory) {
  EcmpRouter router(topo);
  std::unordered_map<LinkId, int> load;
  std::vector<Path> routes;
  routes.reserve(flows.size());
  double hop_sum = 0;
  for (const auto& f : flows) {
    Path p = router.route(f);
    hop_sum += static_cast<double>(p.size());
    for (LinkId l : p) ++load[l];
    routes.push_back(std::move(p));
  }

  EcmpReport report;
  report.flows = static_cast<int>(flows.size());
  if (flows.empty()) return report;

  if (observatory != nullptr) {
    observatory->attach_topology(topo);
    for (const auto& [l, n_flows] : load) {
      observatory->record_active_flows(static_cast<int>(l), 0, n_flows);
    }
  }

  const Bandwidth line_rate = topo.params().nic_bw;
  double sum = 0;
  double min_frac = 1.0;
  int conflicted = 0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    const Path& p = routes[i];
    Bandwidth rate = line_rate;
    for (LinkId l : p) {
      const Bandwidth share =
          topo.link(l).capacity / static_cast<double>(load[l]);
      rate = std::min(rate, share);
    }
    if (observatory != nullptr && !p.empty()) {
      // One cadence bucket of traffic at the equal-share rate, attributed
      // across the hop list keyed by the flow's 5-tuple hash.
      std::vector<int> hop_list;
      for (LinkId l : p) hop_list.push_back(static_cast<int>(l));
      const int rec = observatory->record_flow_path(
          EcmpRouter::hash_tuple(flows[i]), hop_list);
      observatory->attribute_flow_bytes(
          rec, 0, rate * to_seconds(observatory->config().cadence));
    }
    const double frac = rate / line_rate;
    sum += frac;
    min_frac = std::min(min_frac, frac);
    if (frac < 0.99) ++conflicted;
  }
  report.mean_throughput_frac = sum / static_cast<double>(flows.size());
  report.min_throughput_frac = min_frac;
  report.conflict_fraction =
      static_cast<double>(conflicted) / static_cast<double>(flows.size());
  report.mean_hops = hop_sum / static_cast<double>(flows.size());

  int max_uplink = 0;
  for (const auto& [l, n] : load) {
    const auto& link = topo.link(l);
    const bool inter_switch = topo.node(link.src).kind != NodeKind::kHost &&
                              topo.node(link.dst).kind != NodeKind::kHost;
    if (inter_switch) max_uplink = std::max(max_uplink, n);
  }
  report.max_flows_per_uplink = max_uplink;
  return report;
}

std::vector<FlowSpec> permutation_traffic(const ClosTopology& topo, Rng& rng) {
  const int n = topo.params().hosts;
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(perm);
  // Fix self-mappings by rotating them onto their neighbor.
  for (int i = 0; i < n; ++i) {
    if (perm[static_cast<std::size_t>(i)] == i) {
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>((i + 1) % n)]);
    }
  }
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    f.src_host = i;
    f.dst_host = perm[static_cast<std::size_t>(i)];
    f.rail = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(topo.params().nics_per_host)));
    f.flow_label = rng.next_u64();
    flows.push_back(f);
  }
  return flows;
}

std::vector<FlowSpec> ring_traffic(const ClosTopology& topo, int group_size,
                                   bool pack_under_tor, Rng& rng) {
  const auto& p = topo.params();
  assert(group_size >= 2 && group_size <= p.hosts);
  std::vector<int> members;
  if (pack_under_tor) {
    // Consecutive hosts share ToRs on every rail: pick a random aligned run.
    const int max_start = p.hosts - group_size;
    int start = max_start > 0
                    ? static_cast<int>(rng.uniform_index(
                          static_cast<std::uint64_t>(max_start + 1)))
                    : 0;
    // Align to the ToR boundary when the group fits under one ToR.
    if (group_size <= p.hosts_per_tor) {
      start = (start / p.hosts_per_tor) * p.hosts_per_tor;
      if (start + group_size > p.hosts) start = 0;
    }
    for (int i = 0; i < group_size; ++i) members.push_back(start + i);
  } else {
    auto idx = rng.sample_without_replacement(
        static_cast<std::size_t>(p.hosts), static_cast<std::size_t>(group_size));
    for (auto i : idx) members.push_back(static_cast<int>(i));
  }
  std::vector<FlowSpec> flows;
  flows.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    FlowSpec f;
    f.src_host = members[i];
    f.dst_host = members[(i + 1) % members.size()];
    f.rail = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(p.nics_per_host)));
    f.flow_label = rng.next_u64();
    flows.push_back(f);
  }
  return flows;
}

}  // namespace ms::net
