#include "net/topology.h"

#include <cassert>
#include <stdexcept>

namespace ms::net {

ClosTopology::ClosTopology(const ClosParams& params) : params_(params) {
  assert(params.hosts > 0 && params.nics_per_host > 0);
  assert(params.hosts_per_tor > 0 && params.pods > 0);
  assert(params.aggs_per_pod > 0 && params.spines_per_plane > 0);

  const int tors_per_rail = params_.tors_per_rail();

  first_host_ = 0;
  for (int h = 0; h < params_.hosts; ++h) {
    add_node(NodeKind::kHost, -1, "host" + std::to_string(h));
  }
  first_tor_ = static_cast<NodeId>(nodes_.size());
  for (int r = 0; r < params_.nics_per_host; ++r) {
    for (int t = 0; t < tors_per_rail; ++t) {
      add_node(NodeKind::kTor, r,
               "tor[r" + std::to_string(r) + "," + std::to_string(t) + "]");
    }
  }
  first_agg_ = static_cast<NodeId>(nodes_.size());
  for (int p = 0; p < params_.pods; ++p) {
    for (int a = 0; a < params_.aggs_per_pod; ++a) {
      add_node(NodeKind::kAgg, -1,
               "agg[p" + std::to_string(p) + "," + std::to_string(a) + "]");
    }
  }
  first_spine_ = static_cast<NodeId>(nodes_.size());
  for (int plane = 0; plane < params_.aggs_per_pod; ++plane) {
    for (int s = 0; s < params_.spines_per_plane; ++s) {
      add_node(NodeKind::kSpine, -1,
               "spine[pl" + std::to_string(plane) + "," + std::to_string(s) + "]");
    }
  }

  out_links_.resize(nodes_.size());

  // Without the port split, ToR uplinks run at NIC speed, so a single hash
  // conflict halves flow throughput; with it, uplinks have 2x headroom.
  const Bandwidth tor_up =
      params_.split_downlink_ports ? params_.tor_uplink_bw : params_.nic_bw;

  // Host <-> ToR (both directions), one link per NIC/rail.
  for (int h = 0; h < params_.hosts; ++h) {
    for (int r = 0; r < params_.nics_per_host; ++r) {
      const NodeId t = tor_of(h, r);
      add_link(host(h), t, params_.nic_bw);
      add_link(t, host(h), params_.nic_bw);
    }
  }
  // ToR <-> every agg in its pod.
  for (int r = 0; r < params_.nics_per_host; ++r) {
    for (int t = 0; t < tors_per_rail; ++t) {
      const int pod = params_.pod_of_tor_index(t);
      for (int a = 0; a < params_.aggs_per_pod; ++a) {
        add_link(tor(r, t), agg(pod, a), tor_up);
        add_link(agg(pod, a), tor(r, t), tor_up);
      }
    }
  }
  // Agg a of every pod <-> every spine in plane a.
  for (int p = 0; p < params_.pods; ++p) {
    for (int a = 0; a < params_.aggs_per_pod; ++a) {
      for (int s = 0; s < params_.spines_per_plane; ++s) {
        add_link(agg(p, a), spine(a, s), params_.agg_uplink_bw);
        add_link(spine(a, s), agg(p, a), params_.agg_uplink_bw);
      }
    }
  }
}

NodeId ClosTopology::add_node(NodeKind kind, int rail, std::string name) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.kind = kind;
  n.rail = rail;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

LinkId ClosTopology::add_link(NodeId src, NodeId dst, Bandwidth cap) {
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.src = src;
  l.dst = dst;
  l.capacity = cap;
  links_.push_back(l);
  out_links_[static_cast<std::size_t>(src)].emplace_back(dst, l.id);
  return l.id;
}

LinkId ClosTopology::find_link(NodeId src, NodeId dst) const {
  for (const auto& [to, id] : out_links_[static_cast<std::size_t>(src)]) {
    if (to == dst) return id;
  }
  throw std::logic_error("ClosTopology: no link " + node(src).name + " -> " +
                         node(dst).name);
}

NodeId ClosTopology::host(int h) const {
  assert(h >= 0 && h < params_.hosts);
  return first_host_ + h;
}

NodeId ClosTopology::tor(int rail, int index_in_rail) const {
  assert(rail >= 0 && rail < params_.nics_per_host);
  assert(index_in_rail >= 0 && index_in_rail < params_.tors_per_rail());
  return first_tor_ + rail * params_.tors_per_rail() + index_in_rail;
}

NodeId ClosTopology::agg(int pod, int index_in_pod) const {
  assert(pod >= 0 && pod < params_.pods);
  assert(index_in_pod >= 0 && index_in_pod < params_.aggs_per_pod);
  return first_agg_ + pod * params_.aggs_per_pod + index_in_pod;
}

NodeId ClosTopology::spine(int plane, int index_in_plane) const {
  assert(plane >= 0 && plane < params_.aggs_per_pod);
  assert(index_in_plane >= 0 && index_in_plane < params_.spines_per_plane);
  return first_spine_ + plane * params_.spines_per_plane + index_in_plane;
}

NodeId ClosTopology::tor_of(int h, int rail) const {
  return tor(rail, h / params_.hosts_per_tor);
}

std::vector<Path> ClosTopology::ecmp_paths(int src_host, int dst_host,
                                           int rail) const {
  std::vector<Path> paths;
  if (src_host == dst_host) return paths;

  const NodeId s_tor = tor_of(src_host, rail);
  const NodeId d_tor = tor_of(dst_host, rail);
  const LinkId up0 = find_link(host(src_host), s_tor);
  const LinkId down_last = find_link(d_tor, host(dst_host));

  if (s_tor == d_tor) {
    paths.push_back({up0, down_last});
    return paths;
  }

  const int s_pod = params_.pod_of_tor_index(src_host / params_.hosts_per_tor);
  const int d_pod = params_.pod_of_tor_index(dst_host / params_.hosts_per_tor);

  if (s_pod == d_pod) {
    for (int a = 0; a < params_.aggs_per_pod; ++a) {
      const NodeId mid = agg(s_pod, a);
      paths.push_back(
          {up0, find_link(s_tor, mid), find_link(mid, d_tor), down_last});
    }
    return paths;
  }

  for (int a = 0; a < params_.aggs_per_pod; ++a) {
    const NodeId s_agg = agg(s_pod, a);
    const NodeId d_agg = agg(d_pod, a);
    for (int sp = 0; sp < params_.spines_per_plane; ++sp) {
      const NodeId core = spine(a, sp);
      paths.push_back({up0, find_link(s_tor, s_agg), find_link(s_agg, core),
                       find_link(core, d_agg), find_link(d_agg, d_tor),
                       down_last});
    }
  }
  return paths;
}

int ClosTopology::hop_count(int src_host, int dst_host, int rail) const {
  if (src_host == dst_host) return 0;
  const auto paths = ecmp_paths(src_host, dst_host, rail);
  return static_cast<int>(paths.front().size());
}

Bandwidth ClosTopology::bisection_bandwidth() const {
  Bandwidth total = 0;
  for (const auto& l : links_) {
    if (node(l.src).kind == NodeKind::kAgg &&
        node(l.dst).kind == NodeKind::kSpine) {
      total += l.capacity;
    }
  }
  return total;
}

}  // namespace ms::net
