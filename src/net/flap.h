// Link-flapping and retransmit-timeout model (MegaScale §3.6, §6.3).
//
// Production lesson from the paper: when a NIC "flaps" (link down for a few
// seconds, then up), every in-flight packet is lost. Two knobs decide
// whether the job survives:
//  * the NCCL communication timeout — if it is shorter than the flap, NCCL
//    returns a completion error and the whole job restarts from checkpoint;
//  * the NIC retransmission timer / retry count — the `adap_retrans`
//    feature retries on a short interval, so the transfer resumes almost
//    immediately once the link is back.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "core/units.h"

namespace ms::net {

/// One link-down episode.
struct FlapEvent {
  TimeNs down_at = 0;
  TimeNs down_duration = 0;
  TimeNs up_at() const { return down_at + down_duration; }
};

struct RetransConfig {
  /// Loss-detection / first-retransmit timeout.
  TimeNs rto = milliseconds(200.0);
  /// Retry budget before the transport reports a connection error. The
  /// paper tunes this up so that short flaps never exhaust it.
  int max_retries = 64;
  /// Non-adaptive NICs back off exponentially (rto, 2*rto, 4*rto, ...);
  /// adap_retrans probes on a short fixed interval instead.
  bool adaptive = false;
  TimeNs adaptive_interval = milliseconds(50.0);
  /// NCCL collective timeout: if a transfer stalls longer than this in one
  /// blockage, NCCL aborts and the training job must restart.
  TimeNs nccl_timeout = seconds(30.0);
};

struct FlapOutcome {
  bool completed = false;
  /// True when NCCL aborted (timeout) or the transport gave up (retries).
  bool nccl_error = false;
  const char* error_kind = "";  // "", "nccl-timeout", "retries-exhausted"
  TimeNs finish_time = -1;
  TimeNs total_stall = 0;
  int retries_used = 0;
};

/// Simulates one point-to-point transfer of `size` bytes at `bw` over a link
/// with the given flap schedule (flaps must be sorted, non-overlapping).
FlapOutcome simulate_transfer_with_flaps(Bytes size, Bandwidth bw,
                                         const std::vector<FlapEvent>& flaps,
                                         const RetransConfig& cfg);

/// Draws a sorted, non-overlapping flap schedule over [0, duration):
/// episodes arrive with exponential inter-arrival around `mean_gap`; each
/// down-time is lognormal around `mean_down` (production flaps are seconds
/// with a heavy tail). Callers derive `rng` from their experiment's root
/// seed (core derive_seed) so the schedule is reproducible from one seed.
std::vector<FlapEvent> draw_flap_schedule(TimeNs duration, TimeNs mean_gap,
                                          TimeNs mean_down, Rng& rng);

}  // namespace ms::net
