#include "net/flowsim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "check/audit.h"
#include "prof/profiler.h"
#include "net/fabric/observatory.h"
#include "telemetry/metrics.h"

namespace ms::net {

FlowSim::FlowSim(const ClosTopology& topo) : topo_(&topo) {}

int FlowSim::add_flow(Path path, Bytes size, TimeNs arrival) {
  assert(!ran_);
  if (path.empty()) {
    throw std::invalid_argument("FlowSim: empty path (intra-host transfer)");
  }
  assert(size > 0 && arrival >= 0);
  FlowState f;
  f.path = std::move(path);
  f.remaining = static_cast<double>(size);
  flows_.push_back(std::move(f));
  FlowResult r;
  r.arrival = arrival;
  r.size = size;
  results_.push_back(r);
  return static_cast<int>(flows_.size() - 1);
}

std::vector<double> FlowSim::compute_rates() const {
  MS_PROF_SCOPE("flowsim.rates");
  const std::size_t n = flows_.size();
  std::vector<double> rate(n, 0.0);
  std::vector<char> fixed(n, 1);
  // residual capacity per link; number of unfixed flows per link.
  std::vector<double> residual(topo_->links().size());
  std::vector<int> unfixed_count(topo_->links().size(), 0);
  for (std::size_t l = 0; l < residual.size(); ++l) {
    residual[l] = topo_->links()[l].capacity;
  }
  std::size_t unfixed_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (flows_[i].active && !flows_[i].finished) {
      fixed[i] = 0;
      ++unfixed_total;
      for (LinkId l : flows_[i].path) ++unfixed_count[static_cast<std::size_t>(l)];
    }
  }

  while (unfixed_total > 0) {
    // Bottleneck link: minimal fair share among links carrying unfixed flows.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < residual.size(); ++l) {
      if (unfixed_count[l] > 0) {
        best_share = std::min(best_share,
                              residual[l] / static_cast<double>(unfixed_count[l]));
      }
    }
    assert(std::isfinite(best_share));
    // Freeze every unfixed flow crossing a link whose share equals the
    // bottleneck share (within tolerance).
    const double eps = best_share * 1e-12 + 1e-9;
    bool froze_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      bool bottlenecked = false;
      for (LinkId l : flows_[i].path) {
        const auto li = static_cast<std::size_t>(l);
        const double share = residual[li] / static_cast<double>(unfixed_count[li]);
        if (share <= best_share + eps) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[i] = best_share;
      fixed[i] = 1;
      --unfixed_total;
      froze_any = true;
      for (LinkId l : flows_[i].path) {
        const auto li = static_cast<std::size_t>(l);
        residual[li] -= best_share;
        if (residual[li] < 0) residual[li] = 0;
        --unfixed_count[li];
      }
    }
    if (!froze_any) {
      throw std::logic_error("FlowSim: progressive filling stalled");
    }
  }

#if defined(MS_AUDIT_ENABLED) && MS_AUDIT_ENABLED
  // Link-level conservation: the allocation never oversubscribes a link.
  std::vector<double> link_load(topo_->links().size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(flows_[i].active && !flows_[i].finished)) continue;
    MS_AUDIT("net.flowsim", "rate_nonnegative", rate[i] >= 0.0,
             "flow " + std::to_string(i) + " allocated rate " +
                 std::to_string(rate[i]));
    for (LinkId l : flows_[i].path) link_load[static_cast<std::size_t>(l)] += rate[i];
  }
  for (std::size_t l = 0; l < link_load.size(); ++l) {
    const double cap = topo_->links()[l].capacity;
    MS_AUDIT("net.flowsim", "link_capacity_respected",
             link_load[l] <= cap * (1.0 + 1e-9) + 1e-6,
             "link " + std::to_string(l) + " allocated " +
                 std::to_string(link_load[l]) + " B/s of " +
                 std::to_string(cap));
  }
#endif
  return rate;
}

void FlowSim::run() {
  MS_PROF_SCOPE("flowsim.run");
  if (ran_) throw std::logic_error("FlowSim::run called twice");
  ran_ = true;
  const std::size_t n = flows_.size();
  if (n == 0) return;

  // Arrival order.
  std::vector<std::size_t> by_arrival(n);
  for (std::size_t i = 0; i < n; ++i) by_arrival[i] = i;
  std::sort(by_arrival.begin(), by_arrival.end(), [&](std::size_t a, std::size_t b) {
    return results_[a].arrival < results_[b].arrival;
  });

  std::size_t next_arrival = 0;
  std::size_t remaining_flows = n;
  double now_sec = 0.0;

  // Fabric observatory (strictly passive). Links come from the topology;
  // flow paths register up front so every byte stays attributable.
  std::vector<int> obs_flow;
  if (observatory_ != nullptr) {
    observatory_->attach_topology(*topo_);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<int> path;
      for (LinkId l : flows_[i].path) path.push_back(static_cast<int>(l));
      obs_flow.push_back(
          observatory_->record_flow_path(static_cast<std::uint64_t>(i), path));
    }
  }

  while (remaining_flows > 0) {
    // Activate flows whose arrival time has come.
    while (next_arrival < n &&
           to_seconds(results_[by_arrival[next_arrival]].arrival) <=
               now_sec + 1e-15) {
      flows_[by_arrival[next_arrival]].active = true;
      ++next_arrival;
    }

    bool any_active = false;
    for (const auto& f : flows_) {
      if (f.active && !f.finished) {
        any_active = true;
        break;
      }
    }
    if (!any_active) {
      // Jump to the next arrival.
      assert(next_arrival < n);
      now_sec = to_seconds(results_[by_arrival[next_arrival]].arrival);
      continue;
    }

    const auto rates = compute_rates();

    // Time until the first of {next completion, next arrival}.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (flows_[i].active && !flows_[i].finished && rates[i] > 0) {
        dt = std::min(dt, flows_[i].remaining / rates[i]);
      }
    }
    if (next_arrival < n) {
      const double ta = to_seconds(results_[by_arrival[next_arrival]].arrival);
      dt = std::min(dt, ta - now_sec);
    }
    assert(std::isfinite(dt) && dt >= 0);

    if (observatory_ != nullptr && dt > 0) {
      // Attribute this event segment: rate * dt bytes per active flow,
      // charged across the flow's path, plus per-link concurrency.
      const TimeNs at = seconds(now_sec);
      std::vector<int> link_flows(topo_->links().size(), 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (!flows_[i].active || flows_[i].finished) continue;
        observatory_->attribute_flow_bytes(obs_flow[i], at, rates[i] * dt);
        for (LinkId l : flows_[i].path) ++link_flows[static_cast<std::size_t>(l)];
      }
      for (std::size_t l = 0; l < link_flows.size(); ++l) {
        if (link_flows[l] > 0) {
          observatory_->record_active_flows(static_cast<int>(l), at,
                                            link_flows[l]);
        }
      }
    }

    // Advance.
    now_sec += dt;
    for (std::size_t i = 0; i < n; ++i) {
      if (!flows_[i].active || flows_[i].finished) continue;
      flows_[i].remaining -= rates[i] * dt;
      if (flows_[i].remaining <= 1e-6) {
        flows_[i].finished = true;
        results_[i].finish = seconds(now_sec);
        --remaining_flows;
      }
    }
  }

  // Byte conservation: every injected byte was delivered (no in-flight
  // remainder once run() returns), and no flow finished before it arrived.
  double injected = 0.0;
  double undelivered = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    injected += static_cast<double>(results_[i].size);
    undelivered += std::max(flows_[i].remaining, 0.0);
    MS_AUDIT("net.flowsim", "flow_completed", flows_[i].finished,
             "flow " + std::to_string(i) + " still unfinished after run()");
    MS_AUDIT("net.flowsim", "finish_after_arrival",
             results_[i].finish >= results_[i].arrival,
             "flow " + std::to_string(i) + " finished at " +
                 std::to_string(results_[i].finish) + "ns before arrival " +
                 std::to_string(results_[i].arrival) + "ns");
  }
  MS_AUDIT("net.flowsim", "byte_conservation",
           undelivered <= 1e-6 * static_cast<double>(n) + 1e-9 * injected,
           std::to_string(undelivered) + " of " + std::to_string(injected) +
               " injected bytes unaccounted for after run()");

  if (metrics_ != nullptr) {
    auto& m = *metrics_;
    m.counter("flowsim_flows_total").add(static_cast<double>(n));
    auto& durations = m.histogram("flowsim_flow_duration_seconds");
    for (const auto& r : results_) durations.observe(to_seconds(r.duration()));
    m.gauge("flowsim_makespan_seconds").set(to_seconds(makespan()));
  }
}

TimeNs FlowSim::makespan() const {
  TimeNs m = 0;
  for (const auto& r : results_) m = std::max(m, r.finish);
  return m;
}

}  // namespace ms::net
