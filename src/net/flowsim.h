// Max-min fair flow-level network simulator.
//
// The reference model for "what does the fabric actually give each flow":
// flows are fluid, every link shares its capacity max-min fairly among the
// flows crossing it (the classic idealization of per-flow fair queueing /
// well-behaved congestion control). Used to
//   (a) cross-validate the closed-form collective cost models, and
//   (b) quantify ECMP conflict damage with exact rates rather than the
//       equal-share approximation.
//
// Events are flow arrivals and completions; rates are recomputed by
// progressive filling at each event. Complexity O(events * links * flows),
// fine for the experiment sizes here.
#pragma once

#include <vector>

#include "core/time.h"
#include "core/units.h"
#include "net/topology.h"

namespace ms::telemetry {
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::net::fabric {
class FabricObservatory;
}  // namespace ms::net::fabric

namespace ms::net {

struct FlowResult {
  TimeNs arrival = 0;
  TimeNs finish = -1;   // -1 until completed
  Bytes size = 0;
  bool done() const { return finish >= 0; }
  TimeNs duration() const { return finish - arrival; }
};

class FlowSim {
 public:
  explicit FlowSim(const ClosTopology& topo);

  /// Optional telemetry (not owned): run() records a per-flow duration
  /// histogram plus flow-count and makespan series.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Optional fabric observatory (not owned, strictly passive). Must be
  /// empty or already attached to this topology so observatory link
  /// indices equal this topology's LinkIds. run() registers every flow's
  /// path, attributes rate*dt per event segment across it, and records
  /// per-link queue-equivalent state (active-flow counts).
  void set_observatory(fabric::FabricObservatory* obs) { observatory_ = obs; }

  /// Adds a flow that becomes active at `arrival`. The path must be
  /// non-empty (intra-host transfers never touch the fabric). Returns a
  /// dense flow id.
  int add_flow(Path path, Bytes size, TimeNs arrival = 0);

  /// Runs all flows to completion.
  void run();

  const FlowResult& result(int flow) const {
    return results_[static_cast<std::size_t>(flow)];
  }
  std::size_t flow_count() const { return results_.size(); }

  /// Completion time of the last flow.
  TimeNs makespan() const;

 private:
  struct FlowState {
    Path path;
    double remaining = 0;  // bytes
    bool active = false;
    bool finished = false;
  };

  /// Max-min rates for currently active flows (bytes/sec, indexed by flow).
  std::vector<double> compute_rates() const;

  const ClosTopology* topo_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  fabric::FabricObservatory* observatory_ = nullptr;
  std::vector<FlowState> flows_;
  std::vector<FlowResult> results_;
  bool ran_ = false;
};

}  // namespace ms::net
