#include "net/ccsim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "check/audit.h"
#include "prof/profiler.h"
#include "core/rng.h"
#include "core/stats.h"
#include "net/fabric/observatory.h"
#include "telemetry/metrics.h"

namespace ms::net {

namespace {
constexpr double kMinRateFraction = 0.001;  // floor: 0.1% of line rate
}

// ----------------------------------------------------------------- DCQCN

double Dcqcn::on_feedback(double current_rate, const CcFeedback& fb) {
  constexpr double kG = 1.0 / 16.0;
  constexpr double kIncreasePeriodS = 55e-6;
  alpha_ = (1.0 - kG) * alpha_ + kG * (fb.ecn ? 1.0 : 0.0);
  double rate = current_rate;
  if (fb.ecn) {
    target_rate_ = current_rate;
    rate = current_rate * (1.0 - alpha_ / 2.0);
    recovery_stage_ = 0;
    since_decrease_s_ = 0;
  } else {
    since_decrease_s_ += fb.dt;
    if (target_rate_ <= 0) target_rate_ = fb.line_rate;
    if (since_decrease_s_ >= kIncreasePeriodS) {
      since_decrease_s_ = 0;
      if (recovery_stage_ < 5) {
        // Fast recovery: climb back toward the pre-decrease rate.
        ++recovery_stage_;
      } else {
        // Additive increase phase: raise the target itself.
        target_rate_ += 0.02 * fb.line_rate;
      }
      rate = (current_rate + target_rate_) / 2.0;
    }
  }
  return std::clamp(rate, kMinRateFraction * fb.line_rate, fb.line_rate);
}

// ----------------------------------------------------------------- Swift

double Swift::on_feedback(double current_rate, const CcFeedback& fb) {
  // Feedback arrives once per RTT, so one decrease per feedback already
  // matches Swift's "at most one multiplicative decrease per RTT".
  constexpr double kBeta = 0.8;
  constexpr double kMaxMdf = 0.5;
  double rate = current_rate;
  since_decrease_s_ += fb.dt;
  if (fb.rtt_s > target_delay_s_) {
    const double overshoot = (fb.rtt_s - target_delay_s_) / fb.rtt_s;
    rate = current_rate * std::max(1.0 - kBeta * overshoot, 1.0 - kMaxMdf);
    since_decrease_s_ = 0;
  } else {
    // Additive increase per RTT.
    rate = current_rate + 0.004 * fb.line_rate;
  }
  return std::clamp(rate, kMinRateFraction * fb.line_rate, fb.line_rate);
}

// ------------------------------------------------------------ MegaScaleCC

double MegaScaleCc::on_feedback(double current_rate, const CcFeedback& fb) {
  constexpr double kG = 1.0 / 8.0;
  ecn_ewma_ = (1.0 - kG) * ecn_ewma_ + kG * (fb.ecn ? 1.0 : 0.0);
  double rate = current_rate;
  if (fb.ecn) {
    // Fast ECN brake (DCQCN-style) — the emergency response that fires
    // within one feedback interval of the queue crossing the mark point.
    rate = current_rate * (1.0 - 0.3 * std::max(ecn_ewma_, 0.25));
  } else if (fb.rtt_s > target_delay_s_) {
    // Precise RTT-proportional trim (Swift-style), once per RTT.
    const double overshoot = (fb.rtt_s - target_delay_s_) / fb.rtt_s;
    rate = current_rate * (1.0 - 0.8 * overshoot);
  } else {
    // Headroom-proportional additive increase per RTT.
    const double headroom = (target_delay_s_ - fb.rtt_s) / target_delay_s_;
    rate = current_rate + (0.002 + 0.008 * headroom) * fb.line_rate;
  }
  return std::clamp(rate, kMinRateFraction * fb.line_rate, fb.line_rate);
}

// ------------------------------------------------------------- simulator

CcSimResult run_cc_sim(
    const CcSimParams& params,
    const std::function<std::unique_ptr<CcAlgorithm>()>& make_algorithm) {
  MS_PROF_SCOPE("ccsim.run");
  assert(params.senders > 0);
  const int n = params.senders;
  const double dt = params.step_s;
  const int steps = static_cast<int>(params.duration_s / dt);
  const int rtt_steps_base =
      std::max(1, static_cast<int>(params.base_rtt_s / dt));

  std::vector<std::unique_ptr<CcAlgorithm>> algos;
  std::vector<double> rate(static_cast<std::size_t>(n));
  std::vector<double> sent(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    algos.push_back(make_algorithm());
    rate[static_cast<std::size_t>(i)] =
        algos.back()->initial_rate(params.line_rate);
  }

  Rng rng(0xCC51u + static_cast<std::uint64_t>(n));
  double queue = 0;
  bool paused = false;
  int pause_events = 0;
  double pause_time = 0;
  double served_total = 0;
  long ecn_marks = 0;
  RunningStat queue_stat;
  Percentiles queue_pct;

  const std::string algo_name = algos.front()->name();
  const telemetry::Labels algo_labels{{"algo", algo_name}};
  telemetry::Histogram* queue_hist_metric =
      params.metrics
          ? &params.metrics->histogram("ccsim_queue_bytes", algo_labels)
          : nullptr;

  // History of queue depth for delayed feedback.
  std::vector<double> queue_hist(static_cast<std::size_t>(steps) + 1, 0.0);

  // Fabric observatory hook (strictly passive: reads sim state, feeds
  // nothing back, so results are identical with or without it).
  fabric::FabricObservatory* obs = params.observatory;
  const int obs_link =
      obs != nullptr ? obs->add_link(params.observatory_link,
                                     params.bottleneck_rate)
                     : -1;

  for (int step = 0; step < steps; ++step) {
    // --- data plane ---
    double arrivals = 0;
    if (!paused) {
      for (int i = 0; i < n; ++i) {
        const double bytes = rate[static_cast<std::size_t>(i)] * dt;
        arrivals += bytes;
        sent[static_cast<std::size_t>(i)] += bytes;
      }
    } else {
      pause_time += dt;
    }
    const double service = params.bottleneck_rate * dt;
    const double available = queue + arrivals;
    const double served = std::min(available, service);
    served_total += served;
    queue = available - served;

    MS_AUDIT("net.ccsim", "queue_nonnegative", queue >= 0.0,
             "egress queue at " + std::to_string(queue) + " bytes in step " +
                 std::to_string(step));
    MS_AUDIT("net.ccsim", "byte_conservation",
             served <= available * (1.0 + 1e-9) + 1e-6,
             "served " + std::to_string(served) + " bytes with only " +
                 std::to_string(available) + " available");

    queue_stat.add(queue);
    queue_pct.add(queue);
    if (queue_hist_metric != nullptr) queue_hist_metric->observe(queue);
    queue_hist[static_cast<std::size_t>(step) + 1] = queue;

    if (obs != nullptr) {
      const TimeNs now = seconds(static_cast<double>(step) * dt);
      obs->record_tx(obs_link, now, served);
      obs->record_queue(obs_link, now, queue);
      obs->record_active_flows(obs_link, now, paused ? 0 : n);
      if (paused) obs->record_pause(obs_link, now, seconds(dt));
    }

    // --- PFC state machine ---
    if (!paused && queue > params.pfc_pause) {
      paused = true;
      ++pause_events;
      if (obs != nullptr) {
        obs->record_pause(obs_link,
                          seconds(static_cast<double>(step) * dt), 0, 1);
      }
    } else if (paused && queue < params.pfc_resume) {
      paused = false;
    }
    // Bounded PFC state: the pause latch only holds above the resume mark.
    MS_AUDIT("net.ccsim", "pfc_state_bounded", !paused || queue >= params.pfc_resume,
             "paused with queue at " + std::to_string(queue) +
                 " bytes, below resume threshold " +
                 std::to_string(params.pfc_resume));

    // --- control plane: per-RTT feedback, staggered across senders ---
    // Each sender receives one ACK batch per base RTT, reflecting the queue
    // one RTT ago (the feedback delay). While PFC has the fabric paused
    // there is no ACK clock, so no feedback is processed.
    if (!paused) {
      const int fb_step = std::max(0, step - rtt_steps_base);
      const double fb_queue = queue_hist[static_cast<std::size_t>(fb_step)];
      const double rtt = params.base_rtt_s + fb_queue / params.bottleneck_rate;
      // Per-packet RED marking probability at that queue depth.
      double mark_p = 0;
      if (fb_queue > params.ecn_kmax) {
        mark_p = 1.0;
      } else if (fb_queue > params.ecn_kmin) {
        mark_p = params.ecn_pmax * (fb_queue - params.ecn_kmin) /
                 (params.ecn_kmax - params.ecn_kmin);
      }
      MS_AUDIT("net.ccsim", "ecn_mark_probability_bounded",
               mark_p >= 0.0 && mark_p <= 1.0,
               "RED mark probability " + std::to_string(mark_p) +
                   " outside [0,1] at queue depth " + std::to_string(fb_queue));
      for (int i = 0; i < n; ++i) {
        if ((step + i) % rtt_steps_base != 0) continue;  // staggered phases
        const double r = rate[static_cast<std::size_t>(i)];
        // Probability that at least one packet of this sender's last RTT
        // worth of traffic was marked.
        constexpr double kMtu = 4096.0;
        const double packets = std::max(1.0, r * params.base_rtt_s / kMtu);
        const double p_any =
            mark_p >= 1.0 ? 1.0 : 1.0 - std::pow(1.0 - mark_p, packets);
        CcFeedback fb;
        fb.rtt_s = rtt;
        fb.ecn = rng.chance(p_any);
        if (fb.ecn) {
          ++ecn_marks;
          if (obs != nullptr) {
            obs->record_ecn(obs_link,
                            seconds(static_cast<double>(step) * dt), 1.0);
          }
        }
        fb.line_rate = params.line_rate;
        fb.dt = params.base_rtt_s;
        const double new_rate =
            algos[static_cast<std::size_t>(i)]->on_feedback(r, fb);
        MS_AUDIT("net.ccsim", "rate_within_line_rate",
                 new_rate >= 0.0 && new_rate <= params.line_rate * (1.0 + 1e-9),
                 algo_name + " sender " + std::to_string(i) + " set rate " +
                     std::to_string(new_rate) + " B/s (line rate " +
                     std::to_string(params.line_rate) + ")");
        rate[static_cast<std::size_t>(i)] = new_rate;
      }
    }
  }

  CcSimResult result;
  result.algorithm = algo_name;
  result.utilization =
      served_total / (params.bottleneck_rate * params.duration_s);
  result.mean_queue_bytes = queue_stat.mean();
  result.p99_queue_bytes = queue_pct.p99();
  result.pfc_pause_fraction = pause_time / params.duration_s;
  result.pfc_pause_events = pause_events;

  if (params.metrics != nullptr) {
    auto& m = *params.metrics;
    m.counter("ccsim_ecn_marks_total", algo_labels)
        .add(static_cast<double>(ecn_marks));
    m.counter("ccsim_pfc_pause_events_total", algo_labels)
        .add(static_cast<double>(pause_events));
    m.gauge("ccsim_pfc_pause_fraction", algo_labels)
        .set(result.pfc_pause_fraction);
    m.gauge("ccsim_queue_depth_bytes", algo_labels).set(queue);
    m.gauge("ccsim_utilization", algo_labels).set(result.utilization);
  }

  // Jain fairness over per-sender sent bytes.
  double sum = 0, sum_sq = 0;
  for (double s : sent) {
    sum += s;
    sum_sq += s * s;
  }
  result.fairness =
      sum_sq > 0 ? (sum * sum) / (static_cast<double>(n) * sum_sq) : 1.0;
  return result;
}

}  // namespace ms::net
