#include "net/fabric/fabric_cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "diag/timeline.h"
#include "net/ccsim_multi.h"
#include "net/ecmp.h"
#include "net/fabric/detectors.h"
#include "net/fabric/observatory.h"
#include "net/topology.h"

namespace ms::net::fabric {

namespace {

struct FabricCliOptions {
  std::string command;
  std::string scenario = "storm";
  double intensity = 0.5;
  std::uint64_t seed = 42;
  std::string out_path;
  TimeNs cadence = milliseconds(1.0);
  int top = 8;
};

/// The same small Clos fabric the chaos ECMP rounds route over.
ClosParams cli_fabric() {
  ClosParams p;
  p.hosts = 32;
  p.nics_per_host = 2;
  p.hosts_per_tor = 8;
  p.pods = 2;
  p.aggs_per_pod = 2;
  p.spines_per_plane = 2;
  return p;
}

/// Runs the selected scenario into `obs` and returns the tuned detector
/// config (storms localize against the sim's PFC threshold; rehash rounds
/// treat two elephants on one uplink as the conflict).
FabricDetectorConfig run_scenario(const FabricCliOptions& opt,
                                  FabricObservatory& obs) {
  FabricDetectorConfig det;
  if (opt.scenario == "storm") {
    MultiCcParams params =
        victim_params(4 + static_cast<int>(12.0 * opt.intensity));
    params.observatory = &obs;
    run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
    det.queue_hot_bytes = params.pfc_pause;
  } else {
    const ClosTopology topo(cli_fabric());
    Rng rng(derive_seed(opt.seed, "fabric.cli"));
    const auto flows = ring_traffic(topo, 16, /*pack_under_tor=*/false, rng);
    analyze_ecmp(topo, flows, &obs);
    det.incast_fan_in = 2;
  }
  return det;
}

int cmd_top(const FabricCliOptions& opt, const FabricObservatory& obs,
            const FabricReport& report, std::ostream& out) {
  out << "fabric " << opt.scenario << ": " << obs.link_count() << " links, "
      << report.alarms.size() << " alarms\n";
  for (const auto& alarm : report.alarms) out << "  " << describe(alarm) << "\n";
  if (report.hottest_link >= 0) {
    out << "localized: " << report.hottest_link_name << "\n";
  }
  out << "rank  link                          selfcong_ms  flows  util   "
         "tx_MB  pause_ms\n";
  const int limit = std::min<int>(opt.top, static_cast<int>(report.ranked.size()));
  for (int i = 0; i < limit; ++i) {
    const LinkScore& s = report.ranked[static_cast<std::size_t>(i)];
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%4d  %-28s  %11.3f  %5d  %5.2f  %6.1f  %8.3f\n", i + 1,
                  s.name.c_str(), to_seconds(s.self_congested) * 1.0e3,
                  s.peak_flows, s.mean_util, s.tx_bytes / mega(1.0),
                  to_seconds(s.pause_time) * 1.0e3);
    out << buf;
  }
  return 0;
}

int cmd_heatmap(const FabricObservatory& obs, const FabricReport& report,
                std::ostream& out) {
  // Legend first: heatmap rows are link indices.
  for (int link = 0; link < obs.link_count(); ++link) {
    out << "link " << link << ": " << obs.link_name(link) << "\n";
  }
  out << obs.heatmap().ascii();
  if (report.hottest_link >= 0) {
    out << "hottest: link " << report.hottest_link << " ("
        << report.hottest_link_name << ")\n";
  }
  return 0;
}

/// One lane per ranked hot link; one span per retained bucket, named by the
/// bucket's dominant state (pause > hot > tx).
diag::TimelineTrace build_timeline(const FabricObservatory& obs,
                                   const FabricReport& report, int lanes) {
  diag::TimelineTrace trace;
  const TimeNs cadence = obs.config().cadence;
  const int limit = std::min<int>(lanes, static_cast<int>(report.ranked.size()));
  for (int lane = 0; lane < limit; ++lane) {
    const LinkScore& score = report.ranked[static_cast<std::size_t>(lane)];
    for (const auto& sample : obs.samples(score.link)) {
      const double util = obs.utilization(score.link, sample);
      if (sample.tx_bytes <= 0 && sample.pause_time <= 0 &&
          sample.queue_peak_bytes <= 0) {
        continue;
      }
      diag::TraceSpan span;
      span.rank = lane;
      span.name = sample.pause_time > 0 ? "pause"
                  : util >= 0.9         ? "hot"
                                        : "tx";
      span.tag = score.name;
      span.start = sample.bucket;
      span.end = sample.bucket + cadence;
      char detail[128];
      std::snprintf(detail, sizeof detail,
                    "util=%.3f queue=%.0f flows=%d ecn=%.0f", util,
                    sample.queue_peak_bytes, sample.active_flows,
                    sample.ecn_marks);
      span.detail = detail;
      trace.add(span);
    }
  }
  return trace;
}

int cmd_timeline(const FabricCliOptions& opt, const FabricObservatory& obs,
                 const FabricReport& report, std::ostream& out,
                 std::ostream& err) {
  const auto trace = build_timeline(obs, report, opt.top);
  if (!opt.out_path.empty()) {
    std::ofstream file(opt.out_path);
    if (!file) {
      err << "msdiag fabric: cannot write " << opt.out_path << "\n";
      return 1;
    }
    file << trace.chrome_trace_json();
    out << "wrote " << opt.out_path << " (" << trace.size()
        << " spans, one lane per hot link)\n";
    return 0;
  }
  TimeNs lo = 0, hi = 0;
  const int limit = std::min<int>(opt.top, static_cast<int>(report.ranked.size()));
  for (int lane = 0; lane < limit; ++lane) {
    const int link = report.ranked[static_cast<std::size_t>(lane)].link;
    for (const auto& sample : obs.samples(link)) {
      hi = std::max(hi, sample.bucket + obs.config().cadence);
    }
    out << "lane " << lane << ": "
        << report.ranked[static_cast<std::size_t>(lane)].name << "\n";
  }
  out << trace.render(lo, hi);
  return 0;
}

int cmd_paths(const FabricCliOptions& opt, const FabricObservatory& obs,
              std::ostream& out) {
  // Largest flows first; ties by registration order (stable sort).
  std::vector<std::size_t> order(obs.flows().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return obs.flows()[a].bytes > obs.flows()[b].bytes;
                   });
  out << obs.flows().size() << " flows recorded ("
      << obs.flow_records_dropped() << " dropped)\n";
  const std::size_t limit =
      std::min<std::size_t>(static_cast<std::size_t>(opt.top), order.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const FlowPathRecord& flow = obs.flows()[order[i]];
    char buf[64];
    std::snprintf(buf, sizeof buf, "0x%016llx %9.1f MB  ",
                  static_cast<unsigned long long>(flow.label),
                  flow.bytes / mega(1.0));
    out << buf;
    for (std::size_t h = 0; h < flow.links.size(); ++h) {
      if (h > 0) out << " > ";
      out << obs.link_name(flow.links[h]);
    }
    out << "\n";
  }
  return 0;
}

int cmd_export(const FabricCliOptions& opt, const FabricObservatory& obs,
               std::ostream& out, std::ostream& err) {
  const std::string artifact = obs.jsonl();
  if (opt.out_path.empty()) {
    out << artifact;
    return 0;
  }
  std::ofstream file(opt.out_path);
  if (!file) {
    err << "msdiag fabric: cannot write " << opt.out_path << "\n";
    return 1;
  }
  file << artifact;
  out << "wrote " << opt.out_path << "\n";
  return 0;
}

}  // namespace

std::string fabric_usage() {
  return
      "  msdiag fabric <top|heatmap|timeline|paths|export>\n"
      "                [--scenario storm|rehash] [--intensity F] [--seed N]\n"
      "                [--cadence-us N] [--top N] [--out FILE]\n"
      "    per-link fabric telemetry for a reproduced congestion scenario:\n"
      "    alarm/localization tables, link heatmap, Perfetto timeline (one\n"
      "    lane per hot link), flow path ledger, or the raw JSONL artifact\n";
}

int fabric_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  FabricCliOptions opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const char* {
      return (i + 1 < args.size()) ? args[++i].c_str() : nullptr;
    };
    if (arg == "--scenario") {
      const char* v = value();
      if (!v) break;
      opt.scenario = v;
    } else if (arg == "--intensity") {
      const char* v = value();
      if (!v) break;
      opt.intensity = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) break;
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) break;
      opt.out_path = v;
    } else if (arg == "--cadence-us") {
      const char* v = value();
      if (!v) break;
      opt.cadence = microseconds(std::atof(v));
    } else if (arg == "--top") {
      const char* v = value();
      if (!v) break;
      opt.top = std::atoi(v);
    } else if (opt.command.empty() && !arg.empty() && arg[0] != '-') {
      opt.command = arg;
    } else {
      err << fabric_usage();
      return 1;
    }
  }
  const bool known = opt.command == "top" || opt.command == "heatmap" ||
                     opt.command == "timeline" || opt.command == "paths" ||
                     opt.command == "export";
  if (!known || (opt.scenario != "storm" && opt.scenario != "rehash") ||
      opt.intensity <= 0 || opt.intensity > 1.0 || opt.cadence <= 0 ||
      opt.top <= 0) {
    err << fabric_usage();
    return 1;
  }

  FabricObservatoryConfig obs_cfg;
  obs_cfg.cadence = opt.cadence;
  FabricObservatory obs(obs_cfg);
  const FabricDetectorConfig det = run_scenario(opt, obs);
  const FabricReport report = detect_anomalies(obs, det);

  if (opt.command == "top") return cmd_top(opt, obs, report, out);
  if (opt.command == "heatmap") return cmd_heatmap(obs, report, out);
  if (opt.command == "timeline") {
    return cmd_timeline(opt, obs, report, out, err);
  }
  if (opt.command == "paths") return cmd_paths(opt, obs, out);
  return cmd_export(opt, obs, out, err);
}

}  // namespace ms::net::fabric
