#include "net/fabric/observatory.h"

#include <bit>
#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "telemetry/metrics.h"

namespace ms::net::fabric {

FabricObservatory::FabricObservatory(FabricObservatoryConfig cfg)
    : cfg_(cfg) {
  assert(cfg_.cadence > 0 && cfg_.ring_capacity > 0);
}

int FabricObservatory::add_link(const std::string& name, Bandwidth capacity) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const int id = static_cast<int>(series_.size());
  series_.emplace_back(cfg_.cadence, cfg_.ring_capacity);
  names_.push_back(name);
  capacities_.push_back(capacity);
  by_name_.emplace(name, id);
  return id;
}

void FabricObservatory::attach_topology(const ClosTopology& topo) {
  for (const auto& link : topo.links()) {
    const int id = add_link(
        topo.node(link.src).name + "->" + topo.node(link.dst).name,
        link.capacity);
    (void)id;
    assert(series_.size() != topo.links().size() ||
           id == static_cast<int>(link.id));
  }
}

const std::string& FabricObservatory::link_name(int link) const {
  return names_[static_cast<std::size_t>(link)];
}

Bandwidth FabricObservatory::link_capacity(int link) const {
  return capacities_[static_cast<std::size_t>(link)];
}

int FabricObservatory::find_link(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

void FabricObservatory::record_tx(int link, TimeNs at, double bytes) {
  series_[static_cast<std::size_t>(link)].note_tx(at, bytes);
}

void FabricObservatory::record_queue(int link, TimeNs at,
                                     double queue_bytes) {
  series_[static_cast<std::size_t>(link)].note_queue(at, queue_bytes);
}

void FabricObservatory::record_ecn(int link, TimeNs at, double marks) {
  series_[static_cast<std::size_t>(link)].note_ecn(at, marks);
}

void FabricObservatory::record_pause(int link, TimeNs at, TimeNs paused_for,
                                     int events) {
  series_[static_cast<std::size_t>(link)].note_pause(at, paused_for, events);
}

void FabricObservatory::record_active_flows(int link, TimeNs at, int flows) {
  series_[static_cast<std::size_t>(link)].note_active_flows(at, flows);
}

int FabricObservatory::record_flow_path(std::uint64_t label,
                                        const std::vector<int>& links) {
  if (flows_.size() >= cfg_.max_flow_records) {
    ++flow_records_dropped_;
    return -1;
  }
  FlowPathRecord record;
  record.label = label;
  record.links = links;
  flows_.push_back(std::move(record));
  return static_cast<int>(flows_.size() - 1);
}

void FabricObservatory::attribute_flow_bytes(int flow, TimeNs at,
                                             double bytes) {
  if (flow < 0) return;
  FlowPathRecord& record = flows_[static_cast<std::size_t>(flow)];
  record.bytes += bytes;
  for (int link : record.links) record_tx(link, at, bytes);
}

const LinkSeries& FabricObservatory::series(int link) const {
  return series_[static_cast<std::size_t>(link)];
}

std::vector<LinkSample> FabricObservatory::samples(int link) const {
  return series_[static_cast<std::size_t>(link)].samples();
}

double FabricObservatory::utilization(int link,
                                      const LinkSample& sample) const {
  const Bandwidth cap = capacities_[static_cast<std::size_t>(link)];
  if (cap <= 0) return 0;
  return sample.tx_bytes / (cap * to_seconds(cfg_.cadence));
}

double FabricObservatory::mean_utilization(int link) const {
  const auto window = samples(link);
  if (window.empty()) return 0;
  double sum = 0;
  for (const auto& s : window) sum += utilization(link, s);
  return sum / static_cast<double>(window.size());
}

std::uint64_t FabricObservatory::digest() const {
  check::Digest digest;
  digest.fold(static_cast<std::int64_t>(series_.size()));
  for (std::size_t i = 0; i < series_.size(); ++i) {
    digest.fold(std::string_view(names_[i]));
    series_[i].fold_digest(digest);
  }
  digest.fold(static_cast<std::int64_t>(flows_.size()));
  digest.fold(static_cast<std::uint64_t>(flow_records_dropped_));
  for (const auto& flow : flows_) {
    digest.fold(flow.label);
    for (int link : flow.links) digest.fold(static_cast<std::int64_t>(link));
    digest.fold(std::bit_cast<std::uint64_t>(flow.bytes));
  }
  return digest.value();
}

telemetry::SketchSnapshot FabricObservatory::sketch() const {
  telemetry::SketchSnapshot out;
  for (int link = 0; link < link_count(); ++link) {
    const telemetry::Labels labels{
        {"link", names_[static_cast<std::size_t>(link)]}};
    const std::string suffix = telemetry::encode_labels(labels);
    const auto& s = series_[static_cast<std::size_t>(link)];
    out.add_counter("fabric_tx_bytes_total" + suffix, s.total_tx_bytes());
    out.add_counter("fabric_ecn_marks_total" + suffix, s.total_ecn_marks());
    out.add_counter("fabric_pfc_pause_seconds_total" + suffix,
                    to_seconds(s.total_pause_time()));
    for (const auto& sample : s.samples()) {
      out.add_gauge("fabric_link_utilization" + suffix,
                    utilization(link, sample));
      out.add_gauge("fabric_queue_peak_bytes" + suffix,
                    sample.queue_peak_bytes);
    }
  }
  return out;
}

std::string FabricObservatory::jsonl() const {
  std::string out;
  char buf[256];
  for (int link = 0; link < link_count(); ++link) {
    const auto& s = series_[static_cast<std::size_t>(link)];
    std::snprintf(buf, sizeof buf,
                  "{\"kind\":\"fabric-link\",\"link\":\"%s\","
                  "\"capacity_bps\":%.17g,\"cadence_ns\":%" PRId64
                  ",\"samples\":%zu,\"dropped\":%" PRIu64 "}\n",
                  names_[static_cast<std::size_t>(link)].c_str(),
                  capacities_[static_cast<std::size_t>(link)],
                  s.cadence(), s.sample_count(), s.dropped());
    out += buf;
    for (const auto& sample : s.samples()) {
      std::snprintf(
          buf, sizeof buf,
          "{\"kind\":\"fabric-sample\",\"link\":\"%s\",\"bucket_ns\":%" PRId64
          ",\"tx_bytes\":%.17g,\"queue_peak_bytes\":%.17g,"
          "\"ecn_marks\":%.17g,\"pause_ns\":%" PRId64
          ",\"pause_events\":%d,\"active_flows\":%d,\"utilization\":%.6g}\n",
          names_[static_cast<std::size_t>(link)].c_str(), sample.bucket,
          sample.tx_bytes, sample.queue_peak_bytes, sample.ecn_marks,
          sample.pause_time, sample.pause_events, sample.active_flows,
          utilization(link, sample));
      out += buf;
    }
  }
  for (const auto& flow : flows_) {
    std::snprintf(buf, sizeof buf,
                  "{\"kind\":\"fabric-flow\",\"label\":\"0x%016" PRIx64
                  "\",\"bytes\":%.17g,\"path\":[",
                  flow.label, flow.bytes);
    out += buf;
    for (std::size_t i = 0; i < flow.links.size(); ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += names_[static_cast<std::size_t>(flow.links[i])];
      out += '"';
    }
    out += "]}\n";
  }
  return out;
}

diag::PerformanceHeatmap FabricObservatory::heatmap() const {
  diag::PerformanceHeatmap map;
  for (int link = 0; link < link_count(); ++link) {
    for (const auto& sample : samples(link)) {
      map.add_sample(link, "util", utilization(link, sample));
      map.add_sample(link, "queue", sample.queue_peak_bytes);
      map.add_sample(link, "pause", to_seconds(sample.pause_time));
    }
  }
  return map;
}

}  // namespace ms::net::fabric
