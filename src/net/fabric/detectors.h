// Online fabric anomaly detectors and congestion localization
// (MegaScale §3.6, §5.2: "locate the link responsible").
//
// Four detectors run over the observatory's ring buffers:
//   * hot-link     — a link whose bucket utilization stays at/above the
//                    absolute threshold (or far above the fleet mean) for
//                    `hot_persistence` consecutive buckets;
//   * pfc-storm    — PFC pause frames observed; the alarm carries the
//                    storm's spread (how many links paused) and the
//                    localization logic below names the origin;
//   * incast       — fan-in: bucket peak active flows at/above threshold;
//   * top-talker   — one recorded flow carrying an outsized share of all
//                    attributed fabric bytes.
//
// Localization. A PFC storm pauses *upstream* queues too (head-of-line
// collateral), so "deepest queue" misidentifies victims as culprits. The
// origin is the queue that is over threshold while its own egress is NOT
// paused — congested by its own service deficit, not by downstream pause
// frames. rank_links() scores exactly that ("self-congested time") first,
// then contention (peak concurrent flows), then utilization; the chaos
// harness grades pfc_storm / ecmp_rehash scenarios on whether the top-1
// ranked link names the injected hot link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.h"
#include "core/units.h"
#include "net/fabric/observatory.h"

namespace ms::net::fabric {

struct FabricDetectorConfig {
  /// hot-link: absolute bucket-utilization trigger ...
  double hot_utilization = 0.9;
  /// ... or `outlier_factor` x the fleet's mean nonzero utilization,
  /// provided the link clears `min_utilization`.
  double outlier_factor = 2.0;
  double min_utilization = 0.05;
  /// Consecutive hot buckets before the alarm fires (debounce).
  int hot_persistence = 3;
  /// Queue depth treated as congested for origin localization. Callers
  /// wiring a simulator should set this to the simulator's PFC threshold.
  double queue_hot_bytes = mega(1.0);
  /// pfc-storm: fraction of a bucket spent paused that trips the alarm.
  double pause_fraction = 0.1;
  /// incast: bucket peak concurrent flows on one link.
  int incast_fan_in = 8;
  /// top-talker: one flow's share of all attributed fabric bytes.
  double top_talker_share = 0.5;
};

struct FabricAlarm {
  TimeNs at = 0;          ///< bucket start that tripped the detector
  std::string detector;   ///< "hot-link" | "pfc-storm" | "incast" | "top-talker"
  int link = -1;          ///< observatory link index (-1: fabric-wide)
  std::string link_name;
  double score = 0;       ///< detector-specific magnitude
  std::string detail;     ///< k=v attributes for the flight recorder
};

/// Per-link localization score, strongest first (see header comment for
/// the ranking criteria).
struct LinkScore {
  int link = -1;
  std::string name;
  /// Time the link's queue was over `queue_hot_bytes` while its egress was
  /// mostly unpaused — the congestion-origin signal.
  TimeNs self_congested = 0;
  int peak_flows = 0;        ///< max bucket active_flows over the window
  double mean_util = 0;      ///< mean bucket utilization
  double tx_bytes = 0;       ///< total bytes over the retained window
  TimeNs pause_time = 0;     ///< total PFC pause time
};

struct FabricReport {
  std::vector<FabricAlarm> alarms;
  /// Ranked localization verdicts; ranked[0] is the named culprit.
  std::vector<LinkScore> ranked;
  int hottest_link = -1;     ///< ranked[0].link, -1 when nothing observed
  std::string hottest_link_name;
  /// Earliest alarm bucket — detection latency relative to the window
  /// start; -1 when no alarm fired.
  TimeNs first_alarm = -1;
};

/// Scores every link for localization (always succeeds; alarms are not
/// required for a ranking).
std::vector<LinkScore> rank_links(const FabricObservatory& obs,
                                  const FabricDetectorConfig& cfg = {});

/// Runs all four detectors plus localization. When the observatory was
/// configured with a FlightRecorder, every alarm is recorded into its
/// rings and the first detection freezes a post-mortem dump.
FabricReport detect_anomalies(const FabricObservatory& obs,
                              const FabricDetectorConfig& cfg = {});

/// One-line rendering of an alarm ("[pfc-storm] hop2 at 3ms ...").
std::string describe(const FabricAlarm& alarm);

}  // namespace ms::net::fabric
