// `msdiag fabric` — the observatory's command-line surface (§5 tooling).
//
//   msdiag fabric top      [--scenario storm|rehash] [--top N] ...
//   msdiag fabric heatmap  [--scenario ...]
//   msdiag fabric timeline [--scenario ...] [--out trace.json]
//   msdiag fabric paths    [--scenario ...] [--top N]
//   msdiag fabric export   [--scenario ...] [--out fabric.jsonl]
//
// Each invocation reproduces a canonical congestion scenario under a fabric
// observatory — `storm` replays the multi-hop PFC victim chain, `rehash` an
// ECMP hashing-conflict round over the small Clos fabric — then renders the
// recorded series: alarm/ranking tables (top), a links x {util,queue,pause}
// heatmap, a Perfetto-loadable timeline with one lane per hot link, the flow
// path ledger, or the raw JSONL artifact.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ms::net::fabric {

/// Usage text (multi-line, ends with newline) for the msdiag front end.
std::string fabric_usage();

/// Entry point for `msdiag fabric ...` (argv without the leading "fabric").
/// Returns a process exit code.
int fabric_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

}  // namespace ms::net::fabric
