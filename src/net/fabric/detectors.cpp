#include "net/fabric/detectors.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "diag/flight_recorder.h"

namespace ms::net::fabric {

namespace {

std::string format_detail(const char* fmt, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  return buf;
}

// Strict-weak ordering for localization verdicts: strongest culprit first.
// Self-congested time dominates (PFC-storm origin), then contention (ECMP
// fan-in), then utilization; the lowest link id breaks residual ties so the
// ranking is deterministic.
bool stronger(const LinkScore& a, const LinkScore& b) {
  if (a.self_congested != b.self_congested)
    return a.self_congested > b.self_congested;
  if (a.peak_flows != b.peak_flows) return a.peak_flows > b.peak_flows;
  if (a.mean_util != b.mean_util) return a.mean_util > b.mean_util;
  return a.link < b.link;
}

}  // namespace

std::vector<LinkScore> rank_links(const FabricObservatory& obs,
                                  const FabricDetectorConfig& cfg) {
  std::vector<LinkScore> scores;
  scores.reserve(static_cast<std::size_t>(obs.link_count()));
  const TimeNs cadence = obs.config().cadence;
  for (int link = 0; link < obs.link_count(); ++link) {
    LinkScore score;
    score.link = link;
    score.name = obs.link_name(link);
    const auto window = obs.samples(link);
    double util_sum = 0;
    for (const auto& sample : window) {
      util_sum += obs.utilization(link, sample);
      score.tx_bytes += sample.tx_bytes;
      score.pause_time += sample.pause_time;
      score.peak_flows = std::max(score.peak_flows, sample.active_flows);
      if (sample.queue_peak_bytes > cfg.queue_hot_bytes) {
        // Over threshold while the egress was (mostly) serving: the queue
        // built from this link's own deficit, not from downstream pause
        // frames. Victims spend the hot bucket paused and contribute ~0.
        const TimeNs serving = cadence - sample.pause_time;
        if (serving > 0) score.self_congested += serving;
      }
    }
    if (!window.empty())
      score.mean_util = util_sum / static_cast<double>(window.size());
    scores.push_back(std::move(score));
  }
  std::sort(scores.begin(), scores.end(), stronger);
  return scores;
}

FabricReport detect_anomalies(const FabricObservatory& obs,
                              const FabricDetectorConfig& cfg) {
  FabricReport report;
  const TimeNs cadence = obs.config().cadence;

  // Fleet mean of nonzero bucket utilizations, for the outlier rule.
  double util_sum = 0;
  std::int64_t util_count = 0;
  for (int link = 0; link < obs.link_count(); ++link) {
    for (const auto& sample : obs.samples(link)) {
      const double util = obs.utilization(link, sample);
      if (util > 0) {
        util_sum += util;
        ++util_count;
      }
    }
  }
  const double fleet_mean = util_count > 0
                                ? util_sum / static_cast<double>(util_count)
                                : 0;

  for (int link = 0; link < obs.link_count(); ++link) {
    const auto window = obs.samples(link);
    int hot_streak = 0;
    bool hot_fired = false;
    bool storm_fired = false;
    bool incast_fired = false;
    for (const auto& sample : window) {
      const double util = obs.utilization(link, sample);
      const bool hot_abs = util >= cfg.hot_utilization;
      const bool hot_rel = fleet_mean > 0 && util >= cfg.min_utilization &&
                           util >= cfg.outlier_factor * fleet_mean;
      hot_streak = (hot_abs || hot_rel) ? hot_streak + 1 : 0;
      if (!hot_fired && hot_streak >= cfg.hot_persistence) {
        hot_fired = true;
        FabricAlarm alarm;
        alarm.at = sample.bucket;
        alarm.detector = "hot-link";
        alarm.link = link;
        alarm.link_name = obs.link_name(link);
        alarm.score = util;
        alarm.detail = format_detail("util=%.3f fleet_mean=%.3f", util,
                                     fleet_mean);
        report.alarms.push_back(std::move(alarm));
      }
      const double paused_frac =
          cadence > 0 ? to_seconds(sample.pause_time) / to_seconds(cadence)
                      : 0;
      if (!storm_fired &&
          (paused_frac >= cfg.pause_fraction || sample.pause_events > 0)) {
        storm_fired = true;
        FabricAlarm alarm;
        alarm.at = sample.bucket;
        alarm.detector = "pfc-storm";
        alarm.link = link;
        alarm.link_name = obs.link_name(link);
        alarm.score = paused_frac;
        alarm.detail =
            format_detail("paused_frac=%.3f events=%.0f", paused_frac,
                          static_cast<double>(sample.pause_events));
        report.alarms.push_back(std::move(alarm));
      }
      if (!incast_fired && sample.active_flows >= cfg.incast_fan_in) {
        incast_fired = true;
        FabricAlarm alarm;
        alarm.at = sample.bucket;
        alarm.detector = "incast";
        alarm.link = link;
        alarm.link_name = obs.link_name(link);
        alarm.score = sample.active_flows;
        alarm.detail = format_detail("fan_in=%.0f threshold=%.0f",
                                     sample.active_flows, cfg.incast_fan_in);
        report.alarms.push_back(std::move(alarm));
      }
    }
  }

  // Top-talker: one flow carrying an outsized share of all attributed
  // bytes. The alarm points at the flow's bottleneck link (lowest
  // capacity; last hop on ties — the congestion usually lives there).
  double flow_bytes_total = 0;
  for (const auto& flow : obs.flows()) flow_bytes_total += flow.bytes;
  if (flow_bytes_total > 0) {
    for (std::size_t i = 0; i < obs.flows().size(); ++i) {
      const FlowPathRecord& flow = obs.flows()[i];
      const double share = flow.bytes / flow_bytes_total;
      if (share < cfg.top_talker_share || flow.links.empty()) continue;
      int bottleneck = flow.links.front();
      for (int link : flow.links) {
        if (obs.link_capacity(link) <= obs.link_capacity(bottleneck))
          bottleneck = link;
      }
      FabricAlarm alarm;
      alarm.detector = "top-talker";
      alarm.link = bottleneck;
      alarm.link_name = obs.link_name(bottleneck);
      alarm.score = share;
      char buf[128];
      std::snprintf(buf, sizeof buf, "flow=0x%016" PRIx64 " share=%.3f",
                    flow.label, share);
      alarm.detail = buf;
      // Stamp with the last retained bucket so the alarm sorts with the
      // evidence that produced it.
      const auto window = obs.samples(bottleneck);
      if (!window.empty()) alarm.at = window.back().bucket;
      report.alarms.push_back(std::move(alarm));
    }
  }

  std::stable_sort(report.alarms.begin(), report.alarms.end(),
                   [](const FabricAlarm& a, const FabricAlarm& b) {
                     return a.at < b.at;
                   });
  if (!report.alarms.empty()) report.first_alarm = report.alarms.front().at;

  report.ranked = rank_links(obs, cfg);
  if (!report.ranked.empty() &&
      (report.ranked.front().self_congested > 0 ||
       report.ranked.front().peak_flows > 0 ||
       report.ranked.front().mean_util > 0)) {
    report.hottest_link = report.ranked.front().link;
    report.hottest_link_name = report.ranked.front().name;
  }

  if (diag::FlightRecorder* flight = obs.config().flight) {
    for (const auto& alarm : report.alarms) {
      flight->record(alarm.link, alarm.at, "fabric:" + alarm.detector,
                     alarm.link_name + " " + alarm.detail);
    }
    if (!report.alarms.empty()) {
      // Freeze a post-mortem dump the moment the fabric detectors fire —
      // the §5.3 "stop the rings while the evidence is fresh" move.
      flight->trigger("fabric:" + report.alarms.front().detector + ":" +
                          report.alarms.front().link_name,
                      report.alarms.back().at);
    }
  }
  return report;
}

std::string describe(const FabricAlarm& alarm) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "[%s] %s at %.3fms score=%.3f %s",
                alarm.detector.c_str(), alarm.link_name.c_str(),
                to_seconds(alarm.at) * 1.0e3, alarm.score,
                alarm.detail.c_str());
  return buf;
}

}  // namespace ms::net::fabric
