// Ring-buffered per-link telemetry series (MegaScale §3.6, §5).
//
// The paper's incident tooling keeps millisecond-granularity per-port
// counters (PFC pause duration, ECN marks, RDMA tx/rx) so a congestion
// event can be localized to a specific link after the fact. This is the
// storage primitive behind the fabric observatory: one LinkSeries per
// simulated link folds every simulator event into fixed-cadence buckets
// (default 1 ms of simulated time) held in a bounded ring, so sampling is
// O(1) per event, allocation-free once warm, and safe to leave on for the
// whole run. Evicted buckets are counted, never silently lost.
#pragma once

#include <cstdint>
#include <vector>

#include "check/digest.h"
#include "core/time.h"

namespace ms::net::fabric {

/// One cadence bucket of link state. Counters accumulate within the
/// bucket; `queue_peak_bytes` and `active_flows` hold the bucket maximum.
struct LinkSample {
  TimeNs bucket = 0;            ///< bucket start (multiple of the cadence)
  double tx_bytes = 0;          ///< bytes forwarded during the bucket
  double queue_peak_bytes = 0;  ///< deepest queue observed in the bucket
  double ecn_marks = 0;         ///< ECN-CE marks attributed to the bucket
  TimeNs pause_time = 0;        ///< time the egress spent PFC-paused
  int pause_events = 0;         ///< pause-frame onsets in the bucket
  int active_flows = 0;         ///< peak concurrent flows crossing the link
};

/// Fixed-cadence ring of LinkSamples. Notes must arrive in non-decreasing
/// simulated time (one simulator drives one series); a note whose time
/// falls before the open bucket folds into the open bucket rather than
/// resurrecting a closed one.
class LinkSeries {
 public:
  LinkSeries(TimeNs cadence, std::size_t capacity);

  void note_tx(TimeNs at, double bytes);
  void note_queue(TimeNs at, double queue_bytes);
  void note_ecn(TimeNs at, double marks);
  /// `paused_for` accumulates pause duration; `events` counts onsets.
  void note_pause(TimeNs at, TimeNs paused_for, int events = 0);
  void note_active_flows(TimeNs at, int flows);

  /// Retained samples, oldest first. Copies out of the ring.
  std::vector<LinkSample> samples() const;
  std::size_t sample_count() const;
  /// Buckets evicted because the ring wrapped.
  std::uint64_t dropped() const { return dropped_; }
  TimeNs cadence() const { return cadence_; }

  /// Totals over the retained window (not the evicted history).
  double total_tx_bytes() const;
  TimeNs total_pause_time() const;
  double total_ecn_marks() const;

  /// Order-sensitive fold of every retained sample (plus cadence and the
  /// eviction count) into an FNV determinism digest.
  void fold_digest(check::Digest& digest) const;

 private:
  LinkSample& open_bucket(TimeNs at);

  TimeNs cadence_;
  std::size_t capacity_;
  std::vector<LinkSample> ring_;  ///< chronological, ring_[head_] oldest
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ms::net::fabric
