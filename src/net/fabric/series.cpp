#include "net/fabric/series.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ms::net::fabric {

LinkSeries::LinkSeries(TimeNs cadence, std::size_t capacity)
    : cadence_(cadence), capacity_(capacity) {
  assert(cadence_ > 0 && capacity_ > 0);
  ring_.reserve(capacity_);
}

LinkSample& LinkSeries::open_bucket(TimeNs at) {
  const TimeNs bucket = (at / cadence_) * cadence_;
  if (!ring_.empty()) {
    LinkSample& last = ring_[(head_ + ring_.size() - 1) % capacity_];
    // Same bucket, or a late note from a simulator sub-step: fold into the
    // open bucket — closed buckets are immutable.
    if (bucket <= last.bucket) return last;
  }
  LinkSample fresh;
  fresh.bucket = bucket;
  if (ring_.size() < capacity_) {
    ring_.push_back(fresh);
    return ring_.back();
  }
  // Ring full: overwrite the oldest bucket.
  LinkSample& slot = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  slot = fresh;
  ++dropped_;
  return slot;
}

void LinkSeries::note_tx(TimeNs at, double bytes) {
  open_bucket(at).tx_bytes += bytes;
}

void LinkSeries::note_queue(TimeNs at, double queue_bytes) {
  LinkSample& s = open_bucket(at);
  s.queue_peak_bytes = std::max(s.queue_peak_bytes, queue_bytes);
}

void LinkSeries::note_ecn(TimeNs at, double marks) {
  open_bucket(at).ecn_marks += marks;
}

void LinkSeries::note_pause(TimeNs at, TimeNs paused_for, int events) {
  LinkSample& s = open_bucket(at);
  s.pause_time += paused_for;
  s.pause_events += events;
}

void LinkSeries::note_active_flows(TimeNs at, int flows) {
  LinkSample& s = open_bucket(at);
  s.active_flows = std::max(s.active_flows, flows);
}

std::vector<LinkSample> LinkSeries::samples() const {
  std::vector<LinkSample> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

std::size_t LinkSeries::sample_count() const { return ring_.size(); }

double LinkSeries::total_tx_bytes() const {
  double total = 0;
  for (const auto& s : ring_) total += s.tx_bytes;
  return total;
}

TimeNs LinkSeries::total_pause_time() const {
  TimeNs total = 0;
  for (const auto& s : ring_) total += s.pause_time;
  return total;
}

double LinkSeries::total_ecn_marks() const {
  double total = 0;
  for (const auto& s : ring_) total += s.ecn_marks;
  return total;
}

void LinkSeries::fold_digest(check::Digest& digest) const {
  digest.fold(cadence_);
  digest.fold(static_cast<std::uint64_t>(dropped_));
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const LinkSample& s = ring_[(head_ + i) % capacity_];
    digest.fold(s.bucket);
    digest.fold(std::bit_cast<std::uint64_t>(s.tx_bytes));
    digest.fold(std::bit_cast<std::uint64_t>(s.queue_peak_bytes));
    digest.fold(std::bit_cast<std::uint64_t>(s.ecn_marks));
    digest.fold(s.pause_time);
    digest.fold(static_cast<std::int64_t>(s.pause_events));
    digest.fold(static_cast<std::int64_t>(s.active_flows));
  }
}

}  // namespace ms::net::fabric
