// Fabric observatory: per-link network telemetry and flow path tracing
// (MegaScale §3.6 "network monitoring", §5 "in-depth observability").
//
// The paper attributes much of its tuning and incident response to
// fabric-level visibility — per-port PFC pause and ECN counters at
// millisecond granularity, plus tooling that localizes a congestion event
// to a specific link. This module is that visibility layer for the
// simulators: every simulated link / NIC / switch queue registers here and
// the fluid models (ccsim, ccsim_multi, flowsim, ecmp analysis) feed their
// per-step state through the record_* hooks into ring-buffered LinkSeries.
// Flows additionally register their ECMP hop list so each link's traffic
// is attributable to the flows that crossed it (path recording).
//
// The observatory is strictly passive: it never feeds state back into a
// simulator, so engine/sim determinism digests are bit-identical with the
// observatory attached or absent (pinned by tests/fabric_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/digest.h"
#include "core/time.h"
#include "core/units.h"
#include "diag/heatmap.h"
#include "net/fabric/series.h"
#include "net/topology.h"
#include "telemetry/sketch.h"

namespace ms::diag {
class FlightRecorder;
}  // namespace ms::diag

namespace ms::net::fabric {

struct FabricObservatoryConfig {
  /// Sample bucket width in simulated time (§5: millisecond granularity).
  TimeNs cadence = milliseconds(1.0);
  /// Buckets retained per link; older buckets are evicted (and counted).
  std::size_t ring_capacity = 512;
  /// Flow path records retained; extra registrations are counted, not kept.
  std::size_t max_flow_records = 4096;
  /// Optional flight recorder (not owned): detector alarms are recorded
  /// into its rings and freeze a post-mortem dump (see fabric/detectors.h).
  diag::FlightRecorder* flight = nullptr;
};

/// One flow's recorded path: the ECMP hop list plus total attributed bytes.
struct FlowPathRecord {
  std::uint64_t label = 0;     ///< caller-chosen id (ECMP 5-tuple hash, ...)
  std::vector<int> links;      ///< observatory link indices, in hop order
  double bytes = 0;            ///< bytes attributed across the path so far
};

class FabricObservatory {
 public:
  explicit FabricObservatory(FabricObservatoryConfig cfg = {});

  const FabricObservatoryConfig& config() const { return cfg_; }

  // ---- link registration ----------------------------------------------
  /// Registers a link under a stable name; re-registering an existing name
  /// returns the existing index (simulators may re-run over one
  /// observatory). Capacity 0 means unknown (utilization reads as 0).
  int add_link(const std::string& name, Bandwidth capacity);
  /// Registers every link of a Clos fabric as "<src>-><dst>". On an empty
  /// observatory the observatory index equals the topology LinkId, which
  /// is what FlowSim and the ECMP recorder rely on.
  void attach_topology(const ClosTopology& topo);

  int link_count() const { return static_cast<int>(series_.size()); }
  const std::string& link_name(int link) const;
  Bandwidth link_capacity(int link) const;
  /// Index for a registered name; -1 when absent.
  int find_link(const std::string& name) const;

  // ---- sampling hooks (passive; no feedback into the simulators) ------
  void record_tx(int link, TimeNs at, double bytes);
  void record_queue(int link, TimeNs at, double queue_bytes);
  void record_ecn(int link, TimeNs at, double marks);
  void record_pause(int link, TimeNs at, TimeNs paused_for, int events = 0);
  void record_active_flows(int link, TimeNs at, int flows);

  // ---- flow path recording --------------------------------------------
  /// Registers a flow's hop list; returns a dense flow index, or -1 when
  /// the record budget is exhausted (counted in flow_records_dropped()).
  int record_flow_path(std::uint64_t label, const std::vector<int>& links);
  /// Adds `bytes` to every link on the flow's path and to the flow ledger.
  /// A -1 flow index (dropped record) is ignored — callers that still want
  /// per-link accounting should record_tx the hops directly.
  void attribute_flow_bytes(int flow, TimeNs at, double bytes);

  const std::vector<FlowPathRecord>& flows() const { return flows_; }
  std::uint64_t flow_records_dropped() const { return flow_records_dropped_; }

  // ---- views / exports ------------------------------------------------
  const LinkSeries& series(int link) const;
  std::vector<LinkSample> samples(int link) const;
  /// tx bytes of one bucket as a fraction of capacity x cadence (0 when
  /// the link capacity is unknown).
  double utilization(int link, const LinkSample& sample) const;
  /// Mean bucket utilization across the retained window.
  double mean_utilization(int link) const;

  /// Order-sensitive determinism digest over every link series, flow
  /// record and eviction counter. Same seed => same digest (pinned by
  /// tests/fabric_test.cpp).
  std::uint64_t digest() const;

  /// Mergeable sketch export: per-link tx/ECN/pause counters plus
  /// utilization and queue-peak gauges, keyed fabric_*{link=<name>}. This
  /// is what ships through the telemetry aggregation tree so fabric
  /// sampling is charged against the <1% observability-overhead gate.
  telemetry::SketchSnapshot sketch() const;

  /// JSONL artifact: one "fabric-link" header per link then one
  /// "fabric-sample" line per retained bucket, ordered by link then time;
  /// "fabric-flow" lines carry the path records.
  std::string jsonl() const;

  /// Links x {util,queue,pause} rendering via the §5.1 heatmap machinery.
  diag::PerformanceHeatmap heatmap() const;

 private:
  FabricObservatoryConfig cfg_;
  std::vector<LinkSeries> series_;
  std::vector<std::string> names_;
  std::vector<Bandwidth> capacities_;
  std::map<std::string, int> by_name_;  // ordered: exports iterate stably
  std::vector<FlowPathRecord> flows_;
  std::uint64_t flow_records_dropped_ = 0;
};

}  // namespace ms::net::fabric
