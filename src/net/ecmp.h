// ECMP hashing, conflict analysis and placement policy (MegaScale §3.6).
//
// ECMP routers pick one of the equal-cost paths by hashing the flow's
// 5-tuple. Two elephant flows hashed onto the same uplink halve each other —
// the "ECMP hashing conflict" the paper mitigates by (a) splitting 400G ToR
// downlink ports into 2x200G so each uplink has 2x headroom and (b)
// scheduling data-intensive peers under the same ToR so their traffic never
// ascends past the ToR layer.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "net/topology.h"

namespace ms::net::fabric {
class FabricObservatory;
}  // namespace ms::net::fabric

namespace ms::net {

struct FlowSpec {
  int src_host = 0;
  int dst_host = 0;
  int rail = 0;
  /// Stands in for the (src port, dst port, protocol) entropy of the real
  /// 5-tuple; different values may hash to different paths.
  std::uint64_t flow_label = 0;
};

/// Deterministic ECMP path selection: hash(5-tuple) % path-count, the same
/// decision every switch chain would make for that flow.
class EcmpRouter {
 public:
  explicit EcmpRouter(const ClosTopology& topo) : topo_(&topo) {}

  /// The selected path (empty for src==dst).
  Path route(const FlowSpec& flow) const;

  static std::uint64_t hash_tuple(const FlowSpec& flow);

 private:
  const ClosTopology* topo_;
};

struct EcmpReport {
  int flows = 0;
  /// Per-flow attained rate / NIC line rate under equal-share contention.
  double mean_throughput_frac = 0;
  double min_throughput_frac = 0;
  /// Fraction of flows attaining < 99% of line rate (i.e. conflicted).
  double conflict_fraction = 0;
  /// Max number of flows sharing one inter-switch link.
  int max_flows_per_uplink = 0;
  double mean_hops = 0;
};

/// Routes all flows, computes per-link loads and the equal-share rate of
/// every flow: rate = min over links of capacity / flows-on-link, capped at
/// the NIC rate. (The flow-level simulator in flowsim.h computes exact
/// max-min rates; this closed form is the standard approximation and is
/// cross-validated against it in tests.)
EcmpReport analyze_ecmp(const ClosTopology& topo,
                        const std::vector<FlowSpec>& flows);

/// Same analysis, additionally recorded into a fabric observatory (passive;
/// the report is unchanged): the topology's links register, every routed
/// flow records its hop list keyed by its 5-tuple hash, one cadence bucket
/// of equal-share-rate bytes is attributed across each path, and per-link
/// flow counts land in the active-flow series — enough for the incast /
/// hot-link detectors to name the conflicted uplink.
EcmpReport analyze_ecmp(const ClosTopology& topo,
                        const std::vector<FlowSpec>& flows,
                        fabric::FabricObservatory* observatory);

/// Workload generators for the conflict experiments.
///
/// Random permutation traffic: every host sends one flow to a random other
/// host (classic worst case for ECMP).
std::vector<FlowSpec> permutation_traffic(const ClosTopology& topo, Rng& rng);

/// Ring-neighbor traffic among `group` hosts (the dominant pattern of
/// pipeline parallelism / ring collectives): host[i] -> host[i+1].
/// If `pack_under_tor` the group is chosen as consecutive hosts under the
/// same ToR (the paper's placement policy); otherwise spread randomly.
std::vector<FlowSpec> ring_traffic(const ClosTopology& topo, int group_size,
                                   bool pack_under_tor, Rng& rng);

}  // namespace ms::net
