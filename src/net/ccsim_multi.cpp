#include "net/ccsim_multi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "core/rng.h"
#include "net/fabric/observatory.h"

namespace ms::net {

MultiCcResult run_multi_cc_sim(
    const MultiCcParams& params,
    const std::function<std::unique_ptr<CcAlgorithm>()>& make_algorithm) {
  const int hops = params.hops;
  const int n = static_cast<int>(params.flows.size());
  assert(hops >= 1 && n >= 1);
  const double dt = params.step_s;
  const int steps = static_cast<int>(params.duration_s / dt);
  const int rtt_steps = std::max(1, static_cast<int>(params.base_rtt_s / dt));

  std::vector<std::unique_ptr<CcAlgorithm>> algos;
  std::vector<double> rate(static_cast<std::size_t>(n));
  std::vector<double> delivered(static_cast<std::size_t>(n), 0.0);
  for (int f = 0; f < n; ++f) {
    algos.push_back(make_algorithm());
    rate[static_cast<std::size_t>(f)] =
        algos.back()->initial_rate(params.flows[static_cast<std::size_t>(f)].line_rate);
  }

  std::vector<double> queue(static_cast<std::size_t>(hops), 0.0);
  std::vector<char> egress_paused(static_cast<std::size_t>(hops), 0);
  std::vector<double> pause_time(static_cast<std::size_t>(hops), 0.0);
  std::vector<int> pause_events(static_cast<std::size_t>(hops), 0);
  std::vector<double> max_queue(static_cast<std::size_t>(hops), 0.0);
  // Per-step history of per-hop queue for delayed feedback.
  std::vector<std::vector<double>> history(
      static_cast<std::size_t>(steps) + 1,
      std::vector<double>(static_cast<std::size_t>(hops), 0.0));

  Rng rng(0xCCA11);

  // Fabric observatory hooks (strictly passive). Hops register as links;
  // flows register their hop lists so delivered bytes stay attributable.
  fabric::FabricObservatory* obs = params.observatory;
  std::vector<int> obs_link;
  std::vector<int> obs_flow;
  if (obs != nullptr) {
    for (int h = 0; h < hops; ++h) {
      obs_link.push_back(obs->add_link(
          params.observatory_link_prefix + std::to_string(h),
          params.capacity_of(h)));
    }
    for (int f = 0; f < n; ++f) {
      const auto& flow = params.flows[static_cast<std::size_t>(f)];
      std::vector<int> path;
      for (int h = flow.first_hop; h <= flow.last_hop; ++h) {
        path.push_back(obs_link[static_cast<std::size_t>(h)]);
      }
      obs_flow.push_back(
          obs->record_flow_path(static_cast<std::uint64_t>(f), path));
    }
  }

  for (int step = 0; step < steps; ++step) {
    // --- data plane: shape each flow hop by hop (fluid FIFO) ---
    // forwarded[f] = rate after shaping through all its hops this step.
    std::vector<double> forwarded = rate;
    for (int h = 0; h < hops; ++h) {
      // Is this hop's egress paused by downstream PFC (hop h+1 over
      // threshold)? Pause state recorded from the previous step.
      const bool paused = egress_paused[static_cast<std::size_t>(h)] != 0;
      double arrival = 0;
      for (int f = 0; f < n; ++f) {
        const auto& flow = params.flows[static_cast<std::size_t>(f)];
        if (flow.first_hop <= h && h <= flow.last_hop) {
          arrival += forwarded[static_cast<std::size_t>(f)];
        }
      }
      const double service = paused ? 0.0 : params.capacity_of(h);
      double& q = queue[static_cast<std::size_t>(h)];
      const double backlog = q + arrival * dt;
      const double served = std::min(backlog, service * dt);
      q = backlog - served;
      max_queue[static_cast<std::size_t>(h)] =
          std::max(max_queue[static_cast<std::size_t>(h)], q);
      if (paused) pause_time[static_cast<std::size_t>(h)] += dt;

      // Flows crossing this hop are shaped to their FIFO share of what the
      // hop actually served (HoL: everyone shares the same fate).
      const double share = arrival > 0 ? served / (arrival * dt) : 1.0;
      for (int f = 0; f < n; ++f) {
        const auto& flow = params.flows[static_cast<std::size_t>(f)];
        if (flow.first_hop <= h && h <= flow.last_hop) {
          forwarded[static_cast<std::size_t>(f)] *= std::min(1.0, share);
        }
      }
    }
    for (int f = 0; f < n; ++f) {
      delivered[static_cast<std::size_t>(f)] +=
          forwarded[static_cast<std::size_t>(f)] * dt;
    }
    history[static_cast<std::size_t>(step) + 1] = queue;

    if (obs != nullptr) {
      const TimeNs now = seconds(static_cast<double>(step) * dt);
      for (int h = 0; h < hops; ++h) {
        const int link = obs_link[static_cast<std::size_t>(h)];
        obs->record_queue(link, now, queue[static_cast<std::size_t>(h)]);
        if (egress_paused[static_cast<std::size_t>(h)] != 0) {
          obs->record_pause(link, now, seconds(dt));
        }
        int crossing = 0;
        for (int f = 0; f < n; ++f) {
          const auto& flow = params.flows[static_cast<std::size_t>(f)];
          if (flow.first_hop <= h && h <= flow.last_hop) ++crossing;
        }
        obs->record_active_flows(link, now, crossing);
      }
      // Delivered bytes charge every hop of the flow's path (the per-link
      // tx series and the per-flow ledger stay consistent by sharing one
      // attribution source).
      for (int f = 0; f < n; ++f) {
        obs->attribute_flow_bytes(
            obs_flow[static_cast<std::size_t>(f)], now,
            forwarded[static_cast<std::size_t>(f)] * dt);
      }
    }

    // --- PFC state: queue h over threshold pauses hop h-1's egress ---
    for (int h = 0; h < hops; ++h) {
      const bool over = queue[static_cast<std::size_t>(h)] > params.pfc_pause;
      const bool under = queue[static_cast<std::size_t>(h)] < params.pfc_resume;
      if (h > 0) {
        char& upstream = egress_paused[static_cast<std::size_t>(h - 1)];
        if (over && !upstream) {
          upstream = 1;
          ++pause_events[static_cast<std::size_t>(h - 1)];
          if (obs != nullptr) {
            obs->record_pause(obs_link[static_cast<std::size_t>(h - 1)],
                              seconds(static_cast<double>(step) * dt), 0, 1);
          }
        } else if (under && upstream) {
          upstream = 0;
        }
      }
    }

    // --- control plane: per-RTT feedback with path-combined marking ---
    const int fb_step = std::max(0, step - rtt_steps);
    const auto& fb_queues = history[static_cast<std::size_t>(fb_step)];
    for (int f = 0; f < n; ++f) {
      if ((step + f) % rtt_steps != 0) continue;
      const auto& flow = params.flows[static_cast<std::size_t>(f)];
      double rtt = params.base_rtt_s;
      double no_mark = 1.0;
      for (int h = flow.first_hop; h <= flow.last_hop; ++h) {
        const double q = fb_queues[static_cast<std::size_t>(h)];
        rtt += q / params.capacity_of(h);
        double p = 0;
        if (q > params.ecn_kmax) {
          p = 1.0;
        } else if (q > params.ecn_kmin) {
          p = params.ecn_pmax * (q - params.ecn_kmin) /
              (params.ecn_kmax - params.ecn_kmin);
        }
        constexpr double kMtu = 4096.0;
        const double packets = std::max(
            1.0, rate[static_cast<std::size_t>(f)] * params.base_rtt_s / kMtu);
        no_mark *= std::pow(1.0 - p, packets);
      }
      CcFeedback fb;
      fb.rtt_s = rtt;
      fb.ecn = rng.chance(1.0 - no_mark);
      if (fb.ecn && obs != nullptr) {
        // Charge the mark to the deepest queue on the flow's path — the
        // hop that actually did the marking with overwhelming probability.
        int marked = flow.first_hop;
        for (int h = flow.first_hop; h <= flow.last_hop; ++h) {
          if (fb_queues[static_cast<std::size_t>(h)] >
              fb_queues[static_cast<std::size_t>(marked)]) {
            marked = h;
          }
        }
        obs->record_ecn(obs_link[static_cast<std::size_t>(marked)],
                        seconds(static_cast<double>(step) * dt), 1.0);
      }
      fb.line_rate = flow.line_rate;
      fb.dt = params.base_rtt_s;
      rate[static_cast<std::size_t>(f)] =
          algos[static_cast<std::size_t>(f)]->on_feedback(
              rate[static_cast<std::size_t>(f)], fb);
    }
  }

  MultiCcResult result;
  for (int f = 0; f < n; ++f) {
    result.flow_goodput_frac.push_back(
        delivered[static_cast<std::size_t>(f)] /
        (params.flows[static_cast<std::size_t>(f)].line_rate *
         params.duration_s));
  }
  for (int h = 0; h < hops; ++h) {
    result.hop_pause_fraction.push_back(
        pause_time[static_cast<std::size_t>(h)] / params.duration_s);
    result.hop_pause_events.push_back(pause_events[static_cast<std::size_t>(h)]);
    result.hop_max_queue.push_back(max_queue[static_cast<std::size_t>(h)]);
  }
  return result;
}

MultiCcParams victim_params(int incast_senders) {
  MultiCcParams params;
  params.hops = 3;
  // First hops have headroom; the LAST hop is the bottleneck (a slow
  // receiver or a hashing hot spot): that is where the queue builds and
  // where PFC pause frames start cascading upstream.
  params.hop_capacities = {200e9, 200e9, 25e9};
  // Shallow-buffer ToR: per-priority headroom of ~1.2 MB before PFC.
  params.pfc_pause = 1200e3;
  params.pfc_resume = 1000e3;
  // Incast enters at hop 1 and collides at hop 2; the victim uses ONLY
  // hop 0 and shares no queue with the incast. Any victim slowdown is pure
  // PFC collateral: queue2 over threshold pauses hop1, queue1 then builds
  // and pauses hop0 — the victim's hop — even though the victim's own path
  // has abundant capacity.
  for (int i = 0; i < incast_senders; ++i) {
    params.flows.push_back({1, 2, 25e9});
  }
  params.flows.push_back({0, 0, 25e9});
  return params;
}

VictimReport run_victim_scenario(
    int incast_senders,
    const std::function<std::unique_ptr<CcAlgorithm>()>& make_algorithm) {
  const MultiCcParams params = victim_params(incast_senders);
  const auto result = run_multi_cc_sim(params, make_algorithm);
  VictimReport report;
  report.victim_goodput = result.flow_goodput_frac.back();
  double incast = 0;
  for (int i = 0; i < incast_senders; ++i) {
    incast += result.flow_goodput_frac[static_cast<std::size_t>(i)];
  }
  // Fraction of the 25 GB/s bottleneck the incast aggregate achieved.
  report.incast_goodput = incast * 25e9 / 25e9 / 1.0;
  report.first_hop_pause_fraction = result.hop_pause_fraction.front();
  return report;
}

}  // namespace ms::net
