#include "net/flap.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ms::net {

FlapOutcome simulate_transfer_with_flaps(Bytes size, Bandwidth bw,
                                         const std::vector<FlapEvent>& flaps,
                                         const RetransConfig& cfg) {
  assert(size > 0 && bw > 0);
  FlapOutcome out;
  double remaining = static_cast<double>(size);
  TimeNs now = 0;
  std::size_t next_flap = 0;

  while (remaining > 0) {
    // Transfer until done or the next flap interrupts.
    const double finish_dt_s = remaining / bw;
    const TimeNs finish_at = now + seconds(finish_dt_s);
    if (next_flap >= flaps.size() || finish_at <= flaps[next_flap].down_at) {
      now = finish_at;
      remaining = 0;
      break;
    }

    // Progress up to the flap, then stall.
    const FlapEvent& flap = flaps[next_flap];
    const double sent_s = to_seconds(flap.down_at - now);
    remaining -= sent_s * bw;
    now = flap.down_at;
    ++next_flap;

    // Stall phase: retransmission attempts until the link is back.
    // First detection happens one RTO after the stall begins; the data that
    // was in flight is lost (we charge one RTO worth of silence, which also
    // models the paper's "default value makes NCCL timeout very quickly").
    TimeNs stall_start = now;
    TimeNs attempt_at = now + cfg.rto;
    int retries = 0;
    bool resumed = false;
    while (!resumed) {
      if (attempt_at - stall_start >= cfg.nccl_timeout) {
        out.nccl_error = true;
        out.error_kind = "nccl-timeout";
        out.total_stall += cfg.nccl_timeout;
        out.finish_time = stall_start + cfg.nccl_timeout;
        return out;
      }
      if (attempt_at >= flap.up_at()) {
        // Link restored by the time of this probe: transfer resumes.
        now = attempt_at;
        resumed = true;
        break;
      }
      // Probe failed; burn a retry.
      ++retries;
      out.retries_used = std::max(out.retries_used, retries);
      if (retries > cfg.max_retries) {
        out.nccl_error = true;
        out.error_kind = "retries-exhausted";
        out.total_stall += attempt_at - stall_start;
        out.finish_time = attempt_at;
        return out;
      }
      const TimeNs interval =
          cfg.adaptive ? cfg.adaptive_interval
                       : cfg.rto * (TimeNs{1} << std::min(retries, 6));
      attempt_at += interval;
    }
    out.total_stall += now - stall_start;
  }

  out.completed = true;
  out.finish_time = now;
  return out;
}

std::vector<FlapEvent> draw_flap_schedule(TimeNs duration, TimeNs mean_gap,
                                          TimeNs mean_down, Rng& rng) {
  assert(mean_gap > 0 && mean_down > 0);
  std::vector<FlapEvent> flaps;
  // Lognormal with sigma 0.6 whose mean equals mean_down:
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  constexpr double kSigma = 0.6;
  const double mu = std::log(to_seconds(mean_down)) - kSigma * kSigma / 2.0;
  TimeNs t = 0;
  while (true) {
    t += seconds(rng.exponential(to_seconds(mean_gap)));
    if (t >= duration) break;
    FlapEvent flap;
    flap.down_at = t;
    flap.down_duration = std::max<TimeNs>(
        milliseconds(1.0), seconds(rng.lognormal(mu, kSigma)));
    flaps.push_back(flap);
    t = flap.up_at();  // keep episodes non-overlapping
  }
  return flaps;
}

}  // namespace ms::net
