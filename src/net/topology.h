// Datacenter network topology (MegaScale §3.6).
//
// The paper's fabric: three switch layers (ToR / aggregation / spine) in a
// CLOS topology built from Tomahawk-4 class switches, 1:1
// downlink:uplink provisioning per switch, eight 200G NICs per GPU server
// connected multi-rail (NIC i of every host goes to rail-i ToR switches),
// and an optional port-split where one 400G ToR downlink port is split into
// two 200G ports so each uplink has twice the bandwidth of a downlink.
//
// We model the fabric as an explicit graph of hosts, ToRs, aggs and spines
// with capacity-annotated unidirectional links, and enumerate the
// equal-cost path set between any two host NICs. Spines are arranged in
// planes (one plane per agg index), the standard fat-tree wiring: a path is
// fully determined by (agg choice, spine-in-plane choice), so the inter-pod
// ECMP fan-out equals the spine count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/units.h"

namespace ms::net {

enum class NodeKind { kHost, kTor, kAgg, kSpine };

using NodeId = std::int32_t;
using LinkId = std::int32_t;

struct Node {
  NodeId id = -1;
  NodeKind kind = NodeKind::kHost;
  int rail = -1;  // for ToRs: which rail this switch serves; -1 otherwise
  std::string name;
};

struct Link {
  LinkId id = -1;
  NodeId src = -1;
  NodeId dst = -1;
  Bandwidth capacity = 0;
};

/// A unidirectional route: ordered list of link ids.
using Path = std::vector<LinkId>;

struct ClosParams {
  int hosts = 128;            // GPU servers
  int nics_per_host = 8;      // rails; NIC r of every host -> rail-r ToR
  int hosts_per_tor = 64;     // servers under one ToR (per rail)
  int pods = 2;               // groups of ToRs sharing an agg layer
  int aggs_per_pod = 4;
  int spines_per_plane = 4;   // planes == aggs_per_pod
  Bandwidth nic_bw = gbps(200);
  Bandwidth tor_uplink_bw = gbps(400);   // paper: uplink = 2x NIC downlink
  Bandwidth agg_uplink_bw = gbps(400);
  /// If false, model the untuned fabric where ToR downlink ports are not
  /// split: uplinks run at the same 200G as a downlink, so two flows hashed
  /// onto one uplink halve each other (the conflict the paper's port-split
  /// mitigates).
  bool split_downlink_ports = true;

  int tors_per_rail() const {
    return (hosts + hosts_per_tor - 1) / hosts_per_tor;
  }
  int tor_count() const { return tors_per_rail() * nics_per_host; }
  int spine_count() const { return aggs_per_pod * spines_per_plane; }
  /// ToRs of one rail are distributed round-robin over pods.
  int pod_of_tor_index(int tor_index_in_rail) const {
    return tor_index_in_rail % pods;
  }
};

class ClosTopology {
 public:
  explicit ClosTopology(const ClosParams& params);

  const ClosParams& params() const { return params_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }
  const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }

  NodeId host(int h) const;
  NodeId tor(int rail, int index_in_rail) const;
  NodeId agg(int pod, int index_in_pod) const;
  NodeId spine(int plane, int index_in_plane) const;

  /// ToR serving (host, rail).
  NodeId tor_of(int host, int rail) const;

  /// All equal-cost paths from NIC `rail` of host `src` to NIC `rail` of
  /// host `dst`. Multi-rail fabrics keep a flow on one rail end-to-end.
  ///  - same host: empty path set (loopback is intra-host, see ft diagnostics)
  ///  - same ToR:  one two-hop path (up, down)
  ///  - same pod:  aggs_per_pod paths (up, up, down, down)
  ///  - cross pod: spine_count paths (up, up, up, down, down, down)
  std::vector<Path> ecmp_paths(int src_host, int dst_host, int rail) const;

  /// Number of switch hops on any path between the two hosts on a rail.
  int hop_count(int src_host, int dst_host, int rail) const;

  /// Total bisection bandwidth (sum of spine<-agg capacities, one direction).
  Bandwidth bisection_bandwidth() const;

 private:
  LinkId add_link(NodeId src, NodeId dst, Bandwidth cap);
  NodeId add_node(NodeKind kind, int rail, std::string name);
  LinkId find_link(NodeId src, NodeId dst) const;

  ClosParams params_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  // Dense adjacency for find_link: map (src, dst) -> link id.
  std::vector<std::vector<std::pair<NodeId, LinkId>>> out_links_;

  NodeId first_host_ = 0;
  NodeId first_tor_ = 0;
  NodeId first_agg_ = 0;
  NodeId first_spine_ = 0;
};

}  // namespace ms::net
