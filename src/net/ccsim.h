// Congestion-control simulator (MegaScale §3.6 "Congestion control").
//
// The paper observes that default DCQCN under all-to-all traffic drives
// deep switch queues, triggers Priority Flow Control (PFC) pauses and
// head-of-line blocking; they deploy a hybrid algorithm combining Swift's
// precise RTT measurement with DCQCN's fast ECN response.
//
// We reproduce the mechanism with a time-stepped fluid model of an incast
// bottleneck: N senders share one switch egress queue. Per step the queue
// integrates arrivals minus service; ECN marks with a RED-style ramp; PFC
// pauses *all* senders (that is the HoL collateral damage) when the queue
// crosses the pause threshold. Each sender runs a pluggable congestion
// controller fed with delayed (RTT, ECN) feedback.
#pragma once
// ms-lint: allow-file(raw-seconds): the fluid model integrates rate * dt in
// double seconds by design; TimeNs applies at event-scheduling boundaries.
// ms-lint: allow-file(unit-literal): parameter defaults are physical values
// (bytes/s, bytes, seconds), not unit-conversion factors.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/time.h"
#include "core/units.h"

namespace ms::telemetry {
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::net::fabric {
class FabricObservatory;
}  // namespace ms::net::fabric

namespace ms::net {

struct CcFeedback {
  double rtt_s = 0;       // measured round-trip time, seconds
  bool ecn = false;       // ECN-CE observed on this feedback
  double line_rate = 0;   // bytes/s
  double dt = 0;          // feedback interval, seconds
};

/// Per-sender congestion controller. Stateful; one instance per sender.
class CcAlgorithm {
 public:
  virtual ~CcAlgorithm() = default;
  virtual std::string name() const = 0;
  /// Initial sending rate (bytes/s) given the NIC line rate.
  virtual double initial_rate(double line_rate) const { return line_rate; }
  /// Consumes one feedback sample, returns the new sending rate (bytes/s).
  virtual double on_feedback(double current_rate, const CcFeedback& fb) = 0;
};

/// DCQCN (Zhu et al., SIGCOMM'15), simplified: ECN-fraction EWMA `alpha`,
/// multiplicative decrease on mark, fast-recovery then additive increase.
class Dcqcn : public CcAlgorithm {
 public:
  std::string name() const override { return "DCQCN"; }
  double on_feedback(double current_rate, const CcFeedback& fb) override;

 private:
  double alpha_ = 1.0;
  double target_rate_ = 0;
  int recovery_stage_ = 0;
  double since_decrease_s_ = 0;
};

/// Swift (Kumar et al., SIGCOMM'20), simplified: delay-target AIMD with
/// multiplicative decrease proportional to delay overshoot.
class Swift : public CcAlgorithm {
 public:
  explicit Swift(double target_delay_s = 20e-6) : target_delay_s_(target_delay_s) {}
  std::string name() const override { return "Swift"; }
  double on_feedback(double current_rate, const CcFeedback& fb) override;

 private:
  double target_delay_s_;
  double since_decrease_s_ = 0;
};

/// MegaScale's hybrid: ECN provides the fast brake (multiplicative decrease
/// before the queue ever reaches the PFC threshold), RTT provides the fine
/// control that lets the rate sit just under the bandwidth-delay product
/// instead of oscillating.
class MegaScaleCc : public CcAlgorithm {
 public:
  explicit MegaScaleCc(double target_delay_s = 15e-6)
      : target_delay_s_(target_delay_s) {}
  std::string name() const override { return "MegaScaleCC"; }
  double on_feedback(double current_rate, const CcFeedback& fb) override;

 private:
  double target_delay_s_;
  double ecn_ewma_ = 1.0;  // assume congestion until told otherwise
};

struct CcSimParams {
  int senders = 16;
  double line_rate = 25e9;           // bytes/s (200 Gb/s NIC)
  double bottleneck_rate = 50e9;     // bytes/s (shared egress)
  double base_rtt_s = 8e-6;
  double step_s = 2e-6;
  double duration_s = 0.05;
  // RED-style ECN marking thresholds (bytes of queue). Defaults mirror a
  // shallow-headroom production DCQCN config: marking starts late and caps
  // at 10%, which is exactly the regime where DCQCN lets the queue reach
  // the PFC threshold under heavy incast (the paper's observation).
  double ecn_kmin = 400e3;
  double ecn_kmax = 1600e3;
  double ecn_pmax = 0.1;
  // PFC pause/resume thresholds (bytes of queue).
  double pfc_pause = 2000e3;
  double pfc_resume = 1600e3;
  /// Optional telemetry (not owned): queue-depth histogram, ECN-mark and
  /// PFC-pause counters, utilization/pause-fraction gauges — all labeled
  /// {algo=<controller>}.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Optional fabric observatory (not owned, strictly passive): the shared
  /// egress registers under `observatory_link` and every step's queue
  /// depth, served bytes, ECN marks and PFC pause time feed its series.
  fabric::FabricObservatory* observatory = nullptr;
  std::string observatory_link = "incast-egress";
};

struct CcSimResult {
  std::string algorithm;
  double utilization = 0;        // delivered / (bottleneck * duration)
  double mean_queue_bytes = 0;
  double p99_queue_bytes = 0;
  double pfc_pause_fraction = 0; // fraction of time senders were paused
  int pfc_pause_events = 0;
  double fairness = 0;           // Jain index over per-sender delivered bytes
};

/// Runs the incast scenario with one controller instance per sender.
/// `make_algorithm` is invoked once per sender.
CcSimResult run_cc_sim(const CcSimParams& params,
                       const std::function<std::unique_ptr<CcAlgorithm>()>& make_algorithm);

}  // namespace ms::net
