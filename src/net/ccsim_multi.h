// Multi-hop congestion-control simulation: PFC cascades and head-of-line
// victims (MegaScale §3.6).
//
// The single-bottleneck model in ccsim.h shows queue depth and pause time;
// what it cannot show is WHY PFC is so damaging in a fabric: a pause frame
// stops the upstream port's entire egress, so flows that never touch the
// congested queue stall behind the ones that do. This "parking lot" model
// chains queues: flow f traverses hops [first_hop, last_hop]; when queue i
// crosses its PFC threshold it pauses queue i-1's egress (and the senders
// injecting at hop i); a paused queue serves nobody — including innocent
// flows that exit before the congestion point.
#pragma once
// ms-lint: allow-file(raw-seconds): fluid model in double seconds, see
// ccsim.h.

#include <functional>
#include <memory>
#include <vector>

#include "net/ccsim.h"

namespace ms::net {

struct MultiHopFlow {
  int first_hop = 0;
  int last_hop = 0;  // inclusive
  double line_rate = 25e9;
};

struct MultiCcParams {
  int hops = 3;
  double hop_capacity = 50e9;   // bytes/s service per queue (default)
  /// Optional per-hop override (size == hops); empty = uniform.
  std::vector<double> hop_capacities;
  double capacity_of(int hop) const {
    return hop_capacities.empty()
               ? hop_capacity
               : hop_capacities[static_cast<std::size_t>(hop)];
  }
  double base_rtt_s = 8e-6;
  double step_s = 2e-6;
  double duration_s = 0.03;
  double ecn_kmin = 400e3;
  double ecn_kmax = 1600e3;
  double ecn_pmax = 0.1;
  double pfc_pause = 2000e3;
  double pfc_resume = 1600e3;
  std::vector<MultiHopFlow> flows;
  /// Optional fabric observatory (not owned, strictly passive). Each hop
  /// registers as "<prefix><i>"; flows register their hop lists and their
  /// delivered bytes are attributed across the path, so a PFC storm at the
  /// bottleneck hop is localizable from the recorded series alone.
  fabric::FabricObservatory* observatory = nullptr;
  std::string observatory_link_prefix = "hop";
};

struct MultiCcResult {
  /// Delivered bytes / (line_rate * duration) per flow.
  std::vector<double> flow_goodput_frac;
  /// Fraction of time each hop's egress was paused by downstream PFC.
  std::vector<double> hop_pause_fraction;
  /// Pause events observed at each hop.
  std::vector<int> hop_pause_events;
  /// Max queue depth per hop (bytes).
  std::vector<double> hop_max_queue;
};

/// Runs the chain with one congestion controller per flow.
MultiCcResult run_multi_cc_sim(
    const MultiCcParams& params,
    const std::function<std::unique_ptr<CcAlgorithm>()>& make_algorithm);

/// The §3.6 victim scenario: `incast_senders` flows cross every hop and
/// congest the last one; one victim flow uses only the first hop. Returns
/// {victim goodput fraction, incast aggregate goodput fraction,
/// first-hop pause fraction}.
struct VictimReport {
  double victim_goodput = 0;
  double incast_goodput = 0;
  double first_hop_pause_fraction = 0;
};
VictimReport run_victim_scenario(
    int incast_senders,
    const std::function<std::unique_ptr<CcAlgorithm>()>& make_algorithm);

/// The parameter set run_victim_scenario() uses: 3 hops with the LAST one
/// the 25 GB/s bottleneck, shallow-buffer PFC thresholds, `incast_senders`
/// flows over hops 1..2 plus one victim on hop 0 only. Exposed so callers
/// (chaos localization, `msdiag fabric`) can attach an observatory or
/// rescale thresholds before running run_multi_cc_sim() themselves.
MultiCcParams victim_params(int incast_senders);

}  // namespace ms::net
