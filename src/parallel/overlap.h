// Communication/computation overlap planners (MegaScale §3.2, Figure 3).
//
// The TP/SP technique: fuse the all-gather / reduce-scatter with the FFN
// GEMMs by breaking the GEMM into chunks and pipelining chunk compute with
// chunk communication. For two resources (compute stream, comm stream) and
// k chunks, the classic pipelining bound applies:
//     total = max(C, M) + min(C, M) / k
// where C is the full compute time and M the full communication time. The
// closed form is exact for equal-sized chunks and is validated against the
// event-driven GraphExecutor in tests.
#pragma once

#include <algorithm>

#include "core/time.h"

namespace ms::parallel {

struct ChunkedOverlapResult {
  TimeNs total = 0;
  /// Extra time beyond pure compute — what the fusion failed to hide.
  TimeNs exposed_comm = 0;
};

inline ChunkedOverlapResult chunked_overlap(TimeNs compute, TimeNs comm,
                                            int chunks) {
  ChunkedOverlapResult r;
  if (chunks <= 1) {
    r.total = compute + comm;
    r.exposed_comm = comm;
    return r;
  }
  const TimeNs longer = std::max(compute, comm);
  const TimeNs shorter = std::min(compute, comm);
  r.total = longer + shorter / chunks;
  r.exposed_comm = r.total - compute;
  if (r.exposed_comm < 0) r.exposed_comm = 0;
  return r;
}

}  // namespace ms::parallel
