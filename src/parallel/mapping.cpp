#include "parallel/mapping.h"

namespace ms::parallel {

RankCoord coord_of(int rank, const ParallelConfig& cfg) {
  assert(cfg.valid() && rank >= 0 && rank < cfg.world());
  RankCoord c;
  c.tp = rank % cfg.tp;
  c.dp = (rank / cfg.tp) % cfg.dp;
  c.pp = rank / (cfg.tp * cfg.dp);
  return c;
}

int rank_of(const RankCoord& coord, const ParallelConfig& cfg) {
  assert(coord.tp >= 0 && coord.tp < cfg.tp);
  assert(coord.dp >= 0 && coord.dp < cfg.dp);
  assert(coord.pp >= 0 && coord.pp < cfg.pp);
  return coord.pp * (cfg.dp * cfg.tp) + coord.dp * cfg.tp + coord.tp;
}

std::vector<int> tp_group(int rank, const ParallelConfig& cfg) {
  RankCoord c = coord_of(rank, cfg);
  std::vector<int> group;
  group.reserve(static_cast<std::size_t>(cfg.tp));
  for (c.tp = 0; c.tp < cfg.tp; ++c.tp) group.push_back(rank_of(c, cfg));
  return group;
}

std::vector<int> dp_group(int rank, const ParallelConfig& cfg) {
  RankCoord c = coord_of(rank, cfg);
  std::vector<int> group;
  group.reserve(static_cast<std::size_t>(cfg.dp));
  for (c.dp = 0; c.dp < cfg.dp; ++c.dp) group.push_back(rank_of(c, cfg));
  return group;
}

std::vector<int> pp_group(int rank, const ParallelConfig& cfg) {
  RankCoord c = coord_of(rank, cfg);
  std::vector<int> group;
  group.reserve(static_cast<std::size_t>(cfg.pp));
  for (c.pp = 0; c.pp < cfg.pp; ++c.pp) group.push_back(rank_of(c, cfg));
  return group;
}

int node_of(int rank, [[maybe_unused]] const ParallelConfig& cfg,
            int gpus_per_node) {
  assert(rank >= 0 && rank < cfg.world());
  return rank / gpus_per_node;
}

ChunkLayers chunk_layers(int total_layers, const ParallelConfig& cfg, int stage,
                         int virtual_stage) {
  assert(stage >= 0 && stage < cfg.pp);
  assert(virtual_stage >= 0 && virtual_stage < cfg.vpp);
  const int chunks = cfg.pp * cfg.vpp;
  assert(total_layers % chunks == 0 &&
         "layer count must divide evenly into pp*vpp chunks");
  const int per_chunk = total_layers / chunks;
  const int chunk_index = virtual_stage * cfg.pp + stage;
  return ChunkLayers{chunk_index * per_chunk, per_chunk};
}

}  // namespace ms::parallel
