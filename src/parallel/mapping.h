// 3D-parallel rank topology (MegaScale §2).
//
// A world of tp*dp*pp ranks is factored into tensor (TP), data (DP) and
// pipeline (PP) dimensions. Following the paper, TP is the fastest-varying
// dimension (a TP group is exactly one 8-GPU node, keeping its heavy
// traffic on NVLink), DP comes next (the paper prioritizes building DP
// groups over PP so DP peers land close in the fabric), PP is outermost.
#pragma once

#include <cassert>
#include <vector>

#include "core/units.h"

namespace ms::parallel {

struct ParallelConfig {
  int tp = 8;   ///< tensor-parallel degree (== GPUs per node here)
  int pp = 8;   ///< pipeline stages
  int dp = 1;   ///< data-parallel replicas
  int vpp = 1;  ///< virtual pipeline stages per worker (interleaving, §2)
  bool sequence_parallel = true;
  int zero_stage = 2;

  int world() const { return tp * pp * dp; }
  bool valid() const {
    return tp >= 1 && pp >= 1 && dp >= 1 && vpp >= 1;
  }
};

struct RankCoord {
  int tp = 0;
  int dp = 0;
  int pp = 0;
  bool operator==(const RankCoord&) const = default;
};

/// rank = pp*(dp_size*tp_size) + dp*tp_size + tp.
RankCoord coord_of(int rank, const ParallelConfig& cfg);
int rank_of(const RankCoord& coord, const ParallelConfig& cfg);

/// Peer ranks of each communicator group containing `rank` (sorted,
/// includes `rank` itself).
std::vector<int> tp_group(int rank, const ParallelConfig& cfg);
std::vector<int> dp_group(int rank, const ParallelConfig& cfg);
std::vector<int> pp_group(int rank, const ParallelConfig& cfg);

/// Host (8-GPU machine) index of a rank, assuming TP groups fill nodes.
int node_of(int rank, const ParallelConfig& cfg, int gpus_per_node = 8);

/// Layer assignment with interleaving: the model's layers are cut into
/// pp*vpp chunks; chunk (v, stage) holds layers
/// [chunk_index * layers_per_chunk, ...). Chunk index = v * pp + stage.
struct ChunkLayers {
  int first = 0;
  int count = 0;
};
ChunkLayers chunk_layers(int total_layers, const ParallelConfig& cfg, int stage,
                         int virtual_stage);

}  // namespace ms::parallel
