// ZeRO stage-2 sharding arithmetic (MegaScale §2, Figure 1).
//
// With ZeRO-2, optimizer states and gradients are sharded across the data-
// parallel group; the traditional gradient all-reduce decomposes into a
// reduce-scatter (backward) and a parameter all-gather (next forward) of
// the same volume — no extra communication, but both halves become
// schedulable and therefore overlappable (§3.2).
#pragma once

#include "core/units.h"
#include "parallel/mapping.h"

namespace ms::parallel {

class Zero2Sharding {
 public:
  Zero2Sharding(double model_params, const ParallelConfig& cfg)
      : model_params_(model_params), cfg_(cfg) {}

  /// Parameters materialized on one GPU (its pipeline chunk, TP-split).
  double params_per_gpu() const {
    return model_params_ / (static_cast<double>(cfg_.tp) * cfg_.pp);
  }

  /// Parameters of one model chunk (virtual stage) on one GPU.
  double params_per_chunk() const {
    return params_per_gpu() / cfg_.vpp;
  }

  /// Optimizer-state shard per GPU: ZeRO-2 further splits across DP.
  double optimizer_shard_params() const {
    return params_per_gpu() / cfg_.dp;
  }

  /// DP all-gather payload for one model chunk (bf16 parameters). This is
  /// the total gathered size; the ring cost model takes it as `bytes`.
  Bytes allgather_bytes_per_chunk() const {
    return static_cast<Bytes>(params_per_chunk() * 2.0);
  }

  /// DP reduce-scatter payload for one chunk's gradients (bf16).
  Bytes reducescatter_bytes_per_chunk() const {
    return static_cast<Bytes>(params_per_chunk() * 2.0);
  }

  /// Bytes of optimizer state per GPU (fp32 master + two Adam moments +
  /// fp32 grad accumulation ~ 16 bytes/param on the shard).
  Bytes optimizer_state_bytes() const {
    return static_cast<Bytes>(optimizer_shard_params() * 16.0);
  }

  /// Checkpoint payload per GPU: bf16 params of its chunk(s) + its
  /// optimizer shard.
  Bytes checkpoint_bytes_per_gpu() const {
    return static_cast<Bytes>(params_per_gpu() * 2.0) + optimizer_state_bytes();
  }

 private:
  double model_params_;
  ParallelConfig cfg_;
};

}  // namespace ms::parallel
