// Interleaved 1F1B pipeline schedule (MegaScale §2, Figure 2).
//
// Faithful reimplementation of Megatron-LM's
// forward_backward_pipelining_with_interleaving slot ordering: each worker
// runs `vpp` model chunks; microbatches are issued in groups of `pp`; after
// a warm-up of forward passes the worker alternates one-forward-one-backward
// and finally drains the remaining backwards (cool-down).
#pragma once

#include <vector>

namespace ms::parallel {

enum class PassType { kForward, kBackward };

struct ScheduleEntry {
  PassType pass = PassType::kForward;
  int chunk = 0;       // virtual stage (model chunk) on this worker
  int microbatch = 0;  // global microbatch index
  bool operator==(const ScheduleEntry&) const = default;
};

/// Execution order for pipeline stage `stage` (0-based) with `pp` stages,
/// `vpp` virtual stages per worker and `microbatches` microbatches.
/// For vpp > 1, `microbatches` must be divisible by `pp` (Megatron's
/// constraint for the interleaved schedule).
std::vector<ScheduleEntry> schedule_for_stage(int pp, int stage, int vpp,
                                              int microbatches);

/// GPipe schedule (§2): all forward passes, then all backward passes.
/// Same bubble fraction as 1F1B but every microbatch's activations stay
/// alive through the forward phase — the memory blow-up 1F1B exists to
/// avoid (see model/memory.h). vpp is always 1 under GPipe.
std::vector<ScheduleEntry> gpipe_schedule_for_stage(int pp, int stage,
                                                    int microbatches);

/// Activation lifetime: the maximum number of microbatches whose forward
/// activations are simultaneously alive on `stage` under a schedule
/// (a forward allocates, the matching backward frees).
int peak_inflight_microbatches(const std::vector<ScheduleEntry>& schedule);

/// Convenience overload for capacity queries (the plan searcher's memory
/// constraint): builds the interleaved 1F1B schedule for `stage` and
/// reports its peak. Stage 0 carries the deepest warm-up, so
/// peak_inflight_microbatches(pp, 0, vpp, m) bounds every stage.
int peak_inflight_microbatches(int pp, int stage, int vpp, int microbatches);

/// Number of warm-up forward passes before the 1F1B steady phase.
int warmup_slots(int pp, int stage, int vpp, int microbatches);

/// Analytic bubble fraction of the interleaved schedule:
/// (pp - 1) / (vpp * microbatches) — the quantity §3.1 manipulates with the
/// LAMB optimizer (4x batch => 4x microbatches => 1/4 the bubble).
double analytic_bubble_fraction(int pp, int vpp, int microbatches);

}  // namespace ms::parallel
