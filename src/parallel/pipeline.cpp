#include "parallel/pipeline.h"

#include <algorithm>
#include <cassert>

namespace ms::parallel {

namespace {

/// Chunk executed by the k-th forward (or backward) slot on any stage.
int slot_chunk(int k, int pp, int vpp, bool forward) {
  const int in_group = k % (pp * vpp);
  const int chunk = in_group / pp;
  return forward ? chunk : vpp - 1 - chunk;
}

/// Global microbatch index of the k-th forward (or backward) slot.
int slot_microbatch(int k, int pp, int vpp) {
  return (k % pp) + pp * (k / (pp * vpp));
}

}  // namespace

int warmup_slots(int pp, int stage, int vpp, int microbatches) {
  assert(pp >= 1 && stage >= 0 && stage < pp && vpp >= 1);
  const int total = microbatches * vpp;
  if (pp == 1) return std::min(total, vpp == 1 ? 0 : pp * (vpp - 1));
  int warmup;
  if (vpp == 1) {
    warmup = pp - stage - 1;  // classic 1F1B
  } else {
    warmup = (pp - stage - 1) * 2 + (vpp - 1) * pp;
  }
  return std::min(warmup, total);
}

std::vector<ScheduleEntry> schedule_for_stage(int pp, int stage, int vpp,
                                              int microbatches) {
  assert(pp >= 1 && stage >= 0 && stage < pp);
  assert(vpp >= 1 && microbatches >= 1);
  assert((vpp == 1 || microbatches % pp == 0) &&
         "interleaved schedule requires microbatches % pp == 0");

  const int total = microbatches * vpp;
  const int warmup = warmup_slots(pp, stage, vpp, microbatches);

  std::vector<ScheduleEntry> schedule;
  schedule.reserve(static_cast<std::size_t>(2 * total));

  auto fwd = [&](int k) {
    schedule.push_back({PassType::kForward, slot_chunk(k, pp, vpp, true),
                        slot_microbatch(k, pp, vpp)});
  };
  auto bwd = [&](int k) {
    schedule.push_back({PassType::kBackward, slot_chunk(k, pp, vpp, false),
                        slot_microbatch(k, pp, vpp)});
  };

  for (int k = 0; k < warmup; ++k) fwd(k);
  for (int k = 0; k < total - warmup; ++k) {
    fwd(warmup + k);
    bwd(k);
  }
  for (int k = total - warmup; k < total; ++k) bwd(k);
  return schedule;
}

std::vector<ScheduleEntry> gpipe_schedule_for_stage(int pp, int stage,
                                                    int microbatches) {
  assert(pp >= 1 && stage >= 0 && stage < pp && microbatches >= 1);
  (void)pp;
  (void)stage;
  std::vector<ScheduleEntry> schedule;
  schedule.reserve(static_cast<std::size_t>(2 * microbatches));
  for (int m = 0; m < microbatches; ++m) {
    schedule.push_back({PassType::kForward, 0, m});
  }
  // Backward drains in reverse order (last-forward, first-backward matches
  // the dependency structure: the flush starts from the freshest batch).
  for (int m = microbatches - 1; m >= 0; --m) {
    schedule.push_back({PassType::kBackward, 0, m});
  }
  return schedule;
}

int peak_inflight_microbatches(const std::vector<ScheduleEntry>& schedule) {
  int alive = 0, peak = 0;
  for (const auto& e : schedule) {
    if (e.pass == PassType::kForward) {
      peak = std::max(peak, ++alive);
    } else {
      --alive;
    }
  }
  return peak;
}

int peak_inflight_microbatches(int pp, int stage, int vpp, int microbatches) {
  return peak_inflight_microbatches(
      schedule_for_stage(pp, stage, vpp, microbatches));
}

double analytic_bubble_fraction(int pp, int vpp, int microbatches) {
  assert(pp >= 1 && vpp >= 1 && microbatches >= 1);
  return static_cast<double>(pp - 1) /
         (static_cast<double>(vpp) * microbatches);
}

}  // namespace ms::parallel
