#include "core/rng.h"

#include <cassert>
#include <cmath>

namespace ms {

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * m;
  have_spare_normal_ = true;
  return u * m;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace ms
