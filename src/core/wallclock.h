// The sanctioned host monotonic clock (simulator self-measurement only).
//
// Everything the simulator *models* runs on simulated TimeNs (core/time.h);
// this header is the one place the repo is allowed to read the host's
// wall clock, and only its monotonic flavour: profiling the simulator's own
// hot loops (src/prof), bench wall-time reporting, and real deadline waits
// in the threaded components (kvstore timeouts). The `ambient-entropy` lint
// rule bans std::chrono::steady_clock everywhere else so host time cannot
// leak into simulation results — a simulated outcome that depends on how
// fast the host ran is a determinism bug by definition.
//
// Monotonic-only by design: there is deliberately no calendar/system_clock
// accessor here (timestamps for log lines route through the log layer's
// injectable provider instead). No locks, no TSA annotations needed — the
// clock read is a pure syscall/vDSO call with no shared mutable state.
#pragma once

#include <cstdint>

namespace ms {

/// Host monotonic time in nanoseconds since an arbitrary epoch. Distinct
/// alias from TimeNs on purpose: a WallNs must never be folded into a
/// simulated timestamp (the digest tests would catch it as nondeterminism).
using WallNs = std::int64_t;

/// Reads the host monotonic clock (std::chrono::steady_clock under the
/// hood). Never decreases within a process; comparable across threads.
WallNs wallclock_ns();

/// Convenience for rate math: wall nanoseconds -> seconds.
// ms-lint: allow(raw-seconds): host wall time, not simulated — TimeNs N/A
constexpr double wall_to_seconds(WallNs ns) {
  return static_cast<double>(ns) / 1'000'000'000.0;
}

}  // namespace ms
