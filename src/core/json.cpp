#include "core/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace ms::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double Value::num(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  const Value& v = at(key);
  return v.kind == Kind::kNumber ? v.number : fallback;
}

std::string Value::text(const std::string& key,
                        const std::string& fallback) const {
  if (!has(key)) return fallback;
  const Value& v = at(key);
  return v.kind == Kind::kString ? v.str : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Value& out) {
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word, Value& out, Value::Kind kind, bool b) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    out.kind = kind;
    out.boolean = b;
    return true;
  }
  bool string_body(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          const std::string hex = s_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return false;
          // Our emitters only produce \u00xx control escapes; decode the
          // BMP code point as UTF-8 for anything else.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool word(const char* w) {
    for (const char* p = w; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  bool number_body(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    // Kineto/PyTorch profiler exports write bare NaN/Infinity tokens for
    // undefined counter values; tolerate them (JSON5-style) instead of
    // failing the whole artifact.
    if (pos_ < s_.size() && (s_[pos_] == 'N' || s_[pos_] == 'I')) {
      const bool neg = s_[start] == '-';
      const bool is_nan = s_[pos_] == 'N';
      if (!(is_nan ? word("NaN") : word("Infinity"))) return false;
      out.kind = Value::Kind::kNumber;
      out.number = is_nan ? std::numeric_limits<double>::quiet_NaN()
                          : (neg ? -std::numeric_limits<double>::infinity()
                                 : std::numeric_limits<double>::infinity());
      return true;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) return false;
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }
  bool value(Value& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == 'n') return literal("null", out, Value::Kind::kNull, false);
    if (c == 't') return literal("true", out, Value::Kind::kBool, true);
    if (c == 'f') return literal("false", out, Value::Kind::kBool, false);
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return string_body(out.str);
    }
    if (c == '[') {
      ++pos_;
      out.kind = Value::Kind::kArray;
      out.array = std::make_shared<std::vector<Value>>();
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Value element;
        if (!value(element)) return false;
        out.array->push_back(std::move(element));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '{') {
      ++pos_;
      out.kind = Value::Kind::kObject;
      out.object = std::make_shared<std::map<std::string, Value>>();
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_body(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return false;
        ++pos_;
        Value element;
        if (!value(element)) return false;
        (*out.object)[key] = std::move(element);
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    return number_body(out);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value& out) {
  Value v;
  if (!Parser(text).parse(v)) return false;
  out = std::move(v);
  return true;
}

}  // namespace ms::json
