#include "core/wallclock.h"

#include <chrono>

namespace ms {

WallNs wallclock_ns() {
  // The one sanctioned steady_clock read in the repository (see the
  // ambient-entropy lint rule). duration_cast to nanoseconds is exact on
  // every mainstream libstdc++/libc++ (steady_clock period is 1ns).
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ms
