#include "core/log.h"

#include <atomic>
#include <iostream>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace ms {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;
// std::function assignment is not atomic, and the provider is only ever
// read while holding the output lock anyway.
std::function<TimeNs()> g_timestamp_provider MS_GUARDED_BY(g_mutex);

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_timestamp_provider(std::function<TimeNs()> provider) {
  MutexLock lock(g_mutex);
  g_timestamp_provider = std::move(provider);
}

void log_message(LogLevel level, const std::string& message) {
  MutexLock lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] ";
  if (g_timestamp_provider) {
    std::cerr << '[' << format_duration(g_timestamp_provider()) << "] ";
  }
  std::cerr << message << '\n';
}

}  // namespace ms
