// Clang Thread Safety Analysis annotations (-Wthread-safety).
//
// The concurrency discipline in this repo — which mutex guards which state,
// which functions must (or must not) hold it — is machine-checked, not
// conventional. Every lock-protected member carries MS_GUARDED_BY, every
// helper that expects the caller to hold a lock carries MS_REQUIRES, and a
// clang CI leg compiles src/ with the analysis promoted to errors
// (MS_THREAD_SAFETY in CMake). Under non-clang compilers the macros expand
// to nothing, so gcc builds are unaffected.
//
// The capability vocabulary follows the Clang documentation and Abseil's
// thread_annotations.h: a Mutex is a *capability*; locking acquires it,
// unlocking releases it, and data declared MS_GUARDED_BY(mu) may only be
// touched while it is held. See core/mutex.h for the annotated Mutex /
// MutexLock / CondVar wrappers, and DESIGN.md "Concurrency model" for the
// map of which capability guards what.
#pragma once

#if defined(__clang__)
#define MS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MS_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability (e.g. `class MS_CAPABILITY("mutex")
/// Mutex`). The string names the capability kind in diagnostics.
#define MS_CAPABILITY(x) MS_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases
/// a capability (MutexLock).
#define MS_SCOPED_CAPABILITY MS_THREAD_ANNOTATION__(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define MS_GUARDED_BY(x) MS_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member: the pointed-to data is protected by `x` (the pointer
/// itself may be read freely).
#define MS_PT_GUARDED_BY(x) MS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities to be held by the caller.
#define MS_REQUIRES(...) \
  MS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities in shared (reader) mode.
#define MS_REQUIRES_SHARED(...) \
  MS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define MS_ACQUIRE(...) \
  MS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define MS_RELEASE(...) \
  MS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds the capability iff the return
/// value equals the first argument.
#define MS_TRY_ACQUIRE(...) \
  MS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (the function acquires them
/// itself; calling with them held would deadlock a non-reentrant mutex).
#define MS_EXCLUDES(...) MS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held and tells the analysis so
/// (for paths the analysis cannot follow).
#define MS_ASSERT_CAPABILITY(x) \
  MS_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define MS_RETURN_CAPABILITY(x) MS_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the discipline holds anyway.
#define MS_NO_THREAD_SAFETY_ANALYSIS \
  MS_THREAD_ANNOTATION__(no_thread_safety_analysis)
