#include "core/time.h"

#include <cmath>
#include <cstdio>

namespace ms {

std::string format_duration(TimeNs t) {
  char buf[64];
  const bool neg = t < 0;
  const double abs_ns = std::fabs(static_cast<double>(t));
  const char* sign = neg ? "-" : "";
  if (abs_ns >= 3600.0 * kNsPerSec) {
    std::snprintf(buf, sizeof(buf), "%s%.2fh", sign, abs_ns / (3600.0 * kNsPerSec));
  } else if (abs_ns >= 60.0 * kNsPerSec) {
    std::snprintf(buf, sizeof(buf), "%s%.2fmin", sign, abs_ns / (60.0 * kNsPerSec));
  } else if (abs_ns >= kNsPerSec) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign, abs_ns / kNsPerSec);
  } else if (abs_ns >= kNsPerMs) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", sign, abs_ns / kNsPerMs);
  } else if (abs_ns >= kNsPerUs) {
    std::snprintf(buf, sizeof(buf), "%s%.3fus", sign, abs_ns / kNsPerUs);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldns", sign,
                  static_cast<long long>(std::llround(abs_ns)));
  }
  return buf;
}

}  // namespace ms
