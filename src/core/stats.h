// Lightweight statistics helpers used across diagnosis and benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ms {

/// Streaming mean / variance / min / max (Welford).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile sample set. Keeps all samples; fine for the experiment
/// sizes in this repository (<= millions of values).
class Percentiles {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// q in [0, 1]; linear interpolation between closest ranks.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p99() const { return quantile(0.99); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_[i]; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

  /// Simple multi-line ASCII rendering (for bench/table output).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Fixed-layout HDR-style histogram sketch: geometric buckets spanning
/// [1e-9, 1e12) at a fixed resolution per decade, so every instance shares
/// the same bucket boundaries and per-rank sketches merge with a plain
/// element-wise add (the property the telemetry registry relies on).
/// Values <= 0 or below the range land in an underflow bucket; values above
/// it in an overflow bucket. Quantiles interpolate inside the winning
/// bucket, giving a bounded relative error of one bucket width (~7%).
class HdrHistogram {
 public:
  static constexpr double kRangeLo = 1e-9;
  // ms-lint: allow(unit-literal): histogram range bound, not a unit conversion.
  static constexpr double kRangeHi = 1e12;
  static constexpr int kBucketsPerDecade = 32;
  static constexpr int kDecades = 21;  // log10(kRangeHi / kRangeLo)

  HdrHistogram();

  void add(double x, std::uint64_t count = 1);
  void merge(const HdrHistogram& other);

  std::uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  double min() const { return total_ ? min_ : 0.0; }
  double max() const { return total_ ? max_ : 0.0; }
  /// Samples that fell outside [kRangeLo, kRangeHi): still counted in
  /// total()/sum() but not in any sized bucket, so quantiles near the tail
  /// silently clamp. Exporters surface these so a mis-scaled metric (e.g.
  /// nanoseconds recorded as seconds) is visible instead of a quiet lie.
  std::uint64_t underflow_count() const { return underflow_; }
  std::uint64_t overflow_count() const { return overflow_; }

  /// q in [0, 1]; value interpolated within the bucket holding that rank.
  double quantile(double q) const;
  double p50() const { return quantile(0.5); }
  double p99() const { return quantile(0.99); }

  /// Non-empty buckets in ascending value order (exporter iteration).
  struct Bucket {
    double lo = 0, hi = 0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> nonzero_buckets() const;

 private:
  static std::size_t bucket_index(double x);
  static double bucket_lo(std::size_t i);

  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A (x, y) series, used for loss curves and MFU-over-time plots.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  std::size_t size() const { return x.size(); }

  /// Mean of y over the trailing k points (k clamped to size).
  double tail_mean(std::size_t k) const;
};

/// Render one or more series as an ASCII line chart. Each series gets its own
/// glyph; axes are annotated with min/max. Used by bench binaries to emit the
/// paper's figures on a terminal.
std::string ascii_chart(const std::vector<Series>& series, std::size_t width = 72,
                        std::size_t height = 18);

}  // namespace ms
