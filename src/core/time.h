// Simulated-time primitives shared by every MegaScale subsystem.
//
// All simulation modules express time as integral nanoseconds (TimeNs).
// Integral time keeps the discrete-event engine deterministic across
// platforms: there is no floating-point drift when two events are scheduled
// from different code paths that should coincide.
#pragma once

#include <cstdint>
#include <string>

namespace ms {

/// Simulated time, in nanoseconds since the start of the simulation.
using TimeNs = std::int64_t;

/// Duration aliases — constructors for readable call sites.
constexpr TimeNs kNsPerUs = 1'000;
constexpr TimeNs kNsPerMs = 1'000'000;
constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs nanoseconds(std::int64_t n) { return n; }
constexpr TimeNs microseconds(double us) {
  return static_cast<TimeNs>(us * static_cast<double>(kNsPerUs));
}
constexpr TimeNs milliseconds(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kNsPerMs));
}
constexpr TimeNs seconds(double s) {
  return static_cast<TimeNs>(s * static_cast<double>(kNsPerSec));
}
constexpr TimeNs minutes(double m) { return seconds(m * 60.0); }
constexpr TimeNs hours(double h) { return seconds(h * 3600.0); }
constexpr TimeNs days(double d) { return hours(d * 24.0); }

constexpr double to_seconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}
constexpr double to_milliseconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerMs);
}
constexpr double to_microseconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerUs);
}
constexpr double to_minutes(TimeNs t) { return to_seconds(t) / 60.0; }
constexpr double to_hours(TimeNs t) { return to_seconds(t) / 3600.0; }
constexpr double to_days(TimeNs t) { return to_hours(t) / 24.0; }

/// Human-readable rendering, e.g. "1.25s", "380ms", "12.3us", "2.1h".
std::string format_duration(TimeNs t);

}  // namespace ms
