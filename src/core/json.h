// Minimal JSON utilities shared by the diagnosis artifact layer and the
// telemetry exporters.
//
// Two halves:
//  * escape() — the one audited string-escaping routine every emitter in
//    the repo uses (exporters, chrome traces, artifact writers), so a span
//    name with a quote or control character cannot corrupt an artifact;
//  * Value/parse() — a small recursive-descent parser for the JSON the
//    repo itself emits (flight-recorder dumps, span JSONL, outcome
//    records). It supports the full value grammar with numbers held as
//    double; it is for tooling (msdiag) and artifacts, not a general
//    internet-facing parser.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ms::json {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, \n\t\r, other control characters as \u00xx).
std::string escape(const std::string& s);

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::shared_ptr<std::vector<Value>> array;
  std::shared_ptr<std::map<std::string, Value>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool has(const std::string& key) const {
    return kind == Kind::kObject && object->count(key) > 0;
  }
  const Value& at(const std::string& key) const { return object->at(key); }
  const Value& operator[](std::size_t i) const { return (*array)[i]; }
  std::size_t size() const {
    if (kind == Kind::kArray) return array->size();
    if (kind == Kind::kObject) return object->size();
    return 0;
  }

  /// Typed lookups with defaults — artifact loaders stay short.
  double num(const std::string& key, double fallback = 0) const;
  std::string text(const std::string& key,
                   const std::string& fallback = "") const;
};

/// Parses one JSON value. Returns false (and leaves `out` untouched) on
/// malformed input instead of throwing — artifact loaders report the line.
bool parse(const std::string& text, Value& out);

}  // namespace ms::json
