// Minimal leveled logging.
//
// The simulation itself communicates through return values; logging exists
// for debug tracing of long experiments and is off (WARN) by default so the
// bench output stays clean.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "core/time.h"

namespace ms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Both accessors are
/// atomic, so worker threads may log while another thread flips the level.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Optional timestamp hook: when set, every line carries the provider's
/// current time, e.g. "[INFO] [1.250s] message". Simulations install
/// `[&engine] { return engine.now(); }` so log lines line up with the
/// discrete-event clock. Pass nullptr to remove. Thread-safe.
void set_log_timestamp_provider(std::function<TimeNs()> provider);

/// Emits one line to stderr: "[LEVEL] message" (plus the timestamp prefix
/// when a provider is installed).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define MS_LOG(level_enum)                                     \
  if (::ms::log_level() <= ::ms::LogLevel::level_enum)         \
  ::ms::detail::LogLine(::ms::LogLevel::level_enum)

#define MS_LOG_DEBUG MS_LOG(kDebug)
#define MS_LOG_INFO MS_LOG(kInfo)
#define MS_LOG_WARN MS_LOG(kWarn)
#define MS_LOG_ERROR MS_LOG(kError)

}  // namespace ms
