// Minimal leveled logging.
//
// The simulation itself communicates through return values; logging exists
// for debug tracing of long experiments and is off (WARN) by default so the
// bench output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace ms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr: "[LEVEL] message".
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define MS_LOG(level_enum)                                     \
  if (::ms::log_level() <= ::ms::LogLevel::level_enum)         \
  ::ms::detail::LogLine(::ms::LogLevel::level_enum)

#define MS_LOG_DEBUG MS_LOG(kDebug)
#define MS_LOG_INFO MS_LOG(kInfo)
#define MS_LOG_WARN MS_LOG(kWarn)
#define MS_LOG_ERROR MS_LOG(kError)

}  // namespace ms
