#include "core/table.h"

#include <cassert>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace ms {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_line = [&](std::ostringstream& out) {
    out << '+';
    for (auto w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  auto emit_row = [&](std::ostringstream& out, const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_line(out);
  emit_row(out, headers_);
  emit_line(out);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_line(out);
    } else {
      emit_row(out, row);
    }
  }
  emit_line(out);
  return out.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

}  // namespace ms
