#include "core/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ms {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentiles::quantile(double q) const {
  assert(!values_.empty());
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

// --------------------------------------------------------- HdrHistogram

HdrHistogram::HdrHistogram()
    : counts_(static_cast<std::size_t>(kBucketsPerDecade) * kDecades, 0) {}

std::size_t HdrHistogram::bucket_index(double x) {
  const double pos = std::log10(x / kRangeLo) * kBucketsPerDecade;
  // Clamp: floating rounding near the range edges must not step outside.
  constexpr std::size_t kLast =
      static_cast<std::size_t>(kBucketsPerDecade) * kDecades - 1;
  return std::min(static_cast<std::size_t>(std::max(pos, 0.0)), kLast);
}

double HdrHistogram::bucket_lo(std::size_t i) {
  return kRangeLo *
         std::pow(10.0, static_cast<double>(i) / kBucketsPerDecade);
}

void HdrHistogram::add(double x, std::uint64_t count) {
  if (count == 0) return;
  total_ += count;
  sum_ += x * static_cast<double>(count);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (!(x >= kRangeLo)) {  // includes NaN, <= 0 and tiny values
    underflow_ += count;
  } else if (x >= kRangeHi) {
    overflow_ += count;
  } else {
    counts_[bucket_index(x)] += count;
  }
}

void HdrHistogram::merge(const HdrHistogram& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double HdrHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double seen = static_cast<double>(underflow_);
  if (target <= seen && underflow_ > 0) return min_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = seen + static_cast<double>(counts_[i]);
    if (target <= next) {
      const double frac = (target - seen) / static_cast<double>(counts_[i]);
      const double lo = bucket_lo(i), hi = bucket_lo(i + 1);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    seen = next;
  }
  return max_;
}

std::vector<HdrHistogram::Bucket> HdrHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  if (underflow_ > 0) out.push_back({0.0, kRangeLo, underflow_});
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back({bucket_lo(i), bucket_lo(i + 1), counts_[i]});
  }
  if (overflow_ > 0) {
    out.push_back({kRangeHi, std::numeric_limits<double>::infinity(),
                   overflow_});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  char head[96];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(head, sizeof(head), "[%10.4g, %10.4g) %8zu |", bucket_lo(i),
                  bucket_hi(i), counts_[i]);
    out << head;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    for (std::size_t b = 0; b < bar; ++b) out << '#';
    out << '\n';
  }
  if (underflow_ || overflow_) {
    out << "underflow=" << underflow_ << " overflow=" << overflow_ << '\n';
  }
  return out.str();
}

double Series::tail_mean(std::size_t k) const {
  if (y.empty()) return 0.0;
  k = std::min(k, y.size());
  double s = 0.0;
  for (std::size_t i = y.size() - k; i < y.size(); ++i) s += y[i];
  return s / static_cast<double>(k);
}

std::string ascii_chart(const std::vector<Series>& series, std::size_t width,
                        std::size_t height) {
  static const char kGlyphs[] = {'*', 'o', '+', 'x', '@', '%', '~', '^'};
  double xmin = 0, xmax = 1, ymin = 0, ymax = 1;
  bool any = false;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      if (!any) {
        xmin = xmax = s.x[i];
        ymin = ymax = s.y[i];
        any = true;
      } else {
        xmin = std::min(xmin, s.x[i]);
        xmax = std::max(xmax, s.x[i]);
        ymin = std::min(ymin, s.y[i]);
        ymax = std::max(ymax, s.y[i]);
      }
    }
  }
  if (!any) return "(empty chart)\n";
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      auto cx = static_cast<std::size_t>((s.x[i] - xmin) / (xmax - xmin) *
                                         static_cast<double>(width - 1));
      auto cy = static_cast<std::size_t>((s.y[i] - ymin) / (ymax - ymin) *
                                         static_cast<double>(height - 1));
      grid[height - 1 - cy][cx] = glyph;
    }
  }

  std::ostringstream out;
  char label[64];
  std::snprintf(label, sizeof(label), "%10.4g ", ymax);
  out << label << '|' << grid[0] << '\n';
  for (std::size_t r = 1; r + 1 < height; ++r) {
    out << std::string(11, ' ') << '|' << grid[r] << '\n';
  }
  std::snprintf(label, sizeof(label), "%10.4g ", ymin);
  out << label << '|' << grid[height - 1] << '\n';
  out << std::string(12, ' ') << std::string(width, '-') << '\n';
  char xlabel[96];
  std::snprintf(xlabel, sizeof(xlabel), "%12s%-10.4g%*.4g\n", "", xmin,
                static_cast<int>(width) - 10, xmax);
  out << xlabel;
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series[si].name;
  }
  out << '\n';
  return out.str();
}

}  // namespace ms
