// Aligned text tables — every bench binary prints the paper's tables with
// this helper so the output format is uniform.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ms {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the row must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience formatters for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_pct(double fraction, int precision = 1);  // 0.552 -> "55.2%"

  /// Inserts a horizontal separator line after the current last row.
  void add_separator();

  std::string to_string() const;
  void print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

}  // namespace ms
