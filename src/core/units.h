// Data-size and bandwidth units.
//
// Bandwidths are expressed in bytes per second (double); sizes in bytes
// (std::int64_t). Helpers keep unit conversions explicit at call sites —
// mixing Gb/s (network links) and GB/s (memory/PCIe) is the classic source
// of silent 8x errors in systems models.
#pragma once

#include <cstdint>

namespace ms {

using Bytes = std::int64_t;

constexpr Bytes operator""_B(unsigned long long v) { return static_cast<Bytes>(v); }
constexpr Bytes operator""_KiB(unsigned long long v) { return static_cast<Bytes>(v) << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return static_cast<Bytes>(v) << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return static_cast<Bytes>(v) << 30; }

/// Bandwidth in bytes/second.
using Bandwidth = double;

constexpr Bandwidth gbps(double gigabits_per_second) {
  return gigabits_per_second * 1e9 / 8.0;  // bits -> bytes
}
constexpr Bandwidth gBps(double gigabytes_per_second) {
  return gigabytes_per_second * 1e9;
}
constexpr double to_gbps(Bandwidth b) { return b * 8.0 / 1e9; }
constexpr double to_gBps(Bandwidth b) { return b / 1e9; }

/// FLOP counts; aggregate model FLOPs overflow 32-bit easily, and 175B-model
/// iteration FLOPs (~1e19) even strain int64 headroom, so use double.
using Flops = double;

/// SI scale factors. This header is the one place powers-of-ten unit
/// literals are allowed (enforced by tools/lint.py); call sites say
/// mega(1.0)/giga(2.5) instead of sprinkling 1e6/1e9.
constexpr double kilo(double v) { return v * 1e3; }
constexpr double mega(double v) { return v * 1e6; }
constexpr double giga(double v) { return v * 1e9; }
constexpr Flops tera(double v) { return v * 1e12; }
constexpr Flops peta(double v) { return v * 1e15; }

}  // namespace ms
