// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Clang's thread safety analysis cannot see through libstdc++'s
// std::lock_guard / std::unique_lock (they carry no annotations), so raw
// std::mutex members are invisible to the capability system. These thin
// wrappers make the locking discipline analyzable: ms::Mutex is a
// MS_CAPABILITY, ms::MutexLock is the scoped acquisition, and ms::CondVar
// waits while the caller demonstrably holds the mutex (MS_REQUIRES).
//
// The repo-level lint rule `mutex-annotated` bans raw std::mutex members
// outside this file, so every locked subsystem routes through here and the
// clang `-Wthread-safety` CI leg checks all of it.
//
// Zero-overhead by construction: every method is a single forwarded call,
// and CondVar rides std::condition_variable via adopt/release (no
// condition_variable_any, no extra mutex).
//
// Predicate waits are written as explicit loops at the call site —
//   while (!ready_) cv_.wait(mu_);
// — not as capturing lambdas, so the analysis sees the guarded reads under
// the held capability instead of an opaque closure.
#pragma once

#include <chrono>
// ms-lint: allow-file(mutex-annotated): this is the designated annotated
// wrapper home; the std::mutex member below IS the wrapped capability.
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace ms {

/// std::mutex as a Clang TSA capability.
class MS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MS_ACQUIRE() { mu_.lock(); }
  void unlock() MS_RELEASE() { mu_.unlock(); }
  bool try_lock() MS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped acquisition (the annotated lock_guard).
class MS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to ms::Mutex. All waits require the capability:
/// they atomically release it while blocked and reacquire it before
/// returning, so from the analysis' (and the caller's) point of view the
/// mutex is held across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel_time)
      MS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, rel_time);
    lock.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      MS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ms
