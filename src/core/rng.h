// Deterministic pseudo-random number generation.
//
// Every stochastic component in the reproduction (fault injection, straggler
// placement, ECMP hashing Monte-Carlo, synthetic corpora, ...) draws from an
// explicitly-seeded Rng so that experiments are reproducible bit-for-bit.
// The generator is xoshiro256**, seeded through splitmix64, which is both
// fast and of high statistical quality — we deliberately avoid std::mt19937
// whose distributions are not portable across standard libraries.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ms {

/// splitmix64 step — used for seeding and as a stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives an independent, reproducible sub-seed from one root seed.
///
/// Multi-component experiments (fault injection, flap schedules, straggler
/// placement, diagnostic draws, ...) must be reproducible from a SINGLE
/// seed, yet each component needs its own stream so that adding draws in
/// one component does not perturb another. Components therefore never
/// invent literal seeds; they derive them by (root, domain, index):
///
///   Rng faults(derive_seed(seed, "chaos.faults"));
///   Rng flaps(derive_seed(seed, "chaos.flaps", link));
///
/// The domain string is folded FNV-1a-style, then mixed with the root and
/// index through splitmix64, so distinct domains and indices give
/// uncorrelated streams while the mapping stays stable across platforms.
constexpr std::uint64_t derive_seed(std::uint64_t root, std::string_view domain,
                                    std::uint64_t index = 0) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : domain) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(splitmix64(root ^ h) + splitmix64(index ^ (h << 1)));
}

/// Deterministic, explicitly seeded random generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x = splitmix64(x);
      word = x;
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given mean (i.e. rate 1/mean). mean must be > 0.
  double exponential(double mean);

  /// Log-normal where the underlying normal has (mu, sigma).
  double lognormal(double mu, double sigma);

  /// Pick k distinct indices out of [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Derive an independent child generator (for per-entity streams).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ms
