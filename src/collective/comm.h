// NCCL-like collective cost model.
//
// Collectives are modeled with the standard alpha-beta (latency-bandwidth)
// formulation of ring algorithms, parameterized separately for the NVLink
// domain (tensor parallelism stays inside one node, §2) and the RDMA
// network domain (data/pipeline parallelism cross nodes). A contention
// factor — derived from the ECMP analysis in ms::net — scales effective
// network bandwidth down. The model is cross-validated against the
// max-min-fair flow simulator in tests (collective_test.cpp).
#pragma once

#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "core/time.h"
#include "core/units.h"

namespace ms::telemetry {
class MetricsRegistry;
}  // namespace ms::telemetry

namespace ms::collective {

/// Per-GPU device characteristics (defaults: NVIDIA A100-like, the paper's
/// "Ampere GPUs").
struct GpuSpec {
  Flops peak_flops = tera(312.0);   // bf16 tensor core peak
  Bandwidth hbm_bw = gBps(2039.0);  // HBM2e
};

/// Cluster fabric characteristics.
struct ClusterSpec {
  GpuSpec gpu;
  int gpus_per_node = 8;
  /// Per-GPU NVLink bus bandwidth usable by collectives inside a node.
  /// Nominal NVLink3 is 300 GB/s; ring collectives on training-sized
  /// messages attain roughly half of it in practice.
  Bandwidth nvlink_bw = gBps(160.0);
  TimeNs nvlink_latency = microseconds(4.0);
  /// Per-GPU network bandwidth (one 200G RNIC per GPU, multi-rail).
  Bandwidth nic_bw = gbps(200.0);
  TimeNs net_latency = microseconds(12.0);
  /// PCIe bandwidth host<->device (checkpointing path, §4.4).
  Bandwidth pcie_bw = gBps(25.0);
};

enum class Domain {
  kIntraNode,  // NVLink
  kInterNode,  // RDMA fabric
};

class CollectiveModel {
 public:
  /// `network_efficiency` in (0,1]: fraction of nominal NIC bandwidth that
  /// collectives attain across the fabric (ECMP conflicts, CC overhead).
  explicit CollectiveModel(const ClusterSpec& cluster,
                           double network_efficiency = 0.9);

  const ClusterSpec& cluster() const { return cluster_; }
  double network_efficiency() const { return network_efficiency_; }

  /// Optional telemetry (not owned; nullptr disables). Every cost query
  /// records `collective_calls_total` / `collective_bytes_total` counters
  /// and a `collective_latency_seconds` histogram, labeled
  /// {op=<collective>, domain=intra|inter}.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Ring all-reduce over `ranks` participants of `bytes` payload:
  /// 2*(n-1)/n * S/B + 2*(n-1)*alpha.
  TimeNs all_reduce(Bytes bytes, int ranks, Domain domain) const;

  /// Ring all-gather (output size `bytes` across all ranks):
  /// (n-1)/n * S/B + (n-1)*alpha.
  TimeNs all_gather(Bytes bytes, int ranks, Domain domain) const;

  /// Ring reduce-scatter — same cost shape as all-gather.
  TimeNs reduce_scatter(Bytes bytes, int ranks, Domain domain) const;

  /// All-to-all of `bytes` total per rank (each rank exchanges bytes/n with
  /// every peer): (n-1)/n * S/B + (n-1)*alpha.
  TimeNs all_to_all(Bytes bytes, int ranks, Domain domain) const;

  /// Point-to-point transfer (pipeline parallelism send/recv).
  TimeNs send_recv(Bytes bytes, Domain domain) const;

  /// Broadcast via chunked ring pipeline: S/B + (n-1)*alpha approximately.
  TimeNs broadcast(Bytes bytes, int ranks, Domain domain) const;

  /// Hierarchical all-reduce across `nodes` machines of `gpus_per_node`
  /// GPUs: intra-node reduce-scatter (NVLink), inter-node all-reduce of the
  /// 1/gpus_per_node shard (network), intra-node all-gather. For large node
  /// counts this beats the flat ring because the latency term scales with
  /// `nodes` instead of `nodes * gpus_per_node` and the NVLink hops are
  /// nearly free.
  TimeNs hierarchical_all_reduce(Bytes bytes, int nodes,
                                 int gpus_per_node) const;

  Bandwidth bandwidth(Domain domain) const;
  TimeNs latency(Domain domain) const;

 private:
  void record(const char* op, Domain domain, Bytes bytes, TimeNs t) const;
  /// MS_AUDIT hook: α–β costs are monotone in bytes (per op/domain/ranks)
  /// and never undercut the pure latency term. No-op when auditing is
  /// compiled out.
  void audit_cost(const char* op, Domain domain, int ranks, Bytes bytes,
                  TimeNs t) const;

  ClusterSpec cluster_;
  double network_efficiency_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  // Last (bytes, cost) per (op, domain, ranks) — backing state for
  // audit_cost's cross-call monotonicity invariant.
  mutable Mutex audit_mu_;
  mutable std::map<std::tuple<std::string, int, int>, std::pair<Bytes, TimeNs>>
      audit_last_ MS_GUARDED_BY(audit_mu_);
};

}  // namespace ms::collective
