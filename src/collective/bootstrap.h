// Large-scale communicator-initialization time model (MegaScale §3.5).
//
// The kvstore.h implementations demonstrate the mechanisms with real
// threads at laptop scale; this model extrapolates to 2,048-12,288 GPUs to
// reproduce the paper's measured milestones:
//
//   torch.distributed + TCPStore, global barriers : 1047 s @ 2048 GPUs
//   + Redis (non-blocking, asynchronous)          :  361 s @ 2048 GPUs
//   + ordered init (no global barriers, O(n))     :  < 5 s @ 2048 GPUs
//                                                   < 30 s @ 10k+ GPUs
//
// Structure of the op count (what turns the knobs):
//  * every rank participates in one TP, one PP and one DP group; group
//    counts are n/tp + n/pp + tp*pp;
//  * the naive initializer runs a WORLD-wide barrier after every group:
//    ops = groups * world  (the O(n^2) term);
//  * ordered initialization synchronizes only group members:
//    ops = sum of 2 * group sizes = O(n).
// The store drains those ops at an effective service rate; the blocking
// TCPStore rate and the Redis rate are calibrated against the two paper
// measurements at 2048 GPUs and then used for every other prediction.
#pragma once

#include "core/time.h"

namespace ms::collective {

enum class StoreKind { kTcpStore, kRedis };

struct BootstrapConfig {
  int world_size = 2048;
  int tp = 8;
  int pp = 8;
  StoreKind store = StoreKind::kTcpStore;
  /// false: global barrier after every group (torch default).
  /// true:  MegaScale's carefully ordered initialization.
  bool ordered_init = false;
  /// Effective store service rates (requests/s), calibrated to the paper.
  double tcp_ops_per_sec = 1138.0;
  double redis_ops_per_sec = 3302.0;
};

struct BootstrapEstimate {
  double group_count = 0;
  double total_store_ops = 0;
  TimeNs init_time = 0;
};

BootstrapEstimate estimate_init_time(const BootstrapConfig& config);

}  // namespace ms::collective
