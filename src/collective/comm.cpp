#include "collective/comm.h"

#include <cassert>
#include <cmath>
#include <string>

#include "check/audit.h"
#include "telemetry/metrics.h"

namespace ms::collective {

CollectiveModel::CollectiveModel(const ClusterSpec& cluster,
                                 double network_efficiency)
    : cluster_(cluster), network_efficiency_(network_efficiency) {
  assert(network_efficiency > 0 && network_efficiency <= 1.0);
}

Bandwidth CollectiveModel::bandwidth(Domain domain) const {
  switch (domain) {
    case Domain::kIntraNode:
      return cluster_.nvlink_bw;
    case Domain::kInterNode:
      return cluster_.nic_bw * network_efficiency_;
  }
  return cluster_.nic_bw;
}

TimeNs CollectiveModel::latency(Domain domain) const {
  return domain == Domain::kIntraNode ? cluster_.nvlink_latency
                                      : cluster_.net_latency;
}

namespace {
TimeNs transfer_time(double bytes, Bandwidth bw) {
  return seconds(bytes / bw);
}
}  // namespace

void CollectiveModel::audit_cost(const char* op, Domain domain, int ranks,
                                 Bytes bytes, TimeNs t) const {
#if defined(MS_AUDIT_ENABLED) && MS_AUDIT_ENABLED
  MS_AUDIT("collective.model", "cost_nonnegative", t >= 0,
           std::string(op) + " cost " + std::to_string(t) + "ns for " +
               std::to_string(bytes) + " bytes");
  MutexLock lock(audit_mu_);
  auto key = std::make_tuple(std::string(op), static_cast<int>(domain), ranks);
  auto it = audit_last_.find(key);
  if (it != audit_last_.end()) {
    const auto [prev_bytes, prev_t] = it->second;
    const bool monotone = (bytes >= prev_bytes && t >= prev_t) ||
                          (bytes <= prev_bytes && t <= prev_t);
    MS_AUDIT("collective.model", "cost_monotone_in_bytes", monotone,
             std::string(op) + ": " + std::to_string(bytes) + "B -> " +
                 std::to_string(t) + "ns vs " + std::to_string(prev_bytes) +
                 "B -> " + std::to_string(prev_t) + "ns");
    it->second = {bytes, t};
  } else {
    audit_last_.emplace(std::move(key), std::make_pair(bytes, t));
  }
#else
  (void)op;
  (void)domain;
  (void)ranks;
  (void)bytes;
  (void)t;
#endif
}

void CollectiveModel::record(const char* op, Domain domain, Bytes bytes,
                             TimeNs t) const {
  if (metrics_ == nullptr) return;
  const telemetry::Labels labels{
      {"op", op},
      {"domain", domain == Domain::kIntraNode ? "intra" : "inter"}};
  metrics_->counter("collective_calls_total", labels).add();
  metrics_->counter("collective_bytes_total", labels)
      .add(static_cast<double>(bytes));
  metrics_->histogram("collective_latency_seconds", labels)
      .observe(to_seconds(t));
}

TimeNs CollectiveModel::all_reduce(Bytes bytes, int ranks, Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const double n = ranks;
  const double payload = 2.0 * (n - 1.0) / n * static_cast<double>(bytes);
  const TimeNs t = transfer_time(payload, bandwidth(domain)) +
                   2 * (ranks - 1) * latency(domain);
  audit_cost("allreduce", domain, ranks, bytes, t);
  record("allreduce", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::all_gather(Bytes bytes, int ranks, Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const double n = ranks;
  const double payload = (n - 1.0) / n * static_cast<double>(bytes);
  const TimeNs t = transfer_time(payload, bandwidth(domain)) +
                   (ranks - 1) * latency(domain);
  audit_cost("allgather", domain, ranks, bytes, t);
  record("allgather", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::reduce_scatter(Bytes bytes, int ranks,
                                       Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const double n = ranks;
  const double payload = (n - 1.0) / n * static_cast<double>(bytes);
  const TimeNs t = transfer_time(payload, bandwidth(domain)) +
                   (ranks - 1) * latency(domain);
  audit_cost("reducescatter", domain, ranks, bytes, t);
  record("reducescatter", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::all_to_all(Bytes bytes, int ranks, Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const double n = ranks;
  const double payload = (n - 1.0) / n * static_cast<double>(bytes);
  const TimeNs t = transfer_time(payload, bandwidth(domain)) +
                   (ranks - 1) * latency(domain);
  audit_cost("alltoall", domain, ranks, bytes, t);
  record("alltoall", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::send_recv(Bytes bytes, Domain domain) const {
  assert(bytes >= 0);
  if (bytes == 0) return 0;
  const TimeNs t = transfer_time(static_cast<double>(bytes), bandwidth(domain)) +
                   latency(domain);
  audit_cost("sendrecv", domain, /*ranks=*/2, bytes, t);
  record("sendrecv", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::hierarchical_all_reduce(Bytes bytes, int nodes,
                                                int gpus_per_node) const {
  assert(nodes >= 1 && gpus_per_node >= 1 && bytes >= 0);
  if (bytes == 0) return 0;
  const TimeNs intra_rs =
      reduce_scatter(bytes, gpus_per_node, Domain::kIntraNode);
  const TimeNs inter =
      all_reduce(bytes / gpus_per_node, nodes, Domain::kInterNode);
  const TimeNs intra_ag = all_gather(bytes, gpus_per_node, Domain::kIntraNode);
  return intra_rs + inter + intra_ag;
}

TimeNs CollectiveModel::broadcast(Bytes bytes, int ranks, Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const TimeNs t = transfer_time(static_cast<double>(bytes), bandwidth(domain)) +
                   (ranks - 1) * latency(domain);
  audit_cost("broadcast", domain, ranks, bytes, t);
  record("broadcast", domain, bytes, t);
  return t;
}

}  // namespace ms::collective
