#include "collective/comm.h"

#include <cassert>
#include <cmath>

#include "telemetry/metrics.h"

namespace ms::collective {

CollectiveModel::CollectiveModel(const ClusterSpec& cluster,
                                 double network_efficiency)
    : cluster_(cluster), network_efficiency_(network_efficiency) {
  assert(network_efficiency > 0 && network_efficiency <= 1.0);
}

Bandwidth CollectiveModel::bandwidth(Domain domain) const {
  switch (domain) {
    case Domain::kIntraNode:
      return cluster_.nvlink_bw;
    case Domain::kInterNode:
      return cluster_.nic_bw * network_efficiency_;
  }
  return cluster_.nic_bw;
}

TimeNs CollectiveModel::latency(Domain domain) const {
  return domain == Domain::kIntraNode ? cluster_.nvlink_latency
                                      : cluster_.net_latency;
}

namespace {
TimeNs transfer_time(double bytes, Bandwidth bw) {
  return seconds(bytes / bw);
}
}  // namespace

void CollectiveModel::record(const char* op, Domain domain, Bytes bytes,
                             TimeNs t) const {
  if (metrics_ == nullptr) return;
  const telemetry::Labels labels{
      {"op", op},
      {"domain", domain == Domain::kIntraNode ? "intra" : "inter"}};
  metrics_->counter("collective_calls_total", labels).add();
  metrics_->counter("collective_bytes_total", labels)
      .add(static_cast<double>(bytes));
  metrics_->histogram("collective_latency_seconds", labels)
      .observe(to_seconds(t));
}

TimeNs CollectiveModel::all_reduce(Bytes bytes, int ranks, Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const double n = ranks;
  const double payload = 2.0 * (n - 1.0) / n * static_cast<double>(bytes);
  const TimeNs t = transfer_time(payload, bandwidth(domain)) +
                   2 * (ranks - 1) * latency(domain);
  record("allreduce", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::all_gather(Bytes bytes, int ranks, Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const double n = ranks;
  const double payload = (n - 1.0) / n * static_cast<double>(bytes);
  const TimeNs t = transfer_time(payload, bandwidth(domain)) +
                   (ranks - 1) * latency(domain);
  record("allgather", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::reduce_scatter(Bytes bytes, int ranks,
                                       Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const double n = ranks;
  const double payload = (n - 1.0) / n * static_cast<double>(bytes);
  const TimeNs t = transfer_time(payload, bandwidth(domain)) +
                   (ranks - 1) * latency(domain);
  record("reducescatter", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::all_to_all(Bytes bytes, int ranks, Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const double n = ranks;
  const double payload = (n - 1.0) / n * static_cast<double>(bytes);
  const TimeNs t = transfer_time(payload, bandwidth(domain)) +
                   (ranks - 1) * latency(domain);
  record("alltoall", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::send_recv(Bytes bytes, Domain domain) const {
  assert(bytes >= 0);
  if (bytes == 0) return 0;
  const TimeNs t = transfer_time(static_cast<double>(bytes), bandwidth(domain)) +
                   latency(domain);
  record("sendrecv", domain, bytes, t);
  return t;
}

TimeNs CollectiveModel::hierarchical_all_reduce(Bytes bytes, int nodes,
                                                int gpus_per_node) const {
  assert(nodes >= 1 && gpus_per_node >= 1 && bytes >= 0);
  if (bytes == 0) return 0;
  const TimeNs intra_rs =
      reduce_scatter(bytes, gpus_per_node, Domain::kIntraNode);
  const TimeNs inter =
      all_reduce(bytes / gpus_per_node, nodes, Domain::kInterNode);
  const TimeNs intra_ag = all_gather(bytes, gpus_per_node, Domain::kIntraNode);
  return intra_rs + inter + intra_ag;
}

TimeNs CollectiveModel::broadcast(Bytes bytes, int ranks, Domain domain) const {
  assert(ranks >= 1 && bytes >= 0);
  if (ranks == 1 || bytes == 0) return 0;
  const TimeNs t = transfer_time(static_cast<double>(bytes), bandwidth(domain)) +
                   (ranks - 1) * latency(domain);
  record("broadcast", domain, bytes, t);
  return t;
}

}  // namespace ms::collective
