// In-process key-value rendezvous stores (MegaScale §3.5).
//
// torch.distributed bootstraps NCCL communicators through a central
// key-value store. The paper identifies the store itself as the first
// scaling bottleneck: TCPStore is single-threaded and handles requests in a
// blocking read-write manner, so every barrier serializes the whole world;
// replacing it with Redis (non-blocking, asynchronous) cut 2048-GPU init
// from 1047s to 361s.
//
// We implement both semantics for real, with threads:
//  * BlockingKvStore — every request is funneled through ONE worker thread
//    and charged a per-request service delay (socket round trip + blocking
//    handler), exactly the serialization TCPStore imposes;
//  * AsyncKvStore — sharded, mutex-per-shard map; requests execute on the
//    caller's thread concurrently (the Redis-like behaviour at the
//    concurrency levels relevant here).
//
// A store-based barrier and a group-initialization workload are provided so
// the two designs can be raced head-to-head (tests + micro benches).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace ms::collective {

/// Abstract rendezvous store. All operations are thread-safe.
class KvStore {
 public:
  virtual ~KvStore() = default;
  virtual void set(const std::string& key, const std::string& value) = 0;
  virtual std::optional<std::string> get(const std::string& key) = 0;
  /// Atomically adds `delta` to an integer key (missing key counts as 0);
  /// returns the new value. The primitive barriers are built on.
  virtual std::int64_t add(const std::string& key, std::int64_t delta) = 0;
  /// Blocks until the key exists or `timeout` elapses.
  virtual std::optional<std::string> wait(
      const std::string& key,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000)) = 0;
};

/// TCPStore-like: single service thread, one request at a time, each
/// request charged `service_delay`.
class BlockingKvStore : public KvStore {
 public:
  explicit BlockingKvStore(
      std::chrono::microseconds service_delay = std::chrono::microseconds(30));
  ~BlockingKvStore() override;

  void set(const std::string& key, const std::string& value) override;
  std::optional<std::string> get(const std::string& key) override;
  std::int64_t add(const std::string& key, std::int64_t delta) override;
  std::optional<std::string> wait(const std::string& key,
                                  std::chrono::milliseconds timeout) override;

 private:
  // A queued request: runs under the worker thread, fulfills a ticket.
  struct Request {
    std::function<void()> fn;
  };
  void worker_loop();
  // Submits fn to the worker and blocks until it has run.
  void submit_and_wait(std::function<void()> fn);

  std::chrono::microseconds service_delay_;
  Mutex mu_;
  CondVar cv_;  // worker wakeup
  std::deque<Request> queue_ MS_GUARDED_BY(mu_);
  bool stop_ MS_GUARDED_BY(mu_) = false;
  std::thread worker_;

  // Touched only by the worker thread; wait() is client-side polling (each
  // poll is one more serialized request — the poll storm a blocking store
  // suffers in real deployments).
  std::unordered_map<std::string, std::string> map_;
};

/// Redis-like: sharded concurrent map, served on caller threads.
class AsyncKvStore : public KvStore {
 public:
  explicit AsyncKvStore(std::size_t shards = 16);

  void set(const std::string& key, const std::string& value) override;
  std::optional<std::string> get(const std::string& key) override;
  std::int64_t add(const std::string& key, std::int64_t delta) override;
  std::optional<std::string> wait(const std::string& key,
                                  std::chrono::milliseconds timeout) override;

 private:
  struct Shard {
    Mutex mu;
    CondVar cv;
    std::unordered_map<std::string, std::string> map MS_GUARDED_BY(mu);
  };
  Shard& shard_for(const std::string& key);

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Store-based barrier: all `world` participants must call with the same
/// `name`. Returns false on timeout.
bool store_barrier(KvStore& store, const std::string& name, int world,
                   std::chrono::milliseconds timeout =
                       std::chrono::milliseconds(10000));

/// The §3.5 workload: `world` ranks (threads) initialize `groups` process
/// groups. Each rank joins its groups by publishing a key and waiting for
/// its peers; if `global_barrier_per_group` every rank additionally enters
/// a world-wide barrier after each group (torch.distributed's incautious
/// default), otherwise only group members synchronize (MegaScale's ordered
/// initialization). Returns wall-clock duration.
struct GroupInitResult {
  std::chrono::microseconds wall_time{0};
  bool ok = false;
};
GroupInitResult run_group_init(KvStore& store, int world, int group_size,
                               bool global_barrier_per_group);

}  // namespace ms::collective
