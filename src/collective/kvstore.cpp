#include "collective/kvstore.h"

#include <atomic>
#include <cassert>

#include "core/wallclock.h"

namespace ms::collective {

// ------------------------------------------------------- BlockingKvStore

BlockingKvStore::BlockingKvStore(std::chrono::microseconds service_delay)
    : service_delay_(service_delay), worker_([this] { worker_loop(); }) {}

BlockingKvStore::~BlockingKvStore() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void BlockingKvStore::worker_loop() {
  for (;;) {
    Request req;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    // The single-threaded, blocking service: the whole store is busy for
    // the duration of each request.
    if (service_delay_.count() > 0) {
      std::this_thread::sleep_for(service_delay_);
    }
    req.fn();
  }
}

void BlockingKvStore::submit_and_wait(std::function<void()> fn) {
  Mutex done_mu;
  CondVar done_cv;
  bool done = false;
  {
    MutexLock lock(mu_);
    queue_.push_back(Request{[&] {
      fn();
      // Notify while holding done_mu: done_cv/done_mu are locals of the
      // waiting caller and die the moment it observes done==true, so the
      // notify must complete before the waiter can reacquire the mutex —
      // notifying after unlock races with the condvar's destruction.
      MutexLock dl(done_mu);
      done = true;
      done_cv.notify_one();
    }});
  }
  cv_.notify_one();
  MutexLock dl(done_mu);
  while (!done) done_cv.wait(done_mu);
}

void BlockingKvStore::set(const std::string& key, const std::string& value) {
  submit_and_wait([&] { map_[key] = value; });
}

std::optional<std::string> BlockingKvStore::get(const std::string& key) {
  std::optional<std::string> result;
  submit_and_wait([&] {
    auto it = map_.find(key);
    if (it != map_.end()) result = it->second;
  });
  return result;
}

std::int64_t BlockingKvStore::add(const std::string& key, std::int64_t delta) {
  std::int64_t result = 0;
  submit_and_wait([&] {
    std::int64_t cur = 0;
    auto it = map_.find(key);
    if (it != map_.end()) cur = std::stoll(it->second);
    cur += delta;
    map_[key] = std::to_string(cur);
    result = cur;
  });
  return result;
}

std::optional<std::string> BlockingKvStore::wait(
    const std::string& key, std::chrono::milliseconds timeout) {
  const WallNs deadline =
      wallclock_ns() + std::chrono::nanoseconds(timeout).count();
  for (;;) {
    auto value = get(key);  // one serialized request per poll
    if (value) return value;
    if (wallclock_ns() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

// ---------------------------------------------------------- AsyncKvStore

AsyncKvStore::AsyncKvStore(std::size_t shards) {
  assert(shards > 0);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AsyncKvStore::Shard& AsyncKvStore::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void AsyncKvStore::set(const std::string& key, const std::string& value) {
  Shard& s = shard_for(key);
  {
    MutexLock lock(s.mu);
    s.map[key] = value;
  }
  s.cv.notify_all();
}

std::optional<std::string> AsyncKvStore::get(const std::string& key) {
  Shard& s = shard_for(key);
  MutexLock lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) return std::nullopt;
  return it->second;
}

std::int64_t AsyncKvStore::add(const std::string& key, std::int64_t delta) {
  Shard& s = shard_for(key);
  std::int64_t result = 0;
  {
    MutexLock lock(s.mu);
    std::int64_t cur = 0;
    auto it = s.map.find(key);
    if (it != s.map.end()) cur = std::stoll(it->second);
    cur += delta;
    s.map[key] = std::to_string(cur);
    result = cur;
  }
  s.cv.notify_all();
  return result;
}

std::optional<std::string> AsyncKvStore::wait(const std::string& key,
                                              std::chrono::milliseconds timeout) {
  Shard& s = shard_for(key);
  const WallNs deadline =
      wallclock_ns() + std::chrono::nanoseconds(timeout).count();
  MutexLock lock(s.mu);
  for (;;) {
    // The map lookup before the deadline check doubles as the "one last
    // look" after a timed-out wait: the value may land while we block.
    auto it = s.map.find(key);
    if (it != s.map.end()) return it->second;
    const WallNs remaining = deadline - wallclock_ns();
    if (remaining <= 0) return std::nullopt;
    s.cv.wait_for(s.mu, std::chrono::nanoseconds(remaining));
  }
}

// --------------------------------------------------------------- barrier

bool store_barrier(KvStore& store, const std::string& name, int world,
                   std::chrono::milliseconds timeout) {
  const std::int64_t arrived = store.add(name + "/count", 1);
  if (arrived == world) {
    store.set(name + "/go", "1");
    return true;
  }
  return store.wait(name + "/go", timeout).has_value();
}

// ------------------------------------------------------------ group init

GroupInitResult run_group_init(KvStore& store, int world, int group_size,
                               bool global_barrier_per_group) {
  assert(world % group_size == 0);
  const int groups = world / group_size;
  std::atomic<bool> ok{true};

  const WallNs start = wallclock_ns();
  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      const int my_group = r / group_size;
      // torch.distributed creates every group on every rank, in order.
      for (int g = 0; g < groups; ++g) {
        if (g == my_group) {
          // Join: publish our endpoint, wait for all peers' endpoints.
          const std::string prefix = "group" + std::to_string(g) + "/";
          store.set(prefix + "rank" + std::to_string(r), "addr");
          for (int peer = g * group_size; peer < (g + 1) * group_size; ++peer) {
            if (!store.wait(prefix + "rank" + std::to_string(peer))) {
              ok = false;
              return;
            }
          }
        }
        if (global_barrier_per_group) {
          // The incautious default: EVERY rank synchronizes after EVERY
          // group's initialization — O(groups * world) store traffic.
          if (!store_barrier(store, "global/after" + std::to_string(g), world)) {
            ok = false;
            return;
          }
        } else if (g == my_group) {
          // Ordered initialization: only members synchronize.
          if (!store_barrier(store, "group" + std::to_string(g) + "/bar",
                             group_size)) {
            ok = false;
            return;
          }
        }
      }
    });
  }
  for (auto& t : ranks) t.join();

  GroupInitResult result;
  result.wall_time = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::nanoseconds(wallclock_ns() - start));
  result.ok = ok;
  return result;
}

}  // namespace ms::collective
