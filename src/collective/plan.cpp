#include "collective/plan.h"

#include <cassert>

namespace ms::collective {

namespace {
int mod(int a, int n) { return ((a % n) + n) % n; }
}  // namespace

CollPlan ring_all_gather_plan(int ranks, Bytes total) {
  assert(ranks >= 1 && total >= 0);
  CollPlan plan;
  if (ranks == 1) return plan;
  const Bytes chunk_bytes = total / ranks;
  for (int r = 0; r < ranks - 1; ++r) {
    std::vector<CollStep> round;
    round.reserve(static_cast<std::size_t>(ranks));
    for (int i = 0; i < ranks; ++i) {
      CollStep s;
      s.src = i;
      s.dst = mod(i + 1, ranks);
      s.chunk = mod(i - r, ranks);
      s.bytes = chunk_bytes;
      round.push_back(s);
    }
    plan.push_back(std::move(round));
  }
  return plan;
}

CollPlan ring_reduce_scatter_plan(int ranks, Bytes total) {
  assert(ranks >= 1 && total >= 0);
  CollPlan plan;
  if (ranks == 1) return plan;
  const Bytes chunk_bytes = total / ranks;
  // In round r, rank i sends its partial of chunk (i - r) mod n to rank
  // i+1, which accumulates it. After n-1 rounds rank i holds the full sum
  // of chunk (i + 1) mod n.
  for (int r = 0; r < ranks - 1; ++r) {
    std::vector<CollStep> round;
    round.reserve(static_cast<std::size_t>(ranks));
    for (int i = 0; i < ranks; ++i) {
      CollStep s;
      s.src = i;
      s.dst = mod(i + 1, ranks);
      s.chunk = mod(i - r, ranks);
      s.bytes = chunk_bytes;
      round.push_back(s);
    }
    plan.push_back(std::move(round));
  }
  return plan;
}

CollPlan ring_all_reduce_plan(int ranks, Bytes total) {
  CollPlan plan = ring_reduce_scatter_plan(ranks, total);
  CollPlan gather = ring_all_gather_plan(ranks, total);
  // After the reduce-scatter above, rank i owns reduced chunk (i+1) mod n.
  // The all-gather plan assumes rank i owns chunk i; shift chunk labels so
  // the composition is consistent.
  for (auto& round : gather) {
    for (auto& step : round) {
      step.chunk = mod(step.chunk + 1, ranks);
    }
  }
  for (auto& round : gather) plan.push_back(std::move(round));
  return plan;
}

CollPlan all_to_all_plan(int ranks, Bytes bytes_per_pair) {
  assert(ranks >= 1 && bytes_per_pair >= 0);
  CollPlan plan;
  for (int r = 1; r < ranks; ++r) {
    std::vector<CollStep> round;
    round.reserve(static_cast<std::size_t>(ranks));
    for (int i = 0; i < ranks; ++i) {
      CollStep s;
      s.src = i;
      s.dst = mod(i + r, ranks);
      s.chunk = s.dst;
      s.bytes = bytes_per_pair;
      round.push_back(s);
    }
    plan.push_back(std::move(round));
  }
  return plan;
}

Bytes bytes_sent_per_rank(const CollPlan& plan, int rank) {
  Bytes total = 0;
  for (const auto& round : plan) {
    for (const auto& step : round) {
      if (step.src == rank) total += step.bytes;
    }
  }
  return total;
}

}  // namespace ms::collective
