#include "collective/bootstrap.h"

#include <cassert>

namespace ms::collective {

BootstrapEstimate estimate_init_time(const BootstrapConfig& config) {
  const double n = config.world_size;
  assert(config.tp >= 1 && config.pp >= 1);
  assert(config.world_size % (config.tp * config.pp) == 0);

  const double tp_groups = n / config.tp;
  const double pp_groups = n / config.pp;
  const double dp_groups = static_cast<double>(config.tp) * config.pp;
  const double dp_size = n / dp_groups;

  BootstrapEstimate est;
  est.group_count = tp_groups + pp_groups + dp_groups;

  // Join traffic: every member of every group publishes + reads peers once.
  const double join_ops =
      2.0 * (tp_groups * config.tp + pp_groups * config.pp + dp_groups * dp_size);

  if (config.ordered_init) {
    // Members-only synchronization: another O(sum of group sizes).
    est.total_store_ops = join_ops;
  } else {
    // Global barrier after each group: every rank issues ~1 op per barrier.
    est.total_store_ops = est.group_count * n + join_ops;
  }

  const double rate = config.store == StoreKind::kTcpStore
                          ? config.tcp_ops_per_sec
                          : config.redis_ops_per_sec;
  est.init_time = seconds(est.total_store_ops / rate);
  return est;
}

}  // namespace ms::collective
