// Collective algorithm plans: the explicit per-round send/receive schedule
// of ring collectives.
//
// The cost model in comm.h gives closed-form durations; the plans here give
// the actual data movement. They serve two purposes:
//  * correctness property tests — after executing an all-gather plan, every
//    rank must hold every chunk; after a reduce-scatter, rank i must hold
//    the fully-reduced chunk i (tests simulate chunk possession sets);
//  * network validation — the flows of each round can be placed onto the
//    ms::net flow simulator to check the alpha-beta cost model against a
//    max-min fair fabric.
#pragma once

#include <vector>

#include "core/units.h"

namespace ms::collective {

/// One point-to-point transfer within a collective round.
struct CollStep {
  int src = 0;
  int dst = 0;
  int chunk = 0;   // which data chunk moves
  Bytes bytes = 0;
};

/// Rounds execute sequentially; steps within a round run concurrently.
using CollPlan = std::vector<std::vector<CollStep>>;

/// Ring all-gather: `total` bytes of output, divided into n chunks; rank i
/// initially owns chunk i. n-1 rounds; in round r, rank i sends chunk
/// (i - r) mod n to rank (i+1) mod n.
CollPlan ring_all_gather_plan(int ranks, Bytes total);

/// Ring reduce-scatter: `total` bytes of input per rank, n chunks; after
/// n-1 rounds rank i holds the fully reduced chunk (i+1) mod n.
CollPlan ring_reduce_scatter_plan(int ranks, Bytes total);

/// Ring all-reduce = reduce-scatter followed by all-gather (2(n-1) rounds).
CollPlan ring_all_reduce_plan(int ranks, Bytes total);

/// Pairwise all-to-all: n-1 rounds, in round r rank i exchanges with rank
/// i XOR-free pairing (i+r) mod n; bytes_per_pair from each rank to each
/// peer.
CollPlan all_to_all_plan(int ranks, Bytes bytes_per_pair);

/// Total bytes sent by one rank over the whole plan (uniform by symmetry).
Bytes bytes_sent_per_rank(const CollPlan& plan, int rank);

}  // namespace ms::collective
