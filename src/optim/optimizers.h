// Optimizers: SGD, Adam/AdamW and LAMB (You et al., ICLR'20).
//
// LAMB is the §3.1 large-batch enabler: it rescales each parameter block's
// Adam update by the "trust ratio" ||w|| / ||update||, which keeps the
// effective per-layer step size stable as the batch (and thus the learning
// rate) grows — the mechanism behind "LAMB can scale the batch size to 4x
// without accuracy loss".
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "optim/nn.h"

namespace ms::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step(float lr) = 0;
  void zero_grad();

  const std::vector<Param>& params() const { return params_; }

 protected:
  std::vector<Param> params_;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(std::vector<Param> params, float momentum = 0.0f);
  void step(float lr) override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

struct AdamHyper {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  ///< decoupled (AdamW-style) when non-zero
};

class Adam : public Optimizer {
 public:
  explicit Adam(std::vector<Param> params, AdamHyper hyper = {});
  void step(float lr) override;

  /// Optimizer-state checkpointing (§4.4 stores optimizer states alongside
  /// weights): serializes step count + both moment vectors, flat.
  std::vector<float> export_state() const;
  /// Restores a state produced by export_state on an identically-shaped
  /// optimizer. Returns false on size mismatch.
  bool import_state(const std::vector<float>& state);

 protected:
  /// Computes the Adam direction (m_hat / (sqrt(v_hat) + eps) + wd * w)
  /// into `direction`; shared with LAMB.
  void adam_direction(std::size_t i, std::vector<float>& direction);

  AdamHyper hyper_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

class Lamb : public Adam {
 public:
  explicit Lamb(std::vector<Param> params, AdamHyper hyper = {});
  void step(float lr) override;

  /// Trust ratio applied to each parameter block on the last step (for
  /// tests and diagnostics).
  const std::vector<float>& last_trust_ratios() const { return trust_; }

 private:
  std::vector<float> trust_;
};

}  // namespace ms::optim
