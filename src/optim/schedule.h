// Learning-rate schedules and gradient clipping — the remaining pieces of
// a production LLM training loop (the paper's runs use warmup + decay and
// global-norm clipping, standard for Megatron-style pretraining).
#pragma once

#include <vector>

#include "optim/nn.h"

namespace ms::optim {

/// Linear warmup to `base_lr`, then cosine decay to `min_lr` over the
/// remaining steps. Steps beyond `total_steps` hold `min_lr`.
struct LrSchedule {
  float base_lr = 1e-3f;
  float min_lr = 1e-4f;
  int warmup_steps = 100;
  int total_steps = 1000;

  float at(int step) const;
};

/// Clips all gradients to a global L2 norm of at most `max_norm` (in
/// place). Returns the pre-clip global norm.
float clip_grad_norm(std::vector<Param>& params, float max_norm);

/// Dynamic loss scaling for mixed-precision training (Micikevicius et
/// al.'18, cited by the paper's related work): the loss is multiplied by
/// `scale()` before backward so small gradients survive reduced precision;
/// on overflow (inf/NaN gradients) the step is skipped and the scale
/// halves; after `growth_interval` clean steps it doubles back.
class DynamicLossScaler {
 public:
  explicit DynamicLossScaler(float initial_scale = 65536.0f,
                             int growth_interval = 200,
                             float min_scale = 1.0f, float max_scale = 1e7f);

  float scale() const { return scale_; }

  /// True if any gradient is non-finite (the overflow check).
  static bool gradients_overflowed(const std::vector<Param>& params);

  /// Unscales gradients in place (divide by scale). Call before the
  /// optimizer step on a clean iteration.
  void unscale(std::vector<Param>& params) const;

  /// Advances the state machine; returns true if the step should proceed
  /// (no overflow) or false if it must be skipped.
  bool update(bool overflow);

  int steps_skipped() const { return skipped_; }

 private:
  float scale_;
  int growth_interval_;
  float min_scale_, max_scale_;
  int clean_steps_ = 0;
  int skipped_ = 0;
};

}  // namespace ms::optim
