#include "optim/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ms::optim {

Tensor Tensor::zeros(std::vector<int> shape, bool requires_grad) {
  return full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::full(std::vector<int> shape, float fill, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->shape = std::move(shape);
  node->value.assign(static_cast<std::size_t>(node->numel()), fill);
  node->requires_grad = requires_grad;
  return Tensor(std::move(node));
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, float scale,
                     bool requires_grad) {
  Tensor t = zeros(std::move(shape), requires_grad);
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    t.data()[i] = static_cast<float>(rng.normal()) * scale;
  }
  return t;
}

Tensor Tensor::from(std::vector<float> data, std::vector<int> shape,
                    bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->shape = std::move(shape);
  assert(static_cast<std::int64_t>(data.size()) == node->numel());
  node->value = std::move(data);
  node->requires_grad = requires_grad;
  return Tensor(std::move(node));
}

void Tensor::backward() {
  assert(numel() == 1 && "backward() starts from a scalar loss");
  // Topological order over the parent DAG.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::function<void(Node*)> dfs = [&](Node* n) {
    if (!visited.insert(n).second) return;
    for (auto& p : n->parents) dfs(p.get());
    order.push_back(n);
  };
  dfs(node_.get());

  node_->ensure_grad();
  node_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

Tensor make_result(std::vector<float> value, std::vector<int> shape,
                   std::vector<Tensor> parents,
                   std::function<void(Node&)> make_backward) {
  auto node = std::make_shared<Node>();
  node->shape = std::move(shape);
  node->value = std::move(value);
  for (const auto& p : parents) {
    node->requires_grad |= p.requires_grad();
    node->parents.push_back(p.node());
  }
  if (node->requires_grad && make_backward) {
    Node* raw = node.get();
    // The closure captures the result node by raw pointer; the node owns
    // the closure, so the pointer is valid for the closure's lifetime.
    node->backward_fn = [raw, fn = std::move(make_backward)] { fn(*raw); };
    node->ensure_grad();
  }
  return Tensor(std::move(node));
}

namespace {
// Parents that require grad get their buffers materialized up front so the
// backward closures can accumulate unconditionally.
void prep(const Tensor& t) {
  if (t.requires_grad()) t.node()->ensure_grad();
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  assert(a.shape().size() == 2 && b.shape().size() == 2);
  const int m = trans_a ? a.dim(1) : a.dim(0);
  const int k = trans_a ? a.dim(0) : a.dim(1);
  const int k2 = trans_b ? b.dim(1) : b.dim(0);
  const int n = trans_b ? b.dim(0) : b.dim(1);
  assert(k == k2);
  (void)k2;
  prep(a);
  prep(b);

  auto at = [&](const float* p, int r, int c, bool t, int rows, int cols) {
    (void)rows;
    return t ? p[c * cols + r] : p[r * cols + c];
  };
  // Element (r,c) of op(a): if !trans_a it's a[r*k + c] with row length k;
  // if trans_a, a is [k, m] stored row-major, so op(a)(r,c) = a[c*m + r].
  const float* pa = a.data();
  const float* pb = b.data();
  std::vector<float> out(static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int l = 0; l < k; ++l) {
      const float av = trans_a ? pa[l * m + i] : pa[i * k + l];
      if (av == 0.0f) continue;
      const float* brow = trans_b ? nullptr : &pb[l * n];
      float* orow = &out[static_cast<std::size_t>(i) * n];
      if (!trans_b) {
        for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
      } else {
        for (int j = 0; j < n; ++j) orow[j] += av * pb[j * k + l];
      }
    }
  }
  (void)at;

  Tensor ta = a, tb = b;
  return make_result(
      std::move(out), {m, n}, {a, b},
      [ta, tb, m, n, k, trans_a, trans_b](Node& res) mutable {
        const float* g = res.grad.data();
        // dA (as op(a) grad): dOpA = G * op(B)^T  [m,k]
        if (ta.requires_grad()) {
          float* da = ta.grad();
          const float* pb = tb.data();
          for (int i = 0; i < m; ++i) {
            for (int l = 0; l < k; ++l) {
              float acc = 0.0f;
              for (int j = 0; j < n; ++j) {
                const float bv = trans_b ? pb[j * k + l] : pb[l * n + j];
                acc += g[i * n + j] * bv;
              }
              if (trans_a) {
                da[l * m + i] += acc;
              } else {
                da[i * k + l] += acc;
              }
            }
          }
        }
        if (tb.requires_grad()) {
          float* db = tb.grad();
          const float* pa = ta.data();
          for (int l = 0; l < k; ++l) {
            for (int j = 0; j < n; ++j) {
              float acc = 0.0f;
              for (int i = 0; i < m; ++i) {
                const float av = trans_a ? pa[l * m + i] : pa[i * k + l];
                acc += av * g[i * n + j];
              }
              if (trans_b) {
                db[j * k + l] += acc;
              } else {
                db[l * n + j] += acc;
              }
            }
          }
        }
      });
}

Tensor add(const Tensor& a, const Tensor& b) {
  prep(a);
  prep(b);
  const bool broadcast =
      b.shape().size() == 1 && a.shape().size() == 2 && b.dim(0) == a.dim(1);
  assert(broadcast || a.shape() == b.shape());
  std::vector<float> out(a.node()->value);
  if (broadcast) {
    const int m = a.dim(0), n = a.dim(1);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) out[static_cast<std::size_t>(i) * n + j] += b.data()[j];
    }
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += b.data()[i];
  }
  Tensor ta = a, tb = b;
  return make_result(std::move(out), a.shape(), {a, b},
                     [ta, tb, broadcast](Node& res) mutable {
                       const float* g = res.grad.data();
                       const std::size_t total = res.value.size();
                       if (ta.requires_grad()) {
                         float* da = ta.grad();
                         for (std::size_t i = 0; i < total; ++i) da[i] += g[i];
                       }
                       if (tb.requires_grad()) {
                         float* db = tb.grad();
                         if (broadcast) {
                           const int n = ta.dim(1);
                           for (std::size_t i = 0; i < total; ++i) {
                             db[i % static_cast<std::size_t>(n)] += g[i];
                           }
                         } else {
                           for (std::size_t i = 0; i < total; ++i) db[i] += g[i];
                         }
                       }
                     });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  prep(a);
  prep(b);
  std::vector<float> out(a.node()->value);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= b.data()[i];
  Tensor ta = a, tb = b;
  return make_result(std::move(out), a.shape(), {a, b},
                     [ta, tb](Node& res) mutable {
                       const float* g = res.grad.data();
                       const std::size_t total = res.value.size();
                       if (ta.requires_grad()) {
                         float* da = ta.grad();
                         const float* vb = tb.data();
                         for (std::size_t i = 0; i < total; ++i) {
                           da[i] += g[i] * vb[i];
                         }
                       }
                       if (tb.requires_grad()) {
                         float* db = tb.grad();
                         const float* va = ta.data();
                         for (std::size_t i = 0; i < total; ++i) {
                           db[i] += g[i] * va[i];
                         }
                       }
                     });
}

Tensor scale(const Tensor& a, float s) {
  prep(a);
  std::vector<float> out(a.node()->value);
  for (auto& v : out) v *= s;
  Tensor ta = a;
  return make_result(std::move(out), a.shape(), {a}, [ta, s](Node& res) mutable {
    if (!ta.requires_grad()) return;
    float* da = ta.grad();
    const float* g = res.grad.data();
    for (std::size_t i = 0; i < res.value.size(); ++i) da[i] += g[i] * s;
  });
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

Tensor gelu(const Tensor& a) {
  prep(a);
  std::vector<float> out(a.node()->value.size());
  const float* x = a.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float v = x[i];
    out[i] = 0.5f * v * (1.0f + std::tanh(kGeluC * (v + 0.044715f * v * v * v)));
  }
  Tensor ta = a;
  return make_result(std::move(out), a.shape(), {a}, [ta](Node& res) mutable {
    if (!ta.requires_grad()) return;
    float* da = ta.grad();
    const float* g = res.grad.data();
    const float* x = ta.data();
    for (std::size_t i = 0; i < res.value.size(); ++i) {
      const float v = x[i];
      const float u = kGeluC * (v + 0.044715f * v * v * v);
      const float t = std::tanh(u);
      const float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
      const float d = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
      da[i] += g[i] * d;
    }
  });
}

Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  assert(x.shape().size() == 2);
  const int m = x.dim(0), n = x.dim(1);
  assert(gamma.shape() == std::vector<int>{n} &&
         beta.shape() == std::vector<int>{n});
  prep(x);
  prep(gamma);
  prep(beta);

  std::vector<float> out(static_cast<std::size_t>(m) * n);
  std::vector<float> xhat(out.size());
  std::vector<float> inv_std(static_cast<std::size_t>(m));
  const float* px = x.data();
  for (int i = 0; i < m; ++i) {
    const float* row = &px[static_cast<std::size_t>(i) * n];
    float mean = 0.0f;
    for (int j = 0; j < n; ++j) mean += row[j];
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (int j = 0; j < n; ++j) var += (row[j] - mean) * (row[j] - mean);
    var /= static_cast<float>(n);
    const float inv = 1.0f / std::sqrt(var + eps);
    inv_std[static_cast<std::size_t>(i)] = inv;
    for (int j = 0; j < n; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * n + j;
      xhat[idx] = (row[j] - mean) * inv;
      out[idx] = xhat[idx] * gamma.data()[j] + beta.data()[j];
    }
  }

  Tensor tx = x, tg = gamma, tb = beta;
  return make_result(
      std::move(out), x.shape(), {x, gamma, beta},
      [tx, tg, tb, m, n, xhat = std::move(xhat),
       inv_std = std::move(inv_std)](Node& res) mutable {
        const float* g = res.grad.data();
        if (tg.requires_grad()) {
          float* dg = tg.grad();
          float* db = tb.grad();
          for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j) {
              const std::size_t idx = static_cast<std::size_t>(i) * n + j;
              dg[j] += g[idx] * xhat[idx];
              db[j] += g[idx];
            }
          }
        }
        if (tx.requires_grad()) {
          float* dx = tx.grad();
          const float* gw = tg.data();
          for (int i = 0; i < m; ++i) {
            // dxhat = g * gamma; dx = (dxhat - mean(dxhat)
            //          - xhat * mean(dxhat * xhat)) * inv_std
            float mean_dxhat = 0.0f, mean_dxhat_xhat = 0.0f;
            for (int j = 0; j < n; ++j) {
              const std::size_t idx = static_cast<std::size_t>(i) * n + j;
              const float dxh = g[idx] * gw[j];
              mean_dxhat += dxh;
              mean_dxhat_xhat += dxh * xhat[idx];
            }
            mean_dxhat /= static_cast<float>(n);
            mean_dxhat_xhat /= static_cast<float>(n);
            for (int j = 0; j < n; ++j) {
              const std::size_t idx = static_cast<std::size_t>(i) * n + j;
              const float dxh = g[idx] * gw[j];
              dx[idx] += (dxh - mean_dxhat - xhat[idx] * mean_dxhat_xhat) *
                         inv_std[static_cast<std::size_t>(i)];
            }
          }
        }
      });
}

Tensor embedding(const std::vector<int>& ids, const Tensor& table) {
  assert(table.shape().size() == 2);
  const int v = table.dim(0), h = table.dim(1);
  (void)v;
  prep(table);
  std::vector<float> out(ids.size() * static_cast<std::size_t>(h));
  for (std::size_t t = 0; t < ids.size(); ++t) {
    assert(ids[t] >= 0 && ids[t] < v);
    std::copy_n(table.data() + static_cast<std::size_t>(ids[t]) * h, h,
                &out[t * static_cast<std::size_t>(h)]);
  }
  Tensor tt = table;
  return make_result(std::move(out), {static_cast<int>(ids.size()), h}, {table},
                     [tt, ids, h](Node& res) mutable {
                       if (!tt.requires_grad()) return;
                       float* dt = tt.grad();
                       const float* g = res.grad.data();
                       for (std::size_t t = 0; t < ids.size(); ++t) {
                         float* drow =
                             &dt[static_cast<std::size_t>(ids[t]) * h];
                         const float* grow = &g[t * static_cast<std::size_t>(h)];
                         for (int j = 0; j < h; ++j) drow[j] += grow[j];
                       }
                     });
}

Tensor attention(const Tensor& q, const Tensor& k, const Tensor& v, int heads,
                 int window) {
  assert(q.shape().size() == 2);
  assert(q.shape() == k.shape() && k.shape() == v.shape());
  const int T = q.dim(0);
  const int H = q.dim(1);
  assert(H % heads == 0);
  const int d = H / heads;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  prep(q);
  prep(k);
  prep(v);

  // probs[head][i*T + j] stored densely for backward.
  std::vector<float> probs(static_cast<std::size_t>(heads) * T * T, 0.0f);
  std::vector<float> out(static_cast<std::size_t>(T) * H, 0.0f);
  const float* pq = q.data();
  const float* pk = k.data();
  const float* pv = v.data();

  auto attends = [&](int i, int j) {
    if (j > i) return false;                      // causal
    if (window > 0 && i - j >= window) return false;  // sliding window
    return true;
  };

  for (int hh = 0; hh < heads; ++hh) {
    const int off = hh * d;
    float* pr = &probs[static_cast<std::size_t>(hh) * T * T];
    for (int i = 0; i < T; ++i) {
      float maxs = -1e30f;
      for (int j = 0; j <= i; ++j) {
        if (!attends(i, j)) continue;
        float s = 0.0f;
        for (int c = 0; c < d; ++c) {
          s += pq[i * H + off + c] * pk[j * H + off + c];
        }
        s *= inv_sqrt_d;
        pr[i * T + j] = s;
        maxs = std::max(maxs, s);
      }
      float denom = 0.0f;
      for (int j = 0; j <= i; ++j) {
        if (!attends(i, j)) continue;
        pr[i * T + j] = std::exp(pr[i * T + j] - maxs);
        denom += pr[i * T + j];
      }
      for (int j = 0; j <= i; ++j) {
        if (!attends(i, j)) {
          pr[i * T + j] = 0.0f;
          continue;
        }
        pr[i * T + j] /= denom;
        const float p = pr[i * T + j];
        for (int c = 0; c < d; ++c) {
          out[static_cast<std::size_t>(i) * H + off + c] +=
              p * pv[j * H + off + c];
        }
      }
    }
  }

  Tensor tq = q, tk = k, tv = v;
  return make_result(
      std::move(out), q.shape(), {q, k, v},
      [tq, tk, tv, heads, d, T, H, inv_sqrt_d,
       probs = std::move(probs)](Node& res) mutable {
        const float* g = res.grad.data();
        const float* pq = tq.data();
        const float* pk = tk.data();
        const float* pv = tv.data();
        float* dq = tq.requires_grad() ? tq.grad() : nullptr;
        float* dk = tk.requires_grad() ? tk.grad() : nullptr;
        float* dv = tv.requires_grad() ? tv.grad() : nullptr;

        std::vector<float> dp(static_cast<std::size_t>(T), 0.0f);
        for (int hh = 0; hh < heads; ++hh) {
          const int off = hh * d;
          const float* pr = &probs[static_cast<std::size_t>(hh) * T * T];
          for (int i = 0; i < T; ++i) {
            // dP(i, j) = dOut(i) . V(j)
            float row_dot = 0.0f;  // sum_j P(i,j) * dP(i,j)
            for (int j = 0; j <= i; ++j) {
              const float p = pr[i * T + j];
              if (p == 0.0f) {
                dp[static_cast<std::size_t>(j)] = 0.0f;
                continue;
              }
              float acc = 0.0f;
              for (int c = 0; c < d; ++c) {
                acc += g[i * H + off + c] * pv[j * H + off + c];
              }
              dp[static_cast<std::size_t>(j)] = acc;
              row_dot += p * acc;
            }
            for (int j = 0; j <= i; ++j) {
              const float p = pr[i * T + j];
              if (p == 0.0f) continue;
              const float ds = p * (dp[static_cast<std::size_t>(j)] - row_dot) *
                               inv_sqrt_d;
              if (dq != nullptr) {
                for (int c = 0; c < d; ++c) {
                  dq[i * H + off + c] += ds * pk[j * H + off + c];
                }
              }
              if (dk != nullptr) {
                for (int c = 0; c < d; ++c) {
                  dk[j * H + off + c] += ds * pq[i * H + off + c];
                }
              }
              if (dv != nullptr) {
                for (int c = 0; c < d; ++c) {
                  dv[j * H + off + c] += p * g[i * H + off + c];
                }
              }
            }
          }
        }
      });
}

Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets) {
  assert(logits.shape().size() == 2);
  const int T = logits.dim(0), V = logits.dim(1);
  assert(static_cast<int>(targets.size()) == T);
  prep(logits);

  std::vector<float> probs(static_cast<std::size_t>(T) * V);
  const float* pl = logits.data();
  double loss = 0.0;
  for (int i = 0; i < T; ++i) {
    const float* row = &pl[static_cast<std::size_t>(i) * V];
    float maxv = row[0];
    for (int j = 1; j < V; ++j) maxv = std::max(maxv, row[j]);
    float denom = 0.0f;
    for (int j = 0; j < V; ++j) {
      probs[static_cast<std::size_t>(i) * V + j] = std::exp(row[j] - maxv);
      denom += probs[static_cast<std::size_t>(i) * V + j];
    }
    for (int j = 0; j < V; ++j) probs[static_cast<std::size_t>(i) * V + j] /= denom;
    loss -= std::log(
        std::max(probs[static_cast<std::size_t>(i) * V + targets[static_cast<std::size_t>(i)]],
                 1e-12f));
  }
  loss /= T;

  Tensor tl = logits;
  return make_result(
      {static_cast<float>(loss)}, {1}, {logits},
      [tl, targets, T, V, probs = std::move(probs)](Node& res) mutable {
        if (!tl.requires_grad()) return;
        const float go = res.grad[0];
        float* dl = tl.grad();
        for (int i = 0; i < T; ++i) {
          for (int j = 0; j < V; ++j) {
            const std::size_t idx = static_cast<std::size_t>(i) * V + j;
            float d = probs[idx];
            if (j == targets[static_cast<std::size_t>(i)]) d -= 1.0f;
            dl[idx] += go * d / static_cast<float>(T);
          }
        }
      });
}

Tensor sum(const Tensor& a) {
  prep(a);
  double total = 0.0;
  for (float v : a.node()->value) total += v;
  Tensor ta = a;
  return make_result({static_cast<float>(total)}, {1}, {a},
                     [ta](Node& res) mutable {
                       if (!ta.requires_grad()) return;
                       float* da = ta.grad();
                       const float g = res.grad[0];
                       for (std::size_t i = 0; i < ta.node()->value.size(); ++i) {
                         da[i] += g;
                       }
                     });
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  assert(!parts.empty());
  const int m = parts.front().dim(0);
  int total_cols = 0;
  for (const auto& p : parts) {
    assert(p.shape().size() == 2 && p.dim(0) == m);
    total_cols += p.dim(1);
    prep(p);
  }
  std::vector<float> out(static_cast<std::size_t>(m) * total_cols);
  int col = 0;
  for (const auto& p : parts) {
    const int n = p.dim(1);
    for (int i = 0; i < m; ++i) {
      std::copy_n(p.data() + static_cast<std::size_t>(i) * n, n,
                  &out[static_cast<std::size_t>(i) * total_cols + col]);
    }
    col += n;
  }
  std::vector<Tensor> owned = parts;
  return make_result(
      std::move(out), {m, total_cols}, parts,
      [owned, m, total_cols](Node& res) mutable {
        const float* g = res.grad.data();
        int col = 0;
        for (auto& p : owned) {
          const int n = p.dim(1);
          if (p.requires_grad()) {
            float* dp = p.grad();
            for (int i = 0; i < m; ++i) {
              for (int j = 0; j < n; ++j) {
                dp[static_cast<std::size_t>(i) * n + j] +=
                    g[static_cast<std::size_t>(i) * total_cols + col + j];
              }
            }
          }
          col += n;
        }
      });
}

Tensor slice_cols(const Tensor& a, int begin, int count) {
  assert(a.shape().size() == 2);
  const int m = a.dim(0), n = a.dim(1);
  assert(begin >= 0 && count > 0 && begin + count <= n);
  prep(a);
  std::vector<float> out(static_cast<std::size_t>(m) * count);
  for (int i = 0; i < m; ++i) {
    std::copy_n(a.data() + static_cast<std::size_t>(i) * n + begin, count,
                &out[static_cast<std::size_t>(i) * count]);
  }
  Tensor ta = a;
  return make_result(std::move(out), {m, count}, {a},
                     [ta, begin, count, m, n](Node& res) mutable {
                       if (!ta.requires_grad()) return;
                       float* da = ta.grad();
                       const float* g = res.grad.data();
                       for (int i = 0; i < m; ++i) {
                         for (int j = 0; j < count; ++j) {
                           da[static_cast<std::size_t>(i) * n + begin + j] +=
                               g[static_cast<std::size_t>(i) * count + j];
                         }
                       }
                     });
}

Tensor add_n(const std::vector<Tensor>& parts) {
  assert(!parts.empty());
  for (const auto& p : parts) {
    assert(p.shape() == parts.front().shape());
    prep(p);
  }
  std::vector<float> out(parts.front().node()->value);
  for (std::size_t k = 1; k < parts.size(); ++k) {
    const float* src = parts[k].data();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += src[i];
  }
  std::vector<Tensor> owned = parts;
  return make_result(std::move(out), parts.front().shape(), parts,
                     [owned](Node& res) mutable {
                       const float* g = res.grad.data();
                       for (auto& p : owned) {
                         if (!p.requires_grad()) continue;
                         float* dp = p.grad();
                         for (std::size_t i = 0; i < res.value.size(); ++i) {
                           dp[i] += g[i];
                         }
                       }
                     });
}

}  // namespace ms::optim
