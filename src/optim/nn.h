// Transformer building blocks over the autograd substrate.
//
// TinyGPT is the 13B model's laptop-scale stand-in for the §6.2 convergence
// microbenchmarks: same architecture family (pre-LN causal transformer LM),
// with the two MegaScale §3.1 architecture switches implemented for real —
// the parallel transformer block (Eq. 2) and sliding-window attention.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "optim/autograd.h"

namespace ms::optim {

/// Named parameter for optimizers and checkpoints.
struct Param {
  std::string name;
  Tensor tensor;
};

class Linear {
 public:
  Linear() = default;
  Linear(int in, int out, Rng& rng, const std::string& name);
  Tensor forward(const Tensor& x) const;  // x: [T, in] -> [T, out]
  void collect(std::vector<Param>& out) const;

 private:
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
  std::string name_;
};

class LayerNorm {
 public:
  LayerNorm() = default;
  LayerNorm(int dim, const std::string& name);
  Tensor forward(const Tensor& x) const;
  void collect(std::vector<Param>& out) const;

 private:
  Tensor gamma_, beta_;
  std::string name_;
};

struct TinyGptConfig {
  int vocab = 256;
  int seq_len = 64;
  int hidden = 64;
  int heads = 4;
  int layers = 2;
  int ffn_hidden = 256;
  bool parallel_block = false;  ///< §3.1 PTB: y = x + MLP(LN(x)) + Attn(LN(x))
  int window = 0;               ///< 0: full causal; >0: sliding window (§3.1)
};

class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(const TinyGptConfig& cfg, Rng& rng, const std::string& name);
  Tensor forward(const Tensor& x) const;
  void collect(std::vector<Param>& out) const;

 private:
  TinyGptConfig cfg_;
  LayerNorm ln1_, ln2_;  // ln2 unused in the parallel block
  Linear qkv_, proj_;
  Linear fc1_, fc2_;
};

class TinyGpt {
 public:
  TinyGpt(const TinyGptConfig& cfg, Rng& rng);

  const TinyGptConfig& config() const { return cfg_; }

  /// Logits [T, vocab] for one sequence of token ids.
  Tensor forward(const std::vector<int>& tokens) const;

  /// Mean next-token cross entropy over the sequence.
  Tensor loss(const std::vector<int>& tokens) const;

  /// All trainable parameters (stable order).
  std::vector<Param> parameters() const;
  std::int64_t parameter_count() const;

 private:
  TinyGptConfig cfg_;
  Tensor embedding_;  // [vocab, hidden]
  Tensor pos_embedding_;  // [seq_len, hidden]
  std::vector<TransformerBlock> blocks_;
  LayerNorm final_ln_;
  Linear head_;
};

}  // namespace ms::optim
