#include "optim/optimizers.h"

#include <algorithm>
#include <cmath>

namespace ms::optim {

void Optimizer::zero_grad() {
  for (auto& p : params_) p.tensor.zero_grad();
}

Sgd::Sgd(std::vector<Param> params, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(static_cast<std::size_t>(params_[i].tensor.numel()),
                        0.0f);
  }
}

void Sgd::step(float lr) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i].tensor;
    float* w = p.data();
    const float* g = p.grad();
    float* vel = velocity_[i].data();
    const std::int64_t n = p.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      vel[j] = momentum_ * vel[j] + g[j];
      w[j] -= lr * vel[j];
    }
  }
}

Adam::Adam(std::vector<Param> params, AdamHyper hyper)
    : Optimizer(std::move(params)), hyper_(hyper) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto n = static_cast<std::size_t>(params_[i].tensor.numel());
    m_[i].assign(n, 0.0f);
    v_[i].assign(n, 0.0f);
  }
}

void Adam::adam_direction(std::size_t i, std::vector<float>& direction) {
  auto& p = params_[i].tensor;
  const float* g = p.grad();
  const float* w = p.data();
  const std::int64_t n = p.numel();
  direction.resize(static_cast<std::size_t>(n));

  const float bc1 = 1.0f - std::pow(hyper_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(hyper_.beta2, static_cast<float>(t_));
  float* m = m_[i].data();
  float* v = v_[i].data();
  for (std::int64_t j = 0; j < n; ++j) {
    m[j] = hyper_.beta1 * m[j] + (1.0f - hyper_.beta1) * g[j];
    v[j] = hyper_.beta2 * v[j] + (1.0f - hyper_.beta2) * g[j] * g[j];
    const float m_hat = m[j] / bc1;
    const float v_hat = v[j] / bc2;
    direction[static_cast<std::size_t>(j)] =
        m_hat / (std::sqrt(v_hat) + hyper_.eps) + hyper_.weight_decay * w[j];
  }
}

void Adam::step(float lr) {
  ++t_;
  std::vector<float> direction;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    adam_direction(i, direction);
    float* w = params_[i].tensor.data();
    for (std::size_t j = 0; j < direction.size(); ++j) {
      w[j] -= lr * direction[j];
    }
  }
}

std::vector<float> Adam::export_state() const {
  std::vector<float> state;
  state.push_back(static_cast<float>(t_));
  for (const auto& m : m_) state.insert(state.end(), m.begin(), m.end());
  for (const auto& v : v_) state.insert(state.end(), v.begin(), v.end());
  return state;
}

bool Adam::import_state(const std::vector<float>& state) {
  std::size_t expected = 1;
  for (const auto& m : m_) expected += 2 * m.size();
  if (state.size() != expected) return false;
  std::size_t offset = 0;
  t_ = static_cast<std::int64_t>(state[offset++]);
  for (auto& m : m_) {
    std::copy_n(state.data() + offset, m.size(), m.data());
    offset += m.size();
  }
  for (auto& v : v_) {
    std::copy_n(state.data() + offset, v.size(), v.data());
    offset += v.size();
  }
  return true;
}

Lamb::Lamb(std::vector<Param> params, AdamHyper hyper)
    : Adam(std::move(params), hyper) {}

void Lamb::step(float lr) {
  ++t_;
  trust_.assign(params_.size(), 1.0f);
  std::vector<float> direction;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    adam_direction(i, direction);
    float* w = params_[i].tensor.data();
    double w_norm = 0.0, d_norm = 0.0;
    for (std::size_t j = 0; j < direction.size(); ++j) {
      w_norm += static_cast<double>(w[j]) * w[j];
      d_norm += static_cast<double>(direction[j]) * direction[j];
    }
    w_norm = std::sqrt(w_norm);
    d_norm = std::sqrt(d_norm);
    // Trust ratio phi(||w||) / ||update||, with the standard guard that
    // zero norms fall back to ratio 1.
    float trust = 1.0f;
    if (w_norm > 0.0 && d_norm > 0.0) {
      trust = static_cast<float>(w_norm / d_norm);
    }
    trust_[i] = trust;
    for (std::size_t j = 0; j < direction.size(); ++j) {
      w[j] -= lr * trust * direction[j];
    }
  }
}

}  // namespace ms::optim
