#include "optim/schedule.h"

#include <cassert>
#include <cmath>

namespace ms::optim {

float LrSchedule::at(int step) const {
  assert(step >= 0);
  if (warmup_steps > 0 && step < warmup_steps) {
    return base_lr * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps);
  }
  if (step >= total_steps) return min_lr;
  const float progress =
      static_cast<float>(step - warmup_steps) /
      static_cast<float>(std::max(1, total_steps - warmup_steps));
  const float cosine = 0.5f * (1.0f + std::cos(3.14159265358979f * progress));
  return min_lr + (base_lr - min_lr) * cosine;
}

float clip_grad_norm(std::vector<Param>& params, float max_norm) {
  assert(max_norm > 0);
  double total_sq = 0.0;
  for (auto& p : params) {
    const float* g = p.tensor.grad();
    const std::int64_t n = p.tensor.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      total_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params) {
      float* g = p.tensor.grad();
      const std::int64_t n = p.tensor.numel();
      for (std::int64_t i = 0; i < n; ++i) g[i] *= scale;
    }
  }
  return norm;
}

DynamicLossScaler::DynamicLossScaler(float initial_scale, int growth_interval,
                                     float min_scale, float max_scale)
    : scale_(initial_scale),
      growth_interval_(growth_interval),
      min_scale_(min_scale),
      max_scale_(max_scale) {
  assert(initial_scale > 0 && growth_interval > 0);
}

bool DynamicLossScaler::gradients_overflowed(const std::vector<Param>& params) {
  for (const auto& p : params) {
    auto& tensor = const_cast<Tensor&>(p.tensor);
    const float* g = tensor.grad();
    const std::int64_t n = tensor.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      if (!std::isfinite(g[i])) return true;
    }
  }
  return false;
}

void DynamicLossScaler::unscale(std::vector<Param>& params) const {
  const float inv = 1.0f / scale_;
  for (auto& p : params) {
    float* g = p.tensor.grad();
    const std::int64_t n = p.tensor.numel();
    for (std::int64_t i = 0; i < n; ++i) g[i] *= inv;
  }
}

bool DynamicLossScaler::update(bool overflow) {
  if (overflow) {
    scale_ = std::max(min_scale_, scale_ * 0.5f);
    clean_steps_ = 0;
    ++skipped_;
    return false;
  }
  if (++clean_steps_ >= growth_interval_) {
    scale_ = std::min(max_scale_, scale_ * 2.0f);
    clean_steps_ = 0;
  }
  return true;
}

}  // namespace ms::optim
