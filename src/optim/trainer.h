// Training harness for the convergence microbenchmarks (§6.2, Figure 10)
// and the scaling-law loss process behind the production run (Figure 11).
#pragma once

#include <memory>

#include "core/rng.h"
#include "core/stats.h"
#include "core/units.h"
#include "optim/nn.h"
#include "optim/optimizers.h"

namespace ms::optim {

/// Synthetic language: an order-1 Markov chain over the vocabulary where
/// every token has `branching` likely successors. A transformer LM can
/// drive its loss down to the chain's conditional entropy; the gap to that
/// floor measures convergence quality, which is what Figure 10 compares
/// across architecture/optimizer variants.
class MarkovCorpus {
 public:
  MarkovCorpus(int vocab, int branching, std::uint64_t seed);

  int vocab() const { return vocab_; }

  /// Samples a fresh sequence (first token uniform).
  std::vector<int> sample_sequence(int length, Rng& rng) const;

  /// Conditional entropy H(x_t | x_{t-1}) in nats — the achievable loss
  /// floor for a perfect model.
  double entropy_per_token() const;

 private:
  int vocab_;
  int branching_;
  // successors_[v] = candidate next tokens; probs_ = their probabilities.
  std::vector<std::vector<int>> successors_;
  std::vector<std::vector<double>> probs_;
};

struct TrainConfig {
  int steps = 200;
  int batch_size = 8;
  float lr = 1e-3f;
  /// Record a loss point every `record_every` steps.
  int record_every = 5;
};

struct TrainRecord {
  /// x = tokens consumed, y = batch training loss (nats/token).
  Series loss_vs_tokens;
  double final_loss = 0;
  double tokens_consumed = 0;
};

/// Trains the model in place. Gradients accumulate over `batch_size`
/// sequences per step (each scaled by 1/batch), then the optimizer steps.
TrainRecord train_lm(TinyGpt& model, Optimizer& optimizer,
                     const MarkovCorpus& corpus, const TrainConfig& cfg,
                     Rng& rng);

/// Held-out evaluation: mean next-token loss over freshly sampled
/// sequences (no gradient updates).
double evaluate_lm(const TinyGpt& model, const MarkovCorpus& corpus,
                   int sequences, Rng& rng);

/// Autoregressive sampling: extends `prompt` by `new_tokens` tokens.
/// temperature <= 0 selects greedily (argmax); otherwise softmax sampling
/// with the given temperature. The context is truncated to the model's
/// sequence length.
std::vector<int> generate(const TinyGpt& model, std::vector<int> prompt,
                          int new_tokens, Rng& rng, float temperature = 1.0f);

/// Copy task: each sequence is a random prefix followed by its exact
/// repetition. Predicting the second half requires attending `half_len`
/// positions back — unlike the order-1 Markov corpus, this stresses the
/// attention mechanism's receptive field, which is how we test §3.1's
/// claim that STACKED sliding-window layers retain long-range information
/// (reach ~ layers x window) while a too-small window genuinely fails.
class CopyCorpus {
 public:
  CopyCorpus(int vocab, int half_len) : vocab_(vocab), half_len_(half_len) {}

  int vocab() const { return vocab_; }
  int sequence_length() const { return 2 * half_len_; }

  /// [x_1..x_h, x_1..x_h] with x uniform.
  std::vector<int> sample_sequence(Rng& rng) const;

  /// Mean loss over the SECOND half only (the copy positions) — the metric
  /// that separates models that can reach back from models that cannot.
  double copy_loss(const TinyGpt& model, int sequences, Rng& rng) const;

 private:
  int vocab_;
  int half_len_;
};

/// Trains on the copy task (gradient accumulation as in train_lm).
double train_copy_task(TinyGpt& model, Optimizer& optimizer,
                       const CopyCorpus& corpus, int steps, int batch_size,
                       float lr, Rng& rng);

// ------------------------------------------------------- scaling-law loss

/// Chinchilla-style loss process for multi-week production runs (Fig. 11):
/// L(tokens) = floor + amplitude * (tokens + offset)^(-exponent), plus
/// bounded observation noise. Deterministic per seed.
class ScalingLawLoss {
 public:
  ScalingLawLoss(double floor = 1.7, double amplitude = 12.0,
                 double exponent = 0.12, double offset_tokens = giga(1.0),
                 std::uint64_t seed = 1);

  double loss_at(double tokens);

 private:
  double floor_, amplitude_, exponent_, offset_;
  Rng rng_;
};

}  // namespace ms::optim
