#include "optim/trainer.h"

#include <cassert>
#include <cmath>

namespace ms::optim {

MarkovCorpus::MarkovCorpus(int vocab, int branching, std::uint64_t seed)
    : vocab_(vocab), branching_(branching) {
  assert(vocab >= 2 && branching >= 1 && branching <= vocab);
  Rng rng(seed);
  successors_.resize(static_cast<std::size_t>(vocab));
  probs_.resize(static_cast<std::size_t>(vocab));
  for (int v = 0; v < vocab; ++v) {
    auto idx = rng.sample_without_replacement(
        static_cast<std::size_t>(vocab), static_cast<std::size_t>(branching));
    double total = 0.0;
    std::vector<double> weights;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      // Skewed weights so the chain has usable structure.
      const double w = 1.0 / static_cast<double>(i + 1);
      weights.push_back(w);
      total += w;
    }
    for (auto& w : weights) w /= total;
    for (auto i : idx) successors_[static_cast<std::size_t>(v)].push_back(static_cast<int>(i));
    probs_[static_cast<std::size_t>(v)] = std::move(weights);
  }
}

std::vector<int> MarkovCorpus::sample_sequence(int length, Rng& rng) const {
  assert(length >= 1);
  std::vector<int> seq(static_cast<std::size_t>(length));
  seq[0] = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(vocab_)));
  for (int t = 1; t < length; ++t) {
    const auto& succ = successors_[static_cast<std::size_t>(seq[static_cast<std::size_t>(t - 1)])];
    const auto& p = probs_[static_cast<std::size_t>(seq[static_cast<std::size_t>(t - 1)])];
    double u = rng.uniform();
    int chosen = succ.back();
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (u < p[i]) {
        chosen = succ[i];
        break;
      }
      u -= p[i];
    }
    seq[static_cast<std::size_t>(t)] = chosen;
  }
  return seq;
}

double MarkovCorpus::entropy_per_token() const {
  // Stationary distribution approximated as uniform (transition targets are
  // uniformly sampled), so H = mean over states of the row entropy.
  double h = 0.0;
  for (const auto& row : probs_) {
    for (double p : row) {
      if (p > 0) h -= p * std::log(p);
    }
  }
  return h / static_cast<double>(probs_.size());
}

TrainRecord train_lm(TinyGpt& model, Optimizer& optimizer,
                     const MarkovCorpus& corpus, const TrainConfig& cfg,
                     Rng& rng) {
  TrainRecord record;
  record.loss_vs_tokens.name = "loss";
  const int seq = model.config().seq_len;
  double tokens = 0.0;

  for (int step = 0; step < cfg.steps; ++step) {
    optimizer.zero_grad();
    double batch_loss = 0.0;
    for (int b = 0; b < cfg.batch_size; ++b) {
      auto tokens_seq = corpus.sample_sequence(seq + 1, rng);
      Tensor loss = scale(model.loss(tokens_seq),
                          1.0f / static_cast<float>(cfg.batch_size));
      loss.backward();
      batch_loss += static_cast<double>(loss.item()) * cfg.batch_size;
      tokens += seq;
    }
    batch_loss /= cfg.batch_size;
    optimizer.step(cfg.lr);
    if (step % cfg.record_every == 0 || step == cfg.steps - 1) {
      record.loss_vs_tokens.add(tokens, batch_loss);
    }
    record.final_loss = batch_loss;
  }
  record.tokens_consumed = tokens;
  return record;
}

std::vector<int> CopyCorpus::sample_sequence(Rng& rng) const {
  std::vector<int> seq(static_cast<std::size_t>(2 * half_len_));
  for (int i = 0; i < half_len_; ++i) {
    seq[static_cast<std::size_t>(i)] =
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(vocab_)));
    seq[static_cast<std::size_t>(half_len_ + i)] = seq[static_cast<std::size_t>(i)];
  }
  return seq;
}

double CopyCorpus::copy_loss(const TinyGpt& model, int sequences,
                             Rng& rng) const {
  assert(sequences >= 1);
  double total = 0.0;
  int counted = 0;
  for (int s = 0; s < sequences; ++s) {
    const auto seq = sample_sequence(rng);
    std::vector<int> inputs(seq.begin(), seq.end() - 1);
    Tensor logits = model.forward(inputs);
    const int vocab = model.config().vocab;
    // Positions half_len-1 .. 2*half_len-2 of the input predict the copy.
    for (int t = half_len_; t < 2 * half_len_ - 1; ++t) {
      const float* row =
          logits.data() + static_cast<std::size_t>(t) * vocab;
      float maxv = row[0];
      for (int v = 1; v < vocab; ++v) maxv = std::max(maxv, row[v]);
      double denom = 0.0;
      for (int v = 0; v < vocab; ++v) {
        denom += std::exp(static_cast<double>(row[v] - maxv));
      }
      const int target = seq[static_cast<std::size_t>(t + 1)];
      const double logp =
          static_cast<double>(row[target] - maxv) - std::log(denom);
      total -= logp;
      ++counted;
    }
  }
  return total / counted;
}

double train_copy_task(TinyGpt& model, Optimizer& optimizer,
                       const CopyCorpus& corpus, int steps, int batch_size,
                       float lr, Rng& rng) {
  double last = 0.0;
  for (int step = 0; step < steps; ++step) {
    optimizer.zero_grad();
    double batch_loss = 0.0;
    for (int b = 0; b < batch_size; ++b) {
      Tensor loss = scale(model.loss(corpus.sample_sequence(rng)),
                          1.0f / static_cast<float>(batch_size));
      loss.backward();
      batch_loss += static_cast<double>(loss.item()) * batch_size;
    }
    optimizer.step(lr);
    last = batch_loss / batch_size;
  }
  return last;
}

double evaluate_lm(const TinyGpt& model, const MarkovCorpus& corpus,
                   int sequences, Rng& rng) {
  assert(sequences >= 1);
  double total = 0.0;
  const int seq = model.config().seq_len;
  for (int i = 0; i < sequences; ++i) {
    total += model.loss(corpus.sample_sequence(seq + 1, rng)).item();
  }
  return total / sequences;
}

std::vector<int> generate(const TinyGpt& model, std::vector<int> prompt,
                          int new_tokens, Rng& rng, float temperature) {
  assert(!prompt.empty());
  const int vocab = model.config().vocab;
  const int max_context = model.config().seq_len;
  for (int t = 0; t < new_tokens; ++t) {
    std::vector<int> context = prompt;
    if (static_cast<int>(context.size()) > max_context) {
      context.assign(prompt.end() - max_context, prompt.end());
    }
    Tensor logits = model.forward(context);
    const int last = static_cast<int>(context.size()) - 1;
    const float* row = logits.data() + static_cast<std::size_t>(last) * vocab;

    int next = 0;
    if (temperature <= 0.0f) {
      for (int v = 1; v < vocab; ++v) {
        if (row[v] > row[next]) next = v;
      }
    } else {
      // Softmax with temperature, sampled.
      float maxv = row[0];
      for (int v = 1; v < vocab; ++v) maxv = std::max(maxv, row[v]);
      std::vector<double> probs(static_cast<std::size_t>(vocab));
      double denom = 0.0;
      for (int v = 0; v < vocab; ++v) {
        probs[static_cast<std::size_t>(v)] =
            std::exp(static_cast<double>(row[v] - maxv) / temperature);
        denom += probs[static_cast<std::size_t>(v)];
      }
      double u = rng.uniform() * denom;
      next = vocab - 1;
      for (int v = 0; v < vocab; ++v) {
        if (u < probs[static_cast<std::size_t>(v)]) {
          next = v;
          break;
        }
        u -= probs[static_cast<std::size_t>(v)];
      }
    }
    prompt.push_back(next);
  }
  return prompt;
}

ScalingLawLoss::ScalingLawLoss(double floor, double amplitude, double exponent,
                               double offset_tokens, std::uint64_t seed)
    : floor_(floor),
      amplitude_(amplitude),
      exponent_(exponent),
      offset_(offset_tokens),
      rng_(seed) {}

double ScalingLawLoss::loss_at(double tokens) {
  const double mean =
      floor_ + amplitude_ * std::pow(tokens + offset_, -exponent_);
  return mean * (1.0 + 0.004 * rng_.normal());
}

}  // namespace ms::optim
