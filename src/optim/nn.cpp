#include "optim/nn.h"

#include <cassert>
#include <cmath>

namespace ms::optim {

Linear::Linear(int in, int out, Rng& rng, const std::string& name)
    : weight_(Tensor::randn({in, out}, rng,
                            1.0f / std::sqrt(static_cast<float>(in)), true)),
      bias_(Tensor::zeros({out}, true)),
      name_(name) {}

Tensor Linear::forward(const Tensor& x) const {
  return add(matmul(x, weight_), bias_);
}

void Linear::collect(std::vector<Param>& out) const {
  out.push_back({name_ + ".weight", weight_});
  out.push_back({name_ + ".bias", bias_});
}

LayerNorm::LayerNorm(int dim, const std::string& name)
    : gamma_(Tensor::full({dim}, 1.0f, true)),
      beta_(Tensor::zeros({dim}, true)),
      name_(name) {}

Tensor LayerNorm::forward(const Tensor& x) const {
  return layernorm(x, gamma_, beta_);
}

void LayerNorm::collect(std::vector<Param>& out) const {
  out.push_back({name_ + ".gamma", gamma_});
  out.push_back({name_ + ".beta", beta_});
}

TransformerBlock::TransformerBlock(const TinyGptConfig& cfg, Rng& rng,
                                   const std::string& name)
    : cfg_(cfg),
      ln1_(cfg.hidden, name + ".ln1"),
      ln2_(cfg.hidden, name + ".ln2"),
      qkv_(cfg.hidden, 3 * cfg.hidden, rng, name + ".qkv"),
      proj_(cfg.hidden, cfg.hidden, rng, name + ".proj"),
      fc1_(cfg.hidden, cfg.ffn_hidden, rng, name + ".fc1"),
      fc2_(cfg.ffn_hidden, cfg.hidden, rng, name + ".fc2") {}

Tensor TransformerBlock::forward(const Tensor& x) const {
  const int T = x.dim(0);
  const int H = cfg_.hidden;

  auto attention_branch = [&](const Tensor& input) {
    Tensor qkv = qkv_.forward(input);  // [T, 3H]
    // Split into Q, K, V views (materialized copies for simplicity).
    auto split = [&](int which) {
      std::vector<float> part(static_cast<std::size_t>(T) * H);
      const float* src = qkv.data();
      for (int i = 0; i < T; ++i) {
        for (int j = 0; j < H; ++j) {
          part[static_cast<std::size_t>(i) * H + j] =
              src[static_cast<std::size_t>(i) * 3 * H + which * H + j];
        }
      }
      Tensor tqkv = qkv;
      return make_result(
          std::move(part), {T, H}, {qkv}, [tqkv, which, T, H](Node& res) mutable {
            if (!tqkv.requires_grad()) return;
            float* dq = tqkv.grad();
            const float* g = res.grad.data();
            for (int i = 0; i < T; ++i) {
              for (int j = 0; j < H; ++j) {
                dq[static_cast<std::size_t>(i) * 3 * H + which * H + j] +=
                    g[static_cast<std::size_t>(i) * H + j];
              }
            }
          });
    };
    Tensor q = split(0), k = split(1), v = split(2);
    Tensor attn_out = attention(q, k, v, cfg_.heads, cfg_.window);
    return proj_.forward(attn_out);
  };
  auto mlp_branch = [&](const Tensor& input) {
    return fc2_.forward(gelu(fc1_.forward(input)));
  };

  if (cfg_.parallel_block) {
    // §3.1 Eq. 2: y = x + MLP(LN(x)) + Attention(LN(x)).
    Tensor normed = ln1_.forward(x);
    return add(x, add(mlp_branch(normed), attention_branch(normed)));
  }
  // §3.1 Eq. 1: y = x' + MLP(LN(x')), x' = x + Attention(LN(x)).
  Tensor x1 = add(x, attention_branch(ln1_.forward(x)));
  return add(x1, mlp_branch(ln2_.forward(x1)));
}

void TransformerBlock::collect(std::vector<Param>& out) const {
  ln1_.collect(out);
  if (!cfg_.parallel_block) ln2_.collect(out);
  qkv_.collect(out);
  proj_.collect(out);
  fc1_.collect(out);
  fc2_.collect(out);
}

TinyGpt::TinyGpt(const TinyGptConfig& cfg, Rng& rng)
    : cfg_(cfg),
      embedding_(Tensor::randn({cfg.vocab, cfg.hidden}, rng, 0.02f, true)),
      pos_embedding_(Tensor::randn({cfg.seq_len, cfg.hidden}, rng, 0.02f, true)),
      final_ln_(cfg.hidden, "final_ln"),
      head_(cfg.hidden, cfg.vocab, rng, "head") {
  for (int l = 0; l < cfg.layers; ++l) {
    blocks_.emplace_back(cfg, rng, "block" + std::to_string(l));
  }
}

Tensor TinyGpt::forward(const std::vector<int>& tokens) const {
  assert(static_cast<int>(tokens.size()) <= cfg_.seq_len);
  std::vector<int> positions(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    positions[i] = static_cast<int>(i);
  }
  Tensor x = add(embedding(tokens, embedding_),
                 embedding(positions, pos_embedding_));
  for (const auto& block : blocks_) x = block.forward(x);
  return head_.forward(final_ln_.forward(x));
}

Tensor TinyGpt::loss(const std::vector<int>& tokens) const {
  assert(tokens.size() >= 2);
  std::vector<int> inputs(tokens.begin(), tokens.end() - 1);
  std::vector<int> targets(tokens.begin() + 1, tokens.end());
  return cross_entropy(forward(inputs), targets);
}

std::vector<Param> TinyGpt::parameters() const {
  std::vector<Param> params;
  params.push_back({"embedding", embedding_});
  params.push_back({"pos_embedding", pos_embedding_});
  for (const auto& block : blocks_) block.collect(params);
  final_ln_.collect(params);
  head_.collect(params);
  return params;
}

std::int64_t TinyGpt::parameter_count() const {
  std::int64_t total = 0;
  for (const auto& p : parameters()) total += p.tensor.numel();
  return total;
}

}  // namespace ms::optim
