// Minimal reverse-mode automatic differentiation.
//
// This is a *real* numeric substrate, not a simulation: the convergence
// microbenchmarks of MegaScale §6.2 (Figure 10) are reproduced by actually
// training small transformer language models with it. Tensors are
// value-semantic handles to shared nodes; operations record a backward
// closure on a tape implied by the parent graph; Tensor::backward performs
// a topological sweep. Gradient correctness of every operation is verified
// against finite differences in optim_test.cpp.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/rng.h"

namespace ms::optim {

struct Node {
  std::vector<float> value;
  std::vector<float> grad;   // allocated lazily when requires_grad
  std::vector<int> shape;
  bool requires_grad = false;
  std::function<void()> backward_fn;  // empty for leaves
  std::vector<std::shared_ptr<Node>> parents;

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (int d : shape) n *= d;
    return n;
  }
  void ensure_grad() {
    if (grad.empty()) grad.assign(value.size(), 0.0f);
  }
};

class Tensor {
 public:
  Tensor() = default;

  static Tensor zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor full(std::vector<int> shape, float fill,
                     bool requires_grad = false);
  /// Gaussian init scaled by `scale` (e.g. 0.02 for transformer weights).
  static Tensor randn(std::vector<int> shape, Rng& rng, float scale,
                      bool requires_grad = false);
  static Tensor from(std::vector<float> data, std::vector<int> shape,
                     bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const std::vector<int>& shape() const { return node_->shape; }
  std::int64_t numel() const { return node_->numel(); }
  int dim(int i) const { return node_->shape[static_cast<std::size_t>(i)]; }

  float* data() { return node_->value.data(); }
  const float* data() const { return node_->value.data(); }
  float* grad() {
    node_->ensure_grad();
    return node_->grad.data();
  }
  bool requires_grad() const { return node_->requires_grad; }
  void zero_grad() {
    if (!node_->grad.empty()) node_->grad.assign(node_->grad.size(), 0.0f);
  }

  /// Scalar value of a one-element tensor.
  float item() const {
    assert(numel() == 1);
    return node_->value[0];
  }

  /// Runs reverse-mode autodiff from this scalar.
  void backward();

  std::shared_ptr<Node> node() const { return node_; }
  explicit Tensor(std::shared_ptr<Node> node) : node_(std::move(node)) {}

 private:
  std::shared_ptr<Node> node_;
};

/// Creates a non-leaf result node; `parents` drive the topo sort.
Tensor make_result(std::vector<float> value, std::vector<int> shape,
                   std::vector<Tensor> parents,
                   std::function<void(Node&)> make_backward);

// ----------------------------------------------------------------- ops

/// Matrix product with optional transposes: op(a) [m,k] x op(b) [k,n].
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Elementwise sum; `b` may also be a row vector [n] broadcast over [m,n].
Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise product (shapes must match).
Tensor mul(const Tensor& a, const Tensor& b);

/// Scalar multiple.
Tensor scale(const Tensor& a, float s);

/// tanh-approximation GeLU.
Tensor gelu(const Tensor& a);

/// Row-wise layer normalization of [m,n] with learnable gamma/beta [n].
Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/// Rows of `table` [V,H] selected by token ids; backward scatter-adds.
Tensor embedding(const std::vector<int>& ids, const Tensor& table);

/// Fused multi-head causal self-attention. q,k,v: [T, H]; H % heads == 0.
/// window <= 0 means full causal attention; otherwise position t attends
/// positions [t-window+1, t] (sliding window attention, §3.1).
Tensor attention(const Tensor& q, const Tensor& k, const Tensor& v, int heads,
                 int window = 0);

/// Mean token-level cross entropy of logits [T,V] against targets [T].
Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets);

/// Sum of all elements (scalar).
Tensor sum(const Tensor& a);

/// Concatenates 2-D tensors along columns: [m, n1], [m, n2], ... -> [m, Σn].
/// The building block of column-parallel (Megatron-style) layers.
Tensor concat_cols(const std::vector<Tensor>& parts);

/// Extracts columns [begin, begin+count) of a 2-D tensor.
Tensor slice_cols(const Tensor& a, int begin, int count);

/// Elementwise sum of k same-shaped tensors (the "all-reduce" of a
/// row-parallel layer's partial outputs).
Tensor add_n(const std::vector<Tensor>& parts);

}  // namespace ms::optim
