// Reproduces §3.6: network performance tuning.
//   (a) ECMP hashing conflicts: port-split (2x uplink headroom) and
//       same-ToR placement of data-intensive peers;
//   (b) congestion control: DCQCN vs Swift vs MegaScale's hybrid under
//       incast (throughput, queue depth, PFC pauses);
//   (c) retransmit timeout tuning + adap_retrans under link flapping.
#include <cstdio>

#include "bench/common.h"
#include "core/table.h"
#include "net/ccsim.h"
#include "net/ccsim_multi.h"
#include "net/ecmp.h"
#include "net/flap.h"
#include "net/topology.h"

using namespace ms;
using namespace ms::net;

namespace {

// Root seed for every stochastic stream in this bench; per-component
// streams are derived (core derive_seed), never seeded ad hoc.
constexpr std::uint64_t kBenchSeed = 0x36;

ClosParams fabric(bool split) {
  ClosParams p;
  p.hosts = 512;
  p.nics_per_host = 8;
  p.hosts_per_tor = 64;
  p.pods = 2;
  p.aggs_per_pod = 8;
  p.spines_per_plane = 8;
  p.split_downlink_ports = split;
  return p;
}

void ecmp_section(ms::bench::BenchReport& br) {
  std::printf("--- (a) ECMP hashing conflicts ---\n");
  Table t({"fabric", "workload", "mean tput", "min tput", "conflicted flows",
           "mean hops"});
  for (bool split : {false, true}) {
    ClosTopology topo(fabric(split));
    double mean = 0, minimum = 0, conflicts = 0, hops = 0;
    constexpr int kTrials = 10;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(derive_seed(kBenchSeed, "sec36.ecmp.permutation",
                          static_cast<std::uint64_t>(trial)));
      auto report = analyze_ecmp(topo, permutation_traffic(topo, rng));
      mean += report.mean_throughput_frac;
      minimum += report.min_throughput_frac;
      conflicts += report.conflict_fraction;
      hops += report.mean_hops;
    }
    br.metric(std::string("ecmp_permutation_tput_") +
                  (split ? "split" : "default"),
              mean / kTrials, 0.03);
    t.add_row({split ? "port-split (2:1 up:down)" : "default (1:1)",
               "permutation", Table::fmt_pct(mean / kTrials),
               Table::fmt_pct(minimum / kTrials),
               Table::fmt_pct(conflicts / kTrials),
               Table::fmt(hops / kTrials, 1)});
  }
  for (bool packed : {false, true}) {
    ClosTopology topo(fabric(true));
    double mean = 0, conflicts = 0, hops = 0;
    constexpr int kTrials = 10;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(derive_seed(kBenchSeed, "sec36.ecmp.ring",
                          static_cast<std::uint64_t>(trial)));
      auto report =
          analyze_ecmp(topo, ring_traffic(topo, 32, packed, rng));
      mean += report.mean_throughput_frac;
      conflicts += report.conflict_fraction;
      hops += report.mean_hops;
    }
    br.metric(std::string("ecmp_ring_tput_") + (packed ? "packed" : "spread"),
              mean / kTrials, 0.03);
    t.add_row({packed ? "port-split + same-ToR placement" : "port-split",
               packed ? "ring (packed)" : "ring (spread)",
               Table::fmt_pct(mean / kTrials), "-",
               Table::fmt_pct(conflicts / kTrials),
               Table::fmt(hops / kTrials, 1)});
  }
  t.print();
  std::printf(
      "paper: splitting 400G downlinks into 2x200G doubles uplink headroom; "
      "scheduling data-intensive nodes under one ToR removes uplink traffic "
      "entirely.\n\n");
}

void cc_section(ms::bench::BenchReport& br) {
  std::printf("--- (b) congestion control under incast ---\n");
  Table t({"senders", "algorithm", "utilization", "mean queue", "p99 queue",
           "PFC pause", "pause events", "fairness"});
  for (int senders : {16, 32, 64}) {
    CcSimParams p;
    p.senders = senders;
    p.duration_s = 0.03;
    struct Algo {
      const char* name;
      std::function<std::unique_ptr<CcAlgorithm>()> make;
    };
    const Algo algos[] = {
        {"DCQCN", [] { return std::make_unique<Dcqcn>(); }},
        {"Swift", [] { return std::make_unique<Swift>(); }},
        {"MegaScaleCC", [] { return std::make_unique<MegaScaleCc>(); }},
    };
    for (const auto& algo : algos) {
      auto r = run_cc_sim(p, algo.make);
      if (senders == 64) {
        br.metric(std::string("cc64_util_") + algo.name, r.utilization, 0.03);
        br.metric(std::string("cc64_pfc_pause_") + algo.name,
                  r.pfc_pause_fraction, 0.25);
      }
      t.add_row({Table::fmt_int(senders), algo.name,
                 Table::fmt_pct(r.utilization),
                 Table::fmt(r.mean_queue_bytes / 1e3, 0) + " KB",
                 Table::fmt(r.p99_queue_bytes / 1e3, 0) + " KB",
                 Table::fmt_pct(r.pfc_pause_fraction, 2),
                 Table::fmt_int(r.pfc_pause_events),
                 Table::fmt(r.fairness, 3)});
    }
    t.add_separator();
  }
  t.print();
  std::printf(
      "paper: default DCQCN at scale drives deep queues and PFC/HoL "
      "blocking; the Swift+DCQCN hybrid keeps throughput high with minimal "
      "PFC.\n\n");
}

void victim_section(ms::bench::BenchReport& br) {
  std::printf("--- (b2) PFC head-of-line collateral (multi-hop) ---\n");
  Table t({"incast senders", "algorithm", "victim goodput", "incast goodput",
           "victim's hop paused"});
  for (int senders : {16, 32, 64}) {
    struct Algo {
      const char* name;
      std::function<std::unique_ptr<CcAlgorithm>()> make;
    };
    const Algo algos[] = {
        {"DCQCN", [] { return std::make_unique<Dcqcn>(); }},
        {"MegaScaleCC", [] { return std::make_unique<MegaScaleCc>(); }},
    };
    for (const auto& algo : algos) {
      auto r = run_victim_scenario(senders, algo.make);
      if (senders == 64) {
        br.metric(std::string("victim64_goodput_") + algo.name,
                  r.victim_goodput, 0.05);
      }
      t.add_row({Table::fmt_int(senders), algo.name,
                 Table::fmt_pct(r.victim_goodput),
                 Table::fmt_pct(r.incast_goodput),
                 Table::fmt_pct(r.first_hop_pause_fraction, 2)});
    }
    t.add_separator();
  }
  t.print();
  std::printf(
      "the victim flow shares NO queue with the incast: every lost point of "
      "goodput is PFC pause frames cascading upstream through the fabric — "
      "the head-of-line blocking §3.6 sets out to avoid.\n\n");
}

void flap_section(ms::bench::BenchReport& br) {
  std::printf("--- (c) link flapping vs retransmit configuration ---\n");
  Table t({"NCCL timeout", "retransmit", "flap", "outcome", "stall"});
  const std::vector<FlapEvent> flap3s{{.down_at = seconds(0.5),
                                       .down_duration = seconds(3.1)}};
  struct Case {
    TimeNs nccl_timeout;
    bool adaptive;
    const char* label;
  };
  const Case cases[] = {
      {seconds(1.0), false, "default (short)"},
      {seconds(30.0), false, "tuned timeout"},
      {seconds(30.0), true, "tuned + adap_retrans"},
  };
  for (const auto& c : cases) {
    RetransConfig cfg;
    cfg.nccl_timeout = c.nccl_timeout;
    cfg.adaptive = c.adaptive;
    auto out = simulate_transfer_with_flaps(static_cast<Bytes>(25e9), 25e9,
                                            flap3s, cfg);
    if (out.completed && c.adaptive) {
      br.metric("flap_stall_adaptive_s", to_seconds(out.total_stall), 0.05);
    }
    t.add_row({format_duration(c.nccl_timeout),
               c.adaptive ? "adaptive 50ms probes" : "exponential backoff",
               "3.1 s down",
               out.completed ? "completed"
                             : std::string("FAILED: ") + out.error_kind,
               out.completed ? format_duration(out.total_stall) : "-"});
  }
  t.print();
  std::printf(
      "paper lessons: set the NCCL timeout above the flap duration or the "
      "job dies needlessly; adap_retrans probes on a short interval so the "
      "transfer resumes as soon as the link returns.\n");
}

}  // namespace

int main() {
  std::printf("=== §3.6: network performance tuning ===\n\n");
  ms::bench::BenchReport br("sec36_network_tuning");
  ecmp_section(br);
  cc_section(br);
  victim_section(br);
  flap_section(br);
  return br.write() ? 0 : 1;
}
