// Reproduces §3.5: collective communication group initialization time.
//
// Two parts:
//  1. The large-scale model, calibrated against the paper's milestones
//     (1047 s -> 361 s -> <5 s at 2048 GPUs; <30 s above 10k GPUs).
//  2. A real head-to-head race with threads: blocking single-worker store +
//     global barriers (TCPStore-style) vs async store + ordered member-only
//     initialization — the mechanism demonstrated at laptop scale.
#include <cstdio>

#include "bench/common.h"
#include "collective/bootstrap.h"
#include "collective/kvstore.h"
#include "core/table.h"

using namespace ms;
using namespace ms::collective;

int main() {
  std::printf("=== §3.5: communication group initialization ===\n\n");

  Table t({"GPUs", "store", "init order", "store ops", "init time", "paper"});
  struct Case {
    int world;
    StoreKind store;
    bool ordered;
    const char* paper;
  };
  const Case cases[] = {
      {2048, StoreKind::kTcpStore, false, "1047 s"},
      {2048, StoreKind::kRedis, false, "361 s"},
      {2048, StoreKind::kRedis, true, "< 5 s"},
      {4096, StoreKind::kTcpStore, false, "(not reported)"},
      {12288, StoreKind::kTcpStore, false, "intolerable"},
      {12288, StoreKind::kRedis, true, "< 30 s"},
  };
  bench::BenchReport br("sec35_init_time");
  for (const auto& c : cases) {
    BootstrapConfig cfg;
    cfg.world_size = c.world;
    cfg.store = c.store;
    cfg.ordered_init = c.ordered;
    const auto est = estimate_init_time(cfg);
    br.metric("init_s_" + std::to_string(c.world) + "_" +
                  (c.store == StoreKind::kTcpStore ? "tcp" : "redis") +
                  (c.ordered ? "_ordered" : "_barrier"),
              to_seconds(est.init_time), 0.02);
    t.add_row({Table::fmt_int(c.world),
               c.store == StoreKind::kTcpStore ? "TCPStore" : "Redis",
               c.ordered ? "ordered (O(n))" : "global barriers (O(n^2))",
               Table::fmt(est.total_store_ops / 1e3, 0) + "k",
               format_duration(est.init_time), c.paper});
  }
  t.print();

  std::printf(
      "\n--- real thread-level race (world=32 ranks, groups of 4) ---\n");
  Table r({"configuration", "wall time"});
  {
    BlockingKvStore store(std::chrono::microseconds(50));
    auto res = run_group_init(store, 32, 4, /*global_barrier=*/true);
    r.add_row({"blocking store + global barriers",
               Table::fmt(static_cast<double>(res.wall_time.count()) / 1e3, 1) +
                   " ms"});
  }
  {
    BlockingKvStore store(std::chrono::microseconds(50));
    auto res = run_group_init(store, 32, 4, /*global_barrier=*/false);
    r.add_row({"blocking store + ordered init",
               Table::fmt(static_cast<double>(res.wall_time.count()) / 1e3, 1) +
                   " ms"});
  }
  {
    AsyncKvStore store;
    auto res = run_group_init(store, 32, 4, /*global_barrier=*/true);
    r.add_row({"async store + global barriers",
               Table::fmt(static_cast<double>(res.wall_time.count()) / 1e3, 1) +
                   " ms"});
  }
  {
    AsyncKvStore store;
    auto res = run_group_init(store, 32, 4, /*global_barrier=*/false);
    r.add_row({"async store + ordered init (MegaScale)",
               Table::fmt(static_cast<double>(res.wall_time.count()) / 1e3, 1) +
                   " ms"});
  }
  r.print();
  return br.write() ? 0 : 1;
}
