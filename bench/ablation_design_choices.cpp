// Ablations for the design choices DESIGN.md calls out, beyond the paper's
// own Table 3:
//   (a) pipeline schedule: GPipe vs classic 1F1B vs interleaved 1F1B —
//       same bubble algebra, very different activation memory (why §2 uses
//       interleaved 1F1B);
//   (b) ZeRO stage: communication volume vs memory trade (why §2 picks
//       stage 2);
//   (c) TP/SP fusion chunk count: the §3.2 GEMM-chunk pipelining knob;
//   (d) flat ring vs hierarchical DP all-reduce at scale.
#include <cstdio>

#include "bench/common.h"
#include "collective/comm.h"
#include "core/table.h"
#include "engine/job.h"
#include "model/memory.h"
#include "parallel/pipeline.h"

using namespace ms;
using namespace ms::engine;

namespace {

JobConfig base_config() {
  JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.model.parallel_block = true;
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 4, .vpp = 1};
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = OverlapOptions::megascale();
  return cfg;
}

void schedule_ablation(ms::bench::BenchReport& br) {
  std::printf("--- (a) pipeline schedule ---\n");
  Table t({"schedule", "iter", "MFU", "peak in-flight", "activations",
           "fits 80GB?"});
  struct Case {
    const char* name;
    PipelineSchedule schedule;
    int vpp;
  };
  const Case cases[] = {
      {"GPipe", PipelineSchedule::kGpipe, 1},
      {"1F1B", PipelineSchedule::kOneFOneB, 1},
      {"interleaved 1F1B (vpp 6)", PipelineSchedule::kOneFOneB, 6},
  };
  for (const auto& c : cases) {
    auto cfg = base_config();
    cfg.schedule = c.schedule;
    cfg.par.vpp = c.vpp;
    const auto r = simulate_iteration(cfg);
    const int m = cfg.microbatches_per_replica();
    const auto sched =
        c.schedule == PipelineSchedule::kGpipe
            ? parallel::gpipe_schedule_for_stage(cfg.par.pp, 0, m)
            : parallel::schedule_for_stage(cfg.par.pp, 0, c.vpp, m);
    const int inflight = parallel::peak_inflight_microbatches(sched);
    br.metric(std::string("schedule_mfu_") +
                  (c.schedule == PipelineSchedule::kGpipe
                       ? "gpipe"
                       : (c.vpp > 1 ? "interleaved" : "1f1b")),
              r.mfu, 0.02);
    // Interleaved chunks are 1/vpp the size; normalize to microbatch units.
    const double inflight_units =
        static_cast<double>(inflight) / static_cast<double>(c.vpp);
    const auto mem = model::peak_memory(
        cfg.model, cfg.par, static_cast<int>(inflight_units + 0.5));
    t.add_row({c.name, format_duration(r.iteration_time),
               Table::fmt_pct(r.mfu), Table::fmt_int(inflight),
               Table::fmt(mem.activations / 1e9, 1) + " GB",
               mem.total() <= 80e9 ? "yes" : "NO"});
  }
  // Activation recomputation: the other memory lever.
  {
    auto cfg = base_config();
    cfg.par.vpp = 6;
    const auto stash = simulate_iteration(cfg);
    cfg.full_recompute = true;
    const auto recompute = simulate_iteration(cfg);
    model::MemoryConfig sel, full;
    sel.activation_factor = model::MemoryConfig::kSelectiveRecompute;
    full.activation_factor = model::MemoryConfig::kFullRecompute;
    const auto mem_sel = model::peak_memory(cfg.model, cfg.par, 10, sel);
    const auto mem_full = model::peak_memory(cfg.model, cfg.par, 10, full);
    t.add_row({"interleaved + full recompute",
               format_duration(recompute.iteration_time),
               Table::fmt_pct(recompute.mfu), "-",
               Table::fmt(mem_full.activations / 1e9, 1) + " GB", "yes"});
    (void)stash;
    (void)mem_sel;
  }
  t.print();
  std::printf(
      "GPipe matches 1F1B on time but stashes every microbatch's "
      "activations; interleaving buys back bubble at bounded memory; full "
      "recomputation trades ~1/3 more compute for 17x less activation "
      "memory.\n\n");
}

void zero_ablation(ms::bench::BenchReport& br) {
  std::printf("--- (b) ZeRO stage ---\n");
  Table t({"stage", "iter (overlap off)", "grad+opt memory", "note"});
  for (int stage : {1, 2, 3}) {
    auto cfg = base_config();
    cfg.par.vpp = 6;
    cfg.par.zero_stage = stage;
    cfg.overlap = OverlapOptions::megatron_lm();  // expose the DP comm
    const auto r = simulate_iteration(cfg);
    br.metric("zero_stage" + std::to_string(stage) + "_iter_s",
              to_seconds(r.iteration_time), 0.02);
    const auto mem = model::peak_memory(cfg.model, cfg.par, 14);
    const char* note = stage == 1 ? "full grad all-reduce"
                       : stage == 2
                           ? "reduce-scatter + all-gather (paper's choice)"
                           : "params re-gathered in backward too";
    t.add_row({Table::fmt_int(stage), format_duration(r.iteration_time),
               Table::fmt((mem.gradients + mem.optimizer) / 1e9, 1) + " GB",
               note});
  }
  t.print();
  std::printf(
      "stage 2 moves exactly one all-reduce's volume with both halves "
      "schedulable — no extra traffic, all the overlap (§2).\n\n");
}

void chunk_ablation(ms::bench::BenchReport& br) {
  std::printf("--- (c) TP/SP fusion chunk count (§3.2 Figure 3c) ---\n");
  Table t({"chunks", "iter", "MFU"});
  for (int chunks : {1, 2, 4, 8, 16, 32}) {
    auto cfg = base_config();
    cfg.par.vpp = 6;
    cfg.overlap.tp_overlap_chunks = chunks;
    const auto r = simulate_iteration(cfg);
    if (chunks == 1 || chunks == 8) {
      br.metric("chunks" + std::to_string(chunks) + "_mfu", r.mfu, 0.02);
    }
    t.add_row({Table::fmt_int(chunks), format_duration(r.iteration_time),
               Table::fmt_pct(r.mfu)});
  }
  t.print();
  std::printf(
      "more chunks hide more of the all-gather/reduce-scatter behind the "
      "FFN GEMM, with diminishing returns once the ramp is amortized.\n\n");
}

void hierarchy_ablation(ms::bench::BenchReport& br) {
  std::printf("--- (d) flat ring vs hierarchical DP all-reduce ---\n");
  collective::CollectiveModel coll{collective::ClusterSpec{}};
  Table t({"DP GPUs", "flat ring", "hierarchical (8/node)", "speedup"});
  for (int gpus : {64, 256, 1024, 4096}) {
    const Bytes bytes = 1_GiB;
    const TimeNs flat =
        coll.all_reduce(bytes, gpus, collective::Domain::kInterNode);
    const TimeNs hier = coll.hierarchical_all_reduce(bytes, gpus / 8, 8);
    if (gpus == 4096) {
      br.metric("hier_allreduce_speedup_4096",
                static_cast<double>(flat) / static_cast<double>(hier), 0.02);
    }
    t.add_row({Table::fmt_int(gpus), format_duration(flat),
               format_duration(hier),
               Table::fmt(static_cast<double>(flat) / static_cast<double>(hier),
                          2) +
                   "x"});
  }
  t.print();
  std::printf(
      "a flat ring pushes the FULL payload through every GPU's NIC; the "
      "rail-aligned hierarchy reduces inside the node first so each NIC "
      "carries only 1/8 of the bytes, and the network ring's latency term "
      "grows with nodes instead of GPUs.\n");
}

}  // namespace

int main() {
  std::printf("=== design-choice ablations ===\n\n");
  ms::bench::BenchReport br("ablation_design_choices");
  schedule_ablation(br);
  zero_ablation(br);
  chunk_ablation(br);
  hierarchy_ablation(br);
  return br.write() ? 0 : 1;
}
