// The engine-core baseline: how fast is the discrete-event engine itself?
//
// Everything the simulator reports rides on sim::Engine's pop/dispatch
// loop, and ROADMAP item 2 proposes rebuilding that loop for >=10x. This
// bench is the committed before-picture: it times prof::run_micro_engine
// — the EXACT workload `msprof run micro_engine` profiles — with the
// profiler dormant (the production configuration) and gates the
// structural counters plus events/sec against bench/baselines/.
//
//   events/sec, ns/event        gated loosely (host-dependent, 50%)
//   allocs/event, peak queue,   gated exactly (structural: any drift is
//   executed/scheduled/...      a behavior change, not noise)
//
// A second, profiler-ENABLED run records the instrumented cost as ungated
// info() so the per-event price of MS_PROF stays visible next to the
// numbers it taxes. Artifact: BENCH_micro_engine.json.
#include <cstdio>

#include "bench/common.h"
#include "core/table.h"
#include "core/wallclock.h"
#include "prof/msprof.h"
#include "prof/profiler.h"

using namespace ms;

namespace {

constexpr double kWallNsPerSec = 1'000'000'000.0;
constexpr double kWallNsPerMs = 1'000'000.0;
constexpr double kMega = 1'000'000.0;

struct TimedRun {
  prof::WorkloadResult result;
  WallNs wall = 0;
};

TimedRun timed_run(int repeat) {
  TimedRun best;
  for (int r = 0; r < repeat; ++r) {
    const WallNs t0 = wallclock_ns();
    prof::WorkloadResult result = prof::run_micro_engine();
    const WallNs wall = wallclock_ns() - t0;
    if (best.wall == 0 || wall < best.wall) best = {result, wall};
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== micro_engine: sim::Engine hot-loop baseline ===\n\n");

  constexpr int kRepeat = 3;
  prof::set_enabled(false);
  const TimedRun dormant = timed_run(kRepeat);

  prof::reset();
  prof::set_enabled(true);
  const TimedRun enabled = timed_run(kRepeat);
  prof::set_enabled(false);

  const auto& res = dormant.result;
  const double events = static_cast<double>(res.events);
  const double dormant_eps =
      events / (static_cast<double>(dormant.wall) / kWallNsPerSec);
  const double dormant_ns_per_event =
      static_cast<double>(dormant.wall) / events;
  const double enabled_ns_per_event =
      static_cast<double>(enabled.wall) / events;
  // Allocations per event: every schedule costs exactly one queue entry +
  // one callback-map insert; a fractional drift means the engine started
  // allocating somewhere new.
  const double allocs_per_event =
      static_cast<double>(res.scheduled) / events;

  Table table({"quantity", "value"});
  table.add_row({"events executed", Table::fmt_int(static_cast<long long>(
                                        res.events))});
  table.add_row(
      {"events/sec (dormant)", Table::fmt(dormant_eps / kMega, 2) + "M"});
  table.add_row({"ns/event (dormant)", Table::fmt(dormant_ns_per_event, 1)});
  table.add_row({"ns/event (profiled)", Table::fmt(enabled_ns_per_event, 1)});
  table.add_row({"allocs/event", Table::fmt(allocs_per_event, 4)});
  table.add_row({"peak queue depth", Table::fmt_int(static_cast<long long>(
                                         res.peak_queue))});
  table.add_row({"tombstone pops", Table::fmt_int(static_cast<long long>(
                                       res.tombstone_pops))});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("engine digest 0x%016llx (must not move with MS_PROF)\n\n",
              static_cast<unsigned long long>(res.engine_digest));

  bench::BenchReport report("micro_engine");
  report.config("chains", 8);
  report.config("chain_events", 150000);
  report.config("fanout_events", 300000);
  report.config("cancel_events", 200000);
  report.config("repeat", kRepeat);
  // Host-dependent throughput: wide tolerance, still catches a 2x cliff.
  report.metric("events_per_sec", dormant_eps, 0.5);
  report.metric("ns_per_event", dormant_ns_per_event, 0.5);
  // Structural counters: exact.
  report.metric("executed_total", static_cast<double>(res.events), 0.0);
  report.metric("scheduled_total", static_cast<double>(res.scheduled), 0.0);
  report.metric("cancelled_total", static_cast<double>(res.cancelled), 0.0);
  report.metric("allocs_per_event", allocs_per_event, 0.0);
  report.metric("peak_queue_depth", static_cast<double>(res.peak_queue), 0.0);
  report.metric("tombstone_pops", static_cast<double>(res.tombstone_pops),
                0.0);
  report.info("wall_ms_dormant", static_cast<double>(dormant.wall) / kWallNsPerMs);
  report.info("wall_ms_profiled",
              static_cast<double>(enabled.wall) / kWallNsPerMs);
  report.info("ns_per_event_profiled", enabled_ns_per_event);
  if (!report.write()) {
    std::fprintf(stderr, "micro_engine: cannot write BENCH artifact\n");
    return 1;
  }
  std::printf("wrote BENCH_micro_engine.json\n");
  return 0;
}
