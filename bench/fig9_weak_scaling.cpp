// Reproduces Figure 9: weak-scaling MFU of the 530B model, where the batch
// size is scaled proportionally with the number of GPUs (batch = GPUs /
// 280 * 280 ... i.e. one sequence per GPU on 280-GPU replicas).
//
// Paper observation: Megatron-LM's MFU drops ~1.6% going to 11,200 GPUs;
// MegaScale stays near-flat (within ~0.5%) thanks to communication
// overlapping, and leads by up to ~6.1% MFU.
#include <cstdio>

#include "bench/common.h"
#include "core/stats.h"
#include "core/table.h"

int main() {
  using ms::Table;
  using namespace ms::bench;

  std::printf(
      "=== Figure 9: weak scaling, 530B model (batch ~ #GPUs) ===\n\n");

  Table table({"GPUs", "Batch", "Megatron-LM MFU", "MegaScale MFU", "Gap"});
  BenchReport br("fig9_weak_scaling");
  br.config("model", "530b");
  ms::Series mg_series, msc_series;
  mg_series.name = "Megatron-LM";
  msc_series.name = "MegaScale";

  double mg_first = 0, mg_last = 0, msc_first = 0, msc_last = 0;
  const int replica = 280;  // tp 8 x pp 35
  for (int replicas : {4, 8, 16, 24, 32, 40}) {
    const int gpus = replicas * replica;
    const int batch = gpus;  // batch scaled with GPUs (1 seq / GPU)
    const auto mg = run_with_cluster(megatron_530b(gpus, batch));
    const auto msc = run_with_cluster(megascale_530b(gpus, batch));
    table.add_row({Table::fmt_int(gpus), Table::fmt_int(batch),
                   Table::fmt_pct(mg.mfu), Table::fmt_pct(msc.mfu),
                   Table::fmt_pct(msc.mfu - mg.mfu)});
    br.metric("megatron_mfu_" + std::to_string(gpus), mg.mfu, 0.02);
    br.metric("megascale_mfu_" + std::to_string(gpus), msc.mfu, 0.02);
    mg_series.add(gpus, mg.mfu * 100.0);
    msc_series.add(gpus, msc.mfu * 100.0);
    if (mg_first == 0) {
      mg_first = mg.mfu;
      msc_first = msc.mfu;
    }
    mg_last = mg.mfu;
    msc_last = msc.mfu;
  }
  table.print();

  std::printf("\nMFU vs GPUs:\n%s\n",
              ms::ascii_chart({mg_series, msc_series}, 72, 14).c_str());
  std::printf(
      "Megatron-LM MFU drift %0.1f%% (paper: ~-1.6%%); MegaScale drift "
      "%0.1f%% (paper: near-linear scaling)\n",
      (mg_last - mg_first) * 100.0, (msc_last - msc_first) * 100.0);
  br.metric("megatron_mfu_drift", mg_last - mg_first, 0.25);
  br.metric("megascale_mfu_drift", msc_last - msc_first, 0.25);
  return br.write() ? 0 : 1;
}
