// Reproduces Figure 10: model-convergence microbenchmarks, by actually
// training small transformer language models with the from-scratch
// autograd substrate (the paper uses a 13B model; we use its laptop-scale
// stand-in, same architecture family).
//
//  (a) baseline transformer vs MegaScale's algorithmic changes (parallel
//      transformer block + sliding-window attention): comparable loss.
//  (b) ADAM vs LAMB with 4x the batch size: same loss for the same number
//      of tokens.
#include <cstdio>

#include "bench/common.h"
#include "core/stats.h"
#include "core/table.h"
#include "optim/trainer.h"

using namespace ms;
using namespace ms::optim;

namespace {

TinyGptConfig model_config() {
  TinyGptConfig cfg;
  cfg.vocab = 64;
  cfg.seq_len = 48;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.ffn_hidden = 128;
  return cfg;
}

Series to_named(const Series& s, const char* name) {
  Series copy = s;
  copy.name = name;
  return copy;
}

}  // namespace

int main() {
  std::printf("=== Figure 10: convergence microbenchmarks (real training) ===\n");
  MarkovCorpus corpus(64, 4, /*seed=*/777);
  std::printf("corpus entropy floor: %.3f nats/token\n\n",
              corpus.entropy_per_token());

  // ---------------- (a) baseline vs PTB + SWA ----------------
  TrainConfig tc;
  tc.steps = 220;
  tc.batch_size = 6;
  tc.lr = 2e-3f;
  tc.record_every = 10;

  Rng init_a(42);
  TinyGpt baseline(model_config(), init_a);
  Adam opt_a(baseline.parameters());
  Rng data_a(1000);
  auto rec_baseline = train_lm(baseline, opt_a, corpus, tc, data_a);

  auto algo_cfg = model_config();
  algo_cfg.parallel_block = true;
  algo_cfg.window = 8;  // sliding-window attention
  Rng init_b(42);
  TinyGpt megascale(algo_cfg, init_b);
  Adam opt_b(megascale.parameters());
  Rng data_b(1000);
  auto rec_megascale = train_lm(megascale, opt_b, corpus, tc, data_b);

  std::printf("--- (a) baseline vs parallel block + sliding-window ---\n");
  std::printf("%s\n",
              ascii_chart({to_named(rec_baseline.loss_vs_tokens, "baseline"),
                           to_named(rec_megascale.loss_vs_tokens, "PTB+SWA")},
                          72, 16)
                  .c_str());
  Table ta({"variant", "final loss", "tail(5) loss"});
  ta.add_row({"baseline", Table::fmt(rec_baseline.final_loss, 3),
              Table::fmt(rec_baseline.loss_vs_tokens.tail_mean(5), 3)});
  ta.add_row({"PTB+SWA", Table::fmt(rec_megascale.final_loss, 3),
              Table::fmt(rec_megascale.loss_vs_tokens.tail_mean(5), 3)});
  ta.print();
  std::printf(
      "paper: the two curves coincide after ~100B tokens (here: tail losses "
      "within noise).\n\n");

  // ---------------- (b) ADAM vs LAMB at 4x batch ----------------
  TrainConfig adam_tc;
  adam_tc.steps = 400;
  adam_tc.batch_size = 4;
  adam_tc.lr = 2e-3f;
  adam_tc.record_every = 10;

  Rng init_c(43);
  TinyGpt adam_model(model_config(), init_c);
  Adam adam(adam_model.parameters());
  Rng data_c(2000);
  auto rec_adam = train_lm(adam_model, adam, corpus, adam_tc, data_c);

  TrainConfig lamb_tc = adam_tc;
  lamb_tc.steps = adam_tc.steps / 4;     // same tokens
  lamb_tc.batch_size = adam_tc.batch_size * 4;  // 4x batch
  lamb_tc.lr = 1.5e-2f;  // LAMB's trust ratio tolerates a much larger step
  lamb_tc.record_every = 3;

  Rng init_d(43);
  TinyGpt lamb_model(model_config(), init_d);
  Lamb lamb(lamb_model.parameters());
  Rng data_d(2000);
  auto rec_lamb = train_lm(lamb_model, lamb, corpus, lamb_tc, data_d);

  std::printf("--- (b) ADAM vs LAMB with 4x batch size ---\n");
  std::printf("%s\n",
              ascii_chart({to_named(rec_adam.loss_vs_tokens, "ADAM (bs 4)"),
                           to_named(rec_lamb.loss_vs_tokens, "LAMB (bs 16)")},
                          72, 16)
                  .c_str());
  Table tb({"optimizer", "batch", "steps", "tokens", "final loss"});
  tb.add_row({"ADAM", "4", Table::fmt_int(adam_tc.steps),
              Table::fmt(rec_adam.tokens_consumed / 1e3, 1) + "k",
              Table::fmt(rec_adam.final_loss, 3)});
  tb.add_row({"LAMB", "16", Table::fmt_int(lamb_tc.steps),
              Table::fmt(rec_lamb.tokens_consumed / 1e3, 1) + "k",
              Table::fmt(rec_lamb.final_loss, 3)});
  tb.print();
  std::printf(
      "paper: LAMB at 4x batch reaches the same loss as ADAM after ~250B "
      "tokens.\n");

  bench::BenchReport br("fig10_convergence");
  br.config("corpus_seed", 777);
  br.metric("baseline_tail_loss", rec_baseline.loss_vs_tokens.tail_mean(5),
            0.05);
  br.metric("ptb_swa_tail_loss", rec_megascale.loss_vs_tokens.tail_mean(5),
            0.05);
  br.metric("adam_final_loss", rec_adam.final_loss, 0.05);
  br.metric("lamb_final_loss", rec_lamb.final_loss, 0.05);
  return br.write() ? 0 : 1;
}
