// §3.3 / Table 2: parallelism-plan auto-tuning at paper scale.
//
// Runs the full msplan pipeline (enumerate -> memory filter -> analytic
// rank -> DES-validate top-K) for the 175B MegaScale job at 3,072 / 6,144 /
// 12,288 GPUs and gates on what makes the planner trustworthy:
//   * the winner's simulated step time and MFU (the rediscovered optimum),
//   * the paper config's optimality gap (paper step / winner step; 1.0
//     means the hand-tuned Table-2 layout wins outright),
//   * the exact space accounting (enumerated / memory-rejected /
//     simulated candidate counts, tolerance 0).
// Search wall time is recorded as ungated info: it is host-dependent, but
// the order of magnitude (~100ms per scale) is the point — analytic
// pruning is what keeps DES validation affordable.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "core/table.h"
#include "plan/planner.h"
#include "plan/space.h"

namespace {

ms::plan::PlanSpec table2_spec(int gpus) {
  ms::plan::PlanSpec spec;
  spec.model = ms::model::config_175b();
  spec.model.parallel_block = true;
  spec.model.attention = ms::model::AttentionKind::kSlidingWindow;
  spec.model.window = 512;
  spec.gpus = gpus;
  spec.global_batch = 6144;
  spec.network_efficiency = ms::bench::network_efficiency_for(gpus);
  return spec;
}

}  // namespace

int main() {
  using ms::Table;

  std::printf(
      "=== Sec 3.3 / Table 2: parallelism-plan search, 175B model ===\n"
      "(msplan rediscovering the paper's hand-tuned 3D configs)\n\n");

  ms::bench::BenchReport br("plan_search");
  br.config("model", "175b");
  br.config("batch", 6144);
  br.config("top_k", 8);

  Table table({"GPUs", "Winner", "Sim(s)", "MFU", "Paper config", "Gap",
               "Space", "Pruned", "Wall(ms)"});
  for (const int gpus : {3072, 6144, 12288}) {
    const ms::plan::PlanSpec spec = table2_spec(gpus);
    const auto start = std::chrono::steady_clock::now();
    const ms::plan::PlanReport report = ms::plan::search(spec);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (report.plans.empty()) {
      std::fprintf(stderr, "plan_search: no feasible plan at %d GPUs\n", gpus);
      return 1;
    }

    const auto& winner = report.best();
    const std::string paper_name =
        "tp8 pp8 dp" + std::to_string(gpus / 64) + " vpp6";
    const ms::plan::RankedPlan* paper = nullptr;
    for (const auto& plan : report.plans) {
      if (ms::plan::candidate_name(plan.cand) == paper_name) paper = &plan;
    }
    if (paper == nullptr || !paper->simulated) {
      std::fprintf(stderr, "plan_search: paper config %s missing from the"
                           " simulated finalists at %d GPUs\n",
                   paper_name.c_str(), gpus);
      return 1;
    }
    const double gap =
        ms::to_seconds(paper->sim_step) / ms::to_seconds(winner.sim_step);
    const int pruned = report.feasible() - report.simulated;

    const std::string tag = std::to_string(gpus);
    br.metric("winner_step_s_" + tag, ms::to_seconds(winner.sim_step), 0.02);
    br.metric("winner_mfu_" + tag, winner.sim_mfu, 0.02);
    br.metric("paper_gap_" + tag, gap, 0.02);
    br.metric("enumerated_" + tag, report.enumerated, 0.0);
    br.metric("memory_rejected_" + tag, report.memory_rejected, 0.0);
    br.metric("simulated_" + tag, report.simulated, 0.0);
    br.info("search_wall_ms_" + tag, wall_ms);

    table.add_row({Table::fmt_int(gpus),
                   ms::plan::candidate_name(winner.cand),
                   Table::fmt(ms::to_seconds(winner.sim_step), 2),
                   Table::fmt_pct(winner.sim_mfu), paper_name,
                   Table::fmt(gap, 3) + "x",
                   Table::fmt_int(report.enumerated),
                   Table::fmt_int(pruned), Table::fmt(wall_ms, 1)});
  }
  table.print();
  std::printf("\n(gap = paper-config step / winner step; 1.000x means the\n"
              " hand-tuned Table-2 layout is rediscovered outright)\n");
  return br.write() ? 0 : 1;
}
