// The calibration fidelity loop as a regression-gated bench: emit one
// traced step of the fixture workload with known off-nominal parameters,
// fit operator efficiencies and alpha-beta collective parameters back out
// of the trace (`msdiag calibrate` in-process), then replay the fit
// through the simulator. Gated: the recovered parameters (the round-trip
// accuracy the docs promise), the exact fitted-span count, and the binary
// round-trip/replay verdicts. The raw residuals are near-zero by
// construction, so they ride along as ungated info.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "calib/calibrate_cli.h"
#include "calib/fit.h"
#include "calib/ingest.h"
#include "calib/replay.h"
#include "telemetry/exporters.h"
#include "telemetry/trace.h"

using namespace ms;

namespace {

constexpr double kTrueGemm = 0.65;
constexpr double kTrueAttn = 0.50;
constexpr double kTrueMem = 0.95;
constexpr double kTrueNet = 0.85;
constexpr double kTolerance = 0.02;

/// Largest relative recovery error across the five fitted parameters.
double worst_recovery(const calib::CalibrationReport& report,
                      const engine::JobConfig& base) {
  auto rel = [](double got, double want) {
    return std::fabs(got - want) / want;
  };
  double worst = rel(report.ops.gemm_efficiency, kTrueGemm);
  worst = std::max(worst, rel(report.ops.attention_efficiency, kTrueAttn));
  worst = std::max(worst, rel(report.ops.memory_efficiency, kTrueMem));
  for (const auto& f : report.coll) {
    if (!f.fitted || f.domain != collective::Domain::kInterNode) continue;
    worst = std::max(worst, rel(static_cast<double>(f.alpha),
                                static_cast<double>(base.cluster.net_latency)));
    worst = std::max(worst, rel(f.bandwidth, kTrueNet * base.cluster.nic_bw));
  }
  return worst;
}

}  // namespace

int main() {
  std::printf("=== §5 calibration: trace -> fit -> replay round trip ===\n\n");

  // ---- emit: one traced step with known "true" parameters ----
  engine::JobConfig gen = calib::fixture_config();
  gen.ops.gemm_efficiency = kTrueGemm;
  gen.ops.attention_efficiency = kTrueAttn;
  gen.ops.flash_attention2_efficiency = kTrueAttn;
  gen.cluster.gpu.hbm_bw *= kTrueMem;
  gen.network_efficiency = kTrueNet;
  telemetry::Tracer tracer;
  gen.tracer = &tracer;
  const engine::IterationResult iter = engine::simulate_iteration(gen);
  const auto spans = tracer.spans();
  std::printf("emitted %zu spans (step %s; gemm %.2f attn %.2f mem %.2f "
              "net %.2f)\n\n",
              spans.size(), format_duration(iter.iteration_time).c_str(),
              kTrueGemm, kTrueAttn, kTrueMem, kTrueNet);

  // ---- ingest throughput (wall clock: reported, never gated) ----
  const std::string jsonl = telemetry::jsonl_spans(spans);
  calib::IngestResult ingested;
  std::string ingest_error;
  const auto t0 = std::chrono::steady_clock::now();
  const bool ingest_ok = calib::ingest_trace(jsonl, ingested, ingest_error);
  const double ingest_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!ingest_ok || ingested.spans.size() != spans.size()) {
    std::fprintf(stderr, "ingest failed: %s\n", ingest_error.c_str());
    return 1;
  }
  std::printf("ingested %zu spans (%.2f MB) in %.1f ms (%.0f spans/s)\n\n",
              ingested.spans.size(),
              static_cast<double>(jsonl.size()) / (1024.0 * 1024.0),
              ingest_s * 1000.0,
              static_cast<double>(ingested.spans.size()) /
                  std::max(ingest_s, 1e-9));

  // ---- fit against the nominal base config ----
  const engine::JobConfig base = calib::fixture_config();
  const calib::CalibrationReport report = calib::fit_trace(spans, base);
  std::printf("%s\n", calib::report_table(report).c_str());
  if (!report.ok) {
    std::fprintf(stderr, "calibration failed: %s\n", report.error.c_str());
    return 1;
  }

  // ---- replay: the fitted simulator must reproduce the trace ----
  const calib::ReplayResult replay =
      calib::replay_fit(spans, report, base, kTolerance);
  std::printf("%s\n", calib::replay_table(replay).c_str());

  const double worst = worst_recovery(report, base);
  const bool round_trip_ok = report.ops.fitted && !report.ops.degenerate &&
                             worst <= 0.01;
  std::printf("worst parameter recovery error %.4f%% -> %s\n", worst * 100.0,
              round_trip_ok ? "OK (<= 1%)" : "FAILED");

  bench::BenchReport br("calibration");
  br.config("preset", "fixture");
  br.config("true_gemm_efficiency", kTrueGemm);
  br.config("true_attention_efficiency", kTrueAttn);
  br.config("true_memory_efficiency", kTrueMem);
  br.config("true_network_efficiency", kTrueNet);
  br.config("replay_tolerance", kTolerance);

  // Gated: recovered parameters (1% drift budget — the round-trip promise),
  // the exact span accounting, and the binary verdicts.
  br.metric("fitted_gemm_efficiency", report.ops.gemm_efficiency, 0.01);
  br.metric("fitted_attention_efficiency", report.ops.attention_efficiency,
            0.01);
  br.metric("fitted_memory_efficiency", report.ops.memory_efficiency, 0.01);
  for (const auto& f : report.coll) {
    if (!f.fitted || f.domain != collective::Domain::kInterNode) continue;
    br.metric("fitted_alpha_inter_us",
              to_seconds(f.alpha) * 1.0e6, 0.01);
    br.metric("fitted_bandwidth_inter_gbps", to_gbps(f.bandwidth), 0.01);
  }
  br.metric("spans_fitted", static_cast<double>(report.spans_fitted), 0.0);
  br.metric("round_trip_ok", round_trip_ok ? 1.0 : 0.0, 0.0);
  br.metric("replay_within_tolerance",
            replay.ok && replay.within_tolerance ? 1.0 : 0.0, 0.0);

  // Ungated context: residuals hover at numerical zero (the generator and
  // the feature model are the same code), so gating them relatively would
  // be noise-fragile.
  br.info("fit_rel_rms", report.fit_rel_rms);
  br.info("replay_rel_error", replay.rel_error);
  br.info("replay_max_share_delta", replay.max_share_delta);
  br.info("worst_recovery_rel", worst);
  br.info("trace_step_s", to_seconds(iter.iteration_time));
  br.info("spans_total", static_cast<double>(report.spans_total));
  br.info("ingest_spans_per_s", static_cast<double>(ingested.spans.size()) /
                                    std::max(ingest_s, 1e-9));
  br.info("ingest_mb_per_s", static_cast<double>(jsonl.size()) /
                                 (1024.0 * 1024.0) /
                                 std::max(ingest_s, 1e-9));
  if (!br.write()) {
    std::fprintf(stderr, "cannot write BENCH_calibration.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_calibration.json\n");
  return round_trip_ok && replay.ok && replay.within_tolerance ? 0 : 1;
}
