// Reproduces Figure 11: a weeks-long production run of a multi-hundred-
// billion-parameter model on 10,000+ GPUs. The loss keeps converging while
// MegaScale's robust training framework repairs and recovers the job more
// than 100 times; >90% of faults are handled automatically and the
// effective-training-time ratio stays above 90%. The health view is rolled
// up by the telemetry TrainingDashboard fed from the workflow's registry.
#include <cstdio>

#include "bench/common.h"
#include "core/stats.h"
#include "core/table.h"
#include "ft/workflow.h"
#include "optim/trainer.h"
#include "telemetry/dashboard.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

using namespace ms;

int main() {
  std::printf(
      "=== Figure 11: production run, >10,000 GPUs, several weeks ===\n\n");

  telemetry::MetricsRegistry registry;
  telemetry::TrainingDashboard dashboard(&registry);

  // Throughput of the 12288-GPU MegaScale job (Table 2 conditions),
  // folded with the production cluster's machine-speed sample.
  auto job = bench::megascale_175b(12288, 6144);
  job.metrics = &registry;
  const auto base = engine::simulate_iteration(job);
  engine::StragglerPopulation pop;
  pop.slow_fraction = 0.005;
  pop.slow_factor = 1.10;
  pop.jitter_sigma = 0.01;
  Rng cluster_rng(0xC1D5);
  const int machines = job.gpus() / job.cluster.gpus_per_node;
  const auto speeds = engine::sample_machine_speeds(machines, pop, cluster_rng);
  const auto fold = engine::fold_stragglers(base, job, speeds);
  const double tokens_per_s =
      job.tokens_per_iteration() / to_seconds(fold.iteration_time);
  dashboard.record_step(job, base);

  ft::WorkflowConfig wf;
  wf.nodes = 12288 / 8;
  wf.metrics = &registry;
  const TimeNs duration = days(56.0);  // eight weeks
  Rng fault_rng(0xF11);
  auto faults = ft::draw_fault_schedule(duration, hours(9.0), wf.nodes,
                                        ft::default_fault_mix(), fault_rng);
  Rng run_rng(0xF12);
  const auto report = ft::run_robust_training(wf, duration, faults, run_rng);
  dashboard.record_health(report);

  // Loss trajectory: effective training time drives token progress; every
  // incident restarts the curve color in the paper — here we mark restarts.
  optim::ScalingLawLoss law(1.7, 12.0, 0.12, 1e9, 0xF13);
  Series loss_curve;
  loss_curve.name = "train loss";
  Series restart_marks;
  restart_marks.name = "restart";
  double tokens = 0;
  TimeNs cursor = 0;
  std::size_t incident_idx = 0;
  const TimeNs sample_every = hours(6.0);
  for (TimeNs t = 0; t < duration; t += sample_every) {
    TimeNs effective = sample_every;
    while (incident_idx < report.incidents.size()) {
      const auto& inc = report.incidents[incident_idx];
      const TimeNs at = inc.fault.at;
      if (at >= cursor + sample_every) break;
      effective -= std::min(effective, inc.downtime + inc.lost_progress);
      restart_marks.add(tokens / 1e12, law.loss_at(std::max(tokens, 1.0)));
      ++incident_idx;
    }
    tokens += tokens_per_s * to_seconds(effective);
    loss_curve.add(tokens / 1e12, law.loss_at(tokens));
    cursor += sample_every;
  }

  std::printf("loss vs trillions of tokens (restarts marked 'o'):\n%s\n",
              ascii_chart({loss_curve, restart_marks}, 76, 16).c_str());

  std::printf("--- telemetry dashboard (per-step + heartbeat health) ---\n");
  std::printf("%s\n", dashboard.report().c_str());

  Table t({"metric", "simulated", "paper"});
  t.add_row({"duration", Table::fmt(to_days(duration), 0) + " days",
             "several weeks"});
  t.add_row({"tokens trained", Table::fmt(tokens / 1e12, 2) + "T",
             "multi-trillion"});
  t.add_row({"restarts", Table::fmt_int(report.restarts), "over 100"});
  t.add_row({"auto detected+fixed",
             Table::fmt_pct(report.auto_detected_fraction), "over 90%"});
  t.add_row({"auto diagnosed", Table::fmt_pct(report.auto_diagnosed_fraction),
             "(within the >90%)"});
  // The paper's "<10 min detection + diagnostics" and "<15 min catch-up"
  // refer to the >90% of incidents the framework handles automatically; the
  // silent stragglers that need the §5 performance tooling take hours.
  TimeNs auto_detect = 0, auto_down = 0;
  int auto_count = 0;
  for (const auto& inc : report.incidents) {
    if (!inc.auto_detected) continue;
    auto_detect += inc.detect_latency;
    auto_down += inc.downtime;
    ++auto_count;
  }
  if (auto_count > 0) {
    auto_detect /= auto_count;
    auto_down /= auto_count;
  }
  t.add_row({"detect+diagnose (auto cases)",
             format_duration(auto_detect + TimeNs(wf.suite.total_duration())),
             "< 10 min"});
  t.add_row({"downtime per incident (auto cases)", format_duration(auto_down),
             "catch up < 15 min"});
  t.add_row({"effective training time",
             Table::fmt_pct(report.effective_time_ratio), "over 90%"});
  t.add_row({"checkpoints taken", Table::fmt_int(report.checkpoints_taken),
             "-"});
  t.print();

  // The same run, scrapeable: the workflow's counters land in the registry.
  const auto snapshot = registry.snapshot();
  const std::string prom = telemetry::prometheus_text(snapshot);
  std::printf("\ntelemetry registry: %zu series, %zu bytes of Prometheus text;"
              " ft_* sample lines:\n",
              snapshot.samples.size(), prom.size());
  int printed = 0;
  for (std::size_t pos = 0; pos < prom.size() && printed < 5;) {
    std::size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    const std::string line = prom.substr(pos, eol - pos);
    if (line.rfind("ft_", 0) == 0) {
      std::printf("  %s\n", line.c_str());
      ++printed;
    }
    pos = eol + 1;
  }
  return 0;
}
