// Reproduces Figure 11: a weeks-long production run of a multi-hundred-
// billion-parameter model on 10,000+ GPUs. The loss keeps converging while
// MegaScale's robust training framework repairs and recovers the job more
// than 100 times; >90% of faults are handled automatically and the
// effective-training-time ratio stays above 90%.
//
// This bench drives the full observability stack under a chaos schedule:
//   * ft::run_robust_training replays a production-shaped fail-stop
//     schedule (8 weeks, ~9 h cluster MTBF);
//   * extra chaos events — checkpoint-writer stalls, fabric link flaps and
//     silent stragglers — land on the same timeline;
//   * telemetry::RunLedger turns all of it into the per-interval
//     goodput/MFU/ETTR series of Figure 11 and must close with the ft
//     accounting to within 1%;
//   * a 12288-leaf telemetry::AggregationTree flushes the run's real
//     metric registry through the network cost model and must cost < 1%
//     of training bandwidth.
// Artifacts: fig11_ledger.jsonl (for `msdiag ledger`) and
// BENCH_fig11_production_run.json (for tools/bench_gate.py). Exits
// nonzero when a gate fails.
#include <cstdio>

#include <memory>

#include "bench/common.h"
#include "chaos/schedule.h"
#include "core/stats.h"
#include "core/table.h"
#include "diag/artifact.h"
#include "diag/blame.h"
#include "ft/workflow.h"
#include "net/ccsim_multi.h"
#include "net/fabric/observatory.h"
#include "optim/trainer.h"
#include "telemetry/aggregator.h"
#include "telemetry/dashboard.h"
#include "telemetry/exporters.h"
#include "telemetry/ledger.h"
#include "telemetry/metrics.h"
#include "telemetry/sketch.h"
#include "telemetry/trace.h"

using namespace ms;

namespace {

constexpr int kGpus = 12288;
constexpr int kBatch = 6144;
const TimeNs kDuration = days(56.0);  // eight weeks
const TimeNs kMtbf = hours(9.0);

/// Production-shaped chaos schedule: the ft fail-stop draw plus the event
/// classes the workflow does not model itself (extra checkpoint-writer
/// stalls, fabric link flaps, silent straggler windows).
chaos::FaultSchedule build_schedule(const std::vector<ft::FaultEvent>& fails,
                                    Rng& rng) {
  chaos::FaultSchedule sched;
  for (const auto& f : fails) {
    chaos::InjectedFault inj;
    inj.at = f.at;
    inj.kind = chaos::FaultKind::kFailStop;
    inj.node = f.node;
    inj.fail_type = f.type;
    sched.push_back(inj);
  }
  // Checkpoint-writer stalls: HDFS hiccups every ~4-5 days (§4.4).
  for (TimeNs t = hours(30.0); t < kDuration;
       t += hours(96.0) + seconds(rng.uniform(0.0, 24.0 * 3600.0))) {
    chaos::InjectedFault inj;
    inj.at = t;
    inj.kind = chaos::FaultKind::kCkptStall;
    inj.duration = minutes(rng.uniform(1.0, 4.0));
    sched.push_back(inj);
  }
  // Fabric link flaps: short stalls while routing converges (§3.6).
  for (TimeNs t = hours(12.0); t < kDuration;
       t += hours(110.0) + seconds(rng.uniform(0.0, 36.0 * 3600.0))) {
    chaos::InjectedFault inj;
    inj.at = t;
    inj.kind = chaos::FaultKind::kLinkFlap;
    inj.node = static_cast<int>(rng.next_u64() % 1536);
    inj.duration = seconds(rng.uniform(30.0, 300.0));
    sched.push_back(inj);
  }
  // Silent stragglers: one slow machine derates the whole job until the
  // §5.1 monitor catches it (~4 h observation window).
  for (TimeNs t = days(5.0); t < kDuration - hours(6.0);
       t += days(8.0) + seconds(rng.uniform(0.0, 3.0 * 24.0 * 3600.0))) {
    chaos::InjectedFault inj;
    inj.at = t;
    inj.kind = chaos::FaultKind::kStraggler;
    inj.node = static_cast<int>(rng.next_u64() % 1536);
    inj.duration = hours(4.0);
    inj.magnitude = rng.uniform(0.08, 0.20);
    sched.push_back(inj);
  }
  chaos::sort_schedule(sched);
  return sched;
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 11: production run, >10,000 GPUs, several weeks ===\n\n");

  telemetry::MetricsRegistry registry;
  telemetry::TrainingDashboard dashboard(&registry);

  // ---- steady state: one traced MegaScale step (Table 2 conditions) ----
  auto job = bench::megascale_175b(kGpus, kBatch);
  job.metrics = &registry;
  telemetry::Tracer tracer;
  job.tracer = &tracer;
  const auto base = engine::simulate_iteration(job);
  const auto fold = bench::run_with_cluster(job);
  dashboard.record_step(job, base);
  const auto diagnosis = diag::analyze_spans(tracer.spans());
  dashboard.record_diagnosis(diagnosis);

  // ---- chaos schedule + robust-training replay ----
  ft::WorkflowConfig wf;
  wf.nodes = kGpus / 8;
  wf.metrics = &registry;
  Rng fault_rng(0xF11);
  const auto fails = ft::draw_fault_schedule(kDuration, kMtbf, wf.nodes,
                                             ft::default_fault_mix(),
                                             fault_rng);
  Rng chaos_rng(0xF14);
  const auto schedule = build_schedule(fails, chaos_rng);
  std::printf("chaos schedule: %zu events (digest 0x%016llx), e.g.\n",
              schedule.size(),
              static_cast<unsigned long long>(chaos::schedule_digest(schedule)));
  for (std::size_t i = 0; i < schedule.size() && i < 3; ++i) {
    std::printf("  %s\n", chaos::describe(schedule[i]).c_str());
  }
  Rng run_rng(0xF12);
  const auto report = ft::run_robust_training(wf, kDuration, fails, run_rng);
  dashboard.record_health(report);

  // ---- the run ledger: Figure 11 as a time series ----
  telemetry::LedgerConfig lcfg;
  lcfg.duration = kDuration;
  lcfg.interval = hours(6.0);
  telemetry::RunLedger ledger(lcfg);
  telemetry::SteadyState steady;
  steady.step_time = fold.iteration_time;
  steady.mfu = fold.mfu;
  steady.tokens_per_second =
      job.tokens_per_iteration() / to_seconds(fold.iteration_time);
  ledger.set_steady_state(steady);
  ledger.ingest(report, wf.checkpoint_interval);
  ledger.record_step_diagnosis(diagnosis);
  TimeNs extra_hard = 0;  // chaos charges the workflow didn't model
  for (const auto& inj : schedule) {
    switch (inj.kind) {
      case chaos::FaultKind::kCkptStall:
        ledger.add_lost(inj.at, inj.duration,
                        telemetry::LostCause::kCkptStall);
        extra_hard += inj.duration;
        break;
      case chaos::FaultKind::kLinkFlap:
        ledger.add_lost(inj.at, inj.duration,
                        telemetry::LostCause::kFabricStall);
        extra_hard += inj.duration;
        break;
      case chaos::FaultKind::kStraggler:
        ledger.add_slowdown(inj.at, inj.at + inj.duration,
                            1.0 + inj.magnitude,
                            telemetry::LostCause::kStraggler);
        break;
      default:
        break;  // fail-stops went through the workflow above
    }
  }
  const auto series = ledger.finalize();
  std::printf("\n%s\n", telemetry::render(series).c_str());

  // ---- loss trajectory driven by the ledger's goodput ----
  optim::ScalingLawLoss law(1.7, 12.0, 0.12, 1e9, 0xF13);
  Series loss_curve;
  loss_curve.name = "train loss";
  double tokens = 0;
  for (const auto& row : series.intervals) {
    tokens += row.goodput_tokens_per_second * to_seconds(row.end - row.begin);
    loss_curve.add(tokens / 1e12, law.loss_at(std::max(tokens, 1.0)));
  }
  std::printf("loss vs trillions of tokens:\n%s\n",
              ascii_chart({loss_curve}, 76, 12).c_str());

  // ---- aggregation tree: what does observing all this cost? ----
  telemetry::AggTreeConfig acfg;
  acfg.ranks = kGpus;
  acfg.ranks_per_host = job.cluster.gpus_per_node;
  acfg.hosts_per_pod = 32;
  acfg.cluster = job.cluster;
  acfg.network_efficiency = job.network_efficiency;
  telemetry::AggregationTree tree(acfg);
  const auto rank_sketch = telemetry::SketchSnapshot::from(registry.snapshot());
  // Each host's NIC daemon exports its local fabric series (per-link
  // utilization, queue depth, ECN and PFC counters from net/fabric)
  // alongside the rank metrics; a storm-shaped multi-hop run stands in for
  // one host's worth of link samples. The fabric sketch rides the host
  // leader rank's submission, so fabric sampling is charged against the
  // same <1% observability-overhead gate as everything else.
  net::fabric::FabricObservatory fabric_obs;
  {
    net::MultiCcParams fparams = net::victim_params(8);
    fparams.observatory = &fabric_obs;
    net::run_multi_cc_sim(fparams,
                          [] { return std::make_unique<net::Dcqcn>(); });
  }
  const auto fabric_sketch = fabric_obs.sketch();
  auto leader_sketch = rank_sketch;
  leader_sketch.merge(fabric_sketch);
  for (int r = 0; r < acfg.ranks; ++r) {
    tree.submit(r, r % acfg.ranks_per_host == 0 ? leader_sketch : rank_sketch);
  }
  const auto flush = tree.flush();
  Table at({"aggregation level", "senders", "bytes/flush", "stage latency"});
  for (const auto& level : flush.levels) {
    at.add_row({level.level, Table::fmt_int(level.senders),
                Table::fmt(static_cast<double>(level.bytes) / 1024.0, 1) + " KiB",
                format_duration(level.stage_latency)});
  }
  at.print();
  std::printf(
      "tree: %d hosts, %d pods; per-rank sketch %lld B; flush every %s\n"
      "propagation latency %s; per-host uplink %.3f MB/s = %.4f%% of "
      "training bandwidth\n\n",
      tree.hosts(), tree.pods(),
      static_cast<long long>(rank_sketch.encoded_bytes()),
      format_duration(acfg.flush_interval).c_str(),
      format_duration(flush.propagation_latency).c_str(),
      flush.per_host_uplink / 1e6, flush.overhead_fraction * 100.0);
  std::printf(
      "fabric observatory: %d links, %zu series, %lld B per host leader "
      "sketch\n\n",
      fabric_obs.link_count(), fabric_sketch.size(),
      static_cast<long long>(fabric_sketch.encoded_bytes()));

  std::printf("--- telemetry dashboard (per-step + heartbeat health) ---\n");
  std::printf("%s\n", dashboard.report().c_str());

  Table t({"metric", "simulated", "paper"});
  t.add_row({"duration", Table::fmt(to_days(kDuration), 0) + " days",
             "several weeks"});
  t.add_row({"tokens trained", Table::fmt(tokens / 1e12, 2) + "T",
             "multi-trillion"});
  t.add_row({"restarts", Table::fmt_int(report.restarts), "over 100"});
  t.add_row({"auto detected+fixed",
             Table::fmt_pct(report.auto_detected_fraction), "over 90%"});
  t.add_row({"effective training time",
             Table::fmt_pct(series.totals.ettr), "over 90%"});
  t.add_row({"telemetry overhead",
             Table::fmt_pct(flush.overhead_fraction, 3), "negligible"});
  t.print();

  // ---- artifacts ----
  const std::string ledger_path = "fig11_ledger.jsonl";
  if (!diag::write_text_file(ledger_path, telemetry::to_jsonl(series))) {
    std::fprintf(stderr, "fig11: cannot write %s\n", ledger_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu intervals; render with `msdiag ledger %s`)\n",
              ledger_path.c_str(), series.intervals.size(),
              ledger_path.c_str());

  // Perfetto-loadable trace of the steady-state step (the nightly job
  // uploads this next to the ledger, so a goodput regression comes with
  // the step timeline that produced the reference rate).
  const std::string trace_path = "fig11_step_trace.json";
  if (!diag::write_text_file(trace_path, telemetry::chrome_trace(tracer))) {
    std::fprintf(stderr, "fig11: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("wrote %s (steady-step Perfetto trace)\n", trace_path.c_str());

  bench::BenchReport br("fig11_production_run");
  br.config("gpus", kGpus);
  br.config("global_batch", kBatch);
  br.config("duration_days", to_days(kDuration));
  br.config("cluster_mtbf_hours", to_hours(kMtbf));
  br.config("flush_interval_ms", to_milliseconds(acfg.flush_interval));
  br.config("chaos_events", static_cast<double>(schedule.size()));
  br.metric("ettr", series.totals.ettr, 0.02);
  br.metric("goodput_fraction", series.totals.goodput_fraction, 0.02);
  br.metric("mfu_mean", series.totals.mfu_mean, 0.02);
  br.metric("restarts", report.restarts, 0.10);
  br.metric("auto_detected_fraction", report.auto_detected_fraction, 0.05);
  br.metric("tokens_trained_T", tokens / 1e12, 0.02);
  br.metric("telemetry_overhead_fraction", flush.overhead_fraction, 0.10);
  br.metric("agg_propagation_ms", to_milliseconds(flush.propagation_latency),
            0.10);
  br.info("ledger_intervals", static_cast<double>(series.intervals.size()));
  br.info("fabric_sketch_bytes",
          static_cast<double>(fabric_sketch.encoded_bytes()));

  // ---- gates ----
  int failures = 0;
  const double expected_ettr =
      report.effective_time_ratio -
      static_cast<double>(extra_hard) / static_cast<double>(kDuration);
  const double closure_err = std::abs(series.totals.ettr - expected_ettr);
  br.info("ettr_closure_error", closure_err);
  if (closure_err > 0.01) {
    std::fprintf(stderr,
                 "GATE FAIL: ledger ETTR %.6f vs ft accounting %.6f "
                 "(closure error %.6f > 0.01)\n",
                 series.totals.ettr, expected_ettr, closure_err);
    ++failures;
  }
  if (flush.overhead_fraction >= 0.01) {
    std::fprintf(stderr,
                 "GATE FAIL: telemetry overhead %.4f%% >= 1%% of training "
                 "bandwidth\n",
                 flush.overhead_fraction * 100.0);
    ++failures;
  }
  if (!br.write()) {
    std::fprintf(stderr, "fig11: cannot write BENCH artifact\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("gates: ledger/ft closure %.2e (<= 0.01), telemetry "
                "overhead %.4f%% (< 1%%) — OK\n",
                closure_err, flush.overhead_fraction * 100.0);
  }
  return failures == 0 ? 0 : 1;
}
