// Reproduces Figure 6 (inconsistent MFU across runs of the same job, caused
// by stochastic machine scheduling over a fleet with rare slow hosts) and
// Figure 12 (consistent, stable MFU after evicting stragglers and removing
// the problematic code segments whose growing launch stagger decayed MFU
// over time — §6.3).
#include <cstdio>

#include "bench/common.h"
#include "core/stats.h"
#include "core/table.h"
#include "engine/perturb.h"

using namespace ms;
using namespace ms::engine;

int main() {
  const auto cfg = bench::megascale_175b(12288, 6144);
  const auto base = simulate_iteration(cfg);
  const int machines = cfg.gpus() / cfg.cluster.gpus_per_node;
  constexpr int kTrials = 4;
  constexpr int kSteps = 3000;

  PerturbConfig perturb;
  StragglerPopulation pop;  // 0.5% of hosts 10% slow

  bench::BenchReport br("fig6_fig12_stragglers");
  br.config("gpus", cfg.gpus());
  br.config("trials", kTrials);
  double fig6_lo = 1.0, fig6_hi = 0.0, fig12_lo = 1.0, fig12_hi = 0.0;

  std::printf(
      "=== Figure 6: inconsistent MFU across runs (stragglers + problematic "
      "code) ===\n\n");
  std::vector<Series> fig6;
  Table t6({"trial", "slow machines", "mean MFU", "MFU drift (first->last "
            "500 steps)"});
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0x600 + static_cast<std::uint64_t>(trial));
    auto speeds = sample_machine_speeds(machines, pop, rng);
    const auto fold = fold_stragglers(base, cfg, speeds);
    auto series = mfu_over_time(base, cfg, perturb, kSteps,
                                /*problematic_code=*/true, speeds, rng);
    series.name = "trial " + std::to_string(trial);
    double mean = 0;
    for (double v : series.y) mean += v;
    mean /= static_cast<double>(series.y.size());
    double head = 0;
    for (int i = 0; i < 500; ++i) head += series.y[static_cast<std::size_t>(i)];
    head /= 500.0;
    fig6_lo = std::min(fig6_lo, mean);
    fig6_hi = std::max(fig6_hi, mean);
    t6.add_row({Table::fmt_int(trial), Table::fmt_int(fold.slow_machines),
                Table::fmt_pct(mean),
                Table::fmt_pct(series.tail_mean(500) - head)});
    fig6.push_back(std::move(series));
  }
  std::printf("%s\n", ascii_chart(fig6, 76, 14).c_str());
  t6.print();

  std::printf(
      "\n=== Figure 12: stable MFU after evicting stragglers and fixing the "
      "code ===\n\n");
  std::vector<Series> fig12;
  Table t12({"trial", "mean MFU", "MFU drift"});
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0x1200 + static_cast<std::uint64_t>(trial));
    // Stragglers evicted: healthy jitter only. Problematic code removed.
    StragglerPopulation healthy = pop;
    healthy.slow_fraction = 0.0;
    auto speeds = sample_machine_speeds(machines, healthy, rng);
    auto series = mfu_over_time(base, cfg, perturb, kSteps,
                                /*problematic_code=*/false, speeds, rng);
    series.name = "trial " + std::to_string(trial);
    double mean = 0;
    for (double v : series.y) mean += v;
    mean /= static_cast<double>(series.y.size());
    double head = 0;
    for (int i = 0; i < 500; ++i) head += series.y[static_cast<std::size_t>(i)];
    head /= 500.0;
    fig12_lo = std::min(fig12_lo, mean);
    fig12_hi = std::max(fig12_hi, mean);
    t12.add_row({Table::fmt_int(trial), Table::fmt_pct(mean),
                 Table::fmt_pct(series.tail_mean(500) - head)});
    fig12.push_back(std::move(series));
  }
  std::printf("%s\n", ascii_chart(fig12, 76, 14).c_str());
  t12.print();
  std::printf(
      "\npaper §6.3: removing ~0.5%% slow hosts gave ~0.7%% MFU back and "
      "eliminated the run-to-run spread; fixing garbage collection and "
      "fluctuating CPU code paths stopped the gradual MFU decline.\n");
  br.metric("fig6_mfu_spread", fig6_hi - fig6_lo, 0.50);
  br.metric("fig12_mfu_spread", fig12_hi - fig12_lo, 0.50);
  br.metric("fig12_mean_mfu", (fig12_lo + fig12_hi) / 2.0, 0.02);
  return br.write() ? 0 : 1;
}
