// Reproduces §4.2-4.3: anomaly detection paths and the self-check
// diagnostic suite — per-fault detection latency, per-test sensitivity,
// false-positive behaviour, and the end-to-end >90% auto-recovery target.
#include <cstdio>

#include "core/table.h"
#include "core/stats.h"
#include "ft/diagnostics.h"
#include "ft/driver_sim.h"
#include "ft/workflow.h"

using namespace ms;
using namespace ms::ft;

// All stochastic components derive their streams from this one root seed
// (core derive_seed), so the whole bench reproduces from a single number.
constexpr std::uint64_t kBenchSeed = 0x43;

int main() {
  std::printf("=== §4.2-4.3: detection and diagnostics ===\n\n");

  WorkflowConfig wf;
  Rng rng(derive_seed(kBenchSeed, "sec43.detect"));

  std::printf("--- detection path and latency per fault class ---\n");
  Table t({"fault", "detection path", "mean latency", "automatic"});
  for (FaultType type :
       {FaultType::kCudaError, FaultType::kSegFault, FaultType::kEccError,
        FaultType::kGpuHang, FaultType::kNicFlap, FaultType::kSlowGpu}) {
    RunningStat lat;
    const char* path = "";
    bool automatic = false;
    for (int i = 0; i < 200; ++i) {
      auto d = detect_fault(wf, type, rng);
      lat.add(to_seconds(d.latency));
      path = d.path;
      automatic = d.automatic;
    }
    t.add_row({fault_name(type), path,
               format_duration(seconds(lat.mean())),
               automatic ? "yes" : "no (§5 tooling)"});
  }
  t.print();

  std::printf("\n--- diagnostic suite sensitivity (measured over 4000 runs) ---\n");
  Table s({"fault", "loopback", "rnic-to-rnic", "nccl-all-to-all",
           "nccl-all-reduce", "suite (measured)", "suite (target)"});
  for (FaultType type :
       {FaultType::kCudaError, FaultType::kEccError, FaultType::kGpuHang,
        FaultType::kNicFlap, FaultType::kSlowGpu}) {
    int flagged = 0;
    constexpr int kTrials = 4000;
    SuiteConfig cfg;
    cfg.false_positive_rate = 0;
    for (int i = 0; i < kTrials; ++i) {
      if (run_diagnostic_suite({true, type}, cfg, rng).node_flagged) ++flagged;
    }
    s.add_row({fault_name(type),
               Table::fmt_pct(test_sensitivity("loopback", type), 0),
               Table::fmt_pct(test_sensitivity("rnic-to-rnic", type), 0),
               Table::fmt_pct(test_sensitivity("nccl-all-to-all", type), 0),
               Table::fmt_pct(test_sensitivity("nccl-all-reduce", type), 0),
               Table::fmt_pct(static_cast<double>(flagged) / kTrials),
               Table::fmt_pct(fault_signature(type).diagnostic_detection)});
  }
  s.print();

  SuiteConfig suite;
  int false_flags = 0;
  constexpr int kHealthyTrials = 20000;
  for (int i = 0; i < kHealthyTrials; ++i) {
    if (run_diagnostic_suite({false, FaultType::kCudaError}, suite, rng)
            .node_flagged) {
      ++false_flags;
    }
  }
  std::printf(
      "\nsuite duration: %s; healthy-node false-positive rate: %.2f%% "
      "(paper: lightweight yet comprehensive, low false positives)\n",
      format_duration(suite.total_duration()).c_str(),
      100.0 * false_flags / kHealthyTrials);

  std::printf("\n--- end-to-end (2-week run, 8h cluster MTBF, 256 nodes) ---\n");
  WorkflowConfig wf2;
  wf2.nodes = 256;
  Rng fault_rng(derive_seed(kBenchSeed, "sec43.workflow.faults"));
  auto faults = draw_fault_schedule(days(14.0), hours(8.0), wf2.nodes,
                                    default_fault_mix(), fault_rng);
  Rng run_rng(derive_seed(kBenchSeed, "sec43.workflow.run"));
  auto report = run_robust_training(wf2, days(14.0), faults, run_rng);
  Table e({"metric", "value", "paper"});
  e.add_row({"incidents", Table::fmt_int(report.restarts), "-"});
  e.add_row({"auto detected", Table::fmt_pct(report.auto_detected_fraction),
             "> 90%"});
  e.add_row({"auto diagnosed", Table::fmt_pct(report.auto_diagnosed_fraction),
             "(within the > 90%)"});
  e.add_row({"effective training time",
             Table::fmt_pct(report.effective_time_ratio), "> 90%"});
  e.print();

  std::printf(
      "\n--- event-driven protocol run (Figure 5 as an event program) ---\n");
  DriverSimConfig dcfg;
  dcfg.nodes = 32;
  dcfg.spares = 3;
  Rng ev_fault_rng(derive_seed(kBenchSeed, "sec43.driver.faults"));
  auto ev_faults = draw_fault_schedule(days(2.0), hours(4.0), dcfg.nodes,
                                       default_fault_mix(), ev_fault_rng);
  Rng ev_rng(derive_seed(kBenchSeed, "sec43.driver.run"));
  auto ev = run_driver_sim(dcfg, days(2.0), ev_faults, ev_rng);
  std::printf(
      "32 nodes, 2 days, 4h MTBF: %zu heartbeats processed, %zu incidents "
      "recovered, %.1f%% effective time, %d spare-pool stalls\n",
      static_cast<std::size_t>(ev.heartbeats_processed), ev.incidents.size(),
      ev.effective_fraction * 100.0, ev.spare_pool_exhausted_events);
  for (const auto& incident : ev.incidents) {
    std::printf("  t=%-9s node %2d %-10s alarm after %-9s resumed after %s\n",
                format_duration(incident.fault_at).c_str(), incident.node,
                fault_name(incident.type),
                format_duration(incident.alarm_at - incident.fault_at).c_str(),
                format_duration(incident.resumed_at - incident.alarm_at).c_str());
  }
  return 0;
}
