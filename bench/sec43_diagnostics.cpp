// Reproduces §4.2-4.3: anomaly detection paths and the self-check
// diagnostic suite — per-fault detection latency, per-test sensitivity,
// false-positive behaviour, and the end-to-end >90% auto-recovery target.
// Closes with the §5 analyzer gauntlet: seeded straggler / slow-link
// fixtures run through the critical-path blame attribution, scored for
// top-1 accuracy and analyzer runtime, emitted as BENCH_sec43_diagnostics.json
// for the nightly CI trend line.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/table.h"
#include "core/stats.h"
#include "diag/artifact.h"
#include "diag/blame.h"
#include "engine/job.h"
#include "ft/diagnostics.h"
#include "ft/driver_sim.h"
#include "ft/workflow.h"
#include "telemetry/trace.h"

using namespace ms;
using namespace ms::ft;

namespace {

engine::JobConfig diag_fixture_config() {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par.tp = 8;
  cfg.par.pp = 8;
  cfg.par.vpp = 6;
  cfg.par.dp = 4;
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

struct DiagCase {
  const char* kind;   // "straggler" | "slow-link"
  int injected;       // rank (straggler) or sending stage (slow-link)
  double factor;
};

/// Runs one seeded fixture through trace -> analyze; returns (diagnosis,
/// analyzer wall-ms). The trace generation is not timed — only the
/// post-mortem analysis the §5 tooling actually performs.
std::pair<diag::StepDiagnosis, double> run_case(const DiagCase& c) {
  auto cfg = diag_fixture_config();
  const auto pp = static_cast<std::size_t>(cfg.par.pp);
  if (std::string(c.kind) == "straggler") {
    cfg.stage_speed.assign(pp, 1.0);
    cfg.stage_speed[static_cast<std::size_t>(c.injected)] = c.factor;
  } else {
    cfg.overlap.pp_decouple = false;  // expose the link (Megatron-style PP)
    cfg.link_speed.assign(pp, 1.0);
    cfg.link_speed[static_cast<std::size_t>(c.injected)] = c.factor;
  }
  telemetry::Tracer tracer;
  cfg.tracer = &tracer;
  engine::simulate_iteration(cfg);
  const auto spans = tracer.spans();
  const auto t0 = std::chrono::steady_clock::now();
  auto d = diag::analyze_spans(spans);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return {std::move(d), ms};
}

bool top1_correct(const DiagCase& c, const diag::StepDiagnosis& d) {
  if (d.blame.empty()) return false;
  const auto& top = d.blame.front();
  if (std::string(c.kind) == "straggler") {
    return top.cause == diag::SegmentKind::kStragglerWait &&
           top.rank == c.injected;
  }
  return top.cause == diag::SegmentKind::kSlowLink &&
         top.link.rfind(std::to_string(c.injected) + "->", 0) == 0;
}

}  // namespace

// All stochastic components derive their streams from this one root seed
// (core derive_seed), so the whole bench reproduces from a single number.
constexpr std::uint64_t kBenchSeed = 0x43;

int main() {
  std::printf("=== §4.2-4.3: detection and diagnostics ===\n\n");

  ms::bench::BenchReport br("sec43_diagnostics");
  WorkflowConfig wf;
  Rng rng(derive_seed(kBenchSeed, "sec43.detect"));

  std::printf("--- detection path and latency per fault class ---\n");
  Table t({"fault", "detection path", "mean latency", "automatic"});
  for (FaultType type :
       {FaultType::kCudaError, FaultType::kSegFault, FaultType::kEccError,
        FaultType::kGpuHang, FaultType::kNicFlap, FaultType::kSlowGpu}) {
    RunningStat lat;
    const char* path = "";
    bool automatic = false;
    for (int i = 0; i < 200; ++i) {
      auto d = detect_fault(wf, type, rng);
      lat.add(to_seconds(d.latency));
      path = d.path;
      automatic = d.automatic;
    }
    t.add_row({fault_name(type), path,
               format_duration(seconds(lat.mean())),
               automatic ? "yes" : "no (§5 tooling)"});
  }
  t.print();

  std::printf("\n--- diagnostic suite sensitivity (measured over 4000 runs) ---\n");
  Table s({"fault", "loopback", "rnic-to-rnic", "nccl-all-to-all",
           "nccl-all-reduce", "suite (measured)", "suite (target)"});
  for (FaultType type :
       {FaultType::kCudaError, FaultType::kEccError, FaultType::kGpuHang,
        FaultType::kNicFlap, FaultType::kSlowGpu}) {
    int flagged = 0;
    constexpr int kTrials = 4000;
    SuiteConfig cfg;
    cfg.false_positive_rate = 0;
    for (int i = 0; i < kTrials; ++i) {
      if (run_diagnostic_suite({true, type}, cfg, rng).node_flagged) ++flagged;
    }
    s.add_row({fault_name(type),
               Table::fmt_pct(test_sensitivity("loopback", type), 0),
               Table::fmt_pct(test_sensitivity("rnic-to-rnic", type), 0),
               Table::fmt_pct(test_sensitivity("nccl-all-to-all", type), 0),
               Table::fmt_pct(test_sensitivity("nccl-all-reduce", type), 0),
               Table::fmt_pct(static_cast<double>(flagged) / kTrials),
               Table::fmt_pct(fault_signature(type).diagnostic_detection)});
  }
  s.print();

  SuiteConfig suite;
  int false_flags = 0;
  constexpr int kHealthyTrials = 20000;
  for (int i = 0; i < kHealthyTrials; ++i) {
    if (run_diagnostic_suite({false, FaultType::kCudaError}, suite, rng)
            .node_flagged) {
      ++false_flags;
    }
  }
  std::printf(
      "\nsuite duration: %s; healthy-node false-positive rate: %.2f%% "
      "(paper: lightweight yet comprehensive, low false positives)\n",
      format_duration(suite.total_duration()).c_str(),
      100.0 * false_flags / kHealthyTrials);

  std::printf("\n--- end-to-end (2-week run, 8h cluster MTBF, 256 nodes) ---\n");
  WorkflowConfig wf2;
  wf2.nodes = 256;
  Rng fault_rng(derive_seed(kBenchSeed, "sec43.workflow.faults"));
  auto faults = draw_fault_schedule(days(14.0), hours(8.0), wf2.nodes,
                                    default_fault_mix(), fault_rng);
  Rng run_rng(derive_seed(kBenchSeed, "sec43.workflow.run"));
  auto report = run_robust_training(wf2, days(14.0), faults, run_rng);
  br.metric("workflow_restarts", report.restarts, 0.10);
  br.metric("workflow_auto_detected", report.auto_detected_fraction, 0.05);
  br.metric("workflow_ettr", report.effective_time_ratio, 0.02);
  Table e({"metric", "value", "paper"});
  e.add_row({"incidents", Table::fmt_int(report.restarts), "-"});
  e.add_row({"auto detected", Table::fmt_pct(report.auto_detected_fraction),
             "> 90%"});
  e.add_row({"auto diagnosed", Table::fmt_pct(report.auto_diagnosed_fraction),
             "(within the > 90%)"});
  e.add_row({"effective training time",
             Table::fmt_pct(report.effective_time_ratio), "> 90%"});
  e.print();

  std::printf(
      "\n--- event-driven protocol run (Figure 5 as an event program) ---\n");
  DriverSimConfig dcfg;
  dcfg.nodes = 32;
  dcfg.spares = 3;
  Rng ev_fault_rng(derive_seed(kBenchSeed, "sec43.driver.faults"));
  auto ev_faults = draw_fault_schedule(days(2.0), hours(4.0), dcfg.nodes,
                                       default_fault_mix(), ev_fault_rng);
  Rng ev_rng(derive_seed(kBenchSeed, "sec43.driver.run"));
  auto ev = run_driver_sim(dcfg, days(2.0), ev_faults, ev_rng);
  std::printf(
      "32 nodes, 2 days, 4h MTBF: %zu heartbeats processed, %zu incidents "
      "recovered, %.1f%% effective time, %d spare-pool stalls\n",
      static_cast<std::size_t>(ev.heartbeats_processed), ev.incidents.size(),
      ev.effective_fraction * 100.0, ev.spare_pool_exhausted_events);
  for (const auto& incident : ev.incidents) {
    std::printf("  t=%-9s node %2d %-10s alarm after %-9s resumed after %s\n",
                format_duration(incident.fault_at).c_str(), incident.node,
                fault_name(incident.type),
                format_duration(incident.alarm_at - incident.fault_at).c_str(),
                format_duration(incident.resumed_at - incident.alarm_at).c_str());
  }

  std::printf("\n--- §5 blame attribution on seeded fixtures ---\n");
  const std::vector<DiagCase> cases = {
      {"straggler", 1, 1.5}, {"straggler", 3, 2.0}, {"straggler", 5, 2.0},
      {"straggler", 6, 3.0}, {"slow-link", 0, 16.0}, {"slow-link", 2, 16.0},
      {"slow-link", 4, 16.0},
  };
  Table bt({"fixture", "injected", "factor", "top-1 blame", "share",
            "analyzer"});
  RunningStat analyzer_ms;
  int correct = 0;
  std::ostringstream case_json;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto [d, ms] = run_case(c);
    analyzer_ms.add(ms);
    const bool ok = top1_correct(c, d);
    if (ok) ++correct;
    const auto& top = d.blame.front();
    const std::string who = top.link.empty()
                                ? "rank " + std::to_string(top.rank)
                                : "link " + top.link;
    bt.add_row({c.kind,
                std::to_string(c.injected),
                Table::fmt(c.factor, 1) + "x",
                std::string(diag::segment_kind_name(top.cause)) + " (" + who +
                    (ok ? ")" : ") MISS"),
                Table::fmt_pct(top.share),
                Table::fmt(ms, 1) + "ms"});
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s    {\"kind\":\"%s\",\"injected\":%d,\"factor\":%.1f,"
                  "\"top_cause\":\"%s\",\"top_rank\":%d,\"top_link\":\"%s\","
                  "\"share\":%.4f,\"correct\":%s}",
                  i ? ",\n" : "", c.kind, c.injected, c.factor,
                  diag::segment_kind_name(top.cause), top.rank,
                  top.link.c_str(), top.share, ok ? "true" : "false");
    case_json << line;
  }
  bt.print();

  // Determinism gate: the same fixture twice must produce bit-identical
  // blame digests (the §5 acceptance criterion for the analyzer).
  const auto d1 = run_case(cases[1]).first;
  const auto d2 = run_case(cases[1]).first;
  const bool deterministic = d1.digest == d2.digest;
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(cases.size());
  std::printf(
      "blame top-1 accuracy: %d/%zu (%.0f%%); analyzer %.1fms mean; "
      "digest deterministic: %s\n",
      correct, cases.size(), accuracy * 100.0, analyzer_ms.mean(),
      deterministic ? "yes" : "NO");

  br.metric("blame_top1_accuracy", accuracy, 0.0);
  br.metric("digest_deterministic", deterministic ? 1.0 : 0.0, 0.0);
  br.info("analyzer_mean_ms", analyzer_ms.mean());
  br.info("analyzer_max_ms", analyzer_ms.max());
  (void)case_json;
  if (!br.write()) {
    std::fprintf(stderr, "failed to write BENCH artifact\n");
    return 1;
  }
  std::printf("wrote BENCH_sec43_diagnostics.json\n");
  return accuracy == 1.0 && deterministic ? 0 : 1;
}
