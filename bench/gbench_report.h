// google-benchmark adapter for the canonical BENCH_*.json artifact.
//
// The micro benches measure real wall-clock on whatever machine runs them,
// so their numbers are recorded as ungated `info` values (bench_gate never
// fails on them) — but the artifact itself is the same shape as every other
// bench's, so tooling can treat the directory uniformly. Use via:
//
//   #include "bench/gbench_report.h"
//   BENCHMARK(...);
//   MS_GBENCH_MAIN("micro_operators")
//
// which replaces benchmark_main's main(): console output stays identical,
// plus BENCH_<name>.json lands in the working directory.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/common.h"

namespace ms::bench {

/// ConsoleReporter that also folds every per-iteration run into a
/// BenchReport as `<name>_ns` info values.
class GBenchCapture : public benchmark::ConsoleReporter {
 public:
  explicit GBenchCapture(BenchReport& br) : br_(br) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      br_.info(sanitize(run.benchmark_name()) + "_ns",
               run.GetAdjustedRealTime());
    }
  }

 private:
  static std::string sanitize(std::string name) {
    for (char& c : name) {
      if (c == '/' || c == ':' || c == ' ') c = '_';
    }
    return name;
  }

  BenchReport& br_;
};

}  // namespace ms::bench

#define MS_GBENCH_MAIN(name)                                          \
  int main(int argc, char** argv) {                                   \
    ::benchmark::Initialize(&argc, argv);                             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {       \
      return 1;                                                       \
    }                                                                 \
    ::ms::bench::BenchReport br(name);                                \
    ::ms::bench::GBenchCapture reporter(br);                          \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                   \
    ::benchmark::Shutdown();                                          \
    return br.write() ? 0 : 1;                                        \
  }
