// Shared configuration for the bench binaries: paper-faithful job configs
// and a fabric-derived network-efficiency model.
#pragma once

#include <map>

#include "engine/job.h"
#include "engine/perturb.h"
#include "net/ecmp.h"
#include "net/topology.h"

namespace ms::bench {

/// Effective network efficiency at a given cluster size, derived from the
/// ECMP conflict analysis: a CLOS fabric proportional to the job is built,
/// permutation traffic is routed, and the mean attained throughput fraction
/// becomes the collective model's bandwidth derating. Larger jobs span more
/// pods, ascend more tiers and collide more — the §3.6/§6.1 scale effect.
inline double network_efficiency_for(int gpus) {
  static std::map<int, double> cache;
  auto it = cache.find(gpus);
  if (it != cache.end()) return it->second;

  net::ClosParams p;
  p.hosts = std::max(16, gpus / 8);
  p.nics_per_host = 8;
  p.hosts_per_tor = 64;
  p.pods = std::max(1, p.hosts / 256);
  p.aggs_per_pod = 8;
  p.spines_per_plane = 8;
  net::ClosTopology topo(p);

  double total = 0;
  constexpr int kTrials = 3;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(0xEC3Fu + static_cast<std::uint64_t>(t));
    auto flows = net::permutation_traffic(topo, rng);
    total += net::analyze_ecmp(topo, flows).mean_throughput_frac;
  }
  const double eff = total / kTrials;
  cache[gpus] = eff;
  return eff;
}

/// Megatron-LM baseline: serial transformer block, full attention, naive
/// attention/LayerNorm/GeLU kernels, no MegaScale overlap.
inline engine::JobConfig megatron_175b(int gpus, int batch) {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = gpus / 64,
                                     .vpp = 6};
  cfg.global_batch = batch;
  cfg.ops = model::OperatorProfile::megatron_baseline();
  cfg.overlap = engine::OverlapOptions::megatron_lm();
  cfg.network_efficiency = network_efficiency_for(gpus);
  return cfg;
}

/// Full MegaScale: PTB + SWA + FlashAttention-2 + fused kernels + all
/// overlap techniques + async data pipeline.
inline engine::JobConfig megascale_175b(int gpus, int batch) {
  engine::JobConfig cfg = megatron_175b(gpus, batch);
  cfg.model.parallel_block = true;
  cfg.model.attention = model::AttentionKind::kSlidingWindow;
  cfg.model.window = 512;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

/// 530B variants (Table 1: 105 layers, hidden 20480, TP 8, PP 35, vpp 3).
inline engine::JobConfig megatron_530b(int gpus, int batch) {
  engine::JobConfig cfg;
  cfg.model = model::config_530b();
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 35, .dp = gpus / 280,
                                     .vpp = 3};
  cfg.global_batch = batch;
  cfg.ops = model::OperatorProfile::megatron_baseline();
  cfg.overlap = engine::OverlapOptions::megatron_lm();
  cfg.network_efficiency = network_efficiency_for(gpus);
  return cfg;
}

inline engine::JobConfig megascale_530b(int gpus, int batch) {
  engine::JobConfig cfg = megatron_530b(gpus, batch);
  cfg.model.parallel_block = true;
  cfg.model.attention = model::AttentionKind::kSlidingWindow;
  cfg.model.window = 512;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

/// Iteration result folded with a deterministic sample of the production
/// cluster's machine-speed population (§5.1: stochastic scheduling over a
/// fleet with ~0.5% slow hosts). Seed fixed so tables are reproducible.
inline engine::StragglerFold run_with_cluster(const engine::JobConfig& cfg,
                                              std::uint64_t seed = 0xC1D5) {
  const auto base = engine::simulate_iteration(cfg);
  engine::StragglerPopulation pop;
  pop.slow_fraction = 0.005;
  pop.slow_factor = 1.10;
  pop.jitter_sigma = 0.01;
  Rng rng(seed);
  const int machines = cfg.gpus() / cfg.cluster.gpus_per_node;
  auto speeds = engine::sample_machine_speeds(machines, pop, rng);
  return engine::fold_stragglers(base, cfg, speeds);
}

}  // namespace ms::bench
