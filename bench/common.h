// Shared configuration for the bench binaries: paper-faithful job configs,
// a fabric-derived network-efficiency model, and the canonical BENCH_*.json
// artifact every bench emits for tools/bench_gate.py.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "check/digest.h"
#include "core/json.h"
#include "engine/job.h"
#include "engine/perturb.h"
#include "plan/planner.h"

namespace ms::bench {

/// Canonical machine-readable bench artifact. Every bench binary builds one
/// of these next to its human tables and calls write() before exiting, so
/// CI always finds BENCH_<name>.json in the working directory and
/// tools/bench_gate.py can diff it against bench/baselines/.
///
///   {"bench": "...", "config": {...}, "metrics": {...},
///    "tolerances": {...}, "info": {...}, "digest": "0x..."}
///
/// `metrics` are regression-gated (each with a per-metric relative
/// tolerance); `info` values are recorded but never gated (wall-clock,
/// host-dependent numbers); `config` pins the shape that produced them.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void config(const std::string& key, double value) {
    config_[key] = fmt_number(value);
  }
  void config(const std::string& key, const std::string& value) {
    config_[key] = '"' + json::escape(value) + '"';
  }

  /// Gated metric: bench_gate fails when a fresh run drifts more than
  /// rel_tol (relative) from the committed baseline.
  void metric(const std::string& key, double value, double rel_tol = 0.05) {
    metrics_[key] = value;
    tolerances_[key] = rel_tol;
  }

  /// Ungated context (wall-clock, machine-dependent values).
  void info(const std::string& key, double value) { info_[key] = value; }

  std::string to_json() const {
    check::Digest d;
    d.fold(std::string_view(name_));
    for (const auto& [key, value] : metrics_) {
      d.fold(std::string_view(key));
      // Fold the rendered decimal, not raw bits: survives JSON round-trips.
      d.fold(std::string_view(fmt_number(value)));
    }
    std::string out = "{\"bench\":\"" + json::escape(name_) + "\"";
    out += ",\"config\":" + raw_object(config_);
    out += ",\"metrics\":" + num_object(metrics_);
    out += ",\"tolerances\":" + num_object(tolerances_);
    out += ",\"info\":" + num_object(info_);
    char digest[24];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(d.value()));
    out += std::string(",\"digest\":\"") + digest + "\"}";
    return out;
  }

  /// Writes BENCH_<name>.json in the current directory; returns success.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) return false;
    out << to_json() << '\n';
    return static_cast<bool>(out);
  }

 private:
  static std::string fmt_number(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  static std::string raw_object(const std::map<std::string, std::string>& m) {
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : m) {
      if (!first) out += ',';
      first = false;
      out += '"' + json::escape(key) + "\":" + value;
    }
    return out + "}";
  }
  static std::string num_object(const std::map<std::string, double>& m) {
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : m) {
      if (!first) out += ',';
      first = false;
      out += '"' + json::escape(key) + "\":" + fmt_number(value);
    }
    return out + "}";
  }

  std::string name_;
  std::map<std::string, std::string> config_;
  std::map<std::string, double> metrics_;
  std::map<std::string, double> tolerances_;
  std::map<std::string, double> info_;
};

/// Effective network efficiency at a given cluster size, derived from the
/// ECMP conflict analysis: a CLOS fabric proportional to the job is built,
/// permutation traffic is routed, and the mean attained throughput fraction
/// becomes the collective model's bandwidth derating. Larger jobs span more
/// pods, ascend more tiers and collide more — the §3.6/§6.1 scale effect.
/// The derivation lives with the plan auto-tuner (plan/planner.h) so
/// `msplan --net-eff auto` and the Table 2 benches price the fabric
/// identically.
inline double network_efficiency_for(int gpus) {
  return plan::fabric_network_efficiency(gpus);
}

/// Megatron-LM baseline: serial transformer block, full attention, naive
/// attention/LayerNorm/GeLU kernels, no MegaScale overlap.
inline engine::JobConfig megatron_175b(int gpus, int batch) {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = gpus / 64,
                                     .vpp = 6};
  cfg.global_batch = batch;
  cfg.ops = model::OperatorProfile::megatron_baseline();
  cfg.overlap = engine::OverlapOptions::megatron_lm();
  cfg.network_efficiency = network_efficiency_for(gpus);
  return cfg;
}

/// Full MegaScale: PTB + SWA + FlashAttention-2 + fused kernels + all
/// overlap techniques + async data pipeline.
inline engine::JobConfig megascale_175b(int gpus, int batch) {
  engine::JobConfig cfg = megatron_175b(gpus, batch);
  cfg.model.parallel_block = true;
  cfg.model.attention = model::AttentionKind::kSlidingWindow;
  cfg.model.window = 512;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

/// 530B variants (Table 1: 105 layers, hidden 20480, TP 8, PP 35, vpp 3).
inline engine::JobConfig megatron_530b(int gpus, int batch) {
  engine::JobConfig cfg;
  cfg.model = model::config_530b();
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 35, .dp = gpus / 280,
                                     .vpp = 3};
  cfg.global_batch = batch;
  cfg.ops = model::OperatorProfile::megatron_baseline();
  cfg.overlap = engine::OverlapOptions::megatron_lm();
  cfg.network_efficiency = network_efficiency_for(gpus);
  return cfg;
}

inline engine::JobConfig megascale_530b(int gpus, int batch) {
  engine::JobConfig cfg = megatron_530b(gpus, batch);
  cfg.model.parallel_block = true;
  cfg.model.attention = model::AttentionKind::kSlidingWindow;
  cfg.model.window = 512;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

/// Iteration result folded with a deterministic sample of the production
/// cluster's machine-speed population (§5.1: stochastic scheduling over a
/// fleet with ~0.5% slow hosts). Seed fixed so tables are reproducible.
inline engine::StragglerFold run_with_cluster(const engine::JobConfig& cfg,
                                              std::uint64_t seed = 0xC1D5) {
  const auto base = engine::simulate_iteration(cfg);
  engine::StragglerPopulation pop;
  pop.slow_fraction = 0.005;
  pop.slow_factor = 1.10;
  pop.jitter_sigma = 0.01;
  Rng rng(seed);
  const int machines = cfg.gpus() / cfg.cluster.gpus_per_node;
  auto speeds = engine::sample_machine_speeds(machines, pop, rng);
  return engine::fold_stragglers(base, cfg, speeds);
}

}  // namespace ms::bench
