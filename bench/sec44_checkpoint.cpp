// Reproduces §4.4: fast checkpointing and recovery.
//   * two-stage checkpoint stall vs synchronous writes;
//   * group-leader recovery reads vs every-GPU-reads;
//   * checkpoint-interval sweep: stall overhead vs expected lost progress.
#include <cstdio>

#include "bench/common.h"
#include "core/table.h"
#include "ft/checkpoint.h"

using namespace ms;
using namespace ms::ft;

int main() {
  std::printf("=== §4.4: fast checkpointing and recovery ===\n\n");
  CheckpointSpec spec;  // 175B on 12288 GPUs defaults

  std::printf("checkpoint payload: %.1f GB/GPU on-chip, %.1f TB unique\n\n",
              static_cast<double>(spec.bytes_per_gpu()) / 1e9,
              static_cast<double>(spec.unique_bytes()) / 1e12);

  bench::BenchReport br("sec44_checkpoint");
  br.metric("stall_sync_s", to_seconds(checkpoint_stall(spec, false)), 0.02);
  br.metric("stall_two_stage_s", to_seconds(checkpoint_stall(spec, true)),
            0.02);
  br.metric("recovery_leader_s", to_seconds(recovery_read_time(spec, true)),
            0.02);
  br.metric("recovery_all_read_s", to_seconds(recovery_read_time(spec, false)),
            0.02);
  Table t({"operation", "strategy", "time", "paper"});
  t.add_row({"checkpoint stall", "synchronous write to HDFS",
             format_duration(checkpoint_stall(spec, false)),
             "minutes (blocks training)"});
  t.add_row({"checkpoint stall", "two-stage (D2H, async flush)",
             format_duration(checkpoint_stall(spec, true)),
             "several seconds"});
  t.add_row({"background flush", "host memory -> HDFS",
             format_duration(background_flush_time(spec)),
             "off the critical path"});
  t.add_row({"recovery read", "every GPU reads its partition",
             format_duration(recovery_read_time(spec, false)),
             "HDFS-bandwidth bound"});
  t.add_row({"recovery read", "group leader reads + broadcast",
             format_duration(recovery_read_time(spec, true)),
             "catch up < 15 min total"});
  t.print();

  std::printf("\n--- checkpoint-interval sweep (per-fault expected cost) ---\n");
  Table s({"interval", "stalls/day", "stall time/day", "expected lost/fault"});
  for (double minutes_between : {5.0, 15.0, 30.0, 60.0, 240.0}) {
    const TimeNs interval = minutes(minutes_between);
    const double per_day = 24.0 * 60.0 / minutes_between;
    const TimeNs stall = checkpoint_stall(spec, true);
    s.add_row({format_duration(interval), Table::fmt(per_day, 0),
               format_duration(static_cast<TimeNs>(per_day *
                                                   static_cast<double>(stall))),
               format_duration(expected_lost_progress(interval))});
  }
  s.print();
  std::printf(
      "\nwith a seconds-level stall, frequent checkpointing is nearly free "
      "while halving the interval halves the expected redo per fault — the "
      "paper's motivation for raising checkpoint frequency.\n");

  std::printf("\n--- Young/Daly optimal interval ---\n");
  Table o({"checkpoint stall", "cluster MTBF", "optimal interval",
           "overhead at optimum"});
  for (double mtbf_h : {2.0, 9.0, 24.0}) {
    for (bool two_stage : {false, true}) {
      const TimeNs stall = checkpoint_stall(spec, two_stage);
      const TimeNs opt = optimal_checkpoint_interval(stall, hours(mtbf_h));
      o.add_row({std::string(two_stage ? "two-stage " : "synchronous ") +
                     format_duration(stall),
                 format_duration(hours(mtbf_h)), format_duration(opt),
                 Table::fmt_pct(
                     checkpoint_overhead_fraction(opt, stall, hours(mtbf_h)))});
    }
  }
  o.print();
  std::printf(
      "two-stage checkpointing moves the optimum from hourly to every few "
      "minutes and cuts the unavoidable overhead several-fold.\n");
  br.metric("optimal_interval_two_stage_9h_s",
            to_seconds(optimal_checkpoint_interval(
                checkpoint_stall(spec, true), hours(9.0))),
            0.02);
  return br.write() ? 0 : 1;
}
