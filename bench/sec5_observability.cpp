// Reproduces §5 (Figures 7 and 8): the observability toolkit in action.
//   * Figure 7: per-machine performance heat map with straggler marking,
//     and the 3D-parallel visualization of a selected rank;
//   * Figure 8: unified pipeline timeline built from the engine's spans —
//     now routed through the telemetry tracer instead of ad-hoc copies;
//   * the per-step TrainingDashboard report rolling the same data up;
//   * the exporters: Prometheus text, JSONL event log, Chrome trace;
//   * §5.2 case study: hang localization from "who logged a blocked op".
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "diag/heatmap.h"
#include "diag/skew.h"
#include "diag/timeline.h"
#include "diag/viz3d.h"
#include "engine/perturb.h"
#include "telemetry/dashboard.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

using namespace ms;

int main() {
  std::printf("=== §5: deep observability ===\n\n");

  telemetry::MetricsRegistry registry;
  telemetry::Tracer tracer;
  telemetry::TrainingDashboard dashboard(&registry);

  // ---------------- Figure 7: heat map ----------------
  std::printf("--- Figure 7: performance heat map (64 machines) ---\n");
  diag::PerformanceHeatmap heatmap;
  engine::StragglerPopulation pop;
  pop.slow_fraction = 0.0;  // place the straggler deterministically
  Rng rng(0x500);
  auto speeds = engine::sample_machine_speeds(64, pop, rng);
  speeds[23] *= 1.10;  // the §6.3 host: ~10% slower on identical work
  for (int machine = 0; machine < 64; ++machine) {
    for (int step = 0; step < 30; ++step) {
      const double noise = 1.0 + 0.004 * rng.normal();
      const double fwd = 0.0104 * speeds[machine] * noise;
      const double bwd = 0.0209 * speeds[machine] * noise;
      heatmap.add_sample(machine, "fwd", fwd);
      heatmap.add_sample(machine, "bwd", bwd);
      // Same CUDA-event stream feeds the dashboard's straggler view.
      dashboard.add_machine_sample(machine, "fwd", fwd);
      dashboard.add_machine_sample(machine, "bwd", bwd);
    }
  }
  bench::BenchReport br("sec5_observability");
  const auto outliers = heatmap.outliers(0.05);
  br.metric("heatmap_stragglers_found", static_cast<double>(outliers.size()),
            0.0);
  std::printf("%s\n", heatmap.ascii(0.05).c_str());
  std::printf("stragglers detected:");
  for (int m : outliers) std::printf(" machine %d", m);
  std::printf("  (injected: machine 23)\n\n");

  // ---------------- Figure 8: unified timeline ----------------
  std::printf("--- Figure 8: pipeline timeline (one iteration, pp=4) ---\n");
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.model.layers = 48;
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 4, .dp = 1, .vpp = 2};
  cfg.global_batch = 8;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  cfg.tracer = &tracer;     // engine spans land in the telemetry sink
  cfg.metrics = &registry;  // per-op counters/histograms alongside
  const auto iter = engine::simulate_iteration(cfg);
  br.metric("timeline_step_s", to_seconds(iter.iteration_time), 0.02);
  br.metric("timeline_mfu", iter.mfu, 0.02);

  // Keep the lanes readable: compute + optimizer only.
  const auto trace = tracer.timeline([](const diag::TraceSpan& s) {
    return s.tag == "fwd" || s.tag == "bwd" || s.tag == "optimizer";
  });
  std::printf("%s\n",
              trace.render(0, iter.iteration_time, 100).c_str());
  for (int stage = 0; stage < 4; ++stage) {
    std::printf("stage %d bubble time: %s\n", stage,
                format_duration(
                    trace.idle_time(stage, 0, iter.iteration_time))
                    .c_str());
  }

  // ---------------- per-step dashboard ----------------
  std::printf("\n--- per-step training dashboard ---\n");
  dashboard.record_step(cfg, iter);
  std::printf("%s\n", dashboard.report().c_str());

  // ---------------- exporters ----------------
  std::printf("--- exporters: one substrate, three wire formats ---\n");
  const auto snapshot = registry.snapshot();
  const std::string prom = telemetry::prometheus_text(snapshot);
  const std::string jsonl = telemetry::jsonl_metrics(snapshot) +
                            telemetry::jsonl_spans(tracer.spans());
  const std::string chrome = telemetry::chrome_trace(tracer);
  std::printf("Prometheus text: %zu bytes over %zu series; sample lines:\n",
              prom.size(), snapshot.samples.size());
  int printed = 0;
  for (std::size_t pos = 0; pos < prom.size() && printed < 6;) {
    std::size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    const std::string line = prom.substr(pos, eol - pos);
    if (line.rfind("engine_", 0) == 0 || line.rfind("dashboard_", 0) == 0) {
      std::printf("  %s\n", line.c_str());
      ++printed;
    }
    pos = eol + 1;
  }
  std::printf("JSONL event log: %zu bytes (%zu spans + metric samples)\n",
              jsonl.size(), tracer.size());
  std::printf("Chrome trace JSON: %zu bytes -> chrome://tracing\n\n",
              chrome.size());
  br.metric("registry_series", static_cast<double>(snapshot.samples.size()),
            0.10);

  // ---------------- §5.2: 3D visualization + hang localization ----------
  std::printf("--- 3D parallel visualization (rank 20 of tp8 x dp2 x pp2) ---\n");
  parallel::ParallelConfig par3d{.tp = 8, .pp = 2, .dp = 2};
  diag::Parallel3DVisualizer viz(par3d);
  std::printf("%s\n", viz.describe(20).c_str());

  // ---------------- §6.3: launch-skew analysis ("MFU decreasing") --------
  std::printf("--- §6.3: reduce-scatter launch-skew analysis ---\n");
  diag::LaunchSkewAnalyzer skew;
  Rng walk_rng(0x63);
  double drift = 0.0;
  for (int step = 0; step < 400; ++step) {
    for (int rank = 0; rank < 8; ++rank) {
      TimeNs launch = step * seconds(11.0) +
                      static_cast<TimeNs>(walk_rng.uniform(0, 3e6));
      if (rank == 5) launch += seconds(drift);  // the problematic rank
      skew.record(step, rank, launch);
    }
    drift += std::fabs(walk_rng.normal(0.0, 0.0015));
  }
  std::printf(
      "skew at step 10: %s; at step 390: %s; trend: %+0.2f ms/step\n",
      format_duration(skew.skew_at(10)).c_str(),
      format_duration(skew.skew_at(390)).c_str(),
      skew.skew_growth_per_step() * 1e3);
  std::printf("drifting ranks:");
  for (int r : skew.drifting_ranks(1e-4)) std::printf(" %d", r);
  std::printf(
      "  (injected: rank 5)\n"
      "-> the §6.3 conclusion: launch stagger grows with steps; fix the\n"
      "   fluctuating code paths (GC, problematic CPU ops) on those ranks.\n\n");

  std::printf("--- hang localization: rank 12's GPU blocks an NCCL op ---\n");
  std::map<int, std::string> logs;
  for (int r = 0; r < par3d.world(); ++r) {
    if (r != 12) logs[r] = "blocked in dp-allgather / pp-recv";
  }
  auto suspects = viz.locate_hung_ranks(logs);
  std::printf("ranks that logged a blocked operation on timeout: %d of %d\n",
              static_cast<int>(logs.size()), par3d.world());
  std::printf("silent (suspect) ranks:");
  for (int s : suspects) std::printf(" %d", s);
  std::printf("   -> isolate and flag for maintenance (§4.1)\n");
  br.metric("hang_suspects", static_cast<double>(suspects.size()), 0.0);
  return br.write() ? 0 : 1;
}
