// Reproduces §5 (Figures 7 and 8): the observability toolkit in action.
//   * Figure 7: per-machine performance heat map with straggler marking,
//     and the 3D-parallel visualization of a selected rank;
//   * Figure 8: unified pipeline timeline built from the engine's spans;
//   * §5.2 case study: hang localization from "who logged a blocked op".
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "diag/heatmap.h"
#include "diag/skew.h"
#include "diag/timeline.h"
#include "diag/viz3d.h"
#include "engine/perturb.h"

using namespace ms;

int main() {
  std::printf("=== §5: deep observability ===\n\n");

  // ---------------- Figure 7: heat map ----------------
  std::printf("--- Figure 7: performance heat map (64 machines) ---\n");
  diag::PerformanceHeatmap heatmap;
  engine::StragglerPopulation pop;
  pop.slow_fraction = 0.0;  // place the straggler deterministically
  Rng rng(0x500);
  auto speeds = engine::sample_machine_speeds(64, pop, rng);
  speeds[23] *= 1.10;  // the §6.3 host: ~10% slower on identical work
  for (int machine = 0; machine < 64; ++machine) {
    for (int step = 0; step < 30; ++step) {
      const double noise = 1.0 + 0.004 * rng.normal();
      heatmap.add_sample(machine, "fwd", 0.0104 * speeds[machine] * noise);
      heatmap.add_sample(machine, "bwd", 0.0209 * speeds[machine] * noise);
    }
  }
  const auto outliers = heatmap.outliers(0.05);
  std::printf("%s\n", heatmap.ascii(0.05).c_str());
  std::printf("stragglers detected:");
  for (int m : outliers) std::printf(" machine %d", m);
  std::printf("  (injected: machine 23)\n\n");

  // ---------------- Figure 8: unified timeline ----------------
  std::printf("--- Figure 8: pipeline timeline (one iteration, pp=4) ---\n");
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.model.layers = 48;
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 4, .dp = 1, .vpp = 2};
  cfg.global_batch = 8;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  const auto iter = engine::simulate_iteration(cfg);

  diag::TimelineTrace trace;
  for (const auto& rec : iter.spans) {
    if (rec.tag != "fwd" && rec.tag != "bwd" && rec.tag != "optimizer") {
      continue;  // keep the lanes readable: compute + optimizer only
    }
    diag::TraceSpan span;
    span.rank = rec.stream / 4;  // 4 streams per pipeline stage
    span.name = rec.name;
    span.tag = rec.tag;
    span.start = rec.start;
    span.end = rec.end;
    trace.add(span);
  }
  std::printf("%s\n",
              trace.render(0, iter.iteration_time, 100).c_str());
  for (int stage = 0; stage < 4; ++stage) {
    std::printf("stage %d bubble time: %s\n", stage,
                format_duration(
                    trace.idle_time(stage, 0, iter.iteration_time))
                    .c_str());
  }

  // ---------------- §5.2: 3D visualization + hang localization ----------
  std::printf("\n--- 3D parallel visualization (rank 20 of tp8 x dp2 x pp2) ---\n");
  parallel::ParallelConfig par3d{.tp = 8, .pp = 2, .dp = 2};
  diag::Parallel3DVisualizer viz(par3d);
  std::printf("%s\n", viz.describe(20).c_str());

  // ---------------- §6.3: launch-skew analysis ("MFU decreasing") --------
  std::printf("--- §6.3: reduce-scatter launch-skew analysis ---\n");
  diag::LaunchSkewAnalyzer skew;
  Rng walk_rng(0x63);
  double drift = 0.0;
  for (int step = 0; step < 400; ++step) {
    for (int rank = 0; rank < 8; ++rank) {
      TimeNs launch = step * seconds(11.0) +
                      static_cast<TimeNs>(walk_rng.uniform(0, 3e6));
      if (rank == 5) launch += seconds(drift);  // the problematic rank
      skew.record(step, rank, launch);
    }
    drift += std::fabs(walk_rng.normal(0.0, 0.0015));
  }
  std::printf(
      "skew at step 10: %s; at step 390: %s; trend: %+0.2f ms/step\n",
      format_duration(skew.skew_at(10)).c_str(),
      format_duration(skew.skew_at(390)).c_str(),
      skew.skew_growth_per_step() * 1e3);
  std::printf("drifting ranks:");
  for (int r : skew.drifting_ranks(1e-4)) std::printf(" %d", r);
  std::printf(
      "  (injected: rank 5)\n"
      "-> the §6.3 conclusion: launch stagger grows with steps; fix the\n"
      "   fluctuating code paths (GC, problematic CPU ops) on those ranks.\n\n");

  std::printf("--- hang localization: rank 12's GPU blocks an NCCL op ---\n");
  std::map<int, std::string> logs;
  for (int r = 0; r < par3d.world(); ++r) {
    if (r != 12) logs[r] = "blocked in dp-allgather / pp-recv";
  }
  auto suspects = viz.locate_hung_ranks(logs);
  std::printf("ranks that logged a blocked operation on timeout: %d of %d\n",
              static_cast<int>(logs.size()), par3d.world());
  std::printf("silent (suspect) ranks:");
  for (int s : suspects) std::printf(" %d", s);
  std::printf("   -> isolate and flag for maintenance (§4.1)\n");
  return 0;
}
