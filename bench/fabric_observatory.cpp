// Fabric observatory bench (§3.6 / §5 observability): gates the telemetry
// layer's three load-bearing promises.
//   (a) localization — the PFC-storm victim chain and an ECMP hashing
//       conflict round must rank the injected bottleneck top-1, with the
//       detection latency and alarm mix pinned;
//   (b) cost — the sampling hooks are charged per simulator event
//       (wall-clock, info-only) and the sketch the host leader ships
//       through the aggregation tree is byte-pinned;
//   (c) passivity — simulator results with the observatory attached must be
//       bit-identical to a bare run, folded into a gated 0/1 metric.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/common.h"
#include "core/table.h"
#include "core/wallclock.h"
#include "net/ccsim_multi.h"
#include "net/ecmp.h"
#include "net/fabric/detectors.h"
#include "net/fabric/observatory.h"
#include "net/topology.h"

using namespace ms;
using namespace ms::net;
using namespace ms::net::fabric;

namespace {

constexpr std::uint64_t kBenchSeed = 0xFAB;

ClosParams small_fabric() {
  ClosParams p;
  p.hosts = 32;
  p.nics_per_host = 2;
  p.hosts_per_tor = 8;
  p.pods = 2;
  p.aggs_per_pod = 2;
  p.spines_per_plane = 2;
  return p;
}

void storm_section(ms::bench::BenchReport& br) {
  std::printf("--- (a) PFC-storm localization ---\n");
  auto params = victim_params(16);
  const auto bare =
      run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });

  FabricObservatory obs;
  params.observatory = &obs;
  const WallNs t0 = wallclock_ns();
  const auto observed =
      run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  const WallNs observed_wall = wallclock_ns() - t0;

  bool passive = bare.flow_goodput_frac == observed.flow_goodput_frac &&
                 bare.hop_pause_fraction == observed.hop_pause_fraction &&
                 bare.hop_pause_events == observed.hop_pause_events &&
                 bare.hop_max_queue == observed.hop_max_queue;

  FabricDetectorConfig det;
  det.queue_hot_bytes = params.pfc_pause;
  const auto report = detect_anomalies(obs, det);
  const std::string bottleneck =
      params.observatory_link_prefix + std::to_string(params.hops - 1);

  Table t({"link", "self-congested ms", "pause ms", "mean util"});
  for (const auto& score : report.ranked) {
    t.add_row({score.name, Table::fmt(to_milliseconds(score.self_congested)),
               Table::fmt(to_milliseconds(score.pause_time)),
               Table::fmt_pct(score.mean_util)});
  }
  t.print();
  std::printf("hottest: %s (expected %s), alarms: %zu, first at %.1f ms\n",
              report.hottest_link_name.c_str(), bottleneck.c_str(),
              report.alarms.size(), to_milliseconds(report.first_alarm));

  br.metric("storm_top1_correct",
            report.hottest_link_name == bottleneck ? 1.0 : 0.0, 0.0);
  br.metric("storm_passive", passive ? 1.0 : 0.0, 0.0);
  br.metric("storm_alarm_count", static_cast<double>(report.alarms.size()),
            0.0);
  br.metric("storm_first_alarm_ms", to_milliseconds(report.first_alarm), 0.02);
  br.metric("storm_self_congested_ms",
            to_milliseconds(report.ranked.front().self_congested), 0.02);
  br.metric("fabric_sketch_bytes",
            static_cast<double>(obs.sketch().encoded_bytes()), 0.0);
  br.info("storm_observed_wall_ms",
          wall_to_seconds(observed_wall) * 1e3);  // ms-lint: allow(unit-literal)

  // Digest stability: the same seeded run recorded twice must fold to the
  // same fabric digest (the chaos grader depends on this).
  FabricObservatory again;
  params.observatory = &again;
  run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  br.metric("storm_digest_stable", obs.digest() == again.digest() ? 1.0 : 0.0,
            0.0);
}

void rehash_section(ms::bench::BenchReport& br) {
  std::printf("\n--- (b) ECMP hashing-conflict localization ---\n");
  ClosTopology topo(small_fabric());
  Rng rng(derive_seed(kBenchSeed, "fabric.rehash"));
  const auto flows = ring_traffic(topo, 16, false, rng);

  FabricObservatory obs;
  const auto report = analyze_ecmp(topo, flows, &obs);
  FabricDetectorConfig det;
  det.incast_fan_in = 2;  // any shared uplink counts as a conflict here
  const auto fabric_report = detect_anomalies(obs, det);

  std::printf("flows: %d, max per uplink: %d, hottest: %s\n", report.flows,
              report.max_flows_per_uplink,
              fabric_report.hottest_link_name.c_str());

  br.metric("rehash_max_flows_per_uplink",
            static_cast<double>(report.max_flows_per_uplink), 0.0);
  br.metric("rehash_conflict_fraction", report.conflict_fraction, 0.02);
  br.metric("rehash_flow_records", static_cast<double>(obs.flows().size()),
            0.0);
  br.metric("rehash_alarm_count",
            static_cast<double>(fabric_report.alarms.size()), 0.0);
}

void cost_section(ms::bench::BenchReport& br) {
  std::printf("\n--- (c) sampling-hook cost ---\n");
  FabricObservatory obs;
  const int link = obs.add_link("cost-probe", gbps(200));
  constexpr int kEvents = 2'000'000;
  const WallNs t0 = wallclock_ns();
  for (int i = 0; i < kEvents; ++i) {
    const TimeNs at = static_cast<TimeNs>(i) * 500;  // 2000 events/bucket
    obs.record_tx(link, at, 1024.0);
    obs.record_queue(link, at, 4096.0);
  }
  const WallNs spent = wallclock_ns() - t0;
  const double ns_per_event =
      static_cast<double>(spent) / (2.0 * kEvents);
  std::printf("%d record events in %.1f ms (%.1f ns/event)\n", 2 * kEvents,
              wall_to_seconds(spent) * 1e3,  // ms-lint: allow(unit-literal)
              ns_per_event);
  br.info("record_ns_per_event", ns_per_event);
  br.metric("cost_samples_retained",
            static_cast<double>(obs.series(link).sample_count()), 0.0);
  br.metric("cost_buckets_dropped",
            static_cast<double>(obs.series(link).dropped()), 0.0);
}

}  // namespace

int main() {
  std::printf("== Fabric observatory: localization, cost, passivity ==\n\n");
  ms::bench::BenchReport br("fabric_observatory");
  br.config("scenario_storm_senders", 16.0);
  br.config("scenario_rehash_group", 16.0);

  storm_section(br);
  rehash_section(br);
  cost_section(br);

  if (!br.write()) {
    std::fprintf(stderr, "failed to write bench artifact\n");
    return 1;
  }
  std::printf("\nwrote BENCH_fabric_observatory.json\n");
  return 0;
}
