// Reproduces Table 3: MFU improvement breakdown when training the 175B
// model on 256 GPUs with batch size 256, applying MegaScale's
// optimizations cumulatively on top of the Megatron-LM baseline.
#include <cstdio>

#include "bench/common.h"
#include "core/table.h"

int main() {
  using ms::Table;
  using namespace ms::bench;
  using ms::engine::simulate_iteration;

  std::printf(
      "=== Table 3: MFU improvement breakdown (175B, 256 GPUs, BS 256) "
      "===\n\n");

  // Paper's cumulative MFU ladder.
  const double paper[] = {0.477, 0.523, 0.533, 0.555, 0.580,
                          0.595, 0.612, 0.623, 0.653};

  auto cfg = megatron_175b(256, 256);
  Table table({"Idx", "Method", "MFU", "dMFU", "paper MFU", "paper dMFU"});

  BenchReport br("table3_ablation");
  br.config("gpus", 256);
  br.config("global_batch", 256);
  double baseline = 0, last_mfu = 0;
  int idx = 1;
  auto show = [&](const char* label) {
    const double mfu = simulate_iteration(cfg).mfu;
    if (idx == 1) baseline = mfu;
    last_mfu = mfu;
    br.metric("mfu_step_" + std::to_string(idx), mfu, 0.02);
    table.add_row({Table::fmt_int(idx), label, Table::fmt_pct(mfu),
                   Table::fmt_pct(mfu - baseline),
                   Table::fmt_pct(paper[idx - 1]),
                   Table::fmt_pct(paper[idx - 1] - paper[0])});
    ++idx;
  };

  show("baseline (Megatron-LM)");
  cfg.model.parallel_block = true;
  show("(1) with PTB");
  cfg.model.attention = ms::model::AttentionKind::kSlidingWindow;
  cfg.model.window = 512;
  show("(2) with SWA");
  cfg.overlap.tp_overlap = true;
  show("(3) with TP overlap");
  cfg.overlap.pp_decouple = true;
  show("(4) with PP overlap");
  cfg.overlap.dp_overlap = true;
  show("(5) with DP overlap");
  cfg.ops = ms::model::OperatorProfile::megascale();
  show("(6) with efficient operators");
  cfg.overlap.async_data_pipeline = true;
  show("(7) with misc optimizations");
  cfg.global_batch = 768;  // LAMB enables 3x batch here (§6.1)
  show("(8) with LAMB (BS x3)");

  table.print();
  std::printf(
      "\nPaper: all optimizations together raise MFU by 17.6%% over the "
      "47.7%% baseline.\n");
  br.metric("mfu_gain_total", last_mfu - baseline, 0.05);
  return br.write() ? 0 : 1;
}
