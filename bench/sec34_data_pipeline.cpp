// Reproduces §3.4: data-pipeline optimizations.
//   * model: exposed GPU idle time per step under the four combinations of
//     {redundant per-GPU loaders | tree-based single loader} x
//     {synchronous | asynchronous preprocessing};
//   * real: throughput of the shared-memory broadcast buffer feeding eight
//     consumer threads (the machine's GPU workers).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "core/table.h"
#include "data/pipeline.h"
#include "data/shm.h"

using namespace ms;
using namespace ms::data;

int main() {
  std::printf("=== §3.4: data pipeline ===\n\n");

  bench::BenchReport br("sec34_data_pipeline");
  Table t({"loaders", "preprocessing", "disk read", "shm copy", "preprocess",
           "exposed / step"});
  for (bool redundant : {true, false}) {
    for (bool async_prep : {false, true}) {
      DataPipelineConfig cfg;
      cfg.redundant_loaders = redundant;
      cfg.async_preprocessing = async_prep;
      const auto cost = data_step_cost(cfg);
      br.metric(std::string(redundant ? "redundant" : "tree") + "_" +
                    (async_prep ? "async" : "sync") + "_exposed_ms",
                to_milliseconds(cost.exposed), 0.02);
      t.add_row({redundant ? "per-GPU (8x)" : "tree-based (1x)",
                 async_prep ? "async" : "sync",
                 format_duration(cost.disk_read),
                 format_duration(cost.shm_copy),
                 format_duration(cost.preprocess),
                 format_duration(cost.exposed)});
    }
  }
  t.print();
  std::printf(
      "paper: one dedicated loader per machine reads into shared memory "
      "(workers of a TP group consume identical data); preprocessing for "
      "step k+1 overlaps the gradient synchronization of step k.\n\n");

  // ---- real shared-memory broadcast throughput ----
  std::printf("--- shared-memory broadcast buffer (real threads) ---\n");
  constexpr int kConsumers = 8;
  constexpr int kBatches = 200;
  constexpr std::size_t kBatchBytes = 512 * 1024;
  ShmBroadcastBuffer buffer(kConsumers, 3);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (int g = 0; g < kBatches; ++g) {
        auto batch = buffer.fetch(g);
        if (batch.size() != kBatchBytes) std::abort();
      }
    });
  }
  std::vector<std::uint8_t> payload(kBatchBytes, 0x5A);
  for (int g = 0; g < kBatches; ++g) {
    buffer.publish(payload);
  }
  for (auto& th : consumers) th.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double delivered_gb =
      static_cast<double>(kBatchBytes) * kBatches * kConsumers / 1e9;
  std::printf(
      "delivered %.2f GB to %d consumers in %.3f s  (%.2f GB/s aggregate)\n",
      delivered_gb, kConsumers, wall_s, delivered_gb / wall_s);
  br.info("shm_broadcast_gbps", delivered_gb / wall_s);
  return br.write() ? 0 : 1;
}
