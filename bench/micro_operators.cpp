// §3.3 operator microbenchmarks (google-benchmark), on the REAL numeric
// substrate: sliding-window attention's O(s*w) vs full attention's O(s^2),
// GEMM and LayerNorm kernels, and the KV-store primitives behind §3.5.
#include <benchmark/benchmark.h>

#include "bench/gbench_report.h"

#include "collective/kvstore.h"
#include "optim/nn.h"
#include "optim/autograd.h"

using namespace ms;
using namespace ms::optim;

namespace {

void BM_AttentionFull(benchmark::State& state) {
  const int T = static_cast<int>(state.range(0));
  const int H = 64;
  Rng rng(1);
  auto q = Tensor::randn({T, H}, rng, 0.5f);
  auto k = Tensor::randn({T, H}, rng, 0.5f);
  auto v = Tensor::randn({T, H}, rng, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention(q, k, v, 4, /*window=*/0));
  }
  state.SetComplexityN(T);
}
BENCHMARK(BM_AttentionFull)->Range(32, 256)->Complexity(benchmark::oNSquared);

void BM_AttentionSlidingWindow(benchmark::State& state) {
  const int T = static_cast<int>(state.range(0));
  const int H = 64;
  Rng rng(2);
  auto q = Tensor::randn({T, H}, rng, 0.5f);
  auto k = Tensor::randn({T, H}, rng, 0.5f);
  auto v = Tensor::randn({T, H}, rng, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention(q, k, v, 4, /*window=*/16));
  }
  state.SetComplexityN(T);
}
BENCHMARK(BM_AttentionSlidingWindow)
    ->Range(32, 256)
    ->Complexity(benchmark::oN);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  auto a = Tensor::randn({n, n}, rng, 0.5f);
  auto b = Tensor::randn({n, n}, rng, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Matmul)->Range(16, 128);

void BM_LayerNorm(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Rng rng(4);
  auto x = Tensor::randn({rows, 64}, rng, 1.0f);
  auto gamma = Tensor::full({64}, 1.0f);
  auto beta = Tensor::zeros({64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(layernorm(x, gamma, beta));
  }
}
BENCHMARK(BM_LayerNorm)->Range(16, 256);

void BM_TrainingStepBackward(benchmark::State& state) {
  Rng rng(5);
  TinyGptConfig cfg;
  cfg.vocab = 64;
  cfg.seq_len = 32;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.ffn_hidden = 128;
  TinyGpt model(cfg, rng);
  std::vector<int> tokens;
  for (int i = 0; i <= cfg.seq_len; ++i) tokens.push_back(i % cfg.vocab);
  for (auto _ : state) {
    Tensor loss = model.loss(tokens);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_TrainingStepBackward);

void BM_BlockingKvStoreSet(benchmark::State& state) {
  collective::BlockingKvStore store(std::chrono::microseconds(0));
  int i = 0;
  for (auto _ : state) {
    store.set("key" + std::to_string(i++ % 64), "value");
  }
}
BENCHMARK(BM_BlockingKvStoreSet);

void BM_AsyncKvStoreSet(benchmark::State& state) {
  collective::AsyncKvStore store;
  int i = 0;
  for (auto _ : state) {
    store.set("key" + std::to_string(i++ % 64), "value");
  }
}
BENCHMARK(BM_AsyncKvStoreSet);

}  // namespace

MS_GBENCH_MAIN("micro_operators")
