// Collective-layer microbenchmarks (google-benchmark): cost-model
// evaluation throughput, plan generation, and max-min-fair flow simulation.
#include <benchmark/benchmark.h>

#include "bench/gbench_report.h"

#include "collective/comm.h"
#include "collective/plan.h"
#include "net/flowsim.h"
#include "net/topology.h"

using namespace ms;
using namespace ms::collective;

namespace {

void BM_AllReduceCostModel(benchmark::State& state) {
  CollectiveModel model{ClusterSpec{}};
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.all_reduce(1_GiB, ranks, Domain::kInterNode));
  }
}
BENCHMARK(BM_AllReduceCostModel)->Range(8, 4096);

void BM_RingAllReducePlan(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring_all_reduce_plan(ranks, 1_GiB));
  }
  state.SetComplexityN(ranks);
}
BENCHMARK(BM_RingAllReducePlan)->Range(8, 256)->Complexity();

void BM_FlowSimRingRound(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  net::ClosParams p;
  p.hosts = hosts;
  p.nics_per_host = 1;
  p.hosts_per_tor = 8;
  p.pods = std::max(1, hosts / 16);
  p.aggs_per_pod = 2;
  p.spines_per_plane = 2;
  net::ClosTopology topo(p);
  for (auto _ : state) {
    net::FlowSim sim(topo);
    for (int i = 0; i < hosts; ++i) {
      auto paths = topo.ecmp_paths(i, (i + 1) % hosts, 0);
      sim.add_flow(paths[0], 100_MiB);
    }
    sim.run();
    benchmark::DoNotOptimize(sim.makespan());
  }
}
BENCHMARK(BM_FlowSimRingRound)->Range(8, 64);

void BM_EcmpPathEnumeration(benchmark::State& state) {
  net::ClosParams p;
  p.hosts = 512;
  p.nics_per_host = 8;
  p.hosts_per_tor = 64;
  p.pods = 2;
  p.aggs_per_pod = 8;
  p.spines_per_plane = 8;
  net::ClosTopology topo(p);
  int src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.ecmp_paths(src, 511 - src % 256, src % 8));
    src = (src + 1) % 256;
  }
}
BENCHMARK(BM_EcmpPathEnumeration);

}  // namespace

MS_GBENCH_MAIN("micro_collectives")
