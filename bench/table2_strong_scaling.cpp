// Reproduces Table 2: strong-scaling training performance of the 175B
// model, Megatron-LM vs MegaScale, 256 -> 12288 GPUs.
//
// Batch 768 for 256-1024 GPUs (GPU memory limit), batch 6144 for
// 3072-12288 GPUs. The table prints simulated values next to the paper's
// published numbers; absolute agreement is not expected (our substrate is
// a simulator), the comparison targets the shape: MegaScale wins
// everywhere, by ~1.2-1.35x, and MFU declines as GPUs grow at fixed batch.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/table.h"

namespace {

struct PaperRow {
  int gpus;
  double iter_s, tokens_k, days, mfu, pflops;
};

// Paper Table 2 values (Megatron-LM, then MegaScale).
const std::vector<PaperRow> kPaperMegatron768 = {
    {256, 40.0, 39.3, 88.35, 0.530, 43.3},
    {512, 21.2, 74.1, 46.86, 0.499, 77.6},
    {768, 15.2, 103.8, 33.45, 0.467, 111.9},
    {1024, 11.9, 132.7, 26.17, 0.447, 131.9},
};
const std::vector<PaperRow> kPaperMegaScale768 = {
    {256, 32.0, 49.0, 70.86, 0.653, 52.2},
    {512, 16.5, 95.1, 36.51, 0.635, 101.4},
    {768, 11.5, 136.7, 25.40, 0.613, 146.9},
    {1024, 8.9, 176.9, 19.62, 0.590, 188.5},
};
const std::vector<PaperRow> kPaperMegatron6144 = {
    {3072, 29.02, 433.6, 8.01, 0.487, 466.8},
    {6144, 14.78, 851.6, 4.08, 0.478, 916.3},
    {8192, 12.24, 1027.9, 3.38, 0.433, 1106.7},
    {12288, 8.57, 1466.8, 2.37, 0.412, 1579.5},
};
const std::vector<PaperRow> kPaperMegaScale6144 = {
    {3072, 23.66, 531.9, 6.53, 0.591, 566.5},
    {6144, 12.21, 1030.9, 3.37, 0.573, 1098.4},
    {8192, 9.56, 1315.6, 2.64, 0.549, 1400.6},
    {12288, 6.34, 1984.0, 1.75, 0.552, 2166.3},
};

void run_block(int batch, const std::vector<PaperRow>& paper_megatron,
               const std::vector<PaperRow>& paper_megascale,
               ms::bench::BenchReport& br) {
  using ms::Table;
  using namespace ms::bench;

  Table table({"BS", "Method", "GPUs", "Iter(s)", "paper", "Tokens/s",
               "paper", "Days@300B", "MFU", "paper", "PFlop/s", "Speedup",
               "paper"});

  std::vector<double> megatron_iters;
  for (std::size_t i = 0; i < paper_megatron.size(); ++i) {
    const int gpus = paper_megatron[i].gpus;
    const auto fold = run_with_cluster(megatron_175b(gpus, batch));
    const auto cfg = megatron_175b(gpus, batch);
    const double iter_s = ms::to_seconds(fold.iteration_time);
    const double tokens_s = cfg.tokens_per_iteration() / iter_s;
    megatron_iters.push_back(iter_s);
    table.add_row(
        {Table::fmt_int(batch), "Megatron-LM", Table::fmt_int(gpus),
         Table::fmt(iter_s, 2), Table::fmt(paper_megatron[i].iter_s, 2),
         Table::fmt(tokens_s / 1e3, 1) + "k",
         Table::fmt(paper_megatron[i].tokens_k, 1) + "k",
         Table::fmt(ms::engine::training_days(300e9, tokens_s), 2),
         Table::fmt_pct(fold.mfu), Table::fmt_pct(paper_megatron[i].mfu),
         Table::fmt(ms::model::reference_train_flops_per_token(cfg.model) *
                        tokens_s / 1e15,
                    1),
         "-", "-"});
  }
  table.add_separator();
  for (std::size_t i = 0; i < paper_megascale.size(); ++i) {
    const int gpus = paper_megascale[i].gpus;
    const auto fold = run_with_cluster(megascale_175b(gpus, batch));
    const auto cfg = megascale_175b(gpus, batch);
    const double iter_s = ms::to_seconds(fold.iteration_time);
    const double tokens_s = cfg.tokens_per_iteration() / iter_s;
    const double speedup = megatron_iters[i] / iter_s;
    br.metric("megascale_mfu_" + std::to_string(gpus), fold.mfu, 0.02);
    br.metric("speedup_" + std::to_string(gpus), speedup, 0.03);
    const double paper_speedup =
        paper_megascale[i].mfu / paper_megatron[i].mfu;
    table.add_row(
        {Table::fmt_int(batch), "MegaScale", Table::fmt_int(gpus),
         Table::fmt(iter_s, 2), Table::fmt(paper_megascale[i].iter_s, 2),
         Table::fmt(tokens_s / 1e3, 1) + "k",
         Table::fmt(paper_megascale[i].tokens_k, 1) + "k",
         Table::fmt(ms::engine::training_days(300e9, tokens_s), 2),
         Table::fmt_pct(fold.mfu), Table::fmt_pct(paper_megascale[i].mfu),
         Table::fmt(ms::model::reference_train_flops_per_token(cfg.model) *
                        tokens_s / 1e15,
                    1),
         Table::fmt(speedup, 2) + "x", Table::fmt(paper_speedup, 2) + "x"});
  }
  table.print();
}

}  // namespace

int main() {
  std::printf(
      "=== Table 2: strong-scaling training performance, 175B model ===\n"
      "(simulated vs paper; batch 768 below 3072 GPUs, 6144 above)\n\n");
  ms::bench::BenchReport br("table2_strong_scaling");
  br.config("model", "175b");
  run_block(768, kPaperMegatron768, kPaperMegaScale768, br);
  std::printf("\n");
  run_block(6144, kPaperMegatron6144, kPaperMegaScale6144, br);
  return br.write() ? 0 : 1;
}
