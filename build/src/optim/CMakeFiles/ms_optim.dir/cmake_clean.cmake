file(REMOVE_RECURSE
  "CMakeFiles/ms_optim.dir/autograd.cpp.o"
  "CMakeFiles/ms_optim.dir/autograd.cpp.o.d"
  "CMakeFiles/ms_optim.dir/nn.cpp.o"
  "CMakeFiles/ms_optim.dir/nn.cpp.o.d"
  "CMakeFiles/ms_optim.dir/optimizers.cpp.o"
  "CMakeFiles/ms_optim.dir/optimizers.cpp.o.d"
  "CMakeFiles/ms_optim.dir/schedule.cpp.o"
  "CMakeFiles/ms_optim.dir/schedule.cpp.o.d"
  "CMakeFiles/ms_optim.dir/trainer.cpp.o"
  "CMakeFiles/ms_optim.dir/trainer.cpp.o.d"
  "libms_optim.a"
  "libms_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
