# Empty compiler generated dependencies file for ms_optim.
# This may be replaced when dependencies are built.
