file(REMOVE_RECURSE
  "libms_optim.a"
)
