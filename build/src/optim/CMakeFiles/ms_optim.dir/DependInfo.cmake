
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/autograd.cpp" "src/optim/CMakeFiles/ms_optim.dir/autograd.cpp.o" "gcc" "src/optim/CMakeFiles/ms_optim.dir/autograd.cpp.o.d"
  "/root/repo/src/optim/nn.cpp" "src/optim/CMakeFiles/ms_optim.dir/nn.cpp.o" "gcc" "src/optim/CMakeFiles/ms_optim.dir/nn.cpp.o.d"
  "/root/repo/src/optim/optimizers.cpp" "src/optim/CMakeFiles/ms_optim.dir/optimizers.cpp.o" "gcc" "src/optim/CMakeFiles/ms_optim.dir/optimizers.cpp.o.d"
  "/root/repo/src/optim/schedule.cpp" "src/optim/CMakeFiles/ms_optim.dir/schedule.cpp.o" "gcc" "src/optim/CMakeFiles/ms_optim.dir/schedule.cpp.o.d"
  "/root/repo/src/optim/trainer.cpp" "src/optim/CMakeFiles/ms_optim.dir/trainer.cpp.o" "gcc" "src/optim/CMakeFiles/ms_optim.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
