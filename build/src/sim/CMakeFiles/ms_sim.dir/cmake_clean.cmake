file(REMOVE_RECURSE
  "CMakeFiles/ms_sim.dir/engine.cpp.o"
  "CMakeFiles/ms_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ms_sim.dir/graph.cpp.o"
  "CMakeFiles/ms_sim.dir/graph.cpp.o.d"
  "libms_sim.a"
  "libms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
